(* Benchmark harness: regenerates every data figure of the paper's
   evaluation (Section 3.2) plus the extension experiments listed in
   DESIGN.md.

     dune exec bench/main.exe            -- everything (figures, extensions, micro)
     dune exec bench/main.exe -- figures -- just the paper figures (F10 F11 F12)
     dune exec bench/main.exe -- f10     -- one experiment

   Experiments report *simulated* milliseconds from the engine's cost
   clock, so results are deterministic and machine-independent.  The
   bechamel micro-benchmarks at the end measure real wall-clock of the
   engine's own components. *)

module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Reopt_policy = Mqr_core.Reopt_policy
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload
module Datagen = Mqr_tpcd.Datagen
module Catalog = Mqr_catalog.Catalog

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

let sf =
  try float_of_string (Sys.getenv "MQR_SF") with Not_found | Failure _ -> 0.005

(* Memory budget scaled so that complex queries' maximum hash-join demands
   exceed it — the paper's 32 MB-per-node pressure regime. *)
let budget_pages = max 64 (int_of_float (sf *. 40_000.0))
let pool_pages = 8 * budget_pages

let engine_for ?(skew_z = 0.0) ?(degradations = Workload.paper_degradations) () =
  let catalog = Workload.experiment_catalog ~sf ~skew_z ~degradations () in
  Engine.create ~budget_pages ~pool_pages catalog

let time engine mode (q : Queries.query) =
  (Engine.run_sql engine ~mode q.Queries.sql).Dispatcher.elapsed_ms

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every recorded data point lands in
   BENCH_results.json next to the human-readable tables.               *)

let json_results : (string * string * float * int * int) list ref = ref []

let record ~scenario ~mode ~elapsed_ms ~switches ~collectors =
  json_results :=
    (scenario, mode, elapsed_ms, switches, collectors) :: !json_results

(* run + record: the figure tables double as JSON data points *)
let time_r ~scenario engine mode (q : Queries.query) =
  let r = Engine.run_sql engine ~mode q.Queries.sql in
  record ~scenario
    ~mode:(Dispatcher.mode_to_string mode)
    ~elapsed_ms:r.Dispatcher.elapsed_ms ~switches:r.Dispatcher.switches
    ~collectors:r.Dispatcher.collectors;
  r

let emit_json () =
  let oc = open_out "BENCH_results.json" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (scenario, mode, ms, sw, col) ->
       if i > 0 then Buffer.add_string buf ",\n";
       Buffer.add_string buf
         (Printf.sprintf
            "  {\"scenario\": %S, \"mode\": %S, \"elapsed_ms\": %.3f, \
             \"switches\": %d, \"collectors\": %d}"
            scenario mode ms sw col))
    (List.rev !json_results);
  Buffer.add_string buf "\n]\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.wrote %d data points to BENCH_results.json@."
    (List.length !json_results)

let pct_improvement ~normal ~reopt = 100.0 *. (normal -. reopt) /. normal

(* wall-clock timings are noisy: measured scenarios repeat each run and
   report min (least-interference estimate) and median (typical) *)
let wall_reps = 3

let min_median xs =
  match List.sort compare xs with
  | [] -> (0.0, 0.0)
  | sorted ->
    (List.hd sorted, List.nth sorted (List.length sorted / 2))

let hr () = Fmt.pr "%s@." (String.make 78 '-')

let header title =
  hr ();
  Fmt.pr "%s@." title;
  hr ()

(* ------------------------------------------------------------------ *)
(* Figure 10: Normal vs Re-Optimized, all seven queries.               *)

let figure10 () =
  header
    (Fmt.str
       "Figure 10 - Performance of Dynamic Re-Optimization (sf=%g, \
        budget=%d pages, mu=0.05 theta1=0.05 theta2=0.2)"
       sf budget_pages);
  Fmt.pr "%-5s %-8s %6s | %12s %12s %9s %9s@." "query" "class" "joins"
    "normal(ms)" "reopt(ms)" "improv%" "switches";
  let engine = engine_for () in
  List.iter
    (fun (q : Queries.query) ->
       let scenario = "f10/" ^ q.Queries.name in
       let normal =
         (time_r ~scenario engine Dispatcher.Off q).Dispatcher.elapsed_ms
       in
       let r = time_r ~scenario engine Dispatcher.Full q in
       let reopt = r.Dispatcher.elapsed_ms in
       Fmt.pr "%-5s %-8s %6d | %12.1f %12.1f %8.1f%% %9d@." q.Queries.name
         (Queries.klass_to_string q.Queries.klass)
         q.Queries.joins normal reopt
         (pct_improvement ~normal ~reopt)
         r.Dispatcher.switches)
    Queries.all;
  Fmt.pr
    "@.Paper's shape: simple queries unchanged (small collection overhead), \
     medium up to ~5%%,@.complex 10-30%% better with re-optimization.@."

(* ------------------------------------------------------------------ *)
(* Figure 11: isolating memory re-allocation vs plan modification.     *)

let figure11 () =
  header "Figure 11 - Isolating memory management vs plan modification";
  Fmt.pr "%-5s %-8s | %10s %12s %12s %12s@." "query" "class" "normal"
    "mem-only" "plan-only" "full";
  let engine = engine_for () in
  let interesting =
    List.filter
      (fun (q : Queries.query) -> q.Queries.klass <> Queries.Simple)
      Queries.all
  in
  List.iter
    (fun (q : Queries.query) ->
       let scenario = "f11/" ^ q.Queries.name in
       let ms mode = (time_r ~scenario engine mode q).Dispatcher.elapsed_ms in
       let normal = ms Dispatcher.Off in
       let mem = ms Dispatcher.Memory_only in
       let plan = ms Dispatcher.Plan_only in
       let full = ms Dispatcher.Full in
       Fmt.pr "%-5s %-8s | %10.1f %12.1f %12.1f %12.1f@." q.Queries.name
         (Queries.klass_to_string q.Queries.klass)
         normal mem plan full)
    interesting;
  Fmt.pr
    "@.Paper's shape: medium queries benefit only from memory management; \
     complex queries@.benefit from both (5-10%% memory, 10-20%% plan \
     modification).@."

(* ------------------------------------------------------------------ *)
(* Figure 12: effect of skew (z = 0.3, z = 0.6).                       *)

let figure12 () =
  header "Figure 12 - Effect of skew (ratio re-optimized / normal)";
  Fmt.pr "%-5s %-8s | %12s %12s %12s@." "query" "class" "z=0 ratio"
    "z=0.3 ratio" "z=0.6 ratio";
  let engines =
    List.map (fun z -> (z, engine_for ~skew_z:z ())) [ 0.0; 0.3; 0.6 ]
  in
  let interesting =
    List.filter
      (fun (q : Queries.query) -> q.Queries.klass <> Queries.Simple)
      Queries.all
  in
  List.iter
    (fun (q : Queries.query) ->
       let ratios =
         List.map
           (fun (z, engine) ->
              let scenario = Fmt.str "f12/%s/z=%g" q.Queries.name z in
              let normal =
                (time_r ~scenario engine Dispatcher.Off q).Dispatcher.elapsed_ms
              in
              let reopt =
                (time_r ~scenario engine Dispatcher.Full q).Dispatcher.elapsed_ms
              in
              reopt /. normal)
           engines
       in
       match ratios with
       | [ r0; r3; r6 ] ->
         Fmt.pr "%-5s %-8s | %12.3f %12.3f %12.3f@." q.Queries.name
           (Queries.klass_to_string q.Queries.klass)
           r0 r3 r6
       | _ -> ())
    interesting;
  Fmt.pr
    "@.Paper's shape: the relative benefit of re-optimization grows \
     slightly with skew@.(serial-style histograms stay accurate under skew, \
     while coarse catalog statistics degrade).@."

(* ------------------------------------------------------------------ *)
(* Extension X-fig3: the worked memory-re-allocation example.          *)

let xfig3 () =
  header
    "Extension - Figure 3 worked example: re-allocation avoids a 2-pass \
     hash join";
  let q = Queries.find "Q10" in
  let engine = engine_for () in
  let off = Engine.run_sql engine ~mode:Dispatcher.Off q.Queries.sql in
  let mem = Engine.run_sql engine ~mode:Dispatcher.Memory_only q.Queries.sql in
  Fmt.pr "normal:       %10.1f ms@." off.Dispatcher.elapsed_ms;
  Fmt.pr "memory-only:  %10.1f ms@." mem.Dispatcher.elapsed_ms;
  List.iter
    (fun ev ->
       match ev with
       | Dispatcher.Ev_realloc _ -> Fmt.pr "  %a@." Dispatcher.pp_event ev
       | _ -> ())
    mem.Dispatcher.events

(* ------------------------------------------------------------------ *)
(* Extension X-sens: sensitivity to mu and theta2 (thesis [12]).       *)

let sensitivity () =
  header "Extension - Sensitivity to mu and theta2 (paper defers to [12])";
  (* Q7 is the query whose re-optimization actually switches plans, so the
     thresholds have something to gate *)
  let q = Queries.find "Q7" in
  let engine = engine_for () in
  let report params =
    let engine = Engine.with_params engine params in
    let r = Engine.run_sql engine ~mode:Dispatcher.Full q.Queries.sql in
    (r.Dispatcher.elapsed_ms, r.Dispatcher.switches, r.Dispatcher.collectors)
  in
  Fmt.pr "mu sweep (theta1=0.05 theta2=0.2):@.";
  List.iter
    (fun mu ->
       let ms, sw, col =
         report { Reopt_policy.default_params with Reopt_policy.mu }
       in
       Fmt.pr "  mu=%-5.2f -> %10.1f ms  (%d collectors, %d switches)@." mu ms
         col sw)
    [ 0.0; 0.01; 0.02; 0.05; 0.10; 0.20 ];
  Fmt.pr "theta2 sweep (mu=0.05):@.";
  List.iter
    (fun theta2 ->
       let ms, sw, _ =
         report { Reopt_policy.default_params with Reopt_policy.theta2 }
       in
       Fmt.pr "  theta2=%-5.2f -> %10.1f ms  (%d switches)@." theta2 ms sw)
    [ 0.05; 0.1; 0.2; 0.4; 0.8; 5.0 ];
  Fmt.pr "theta1 sweep (mu=0.05 theta2=0.2):@.";
  List.iter
    (fun theta1 ->
       let ms, sw, _ =
         report { Reopt_policy.default_params with Reopt_policy.theta1 }
       in
       Fmt.pr "  theta1=%-5.3f -> %10.1f ms  (%d switches)@." theta1 ms sw)
    [ 0.001; 0.01; 0.05; 0.25 ]

(* ------------------------------------------------------------------ *)
(* Extension X-overhead: simple queries never pay more than mu.        *)

let overhead () =
  header "Extension - Collection overhead on simple queries is bounded by mu";
  let engine = engine_for () in
  List.iter
    (fun name ->
       let q = Queries.find name in
       let normal = time engine Dispatcher.Off q in
       let reopt = time engine Dispatcher.Full q in
       Fmt.pr
         "%-4s normal %10.1f ms, with collectors %10.1f ms -> overhead \
          %5.2f%% (mu = 5%%)@."
         name normal reopt
         (100.0 *. (reopt -. normal) /. normal))
    [ "Q1"; "Q6" ]

(* ------------------------------------------------------------------ *)
(* Ablation A1: join-algorithm availability.                           *)

let ablation_joins () =
  header "Ablation - join algorithms available to the optimizer (Q5, normal mode)";
  let variants =
    [ ("all", Mqr_opt.Optimizer.default_options);
      ("no index NL join",
       { Mqr_opt.Optimizer.default_options with
         Mqr_opt.Optimizer.enable_index_join = false });
      ("no merge join",
       { Mqr_opt.Optimizer.default_options with
         Mqr_opt.Optimizer.enable_merge_join = false });
      ("hash join only",
       { Mqr_opt.Optimizer.default_options with
         Mqr_opt.Optimizer.enable_index_join = false;
         enable_merge_join = false });
      ("left-deep only",
       { Mqr_opt.Optimizer.default_options with
         Mqr_opt.Optimizer.enable_bushy = false }) ]
  in
  let q = Queries.find "Q5" in
  List.iter
    (fun (label, base) ->
       let opt_options =
         { base with
           Mqr_opt.Optimizer.planning_mem_pages = max 8 (budget_pages / 2) }
       in
       let catalog = Workload.experiment_catalog ~sf () in
       let engine =
         Engine.create ~budget_pages ~pool_pages ~opt_options catalog
       in
       Fmt.pr "  %-18s normal %10.1f ms   reopt %10.1f ms@." label
         (time engine Dispatcher.Off q)
         (time engine Dispatcher.Full q))
    variants

(* ------------------------------------------------------------------ *)
(* Ablation A2: catalog histogram kinds (ties into the Fig. 12 story). *)

let ablation_histograms () =
  header "Ablation - catalog histogram kind under skew z=0.6 (Q3)";
  let q = Queries.find "Q3" in
  List.iter
    (fun kind ->
       (* pristine catalog, only the histogram kind varies: estimate
          quality differences come from the kind alone, under skewed data *)
       let degradations = [ Workload.Histogram_kind kind ] in
       let engine = engine_for ~skew_z:0.6 ~degradations () in
       let normal = time engine Dispatcher.Off q in
       let reopt = time engine Dispatcher.Full q in
       Fmt.pr "  %-12s normal %10.1f ms   reopt %10.1f ms   ratio %.3f@."
         (Mqr_stats.Histogram.kind_to_string kind)
         normal reopt (reopt /. normal))
    [ Mqr_stats.Histogram.Serial; Mqr_stats.Histogram.Maxdiff;
      Mqr_stats.Histogram.Equi_depth; Mqr_stats.Histogram.Equi_width ]

(* ------------------------------------------------------------------ *)
(* Ablation A3: start-time sampling hybrid (paper Sections 4-5).       *)

let hybrid () =
  header
    "Extension - hybrid: start-time sampling probes + mid-query      re-optimization (Q3/Q5/Q8)";
  Fmt.pr "%-5s | %10s %12s %12s %12s@." "query" "normal" "reopt"
    "probe-only" "probe+reopt";
  let engine = engine_for () in
  List.iter
    (fun name ->
       let q = Queries.find name in
       let normal = time engine Dispatcher.Off q in
       let reopt = time engine Dispatcher.Full q in
       let probe_only =
         (Engine.run_sql engine ~mode:Dispatcher.Off ~probe_rows:64
            q.Queries.sql).Dispatcher.elapsed_ms
       in
       let probe_reopt =
         (Engine.run_sql engine ~mode:Dispatcher.Full ~probe_rows:64
            q.Queries.sql).Dispatcher.elapsed_ms
       in
       Fmt.pr "%-5s | %10.1f %12.1f %12.1f %12.1f@." name normal reopt
         probe_only probe_reopt)
    [ "Q3"; "Q5"; "Q8" ];
  Fmt.pr
    "@.Observation (the paper's Section 4 trade-off): sampling fixes what \
     it can see@.(single-table predicate selectivities - a large win when \
     the bad predicate@.feeds the whole plan, as in Q8) but not \
     propagation or cardinality staleness,@.and sharpening one estimate \
     while others stay wrong can even flip the@.optimizer to a worse plan \
     (Q3, Q5).  Mid-query re-optimization repairs both@.cases; combining \
     them keeps sampling's head start where it helps.@."

(* ------------------------------------------------------------------ *)
(* Extension: Paradise-style scalability of the parallel substrate.    *)

let scalability () =
  header
    "Extension - partitioned-parallel substrate: join speedup by degree      (Paradise ran on 4 nodes)";
  let module Parallel = Mqr_exec.Parallel in
  let module Exec_ctx = Mqr_exec.Exec_ctx in
  let rows n =
    Array.init n (fun i ->
        [| Mqr_storage.Value.Int (i mod 4096); Mqr_storage.Value.Int i |])
  in
  let schema q =
    Mqr_storage.Schema.make
      [ Mqr_storage.Schema.col ~qualifier:q "a" Mqr_storage.Value.TInt;
        Mqr_storage.Schema.col ~qualifier:q "b" Mqr_storage.Value.TInt ]
  in
  let build = rows 40_000 and probe = rows 40_000 in
  let base = ref 0.0 in
  List.iter
    (fun degree ->
       let ctx = Exec_ctx.create ~pool_pages:4096 () in
       let p = Parallel.make ~degree () in
       ignore
         (Parallel.hash_join ctx p ~mem_pages:64 ~build:(build, schema "r")
            ~probe:(probe, schema "l") ~keys:[ ("l.a", "r.a") ] ());
       let t = Exec_ctx.elapsed_ms ctx in
       if degree = 1 then base := t;
       Fmt.pr "  degree %d: %10.1f ms   speedup %.2fx@." degree t (!base /. t))
    [ 1; 2; 4; 8 ];
  Fmt.pr
    "@.Sub-linear speedup: repartitioning pays the interconnect, as on the      paper's cluster.@."

(* ------------------------------------------------------------------ *)
(* Runtime filters: bloom/min-max sideways information passing.        *)

let runtime_filters () =
  (* A budget tight enough that mid-size hash-join builds spill: the
     filter's probe-side pruning then saves partitioning I/O, not just
     per-tuple CPU. *)
  let rf_budget = max 20 (budget_pages / 8) in
  header
    (Fmt.str
       "Runtime filters - join-heavy queries, filters off vs on \
        (mode=off, sf=%g, budget=%d pages)"
       sf rf_budget);
  let catalog =
    Workload.experiment_catalog ~sf
      ~degradations:Workload.paper_degradations ()
  in
  (* both engines share one catalog: identical data, the flag is the only
     difference *)
  let engine_off =
    Engine.create ~budget_pages:rf_budget ~pool_pages:(8 * rf_budget) catalog
  in
  let engine_on =
    Engine.create ~budget_pages:rf_budget ~pool_pages:(8 * rf_budget)
      ~runtime_filters:true catalog
  in
  Fmt.pr "%-5s %6s | %12s %12s %9s %8s  %s@." "query" "joins" "off(ms)"
    "on(ms)" "improv%" "filters" "identical";
  List.iter
    (fun name ->
       let q = Queries.find name in
       let scenario = "rf/" ^ name in
       let off = Engine.run_sql engine_off ~mode:Dispatcher.Off q.Queries.sql in
       let on = Engine.run_sql engine_on ~mode:Dispatcher.Off q.Queries.sql in
       record ~scenario ~mode:"rf-off" ~elapsed_ms:off.Dispatcher.elapsed_ms
         ~switches:off.Dispatcher.switches
         ~collectors:off.Dispatcher.collectors;
       record ~scenario ~mode:"rf-on" ~elapsed_ms:on.Dispatcher.elapsed_ms
         ~switches:on.Dispatcher.switches ~collectors:on.Dispatcher.collectors;
       (* filters must never change the result; plans may differ, so
          compare as multisets *)
       let canon (r : Dispatcher.report) =
         List.sort compare
           (Array.to_list
              (Array.map (Fmt.str "%a" Mqr_storage.Tuple.pp) r.Dispatcher.rows))
       in
       let identical = canon off = canon on in
       Fmt.pr "%-5s %6d | %12.1f %12.1f %8.1f%% %8d  %s@." name
         q.Queries.joins off.Dispatcher.elapsed_ms on.Dispatcher.elapsed_ms
         (pct_improvement ~normal:off.Dispatcher.elapsed_ms
            ~reopt:on.Dispatcher.elapsed_ms)
         (List.length on.Dispatcher.filters)
         (if identical then "yes" else "** MISMATCH **"))
    [ "Q3"; "Q5"; "Q7"; "Q8"; "Q10" ];
  Fmt.pr
    "@.A filter built from a join's finished build side prunes probe-side \
     scans before@.they pay hashing, sorting and partitioning I/O; bloom \
     filters have no false@.negatives and min-max pruning is exact, so \
     results are identical.@."

(* ------------------------------------------------------------------ *)
(* Workload manager: a concurrent batch against the serial baseline.   *)

let wlm () =
  header
    (Fmt.str
       "Workload manager - 4-query batch, serial fixed budget vs shared \
        broker (budget=%d pages)"
       budget_pages);
  let module Wl = Mqr_wlm.Workload in
  let specs =
    List.map
      (fun name -> Wl.spec ~label:name (Queries.find name).Queries.sql)
      [ "Q3"; "Q5"; "Q7"; "Q10" ]
  in
  let serial =
    Wl.run
      ~options:
        { Wl.default_options with
          Wl.max_concurrency = 1;
          memory = Wl.Fixed_per_query budget_pages;
          feedback = false }
      (engine_for ()) specs
  in
  let conc =
    Wl.run
      ~options:
        { Wl.default_options with
          Wl.max_concurrency = 4;
          memory = Wl.Shared_broker }
      (engine_for ()) specs
  in
  Fmt.pr "serial (one at a time, fixed %d pages each):@.%a@.@." budget_pages
    Wl.pp serial;
  Fmt.pr "concurrent (broker leases over the same %d pages):@.%a@.@."
    budget_pages Wl.pp conc;
  Fmt.pr "makespan %.1f ms -> %.1f ms  (%.2fx)%s@." serial.Wl.makespan_ms
    conc.Wl.makespan_ms
    (serial.Wl.makespan_ms /. conc.Wl.makespan_ms)
    (if conc.Wl.makespan_ms < serial.Wl.makespan_ms then ""
     else "  ** NO IMPROVEMENT **");
  let total f (r : Wl.report) =
    List.fold_left (fun acc (q : Wl.query_result) -> acc + f q.Wl.report) 0
      r.Wl.results
  in
  let rec_wl mode (r : Wl.report) =
    record ~scenario:"wlm/4q-batch" ~mode ~elapsed_ms:r.Wl.makespan_ms
      ~switches:(total (fun (d : Dispatcher.report) -> d.Dispatcher.switches) r)
      ~collectors:
        (total (fun (d : Dispatcher.report) -> d.Dispatcher.collectors) r)
  in
  rec_wl "serial-fixed" serial;
  rec_wl "broker" conc

(* ------------------------------------------------------------------ *)
(* Plan-verifier sanitizer: the static analysis re-runs at every
   decision point and after every mid-query plan switch.  It must find
   zero violations and, being pure analysis, must not move the simulated
   clock by a single tick.                                             *)

let sanitize () =
  header
    (Fmt.str
       "Plan verifier sanitizer - every decision point and plan switch \
        re-verified (sf=%g, budget=%d pages)"
       sf budget_pages);
  let catalog = Workload.experiment_catalog ~sf () in
  (* one catalog, two engines: the sanitizer flag is the only difference *)
  let plain = Engine.create ~budget_pages ~pool_pages catalog in
  let sanitized =
    Engine.create ~budget_pages ~pool_pages
      ~verify_plans:Mqr_analysis.Verifier.Sanitize catalog
  in
  Fmt.pr "%-5s %-8s | %12s %12s %8s %9s %7s  %s@." "query" "mode" "plain(ms)"
    "sanit(ms)" "verifs" "switches" "pages" "identical";
  let mismatches = ref 0 in
  List.iter
    (fun (q : Queries.query) ->
       List.iter
         (fun mode ->
            let scenario = "sanitize/" ^ q.Queries.name in
            let ms = Dispatcher.mode_to_string mode in
            let off = Engine.run_sql plain ~mode q.Queries.sql in
            let on = Engine.run_sql sanitized ~mode q.Queries.sql in
            record ~scenario ~mode:(ms ^ "-plain")
              ~elapsed_ms:off.Dispatcher.elapsed_ms
              ~switches:off.Dispatcher.switches
              ~collectors:off.Dispatcher.collectors;
            record ~scenario ~mode:(ms ^ "-sanitize")
              ~elapsed_ms:on.Dispatcher.elapsed_ms
              ~switches:on.Dispatcher.switches
              ~collectors:on.Dispatcher.collectors;
            let identical =
              on.Dispatcher.elapsed_ms = off.Dispatcher.elapsed_ms
              && on.Dispatcher.filter_pages_held = 0
            in
            if not identical then incr mismatches;
            Fmt.pr "%-5s %-8s | %12.1f %12.1f %8d %9d %7d  %s@."
              q.Queries.name ms off.Dispatcher.elapsed_ms
              on.Dispatcher.elapsed_ms on.Dispatcher.verifications
              on.Dispatcher.switches on.Dispatcher.filter_pages_held
              (if identical then "yes" else "** MISMATCH **"))
         [ Dispatcher.Off; Dispatcher.Full ])
    Queries.all;
  if !mismatches = 0 then
    Fmt.pr
      "@.Verification is pure analysis: zero violations, zero filter pages \
       held, and@.the simulated clock is bit-identical with the sanitizer \
       on.@."
  else Fmt.pr "@.** %d sanitizer mismatches **@." !mismatches

(* ------------------------------------------------------------------ *)
(* Bound-checked re-optimization: estimate-based plan switching versus
   switching gated on provable cost intervals.  Bound-checked mode only
   admits a candidate whose worst-case remaining cost (upper bound of the
   cardinality-bound analysis) beats the current plan's best-case
   remaining cost, so a switch can never lose to estimation error: any
   regression an estimate-based mode shows against memory-only must
   disappear (Q5), while a switch whose margin is provable survives
   (Q7).  The inverse price also shows: a genuinely winning switch whose
   margin is *not* provable is forgone, and the replan-and-check
   overhead at vetoed decision points is still paid (Q8 lands behind
   memory-only).  The whole scenario runs under the sanitizer, so every
   observed cardinality is also cross-checked against its provable
   interval (BND-OBSERVED is a hard error).                            *)

let bounds_scenario () =
  header
    (Fmt.str
       "Bound-checked switching - estimate-based vs guaranteed-win plan \
        switches (sf=%g, budget=%d pages)"
       sf budget_pages);
  let catalog = Workload.experiment_catalog ~sf () in
  let engine =
    Engine.create ~budget_pages ~pool_pages
      ~verify_plans:Mqr_analysis.Verifier.Sanitize catalog
  in
  Fmt.pr "%-5s %-8s | %10s %12s %12s %12s %13s  %s@." "query" "class" "normal"
    "mem-only" "plan-only" "full" "bound-checked" "identical";
  let interesting =
    List.filter
      (fun (q : Queries.query) -> q.Queries.klass <> Queries.Simple)
      Queries.all
  in
  let mismatches = ref 0 in
  List.iter
    (fun (q : Queries.query) ->
       let scenario = "bounds/" ^ q.Queries.name in
       let run mode = time_r ~scenario engine mode q in
       let normal = run Dispatcher.Off in
       let mem = run Dispatcher.Memory_only in
       let plan = run Dispatcher.Plan_only in
       let full = run Dispatcher.Full in
       let bc = run Dispatcher.Bound_checked in
       (* a vetoed or admitted switch must never change the answer; a
          switch re-orders float aggregation, so compare rendered rows
          (%.4f) as multisets rather than raw bit patterns *)
       let canon (r : Dispatcher.report) =
         List.sort compare
           (Array.to_list
              (Array.map (Fmt.str "%a" Mqr_storage.Tuple.pp)
                 r.Dispatcher.rows))
       in
       let identical =
         canon bc = canon normal
         && canon full = canon normal
         && canon plan = canon normal
         && canon mem = canon normal
       in
       if not identical then incr mismatches;
       Fmt.pr "%-5s %-8s | %10.1f %12.1f %12.1f %12.1f %13.1f  %s@."
         q.Queries.name
         (Queries.klass_to_string q.Queries.klass)
         normal.Dispatcher.elapsed_ms mem.Dispatcher.elapsed_ms
         plan.Dispatcher.elapsed_ms full.Dispatcher.elapsed_ms
         bc.Dispatcher.elapsed_ms
         (if identical then "yes" else "** MISMATCH **"))
    interesting;
  if !mismatches = 0 then
    Fmt.pr
      "@.Bound-checked switching admits only switches that are provable \
       wins under the cost@.model: estimate-based regressions against \
       memory-only disappear, unprovable wins@.are forgone (and their \
       replanning overhead still paid), every mode returns the@.same \
       rows, and the sanitizer observed zero out-of-interval \
       cardinalities.@."
  else Fmt.pr "@.** %d result mismatches **@." !mismatches

(* ------------------------------------------------------------------ *)
(* Tracing overhead: the observability subsystem (operator spans,
   decision-point audit ledger, metrics) is pure observation — it never
   charges the simulated clock, so a traced run must produce byte-
   identical result rows and bit-identical simulated elapsed time.  The
   acceptance bar is <= 5% simulated overhead; pure observation gives
   exactly 0%.                                                         *)

let trace_scenario () =
  let module Trace = Mqr_obs.Trace in
  header
    (Fmt.str
       "Tracing overhead - operator spans + audit ledger + metrics on every \
        query (sf=%g, budget=%d pages)"
       sf budget_pages);
  let catalog = Workload.experiment_catalog ~sf () in
  (* one catalog, two engines: the trace collector is the only difference *)
  let plain = Engine.create ~budget_pages ~pool_pages catalog in
  let tr = Trace.create () in
  let traced = Engine.create ~budget_pages ~pool_pages ~trace:tr catalog in
  Fmt.pr "%-5s | %12s %12s %9s %7s %7s  %s@." "query" "plain(ms)" "traced(ms)"
    "overhead" "spans" "ledger" "identical";
  let mismatches = ref 0 in
  let prev_spans = ref 0 and prev_ledger = ref 0 in
  List.iter
    (fun (q : Queries.query) ->
       let scenario = "trace/" ^ q.Queries.name in
       let off = Engine.run_sql plain q.Queries.sql in
       let on = Engine.run_sql traced q.Queries.sql in
       record ~scenario ~mode:"trace-off" ~elapsed_ms:off.Dispatcher.elapsed_ms
         ~switches:off.Dispatcher.switches
         ~collectors:off.Dispatcher.collectors;
       record ~scenario ~mode:"trace-on" ~elapsed_ms:on.Dispatcher.elapsed_ms
         ~switches:on.Dispatcher.switches ~collectors:on.Dispatcher.collectors;
       let spans = List.length (Trace.spans tr) in
       let ledger = List.length (Trace.ledger tr) in
       let identical =
         on.Dispatcher.elapsed_ms = off.Dispatcher.elapsed_ms
         && on.Dispatcher.rows = off.Dispatcher.rows
       in
       if not identical then incr mismatches;
       Fmt.pr "%-5s | %12.1f %12.1f %8.1f%% %7d %7d  %s@." q.Queries.name
         off.Dispatcher.elapsed_ms on.Dispatcher.elapsed_ms
         (100.0
          *. (on.Dispatcher.elapsed_ms -. off.Dispatcher.elapsed_ms)
          /. off.Dispatcher.elapsed_ms)
         (spans - !prev_spans) (ledger - !prev_ledger)
         (if identical then "yes" else "** MISMATCH **");
       prev_spans := spans;
       prev_ledger := ledger)
    Queries.all;
  assert (Trace.open_spans tr = 0);
  if !mismatches = 0 then
    Fmt.pr
      "@.Tracing is pure observation: 0%% simulated overhead, result rows \
       and elapsed@.time byte-identical with the collector attached \
       (%d spans, %d ledger entries).@."
      (List.length (Trace.spans tr))
      (List.length (Trace.ledger tr))
  else Fmt.pr "@.** %d tracing mismatches **@." !mismatches

(* ------------------------------------------------------------------ *)
(* Real multicore execution: the plan degree of parallelism fixes the
   simulated cost, the domain-pool size only changes wall-clock time.
   Each query runs with max dop 4 on pools of 1/2/4/8 domains; the table
   reports simulated AND wall-clock elapsed and checks that result rows
   and simulated time are byte-identical at every pool size.           *)

let parallel_scenario () =
  header
    (Fmt.str
       "Parallel execution - max dop 4 on domain pools of 1/2/4/8 (sf=%g, \
        budget=%d pages, %d domain(s) recommended on this machine)"
       sf budget_pages
       (Domain.recommended_domain_count ()));
  let catalog = Workload.experiment_catalog ~sf () in
  let opt_options =
    { Mqr_opt.Optimizer.default_options with
      Mqr_opt.Optimizer.planning_mem_pages = max 8 (budget_pages / 2);
      max_dop = 4 }
  in
  Fmt.pr "%-5s | %4s | %12s %12s %12s %9s %10s  %s@." "query" "pool" "sim(ms)"
    "wall-min(ms)" "wall-med(ms)" "par ops" "peak pages" "identical";
  let mismatches = ref 0 in
  List.iter
    (fun name ->
       let q = Queries.find name in
       let baseline = ref None in
       List.iter
         (fun pool_size ->
            (* wall-clock noise reduction: repeat the measured run and
               report min and median; the simulation is single-shot (it
               is bit-identical across repetitions, which rep 2+ assert) *)
            let runs =
              List.init wall_reps (fun _ ->
                  let engine =
                    Engine.create ~budget_pages ~pool_pages ~opt_options
                      ~parallel:pool_size catalog
                  in
                  let t0 = Unix.gettimeofday () in
                  let r =
                    Engine.run_sql engine ~mode:Dispatcher.Full q.Queries.sql
                  in
                  let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
                  Engine.shutdown engine;
                  (r, wall_ms))
            in
            let r = fst (List.hd runs) in
            let rep_stable =
              List.for_all
                (fun ((r' : Dispatcher.report), _) ->
                   r'.Dispatcher.rows = r.Dispatcher.rows
                   && r'.Dispatcher.elapsed_ms = r.Dispatcher.elapsed_ms)
                (List.tl runs)
            in
            let wall_min, wall_med = min_median (List.map snd runs) in
            let scenario = Fmt.str "parallel/%s/pool=%d" name pool_size in
            record ~scenario ~mode:"sim" ~elapsed_ms:r.Dispatcher.elapsed_ms
              ~switches:r.Dispatcher.switches
              ~collectors:r.Dispatcher.collectors;
            record ~scenario ~mode:"wall-min" ~elapsed_ms:wall_min
              ~switches:r.Dispatcher.switches
              ~collectors:r.Dispatcher.collectors;
            record ~scenario ~mode:"wall-median" ~elapsed_ms:wall_med
              ~switches:r.Dispatcher.switches
              ~collectors:r.Dispatcher.collectors;
            let identical =
              rep_stable
              && (match !baseline with
                 | None ->
                   baseline :=
                     Some (r.Dispatcher.rows, r.Dispatcher.elapsed_ms);
                   true
                 | Some (rows, sim) ->
                   rows = r.Dispatcher.rows && sim = r.Dispatcher.elapsed_ms)
            in
            if not identical then incr mismatches;
            let par_ops =
              List.length
                (List.filter
                   (function Dispatcher.Ev_parallel _ -> true | _ -> false)
                   r.Dispatcher.events)
            in
            Fmt.pr "%-5s | %4d | %12.1f %12.1f %12.1f %9d %10d  %s@." name
              pool_size r.Dispatcher.elapsed_ms wall_min wall_med par_ops
              r.Dispatcher.worker_pages_peak
              (if identical then "yes" else "** MISMATCH **"))
         [ 1; 2; 4; 8 ])
    [ "Q3"; "Q5"; "Q10" ];
  if !mismatches = 0 then
    Fmt.pr
      "@.The pool is invisible to the simulation: result rows and simulated \
       elapsed@.are byte-identical at every pool size.  Degrees are chosen \
       by the optimizer@.and charged to the simulated clock; the domains \
       only move wall-clock time.@."
  else Fmt.pr "@.** %d parallel mismatches **@." !mismatches

(* ------------------------------------------------------------------ *)
(* Query service: mixed interactive + batch tenants on one engine.  A
   web tenant (interactive SLO) and an etl tenant (batch SLO) share the
   broker and the domain pool; the batch tenant's join-heavy statements
   arrive first and hold the machine.  Round-robin is the PR 1 baseline
   (FIFO admission, global broker); slo-aware adds EDF admission over
   deadlines plus per-tenant fair-share memory floors, and must pull the
   interactive p99 down without changing a single result row.  Rows are
   checked byte-identical against solo executions, the simulation must be
   bit-identical across repetitions and pool sizes, and the sanitizer
   asserts per-tenant transient pages are zero at every decision point. *)

let service_scenario () =
  let module Service = Mqr_wlm.Service in
  let module Session = Mqr_wlm.Session in
  header
    (Fmt.str
       "Query service - web (interactive) + etl (batch) tenants, \
        round-robin vs slo-aware, pools 1/4/8 (sf=%g, budget=%d pages, \
        sanitize on)"
       sf budget_pages);
  let catalog = Workload.experiment_catalog ~sf () in
  let opt_options =
    { Mqr_opt.Optimizer.default_options with
      Mqr_opt.Optimizer.planning_mem_pages = max 8 (budget_pages / 2);
      max_dop = 4 }
  in
  (* (tenant, query, arrival ms): the batch statements land first and
     occupy the machine; interactive statements trickle in behind them *)
  let arrivals =
    [ ("etl", "Q5", 0.0); ("etl", "Q7", 0.0); ("etl", "Q10", 20.0);
      ("etl", "Q8", 30.0); ("web", "Q3", 5.0); ("web", "Q6", 10.0);
      ("web", "Q1", 40.0); ("web", "Q6", 120.0); ("web", "Q3", 250.0);
      ("web", "Q1", 500.0); ("web", "Q6", 900.0); ("web", "Q3", 1500.0) ]
  in
  let arrivals =
    List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) arrivals
  in
  let render (rows : Mqr_storage.Tuple.t array) =
    Array.to_list (Array.map (Fmt.str "%a" Mqr_storage.Tuple.pp) rows)
  in
  (* solo baseline: each distinct query alone on an otherwise idle
     engine — the service must return exactly these rows per statement *)
  let solo = Hashtbl.create 8 in
  List.iter
    (fun (_, name, _) ->
       if not (Hashtbl.mem solo name) then begin
         let engine =
           Engine.create ~budget_pages ~pool_pages ~opt_options catalog
         in
         let r = Engine.run_sql engine (Queries.find name).Queries.sql in
         Engine.shutdown engine;
         Hashtbl.replace solo name (render r.Dispatcher.rows)
       end)
    arrivals;
  let run_once ~pool ~policy =
    let engine =
      Engine.create ~budget_pages ~pool_pages ~opt_options ~parallel:pool
        ~verify_plans:Mqr_analysis.Verifier.Sanitize catalog
    in
    let options =
      { Service.default_options with
        Service.policy;
        max_concurrency = 3;
        wall_clock = Some Unix.gettimeofday }
    in
    let svc = Service.create ~options engine in
    Service.add_tenant svc ~slo:Session.Interactive "web";
    Service.add_tenant svc ~slo:Session.Batch "etl";
    let sessions = Hashtbl.create 2 in
    Hashtbl.replace sessions "web" (Service.open_session svc ~tenant:"web");
    Hashtbl.replace sessions "etl" (Service.open_session svc ~tenant:"etl");
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (tenant, name, arrival_ms) ->
         ignore
           (Session.submit ~label:name ~arrival_ms
              (Hashtbl.find sessions tenant)
              (Queries.find name).Queries.sql))
      arrivals;
    Service.drain svc;
    let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    let rep = Service.report svc in
    (* byte-identical rows per statement vs its solo execution *)
    let rows_ok =
      List.for_all
        (fun (s : Session.stmt) ->
           match s.Session.stmt_status with
           | Session.Done r ->
             render r.Dispatcher.rows = Hashtbl.find solo s.Session.stmt_label
           | _ -> false)
        rep.Service.statements
    in
    Engine.shutdown engine;
    (rep, wall_ms, rows_ok)
  in
  (* the simulated side of a report: everything scheduling could affect;
     must be bit-identical across repetitions and pool sizes *)
  let sim_fingerprint (rep : Service.report) =
    ( rep.Service.makespan_ms,
      List.map
        (fun (slo, (c : Service.class_stats)) ->
           (slo, c.Service.cs_n, c.Service.cs_p50_ms, c.Service.cs_p99_ms,
            c.Service.cs_violations))
        rep.Service.classes,
      List.map
        (fun (s : Session.stmt) ->
           (s.Session.stmt_id, s.Session.stmt_admit_ms,
            s.Session.stmt_finish_ms))
        rep.Service.statements )
  in
  Fmt.pr
    "%4s %-12s | %10s %9s %9s | %8s %8s | %8s %8s | %4s %4s %5s  %s@." "pool"
    "policy" "mksp(sim)" "wall-min" "wall-med" "int-p50" "int-p99" "bat-p50"
    "bat-p99" "viol" "miss" "waits" "rows";
  let mismatches = ref 0 in
  let p99s = Hashtbl.create 8 in
  List.iter
    (fun policy ->
       let pool1 = ref None in
       List.iter
         (fun pool ->
            let runs =
              List.init wall_reps (fun _ -> run_once ~pool ~policy)
            in
            let rep, _, _ = List.hd runs in
            let fp = sim_fingerprint rep in
            let rep_stable =
              List.for_all
                (fun (r, _, _) -> sim_fingerprint r = fp)
                (List.tl runs)
            in
            let pool_stable =
              match !pool1 with
              | None -> pool1 := Some fp; true
              | Some fp1 -> fp = fp1
            in
            let rows_ok = List.for_all (fun (_, _, ok) -> ok) runs in
            if not (rep_stable && pool_stable && rows_ok) then
              incr mismatches;
            let wall_min, wall_med =
              min_median (List.map (fun (_, w, _) -> w) runs)
            in
            let cls slo = List.assoc slo rep.Service.classes in
            let int_c = cls Session.Interactive
            and bat_c = cls Session.Batch in
            let waits =
              List.fold_left
                (fun acc (t : Service.tenant_summary) ->
                   acc + t.Service.tns_broker_waits)
                0 rep.Service.tenants
            in
            let replans =
              List.fold_left
                (fun acc (t : Service.tenant_summary) ->
                   acc + t.Service.tns_replans)
                0 rep.Service.tenants
            in
            (* terminal statements that never completed by their deadline
               (late completions + failed/cancelled/shed) *)
            let misses =
              List.fold_left
                (fun acc (t : Service.tenant_summary) ->
                   acc + t.Service.tns_deadline_miss)
                0 rep.Service.tenants
            in
            let scenario =
              Fmt.str "service/pool=%d/%s" pool
                (Service.policy_to_string policy)
            in
            record ~scenario ~mode:"sim-makespan"
              ~elapsed_ms:rep.Service.makespan_ms ~switches:replans
              ~collectors:0;
            record ~scenario ~mode:"wall-makespan-min" ~elapsed_ms:wall_min
              ~switches:replans ~collectors:0;
            record ~scenario ~mode:"wall-makespan-median"
              ~elapsed_ms:wall_med ~switches:replans ~collectors:0;
            record ~scenario ~mode:"interactive-p50-sim"
              ~elapsed_ms:int_c.Service.cs_p50_ms ~switches:0 ~collectors:0;
            record ~scenario ~mode:"interactive-p99-sim"
              ~elapsed_ms:int_c.Service.cs_p99_ms ~switches:0 ~collectors:0;
            record ~scenario ~mode:"batch-p99-sim"
              ~elapsed_ms:bat_c.Service.cs_p99_ms ~switches:0 ~collectors:0;
            record ~scenario ~mode:"deadline-misses"
              ~elapsed_ms:(float_of_int misses) ~switches:0 ~collectors:0;
            Hashtbl.replace p99s (pool, policy) int_c.Service.cs_p99_ms;
            Fmt.pr
              "%4d %-12s | %10.1f %9.1f %9.1f | %8.1f %8.1f | %8.1f %8.1f \
               | %4d %4d %5d  %s@."
              pool
              (Service.policy_to_string policy)
              rep.Service.makespan_ms wall_min wall_med
              int_c.Service.cs_p50_ms int_c.Service.cs_p99_ms
              bat_c.Service.cs_p50_ms bat_c.Service.cs_p99_ms
              (int_c.Service.cs_violations + bat_c.Service.cs_violations)
              misses waits
              (if rep_stable && pool_stable && rows_ok then "yes"
               else "** MISMATCH **"))
         [ 1; 4; 8 ])
    [ Service.Round_robin; Service.Slo_aware ];
  List.iter
    (fun pool ->
       let rr = Hashtbl.find p99s (pool, Service.Round_robin) in
       let slo = Hashtbl.find p99s (pool, Service.Slo_aware) in
       Fmt.pr
         "pool %d: interactive p99 %10.1f ms (round-robin) -> %10.1f ms \
          (slo-aware)  %.2fx%s@."
         pool rr slo (rr /. slo)
         (if slo < rr then "" else "  ** NO IMPROVEMENT **"))
    [ 1; 4; 8 ];
  if !mismatches = 0 then
    Fmt.pr
      "@.Scheduling reads only the virtual timeline: simulated makespans, \
       percentiles and@.per-statement times are bit-identical across \
       repetitions and pool sizes, every@.statement's rows match its solo \
       execution byte-for-byte, and the sanitizer saw@.zero per-tenant \
       transient pages at every decision point.@."
  else Fmt.pr "@.** %d service mismatches **@." !mismatches

(* ------------------------------------------------------------------ *)
(* Progress/ETA estimation: at every decision point the estimator folds
   the simulated clock, the remainder plan's Eq.1 cost and the provable
   remaining-cost interval into percent-done and an ETA interval.
   Attaching it is pure observation, so rows must stay byte-identical
   and simulated times bit-identical.  Accuracy is measured as the error
   of the finish-time forecast made at the FIRST update (the hardest
   one: nothing has executed yet) against the actual finish; every
   update stream must be monotone and land at exactly 100%.            *)

let progress_scenario () =
  let module Progress = Mqr_obs.Progress in
  header
    (Fmt.str
       "Progress/ETA estimation - every query x reopt mode (sf=%g, \
        budget=%d pages)"
       sf budget_pages);
  let modes =
    [ Dispatcher.Off; Dispatcher.Memory_only; Dispatcher.Plan_only;
      Dispatcher.Full; Dispatcher.Bound_checked ]
  in
  Fmt.pr "%-5s %-14s | %10s %12s %8s %7s %7s %9s  %s@." "query" "mode"
    "actual(ms)" "eta@start" "err%" "updates" "cover%" "monotone" "identical";
  let mismatches = ref 0 and non_monotone = ref 0 and runs = ref 0 in
  List.iter
    (fun mode ->
       let catalog = Workload.experiment_catalog ~sf () in
       (* one catalog, two engines: the estimator is the only difference *)
       let plain = Engine.create ~budget_pages ~pool_pages catalog in
       let probed = Engine.create ~budget_pages ~pool_pages catalog in
       List.iter
         (fun (q : Queries.query) ->
            incr runs;
            let off = Engine.run_sql plain ~mode q.Queries.sql in
            let p = Progress.create () in
            let on = Engine.run_sql probed ~mode ~progress:p q.Queries.sql in
            let identical =
              on.Dispatcher.elapsed_ms = off.Dispatcher.elapsed_ms
              && on.Dispatcher.rows = off.Dispatcher.rows
            in
            if not identical then incr mismatches;
            let samples = Progress.samples p in
            let actual = on.Dispatcher.elapsed_ms in
            let monotone =
              Progress.monotone p && Progress.finished p
              && (match Progress.latest p with
                  | Some s -> s.Progress.percent = 100.0
                  | None -> false)
            in
            if not monotone then incr non_monotone;
            let first_est =
              match samples with
              | s :: _ -> s.Progress.ts_ms +. s.Progress.remaining_est_ms
              | [] -> 0.0
            in
            let err_pct =
              100.0 *. Float.abs (first_est -. actual) /. actual
            in
            (* how often the provable ETA interval brackets the truth *)
            let covered =
              List.length
                (List.filter
                   (fun (s : Progress.sample) ->
                      s.Progress.eta_lo_ms <= actual
                      && actual <= s.Progress.eta_hi_ms)
                   samples)
            in
            let cover_pct =
              100.0 *. float_of_int covered
              /. float_of_int (max 1 (List.length samples))
            in
            record ~scenario:("progress/" ^ q.Queries.name)
              ~mode:(Dispatcher.mode_to_string mode)
              ~elapsed_ms:(Float.abs (first_est -. actual))
              ~switches:on.Dispatcher.switches
              ~collectors:(List.length samples);
            Fmt.pr "%-5s %-14s | %10.1f %12.1f %7.1f%% %7d %6.0f%% %9s  %s@."
              q.Queries.name
              (Dispatcher.mode_to_string mode)
              actual first_est err_pct (List.length samples) cover_pct
              (if monotone then "yes" else "** NO **")
              (if identical then "yes" else "** MISMATCH **"))
         Queries.all;
       Engine.shutdown plain;
       Engine.shutdown probed)
    modes;
  if !mismatches = 0 && !non_monotone = 0 then
    Fmt.pr
      "@.The estimator is pure observation (rows byte-identical, simulated \
       times bit-identical@.with progress attached) and %d/%d update streams \
       were monotone to exactly 100%%.@."
      (!runs - !non_monotone) !runs
  else
    Fmt.pr "@.** %d identity mismatches, %d non-monotone streams **@."
      !mismatches !non_monotone

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per figure/table id.       *)

let micro () =
  header "Bechamel micro-benchmarks (real wall-clock per figure driver)";
  let open Bechamel in
  let tiny_engine =
    lazy
      (let catalog = Workload.experiment_catalog ~sf:0.001 () in
       Engine.create ~budget_pages:64 catalog)
  in
  let run_query mode name () =
    let engine = Lazy.force tiny_engine in
    ignore (Engine.run_sql engine ~mode (Queries.find name).Queries.sql)
  in
  let tests =
    [ Test.make ~name:"f10/Q5-normal" (Staged.stage (run_query Dispatcher.Off "Q5"));
      Test.make ~name:"f10/Q5-reopt" (Staged.stage (run_query Dispatcher.Full "Q5"));
      Test.make ~name:"f11/Q10-memory-only"
        (Staged.stage (run_query Dispatcher.Memory_only "Q10"));
      Test.make ~name:"f11/Q10-plan-only"
        (Staged.stage (run_query Dispatcher.Plan_only "Q10"));
      Test.make ~name:"f12/Q3-reopt" (Staged.stage (run_query Dispatcher.Full "Q3"));
      Test.make ~name:"xfig3/Q10-memory"
        (Staged.stage (run_query Dispatcher.Memory_only "Q10"));
      Test.make ~name:"overhead/Q1-collectors"
        (Staged.stage (run_query Dispatcher.Full "Q1"));
      Test.make ~name:"sens/Q5-optimize-only"
        (Staged.stage (fun () ->
             let engine = Lazy.force tiny_engine in
             ignore (Engine.explain engine (Queries.find "Q5").Queries.sql))) ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
       let raw = Benchmark.all cfg [ instance ] test in
       Hashtbl.iter
         (fun name r ->
            let ols =
              Analyze.one
                (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
                instance r
            in
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Fmt.pr "  %-28s %12.0f ns/run@." name est
            | _ -> Fmt.pr "  %-28s (no estimate)@." name)
         raw)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let which =
    if Array.length Sys.argv > 1 then
      List.tl (Array.to_list Sys.argv)
    else [ "all" ]
  in
  List.iter (fun which ->
  match which with
   | "f10" -> figure10 ()
   | "f11" -> figure11 ()
   | "f12" -> figure12 ()
   | "xfig3" -> xfig3 ()
   | "sens" -> sensitivity ()
   | "overhead" -> overhead ()
   | "joins" -> ablation_joins ()
   | "hist" -> ablation_histograms ()
   | "hybrid" -> hybrid ()
   | "scale" -> scalability ()
   | "rf" -> runtime_filters ()
   | "wlm" -> wlm ()
   | "sanitize" -> sanitize ()
   | "bounds" -> bounds_scenario ()
   | "trace" -> trace_scenario ()
   | "parallel" -> parallel_scenario ()
   | "service" -> service_scenario ()
   | "progress" -> progress_scenario ()
   | "micro" -> micro ()
   | "figures" ->
     figure10 ();
     figure11 ();
     figure12 ()
   | "all" ->
     figure10 ();
     figure11 ();
     figure12 ();
     xfig3 ();
     sensitivity ();
     overhead ();
     ablation_joins ();
     ablation_histograms ();
     hybrid ();
     scalability ();
     runtime_filters ();
     wlm ();
     sanitize ();
     bounds_scenario ();
     trace_scenario ();
     parallel_scenario ();
     service_scenario ();
     progress_scenario ();
     micro ()
   | other ->
     Fmt.epr
       "unknown experiment %S (f10 f11 f12 xfig3 sens overhead joins hist \
        hybrid scale rf wlm sanitize bounds trace parallel service progress \
        micro all)@."
       other;
     exit 1)
    which;
  emit_json ()
