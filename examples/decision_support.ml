(* Decision support: the paper's motivating workload.  Runs TPC-D Q5 (a
   5-join query) against a catalog whose statistics have gone stale and
   narrates every mid-query decision the engine takes.

     dune exec examples/decision_support.exe *)

module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload

let () =
  Fmt.pr "Generating a scaled-down TPC-D database (sf = 0.005)...@.";
  let catalog = Workload.experiment_catalog ~sf:0.005 () in
  let engine = Engine.create ~budget_pages:200 catalog in
  let q = Queries.find "Q5" in
  Fmt.pr "@.%s (%s, %d joins):@.%s@.@." q.Queries.name
    (Queries.klass_to_string q.Queries.klass)
    q.Queries.joins q.Queries.sql;

  Fmt.pr "=== pass 1: conventional execution (re-optimization off) ===@.";
  let normal = Engine.run_sql engine ~mode:Dispatcher.Off q.Queries.sql in
  Fmt.pr "completed in %.1f simulated ms@.@." normal.Dispatcher.elapsed_ms;

  Fmt.pr "=== pass 2: with Dynamic Re-Optimization ===@.";
  let reopt = Engine.run_sql engine ~mode:Dispatcher.Full q.Queries.sql in
  List.iter
    (fun ev -> Fmt.pr "  %a@." Dispatcher.pp_event ev)
    reopt.Dispatcher.events;
  Fmt.pr "completed in %.1f simulated ms (%d collectors, %d plan switches)@.@."
    reopt.Dispatcher.elapsed_ms reopt.Dispatcher.collectors
    reopt.Dispatcher.switches;

  let check =
    Array.length normal.Dispatcher.rows = Array.length reopt.Dispatcher.rows
  in
  Fmt.pr "results identical: %b@." check;
  Fmt.pr "improvement: %.1f%%@."
    (100.0
     *. (normal.Dispatcher.elapsed_ms -. reopt.Dispatcher.elapsed_ms)
     /. normal.Dispatcher.elapsed_ms);

  Fmt.pr "@.--- query answer ---@.";
  Array.iter (fun t -> Fmt.pr "%a@." Mqr_storage.Tuple.pp t) reopt.Dispatcher.rows
