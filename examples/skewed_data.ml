(* Skew (paper Section 3.2, Figure 12): Zipf-distributed attribute values
   break coarse catalog histograms.  The engine's statistics collectors
   build purpose-specific histograms at run time and correct the
   estimates mid-query.

     dune exec examples/skewed_data.exe *)

module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload
module Histogram = Mqr_stats.Histogram

let run_at_z z =
  (* catalog statistics kept as equi-width histograms: the "medium
     inaccuracy" class that degrades under skew *)
  (* order matters: switching the histogram kind re-analyzes every table,
     so it must precede the drop/stale degradations *)
  let degradations =
    Workload.Histogram_kind Histogram.Equi_width :: Workload.paper_degradations
  in
  let catalog = Workload.experiment_catalog ~sf:0.004 ~skew_z:z ~degradations () in
  let engine = Engine.create ~budget_pages:160 catalog in
  let q = Queries.find "Q3" in
  let normal = Engine.run_sql engine ~mode:Dispatcher.Off q.Queries.sql in
  let reopt = Engine.run_sql engine ~mode:Dispatcher.Full q.Queries.sql in
  (normal.Dispatcher.elapsed_ms, reopt.Dispatcher.elapsed_ms,
   reopt.Dispatcher.switches)

let () =
  Fmt.pr "TPC-D Q3 with equi-width catalog histograms, increasing Zipf skew:@.@.";
  Fmt.pr "%8s | %12s %12s %8s %s@." "zipf z" "normal(ms)" "reopt(ms)" "ratio"
    "plan switches";
  List.iter
    (fun z ->
       let normal, reopt, switches = run_at_z z in
       Fmt.pr "%8.1f | %12.1f %12.1f %8.3f %d@." z normal reopt
         (reopt /. normal) switches)
    [ 0.0; 0.3; 0.6; 1.0 ];
  Fmt.pr
    "@.Skew interacts with re-optimization in both directions, as in the \
     paper's Figure 12:@.coarse equi-width statistics degrade under skew \
     (more to correct), while the@.observed run-time histograms stay exact; \
     but a skewed heavy hitter can also@.shrink the very intermediate \
     results whose misestimates re-optimization fixes.@."
