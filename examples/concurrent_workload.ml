(* A batch of TPC-D queries through the workload manager, twice: once
   serially with a fixed per-query budget, then concurrently with the
   shared memory broker and cross-query statistics feedback.  The broker
   leases slices of one global page budget to the running queries, and
   pages freed by a finished query are re-granted to the others — so the
   batch overlaps and the simulated makespan drops well below the serial
   sum, while every query returns exactly the same rows.

     dune exec examples/concurrent_workload.exe *)

module Engine = Mqr_core.Engine
module Queries = Mqr_tpcd.Queries
module Wl = Mqr_wlm.Workload

let budget_pages = 128

let engine () =
  let catalog = Mqr_tpcd.Workload.experiment_catalog ~sf:0.002 () in
  Engine.create ~budget_pages ~pool_pages:(8 * budget_pages) catalog

let () =
  let batch =
    List.map
      (fun name -> Wl.spec ~label:name (Queries.find name).Queries.sql)
      [ "Q3"; "Q5"; "Q7"; "Q10" ]
  in

  Fmt.pr "== serial: one query at a time, %d pages each ==@." budget_pages;
  let serial =
    Wl.run
      ~options:
        { Wl.default_options with
          Wl.max_concurrency = 1;
          memory = Wl.Fixed_per_query budget_pages;
          feedback = false }
      (engine ()) batch
  in
  Fmt.pr "%a@.@." Wl.pp serial;

  Fmt.pr "== concurrent: broker leases over the same %d pages ==@."
    budget_pages;
  let conc =
    Wl.run
      ~options:{ Wl.default_options with Wl.max_concurrency = 4 }
      (engine ()) batch
  in
  Fmt.pr "%a@.@." Wl.pp conc;

  Fmt.pr "makespan: %.1f ms serial -> %.1f ms concurrent (%.2fx)@."
    serial.Wl.makespan_ms conc.Wl.makespan_ms
    (serial.Wl.makespan_ms /. conc.Wl.makespan_ms)
