(* Object-relational predicates (the paper's introduction): a selection
   through a user-defined function whose selectivity the optimizer cannot
   estimate.  The inaccuracy-potential rules mark everything above it
   High, the collectors observe the real cardinality, and the remainder
   of the query is re-optimized.

     dune exec examples/udf_predicates.exe *)

open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher

let () =
  let catalog = Catalog.create () in
  let rng = Mqr_stats.Rng.create 99 in
  (* "polygons": the paper's spatial-ADT motivation, reduced to bounding
     boxes stored as four coordinates *)
  let parcels_schema =
    Schema.make
      [ Schema.col "parcel_id" Value.TInt;
        Schema.col "x0" Value.TFloat; Schema.col "y0" Value.TFloat;
        Schema.col "x1" Value.TFloat; Schema.col "y1" Value.TFloat;
        Schema.col "zone" Value.TInt ]
  in
  let parcels = Heap_file.create parcels_schema in
  for i = 0 to 19_999 do
    let x = float_of_int (Mqr_stats.Rng.int rng 1000) in
    let y = float_of_int (Mqr_stats.Rng.int rng 1000) in
    Heap_file.append parcels
      [| Value.Int i; Value.Float x; Value.Float y;
         Value.Float (x +. 1.0 +. float_of_int (Mqr_stats.Rng.int rng 20));
         Value.Float (y +. 1.0 +. float_of_int (Mqr_stats.Rng.int rng 20));
         Value.Int (i mod 50) |]
  done;
  let owners_schema =
    Schema.make
      [ Schema.col "zone" Value.TInt; Schema.col ~width:20 "owner" Value.TString ]
  in
  let owners = Heap_file.create owners_schema in
  for i = 0 to 49 do
    Heap_file.append owners
      [| Value.Int i; Value.String (Printf.sprintf "district-%02d" i) |]
  done;
  ignore (Catalog.add_table catalog "parcels" parcels);
  ignore (Catalog.add_table catalog "owners" owners);
  Catalog.analyze_table ~keys:[ "parcel_id" ] catalog "parcels";
  Catalog.analyze_table ~keys:[ "zone" ] catalog "owners";

  let engine = Engine.create ~budget_pages:96 catalog in
  (* The user-defined spatial predicate: does the parcel's box intersect a
     query window?  The engine has no statistics for this, so it guesses
     (and the guess is badly wrong: the window is tiny). *)
  Engine.register_udf engine ~name:"intersects_window" (function
      | [ Value.Float x0; Value.Float y0; Value.Float x1; Value.Float y1 ] ->
        Value.Bool (x1 >= 100.0 && x0 <= 120.0 && y1 >= 100.0 && y0 <= 120.0)
      | _ -> Value.Null);

  let sql =
    "select owner, count(*) as parcels \
     from parcels, owners \
     where intersects_window(x0, y0, x1, y1) \
     and parcels.zone = owners.zone \
     group by owner order by parcels desc limit 10"
  in
  Fmt.pr "query with a user-defined spatial predicate:@.  %s@.@." sql;

  let normal = Engine.run_sql engine ~mode:Dispatcher.Off sql in
  let reopt = Engine.run_sql engine ~mode:Dispatcher.Full sql in
  Fmt.pr "conventional execution:  %10.1f simulated ms@."
    normal.Dispatcher.elapsed_ms;
  Fmt.pr "dynamic re-optimization: %10.1f simulated ms (%d collectors, %d switches)@.@."
    reopt.Dispatcher.elapsed_ms reopt.Dispatcher.collectors
    reopt.Dispatcher.switches;
  List.iter (fun ev -> Fmt.pr "  %a@." Dispatcher.pp_event ev) reopt.Dispatcher.events;
  (* the point of this example: the optimizer cannot estimate the
     user-defined predicate, and EXPLAIN ANALYZE shows how far off it was
     and that the collectors measured the truth at run time *)
  Fmt.pr "@.--- explain analyze (estimates vs observed cardinalities) ---@.";
  Dispatcher.pp_plan_with_actuals Fmt.stdout
    (reopt.Dispatcher.initial_plan, reopt.Dispatcher.actual_rows);
  Fmt.pr "@.--- matching districts ---@.";
  Array.iter (fun t -> Fmt.pr "%a@." Tuple.pp t) reopt.Dispatcher.rows
