(* Quickstart: build a small database, run SQL through the engine with
   Dynamic Re-Optimization enabled, and inspect what happened.

     dune exec examples/quickstart.exe *)

open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher

let () =
  (* 1. Create a catalog and two tables. *)
  let catalog = Catalog.create () in
  let products_schema =
    Schema.make
      [ Schema.col "product_id" Value.TInt;
        Schema.col ~width:12 "category" Value.TString;
        Schema.col "price" Value.TFloat ]
  in
  let sales_schema =
    Schema.make
      [ Schema.col "sale_id" Value.TInt;
        Schema.col "product_id" Value.TInt;
        Schema.col "quantity" Value.TInt;
        Schema.col "sale_date" Value.TDate ]
  in
  let products = Heap_file.create products_schema in
  let sales = Heap_file.create sales_schema in
  let rng = Mqr_stats.Rng.create 2024 in
  let categories = [| "tools"; "garden"; "kitchen"; "toys" |] in
  for i = 0 to 499 do
    Heap_file.append products
      [| Value.Int i;
         Value.String categories.(Mqr_stats.Rng.int rng 4);
         Value.Float (5.0 +. float_of_int (Mqr_stats.Rng.int rng 200)) |]
  done;
  let epoch = match Value.date_of_string "2024-01-01" with
    | Value.Date d -> d
    | _ -> assert false
  in
  for i = 0 to 19_999 do
    Heap_file.append sales
      [| Value.Int i;
         Value.Int (Mqr_stats.Rng.int rng 500);
         Value.Int (1 + Mqr_stats.Rng.int rng 10);
         Value.Date (epoch + Mqr_stats.Rng.int rng 365) |]
  done;
  ignore (Catalog.add_table catalog "products" products);
  ignore (Catalog.add_table catalog "sales" sales);

  (* 2. Collect statistics and build an index, as a DBA would. *)
  Catalog.analyze_table ~keys:[ "product_id" ] catalog "products";
  Catalog.analyze_table ~keys:[ "sale_id" ] catalog "sales";
  ignore (Catalog.create_index catalog ~table:"products" ~column:"product_id");

  (* 3. Make the catalog *wrong*, the situation the paper addresses:
     pretend sales doubled since ANALYZE ran. *)
  Catalog.degrade_scale_cardinality catalog ~table:"sales" 0.5;

  (* 4. Run a query with Dynamic Re-Optimization (the default mode). *)
  let engine = Engine.create ~budget_pages:64 catalog in
  let sql =
    "select category, sum(quantity) as units, count(*) as n \
     from sales, products \
     where sales.product_id = products.product_id \
     and sale_date >= date '2024-06-01' and price > 50.0 \
     group by category order by units desc"
  in
  Fmt.pr "SQL: %s@.@." sql;
  Fmt.pr "--- annotated plan (optimizer estimates embedded) ---@.";
  Fmt.pr "%s@." (Mqr_opt.Plan.to_string (Engine.explain engine sql));

  let report = Engine.run_sql engine sql in
  Fmt.pr "--- results ---@.";
  Array.iter (fun t -> Fmt.pr "%a@." Tuple.pp t) report.Dispatcher.rows;
  Fmt.pr "@.--- what the engine did ---@.";
  Engine.print_summary report;

  (* 5. Compare against the same query with re-optimization off. *)
  let baseline = Engine.run_sql engine ~mode:Dispatcher.Off sql in
  Fmt.pr "baseline (no re-optimization): %.1f simulated ms@."
    baseline.Dispatcher.elapsed_ms;
  Fmt.pr "with dynamic re-optimization:  %.1f simulated ms@."
    report.Dispatcher.elapsed_ms
