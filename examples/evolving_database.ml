(* A database that drifts away from its statistics — the paper's core
   motivation ("statistics are not kept up-to-date").  We ANALYZE once,
   then keep inserting; the optimizer's estimates decay, dynamic
   re-optimization absorbs the error, and a fresh ANALYZE resets the
   world.

     dune exec examples/evolving_database.exe *)

open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Rng = Mqr_stats.Rng

let sql =
  "select region, sum(amount) as total, count(*) as n \
   from orders, accounts, regions \
   where orders.account_id = accounts.account_id \
   and accounts.region_id = regions.region_id \
   and amount > 500.0 and status = 'open' and region = 'north' \
   group by region order by total desc"

let verbose = Sys.getenv_opt "MQR_VERBOSE" <> None

let measure engine =
  let normal = Engine.run_sql engine ~mode:Dispatcher.Off sql in
  let reopt = Engine.run_sql engine ~mode:Dispatcher.Full sql in
  if verbose then
    List.iter (fun ev -> Fmt.pr "    %a@." Dispatcher.pp_event ev)
      reopt.Dispatcher.events;
  (normal.Dispatcher.elapsed_ms, reopt.Dispatcher.elapsed_ms,
   reopt.Dispatcher.switches)

let () =
  let catalog = Catalog.create () in
  let rng = Rng.create 31337 in
  let regions_schema =
    Schema.make
      [ Schema.col "region_id" Value.TInt;
        Schema.col ~width:10 "region" Value.TString ]
  in
  let accounts_schema =
    Schema.make
      [ Schema.col "account_id" Value.TInt;
        Schema.col "region_id" Value.TInt;
        Schema.col ~width:24 "name" Value.TString ]
  in
  let orders_schema =
    Schema.make
      [ Schema.col "order_id" Value.TInt;
        Schema.col "account_id" Value.TInt;
        Schema.col "amount" Value.TFloat;
        Schema.col ~width:8 "status" Value.TString ]
  in
  let regions = Heap_file.create regions_schema in
  let region_names = [| "north"; "south"; "east"; "west" |] in
  Array.iteri
    (fun i name -> Heap_file.append regions [| Value.Int i; Value.String name |])
    region_names;
  let accounts = Heap_file.create accounts_schema in
  let n_accounts = 9_000 in
  for i = 0 to 2_999 do
    Heap_file.append accounts
      [| Value.Int i; Value.Int (Rng.int rng 4);
         Value.String (Printf.sprintf "account-%05d" i) |]
  done;
  let orders = Heap_file.create orders_schema in
  let statuses = [| "open"; "closed"; "void" |] in
  let add_order oid =
    [| Value.Int oid;
       Value.Int (Rng.int rng n_accounts);
       Value.Float (float_of_int (Rng.int rng 1000));
       Value.String statuses.(Rng.int rng 3) |]
  in
  for i = 0 to 29_999 do
    Heap_file.append orders (add_order i)
  done;
  ignore (Catalog.add_table catalog "regions" regions);
  ignore (Catalog.add_table catalog "accounts" accounts);
  ignore (Catalog.add_table catalog "orders" orders);
  Catalog.analyze_table ~keys:[ "region_id" ] catalog "regions";
  Catalog.analyze_table ~keys:[ "account_id" ] catalog "accounts";
  Catalog.analyze_table ~keys:[ "order_id" ] catalog "orders";

  let engine = Engine.create ~budget_pages:180 catalog in
  Fmt.pr "t0: freshly analyzed (3k accounts, 30k orders)@.";
  let n0, r0, s0 = measure engine in
  Fmt.pr "  normal %8.1f ms | reopt %8.1f ms | switches %d@.@." n0 r0 s0;

  (* the application keeps writing: accounts triple, stats don't move *)
  Fmt.pr "... onboarding 6,000 new accounts (no ANALYZE) ...@.";
  for batch = 0 to 59 do
    let values =
      String.concat ", "
        (List.init 100 (fun i ->
             let aid = 3_000 + (batch * 100) + i in
             Printf.sprintf "(%d, %d, 'account-%05d')" aid (Rng.int rng 4) aid))
    in
    match Engine.execute engine ("insert into accounts values " ^ values) with
    | Engine.Modified { count = 100; _ } -> ()
    | _ -> failwith "insert failed"
  done;
  let tbl = Catalog.find_exn catalog "accounts" in
  Fmt.pr "  update ratio since ANALYZE: %.0f%%@.@."
    (100.0 *. Catalog.update_ratio tbl);

  Fmt.pr "t1: accounts statistics are now 3x stale@.";
  let n1, r1, s1 = measure engine in
  Fmt.pr "  normal %8.1f ms | reopt %8.1f ms | switches %d@." n1 r1 s1;
  Fmt.pr "  re-optimization cuts the stale-statistics run by %.1f%%@."
    (100.0 *. (n1 -. r1) /. n1);
  Fmt.pr "  (of the drift penalty itself it recovers %.0f%%)@.@."
    (100.0 *. (n1 -. r1) /. Float.max 1.0 (n1 -. n0));

  Fmt.pr "t2: after ANALYZE@.";
  Engine.analyze engine ~keys:[ "order_id" ] "orders";
  Engine.analyze engine ~keys:[ "account_id" ] "accounts";
  let n2, r2, s2 = measure engine in
  Fmt.pr "  normal %8.1f ms | reopt %8.1f ms | switches %d@." n2 r2 s2
