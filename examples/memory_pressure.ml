(* The paper's Figure 3 worked example: a three-table join under a tight
   memory budget.  The optimizer over-estimates a filter's output, so the
   memory manager starves the second hash join, forcing it to run in two
   passes.  A statistics collector observes the real filter output
   mid-query; re-invoking the memory manager with the improved estimate
   gives the second join enough memory for a single pass.

     dune exec examples/memory_pressure.exe *)

open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher

let () =
  let catalog = Catalog.create () in
  let rng = Mqr_stats.Rng.create 7 in
  (* rel1: the filtered relation of Figure 3 *)
  let rel1_schema =
    Schema.make
      [ Schema.col "joinattr2" Value.TInt;
        Schema.col "joinattr3" Value.TInt;
        Schema.col "selectattr1" Value.TInt;
        Schema.col "selectattr2" Value.TInt;
        Schema.col "groupattr" Value.TInt;
        Schema.col ~width:64 "payload" Value.TString ]
  in
  let rel1 = Heap_file.create rel1_schema in
  for i = 0 to 19_999 do
    (* correlated selection attributes: half of the small-s1 rows push s2
       out of range, so the independence assumption over-estimates the
       conjunction by 2x (the paper's 15000-vs-7500 scenario) *)
    let s1 = Mqr_stats.Rng.int rng 100 in
    let s2 =
      if s1 < 50 && Mqr_stats.Rng.int rng 2 = 0 then
        60 + Mqr_stats.Rng.int rng 40
      else Mqr_stats.Rng.int rng 100
    in
    Heap_file.append rel1
      [| Value.Int (i mod 5000); Value.Int (i mod 2000); Value.Int s1;
         Value.Int s2; Value.Int (i mod 25);
         Value.String (String.make 48 'x') |]
  done;
  (* rel2 and rel3 are larger than the filtered rel1 stream, so the
     optimizer builds each hash table on the (mis-estimated) intermediate,
     exactly the situation of the paper's Figure 3 *)
  let rel2_schema =
    Schema.make
      [ Schema.col "joinattr2" Value.TInt; Schema.col "b2" Value.TInt;
        Schema.col ~width:24 "pad2" Value.TString ]
  in
  let rel2 = Heap_file.create rel2_schema in
  for i = 0 to 29_999 do
    Heap_file.append rel2
      [| Value.Int i; Value.Int (i * 3); Value.String (String.make 20 'y') |]
  done;
  let rel3_schema =
    Schema.make
      [ Schema.col "joinattr3" Value.TInt; Schema.col "b3" Value.TInt;
        Schema.col ~width:24 "pad3" Value.TString ]
  in
  let rel3 = Heap_file.create rel3_schema in
  for i = 0 to 29_999 do
    Heap_file.append rel3
      [| Value.Int i; Value.Int (i * 7); Value.String (String.make 20 'z') |]
  done;
  ignore (Catalog.add_table catalog "rel1" rel1);
  ignore (Catalog.add_table catalog "rel2" rel2);
  ignore (Catalog.add_table catalog "rel3" rel3);
  Catalog.analyze_table catalog "rel1";
  Catalog.analyze_table ~keys:[ "joinattr2" ] catalog "rel2";
  Catalog.analyze_table ~keys:[ "joinattr3" ] catalog "rel3";

  (* Figure 1's query: filter rel1, join with rel2 and rel3, aggregate. *)
  let sql =
    "select groupattr, avg(selectattr1) as a1, avg(selectattr2) as a2 \
     from rel1, rel2, rel3 \
     where selectattr1 < 50 and selectattr2 < 50 \
     and rel1.joinattr2 = rel2.joinattr2 \
     and rel1.joinattr3 = rel3.joinattr3 \
     group by groupattr"
  in
  (* A budget tight enough that, under the over-estimate, the memory
     manager cannot give both joins their maximum. *)
  let engine = Engine.create ~budget_pages:200 catalog in
  Fmt.pr "query:@.  %s@.@." sql;

  Fmt.pr "=== static allocation (no re-optimization) ===@.";
  let normal = Engine.run_sql engine ~mode:Dispatcher.Off sql in
  Fmt.pr "elapsed: %.1f simulated ms, I/O writes (spills): %d@.@."
    normal.Dispatcher.elapsed_ms
    normal.Dispatcher.counters.Sim_clock.writes;

  Fmt.pr "=== dynamic memory re-allocation (paper Section 2.3) ===@.";
  let dyn = Engine.run_sql engine ~mode:Dispatcher.Memory_only sql in
  List.iter (fun ev -> Fmt.pr "  %a@." Dispatcher.pp_event ev) dyn.Dispatcher.events;
  Fmt.pr "elapsed: %.1f simulated ms, I/O writes (spills): %d@.@."
    dyn.Dispatcher.elapsed_ms
    dyn.Dispatcher.counters.Sim_clock.writes;

  Fmt.pr "identical answers: %b@."
    (Array.length normal.Dispatcher.rows = Array.length dyn.Dispatcher.rows);
  Fmt.pr "memory re-allocation saved %.1f%%@."
    (100.0
     *. (normal.Dispatcher.elapsed_ms -. dyn.Dispatcher.elapsed_ms)
     /. normal.Dispatcher.elapsed_ms)
