open Mqr_storage

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_compare_ints () =
  check_bool "1 < 2" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  check_bool "2 > 1" true (Value.compare (Value.Int 2) (Value.Int 1) > 0);
  check_int "eq" 0 (Value.compare (Value.Int 5) (Value.Int 5))

let test_compare_mixed_numeric () =
  check_int "int vs equal float" 0
    (Value.compare (Value.Int 3) (Value.Float 3.0));
  check_bool "int < float" true
    (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  check_bool "float > int" true
    (Value.compare (Value.Float 3.5) (Value.Int 3) > 0)

let test_null_sorts_first () =
  check_bool "null < int" true (Value.compare Value.Null (Value.Int (-100)) < 0);
  check_bool "null = null" true (Value.compare Value.Null Value.Null = 0)

let test_incompatible_compare () =
  Alcotest.check_raises "string vs int"
    (Invalid_argument "Value.compare: incompatible types") (fun () ->
      ignore (Value.compare (Value.String "a") (Value.Int 1)))

let test_hash_numeric_consistency () =
  check_int "hash int = hash equal float" (Value.hash (Value.Int 7))
    (Value.hash (Value.Float 7.0))

let test_date_roundtrip () =
  List.iter
    (fun s ->
       match Value.date_of_string s with
       | Value.Date d -> check_string s s (Value.date_to_string d)
       | _ -> Alcotest.fail "not a date")
    [ "1992-01-01"; "1995-03-15"; "1998-08-02"; "2000-02-29"; "1970-01-01";
      "1969-12-31"; "2024-12-31" ]

let test_date_epoch () =
  match Value.date_of_string "1970-01-01" with
  | Value.Date d -> check_int "epoch day 0" 0 d
  | _ -> Alcotest.fail "not a date"

let test_date_ordering () =
  let d1 = Value.date_of_string "1994-01-01" in
  let d2 = Value.date_of_string "1994-12-31" in
  check_bool "jan < dec" true (Value.compare d1 d2 < 0)

let test_date_invalid () =
  List.iter
    (fun s ->
       check_bool s true
         (try
            ignore (Value.date_of_string s);
            false
          with Invalid_argument _ -> true))
    [ "not-a-date"; "1994-13-01"; "1994-00-10"; "1994-01-32"; "1994-01"; "" ]

let test_byte_size () =
  check_int "int" 8 (Value.byte_size (Value.Int 1));
  check_int "string" (4 + 5) (Value.byte_size (Value.String "hello"));
  check_int "null" 1 (Value.byte_size Value.Null)

let test_add () =
  check_bool "int add" true
    (Value.equal (Value.Int 3) (Value.add (Value.Int 1) (Value.Int 2)));
  check_bool "null identity" true
    (Value.equal (Value.Int 5) (Value.add Value.Null (Value.Int 5)));
  check_bool "mixed" true
    (Value.equal (Value.Float 3.5) (Value.add (Value.Int 1) (Value.Float 2.5)))

let test_min_max () =
  check_bool "min" true
    (Value.equal (Value.Int 1) (Value.min_value (Value.Int 1) (Value.Int 2)));
  check_bool "max skips null" true
    (Value.equal (Value.Int 2) (Value.max_value Value.Null (Value.Int 2)))

let test_to_from_float () =
  check_bool "roundtrip int" true
    (Value.equal (Value.Int 42) (Value.of_float Value.TInt 42.0));
  check_bool "bool to float" true (Value.to_float (Value.Bool true) = 1.0)

(* property: date_to_string/date_of_string round-trip over a wide range *)
let prop_date_roundtrip =
  QCheck.Test.make ~name:"date day-number roundtrip" ~count:500
    QCheck.(int_range (-100_000) 100_000)
    (fun day ->
       match Value.date_of_string (Value.date_to_string day) with
       | Value.Date d -> d = day
       | _ -> false)

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"int compare antisymmetric" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
       let c1 = Value.compare (Value.Int a) (Value.Int b) in
       let c2 = Value.compare (Value.Int b) (Value.Int a) in
       (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0) || (c1 = 0 && c2 = 0))

let suite =
  [ Alcotest.test_case "compare ints" `Quick test_compare_ints;
    Alcotest.test_case "compare mixed numeric" `Quick test_compare_mixed_numeric;
    Alcotest.test_case "null sorts first" `Quick test_null_sorts_first;
    Alcotest.test_case "incompatible compare raises" `Quick test_incompatible_compare;
    Alcotest.test_case "hash numeric consistency" `Quick test_hash_numeric_consistency;
    Alcotest.test_case "date roundtrip" `Quick test_date_roundtrip;
    Alcotest.test_case "date epoch" `Quick test_date_epoch;
    Alcotest.test_case "date ordering" `Quick test_date_ordering;
    Alcotest.test_case "date invalid" `Quick test_date_invalid;
    Alcotest.test_case "byte size" `Quick test_byte_size;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "to/from float" `Quick test_to_from_float;
    QCheck_alcotest.to_alcotest prop_date_roundtrip;
    QCheck_alcotest.to_alcotest prop_compare_antisymmetric ]
