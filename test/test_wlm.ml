(* Workload manager: broker invariants, admission control, determinism,
   and concurrent-equals-serial results. *)
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Broker = Mqr_wlm.Broker
module Admission = Mqr_wlm.Admission
module Wl = Mqr_wlm.Workload
module Queries = Mqr_tpcd.Queries
module Tpcd = Mqr_tpcd.Workload

let engine () =
  let catalog = Tpcd.experiment_catalog ~sf:0.001 () in
  Engine.create ~budget_pages:64 ~pool_pages:512 catalog

let specs names =
  List.map
    (fun n -> Wl.spec ~label:n (Queries.find n).Queries.sql)
    names

let serial_options =
  { Wl.default_options with
    Wl.max_concurrency = 1;
    memory = Wl.Fixed_per_query 64;
    feedback = false }

(* --- broker --- *)

let test_broker_never_oversubscribes () =
  let b = Broker.create ~budget_pages:100 ~max_concurrency:4 in
  let sum_ok () =
    Alcotest.(check bool) "sum of leases <= budget" true
      (Broker.total_leased b <= Broker.budget_pages b)
  in
  Alcotest.(check int) "greedy lease capped at budget" 100
    (Broker.lease b ~id:1 ~min_pages:10 ~max_pages:400);
  sum_ok ();
  Alcotest.(check int) "nothing left for the second query" 0
    (Broker.lease b ~id:2 ~min_pages:10 ~max_pages:50);
  sum_ok ();
  (* shrinking re-negotiation returns the difference to the pool *)
  Alcotest.(check int) "shrink to 30" 30
    (Broker.lease b ~id:1 ~min_pages:10 ~max_pages:30);
  Alcotest.(check int) "freed pages available again" 50
    (Broker.lease b ~id:2 ~min_pages:10 ~max_pages:50);
  sum_ok ();
  Broker.release b ~id:1;
  Broker.release b ~id:2;
  Alcotest.(check int) "all pages back" 100 (Broker.free_pages b);
  Alcotest.(check int) "no leases outstanding" 0 (Broker.outstanding b)

let test_broker_reserves_floor_for_pending () =
  let b = Broker.create ~budget_pages:100 ~max_concurrency:4 in
  Broker.set_pending b 3;
  (* floor is 25; three pending queries keep 75 pages in reserve *)
  Alcotest.(check int) "greedy lease leaves room for the batch" 25
    (Broker.lease b ~id:1 ~min_pages:1 ~max_pages:400);
  Broker.set_pending b 0;
  Alcotest.(check int) "reservation relaxes once the batch started" 100
    (Broker.lease b ~id:1 ~min_pages:1 ~max_pages:400)

let test_broker_admission_floor () =
  let b = Broker.create ~budget_pages:100 ~max_concurrency:4 in
  Alcotest.(check bool) "admits when free" true (Broker.can_admit b);
  ignore (Broker.lease b ~id:1 ~min_pages:80 ~max_pages:80);
  Alcotest.(check bool) "refuses below the floor" false (Broker.can_admit b);
  Broker.release b ~id:1;
  Alcotest.(check bool) "admits again after release" true (Broker.can_admit b)

let test_broker_tenant_floors_prevent_starvation () =
  let b = Broker.create ~budget_pages:100 ~max_concurrency:4 in
  Broker.register_tenant b ~weight:1 "alpha";
  Broker.register_tenant b ~weight:1 "beta";
  Broker.set_tenant_active b "alpha" true;
  Broker.set_tenant_active b "beta" true;
  Alcotest.(check int) "equal weights split the budget" 50
    (Broker.tenant_share b "alpha");
  (* a greedy alpha lease is clipped at the pages beta is entitled to *)
  Alcotest.(check int) "greedy lease stops at the other share" 50
    (Broker.lease b ~tenant:"alpha" ~id:1 ~min_pages:10 ~max_pages:400);
  Alcotest.(check bool) "the clip is counted as a broker wait" true
    (Broker.tenant_floor_waits b "alpha" >= 1);
  Alcotest.(check bool) "beta can still admit" true
    (Broker.can_admit_tenant b "beta");
  Alcotest.(check int) "beta gets its full share despite alpha" 50
    (Broker.lease b ~tenant:"beta" ~id:2 ~min_pages:10 ~max_pages:400);
  (* work-conserving: an idle tenant's share is available to everyone *)
  Broker.release b ~id:1;
  Broker.release b ~id:2;
  Broker.set_tenant_active b "beta" false;
  Alcotest.(check int) "idle share is not reserved" 100
    (Broker.lease b ~tenant:"alpha" ~id:3 ~min_pages:10 ~max_pages:400);
  Broker.release b ~id:3

let test_broker_tenant_lease_accounting () =
  let b = Broker.create ~budget_pages:100 ~max_concurrency:4 in
  Broker.register_tenant b ~weight:3 "alpha";
  Broker.register_tenant b ~weight:1 "beta";
  Alcotest.(check int) "weighted share" 75 (Broker.tenant_share b "alpha");
  ignore (Broker.lease b ~tenant:"alpha" ~id:1 ~min_pages:10 ~max_pages:40);
  ignore (Broker.lease b ~tenant:"alpha" ~id:2 ~min_pages:10 ~max_pages:20);
  ignore (Broker.lease b ~tenant:"beta" ~id:3 ~min_pages:10 ~max_pages:25);
  Alcotest.(check int) "leases sum per tenant" 60
    (Broker.tenant_leased b "alpha");
  Alcotest.(check int) "other tenant tracked separately" 25
    (Broker.tenant_leased b "beta");
  (* a shrinking re-negotiation is reflected in the owner's account *)
  ignore (Broker.lease b ~tenant:"alpha" ~id:1 ~min_pages:10 ~max_pages:10);
  Alcotest.(check int) "shrink returns tenant pages" 30
    (Broker.tenant_leased b "alpha");
  Broker.release b ~id:1;
  Broker.release b ~id:2;
  Broker.release b ~id:3;
  Alcotest.(check int) "alpha account back to zero" 0
    (Broker.tenant_leased b "alpha");
  Alcotest.(check int) "beta account back to zero" 0
    (Broker.tenant_leased b "beta");
  Alcotest.(check int) "peak remembers the high-water mark" 60
    (Broker.tenant_peak b "alpha");
  Alcotest.(check int) "no leases outstanding" 0 (Broker.outstanding b)

(* --- admission queue --- *)

let test_admission_priority_order () =
  let q = Admission.create ~capacity:3 in
  Alcotest.(check bool) "offer a" true (Admission.offer q ~priority:0 "a");
  Alcotest.(check bool) "offer b" true (Admission.offer q ~priority:5 "b");
  Alcotest.(check bool) "offer c" true (Admission.offer q ~priority:5 "c");
  Alcotest.(check bool) "full" false (Admission.offer q ~priority:9 "d");
  Alcotest.(check (option string)) "highest priority first" (Some "b")
    (Admission.take q);
  Alcotest.(check (option string)) "fifo within a priority" (Some "c")
    (Admission.take q);
  Alcotest.(check (option string)) "lowest last" (Some "a") (Admission.take q);
  Alcotest.(check (option string)) "empty" None (Admission.take q)

let test_admission_deadline_order () =
  let q = Admission.create ~capacity:4 in
  (* no deadline = infinity: priority order is preserved exactly *)
  Alcotest.(check bool) "offer slack" true
    (Admission.offer q ~priority:9 "slack");
  Alcotest.(check bool) "offer late" true
    (Admission.offer q ~deadline:100.0 ~priority:0 "late");
  Alcotest.(check bool) "offer soon" true
    (Admission.offer q ~deadline:5.0 ~priority:0 "soon");
  (* the tightest deadline overtakes everything, even higher priority *)
  Alcotest.(check (option string)) "earliest deadline first" (Some "soon")
    (Admission.take q);
  Alcotest.(check (option string)) "next deadline" (Some "late")
    (Admission.take q);
  Alcotest.(check (option string)) "no deadline last" (Some "slack")
    (Admission.take q)

let test_admission_take_if_skips () =
  let q = Admission.create ~capacity:4 in
  ignore (Admission.offer q ~deadline:5.0 ~priority:0 "capped");
  ignore (Admission.offer q ~deadline:10.0 ~priority:0 "second");
  ignore (Admission.offer q ~priority:0 "third");
  (* the head's tenant is at its cap: skip it without reordering *)
  Alcotest.(check (option string)) "best eligible item" (Some "second")
    (Admission.take_if q (fun x -> x <> "capped"));
  Alcotest.(check (option string)) "skipped head still first" (Some "capped")
    (Admission.take q);
  Alcotest.(check (option string)) "rest untouched" (Some "third")
    (Admission.take q);
  Alcotest.(check bool) "drained" true (Admission.is_empty q)

(* --- workload --- *)

let canonical_by_label (r : Wl.report) =
  List.map
    (fun (q : Wl.query_result) ->
       (q.Wl.label, Reference.canonical q.Wl.report.Dispatcher.rows))
    r.Wl.results

let test_concurrent_matches_serial () =
  let names = [ "Q3"; "Q6"; "Q10"; "Q5" ] in
  let serial = Wl.run ~options:serial_options (engine ()) (specs names) in
  let conc =
    Wl.run
      ~options:{ Wl.default_options with Wl.max_concurrency = 4 }
      (engine ()) (specs names)
  in
  Alcotest.(check int) "all completed" 4 (List.length conc.Wl.results);
  List.iter2
    (fun (label, serial_rows) (label', conc_rows) ->
       Alcotest.(check string) "same order" label label';
       Alcotest.(check (list (list string))) (label ^ " same rows")
         serial_rows conc_rows)
    (canonical_by_label serial) (canonical_by_label conc);
  List.iter2
    (fun (a : Wl.query_result) (b : Wl.query_result) ->
       Alcotest.(check bool) (a.Wl.label ^ " bit-identical rows") true
         (a.Wl.report.Dispatcher.rows = b.Wl.report.Dispatcher.rows))
    serial.Wl.results conc.Wl.results;
  Alcotest.(check int) "no lease outlives its query" 0
    conc.Wl.outstanding_leases;
  Alcotest.(check bool) "peak within budget" true
    (conc.Wl.peak_leased_pages <= 64);
  Alcotest.(check bool) "overlap beats serial makespan" true
    (conc.Wl.makespan_ms < serial.Wl.makespan_ms);
  Alcotest.(check bool) "serial batch queues" true
    (serial.Wl.total_queue_ms > 0.0)

let test_workload_deterministic () =
  let names = [ "Q3"; "Q6"; "Q10" ] in
  let options =
    { Wl.default_options with
      Wl.max_concurrency = 2;
      arrival_jitter_ms = 100.0;
      seed = 42 }
  in
  let r1 = Wl.run ~options (engine ()) (specs names) in
  let r2 = Wl.run ~options (engine ()) (specs names) in
  Alcotest.(check (float 0.0)) "same makespan" r1.Wl.makespan_ms
    r2.Wl.makespan_ms;
  List.iter2
    (fun (a : Wl.query_result) (b : Wl.query_result) ->
       Alcotest.(check (float 0.0)) (a.Wl.label ^ " same arrival")
         a.Wl.arrival_ms b.Wl.arrival_ms;
       Alcotest.(check (float 0.0)) (a.Wl.label ^ " same admit") a.Wl.admit_ms
         b.Wl.admit_ms;
       Alcotest.(check (float 0.0)) (a.Wl.label ^ " same finish")
         a.Wl.finish_ms b.Wl.finish_ms;
       Alcotest.(check (list (list string))) (a.Wl.label ^ " same rows")
         (Reference.canonical a.Wl.report.Dispatcher.rows)
         (Reference.canonical b.Wl.report.Dispatcher.rows))
    r1.Wl.results r2.Wl.results

let test_rejection_when_queue_full () =
  let names = [ "Q6"; "Q6"; "Q6" ] in
  let options =
    { serial_options with Wl.max_queue = 1 }
  in
  let r = Wl.run ~options (engine ()) (specs names) in
  Alcotest.(check int) "two completed" 2 (List.length r.Wl.results);
  Alcotest.(check (list (pair int string))) "third was shed" [ (2, "Q6") ]
    r.Wl.rejected

let test_priority_jumps_the_queue () =
  let base = (Queries.find "Q6").Queries.sql in
  let batch =
    [ Wl.spec ~label:"first" ~priority:0 base;
      Wl.spec ~label:"low" ~priority:0 base;
      Wl.spec ~label:"high" ~priority:5 base ]
  in
  let r = Wl.run ~options:serial_options (engine ()) batch in
  let admit label =
    (List.find (fun (q : Wl.query_result) -> q.Wl.label = label) r.Wl.results)
      .Wl.admit_ms
  in
  Alcotest.(check bool) "high priority admitted before low" true
    (admit "high" < admit "low")

let test_feedback_applies_stats () =
  let names = [ "Q10"; "Q10" ] in
  let options =
    { Wl.default_options with
      Wl.max_concurrency = 1;
      memory = Wl.Fixed_per_query 64 }
  in
  let r = Wl.run ~options (engine ()) (specs names) in
  Alcotest.(check bool) "first run published" true (r.Wl.stats_published > 0);
  Alcotest.(check bool) "second run applied cached stats" true
    (r.Wl.stats_applied > 0)

let suite =
  [ Alcotest.test_case "broker never oversubscribes" `Quick
      test_broker_never_oversubscribes;
    Alcotest.test_case "broker reserves floor for pending" `Quick
      test_broker_reserves_floor_for_pending;
    Alcotest.test_case "broker admission floor" `Quick
      test_broker_admission_floor;
    Alcotest.test_case "broker tenant floors prevent starvation" `Quick
      test_broker_tenant_floors_prevent_starvation;
    Alcotest.test_case "broker tenant lease accounting" `Quick
      test_broker_tenant_lease_accounting;
    Alcotest.test_case "admission priority order" `Quick
      test_admission_priority_order;
    Alcotest.test_case "admission deadline order" `Quick
      test_admission_deadline_order;
    Alcotest.test_case "admission take_if skips" `Quick
      test_admission_take_if_skips;
    Alcotest.test_case "concurrent matches serial" `Quick
      test_concurrent_matches_serial;
    Alcotest.test_case "workload deterministic" `Quick
      test_workload_deterministic;
    Alcotest.test_case "rejection when queue full" `Quick
      test_rejection_when_queue_full;
    Alcotest.test_case "priority jumps the queue" `Quick
      test_priority_jumps_the_queue;
    Alcotest.test_case "feedback applies stats" `Quick
      test_feedback_applies_stats ]
