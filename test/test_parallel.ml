(* Partitioned-parallel operators: identical results to serial, near-linear
   speedup of the simulated clock, skew sensitivity. *)
open Mqr_storage
module Exec_ctx = Mqr_exec.Exec_ctx
module Parallel = Mqr_exec.Parallel
module Join = Mqr_exec.Join
module Aggregate = Mqr_exec.Aggregate
module Scan = Mqr_exec.Scan
module Expr = Mqr_expr.Expr

let ctx () = Exec_ctx.create ~pool_pages:1024 ()

let schema_ab q =
  Schema.make
    [ Schema.col ~qualifier:q "a" Value.TInt;
      Schema.col ~qualifier:q "b" Value.TInt ]

let rows_of l = Array.of_list (List.map (fun (a, b) -> [| Value.Int a; Value.Int b |]) l)

let canon rows =
  Array.to_list rows
  |> List.map (fun t -> Array.to_list (Array.map Value.to_string t))
  |> List.sort compare

let heap_of n =
  let heap = Heap_file.create (schema_ab "t") in
  for i = 0 to n - 1 do
    Heap_file.append heap [| Value.Int i; Value.Int (i * 2) |]
  done;
  heap

let test_parallel_scan_matches_serial () =
  let heap = heap_of 5000 in
  let serial = Scan.seq_scan (ctx ()) heap in
  let par = Parallel.scan (ctx ()) (Parallel.make ~degree:4 ()) heap in
  Alcotest.(check (list (list string))) "same rows" (canon serial) (canon par)

let test_parallel_scan_speedup () =
  let heap = heap_of 20_000 in
  let c1 = ctx () and c4 = ctx () in
  ignore (Parallel.scan c1 Parallel.sequential heap);
  ignore (Parallel.scan c4 (Parallel.make ~degree:4 ()) heap);
  let t1 = Sim_clock.elapsed_ms c1.Exec_ctx.clock in
  let t4 = Sim_clock.elapsed_ms c4.Exec_ctx.clock in
  Alcotest.(check bool)
    (Printf.sprintf "speedup: %.1f vs %.1f" t1 t4)
    true
    (t4 < t1 /. 2.5)

let test_parallel_join_matches_serial () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of (List.init 2000 (fun i -> (i mod 97, i))) in
  let right = rows_of (List.init 500 (fun i -> (i mod 97, i + 10_000))) in
  let serial =
    Join.hash_join c ~mem_pages:64 ~build:(right, rs) ~probe:(left, ls)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  let par_rows, _ =
    Parallel.hash_join (ctx ()) (Parallel.make ~degree:4 ()) ~mem_pages:64
      ~build:(right, rs) ~probe:(left, ls) ~keys:[ ("l.a", "r.a") ] ()
  in
  Alcotest.(check (list (list string))) "same rows"
    (canon serial.Join.rows) (canon par_rows)

let test_parallel_join_speedup_with_exchange_cost () =
  let mk () = rows_of (List.init 20_000 (fun i -> (i, i))) in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let time degree =
    let c = ctx () in
    let p = Parallel.make ~degree () in
    ignore
      (Parallel.hash_join c p ~mem_pages:16 ~build:(mk (), rs)
         ~probe:(mk (), ls) ~keys:[ ("l.a", "r.a") ] ());
    Sim_clock.elapsed_ms c.Exec_ctx.clock
  in
  let t1 = time 1 and t4 = time 4 in
  Alcotest.(check bool)
    (Printf.sprintf "parallel join faster: %.1f vs %.1f" t1 t4)
    true (t4 < t1);
  (* but not super-linear: the exchange is charged *)
  Alcotest.(check bool) "no free lunch" true (t4 > t1 /. 16.0)

let test_parallel_agg_matches_serial () =
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 5000 (fun i -> (i mod 13, i))) in
  let aggs =
    [ { Aggregate.fn = Aggregate.Sum; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "s" };
      { Aggregate.fn = Aggregate.Avg; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "a" } ]
  in
  let serial =
    Aggregate.hash_aggregate (ctx ()) ~mem_pages:32 schema ~group_by:[ "t.a" ]
      ~aggs rows
  in
  let par_rows, _ =
    Parallel.aggregate (ctx ()) (Parallel.make ~degree:4 ()) ~mem_pages:32
      schema ~group_by:[ "t.a" ] ~aggs rows
  in
  Alcotest.(check (list (list string))) "same groups"
    (canon serial.Aggregate.rows) (canon par_rows)

let test_skewed_partition_dominates () =
  (* all rows share one key: one worker does everything, so parallelism
     buys nothing on the join itself *)
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let skewed = rows_of (List.init 8000 (fun i -> (7, i))) in
  let uniform = rows_of (List.init 8000 (fun i -> (i mod 1024, i))) in
  let probe = rows_of [ (7, 0) ] in
  let time rows =
    let c = ctx () in
    ignore
      (Parallel.hash_join c (Parallel.make ~degree:4 ()) ~mem_pages:64
         ~build:(rows, rs) ~probe:(probe, ls) ~keys:[ ("l.a", "r.a") ] ());
    Sim_clock.elapsed_ms c.Exec_ctx.clock
  in
  Alcotest.(check bool) "skew slower than uniform" true
    (time skewed > time uniform)

let test_partition_by_covers_all_rows () =
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 999 (fun i -> (i, i))) in
  let parts =
    Parallel.partition_by (ctx ()) (Parallel.make ~degree:3 ()) schema
      ~column:"t.a" rows
  in
  let total = Array.fold_left (fun acc p -> acc + Array.length p) 0 parts in
  Alcotest.(check int) "no row lost" 999 total

let test_round_robin_balanced () =
  let rows = rows_of (List.init 1000 (fun i -> (i, i))) in
  let parts =
    Parallel.partition_round_robin (ctx ()) (Parallel.make ~degree:4 ()) rows
  in
  Array.iter
    (fun p -> Alcotest.(check int) "even split" 250 (Array.length p))
    parts

let test_degree_one_is_serial () =
  let heap = heap_of 1000 in
  let c1 = ctx () and c2 = ctx () in
  let a = Scan.seq_scan c1 heap in
  let b = Parallel.scan c2 Parallel.sequential heap in
  Alcotest.(check (list (list string))) "identical" (canon a) (canon b);
  Alcotest.(check (float 1e-9)) "identical cost"
    (Sim_clock.elapsed_ms c1.Exec_ctx.clock)
    (Sim_clock.elapsed_ms c2.Exec_ctx.clock)

let prop_parallel_join_equals_serial =
  QCheck.Test.make ~name:"parallel join = serial join (any degree)" ~count:60
    QCheck.(triple (int_range 1 8)
              (list_of_size (Gen.int_range 0 80) (int_range 0 10))
              (list_of_size (Gen.int_range 0 80) (int_range 0 10)))
    (fun (degree, lks, rks) ->
       let ls = schema_ab "l" and rs = schema_ab "r" in
       let left = rows_of (List.mapi (fun i k -> (k, i)) lks) in
       let right = rows_of (List.mapi (fun i k -> (k, i + 1000)) rks) in
       let serial =
         Join.hash_join (ctx ()) ~mem_pages:16 ~build:(right, rs)
           ~probe:(left, ls) ~keys:[ ("l.a", "r.a") ] ()
       in
       let par_rows, _ =
         Parallel.hash_join (ctx ()) (Parallel.make ~degree ()) ~mem_pages:16
           ~build:(right, rs) ~probe:(left, ls) ~keys:[ ("l.a", "r.a") ] ()
       in
       canon serial.Join.rows = canon par_rows)

let suite =
  [ Alcotest.test_case "scan matches serial" `Quick test_parallel_scan_matches_serial;
    Alcotest.test_case "scan speedup" `Quick test_parallel_scan_speedup;
    Alcotest.test_case "join matches serial" `Quick test_parallel_join_matches_serial;
    Alcotest.test_case "join speedup" `Quick test_parallel_join_speedup_with_exchange_cost;
    Alcotest.test_case "aggregate matches serial" `Quick test_parallel_agg_matches_serial;
    Alcotest.test_case "skewed partition dominates" `Quick test_skewed_partition_dominates;
    Alcotest.test_case "partition covers rows" `Quick test_partition_by_covers_all_rows;
    Alcotest.test_case "round robin balanced" `Quick test_round_robin_balanced;
    Alcotest.test_case "degree one serial" `Quick test_degree_one_is_serial;
    QCheck_alcotest.to_alcotest prop_parallel_join_equals_serial ]
