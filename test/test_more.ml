(* Additional coverage: simulated clock accounting, dispatcher mechanics
   (plan switches, temp tables, remainder reconstruction), parser DML,
   inaccuracy rules for merge/index joins, engine configuration. *)
open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Inaccuracy = Mqr_core.Inaccuracy
module Reopt_policy = Mqr_core.Reopt_policy
module Parser = Mqr_sql.Parser
module Query = Mqr_sql.Query
module Plan = Mqr_opt.Plan
module Optimizer = Mqr_opt.Optimizer
module Stats_env = Mqr_opt.Stats_env
module Expr = Mqr_expr.Expr
module Exec_ctx = Mqr_exec.Exec_ctx

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Sim_clock --- *)

let test_clock_accounting () =
  let c = Sim_clock.create () in
  let m = Sim_clock.model c in
  Sim_clock.charge_seq_read c 10;
  Sim_clock.charge_rand_read c 2;
  Sim_clock.charge_write c 3;
  Sim_clock.charge_cpu_tuples c 1000;
  let expect =
    (10.0 *. m.Sim_clock.seq_read_ms)
    +. (2.0 *. m.Sim_clock.rand_read_ms)
    +. (3.0 *. m.Sim_clock.write_ms)
    +. (1000.0 *. m.Sim_clock.cpu_tuple_ms)
  in
  Alcotest.(check (float 1e-9)) "elapsed" expect (Sim_clock.elapsed_ms c)

let test_clock_since () =
  let c = Sim_clock.create () in
  Sim_clock.charge_seq_read c 5;
  let snap = Sim_clock.snapshot c in
  Sim_clock.charge_write c 7;
  let m = Sim_clock.model c in
  Alcotest.(check (float 1e-9)) "delta only"
    (7.0 *. m.Sim_clock.write_ms)
    (Sim_clock.since c snap)

let test_clock_optimizer_charge () =
  let c = Sim_clock.create () in
  Sim_clock.charge_optimizer c ~plans:100;
  let counters = Sim_clock.counters c in
  Alcotest.(check int) "invocations" 1 counters.Sim_clock.opt_invocations;
  Alcotest.(check bool) "opt time recorded" true (counters.Sim_clock.opt_ms > 0.0)

let test_clock_reset () =
  let c = Sim_clock.create () in
  Sim_clock.charge_seq_read c 5;
  Sim_clock.reset c;
  Alcotest.(check (float 0.0)) "zero" 0.0 (Sim_clock.elapsed_ms c)

let test_pages_of_bytes () =
  Alcotest.(check int) "one page" 1 (Exec_ctx.pages_of_bytes 10);
  Alcotest.(check int) "exact page" 1 (Exec_ctx.pages_of_bytes 4096);
  Alcotest.(check int) "two pages" 2 (Exec_ctx.pages_of_bytes 4097);
  Alcotest.(check int) "zero is one" 1 (Exec_ctx.pages_of_bytes 0)

(* --- parser DML --- *)

let test_parse_insert () =
  match Parser.parse_statement "insert into t values (1, 'a'), (2, 'b')" with
  | Parser.Insert { table = "t"; rows = [ [ _; _ ]; [ _; _ ] ] } -> ()
  | _ -> Alcotest.fail "insert parse"

let test_parse_delete () =
  (match Parser.parse_statement "delete from t where a < 3" with
   | Parser.Delete { table = "t"; where = Some _ } -> ()
   | _ -> Alcotest.fail "delete parse");
  match Parser.parse_statement "delete from t" with
  | Parser.Delete { table = "t"; where = None } -> ()
  | _ -> Alcotest.fail "delete-all parse"

let test_parse_statement_select () =
  match Parser.parse_statement "select a from t" with
  | Parser.Select _ -> ()
  | _ -> Alcotest.fail "select statement"

let test_parse_insert_negative_number () =
  match Parser.parse_statement "insert into t values (-3)" with
  | Parser.Insert { rows = [ [ _ ] ]; _ } -> ()
  | _ -> Alcotest.fail "negative literal"

let test_parse_insert_errors () =
  List.iter
    (fun sql ->
       Alcotest.(check bool) sql true
         (try
            ignore (Parser.parse_statement sql);
            false
          with Parser.Parse_error _ | Mqr_sql.Lexer.Lex_error _ -> true))
    [ "insert t values (1)"; "insert into t (1)"; "delete t"; "insert into t values 1" ]

(* --- dispatcher mechanics: a scenario engineered to switch plans --- *)

let switching_catalog () =
  (* big fact table with a badly under-estimated filter feeding two joins;
     the bad estimate makes the first plan terrible so a switch pays *)
  let catalog = Catalog.create () in
  let rng = Mqr_stats.Rng.create 5150 in
  let fact =
    Heap_file.create
      (Schema.make
         [ Schema.col "fk1" Value.TInt; Schema.col "fk2" Value.TInt;
           Schema.col "v" Value.TInt;
           Schema.col ~width:48 "pad" Value.TString ])
  in
  for i = 0 to 29_999 do
    Heap_file.append fact
      [| Value.Int (i mod 300); Value.Int (i mod 500);
         Value.Int (Mqr_stats.Rng.int rng 1000);
         Value.String (String.make 40 'x') |]
  done;
  let dim1 =
    Heap_file.create
      (Schema.make [ Schema.col "k1" Value.TInt; Schema.col "a1" Value.TInt ])
  in
  for i = 0 to 299 do
    Heap_file.append dim1 [| Value.Int i; Value.Int (i mod 7) |]
  done;
  let dim2 =
    Heap_file.create
      (Schema.make [ Schema.col "k2" Value.TInt; Schema.col "a2" Value.TInt ])
  in
  for i = 0 to 499 do
    Heap_file.append dim2 [| Value.Int i; Value.Int (i mod 11) |]
  done;
  ignore (Catalog.add_table catalog "fact" fact);
  ignore (Catalog.add_table catalog "dim1" dim1);
  ignore (Catalog.add_table catalog "dim2" dim2);
  Catalog.analyze_table catalog "fact";
  Catalog.analyze_table ~keys:[ "k1" ] catalog "dim1";
  Catalog.analyze_table ~keys:[ "k2" ] catalog "dim2";
  (* the filter column was never analyzed AND the table tripled since the
     catalog was built *)
  Catalog.degrade_drop_column_stats catalog ~table:"fact" ~column:"v";
  Catalog.degrade_scale_cardinality catalog ~table:"fact" 0.2;
  catalog

let switching_sql =
  "select a1, sum(a2) as s from fact, dim1, dim2 \
   where fact.fk1 = dim1.k1 and fact.fk2 = dim2.k2 and v < 900 \
   group by a1"

let test_plan_only_correct_under_pressure () =
  let catalog = switching_catalog () in
  let engine = Engine.create ~budget_pages:48 catalog in
  let off = Engine.run_sql engine ~mode:Dispatcher.Off switching_sql in
  let plan_only = Engine.run_sql engine ~mode:Dispatcher.Plan_only switching_sql in
  Alcotest.(check (list (list string))) "same answers"
    (Reference.canonical off.Dispatcher.rows)
    (Reference.canonical plan_only.Dispatcher.rows)

let test_switch_materialization_charged () =
  let catalog = switching_catalog () in
  let engine = Engine.create ~budget_pages:48 catalog in
  let r = Engine.run_sql engine ~mode:Dispatcher.Plan_only switching_sql in
  if r.Dispatcher.switches > 0 then begin
    (* a switch pays for writing the intermediate *)
    Alcotest.(check bool) "writes charged" true
      (r.Dispatcher.counters.Sim_clock.writes > 0)
  end

let test_considered_events_have_sane_numbers () =
  let catalog = switching_catalog () in
  let engine = Engine.create ~budget_pages:48 catalog in
  let r = Engine.run_sql engine ~mode:Dispatcher.Full switching_sql in
  List.iter
    (fun ev ->
       match ev with
       | Dispatcher.Ev_considered { t_improved; t_optimizer; t_opt_estimated; _ } ->
         Alcotest.(check bool) "positive times" true
           (t_improved >= 0.0 && t_optimizer >= 0.0 && t_opt_estimated > 0.0)
       | _ -> ())
    r.Dispatcher.events

let test_opt_invocations_counted () =
  let catalog = switching_catalog () in
  let engine = Engine.create ~budget_pages:48 catalog in
  let r = Engine.run_sql engine ~mode:Dispatcher.Full switching_sql in
  (* at least the initial optimization *)
  Alcotest.(check bool) "optimizer charged" true
    (r.Dispatcher.counters.Sim_clock.opt_invocations >= 1);
  Alcotest.(check bool) "re-optimizations counted too" true
    (r.Dispatcher.counters.Sim_clock.opt_invocations >= 1 + r.Dispatcher.switches)

let test_max_switches_respected () =
  let catalog = switching_catalog () in
  let engine =
    Engine.with_params
      (Engine.create ~budget_pages:48 catalog)
      { Reopt_policy.default_params with Reopt_policy.max_switches = 0 }
  in
  let r = Engine.run_sql engine ~mode:Dispatcher.Full switching_sql in
  Alcotest.(check int) "no switches allowed" 0 r.Dispatcher.switches

let test_mu_zero_means_no_collectors () =
  let catalog = switching_catalog () in
  let engine =
    Engine.with_params
      (Engine.create ~budget_pages:48 catalog)
      { Reopt_policy.default_params with Reopt_policy.mu = 0.0 }
  in
  let r = Engine.run_sql engine ~mode:Dispatcher.Full switching_sql in
  Alcotest.(check int) "no collectors" 0 r.Dispatcher.collectors

(* --- inaccuracy rules for the other join types --- *)

let test_inaccuracy_merge_and_inl_joins () =
  let catalog = switching_catalog () in
  let q =
    Query.bind catalog
      (Parser.parse
         "select a1 from fact, dim1 where fact.fk1 = dim1.k1 and v < 900")
  in
  let env = Stats_env.create catalog q.Query.relations in
  let r = Optimizer.optimize ~model:Sim_clock.default_model ~env q in
  (* whatever join the optimizer chose, a filter with no statistics makes
     the output-cardinality level High *)
  Alcotest.(check string) "high above unanalyzed filter" "high"
    (Inaccuracy.level_to_string
       (Inaccuracy.cardinality_level env r.Optimizer.plan))

let test_filter_level_none_is_low () =
  let catalog = switching_catalog () in
  let q = Query.bind catalog (Parser.parse "select a1 from dim1") in
  let env = Stats_env.create catalog q.Query.relations in
  Alcotest.(check string) "no filter -> low" "low"
    (Inaccuracy.level_to_string (Inaccuracy.filter_level env None))

(* --- engine configuration --- *)

let test_with_budget_changes_planning_assumption () =
  let catalog = switching_catalog () in
  let e1 = Engine.create ~budget_pages:512 catalog in
  let e2 = Engine.with_budget e1 ~budget_pages:16 in
  (* both engines must produce correct results *)
  let r1 = Engine.run_sql e1 ~mode:Dispatcher.Off switching_sql in
  let r2 = Engine.run_sql e2 ~mode:Dispatcher.Off switching_sql in
  Alcotest.(check (list (list string))) "answers invariant"
    (Reference.canonical r1.Dispatcher.rows)
    (Reference.canonical r2.Dispatcher.rows)

let test_time_ms_smoke () =
  let catalog = switching_catalog () in
  let engine = Engine.create catalog in
  Alcotest.(check bool) "positive time" true
    (Engine.time_ms engine "select count(*) as n from dim1" > 0.0)

(* --- plan pretty-printing --- *)

let test_plan_to_string_mentions_ops () =
  let catalog = switching_catalog () in
  let engine = Engine.create catalog in
  let plan = Engine.explain engine switching_sql in
  let text = Plan.to_string plan in
  Alcotest.(check bool) "mentions aggregate" true
    (contains text "aggregate");
  Alcotest.(check bool) "mentions scan" true
    (contains text "seq_scan(fact)" || contains text "index_scan")

let test_actual_ms_accounts_for_elapsed () =
  (* per-node exclusive times sum to (approximately) the execution part of
     the clock: optimizer time and temp-registration overheads sit outside
     the instrumented nodes *)
  let catalog = switching_catalog () in
  let engine = Engine.create ~budget_pages:48 catalog in
  let r = Engine.run_sql engine ~mode:Dispatcher.Off switching_sql in
  let node_sum = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 r.Dispatcher.actual_ms in
  Alcotest.(check bool)
    (Printf.sprintf "nodes %.1f <= total %.1f" node_sum r.Dispatcher.elapsed_ms)
    true
    (node_sum <= r.Dispatcher.elapsed_ms +. 1e-6);
  Alcotest.(check bool) "nodes dominate total" true
    (node_sum >= 0.5 *. r.Dispatcher.elapsed_ms)

let test_explain_analyze_renders () =
  let catalog = switching_catalog () in
  let engine = Engine.create ~budget_pages:48 catalog in
  let r = Engine.run_sql engine switching_sql in
  let text = Fmt.str "%a" Dispatcher.pp_explain_analyze r in
  Alcotest.(check bool) "mentions actual" true (contains text "actual");
  Alcotest.(check bool) "mentions ms" true (contains text "ms")

(* --- plan cache unit behaviour --- *)

module Plan_cache = Mqr_core.Plan_cache

let test_plan_cache_capacity_eviction () =
  let catalog = switching_catalog () in
  let engine = Engine.create catalog in
  let q = Engine.bind_sql engine "select a1 from dim1" in
  let plan = Engine.explain engine "select a1 from dim1" in
  let cache = Plan_cache.create ~capacity:2 () in
  List.iter
    (fun key -> Plan_cache.store cache catalog key ~plan ~query:q ~collectors:0)
    [ "q1"; "q2"; "q3" ];
  Alcotest.(check bool) "bounded" true (Plan_cache.size cache <= 2);
  (* the oldest entry was evicted FIFO *)
  Alcotest.(check bool) "q1 gone" true (Plan_cache.find cache catalog "q1" = None)

let test_plan_cache_invalidate_on_analyze () =
  let catalog = switching_catalog () in
  let engine = Engine.create catalog in
  let q = Engine.bind_sql engine "select a1 from dim1" in
  let plan = Engine.explain engine "select a1 from dim1" in
  let cache = Plan_cache.create () in
  (* simulate update activity recorded before caching *)
  Catalog.note_updates catalog ~table:"dim1" 5;
  Plan_cache.store cache catalog "k" ~plan ~query:q ~collectors:0;
  Alcotest.(check bool) "hit while stable" true
    (Plan_cache.find cache catalog "k" <> None);
  (* ANALYZE resets the counter below the cached version: statistics moved
     under the plan, so it must be invalidated *)
  Catalog.analyze_table catalog "dim1";
  Alcotest.(check bool) "invalidated after analyze" true
    (Plan_cache.find cache catalog "k" = None)

let test_plan_cache_explicit_invalidate () =
  let catalog = switching_catalog () in
  let engine = Engine.create catalog in
  let q = Engine.bind_sql engine "select a1 from dim1" in
  let plan = Engine.explain engine "select a1 from dim1" in
  let cache = Plan_cache.create () in
  Plan_cache.store cache catalog "k" ~plan ~query:q ~collectors:0;
  Plan_cache.invalidate cache "k";
  Alcotest.(check bool) "gone" true (Plan_cache.find cache catalog "k" = None);
  Plan_cache.store cache catalog "k" ~plan ~query:q ~collectors:0;
  Plan_cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Plan_cache.size cache)

(* --- result schema and ordering guarantees at the engine surface --- *)

let test_result_schema_names () =
  let catalog = switching_catalog () in
  let engine = Engine.create catalog in
  let r =
    Engine.run_sql engine
      "select a1, count(*) as cnt, sum(a2) as total from fact, dim1, dim2        where fact.fk1 = dim1.k1 and fact.fk2 = dim2.k2 group by a1"
  in
  let names =
    List.map (fun c -> c.Mqr_storage.Schema.name)
      (Mqr_storage.Schema.columns r.Dispatcher.result_schema)
  in
  Alcotest.(check (list string)) "output columns" [ "a1"; "cnt"; "total" ] names

let test_order_by_non_selected_column () =
  (* regression: ORDER BY may reference a column the SELECT list drops *)
  let catalog = switching_catalog () in
  let engine = Engine.create catalog in
  let r =
    Engine.run_sql engine "select a1 from dim1 order by k1 desc limit 3"
  in
  Alcotest.(check int) "limited" 3 (Array.length r.Dispatcher.rows);
  Alcotest.(check int) "one output column" 1
    (Mqr_storage.Schema.arity r.Dispatcher.result_schema);
  (* k1 descending: a1 of rows 299,298,297 = k1 mod 7 *)
  let expect = List.map (fun k -> string_of_int (k mod 7)) [ 299; 298; 297 ] in
  let got =
    Array.to_list
      (Array.map (fun t -> Mqr_storage.Value.to_string t.(0)) r.Dispatcher.rows)
  in
  Alcotest.(check (list string)) "right rows in order" expect got

let test_multi_key_merge_join_correct () =
  (* regression: pre-sorted flags must not fire on multi-key merges *)
  let c = Mqr_exec.Exec_ctx.create () in
  let schema q =
    Mqr_storage.Schema.make
      [ Mqr_storage.Schema.col ~qualifier:q "a" Mqr_storage.Value.TInt;
        Mqr_storage.Schema.col ~qualifier:q "b" Mqr_storage.Value.TInt ]
  in
  (* left sorted by a only; b deliberately unsorted within equal a *)
  let mk q off =
    ignore q;
    Array.of_list
      (List.concat_map
         (fun a ->
            List.map
              (fun b -> [| Mqr_storage.Value.Int a; Mqr_storage.Value.Int ((7 - b + off) mod 5) |])
              [ 0; 1; 2; 3; 4 ])
         [ 0; 0; 1; 1; 2 ])
  in
  let left = mk "l" 0 and right = mk "r" 1 in
  let m =
    Mqr_exec.Merge_join.merge_join c ~mem_pages:16 ~left:(left, schema "l")
      ~right:(right, schema "r")
      ~keys:[ ("l.a", "r.a"); ("l.b", "r.b") ] ()
  in
  let h =
    Mqr_exec.Join.hash_join c ~mem_pages:16 ~build:(right, schema "r")
      ~probe:(left, schema "l")
      ~keys:[ ("l.a", "r.a"); ("l.b", "r.b") ] ()
  in
  Alcotest.(check int) "same match count"
    (Array.length h.Mqr_exec.Join.rows)
    (Array.length m.Mqr_exec.Merge_join.rows)

let test_optimizer_never_presorts_multikey () =
  let catalog = switching_catalog () in
  let engine = Engine.create catalog in
  (* a query with a two-key join via both fk columns against a self-join *)
  let plan =
    Engine.explain engine
      "select a.v from fact a, fact b where a.fk1 = b.fk1 and a.fk2 = b.fk2        and a.v < 10"
  in
  List.iter
    (fun (n : Plan.t) ->
       match n.Plan.node with
       | Plan.Merge_join { keys; left_sorted; right_sorted; _ }
         when List.length keys > 1 ->
         Alcotest.(check bool) "no presort on multi-key" false
           (left_sorted || right_sorted)
       | _ -> ())
    (Plan.nodes plan)

let suite =
  [ Alcotest.test_case "clock accounting" `Quick test_clock_accounting;
    Alcotest.test_case "clock since" `Quick test_clock_since;
    Alcotest.test_case "clock optimizer charge" `Quick test_clock_optimizer_charge;
    Alcotest.test_case "clock reset" `Quick test_clock_reset;
    Alcotest.test_case "pages of bytes" `Quick test_pages_of_bytes;
    Alcotest.test_case "parse insert" `Quick test_parse_insert;
    Alcotest.test_case "parse delete" `Quick test_parse_delete;
    Alcotest.test_case "parse statement select" `Quick test_parse_statement_select;
    Alcotest.test_case "parse negative literal" `Quick test_parse_insert_negative_number;
    Alcotest.test_case "parse dml errors" `Quick test_parse_insert_errors;
    Alcotest.test_case "plan-only correct" `Quick test_plan_only_correct_under_pressure;
    Alcotest.test_case "switch pays materialization" `Quick test_switch_materialization_charged;
    Alcotest.test_case "considered events sane" `Quick test_considered_events_have_sane_numbers;
    Alcotest.test_case "optimizer invocations" `Quick test_opt_invocations_counted;
    Alcotest.test_case "max switches" `Quick test_max_switches_respected;
    Alcotest.test_case "mu=0 no collectors" `Quick test_mu_zero_means_no_collectors;
    Alcotest.test_case "inaccuracy high over unanalyzed" `Quick test_inaccuracy_merge_and_inl_joins;
    Alcotest.test_case "filter level none" `Quick test_filter_level_none_is_low;
    Alcotest.test_case "with_budget invariant" `Quick test_with_budget_changes_planning_assumption;
    Alcotest.test_case "time_ms" `Quick test_time_ms_smoke;
    Alcotest.test_case "plan to_string" `Quick test_plan_to_string_mentions_ops;
    Alcotest.test_case "actual_ms accounting" `Quick test_actual_ms_accounts_for_elapsed;
    Alcotest.test_case "explain analyze renders" `Quick test_explain_analyze_renders;
    Alcotest.test_case "plan cache eviction" `Quick test_plan_cache_capacity_eviction;
    Alcotest.test_case "plan cache analyze invalidation" `Quick test_plan_cache_invalidate_on_analyze;
    Alcotest.test_case "plan cache explicit invalidate" `Quick test_plan_cache_explicit_invalidate;
    Alcotest.test_case "result schema names" `Quick test_result_schema_names;
    Alcotest.test_case "order by non-selected column" `Quick test_order_by_non_selected_column;
    Alcotest.test_case "multi-key merge join correct" `Quick test_multi_key_merge_join_correct;
    Alcotest.test_case "no presort on multi-key" `Quick test_optimizer_never_presorts_multikey ]
