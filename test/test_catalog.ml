open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Column_stats = Mqr_catalog.Column_stats
module Histogram = Mqr_stats.Histogram

let build_catalog () =
  let catalog = Catalog.create () in
  let schema =
    Schema.make
      [ Schema.col "id" Value.TInt;
        Schema.col "grp" Value.TInt;
        Schema.col "name" Value.TString ]
  in
  let heap = Heap_file.create schema in
  for i = 0 to 999 do
    Heap_file.append heap
      [| Value.Int i; Value.Int (i mod 10);
         Value.String (Printf.sprintf "n%d" (i mod 5)) |]
  done;
  ignore (Catalog.add_table catalog "items" heap);
  Catalog.analyze_table ~keys:[ "id" ] catalog "items";
  catalog

let test_analyze_basics () =
  let catalog = build_catalog () in
  let tbl = Catalog.find_exn catalog "items" in
  Alcotest.(check int) "believed rows" 1000 tbl.Catalog.believed_rows;
  match Catalog.column_stats tbl "grp" with
  | Some st ->
    Alcotest.(check bool) "distinct 10" true
      (match st.Column_stats.distinct with Some d -> abs_float (d -. 10.) < 0.5 | None -> false);
    Alcotest.(check bool) "has histogram" true (st.Column_stats.histogram <> None);
    Alcotest.(check bool) "min 0" true
      (match st.Column_stats.min_v with Some v -> Value.equal v (Value.Int 0) | None -> false)
  | None -> Alcotest.fail "no stats"

let test_key_flag () =
  let catalog = build_catalog () in
  let tbl = Catalog.find_exn catalog "items" in
  Alcotest.(check bool) "id is key" true
    (match Catalog.column_stats tbl "id" with
     | Some st -> st.Column_stats.is_key
     | None -> false);
  Alcotest.(check bool) "grp not key" false
    (match Catalog.column_stats tbl "grp" with
     | Some st -> st.Column_stats.is_key
     | None -> true)

let test_string_dictionary () =
  let catalog = build_catalog () in
  let tbl = Catalog.find_exn catalog "items" in
  match Catalog.column_stats tbl "name" with
  | Some st ->
    Alcotest.(check bool) "dict present" true (st.Column_stats.dict <> None);
    (match Column_stats.to_domain st (Value.String "n3") with
     | Some _ -> ()
     | None -> Alcotest.fail "known string maps");
    (match Column_stats.to_domain st (Value.String "missing") with
     | None -> ()
     | Some _ -> Alcotest.fail "unknown string should not map")
  | None -> Alcotest.fail "no stats"

let test_degrade_drop_histogram () =
  let catalog = build_catalog () in
  Catalog.degrade_drop_histogram catalog ~table:"items" ~column:"grp";
  let tbl = Catalog.find_exn catalog "items" in
  Alcotest.(check bool) "histogram gone" true
    (match Catalog.column_stats tbl "grp" with
     | Some st -> st.Column_stats.histogram = None
     | None -> false)

let test_degrade_stale () =
  let catalog = build_catalog () in
  Catalog.degrade_mark_stale catalog ~table:"items" ~column:"grp";
  let tbl = Catalog.find_exn catalog "items" in
  Alcotest.(check bool) "stale" true
    (match Catalog.column_stats tbl "grp" with
     | Some st -> st.Column_stats.stale
     | None -> false)

let test_degrade_cardinality () =
  let catalog = build_catalog () in
  Catalog.degrade_scale_cardinality catalog ~table:"items" 0.5;
  let tbl = Catalog.find_exn catalog "items" in
  Alcotest.(check int) "halved" 500 tbl.Catalog.believed_rows;
  Alcotest.(check int) "true rows unchanged" 1000
    (Heap_file.tuple_count tbl.Catalog.heap)

let test_degrade_hist_kind () =
  let catalog = build_catalog () in
  Catalog.degrade_set_histogram_kind catalog ~table:"items"
    ~kind:Histogram.Equi_width;
  let tbl = Catalog.find_exn catalog "items" in
  Alcotest.(check bool) "equi-width now" true
    (match Catalog.column_stats tbl "grp" with
     | Some { Column_stats.histogram = Some h; _ } ->
       Histogram.kind h = Histogram.Equi_width
     | _ -> false)

let test_index_lifecycle () =
  let catalog = build_catalog () in
  let ix = Catalog.create_index catalog ~table:"items" ~column:"grp" in
  Alcotest.(check int) "all entries" 1000 (Btree.entry_count ix.Catalog.btree);
  let tbl = Catalog.find_exn catalog "items" in
  Alcotest.(check bool) "find_index" true
    (Catalog.find_index tbl ~column:"grp" <> None);
  Alcotest.(check bool) "missing index" true
    (Catalog.find_index tbl ~column:"name" = None)

let test_drop_table () =
  let catalog = build_catalog () in
  Catalog.drop_table catalog "items";
  Alcotest.(check bool) "gone" true (Catalog.find catalog "items" = None)

let test_duplicate_table () =
  let catalog = build_catalog () in
  let heap = Heap_file.create (Schema.make [ Schema.col "x" Value.TInt ]) in
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Catalog.add_table catalog "items" heap);
       false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "analyze basics" `Quick test_analyze_basics;
    Alcotest.test_case "key flag" `Quick test_key_flag;
    Alcotest.test_case "string dictionary" `Quick test_string_dictionary;
    Alcotest.test_case "degrade drop histogram" `Quick test_degrade_drop_histogram;
    Alcotest.test_case "degrade stale" `Quick test_degrade_stale;
    Alcotest.test_case "degrade cardinality" `Quick test_degrade_cardinality;
    Alcotest.test_case "degrade hist kind" `Quick test_degrade_hist_kind;
    Alcotest.test_case "index lifecycle" `Quick test_index_lifecycle;
    Alcotest.test_case "drop table" `Quick test_drop_table;
    Alcotest.test_case "duplicate table" `Quick test_duplicate_table ]
