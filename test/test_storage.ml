(* Buffer pool, heap files, B+-tree. *)
open Mqr_storage

let test_pool_hit_miss () =
  let pool = Buffer_pool.create ~capacity_pages:2 in
  Alcotest.(check bool) "first access misses" false
    (Buffer_pool.access pool ~file:1 ~page:0);
  Alcotest.(check bool) "second access hits" true
    (Buffer_pool.access pool ~file:1 ~page:0);
  Alcotest.(check int) "hits" 1 (Buffer_pool.hits pool);
  Alcotest.(check int) "misses" 1 (Buffer_pool.misses pool)

let test_pool_lru_eviction () =
  let pool = Buffer_pool.create ~capacity_pages:2 in
  ignore (Buffer_pool.access pool ~file:1 ~page:0);
  ignore (Buffer_pool.access pool ~file:1 ~page:1);
  ignore (Buffer_pool.access pool ~file:1 ~page:0);  (* 0 freshened *)
  ignore (Buffer_pool.access pool ~file:1 ~page:2);  (* evicts 1 *)
  Alcotest.(check bool) "0 still resident" true
    (Buffer_pool.access pool ~file:1 ~page:0);
  Alcotest.(check bool) "1 evicted" false
    (Buffer_pool.access pool ~file:1 ~page:1)

let test_pool_capacity_invariant () =
  let pool = Buffer_pool.create ~capacity_pages:8 in
  for i = 0 to 999 do
    ignore (Buffer_pool.access pool ~file:(i mod 3) ~page:i)
  done;
  Alcotest.(check bool) "resident <= capacity" true
    (Buffer_pool.resident pool <= 8)

let test_pool_queue_bounded () =
  (* repeated hits on a cached page must not grow memory without bound *)
  let pool = Buffer_pool.create ~capacity_pages:2 in
  for _ = 1 to 100_000 do
    ignore (Buffer_pool.access pool ~file:1 ~page:0)
  done;
  (* behaviour still correct after many compactions *)
  ignore (Buffer_pool.access pool ~file:1 ~page:1);
  ignore (Buffer_pool.access pool ~file:1 ~page:2);  (* evicts page 0? no: 0 is most recent... *)
  Alcotest.(check bool) "page 2 resident" true
    (Buffer_pool.access pool ~file:1 ~page:2)

let test_pool_invalidate () =
  let pool = Buffer_pool.create ~capacity_pages:8 in
  ignore (Buffer_pool.access pool ~file:1 ~page:0);
  ignore (Buffer_pool.access pool ~file:2 ~page:0);
  Buffer_pool.invalidate_file pool 1;
  Alcotest.(check bool) "file 1 gone" false
    (Buffer_pool.access pool ~file:1 ~page:0);
  Alcotest.(check bool) "file 2 stays" true
    (Buffer_pool.access pool ~file:2 ~page:0)

(* Reference LRU: naive list-based implementation to check the pool's
   lazy-deletion variant against. *)
module Naive_lru = struct
  type t = { cap : int; mutable items : (int * int) list }

  let create cap = { cap; items = [] }

  let access t key =
    let hit = List.mem key t.items in
    t.items <- key :: List.filter (fun k -> k <> key) t.items;
    if List.length t.items > t.cap then
      t.items <- List.filteri (fun i _ -> i < t.cap) t.items;
    hit
end

let prop_pool_matches_naive_lru =
  QCheck.Test.make ~name:"buffer pool = reference LRU" ~count:100
    QCheck.(pair (int_range 1 6)
              (list_of_size (Gen.int_range 0 2000) (int_range 0 12)))
    (fun (cap, accesses) ->
       let pool = Buffer_pool.create ~capacity_pages:cap in
       let naive = Naive_lru.create cap in
       List.for_all
         (fun page ->
            let a = Buffer_pool.access pool ~file:0 ~page in
            let b = Naive_lru.access naive (0, page) in
            a = b)
         accesses)

let small_schema =
  Schema.make [ Schema.col "k" Value.TInt; Schema.col "v" Value.TInt ]

let test_heap_append_get () =
  let h = Heap_file.create small_schema in
  for i = 0 to 99 do
    Heap_file.append h [| Value.Int i; Value.Int (i * i) |]
  done;
  Alcotest.(check int) "count" 100 (Heap_file.tuple_count h);
  Alcotest.(check bool) "get 42" true
    (Tuple.equal (Heap_file.get h 42) [| Value.Int 42; Value.Int 1764 |])

let test_heap_paging () =
  let h = Heap_file.create small_schema in
  let per = Heap_file.tuples_per_page h in
  Alcotest.(check bool) "per page sensible" true (per > 1);
  for i = 0 to (3 * per) - 1 do
    Heap_file.append h [| Value.Int i; Value.Int i |]
  done;
  Alcotest.(check int) "pages" 3 (Heap_file.page_count h)

let test_heap_scan_charges () =
  let h = Heap_file.create small_schema in
  let per = Heap_file.tuples_per_page h in
  for i = 0 to (2 * per) - 1 do
    Heap_file.append h [| Value.Int i; Value.Int i |]
  done;
  let clock = Sim_clock.create () in
  let pool = Buffer_pool.create ~capacity_pages:16 in
  let seen = ref 0 in
  Heap_file.scan h ~pool ~clock (fun _ _ -> incr seen);
  Alcotest.(check int) "all tuples" (2 * per) !seen;
  let c = Sim_clock.counters clock in
  Alcotest.(check int) "2 seq reads" 2 c.Sim_clock.seq_reads;
  (* rescan: pages now cached, no new reads *)
  Heap_file.scan h ~pool ~clock (fun _ _ -> ());
  let c2 = Sim_clock.counters clock in
  Alcotest.(check int) "still 2 seq reads" 2 c2.Sim_clock.seq_reads

let test_btree_insert_lookup () =
  let bt = Btree.create ~fanout:4 () in
  for i = 0 to 999 do
    Btree.insert bt (Value.Int (i mod 100)) i
  done;
  Alcotest.(check int) "entries" 1000 (Btree.entry_count bt);
  Alcotest.(check int) "keys" 100 (Btree.key_count bt);
  Alcotest.(check int) "rids per key" 10 (List.length (Btree.lookup bt (Value.Int 7)));
  Alcotest.(check (list int)) "missing key" [] (Btree.lookup bt (Value.Int 100))

let test_btree_structure () =
  let bt = Btree.create ~fanout:4 () in
  for i = 0 to 4999 do
    Btree.insert bt (Value.Int i) i
  done;
  (match Btree.check bt with
   | Ok () -> ()
   | Error e -> Alcotest.failf "structure violated: %s" e);
  Alcotest.(check bool) "height grows" true (Btree.height bt >= 4)

let test_btree_range () =
  let bt = Btree.create () in
  for i = 0 to 999 do
    Btree.insert bt (Value.Int i) i
  done;
  let collected = ref [] in
  Btree.range bt ~lo:(Value.Int 100) ~hi:(Value.Int 109) (fun _ rids ->
      collected := rids @ !collected);
  Alcotest.(check int) "10 keys" 10 (List.length !collected);
  let sorted = List.sort compare !collected in
  Alcotest.(check (list int)) "right rids" (List.init 10 (fun i -> 100 + i)) sorted

let test_btree_probe_charges () =
  let bt = Btree.create () in
  for i = 0 to 9999 do
    Btree.insert bt (Value.Int i) i
  done;
  let clock = Sim_clock.create () in
  let pool = Buffer_pool.create ~capacity_pages:64 in
  let rids = Btree.probe bt ~pool ~clock ~lo:(Value.Int 5) ~hi:(Value.Int 5) () in
  Alcotest.(check (list int)) "found" [ 5 ] rids;
  let c = Sim_clock.counters clock in
  Alcotest.(check bool) "descent charged" true (c.Sim_clock.rand_reads >= 1);
  (* repeated probe hits cache *)
  let before = (Sim_clock.counters clock).Sim_clock.rand_reads in
  ignore (Btree.probe bt ~pool ~clock ~lo:(Value.Int 5) ~hi:(Value.Int 5) ());
  let after = (Sim_clock.counters clock).Sim_clock.rand_reads in
  Alcotest.(check int) "cached probe free" before after

let test_btree_null_rejected () =
  let bt = Btree.create () in
  Alcotest.check_raises "null key" (Invalid_argument "Btree.insert: Null key")
    (fun () -> Btree.insert bt Value.Null 0)

let prop_btree_matches_reference =
  QCheck.Test.make ~name:"btree lookup = reference assoc" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 400) (int_range 0 50))
    (fun keys ->
       let bt = Btree.create ~fanout:5 () in
       List.iteri (fun rid k -> Btree.insert bt (Value.Int k) rid) keys;
       (match Btree.check bt with Ok () -> () | Error e -> QCheck.Test.fail_report e);
       List.for_all
         (fun k ->
            let expect =
              List.mapi (fun rid k' -> (k', rid)) keys
              |> List.filter (fun (k', _) -> k' = k)
              |> List.map snd |> List.sort compare
            in
            let got = List.sort compare (Btree.lookup bt (Value.Int k)) in
            got = expect)
         (List.sort_uniq compare keys))

let prop_btree_range_matches =
  QCheck.Test.make ~name:"btree range = reference filter" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 0 300) (int_range 0 100))
              (pair (int_range 0 100) (int_range 0 100)))
    (fun (keys, (a, b)) ->
       let lo = min a b and hi = max a b in
       let bt = Btree.create ~fanout:4 () in
       List.iteri (fun rid k -> Btree.insert bt (Value.Int k) rid) keys;
       let expect =
         List.mapi (fun rid k -> (k, rid)) keys
         |> List.filter (fun (k, _) -> k >= lo && k <= hi)
         |> List.map snd |> List.sort compare
       in
       let got = ref [] in
       Btree.range bt ~lo:(Value.Int lo) ~hi:(Value.Int hi) (fun _ rids ->
           got := rids @ !got);
       List.sort compare !got = expect)

let suite =
  [ Alcotest.test_case "pool hit/miss" `Quick test_pool_hit_miss;
    Alcotest.test_case "pool LRU eviction" `Quick test_pool_lru_eviction;
    Alcotest.test_case "pool capacity invariant" `Quick test_pool_capacity_invariant;
    Alcotest.test_case "pool invalidate" `Quick test_pool_invalidate;
    Alcotest.test_case "pool queue bounded" `Quick test_pool_queue_bounded;
    Alcotest.test_case "heap append/get" `Quick test_heap_append_get;
    Alcotest.test_case "heap paging" `Quick test_heap_paging;
    Alcotest.test_case "heap scan charges" `Quick test_heap_scan_charges;
    Alcotest.test_case "btree insert/lookup" `Quick test_btree_insert_lookup;
    Alcotest.test_case "btree structure" `Quick test_btree_structure;
    Alcotest.test_case "btree range" `Quick test_btree_range;
    Alcotest.test_case "btree probe charges" `Quick test_btree_probe_charges;
    Alcotest.test_case "btree null rejected" `Quick test_btree_null_rejected;
    QCheck_alcotest.to_alcotest prop_pool_matches_naive_lru;
    QCheck_alcotest.to_alcotest prop_btree_matches_reference;
    QCheck_alcotest.to_alcotest prop_btree_range_matches ]
