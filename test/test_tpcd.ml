open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Datagen = Mqr_tpcd.Datagen
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload
module Schema_def = Mqr_tpcd.Schema_def
module Query = Mqr_sql.Query
module Parser = Mqr_sql.Parser
module Dispatcher = Mqr_core.Dispatcher
module Engine = Mqr_core.Engine

let tiny_opts = { Datagen.default with Datagen.sf = 0.001 }

let test_cardinalities () =
  let catalog = Datagen.generate tiny_opts in
  Alcotest.(check int) "5 regions" 5
    (Heap_file.tuple_count (Catalog.find_exn catalog "region").Catalog.heap);
  Alcotest.(check int) "25 nations" 25
    (Heap_file.tuple_count (Catalog.find_exn catalog "nation").Catalog.heap);
  let orders = Heap_file.tuple_count (Catalog.find_exn catalog "orders").Catalog.heap in
  Alcotest.(check int) "orders scaled" 1500 orders;
  let lineitem =
    Heap_file.tuple_count (Catalog.find_exn catalog "lineitem").Catalog.heap
  in
  Alcotest.(check bool) "1-7 lines per order" true
    (lineitem >= orders && lineitem <= 7 * orders)

let test_fk_integrity () =
  let catalog = Datagen.generate tiny_opts in
  let n_cust =
    Heap_file.tuple_count (Catalog.find_exn catalog "customer").Catalog.heap
  in
  let orders = (Catalog.find_exn catalog "orders").Catalog.heap in
  Heap_file.iter orders (fun _ t ->
      match t.(1) with
      | Value.Int ck ->
        if ck < 0 || ck >= n_cust then Alcotest.failf "bad o_custkey %d" ck
      | _ -> Alcotest.fail "o_custkey type")

let test_dates_consistent () =
  let catalog = Datagen.generate tiny_opts in
  let lineitem = (Catalog.find_exn catalog "lineitem").Catalog.heap in
  let schema = Heap_file.schema lineitem in
  let ship = Schema.index_of schema "l_shipdate" in
  let receipt = Schema.index_of schema "l_receiptdate" in
  Heap_file.iter lineitem (fun _ t ->
      if Value.compare t.(receipt) t.(ship) < 0 then
        Alcotest.fail "receipt before ship")

let test_stats_analyzed () =
  let catalog = Datagen.generate tiny_opts in
  let tbl = Catalog.find_exn catalog "lineitem" in
  match Catalog.column_stats tbl "l_quantity" with
  | Some st ->
    Alcotest.(check bool) "histogram" true
      (st.Mqr_catalog.Column_stats.histogram <> None)
  | None -> Alcotest.fail "no stats"

let test_indexes_built () =
  let catalog = Datagen.generate tiny_opts in
  List.iter
    (fun (table, column) ->
       let tbl = Catalog.find_exn catalog table in
       Alcotest.(check bool)
         (Printf.sprintf "%s.%s indexed" table column)
         true
         (Catalog.find_index tbl ~column <> None))
    Schema_def.indexes

let test_skew_changes_distribution () =
  let uniform = Datagen.generate tiny_opts in
  let skewed = Datagen.generate { tiny_opts with Datagen.skew_z = 1.0 } in
  let count_top catalog =
    let li = (Catalog.find_exn catalog "lineitem").Catalog.heap in
    let schema = Heap_file.schema li in
    let pk = Schema.index_of schema "l_partkey" in
    let freq = Hashtbl.create 64 in
    Heap_file.iter li (fun _ t ->
        let k = Value.to_string t.(pk) in
        Hashtbl.replace freq k (1 + Option.value ~default:0 (Hashtbl.find_opt freq k)));
    Hashtbl.fold (fun _ c m -> max c m) freq 0
  in
  Alcotest.(check bool) "skewed top key much hotter" true
    (count_top skewed > 2 * count_top uniform)

let test_queries_classify () =
  Alcotest.(check string) "Q1 simple" "simple"
    (Queries.klass_to_string (Queries.find "Q1").Queries.klass);
  Alcotest.(check string) "Q3 medium" "medium"
    (Queries.klass_to_string (Queries.find "Q3").Queries.klass);
  Alcotest.(check string) "Q5 complex" "complex"
    (Queries.klass_to_string (Queries.find "Q5").Queries.klass)

let test_queries_bind_with_expected_joins () =
  let catalog = Datagen.generate tiny_opts in
  List.iter
    (fun (q : Queries.query) ->
       let bound = Query.bind catalog (Parser.parse q.Queries.sql) in
       Alcotest.(check int)
         (q.Queries.name ^ " join count")
         q.Queries.joins (Query.join_count bound))
    Queries.all

let test_all_queries_execute_and_agree () =
  let catalog = Workload.experiment_catalog ~sf:0.001 () in
  let engine = Engine.create ~budget_pages:64 catalog in
  List.iter
    (fun (q : Queries.query) ->
       let off = Engine.run_sql engine ~mode:Dispatcher.Off q.Queries.sql in
       let full = Engine.run_sql engine ~mode:Dispatcher.Full q.Queries.sql in
       Alcotest.(check (list (list string)))
         (q.Queries.name ^ " results agree across modes")
         (Reference.canonical off.Dispatcher.rows)
         (Reference.canonical full.Dispatcher.rows))
    Queries.all

let test_degradations_apply () =
  let catalog = Datagen.generate tiny_opts in
  let true_rows =
    Heap_file.tuple_count (Catalog.find_exn catalog "lineitem").Catalog.heap
  in
  Workload.apply catalog Workload.paper_degradations;
  let believed = (Catalog.find_exn catalog "lineitem").Catalog.believed_rows in
  Alcotest.(check bool) "cardinality degraded" true (believed < true_rows)

let suite =
  [ Alcotest.test_case "cardinalities" `Quick test_cardinalities;
    Alcotest.test_case "fk integrity" `Quick test_fk_integrity;
    Alcotest.test_case "dates consistent" `Quick test_dates_consistent;
    Alcotest.test_case "stats analyzed" `Quick test_stats_analyzed;
    Alcotest.test_case "indexes built" `Quick test_indexes_built;
    Alcotest.test_case "skew distribution" `Quick test_skew_changes_distribution;
    Alcotest.test_case "query classes" `Quick test_queries_classify;
    Alcotest.test_case "queries bind" `Quick test_queries_bind_with_expected_joins;
    Alcotest.test_case "modes agree on TPC-D" `Slow test_all_queries_execute_and_agree;
    Alcotest.test_case "degradations" `Quick test_degradations_apply ]
