let () =
  Alcotest.run "mid-query-reoptimization"
    [ ("value", Test_value.suite);
      ("schema", Test_schema.suite);
      ("stats", Test_stats.suite);
      ("histogram", Test_histogram.suite);
      ("storage", Test_storage.suite);
      ("catalog", Test_catalog.suite);
      ("expr", Test_expr.suite);
      ("sql", Test_sql.suite);
      ("exec", Test_exec.suite);
      ("opt", Test_opt.suite);
      ("memman", Test_memman.suite);
      ("core", Test_core.suite);
      ("features", Test_features.suite);
      ("fuzz", Test_fuzz.suite);
      ("more", Test_more.suite);
      ("persist", Test_persist.suite);
      ("parallel", Test_parallel.suite);
      ("domain_pool", Test_domain_pool.suite);
      ("pardet", Test_pardet.suite);
      ("tpcd", Test_tpcd.suite);
      ("wlm", Test_wlm.suite);
      ("service", Test_service.suite);
      ("rf", Test_rf.suite);
      ("verify", Test_verify.suite);
      ("bounds", Test_bounds.suite);
      ("obs", Test_obs.suite);
      ("progress", Test_progress.suite);
      ("monitor", Test_monitor.suite) ]
