open Mqr_storage

let sample =
  Schema.make
    [ Schema.col ~qualifier:"t" "a" Value.TInt;
      Schema.col ~qualifier:"t" "b" Value.TString;
      Schema.col ~qualifier:"u" "a" Value.TFloat;
      Schema.col ~qualifier:"u" "c" Value.TDate ]

let test_index_qualified () =
  Alcotest.(check int) "t.a" 0 (Schema.index_of sample "t.a");
  Alcotest.(check int) "u.a" 2 (Schema.index_of sample "u.a");
  Alcotest.(check int) "u.c" 3 (Schema.index_of sample "u.c")

let test_index_bare () =
  Alcotest.(check int) "b unique" 1 (Schema.index_of sample "b");
  Alcotest.(check int) "c unique" 3 (Schema.index_of sample "c")

let test_ambiguous () =
  Alcotest.check_raises "bare a ambiguous" (Schema.Ambiguous "a") (fun () ->
      ignore (Schema.index_of sample "a"))

let test_not_found () =
  Alcotest.(check bool) "missing raises Not_found" true
    (try
       ignore (Schema.index_of sample "zzz");
       false
     with Not_found -> true)

let test_qualify () =
  let q = Schema.qualify sample "x" in
  Alcotest.(check int) "x.b" 1 (Schema.index_of q "x.b");
  Alcotest.check_raises "both a columns now collide"
    (Schema.Ambiguous "x.a") (fun () -> ignore (Schema.index_of q "x.a"));
  Alcotest.check_raises "old qualifier gone" Not_found (fun () ->
      ignore (Schema.index_of q "t.b"))

let test_concat_project () =
  let s1 = Schema.make [ Schema.col "x" Value.TInt ] in
  let s2 = Schema.make [ Schema.col "y" Value.TInt ] in
  let c = Schema.concat s1 s2 in
  Alcotest.(check int) "arity" 2 (Schema.arity c);
  let p = Schema.project c [ 1 ] in
  Alcotest.(check int) "projected arity" 1 (Schema.arity p);
  Alcotest.(check string) "kept y" "y" (Schema.column p 0).Schema.name

let test_widths () =
  let s =
    Schema.make [ Schema.col "i" Value.TInt; Schema.col ~width:20 "s" Value.TString ]
  in
  Alcotest.(check int) "avg width includes header" (8 + 8 + 20)
    (Schema.avg_tuple_width s)

let test_default_widths () =
  Alcotest.(check int) "int width" 8 (Schema.col "x" Value.TInt).Schema.avg_width;
  Alcotest.(check int) "date width" 4 (Schema.col "x" Value.TDate).Schema.avg_width;
  Alcotest.(check int) "string default" 16
    (Schema.col "x" Value.TString).Schema.avg_width

let test_tuple_ops () =
  let t1 = [| Value.Int 1; Value.String "a" |] in
  let t2 = [| Value.Float 2.0 |] in
  let c = Tuple.concat t1 t2 in
  Alcotest.(check int) "concat arity" 3 (Tuple.arity c);
  let p = Tuple.project c [ 2; 0 ] in
  Alcotest.(check bool) "project order" true
    (Tuple.equal p [| Value.Float 2.0; Value.Int 1 |])

let suite =
  [ Alcotest.test_case "index_of qualified" `Quick test_index_qualified;
    Alcotest.test_case "index_of bare" `Quick test_index_bare;
    Alcotest.test_case "ambiguous" `Quick test_ambiguous;
    Alcotest.test_case "not found" `Quick test_not_found;
    Alcotest.test_case "qualify" `Quick test_qualify;
    Alcotest.test_case "concat/project" `Quick test_concat_project;
    Alcotest.test_case "widths" `Quick test_widths;
    Alcotest.test_case "default widths" `Quick test_default_widths;
    Alcotest.test_case "tuple ops" `Quick test_tuple_ops ]
