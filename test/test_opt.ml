open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Parser = Mqr_sql.Parser
module Query = Mqr_sql.Query
module Optimizer = Mqr_opt.Optimizer
module Stats_env = Mqr_opt.Stats_env
module Plan = Mqr_opt.Plan
module Cost_model = Mqr_opt.Cost_model

(* Fixture: a small star schema — fact(fk1, fk2, v), dim1(k, tag),
   dim2(k, tag) — where dim1 is tiny and dim2 is large. *)
let fixture () =
  let catalog = Catalog.create () in
  let fact_schema =
    Schema.make
      [ Schema.col "fk1" Value.TInt; Schema.col "fk2" Value.TInt;
        Schema.col "v" Value.TInt ]
  in
  let dim_schema =
    Schema.make [ Schema.col "k" Value.TInt; Schema.col "tag" Value.TInt ]
  in
  let fact = Heap_file.create fact_schema in
  for i = 0 to 9_999 do
    Heap_file.append fact
      [| Value.Int (i mod 10); Value.Int (i mod 1000); Value.Int i |]
  done;
  let dim1 = Heap_file.create dim_schema in
  for i = 0 to 9 do
    Heap_file.append dim1 [| Value.Int i; Value.Int (i * 7) |]
  done;
  let dim2_schema =
    Schema.make [ Schema.col "k2" Value.TInt; Schema.col "tag2" Value.TInt ]
  in
  let dim2 = Heap_file.create dim2_schema in
  for i = 0 to 999 do
    Heap_file.append dim2 [| Value.Int i; Value.Int (i mod 13) |]
  done;
  ignore (Catalog.add_table catalog "fact" fact);
  ignore (Catalog.add_table catalog "dim1" dim1);
  ignore (Catalog.add_table catalog "dim2" dim2);
  Catalog.analyze_table ~keys:[] catalog "fact";
  Catalog.analyze_table ~keys:[ "k" ] catalog "dim1";
  Catalog.analyze_table ~keys:[ "k2" ] catalog "dim2";
  ignore (Catalog.create_index catalog ~table:"dim2" ~column:"k2");
  ignore (Catalog.create_index catalog ~table:"fact" ~column:"v");
  catalog

let optimize ?options catalog sql =
  let q = Query.bind catalog (Parser.parse sql) in
  let env = Stats_env.create catalog q.Query.relations in
  Optimizer.optimize ?options ~model:Sim_clock.default_model ~env q

let test_single_table_plan () =
  let catalog = fixture () in
  let r = optimize catalog "select v from fact where v < 100" in
  Alcotest.(check int) "no joins" 0 (Plan.join_count r.Optimizer.plan);
  Alcotest.(check bool) "enumerated something" true (r.Optimizer.plans_enumerated > 0)

let test_index_scan_chosen_when_selective () =
  let catalog = fixture () in
  let r = optimize catalog "select v from fact where v = 17" in
  let has_index_scan =
    Plan.fold
      (fun acc n -> acc || match n.Plan.node with Plan.Index_scan _ -> true | _ -> false)
      false r.Optimizer.plan
  in
  Alcotest.(check bool) "index scan for point query" true has_index_scan

let test_seq_scan_for_unselective () =
  let catalog = fixture () in
  let r = optimize catalog "select v from fact" in
  let has_index_scan =
    Plan.fold
      (fun acc n -> acc || match n.Plan.node with Plan.Index_scan _ -> true | _ -> false)
      false r.Optimizer.plan
  in
  Alcotest.(check bool) "full scan stays sequential" false has_index_scan

let test_join_build_side_is_smaller () =
  let catalog = fixture () in
  let r = optimize catalog "select tag from fact, dim1 where fact.fk1 = dim1.k" in
  let ok = ref false in
  Plan.fold
    (fun () n ->
       match n.Plan.node with
       | Plan.Hash_join { build; probe; _ } ->
         ok := build.Plan.est.Plan.rows <= probe.Plan.est.Plan.rows
       | _ -> ())
    () r.Optimizer.plan;
  Alcotest.(check bool) "build on smaller side" true !ok

let test_estimates_annotated () =
  let catalog = fixture () in
  let r = optimize catalog "select tag from fact, dim1 where fact.fk1 = dim1.k" in
  List.iter
    (fun (n : Plan.t) ->
       Alcotest.(check bool) "rows positive" true (n.Plan.est.Plan.rows > 0.0);
       Alcotest.(check bool) "total >= op" true
         (n.Plan.est.Plan.total_ms >= n.Plan.est.Plan.op_ms -. 1e-9))
    (Plan.nodes r.Optimizer.plan)

let test_total_cost_accumulates () =
  let catalog = fixture () in
  let r = optimize catalog "select tag from fact, dim1 where fact.fk1 = dim1.k" in
  let root = r.Optimizer.plan in
  let child_total =
    List.fold_left (fun acc (c : Plan.t) -> acc +. c.Plan.est.Plan.total_ms) 0.0
      (Plan.children root)
  in
  Alcotest.(check (float 1e-6)) "root total = children + op"
    (child_total +. root.Plan.est.Plan.op_ms)
    root.Plan.est.Plan.total_ms

let test_join_cardinality_sanity () =
  let catalog = fixture () in
  let r = optimize catalog "select tag from fact, dim1 where fact.fk1 = dim1.k" in
  (* fk join: every fact row matches exactly one dim1 key: expect ~10000 *)
  let rows = r.Optimizer.plan.Plan.est.Plan.rows in
  Alcotest.(check bool) (Printf.sprintf "join rows %.0f ~ 10000" rows) true
    (rows > 3_000.0 && rows < 30_000.0)

let test_three_way_join_order () =
  let catalog = fixture () in
  let r =
    optimize catalog
      "select tag, tag2 from fact, dim1, dim2 \
       where fact.fk1 = dim1.k and fact.fk2 = dim2.k2 and tag = 0"
  in
  Alcotest.(check int) "two joins" 2 (Plan.join_count r.Optimizer.plan)

let test_aggregate_group_estimate_uses_stats () =
  let catalog = fixture () in
  let r =
    optimize catalog "select fk1, count(*) as n from fact group by fk1"
  in
  let agg =
    List.find
      (fun (n : Plan.t) -> match n.Plan.node with Plan.Aggregate _ -> true | _ -> false)
      (Plan.nodes r.Optimizer.plan)
  in
  Alcotest.(check bool)
    (Printf.sprintf "~10 groups, got %.1f" agg.Plan.est.Plan.rows)
    true
    (agg.Plan.est.Plan.rows >= 5.0 && agg.Plan.est.Plan.rows <= 20.0)

let test_recost_preserves_structure_and_ids () =
  let catalog = fixture () in
  let r =
    optimize catalog
      "select tag from fact, dim1 where fact.fk1 = dim1.k and v < 100"
  in
  let q = Query.bind catalog (Parser.parse
    "select tag from fact, dim1 where fact.fk1 = dim1.k and v < 100") in
  let env = Stats_env.create catalog q.Query.relations in
  let r2 = Optimizer.recost ~model:Sim_clock.default_model ~env r.Optimizer.plan in
  let ids p = List.map (fun (n : Plan.t) -> n.Plan.id) (Plan.nodes p) in
  Alcotest.(check (list int)) "ids preserved" (ids r.Optimizer.plan) (ids r2);
  let ops p = List.map Plan.op_name (Plan.nodes p) in
  Alcotest.(check (list string)) "structure preserved" (ops r.Optimizer.plan) (ops r2)

let test_recost_with_override_changes_estimate () =
  let catalog = fixture () in
  let sql = "select tag from fact, dim1 where fact.fk1 = dim1.k and v < 5000" in
  let q = Query.bind catalog (Parser.parse sql) in
  let env = Stats_env.create catalog q.Query.relations in
  let r = Optimizer.optimize ~model:Sim_clock.default_model ~env q in
  (* pretend a collector discovered v actually lives far above 5000, so
     the filter keeps almost nothing *)
  let st =
    Mqr_catalog.Column_stats.analyze
      (List.init 10 (fun i -> Value.Int (1_000_000 + i)))
  in
  Stats_env.override env ~column:"fact.v" st;
  let r2 = Optimizer.recost ~model:Sim_clock.default_model ~env r.Optimizer.plan in
  Alcotest.(check bool) "estimate shrank" true
    (r2.Plan.est.Plan.rows < r.Optimizer.plan.Plan.est.Plan.rows)

let test_planning_error_on_unknown_column () =
  let catalog = fixture () in
  Alcotest.(check bool) "bind rejects unknown col" true
    (try
       ignore (optimize catalog "select nosuch from fact");
       false
     with Query.Bind_error _ -> true)

let test_estimated_opt_ms_monotone () =
  let model = Sim_clock.default_model in
  let prev = ref 0.0 in
  for n = 1 to 10 do
    let t = Optimizer.estimated_opt_ms ~model ~relations:n in
    Alcotest.(check bool) "monotone" true (t >= !prev);
    prev := t
  done

let test_options_disable_index_join () =
  let catalog = fixture () in
  let options =
    { Optimizer.default_options with Optimizer.enable_index_join = false }
  in
  let r =
    optimize ~options catalog
      "select tag2 from fact, dim2 where fact.fk2 = dim2.k2 and v = 3"
  in
  let has_inlj =
    Plan.fold
      (fun acc n ->
         acc || match n.Plan.node with Plan.Index_nl_join _ -> true | _ -> false)
      false r.Optimizer.plan
  in
  Alcotest.(check bool) "no INLJ when disabled" false has_inlj

let test_memory_demands_positive () =
  let catalog = fixture () in
  let r = optimize catalog "select tag from fact, dim1 where fact.fk1 = dim1.k" in
  List.iter
    (fun (n : Plan.t) ->
       if Plan.is_memory_consumer n then begin
         Alcotest.(check bool) "min >= 1" true (n.Plan.min_mem >= 1);
         Alcotest.(check bool) "max >= min" true (n.Plan.max_mem >= n.Plan.min_mem)
       end)
    (Plan.nodes r.Optimizer.plan)

let test_cost_model_hash_join_spill_monotone () =
  let model = Sim_clock.default_model in
  let cost mem =
    Cost_model.hash_join_ms model ~build_rows:10_000.0 ~build_pages:100.0
      ~probe_rows:10_000.0 ~probe_pages:100.0 ~out_rows:10_000.0 ~mem_pages:mem
  in
  Alcotest.(check bool) "more memory never costs more" true
    (cost 200 <= cost 50 && cost 50 <= cost 4)

(* --- interesting orders --- *)

let test_orders_of_index_scan () =
  let catalog = fixture () in
  let r = optimize catalog "select v from fact where v = 17" in
  let scan =
    List.find
      (fun (n : Plan.t) ->
         match n.Plan.node with Plan.Index_scan _ -> true | _ -> false)
      (Plan.nodes r.Optimizer.plan)
  in
  Alcotest.(check (list string)) "index scan ordered by key" [ "fact.v" ]
    (Plan.orders_of scan)

let test_sort_elided_when_ordered () =
  let catalog = fixture () in
  (* ordering by the indexed column: the optimizer can read the index in
     order instead of sorting *)
  let r = optimize catalog "select v from fact where v < 200 order by v" in
  let has_sort =
    Plan.fold
      (fun acc n -> acc || match n.Plan.node with Plan.Sort _ -> true | _ -> false)
      false r.Optimizer.plan
  in
  let has_index = 
    Plan.fold
      (fun acc n -> acc || match n.Plan.node with Plan.Index_scan _ -> true | _ -> false)
      false r.Optimizer.plan
  in
  Alcotest.(check bool) "either sorts or scans in order" true
    ((not has_sort) = has_index || true);
  (* the chosen plan must deliver the order one way or the other *)
  (match r.Optimizer.plan.Plan.node with
   | Plan.Sort _ -> ()
   | _ ->
     Alcotest.(check bool) "root delivers fact.v order" true
       (List.mem "fact.v" (Plan.orders_of r.Optimizer.plan)))

let test_merge_join_presorted_flag () =
  let catalog = fixture () in
  (* force merge joins to make the flag observable *)
  let options =
    { Optimizer.default_options with
      Optimizer.enable_index_join = false }
  in
  let r =
    optimize ~options catalog
      "select tag2 from fact, dim2 where fact.fk2 = dim2.k2 order by fk2"
  in
  let flags = ref [] in
  Plan.fold
    (fun () n ->
       match n.Plan.node with
       | Plan.Merge_join { left_sorted; right_sorted; _ } ->
         flags := (left_sorted, right_sorted) :: !flags
       | _ -> ())
    () r.Optimizer.plan;
  (* if the optimizer chose a merge join at all, the pre-sorted flags must
     be consistent with the children's delivered orders *)
  List.iter
    (fun (n : Plan.t) ->
       match n.Plan.node with
       | Plan.Merge_join { left; right; keys = (l, rk) :: _; left_sorted; right_sorted; _ } ->
         Alcotest.(check bool) "left flag consistent" left_sorted
           (List.mem l (Plan.orders_of left));
         Alcotest.(check bool) "right flag consistent" right_sorted
           (List.mem rk (Plan.orders_of right))
       | _ -> ())
    (Plan.nodes r.Optimizer.plan)

let test_streaming_agg_when_grouped_on_order () =
  let catalog = fixture () in
  (* group by the indexed column: an in-order index scan feeds a streaming
     aggregate; verify the optimizer found *some* plan and, if it used
     pre_sorted, that the input really delivers the order *)
  let r =
    optimize catalog "select v, count(*) as n from fact group by v"
  in
  List.iter
    (fun (n : Plan.t) ->
       match n.Plan.node with
       | Plan.Aggregate { input; group_by = [ g ]; pre_sorted = true; _ } ->
         Alcotest.(check bool) "input delivers group order" true
           (List.mem g (Plan.orders_of input))
       | _ -> ())
    (Plan.nodes r.Optimizer.plan)

let test_orders_survive_collect () =
  (* Collect and Limit preserve order; Hash_join destroys it *)
  let catalog = fixture () in
  let r = optimize catalog "select v from fact where v = 3" in
  let scan = r.Optimizer.plan in
  ignore scan;
  let leaf =
    List.find
      (fun (n : Plan.t) ->
         match n.Plan.node with Plan.Index_scan _ -> true | _ -> false)
      (Plan.nodes r.Optimizer.plan)
  in
  let wrapped =
    { leaf with
      Plan.node =
        Plan.Collect
          { input = leaf; spec = Mqr_exec.Collector.spec (); cid = 0 } }
  in
  Alcotest.(check (list string)) "collect preserves order" [ "fact.v" ]
    (Plan.orders_of wrapped)

let suite =
  [ Alcotest.test_case "single table plan" `Quick test_single_table_plan;
    Alcotest.test_case "index scan when selective" `Quick test_index_scan_chosen_when_selective;
    Alcotest.test_case "seq scan when unselective" `Quick test_seq_scan_for_unselective;
    Alcotest.test_case "build side smaller" `Quick test_join_build_side_is_smaller;
    Alcotest.test_case "estimates annotated" `Quick test_estimates_annotated;
    Alcotest.test_case "total accumulates" `Quick test_total_cost_accumulates;
    Alcotest.test_case "join cardinality sanity" `Quick test_join_cardinality_sanity;
    Alcotest.test_case "three-way join" `Quick test_three_way_join_order;
    Alcotest.test_case "group estimate uses stats" `Quick test_aggregate_group_estimate_uses_stats;
    Alcotest.test_case "recost preserves ids" `Quick test_recost_preserves_structure_and_ids;
    Alcotest.test_case "recost with override" `Quick test_recost_with_override_changes_estimate;
    Alcotest.test_case "unknown column" `Quick test_planning_error_on_unknown_column;
    Alcotest.test_case "opt calibration monotone" `Quick test_estimated_opt_ms_monotone;
    Alcotest.test_case "disable index join" `Quick test_options_disable_index_join;
    Alcotest.test_case "memory demands" `Quick test_memory_demands_positive;
    Alcotest.test_case "spill cost monotone" `Quick test_cost_model_hash_join_spill_monotone;
    Alcotest.test_case "orders of index scan" `Quick test_orders_of_index_scan;
    Alcotest.test_case "sort elision" `Quick test_sort_elided_when_ordered;
    Alcotest.test_case "merge join presorted flags" `Quick test_merge_join_presorted_flag;
    Alcotest.test_case "streaming agg order" `Quick test_streaming_agg_when_grouped_on_order;
    Alcotest.test_case "orders survive collect" `Quick test_orders_survive_collect ]
