(* The determinism contract of real multicore execution: for a fixed
   plan degree of parallelism, the result rows and the simulated elapsed
   time are byte-identical whether the workers run inline (pool of 1) or
   on real domains (pool of 4) — the pool size may only change wall-clock
   time.  And raising the degree itself reorders rows at most within the
   result multiset. *)
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Optimizer = Mqr_opt.Optimizer
module Plan = Mqr_opt.Plan
module Queries = Mqr_tpcd.Queries
module Tpcd_workload = Mqr_tpcd.Workload
module Verifier = Mqr_analysis.Verifier
module Value = Mqr_storage.Value

let sf = 0.001

let catalog =
  lazy
    (Tpcd_workload.experiment_catalog ~sf
       ~degradations:Tpcd_workload.paper_degradations ())

(* max_dop 4 with an explicit [opt_options] decouples the plan degree
   from the pool size: [parallel] then only controls how many domains
   execute the workers. *)
let engine ~max_dop ~parallel () =
  let budget_pages = 128 in
  let opt_options =
    { Optimizer.default_options with
      Optimizer.planning_mem_pages = max 8 (budget_pages / 2);
      max_dop }
  in
  Engine.create ~budget_pages ~pool_pages:(8 * budget_pages) ~opt_options
    ~parallel (Lazy.force catalog)

let strings rows =
  Array.to_list rows
  |> List.map (fun t -> Array.to_list (Array.map Value.to_string t))

let canon rows = List.sort compare (strings rows)

let modes =
  [ Dispatcher.Off; Dispatcher.Memory_only; Dispatcher.Plan_only;
    Dispatcher.Full; Dispatcher.Bound_checked ]

(* One engine per configuration, shared across every query and mode so
   the test does not re-spawn domains per case. *)
let pool1 = lazy (engine ~max_dop:4 ~parallel:1 ())
let pool4 = lazy (engine ~max_dop:4 ~parallel:4 ())
let serial = lazy (engine ~max_dop:1 ~parallel:1 ())

let test_pool_size_invisible (q : Queries.query) () =
  List.iter
    (fun mode ->
       let a = Engine.run_sql (Lazy.force pool1) ~mode q.Queries.sql in
       let b = Engine.run_sql (Lazy.force pool4) ~mode q.Queries.sql in
       let label what =
         Printf.sprintf "%s [%s] %s" q.Queries.name
           (Dispatcher.mode_to_string mode) what
       in
       Alcotest.(check (list (list string)))
         (label "byte-identical rows")
         (strings a.Dispatcher.rows) (strings b.Dispatcher.rows);
       Alcotest.(check (float 1e-9))
         (label "identical simulated elapsed")
         a.Dispatcher.elapsed_ms b.Dispatcher.elapsed_ms)
    modes

let test_dop_changes_only_order (q : Queries.query) () =
  List.iter
    (fun mode ->
       let s = Engine.run_sql (Lazy.force serial) ~mode q.Queries.sql in
       let p = Engine.run_sql (Lazy.force pool4) ~mode q.Queries.sql in
       Alcotest.(check (list (list string)))
         (Printf.sprintf "%s [%s] same multiset at dop 1 and 4" q.Queries.name
            (Dispatcher.mode_to_string mode))
         (canon s.Dispatcher.rows) (canon p.Dispatcher.rows))
    modes

(* A parallel plan actually runs parallel operators, and the sanitizer's
   lease invariants hold with parallelism on: filter pages and worker
   slices are both back to zero at completion. *)
let test_parallel_leases_release () =
  let budget_pages = 128 in
  let opt_options =
    { Optimizer.default_options with
      Optimizer.planning_mem_pages = max 8 (budget_pages / 2);
      max_dop = 4 }
  in
  let e =
    Engine.create ~budget_pages ~pool_pages:(8 * budget_pages) ~opt_options
      ~parallel:2 ~runtime_filters:true ~verify_plans:Verifier.Sanitize
      (Lazy.force catalog)
  in
  let r = Engine.run_sql e (Queries.find "Q5").Queries.sql in
  Alcotest.(check bool) "some operator ran parallel" true
    (r.Dispatcher.worker_pages_peak > 0);
  Alcotest.(check int) "worker slices released" 0
    r.Dispatcher.worker_pages_held;
  Alcotest.(check int) "filter pages released" 0
    r.Dispatcher.filter_pages_held;
  Engine.shutdown e

(* The optimizer only spends degrees where they pay: with max_dop 1 every
   node stays serial (so serial plans are untouched by the feature). *)
let test_serial_plans_stay_serial () =
  let r = Engine.run_sql (Lazy.force serial) (Queries.find "Q3").Queries.sql in
  List.iter
    (fun (n : Plan.t) ->
       Alcotest.(check int) "dop 1" 1 n.Plan.dop)
    (Plan.nodes r.Dispatcher.final_plan)

let shutdown_pools () =
  List.iter
    (fun e -> if Lazy.is_val e then Engine.shutdown (Lazy.force e))
    [ pool1; pool4; serial ]

let suite =
  List.concat_map
    (fun (q : Queries.query) ->
       [ Alcotest.test_case
           (q.Queries.name ^ " pool size invisible") `Quick
           (test_pool_size_invisible q);
         Alcotest.test_case
           (q.Queries.name ^ " dop changes only order") `Quick
           (test_dop_changes_only_order q) ])
    Queries.all
  @ [ Alcotest.test_case "parallel leases release" `Quick
        test_parallel_leases_release;
      Alcotest.test_case "serial plans stay serial" `Quick
        test_serial_plans_stay_serial;
      Alcotest.test_case "shutdown pools" `Quick shutdown_pools ]
