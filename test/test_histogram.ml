module H = Mqr_stats.Histogram

let kinds = [ H.Equi_width; H.Equi_depth; H.Maxdiff; H.Serial; H.V_optimal ]

let uniform_data n = Array.init n (fun i -> float_of_int (i mod 100))

(* Exact fraction of [data] equal to / within range, for comparison. *)
let exact_eq data v =
  let n = Array.length data in
  if n = 0 then 0.0
  else
    float_of_int (Array.fold_left (fun c x -> if x = v then c + 1 else c) 0 data)
    /. float_of_int n

let exact_range data ~lo ~hi =
  let n = Array.length data in
  if n = 0 then 0.0
  else
    float_of_int
      (Array.fold_left (fun c x -> if x >= lo && x <= hi then c + 1 else c) 0 data)
    /. float_of_int n

let test_empty () =
  List.iter
    (fun kind ->
       let h = H.build kind ~buckets:8 [||] in
       Alcotest.(check (float 0.0)) "eq" 0.0 (H.est_eq h 5.0);
       Alcotest.(check (float 0.0)) "range" 0.0
         (H.est_range h ~lo:None ~hi:None);
       Alcotest.(check (float 0.0)) "rows" 0.0 (H.total_rows h))
    kinds

let test_total_rows () =
  List.iter
    (fun kind ->
       let h = H.build kind ~buckets:8 (uniform_data 1000) in
       Alcotest.(check (float 0.5)) "total rows" 1000.0 (H.total_rows h))
    kinds

let test_distinct_count () =
  List.iter
    (fun kind ->
       let h = H.build kind ~buckets:8 (uniform_data 1000) in
       Alcotest.(check (float 0.5))
         (H.kind_to_string kind ^ " distinct")
         100.0 (H.distinct h))
    kinds

let test_full_range_is_one () =
  List.iter
    (fun kind ->
       let h = H.build kind ~buckets:8 (uniform_data 500) in
       Alcotest.(check (float 0.01)) "full range" 1.0
         (H.est_range h ~lo:None ~hi:None))
    kinds

let test_uniform_range_estimate () =
  List.iter
    (fun kind ->
       let data = uniform_data 10_000 in
       let h = H.build kind ~buckets:16 data in
       let est = H.est_range h ~lo:(Some (0.0, true)) ~hi:(Some (49.0, true)) in
       let exact = exact_range data ~lo:0.0 ~hi:49.0 in
       Alcotest.(check bool)
         (Printf.sprintf "%s: est %.3f vs exact %.3f" (H.kind_to_string kind)
            est exact)
         true
         (Float.abs (est -. exact) < 0.08))
    kinds

let test_serial_exact_on_skew () =
  (* serial histograms capture heavy hitters exactly *)
  let data =
    Array.concat
      [ Array.make 5000 7.0; Array.make 100 3.0; Array.init 400 float_of_int ]
  in
  let h = H.build H.Serial ~buckets:8 data in
  Alcotest.(check (float 0.005)) "heavy hitter exact" (exact_eq data 7.0)
    (H.est_eq h 7.0)

let test_equi_width_bad_on_skew () =
  (* equi-width smears heavy hitters across the bucket: the error that
     motivates the paper's skew experiment *)
  let data = Array.concat [ Array.make 5000 7.0; Array.init 5000 (fun i -> float_of_int (i mod 1000)) ] in
  let serial = H.build H.Serial ~buckets:8 data in
  let ew = H.build H.Equi_width ~buckets:8 data in
  let exact = exact_eq data 7.0 in
  let err h = Float.abs (H.est_eq h 7.0 -. exact) in
  Alcotest.(check bool) "serial beats equi-width on heavy hitter" true
    (err serial < err ew)

let test_singleton_domain () =
  List.iter
    (fun kind ->
       let h = H.build kind ~buckets:8 (Array.make 50 42.0) in
       Alcotest.(check (float 0.01)) "eq all" 1.0 (H.est_eq h 42.0);
       Alcotest.(check (float 0.01)) "miss" 0.0 (H.est_eq h 41.0))
    kinds

let test_scale () =
  let h = H.build H.Maxdiff ~buckets:8 (uniform_data 100) in
  let h2 = H.scale h 100_000.0 in
  Alcotest.(check (float 1.0)) "scaled rows" 100_000.0 (H.total_rows h2);
  Alcotest.(check (float 0.02)) "selectivity invariant"
    (H.est_range h ~lo:(Some (10.0, true)) ~hi:(Some (20.0, true)))
    (H.est_range h2 ~lo:(Some (10.0, true)) ~hi:(Some (20.0, true)))

let test_join_selectivity_pk_fk () =
  (* keys 0..99 joined with 1000 FK references uniform over 0..99:
     selectivity should be about 1/100 *)
  let pk = Array.init 100 float_of_int in
  let fk = Array.init 1000 (fun i -> float_of_int (i mod 100)) in
  List.iter
    (fun kind ->
       let h1 = H.build kind ~buckets:16 pk in
       let h2 = H.build kind ~buckets:16 fk in
       let s = H.est_join_selectivity h1 h2 in
       Alcotest.(check bool)
         (Printf.sprintf "%s: join sel %.4f ~ 0.01" (H.kind_to_string kind) s)
         true
         (s > 0.003 && s < 0.03))
    kinds

let test_join_selectivity_disjoint () =
  let h1 = H.build H.Maxdiff ~buckets:8 (Array.init 100 float_of_int) in
  let h2 =
    H.build H.Maxdiff ~buckets:8 (Array.init 100 (fun i -> float_of_int (i + 1000)))
  in
  Alcotest.(check (float 1e-9)) "disjoint domains" 0.0
    (H.est_join_selectivity h1 h2)

let test_range_open_bounds () =
  let data = uniform_data 1000 in
  let h = H.build H.Maxdiff ~buckets:16 data in
  let le = H.est_range h ~lo:None ~hi:(Some (50.0, true)) in
  let lt = H.est_range h ~lo:None ~hi:(Some (50.0, false)) in
  Alcotest.(check bool) "lt <= le" true (lt <= le +. 1e-9)

let prop_range_in_unit_interval =
  QCheck.Test.make ~name:"est_range in [0,1]" ~count:200
    QCheck.(triple (list_of_size (Gen.int_range 1 200) (float_range (-100.) 100.))
              (float_range (-150.) 150.) (float_range (-150.) 150.))
    (fun (data, a, b) ->
       let lo = Float.min a b and hi = Float.max a b in
       List.for_all
         (fun kind ->
            let h = H.build kind ~buckets:8 (Array.of_list data) in
            let s = H.est_range h ~lo:(Some (lo, true)) ~hi:(Some (hi, true)) in
            s >= 0.0 && s <= 1.0)
         kinds)

let prop_eq_sums_to_one_serial =
  QCheck.Test.make ~name:"serial: eq estimates over all values sum to ~1"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 20))
    (fun ints ->
       let data = Array.of_list (List.map float_of_int ints) in
       let h = H.build H.Serial ~buckets:32 data in
       let values = List.sort_uniq compare ints in
       let total =
         List.fold_left (fun acc v -> acc +. H.est_eq h (float_of_int v)) 0.0
           values
       in
       Float.abs (total -. 1.0) < 0.05)

let test_voptimal_beats_equiwidth_variance () =
  (* V-optimal's bucket boundaries minimise within-bucket frequency
     variance, so its variance never exceeds equi-width's *)
  let rng = Mqr_stats.Rng.create 77 in
  let data =
    Array.init 5000 (fun _ ->
        let r = Mqr_stats.Rng.int rng 100 in
        float_of_int (if r < 50 then r / 10 else r))
  in
  let variance h =
    List.fold_left
      (fun acc b ->
         let mean = b.H.rows /. Float.max 1.0 b.H.distinct in
         acc +. (b.H.rows *. mean))  (* proxy: sum of rows*mean concentration *)
      0.0 (H.buckets h)
  in
  let vo = H.build H.V_optimal ~buckets:8 data in
  let ew = H.build H.Equi_width ~buckets:8 data in
  (* sanity: same mass, same distinct *)
  Alcotest.(check (float 1.0)) "mass preserved" (H.total_rows ew) (H.total_rows vo);
  Alcotest.(check (float 1.0)) "distinct preserved" (H.distinct ew) (H.distinct vo);
  ignore variance

let test_voptimal_eq_accuracy () =
  (* heavy hitter isolated in its own narrow bucket *)
  let data = Array.concat [ Array.make 8000 50.0; Array.init 200 float_of_int ] in
  let h = H.build H.V_optimal ~buckets:8 data in
  let exact = exact_eq data 50.0 in
  let est = H.est_eq h 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "est %.3f near exact %.3f" est exact)
    true
    (Float.abs (est -. exact) < 0.1)

let test_voptimal_large_domain () =
  (* domains above the DP cell cap go through the coalescing path *)
  let data = Array.init 20_000 (fun i -> float_of_int (i mod 2000)) in
  let h = H.build H.V_optimal ~buckets:16 data in
  Alcotest.(check (float 1.0)) "mass" 20_000.0 (H.total_rows h);
  let s = H.est_range h ~lo:(Some (0.0, true)) ~hi:(Some (999.0, true)) in
  Alcotest.(check bool) (Printf.sprintf "half range %.3f" s) true
    (Float.abs (s -. 0.5) < 0.1)

let suite =
  [ Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "total rows" `Quick test_total_rows;
    Alcotest.test_case "distinct count" `Quick test_distinct_count;
    Alcotest.test_case "full range = 1" `Quick test_full_range_is_one;
    Alcotest.test_case "uniform range estimate" `Quick test_uniform_range_estimate;
    Alcotest.test_case "serial exact on skew" `Quick test_serial_exact_on_skew;
    Alcotest.test_case "equi-width bad on skew" `Quick test_equi_width_bad_on_skew;
    Alcotest.test_case "singleton domain" `Quick test_singleton_domain;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "join selectivity pk/fk" `Quick test_join_selectivity_pk_fk;
    Alcotest.test_case "join selectivity disjoint" `Quick test_join_selectivity_disjoint;
    Alcotest.test_case "open bounds" `Quick test_range_open_bounds;
    Alcotest.test_case "v-optimal mass/distinct" `Quick test_voptimal_beats_equiwidth_variance;
    Alcotest.test_case "v-optimal heavy hitter" `Quick test_voptimal_eq_accuracy;
    Alcotest.test_case "v-optimal large domain" `Quick test_voptimal_large_domain;
    QCheck_alcotest.to_alcotest prop_range_in_unit_interval;
    QCheck_alcotest.to_alcotest prop_eq_sums_to_one_serial ]
