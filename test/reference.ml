(* Brute-force reference executor for bound queries: cross product of all
   relations, full predicate evaluation, hash grouping, sort, limit.  Used
   by the integration tests to validate engine results independent of the
   optimizer, the memory manager and re-optimization. *)

open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Query = Mqr_sql.Query
module Expr = Mqr_expr.Expr
module Ast = Mqr_sql.Ast

let cross_product catalog (relations : Query.relation list) =
  let schemas = List.map (fun r -> r.Query.rel_schema) relations in
  let schema = List.fold_left Schema.concat (Schema.make []) schemas in
  let tables =
    List.map
      (fun (r : Query.relation) ->
         let tbl = Catalog.find_exn catalog r.Query.table in
         let rows = ref [] in
         Heap_file.iter tbl.Catalog.heap (fun _ t -> rows := t :: !rows);
         List.rev !rows)
      relations
  in
  let rec go acc = function
    | [] -> [ acc ]
    | rows :: rest -> List.concat_map (fun t -> go (Tuple.concat acc t) rest) rows
  in
  (go [||] tables, schema)

let group_key idxs t = List.map (fun i -> t.(i)) idxs

let run catalog (q : Query.t) : Tuple.t array * Schema.t =
  let rows, schema = cross_product catalog q.Query.relations in
  let pred = Expr.compile_pred schema (Expr.conjoin q.Query.conjuncts) in
  let rows = List.filter pred rows in
  let out_rows, out_schema =
    if q.Query.aggs = [] && q.Query.group_by = [] then begin
      let idxs = List.map (Schema.index_of schema) q.Query.select_cols in
      (List.map (fun t -> Tuple.project t idxs) rows,
       Schema.project schema idxs)
    end
    else begin
      let group_idxs = List.map (Schema.index_of schema) q.Query.group_by in
      let groups = Hashtbl.create 64 in
      List.iter
        (fun t ->
           let key = group_key group_idxs t in
           let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
           Hashtbl.replace groups key (t :: existing))
        rows;
      if q.Query.group_by = [] && Hashtbl.length groups = 0 then
        Hashtbl.replace groups [] [];
      let agg_value members (a : Query.agg) =
        let vals =
          match a.Query.arg with
          | None -> List.map (fun _ -> Value.Int 1) members
          | Some e ->
            let f = Expr.compile schema e in
            List.filter_map
              (fun t ->
                 let v = f t in
                 if Value.is_null v then None else Some v)
              members
        in
        let vals =
          if a.Query.distinct_arg then
            List.fold_left
              (fun acc v ->
                 if List.exists (Value.equal v) acc then acc else v :: acc)
              [] vals
            |> List.rev
          else vals
        in
        match a.Query.fn with
        | Ast.Count ->
          Value.Int
            (match a.Query.arg with
             | None -> List.length members
             | Some _ -> List.length vals)
        | Ast.Sum -> List.fold_left Value.add Value.Null vals
        | Ast.Min -> List.fold_left Value.min_value Value.Null vals
        | Ast.Max -> List.fold_left Value.max_value Value.Null vals
        | Ast.Avg ->
          if vals = [] then Value.Null
          else begin
            let s = List.fold_left Value.add Value.Null vals in
            Value.Float (Value.to_float s /. float_of_int (List.length vals))
          end
      in
      let out =
        Hashtbl.fold
          (fun key members acc ->
             let aggs = List.map (agg_value members) q.Query.aggs in
             Array.of_list (key @ aggs) :: acc)
          groups []
      in
      (out, Query.output_schema catalog q)
    end
  in
  (* having *)
  let out_rows =
    match q.Query.having with
    | None -> out_rows
    | Some pred ->
      let p = Expr.compile_pred out_schema pred in
      List.filter p out_rows
  in
  (* order by, limit *)
  let out_rows =
    match q.Query.order_by with
    | [] -> out_rows
    | keys ->
      let idxs = List.map (fun (k, asc) -> (Schema.index_of out_schema k, asc)) keys in
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (i, asc) :: rest ->
            let c = Value.compare a.(i) b.(i) in
            if c <> 0 then if asc then c else -c else go rest
        in
        go idxs
      in
      List.stable_sort cmp out_rows
  in
  let out_rows =
    match q.Query.limit with
    | None -> out_rows
    | Some n -> List.filteri (fun i _ -> i < n) out_rows
  in
  (Array.of_list out_rows, out_schema)

(* Order-insensitive comparison key for result checking. *)
let canonical rows =
  Array.to_list rows
  |> List.map (fun t ->
      Array.to_list t
      |> List.map (fun v ->
          match v with
          | Value.Float f -> Printf.sprintf "%.6f" f
          | v -> Value.to_string v))
  |> List.sort compare
