open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Column_stats = Mqr_catalog.Column_stats
module Parser = Mqr_sql.Parser
module Query = Mqr_sql.Query
module Plan = Mqr_opt.Plan
module Optimizer = Mqr_opt.Optimizer
module Stats_env = Mqr_opt.Stats_env
module Inaccuracy = Mqr_core.Inaccuracy
module Scia = Mqr_core.Scia
module Reopt_policy = Mqr_core.Reopt_policy
module Dispatcher = Mqr_core.Dispatcher
module Engine = Mqr_core.Engine
module Collector = Mqr_exec.Collector
module Expr = Mqr_expr.Expr

(* ------------------------------------------------------------------ *)
(* Fixture: small 3-table schema usable with the reference executor.   *)

let mini_catalog ?(kind = Mqr_stats.Histogram.Maxdiff) () =
  let catalog = Catalog.create () in
  let rng = Mqr_stats.Rng.create 11 in
  let t_schema =
    Schema.make
      [ Schema.col "tk" Value.TInt; Schema.col "tval" Value.TInt;
        Schema.col "tcat" Value.TString ]
  in
  let u_schema =
    Schema.make [ Schema.col "uk" Value.TInt; Schema.col "ufk" Value.TInt;
                  Schema.col "uval" Value.TInt ]
  in
  let v_schema =
    Schema.make [ Schema.col "vk" Value.TInt; Schema.col "vtag" Value.TString ]
  in
  let t = Heap_file.create t_schema in
  for i = 0 to 39 do
    Heap_file.append t
      [| Value.Int i; Value.Int (Mqr_stats.Rng.int rng 100);
         Value.String (if i mod 4 = 0 then "gold" else "base") |]
  done;
  let u = Heap_file.create u_schema in
  for i = 0 to 59 do
    Heap_file.append u
      [| Value.Int i; Value.Int (i mod 40); Value.Int (Mqr_stats.Rng.int rng 50) |]
  done;
  let v = Heap_file.create v_schema in
  for i = 0 to 9 do
    Heap_file.append v
      [| Value.Int i; Value.String (Printf.sprintf "tag%d" (i mod 3)) |]
  done;
  ignore (Catalog.add_table catalog "t" t);
  ignore (Catalog.add_table catalog "u" u);
  ignore (Catalog.add_table catalog "v" v);
  Catalog.analyze_table ~kind ~keys:[ "tk" ] catalog "t";
  Catalog.analyze_table ~kind ~keys:[ "uk" ] catalog "u";
  Catalog.analyze_table ~kind ~keys:[ "vk" ] catalog "v";
  ignore (Catalog.create_index catalog ~table:"t" ~column:"tk");
  catalog

(* ------------------------------------------------------------------ *)
(* Inaccuracy-potential rules.                                         *)

let env_for catalog sql =
  let q = Query.bind catalog (Parser.parse sql) in
  (q, Stats_env.create catalog q.Query.relations)

let plan_for catalog sql =
  let q, env = env_for catalog sql in
  ((Optimizer.optimize ~model:Sim_clock.default_model ~env q).Optimizer.plan, env)

let test_base_histogram_levels () =
  let catalog = mini_catalog () in
  let _, env = env_for catalog "select tval from t" in
  Alcotest.(check string) "maxdiff -> low" "low"
    (Inaccuracy.level_to_string (Inaccuracy.base_histogram_level env ~column:"t.tval"));
  Catalog.degrade_drop_histogram catalog ~table:"t" ~column:"tval";
  let _, env = env_for catalog "select tval from t" in
  Alcotest.(check string) "none -> high" "high"
    (Inaccuracy.level_to_string (Inaccuracy.base_histogram_level env ~column:"t.tval"))

let test_equi_histogram_is_medium () =
  let catalog = mini_catalog ~kind:Mqr_stats.Histogram.Equi_width () in
  let _, env = env_for catalog "select tval from t" in
  Alcotest.(check string) "equi-width -> medium" "medium"
    (Inaccuracy.level_to_string (Inaccuracy.base_histogram_level env ~column:"t.tval"))

let test_stale_bumps () =
  let catalog = mini_catalog () in
  Catalog.degrade_mark_stale catalog ~table:"t" ~column:"tval";
  let _, env = env_for catalog "select tval from t" in
  Alcotest.(check string) "stale maxdiff -> medium" "medium"
    (Inaccuracy.level_to_string (Inaccuracy.base_histogram_level env ~column:"t.tval"))

let test_multi_attr_filter_bumps () =
  let catalog = mini_catalog () in
  let plan1, env1 = plan_for catalog "select tk from t where tval < 50" in
  let plan2, env2 =
    plan_for catalog "select tk from t where tval < 50 and tcat = 'gold'"
  in
  let lvl1 = Inaccuracy.cardinality_level env1 plan1 in
  let lvl2 = Inaccuracy.cardinality_level env2 plan2 in
  Alcotest.(check bool) "correlated filter worse" true
    (Inaccuracy.compare_level lvl2 lvl1 > 0)

let test_udf_filter_high () =
  let catalog = mini_catalog () in
  let q =
    Query.bind catalog
      (Parser.parse
         ~udfs:[ { Parser.name = "f"; fn = (fun _ -> Value.Bool true); selectivity = None } ]
         "select tk from t where f(tval)")
  in
  let env = Stats_env.create catalog q.Query.relations in
  let plan = (Optimizer.optimize ~model:Sim_clock.default_model ~env q).Optimizer.plan in
  Alcotest.(check string) "udf -> high" "high"
    (Inaccuracy.level_to_string (Inaccuracy.cardinality_level env plan))

let test_distinct_level_intermediate_high () =
  let catalog = mini_catalog () in
  let plan, env = plan_for catalog "select tval from t where tcat = 'gold'" in
  Alcotest.(check string) "post-filter distinct high" "high"
    (Inaccuracy.level_to_string (Inaccuracy.distinct_level env plan ~column:"t.tval"))

let test_bump_saturates () =
  Alcotest.(check string) "high stays high" "high"
    (Inaccuracy.level_to_string (Inaccuracy.bump Inaccuracy.High))

(* ------------------------------------------------------------------ *)
(* SCIA.                                                               *)

let test_scia_inserts_for_join_columns () =
  let catalog = mini_catalog () in
  Catalog.degrade_drop_histogram catalog ~table:"u" ~column:"ufk";
  let plan, env =
    plan_for catalog
      "select uval from t, u where t.tk = u.ufk and tcat = 'gold'"
  in
  let outcome = Scia.insert ~mu:0.10 ~env plan in
  Alcotest.(check bool) "kept some stats" true (outcome.Scia.kept <> []);
  let collects =
    Plan.fold
      (fun acc n -> match n.Plan.node with Plan.Collect _ -> acc + 1 | _ -> acc)
      0 outcome.Scia.plan
  in
  Alcotest.(check bool) "collect operators inserted" true (collects > 0)

let test_scia_budget_respected () =
  let catalog = mini_catalog () in
  let plan, env =
    plan_for catalog
      "select tcat, sum(uval) as s from t, u, v \
       where t.tk = u.ufk and u.uval = v.vk and tcat = 'gold' group by tcat"
  in
  let outcome = Scia.insert ~mu:0.05 ~env plan in
  let spent =
    List.fold_left (fun acc c -> acc +. c.Scia.collect_ms) 0.0 outcome.Scia.kept
  in
  Alcotest.(check bool) "within budget" true (spent <= outcome.Scia.budget_ms +. 1e-9)

let test_scia_zero_budget_drops_all () =
  let catalog = mini_catalog () in
  let plan, env =
    plan_for catalog "select uval from t, u where t.tk = u.ufk"
  in
  let outcome = Scia.insert ~mu:0.0 ~env plan in
  Alcotest.(check (list string)) "nothing kept" []
    (List.map (fun c -> c.Scia.column) outcome.Scia.kept)

let test_scia_ranking_prefers_high_inaccuracy () =
  let catalog = mini_catalog () in
  Catalog.degrade_drop_histogram catalog ~table:"u" ~column:"ufk";
  let plan, env =
    plan_for catalog
      "select uval from t, u where t.tk = u.ufk and u.uval < 25"
  in
  let outcome = Scia.insert ~mu:1.0 ~env plan in
  (* with an unconstrained budget everything is kept, ranked by level *)
  match outcome.Scia.kept with
  | [] -> Alcotest.fail "expected candidates"
  | first :: _ ->
    Alcotest.(check string) "most inaccurate first" "high"
      (Inaccuracy.level_to_string first.Scia.level)

let test_scia_no_candidates_for_single_table_scan () =
  let catalog = mini_catalog () in
  let plan, env = plan_for catalog "select tval from t where tval < 50" in
  let outcome = Scia.insert ~mu:0.5 ~env plan in
  Alcotest.(check (list string)) "no stats useful" []
    (List.map (fun c -> c.Scia.column) outcome.Scia.kept)

(* ------------------------------------------------------------------ *)
(* Re-optimization policy.                                             *)

let params = Reopt_policy.default_params

let test_policy_eq1 () =
  (* optimizer invocation too expensive relative to the remainder *)
  Alcotest.(check string) "too cheap" "too-cheap (Eq. 1)"
    (Reopt_policy.decision_to_string
       (Reopt_policy.should_consider params ~t_opt_estimated:10.0
          ~t_improved:100.0 ~t_optimizer:50.0))

let test_policy_eq2 () =
  Alcotest.(check string) "close enough" "close-enough (Eq. 2)"
    (Reopt_policy.decision_to_string
       (Reopt_policy.should_consider params ~t_opt_estimated:1.0
          ~t_improved:110.0 ~t_optimizer:100.0))

let test_policy_consider () =
  Alcotest.(check string) "consider" "consider"
    (Reopt_policy.decision_to_string
       (Reopt_policy.should_consider params ~t_opt_estimated:1.0
          ~t_improved:200.0 ~t_optimizer:100.0))

let test_policy_acceptance () =
  Alcotest.(check bool) "cheaper accepted" true
    (Reopt_policy.accept_new_plan ~t_new_total:90.0 ~t_improved:100.0);
  Alcotest.(check bool) "ties rejected" false
    (Reopt_policy.accept_new_plan ~t_new_total:100.0 ~t_improved:100.0)

(* ------------------------------------------------------------------ *)
(* Dispatcher integration: engine results vs brute-force reference.    *)

let integration_queries =
  [ "select tval from t where tval < 50";
    "select tcat, count(*) as n from t group by tcat";
    "select uval from t, u where t.tk = u.ufk and tcat = 'gold'";
    "select tcat, sum(uval) as s from t, u where t.tk = u.ufk group by tcat";
    "select vtag, count(*) as n from t, u, v \
     where t.tk = u.ufk and u.uval = v.vk group by vtag";
    "select tval from t order by tval desc limit 5";
    "select tcat, avg(tval) as a from t group by tcat order by tcat";
    "select t.tk, uval from t, u where t.tk = u.ufk and uval < 10 \
     order by uval, tk limit 7";
    "select distinct tcat from t";
    "select distinct ufk from u order by ufk limit 5";
    "select tcat, count(*) as n from t group by tcat having n > 5";
    "select ufk, sum(uval) as s from u group by ufk having s > 50 order by s desc";
    "select tcat, count(distinct tval) as d from t group by tcat order by tcat";
    "select count(distinct ufk) as d, sum(distinct uval) as s from u" ]

let modes =
  [ Dispatcher.Off; Dispatcher.Memory_only; Dispatcher.Plan_only;
    Dispatcher.Full; Dispatcher.Bound_checked ]

let test_engine_matches_reference () =
  let catalog = mini_catalog () in
  let engine = Engine.create ~budget_pages:32 catalog in
  List.iter
    (fun sql ->
       let q = Engine.bind_sql engine sql in
       let expect, _ = Reference.run catalog q in
       List.iter
         (fun mode ->
            let r = Engine.run_sql engine ~mode sql in
            Alcotest.(check (list (list string)))
              (Printf.sprintf "%s [%s]" sql (Dispatcher.mode_to_string mode))
              (Reference.canonical expect)
              (Reference.canonical r.Dispatcher.rows))
         modes)
    integration_queries

let test_order_by_respected () =
  let catalog = mini_catalog () in
  let engine = Engine.create catalog in
  let r = Engine.run_sql engine "select tval from t order by tval desc limit 5" in
  let values =
    Array.to_list (Array.map (fun t -> Value.to_float t.(0)) r.Dispatcher.rows)
  in
  let sorted = List.sort (fun a b -> compare b a) values in
  Alcotest.(check (list (float 0.0))) "descending" sorted values

let test_temp_tables_cleaned_up () =
  let catalog = mini_catalog () in
  let engine = Engine.create ~budget_pages:16 catalog in
  let before = List.length (Catalog.tables catalog) in
  ignore
    (Engine.run_sql engine
       "select uval from t, u where t.tk = u.ufk and tcat = 'gold'");
  Alcotest.(check int) "no temp leak" before (List.length (Catalog.tables catalog))

let test_simple_query_overhead_bounded () =
  let catalog = mini_catalog () in
  let engine = Engine.create catalog in
  let sql = "select tcat, count(*) as n from t group by tcat" in
  let off = Engine.time_ms engine ~mode:Dispatcher.Off sql in
  let full = Engine.time_ms engine ~mode:Dispatcher.Full sql in
  (* collector overhead is bounded by mu plus slack for rounding *)
  Alcotest.(check bool)
    (Printf.sprintf "overhead bounded: off=%.2f full=%.2f" off full)
    true
    (full <= off *. (1.0 +. (Engine.params engine).Reopt_policy.mu +. 0.05))

let test_udf_query_runs () =
  let catalog = mini_catalog () in
  let engine = Engine.create catalog in
  Engine.register_udf engine ~name:"is_small" (function
      | [ Value.Int v ] -> Value.Bool (v < 20)
      | _ -> Value.Null);
  let r = Engine.run_sql engine "select tval from t where is_small(tval)" in
  Array.iter
    (fun t ->
       match t.(0) with
       | Value.Int v -> Alcotest.(check bool) "udf filtered" true (v < 20)
       | _ -> Alcotest.fail "type")
    r.Dispatcher.rows

let test_explain_annotated () =
  let catalog = mini_catalog () in
  let engine = Engine.create catalog in
  let plan = Engine.explain engine "select uval from t, u where t.tk = u.ufk" in
  Alcotest.(check bool) "explain has joins" true (Plan.join_count plan >= 1);
  Alcotest.(check bool) "annotated" true (plan.Plan.est.Plan.total_ms > 0.0)

let test_events_reported () =
  let catalog = mini_catalog () in
  let engine = Engine.create ~budget_pages:16 catalog in
  Catalog.degrade_drop_histogram catalog ~table:"u" ~column:"ufk";
  let r =
    Engine.run_sql engine
      "select vtag, count(*) as n from t, u, v \
       where t.tk = u.ufk and u.uval = v.vk group by vtag"
  in
  let has_unit_done =
    List.exists
      (fun ev -> match ev with Dispatcher.Ev_unit_done _ -> true | _ -> false)
      r.Dispatcher.events
  in
  Alcotest.(check bool) "unit events" true has_unit_done

let suite =
  [ Alcotest.test_case "base histogram levels" `Quick test_base_histogram_levels;
    Alcotest.test_case "equi histogram medium" `Quick test_equi_histogram_is_medium;
    Alcotest.test_case "stale bumps" `Quick test_stale_bumps;
    Alcotest.test_case "multi-attr filter bumps" `Quick test_multi_attr_filter_bumps;
    Alcotest.test_case "udf filter high" `Quick test_udf_filter_high;
    Alcotest.test_case "intermediate distinct high" `Quick test_distinct_level_intermediate_high;
    Alcotest.test_case "bump saturates" `Quick test_bump_saturates;
    Alcotest.test_case "scia inserts collectors" `Quick test_scia_inserts_for_join_columns;
    Alcotest.test_case "scia budget" `Quick test_scia_budget_respected;
    Alcotest.test_case "scia zero budget" `Quick test_scia_zero_budget_drops_all;
    Alcotest.test_case "scia ranking" `Quick test_scia_ranking_prefers_high_inaccuracy;
    Alcotest.test_case "scia no candidates" `Quick test_scia_no_candidates_for_single_table_scan;
    Alcotest.test_case "policy eq1" `Quick test_policy_eq1;
    Alcotest.test_case "policy eq2" `Quick test_policy_eq2;
    Alcotest.test_case "policy consider" `Quick test_policy_consider;
    Alcotest.test_case "policy acceptance" `Quick test_policy_acceptance;
    Alcotest.test_case "engine matches reference" `Quick test_engine_matches_reference;
    Alcotest.test_case "order by respected" `Quick test_order_by_respected;
    Alcotest.test_case "temp cleanup" `Quick test_temp_tables_cleaned_up;
    Alcotest.test_case "simple overhead bounded" `Quick test_simple_query_overhead_bounded;
    Alcotest.test_case "udf query" `Quick test_udf_query_runs;
    Alcotest.test_case "explain" `Quick test_explain_annotated;
    Alcotest.test_case "events reported" `Quick test_events_reported ]
