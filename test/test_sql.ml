open Mqr_storage
module Lexer = Mqr_sql.Lexer
module Parser = Mqr_sql.Parser
module Ast = Mqr_sql.Ast
module Query = Mqr_sql.Query
module Catalog = Mqr_catalog.Catalog
module Expr = Mqr_expr.Expr

(* --- lexer --- *)

let test_lex_basic () =
  let toks = Lexer.tokenize "select a, b from t where a <= 3.5" in
  Alcotest.(check int) "token count" 11 (List.length toks);
  (match toks with
   | Lexer.KW "select" :: Lexer.IDENT "a" :: Lexer.COMMA :: _ -> ()
   | _ -> Alcotest.fail "prefix wrong")

let test_lex_string_escape () =
  match Lexer.tokenize "'it''s'" with
  | [ Lexer.STRING "it's"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "string escape"

let test_lex_operators () =
  match Lexer.tokenize "<> <= >= < > = !=" with
  | [ Lexer.NE; Lexer.LE; Lexer.GE; Lexer.LT; Lexer.GT; Lexer.EQ; Lexer.NE;
      Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "operators"

let test_lex_case_insensitive_keywords () =
  match Lexer.tokenize "SELECT From WHERE" with
  | [ Lexer.KW "select"; Lexer.KW "from"; Lexer.KW "where"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "keywords"

let test_lex_bad_char () =
  Alcotest.(check bool) "lex error" true
    (try
       ignore (Lexer.tokenize "select #");
       false
     with Lexer.Lex_error _ -> true)

let test_lex_unterminated_string () =
  Alcotest.(check bool) "unterminated" true
    (try
       ignore (Lexer.tokenize "'abc");
       false
     with Lexer.Lex_error _ -> true)

(* --- parser --- *)

let test_parse_simple () =
  let q = Parser.parse "select a from t" in
  Alcotest.(check int) "one item" 1 (List.length q.Ast.select);
  Alcotest.(check (list (pair string (option string)))) "from" [ ("t", None) ]
    q.Ast.from

let test_parse_full () =
  let q =
    Parser.parse
      "select a, sum(b) as total from t x, u where x.a = u.a and b > 3 \
       group by a order by total desc limit 5"
  in
  Alcotest.(check int) "2 items" 2 (List.length q.Ast.select);
  Alcotest.(check (list (pair string (option string)))) "from"
    [ ("t", Some "x"); ("u", None) ] q.Ast.from;
  Alcotest.(check bool) "has where" true (q.Ast.where <> None);
  Alcotest.(check (list string)) "group" [ "a" ] q.Ast.group_by;
  (match q.Ast.order_by with
   | [ { Ast.key = "total"; asc = false } ] -> ()
   | _ -> Alcotest.fail "order");
  Alcotest.(check (option int)) "limit" (Some 5) q.Ast.limit

let test_parse_precedence () =
  (* a = 1 or b = 2 and c = 3  ==  a = 1 or (b = 2 and c = 3) *)
  let e = Parser.parse_expr "a = 1 or b = 2 and c = 3" in
  match e with
  | Expr.Or (_, Expr.And (_, _)) -> ()
  | _ -> Alcotest.fail "precedence"

let test_parse_parens () =
  let e = Parser.parse_expr "(a = 1 or b = 2) and c = 3" in
  match e with
  | Expr.And (Expr.Or (_, _), _) -> ()
  | _ -> Alcotest.fail "parens"

let test_parse_between () =
  match Parser.parse_expr "a between 1 and 5" with
  | Expr.Between (Expr.Col "a", _, _) -> ()
  | _ -> Alcotest.fail "between"

let test_parse_date_literal () =
  match Parser.parse_expr "d >= date '1994-01-01'" with
  | Expr.Cmp (Expr.Ge, Expr.Col "d", Expr.Const (Value.Date _)) -> ()
  | _ -> Alcotest.fail "date literal"

let test_parse_arith () =
  match Parser.parse_expr "a + 2 * b" with
  | Expr.Arith (Expr.Add, Expr.Col "a", Expr.Arith (Expr.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "arith precedence"

let test_parse_count_star () =
  let q = Parser.parse "select count(*) from t" in
  match q.Ast.select with
  | [ Ast.Agg_item (Ast.Count, false, None, None) ] -> ()
  | _ -> Alcotest.fail "count star"

let test_parse_udf () =
  let udfs =
    [ { Parser.name = "myfn"; fn = (fun _ -> Value.Bool true); selectivity = Some 0.5 } ]
  in
  (match Parser.parse_expr ~udfs "myfn(a, 3)" with
   | Expr.Udf { Expr.udf_name = "myfn"; args = [ _; _ ]; declared_selectivity = Some 0.5; _ } -> ()
   | _ -> Alcotest.fail "udf parse");
  Alcotest.(check bool) "unknown fn" true
    (try
       ignore (Parser.parse_expr "nosuch(a)");
       false
     with Parser.Parse_error _ -> true)

let test_parse_errors () =
  List.iter
    (fun sql ->
       Alcotest.(check bool) sql true
         (try
            ignore (Parser.parse sql);
            false
          with Parser.Parse_error _ -> true))
    [ "select from t"; "select a"; "select a from t where"; "select a from t limit x";
      "select a from t where a = 1 2" ]

let test_ast_roundtrip () =
  let sql = "select a, sum(b) as s from t, u where t.a = u.a group by a limit 3" in
  let q = Parser.parse sql in
  let q2 = Parser.parse (Ast.to_sql q) in
  Alcotest.(check string) "stable" (Ast.to_sql q) (Ast.to_sql q2)

(* --- binder --- *)

let fixture_catalog () =
  let catalog = Catalog.create () in
  let t_schema =
    Schema.make [ Schema.col "a" Value.TInt; Schema.col "b" Value.TFloat ]
  in
  let u_schema =
    Schema.make [ Schema.col "a" Value.TInt; Schema.col "c" Value.TString ]
  in
  let t = Heap_file.create t_schema and u = Heap_file.create u_schema in
  for i = 0 to 9 do
    Heap_file.append t [| Value.Int i; Value.Float (float_of_int i) |];
    Heap_file.append u [| Value.Int i; Value.String (string_of_int i) |]
  done;
  ignore (Catalog.add_table catalog "t" t);
  ignore (Catalog.add_table catalog "u" u);
  Catalog.analyze_table catalog "t";
  Catalog.analyze_table catalog "u";
  catalog

let bind sql = Query.bind (fixture_catalog ()) (Parser.parse sql)

let test_bind_qualifies () =
  let q = bind "select b from t, u where t.a = u.a and c = 'x'" in
  Alcotest.(check (list string)) "select qualified" [ "t.b" ] q.Query.select_cols;
  match q.Query.conjuncts with
  | [ j; f ] ->
    Alcotest.(check string) "join conjunct" "t.a = u.a" (Expr.to_sql j);
    Alcotest.(check string) "filter" "u.c = 'x'" (Expr.to_sql f)
  | _ -> Alcotest.fail "conjunct count"

let test_bind_star () =
  let q = bind "select * from t" in
  Alcotest.(check (list string)) "star expands" [ "t.a"; "t.b" ] q.Query.select_cols

let test_bind_ambiguous () =
  Alcotest.(check bool) "ambiguous a" true
    (try
       ignore (bind "select a from t, u");
       false
     with Query.Bind_error _ -> true)

let test_bind_unknown_table () =
  Alcotest.(check bool) "unknown" true
    (try
       ignore (bind "select a from nosuch");
       false
     with Query.Bind_error _ -> true)

let test_bind_group_validation () =
  Alcotest.(check bool) "non-grouped output" true
    (try
       ignore (bind "select b, sum(a) from t group by a");
       false
     with Query.Bind_error _ -> true);
  let q = bind "select b, sum(a) as s from t group by b" in
  Alcotest.(check (list string)) "group ok" [ "t.b" ] q.Query.group_by

let test_bind_alias () =
  let q = bind "select x.a from t x, t y where x.a = y.a" in
  Alcotest.(check int) "2 relations" 2 (List.length q.Query.relations);
  Alcotest.(check int) "1 join" 1 (Query.join_count q)

let test_bind_duplicate_alias () =
  Alcotest.(check bool) "dup alias" true
    (try
       ignore (bind "select a from t, t");
       false
     with Query.Bind_error _ -> true)

let test_output_schema () =
  let catalog = fixture_catalog () in
  let q = Query.bind catalog (Parser.parse "select b, count(*) as n from t group by b") in
  let out = Query.output_schema catalog q in
  Alcotest.(check int) "2 cols" 2 (Schema.arity out);
  Alcotest.(check string) "agg col" "n" (Schema.column out 1).Schema.name

let test_parse_having_distinct () =
  let q = Parser.parse "select distinct a from t where b > 1" in
  Alcotest.(check bool) "distinct flag" true q.Ast.distinct;
  let q2 = Parser.parse "select a, count(*) as n from t group by a having n > 2" in
  Alcotest.(check bool) "having parsed" true (q2.Ast.having <> None)

let test_bind_distinct_rewrites_to_group () =
  let q = bind "select distinct b from t" in
  Alcotest.(check (list string)) "group by = select" [ "t.b" ] q.Query.group_by;
  Alcotest.(check int) "no aggs" 0 (List.length q.Query.aggs)

let test_bind_having () =
  let q = bind "select b, count(*) as n from t group by b having n > 1" in
  (match q.Query.having with
   | Some e -> Alcotest.(check string) "resolved" "n > 1" (Expr.to_sql e)
   | None -> Alcotest.fail "having lost");
  Alcotest.(check bool) "having without group rejected" true
    (try
       ignore (bind "select a from t having a > 1");
       false
     with Query.Bind_error _ -> true)

let test_parse_count_distinct () =
  let q = Parser.parse "select count(distinct a) as n from t" in
  (match q.Ast.select with
   | [ Ast.Agg_item (Ast.Count, true, Some _, Some "n") ] -> ()
   | _ -> Alcotest.fail "count distinct parse");
  Alcotest.(check bool) "distinct star rejected" true
    (try
       ignore (Parser.parse "select count(distinct *) from t");
       false
     with Parser.Parse_error _ -> true)

let test_join_count_classification () =
  Alcotest.(check int) "0 joins" 0 (Query.join_count (bind "select a from t where a < 3"));
  Alcotest.(check int) "1 join" 1
    (Query.join_count (bind "select b from t, u where t.a = u.a"))

let suite =
  [ Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex string escape" `Quick test_lex_string_escape;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex keywords" `Quick test_lex_case_insensitive_keywords;
    Alcotest.test_case "lex bad char" `Quick test_lex_bad_char;
    Alcotest.test_case "lex unterminated" `Quick test_lex_unterminated_string;
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse full" `Quick test_parse_full;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse parens" `Quick test_parse_parens;
    Alcotest.test_case "parse between" `Quick test_parse_between;
    Alcotest.test_case "parse date" `Quick test_parse_date_literal;
    Alcotest.test_case "parse arith" `Quick test_parse_arith;
    Alcotest.test_case "parse count star" `Quick test_parse_count_star;
    Alcotest.test_case "parse udf" `Quick test_parse_udf;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "ast roundtrip" `Quick test_ast_roundtrip;
    Alcotest.test_case "bind qualifies" `Quick test_bind_qualifies;
    Alcotest.test_case "bind star" `Quick test_bind_star;
    Alcotest.test_case "bind ambiguous" `Quick test_bind_ambiguous;
    Alcotest.test_case "bind unknown table" `Quick test_bind_unknown_table;
    Alcotest.test_case "bind group validation" `Quick test_bind_group_validation;
    Alcotest.test_case "bind alias self-join" `Quick test_bind_alias;
    Alcotest.test_case "bind duplicate alias" `Quick test_bind_duplicate_alias;
    Alcotest.test_case "output schema" `Quick test_output_schema;
    Alcotest.test_case "join count" `Quick test_join_count_classification;
    Alcotest.test_case "parse having/distinct" `Quick test_parse_having_distinct;
    Alcotest.test_case "bind distinct" `Quick test_bind_distinct_rewrites_to_group;
    Alcotest.test_case "bind having" `Quick test_bind_having;
    Alcotest.test_case "parse count distinct" `Quick test_parse_count_distinct ]
