(* Plan verifier: hand-built broken plans must produce their expected
   diagnostic codes, every benchmark plan must verify clean in both
   reopt modes, and sanitizer mode must never perturb execution. *)
open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Expr = Mqr_expr.Expr
module Plan = Mqr_opt.Plan
module Collector = Mqr_exec.Collector
module Verifier = Mqr_analysis.Verifier
module Diagnostic = Mqr_analysis.Diagnostic
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload

(* --- a tiny two-table world: t(a int, b string), u(k int, v float) --- *)

let catalog () =
  let c = Catalog.create () in
  let t =
    Heap_file.create
      (Schema.make [ Schema.col "a" Value.TInt; Schema.col "b" Value.TString ])
  in
  for i = 0 to 99 do
    Heap_file.append t [| Value.Int i; Value.String "x" |]
  done;
  ignore (Catalog.add_table c "t" t);
  let u =
    Heap_file.create
      (Schema.make [ Schema.col "k" Value.TInt; Schema.col "v" Value.TFloat ])
  in
  for i = 0 to 49 do
    Heap_file.append u [| Value.Int i; Value.Float 0.5 |]
  done;
  ignore (Catalog.add_table c "u" u);
  Catalog.analyze_table c "t";
  Catalog.analyze_table c "u";
  c

let ctx ?budget_pages ?mu () = Verifier.context ?budget_pages ?mu (catalog ())

(* Hand-built nodes: real schemas, fabricated estimates. *)
let next_id = ref 0

let mk ?(rows = 10.0) ?(op = 1.0) ?(min_mem = 0) ?(max_mem = 0) ?(mem = 0)
    ?(dop = 1) schema node =
  incr next_id;
  let children_total =
    List.fold_left
      (fun acc (c : Plan.t) -> acc +. c.Plan.est.Plan.total_ms)
      0.0
      (Plan.children
         { Plan.id = 0; node; schema; est = { Plan.rows; width = 8.0;
           op_ms = 0.0; total_ms = 0.0 }; min_mem = 0; max_mem = 0; mem = 0;
           dop = 1 })
  in
  { Plan.id = !next_id;
    node;
    schema;
    est = { Plan.rows; width = 8.0; op_ms = op;
            total_ms = op +. children_total };
    min_mem;
    max_mem;
    mem;
    dop }

let table_schema c name =
  Schema.qualify
    (Heap_file.schema (Catalog.find_exn c name).Catalog.heap) name

let scan c ?(rows = 100.0) name =
  mk ~rows (table_schema c name)
    (Plan.Seq_scan { table = name; alias = name; filter = None })

let join ?(rows = 50.0) ?(min_mem = 1) ?(max_mem = 4) ?(mem = 0) ?(rf = [])
    ~keys build probe =
  mk ~rows ~min_mem ~max_mem ~mem
    (Schema.concat probe.Plan.schema build.Plan.schema)
    (Plan.Hash_join { build; probe; keys; extra = None; rf })

let t_join_u ?rf ?mem c =
  join ?rf ?mem ~keys:[ ("t.a", "u.k") ] (scan c "u") (scan c "t")

let error_codes diags =
  List.filter_map
    (fun (d : Diagnostic.t) ->
       if Diagnostic.is_error d then Some d.Diagnostic.code else None)
    diags

let check_has_error code diags =
  Alcotest.(check bool)
    (Printf.sprintf "diagnostic %s reported" code)
    true
    (List.mem code (error_codes diags))

(* --- seeded-broken plans, one per verifier pass --- *)

let test_well_formed_plan_clean () =
  let c = catalog () in
  let diags = Verifier.verify (ctx ()) (t_join_u c) in
  Alcotest.(check (list string)) "no errors" [] (error_codes diags)

let test_dangling_column_ref () =
  let c = catalog () in
  let base = scan c "t" in
  let broken =
    mk ~rows:50.0 base.Plan.schema
      (Plan.Filter
         { input = base; pred = Expr.Cmp (Expr.Eq, Expr.Col "t.zzz",
                                          Expr.Const (Value.Int 1)) })
  in
  check_has_error "SCH-COLREF" (Verifier.verify (ctx ()) broken)

let test_join_key_type_mismatch () =
  let c = catalog () in
  (* t.b is a string, u.k an int: no equi-join between them typechecks *)
  let broken = join ~keys:[ ("t.b", "u.k") ] (scan c "u") (scan c "t") in
  check_has_error "SCH-TYPE" (Verifier.verify (ctx ()) broken)

let test_collector_on_blocked_input () =
  let c = catalog () in
  (* a collector above a join examines a non-streamed (already joined)
     intermediate: illegal position per the paper's SCIA rules *)
  let j = t_join_u c in
  let broken =
    mk ~rows:50.0 j.Plan.schema
      (Plan.Collect
         { input = j; spec = Collector.spec ~hist_cols:[ "t.a" ] ();
           cid = 0 })
  in
  check_has_error "SCIA-POSITION" (Verifier.verify (ctx ()) broken)

let test_collector_unknown_column () =
  let c = catalog () in
  let base = scan c "t" in
  let broken =
    mk ~rows:100.0 base.Plan.schema
      (Plan.Collect
         { input = base; spec = Collector.spec ~hist_cols:[ "t.nope" ] ();
           cid = 0 })
  in
  check_has_error "SCIA-COLS" (Verifier.verify (ctx ()) broken)

let test_over_budget_memory () =
  let c = catalog () in
  (* granted 16 pages against a 4-page broker budget *)
  let broken = t_join_u ~mem:16 c in
  let broken = { broken with Plan.max_mem = 16 } in
  check_has_error "MEM-BUDGET" (Verifier.verify (ctx ~budget_pages:4 ()) broken)

let test_unbalanced_filter_lifetime () =
  let c = catalog () in
  (* the filter's install site "u" is the build side itself: the lease
     could never retire inside the unit (and prunes nothing) *)
  let rf =
    [ { Plan.rf_build_col = "u.k"; rf_probe_col = "t.a"; rf_sel = 0.5;
        rf_sites = [ "u" ] } ]
  in
  check_has_error "RF-LIFETIME" (Verifier.verify (ctx ()) (t_join_u ~rf c))

let test_join_exceeds_cross_product () =
  let c = catalog () in
  (* 100 x 50 inputs cannot produce 10^6 rows *)
  let broken = join ~rows:1_000_000.0 ~keys:[ ("t.a", "u.k") ]
      (scan c "u") (scan c "t")
  in
  check_has_error "EST-JOIN-BOUND" (Verifier.verify (ctx ()) broken)

let test_check_exn_raises () =
  let c = catalog () in
  let broken = join ~keys:[ ("t.b", "u.k") ] (scan c "u") (scan c "t") in
  match Verifier.check_exn ~what:"unit test" (ctx ()) broken with
  | _ -> Alcotest.fail "expected Verifier.Rejected"
  | exception Verifier.Rejected { what; diags } ->
    Alcotest.(check string) "what" "unit test" what;
    Alcotest.(check bool) "only errors carried" true
      (List.for_all Diagnostic.is_error diags)

(* --- every benchmark plan verifies clean, both reopt modes --- *)

let test_benchmark_plans_clean () =
  let catalog = Workload.experiment_catalog ~sf:0.001 () in
  let engine = Engine.create ~budget_pages:64 catalog in
  List.iter
    (fun (q : Queries.query) ->
       List.iter
         (fun mode ->
            let _plan, diags = Engine.lint engine ~mode q.Queries.sql in
            Alcotest.(check (list string))
              (Printf.sprintf "%s [%s] clean" q.Queries.name
                 (Dispatcher.mode_to_string mode))
              [] (error_codes diags))
         [ Dispatcher.Off; Dispatcher.Full ])
    Queries.all

(* --- sanitizer mode: pure analysis, zero execution perturbation --- *)

let test_sanitizer_parity () =
  let catalog = Workload.experiment_catalog ~sf:0.001 () in
  let plain = Engine.create ~budget_pages:32 ~pool_pages:256 catalog in
  let sanitized =
    Engine.create ~budget_pages:32 ~pool_pages:256
      ~verify_plans:Verifier.Sanitize catalog
  in
  List.iter
    (fun name ->
       let q = Queries.find name in
       let off = Engine.run_sql plain ~mode:Dispatcher.Full q.Queries.sql in
       let on = Engine.run_sql sanitized ~mode:Dispatcher.Full q.Queries.sql in
       Alcotest.(check (float 0.0))
         (name ^ " elapsed identical")
         off.Dispatcher.elapsed_ms on.Dispatcher.elapsed_ms;
       Alcotest.(check int)
         (name ^ " same result size")
         (Array.length off.Dispatcher.rows)
         (Array.length on.Dispatcher.rows);
       Alcotest.(check bool) (name ^ " plans verified") true
         (on.Dispatcher.verifications > 0);
       Alcotest.(check int) (name ^ " filter leases retired") 0
         on.Dispatcher.filter_pages_held)
    [ "Q3"; "Q5" ]

(* --- report exposure: collector CPU and filter-page accounting --- *)

let test_report_collector_ms () =
  let catalog = Workload.experiment_catalog ~sf:0.001 () in
  let engine = Engine.create ~budget_pages:64 catalog in
  let r =
    Engine.run_sql engine ~mode:Dispatcher.Full (Queries.find "Q5").Queries.sql
  in
  Alcotest.(check bool) "collectors ran" true (r.Dispatcher.collectors > 0);
  Alcotest.(check bool) "collector CPU accounted" true
    (r.Dispatcher.collector_ms > 0.0);
  Alcotest.(check bool) "collector CPU below elapsed" true
    (r.Dispatcher.collector_ms < r.Dispatcher.elapsed_ms);
  Alcotest.(check int) "no filter pages at completion" 0
    r.Dispatcher.filter_pages_held;
  let off =
    Engine.run_sql engine ~mode:Dispatcher.Off (Queries.find "Q5").Queries.sql
  in
  Alcotest.(check (float 0.0)) "no collectors, no collector CPU" 0.0
    off.Dispatcher.collector_ms

let suite =
  [ Alcotest.test_case "well-formed plan is clean" `Quick
      test_well_formed_plan_clean;
    Alcotest.test_case "dangling column ref -> SCH-COLREF" `Quick
      test_dangling_column_ref;
    Alcotest.test_case "join key type mismatch -> SCH-TYPE" `Quick
      test_join_key_type_mismatch;
    Alcotest.test_case "collector on blocked input -> SCIA-POSITION" `Quick
      test_collector_on_blocked_input;
    Alcotest.test_case "collector unknown column -> SCIA-COLS" `Quick
      test_collector_unknown_column;
    Alcotest.test_case "over-budget memory -> MEM-BUDGET" `Quick
      test_over_budget_memory;
    Alcotest.test_case "unbalanced filter lifetime -> RF-LIFETIME" `Quick
      test_unbalanced_filter_lifetime;
    Alcotest.test_case "join exceeds cross product -> EST-JOIN-BOUND" `Quick
      test_join_exceeds_cross_product;
    Alcotest.test_case "check_exn raises Rejected with errors only" `Quick
      test_check_exn_raises;
    Alcotest.test_case "all benchmark plans verify clean" `Slow
      test_benchmark_plans_clean;
    Alcotest.test_case "sanitizer mode never perturbs execution" `Slow
      test_sanitizer_parity;
    Alcotest.test_case "report exposes collector CPU and filter pages" `Slow
      test_report_collector_ms ]
