module Plan = Mqr_opt.Plan
module Memory_manager = Mqr_memman.Memory_manager
module Schema = Mqr_storage.Schema

(* Hand-built plan skeletons: we only need ids, memory demands and tree
   shape, so fabricate nodes directly. *)
let mk_node ?(min_mem = 0) ?(max_mem = 0) id node =
  { Plan.id;
    node;
    schema = Schema.make [];
    est = { Plan.rows = 1.0; width = 8.0; op_ms = 1.0; total_ms = 1.0 };
    min_mem;
    max_mem;
    mem = 0;
    dop = 1 }

let scan id = mk_node id (Plan.Seq_scan { table = "t"; alias = "t"; filter = None })

let join ?(min_mem = 2) ?(max_mem = 10) id build probe =
  mk_node ~min_mem ~max_mem id
    (Plan.Hash_join { build; probe; keys = []; extra = None; rf = [] })

(* Figure 3 shape: agg over join2(join1(scan, scan), scan). *)
let figure3_plan ~j1_max ~j2_max ~agg_max =
  let s1 = scan 1 and s2 = scan 2 and s3 = scan 3 in
  let j1 = join ~min_mem:1 ~max_mem:j1_max 4 s2 s1 in
  let j2 = join ~min_mem:1 ~max_mem:j2_max 5 s3 j1 in
  mk_node ~min_mem:1 ~max_mem:agg_max 6
    (Plan.Aggregate { input = j2; group_by = []; aggs = []; pre_sorted = false })

let test_consumers_in_execution_order () =
  let plan = figure3_plan ~j1_max:10 ~j2_max:10 ~agg_max:4 in
  let order =
    List.map (fun (n : Plan.t) -> n.Plan.id)
      (Memory_manager.consumers_in_order plan)
  in
  Alcotest.(check (list int)) "join1, join2, agg" [ 4; 5; 6 ] order

let test_everything_fits () =
  let plan = figure3_plan ~j1_max:10 ~j2_max:10 ~agg_max:4 in
  let mm = Memory_manager.create ~budget_pages:100 in
  let grants = Memory_manager.allocate mm plan in
  List.iter
    (fun g ->
       Alcotest.(check int) "granted max" g.Memory_manager.max_pages
         g.Memory_manager.granted)
    grants

let test_figure3_pressure () =
  (* Budget 20: join1 wants 15, join2 wants 15, agg wants 4.  Like the
     paper's Figure 3, the first join gets its max and the second is
     squeezed to (near) its min. *)
  let plan = figure3_plan ~j1_max:15 ~j2_max:15 ~agg_max:4 in
  let mm = Memory_manager.create ~budget_pages:20 in
  let grants = Memory_manager.allocate mm plan in
  (match grants with
   | [ g1; g2; _g3 ] ->
     Alcotest.(check int) "join1 gets max" 15 g1.Memory_manager.granted;
     Alcotest.(check bool) "join2 squeezed" true
       (g2.Memory_manager.granted < g2.Memory_manager.max_pages)
   | _ -> Alcotest.fail "expected 3 grants");
  let total = List.fold_left (fun a g -> a + g.Memory_manager.granted) 0 grants in
  Alcotest.(check bool) "within budget" true (total <= 20)

let test_reallocation_after_shrunk_estimate () =
  (* After improved estimates the second join's demand shrinks and a
     second allocation gives it the max: the paper's 2-pass -> 1-pass
     story. *)
  let plan = figure3_plan ~j1_max:15 ~j2_max:6 ~agg_max:4 in
  let mm = Memory_manager.create ~budget_pages:25 in
  let grants = Memory_manager.allocate mm plan in
  match grants with
  | [ _; g2; _ ] ->
    Alcotest.(check int) "join2 now satisfied" 6 g2.Memory_manager.granted
  | _ -> Alcotest.fail "expected 3 grants"

let test_minimums_when_overcommitted () =
  let plan = figure3_plan ~j1_max:50 ~j2_max:50 ~agg_max:50 in
  let mm = Memory_manager.create ~budget_pages:10 in
  let grants = Memory_manager.allocate mm plan in
  List.iter
    (fun g ->
       Alcotest.(check bool) "at least 1 page" true (g.Memory_manager.granted >= 1))
    grants

let test_frozen_nodes_untouched () =
  let plan = figure3_plan ~j1_max:15 ~j2_max:15 ~agg_max:4 in
  (* pretend join1 (id 4) already started with 3 pages *)
  (match Plan.find plan 4 with
   | Some n -> n.Plan.mem <- 3
   | None -> Alcotest.fail "node 4");
  let mm = Memory_manager.create ~budget_pages:20 in
  let grants = Memory_manager.allocate mm ~frozen:(fun id -> id = 4) plan in
  Alcotest.(check int) "only 2 grants" 2 (List.length grants);
  (match Plan.find plan 4 with
   | Some n -> Alcotest.(check int) "frozen grant kept" 3 n.Plan.mem
   | None -> ());
  let total = List.fold_left (fun a g -> a + g.Memory_manager.granted) 0 grants in
  Alcotest.(check bool) "frozen pages reserved" true (total <= 17)

let test_grants_mutate_plan () =
  let plan = figure3_plan ~j1_max:10 ~j2_max:10 ~agg_max:4 in
  let mm = Memory_manager.create ~budget_pages:100 in
  ignore (Memory_manager.allocate mm plan);
  List.iter
    (fun (n : Plan.t) ->
       if Plan.is_memory_consumer n then
         Alcotest.(check bool) "mem set" true (n.Plan.mem > 0))
    (Plan.nodes plan)

let suite =
  [ Alcotest.test_case "execution order" `Quick test_consumers_in_execution_order;
    Alcotest.test_case "everything fits" `Quick test_everything_fits;
    Alcotest.test_case "figure 3 pressure" `Quick test_figure3_pressure;
    Alcotest.test_case "realloc after shrink" `Quick test_reallocation_after_shrunk_estimate;
    Alcotest.test_case "overcommitted minimums" `Quick test_minimums_when_overcommitted;
    Alcotest.test_case "frozen untouched" `Quick test_frozen_nodes_untouched;
    Alcotest.test_case "grants mutate plan" `Quick test_grants_mutate_plan ]
