(* Randomized end-to-end queries: generate small SPJA query blocks over a
   three-table schema and check that the engine — in every re-optimization
   mode, under several memory budgets — produces exactly the rows of the
   brute-force reference executor. *)

open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Rng = Mqr_stats.Rng

(* one shared catalog: generation must be deterministic *)
let catalog = lazy (
  let catalog = Catalog.create () in
  let rng = Rng.create 20240 in
  let t1 =
    Heap_file.create
      (Schema.make
         [ Schema.col "k1" Value.TInt; Schema.col "f1" Value.TInt;
           Schema.col "v1" Value.TInt ])
  in
  for i = 0 to 79 do
    Heap_file.append t1
      [| Value.Int i; Value.Int (Rng.int rng 10); Value.Int (Rng.int rng 100) |]
  done;
  let t2 =
    Heap_file.create
      (Schema.make
         [ Schema.col "k2" Value.TInt; Schema.col "f2" Value.TInt;
           Schema.col "v2" Value.TInt ])
  in
  for i = 0 to 59 do
    Heap_file.append t2
      [| Value.Int i; Value.Int (Rng.int rng 80); Value.Int (Rng.int rng 100) |]
  done;
  let t3 =
    Heap_file.create
      (Schema.make [ Schema.col "k3" Value.TInt; Schema.col "v3" Value.TInt ])
  in
  for i = 0 to 9 do
    Heap_file.append t3 [| Value.Int i; Value.Int (Rng.int rng 100) |]
  done;
  ignore (Catalog.add_table catalog "t1" t1);
  ignore (Catalog.add_table catalog "t2" t2);
  ignore (Catalog.add_table catalog "t3" t3);
  Catalog.analyze_table ~keys:[ "k1" ] catalog "t1";
  Catalog.analyze_table ~keys:[ "k2" ] catalog "t2";
  Catalog.analyze_table ~keys:[ "k3" ] catalog "t3";
  ignore (Catalog.create_index catalog ~table:"t1" ~column:"k1");
  ignore (Catalog.create_index catalog ~table:"t2" ~column:"f2");
  catalog)

(* Random query text over the fixed schema.  Joins: t2.f2 -> t1.k1 (fk),
   t1.f1 -> t3.k3 (fk). *)
let gen_query =
  let open QCheck.Gen in
  let filter_t1 =
    oneofl [ ""; "v1 < 50"; "v1 >= 20 and v1 < 80"; "f1 = 3"; "k1 between 10 and 60" ]
  in
  let filter_t2 = oneofl [ ""; "v2 < 30"; "f2 < 40"; "v2 between 10 and 90" ] in
  let shape = int_range 0 6 in
  let agg = oneofl [ `None; `Count; `Sum ] in
  let limit = oneofl [ ""; " limit 5"; " limit 1" ] in
  let mk shape f1 f2 agg limit =
    let where parts =
      match List.filter (fun s -> s <> "") parts with
      | [] -> ""
      | l -> " where " ^ String.concat " and " l
    in
    match shape with
    | 0 ->
      (* single table *)
      (match agg with
       | `None -> "select k1, v1 from t1" ^ where [ f1 ] ^ " order by k1" ^ limit
       | `Count ->
         "select f1, count(*) as n from t1" ^ where [ f1 ]
         ^ " group by f1 order by f1"
       | `Sum ->
         "select f1, sum(v1) as s from t1" ^ where [ f1 ]
         ^ " group by f1 order by f1")
    | 1 ->
      (* 2-way join *)
      (match agg with
       | `None ->
         "select k1, v2 from t1, t2" ^ where [ "t2.f2 = t1.k1"; f1; f2 ]
         ^ " order by k1, v2" ^ limit
       | `Count ->
         "select f1, count(*) as n from t1, t2"
         ^ where [ "t2.f2 = t1.k1"; f1; f2 ]
         ^ " group by f1 order by f1"
       | `Sum ->
         "select f1, sum(v2) as s from t1, t2"
         ^ where [ "t2.f2 = t1.k1"; f1; f2 ]
         ^ " group by f1 order by f1")
    | 2 ->
      (* 3-way join *)
      "select v3, count(*) as n from t1, t2, t3"
      ^ where [ "t2.f2 = t1.k1"; "t1.f1 = t3.k3"; f1; f2 ]
      ^ " group by v3 order by v3"
    | 3 ->
      (* aggregate without group *)
      "select count(*) as n, sum(v1) as s from t1" ^ where [ f1 ]
    | 4 ->
      (* self join *)
      "select a.k1, b.v1 from t1 a, t1 b"
      ^ where [ "a.k1 = b.f1"; (if f1 = "" then "" else "a.v1 < 50") ]
      ^ " order by a.k1, b.v1" ^ limit
    | 5 ->
      (* distinct *)
      "select distinct f1 from t1" ^ where [ f1 ] ^ " order by f1"
    | _ ->
      (* having *)
      "select f1, count(*) as n from t1, t2"
      ^ where [ "t2.f2 = t1.k1"; f1; f2 ]
      ^ " group by f1 having n > 3 order by f1"
  in
  map
    (fun (shape, f1, f2, agg, limit) -> mk shape f1 f2 agg limit)
    (tup5 shape filter_t1 filter_t2 agg limit)

let modes =
  [ Dispatcher.Off; Dispatcher.Memory_only; Dispatcher.Plan_only;
    Dispatcher.Full; Dispatcher.Bound_checked ]

(* Every generated ORDER BY ... LIMIT query sorts on exactly its output
   columns, so tie-breaking differences between the engine and the
   reference cannot change the selected multiset of rows. *)
let prop_engine_matches_reference =
  QCheck.Test.make ~name:"random SPJA queries match reference executor"
    ~count:60
    (QCheck.make ~print:(fun s -> s) gen_query)
    (fun sql ->
       let catalog = Lazy.force catalog in
       let engine = Engine.create ~budget_pages:16 catalog in
       let q = Engine.bind_sql engine sql in
       let expect, _ = Reference.run catalog q in
       let expect_c = Reference.canonical expect in
       List.for_all
         (fun mode ->
            let r = Engine.run_sql engine ~mode sql in
            let got = Reference.canonical r.Dispatcher.rows in
            if got <> expect_c then
              QCheck.Test.fail_reportf
                "mode %s disagrees on %s:@.engine %d rows, reference %d rows"
                (Dispatcher.mode_to_string mode)
                sql (List.length got) (List.length expect_c)
            else true)
         modes)

let prop_modes_agree_under_budgets =
  QCheck.Test.make ~name:"all budgets produce identical answers" ~count:30
    (QCheck.make ~print:(fun s -> s) gen_query)
    (fun sql ->
       let catalog = Lazy.force catalog in
       let reference = ref None in
       List.for_all
         (fun budget ->
            let engine = Engine.create ~budget_pages:budget catalog in
            let r = Engine.run_sql engine sql in
            let c = Reference.canonical r.Dispatcher.rows in
            match !reference with
            | None ->
              reference := Some c;
              true
            | Some c0 -> c = c0)
         [ 4; 32; 512 ])

(* Every run under the sanitizer cross-checks each executed node's
   observed cardinality against its provable interval (BND-OBSERVED is a
   hard error raised as [Verifier.Rejected]), so completing at all — in
   every mode, with and without runtime filters, serial and parallel —
   is the soundness assertion; matching the reference rows rides along. *)
let prop_observed_within_bounds =
  QCheck.Test.make ~name:"observed cardinalities stay inside provable bounds"
    ~count:25
    (QCheck.make ~print:(fun s -> s) gen_query)
    (fun sql ->
       let catalog = Lazy.force catalog in
       let expect_c =
         let engine = Engine.create ~budget_pages:16 catalog in
         let q = Engine.bind_sql engine sql in
         Reference.canonical (fst (Reference.run catalog q))
       in
       List.for_all
         (fun (rf, pool) ->
            let engine =
              Engine.create ~budget_pages:16 ~runtime_filters:rf
                ~verify_plans:Mqr_analysis.Verifier.Sanitize ~parallel:pool
                catalog
            in
            let ok =
              List.for_all
                (fun mode ->
                   match Engine.run_sql engine ~mode sql with
                   | r -> Reference.canonical r.Dispatcher.rows = expect_c
                   | exception Mqr_analysis.Verifier.Rejected { what; diags } ->
                     QCheck.Test.fail_reportf
                       "sanitizer rejected %s [%s] at %s: %d diagnostic(s)"
                       sql
                       (Dispatcher.mode_to_string mode)
                       what (List.length diags))
                modes
            in
            Engine.shutdown engine;
            ok)
         [ (false, 1); (true, 1); (true, 4) ])

let suite =
  [ QCheck_alcotest.to_alcotest prop_engine_matches_reference;
    QCheck_alcotest.to_alcotest prop_modes_agree_under_budgets;
    QCheck_alcotest.to_alcotest prop_observed_within_bounds ]
