open Mqr_storage
module Expr = Mqr_expr.Expr
module Selectivity = Mqr_expr.Selectivity
module Column_stats = Mqr_catalog.Column_stats

let schema =
  Schema.make
    [ Schema.col ~qualifier:"t" "a" Value.TInt;
      Schema.col ~qualifier:"t" "b" Value.TFloat;
      Schema.col ~qualifier:"t" "s" Value.TString ]

let row a b s = [| Value.Int a; Value.Float b; Value.String s |]

let eval e t = Expr.compile schema e t
let pred e t = Expr.compile_pred schema e t

let test_eval_arith () =
  let e = Expr.(Arith (Add, col "t.a", int 5)) in
  Alcotest.(check bool) "3+5=8" true (Value.equal (Value.Int 8) (eval e (row 3 0.0 "")));
  let m = Expr.(Arith (Mul, col "a", col "b")) in
  Alcotest.(check bool) "2*1.5=3.0" true
    (Value.equal (Value.Float 3.0) (eval m (row 2 1.5 "")))

let test_eval_cmp () =
  Alcotest.(check bool) "lt" true (pred Expr.(col "a" <% int 10) (row 5 0.0 ""));
  Alcotest.(check bool) "not lt" false (pred Expr.(col "a" <% int 10) (row 15 0.0 ""));
  Alcotest.(check bool) "string eq" true
    (pred Expr.(col "s" =% str "x") (row 0 0.0 "x"))

let test_eval_between () =
  let e = Expr.(between (col "a") (int 2) (int 4)) in
  Alcotest.(check bool) "inside" true (pred e (row 3 0.0 ""));
  Alcotest.(check bool) "boundary lo" true (pred e (row 2 0.0 ""));
  Alcotest.(check bool) "boundary hi" true (pred e (row 4 0.0 ""));
  Alcotest.(check bool) "outside" false (pred e (row 5 0.0 ""))

let test_eval_bool_ops () =
  let t = row 5 1.0 "x" in
  Alcotest.(check bool) "and" true
    (pred Expr.((col "a" =% int 5) &&% (col "s" =% str "x")) t);
  Alcotest.(check bool) "or" true
    (pred Expr.((col "a" =% int 9) ||% (col "s" =% str "x")) t);
  Alcotest.(check bool) "not" false (pred Expr.(Not (col "a" =% int 5)) t)

let test_null_semantics () =
  let t = [| Value.Null; Value.Float 1.0; Value.String "x" |] in
  Alcotest.(check bool) "null cmp false" false (pred Expr.(col "a" =% int 5) t);
  Alcotest.(check bool) "null cmp false (ne)" false
    (pred Expr.(Cmp (Ne, col "a", int 5)) t)

let test_division_by_zero_null () =
  let e = Expr.(Arith (Div, int 1, int 0)) in
  Alcotest.(check bool) "1/0 = null" true (Value.is_null (eval e (row 0 0.0 "")))

let test_udf () =
  let fn = function
    | [ Value.Int x ] -> Value.Bool (x mod 2 = 0)
    | _ -> Value.Null
  in
  let e = Expr.udf ~name:"is_even" fn [ Expr.col "a" ] in
  Alcotest.(check bool) "even" true (pred e (row 4 0.0 ""));
  Alcotest.(check bool) "odd" false (pred e (row 3 0.0 ""))

let test_conjuncts () =
  let e = Expr.((col "a" =% int 1) &&% ((col "b" >% float 0.) &&% (col "s" =% str "x"))) in
  Alcotest.(check int) "3 conjuncts" 3 (List.length (Expr.conjuncts e));
  let back = Expr.conjoin (Expr.conjuncts e) in
  Alcotest.(check int) "conjoin roundtrip count" 3
    (List.length (Expr.conjuncts back))

let test_columns () =
  let e = Expr.((col "t.a" =% col "t.b") &&% (col "s" =% str "q")) in
  Alcotest.(check (list string)) "columns" [ "t.a"; "t.b"; "s" ] (Expr.columns e)

let test_shapes () =
  (match Expr.shape_of Expr.(col "a" <% int 3) with
   | Expr.S_col_cmp_const ("a", Expr.Lt, Value.Int 3) -> ()
   | _ -> Alcotest.fail "shape col<const");
  (match Expr.shape_of Expr.(int 3 >% col "a") with
   | Expr.S_col_cmp_const ("a", Expr.Lt, Value.Int 3) -> ()
   | _ -> Alcotest.fail "flipped shape");
  (match Expr.shape_of Expr.(col "t.a" =% col "u.b") with
   | Expr.S_col_eq_col ("t.a", "u.b") -> ()
   | _ -> Alcotest.fail "equi-join shape");
  match Expr.shape_of Expr.(between (col "a") (int 1) (int 2)) with
  | Expr.S_col_between ("a", Value.Int 1, Value.Int 2) -> ()
  | _ -> Alcotest.fail "between shape"

let test_to_sql () =
  Alcotest.(check string) "sql" "t.a = 3" (Expr.to_sql Expr.(col "t.a" =% int 3));
  Alcotest.(check string) "between" "a between 1 and 2"
    (Expr.to_sql Expr.(between (col "a") (int 1) (int 2)))

let test_resolvable () =
  Alcotest.(check bool) "resolvable" true (Expr.resolvable schema Expr.(col "t.a" =% int 1));
  Alcotest.(check bool) "unresolvable" false
    (Expr.resolvable schema Expr.(col "z.q" =% int 1))

(* --- selectivity --- *)

let no_stats = { Selectivity.stats_of = (fun _ -> None) }

let stats_with values =
  let st = Column_stats.analyze (List.map (fun i -> Value.Int i) values) in
  { Selectivity.stats_of = (fun c -> if c = "t.a" then Some st else None) }

let test_default_selectivities () =
  Alcotest.(check (float 1e-9)) "eq default" Selectivity.default_eq
    (Selectivity.selectivity no_stats Expr.(col "t.a" =% int 1));
  Alcotest.(check (float 1e-9)) "range default" Selectivity.default_range
    (Selectivity.selectivity no_stats Expr.(col "t.a" <% int 1))

let test_histogram_selectivity () =
  let env = stats_with (List.init 1000 (fun i -> i mod 100)) in
  let s = Selectivity.selectivity env Expr.(col "t.a" =% int 7) in
  Alcotest.(check bool) (Printf.sprintf "eq sel %.4f ~ 0.01" s) true
    (Float.abs (s -. 0.01) < 0.005);
  let r = Selectivity.selectivity env Expr.(col "t.a" <% int 50) in
  Alcotest.(check bool) (Printf.sprintf "range sel %.3f ~ 0.5" r) true
    (Float.abs (r -. 0.5) < 0.1)

let test_conjunction_independence () =
  let env = stats_with (List.init 1000 (fun i -> i mod 100)) in
  let s1 = Selectivity.selectivity env Expr.(col "t.a" <% int 50) in
  let s2 = Selectivity.selectivity env Expr.(col "t.a" >=% int 0) in
  let s = Selectivity.selectivity env Expr.((col "t.a" <% int 50) &&% (col "t.a" >=% int 0)) in
  Alcotest.(check (float 1e-6)) "product rule" (s1 *. s2) s

let test_udf_selectivity () =
  let u = Expr.udf ~selectivity:0.42 ~name:"f" (fun _ -> Value.Bool true) [] in
  Alcotest.(check (float 1e-9)) "declared" 0.42
    (Selectivity.selectivity no_stats u);
  let u2 = Expr.udf ~name:"g" (fun _ -> Value.Bool true) [] in
  Alcotest.(check (float 1e-9)) "default udf" Selectivity.default_udf
    (Selectivity.selectivity no_stats u2)

let test_distinct_of_column () =
  let env = stats_with (List.init 1000 (fun i -> i mod 100)) in
  match Selectivity.distinct_of_column env "t.a" with
  | Some d -> Alcotest.(check bool) "~100 distinct" true (Float.abs (d -. 100.) < 2.)
  | None -> Alcotest.fail "expected distinct"

let prop_selectivity_in_unit =
  QCheck.Test.make ~name:"selectivity always in [0,1]" ~count:300
    QCheck.(pair (int_range (-50) 150) (int_range 0 3))
    (fun (v, op) ->
       let env = stats_with (List.init 500 (fun i -> i mod 100)) in
       let e =
         match op with
         | 0 -> Expr.(col "t.a" =% int v)
         | 1 -> Expr.(col "t.a" <% int v)
         | 2 -> Expr.(col "t.a" >=% int v)
         | _ -> Expr.(between (col "t.a") (int (v - 10)) (int v))
       in
       let s = Selectivity.selectivity env e in
       s >= 0.0 && s <= 1.0)

(* random expression generator over the fixture schema (comparisons and
   boolean combinators over t.a / t.b) *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun v -> Expr.(col "t.a" =% int v)) (int_range (-5) 15);
        map (fun v -> Expr.(col "t.a" <% int v)) (int_range (-5) 15);
        map (fun v -> Expr.(col "t.b" >=% float (float_of_int v))) (int_range 0 9);
        map2 (fun a b -> Expr.(between (col "t.a") (int (min a b)) (int (max a b))))
          (int_range 0 9) (int_range 0 9) ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [ (3, leaf);
          (2, map2 (fun a b -> Expr.And (a, b)) (tree (depth - 1)) (tree (depth - 1)));
          (2, map2 (fun a b -> Expr.Or (a, b)) (tree (depth - 1)) (tree (depth - 1)));
          (1, map (fun a -> Expr.Not a) (tree (depth - 1))) ]
  in
  tree 3

let prop_sql_roundtrip =
  QCheck.Test.make ~name:"to_sql/parse_expr roundtrip preserves semantics"
    ~count:300
    (QCheck.make ~print:Expr.to_sql gen_expr)
    (fun e ->
       let e' = Mqr_sql.Parser.parse_expr (Expr.to_sql e) in
       (* compare by evaluation over a grid of rows *)
       let p = Expr.compile_pred schema e and p' = Expr.compile_pred schema e' in
       List.for_all
         (fun a ->
            List.for_all
              (fun b ->
                 let t = row a (float_of_int b) "x" in
                 p t = p' t)
              [ 0; 3; 7; 12 ])
         [ -2; 0; 5; 9; 14 ])

let prop_conjuncts_preserve_semantics =
  QCheck.Test.make ~name:"conjoin (conjuncts e) = e for AND trees" ~count:200
    (QCheck.make ~print:Expr.to_sql gen_expr)
    (fun e ->
       let e' = Expr.conjoin (Expr.conjuncts e) in
       let p = Expr.compile_pred schema e and p' = Expr.compile_pred schema e' in
       List.for_all
         (fun a ->
            let t = row a 1.0 "x" in
            p t = p' t)
         [ -1; 0; 4; 8; 13 ])

let suite =
  [ Alcotest.test_case "eval arith" `Quick test_eval_arith;
    Alcotest.test_case "eval cmp" `Quick test_eval_cmp;
    Alcotest.test_case "eval between" `Quick test_eval_between;
    Alcotest.test_case "eval bool ops" `Quick test_eval_bool_ops;
    Alcotest.test_case "null semantics" `Quick test_null_semantics;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero_null;
    Alcotest.test_case "udf" `Quick test_udf;
    Alcotest.test_case "conjuncts" `Quick test_conjuncts;
    Alcotest.test_case "columns" `Quick test_columns;
    Alcotest.test_case "shapes" `Quick test_shapes;
    Alcotest.test_case "to_sql" `Quick test_to_sql;
    Alcotest.test_case "resolvable" `Quick test_resolvable;
    Alcotest.test_case "default selectivities" `Quick test_default_selectivities;
    Alcotest.test_case "histogram selectivity" `Quick test_histogram_selectivity;
    Alcotest.test_case "conjunction independence" `Quick test_conjunction_independence;
    Alcotest.test_case "udf selectivity" `Quick test_udf_selectivity;
    Alcotest.test_case "distinct of column" `Quick test_distinct_of_column;
    QCheck_alcotest.to_alcotest prop_selectivity_in_unit;
    QCheck_alcotest.to_alcotest prop_sql_roundtrip;
    QCheck_alcotest.to_alcotest prop_conjuncts_preserve_semantics ]
