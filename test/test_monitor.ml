(* The monitoring plane: system views over a live service (human and
   stable-JSON renderings), per-tenant SLO headroom / deadline-miss
   accounting, and the Prometheus text exposition. *)
module Engine = Mqr_core.Engine
module Service = Mqr_wlm.Service
module Session = Mqr_wlm.Session
module Monitor = Mqr_wlm.Monitor
module Trace = Mqr_obs.Trace
module Queries = Mqr_tpcd.Queries
module Tpcd = Mqr_tpcd.Workload

let sql n = (Queries.find n).Queries.sql

let engine () =
  let catalog = Tpcd.experiment_catalog ~sf:0.001 () in
  Engine.create ~budget_pages:128 ~pool_pages:512 catalog

let service ?trace eng =
  Service.create
    ~options:
      { Service.default_options with Service.max_concurrency = 2 }
    ?trace eng

let setup ?trace () =
  let eng = engine () in
  let svc = service ?trace eng in
  Service.add_tenant svc ~slo:Session.Batch "etl";
  Service.add_tenant ~target_ms:1500.0 svc ~slo:Session.Interactive "web";
  let e = Service.open_session svc ~tenant:"etl" in
  let w = Service.open_session svc ~tenant:"web" in
  ignore (Session.submit ~label:"q5" ~arrival_ms:0.0 e (sql "Q5"));
  ignore (Session.submit ~label:"q3" ~arrival_ms:5.0 w (sql "Q3"));
  (eng, svc, e, w)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in:\n%s" what needle hay

(* --- view name round-trip --- *)

let test_view_names () =
  Alcotest.(check int) "five views" 5 (List.length Monitor.view_names);
  List.iter
    (fun name ->
       match Monitor.view_of_string name with
       | None -> Alcotest.failf "view %s unknown" name
       | Some v ->
         Alcotest.(check string) "round-trip" name (Monitor.view_to_string v))
    Monitor.view_names;
  Alcotest.(check bool) "unknown view rejected" true
    (Monitor.view_of_string "bogus" = None)

(* --- mid-run views reflect live progress --- *)

let test_live_statements_view () =
  let eng, svc, _, _ = setup () in
  for _ = 1 to 4 do ignore (Service.step svc) done;
  let json = Monitor.to_json svc Monitor.Statements in
  check_contains "statements json" json "\"view\": \"statements\"";
  check_contains "statements json" json "\"label\": \"q5\"";
  check_contains "statements json" json "\"percent\":";
  check_contains "statements json" json "\"eta_hi_ms\":";
  let human = Monitor.render svc Monitor.Statements in
  check_contains "statements human" human "etl/q5";
  (* pure observation: rendering must not advance the clock *)
  let before = Service.now_ms svc in
  ignore (Monitor.render svc Monitor.Statements);
  ignore (Monitor.to_json svc Monitor.Tenants);
  ignore (Monitor.prometheus svc);
  Alcotest.(check (float 0.0)) "views never advance the virtual clock"
    before (Service.now_ms svc);
  Service.drain svc;
  let json = Monitor.to_json svc Monitor.Statements in
  check_contains "drained statements json" json "\"state\": \"done\"";
  check_contains "drained statements json" json "\"percent\": 100.000";
  Engine.shutdown eng

let test_sessions_and_broker_views () =
  let eng, svc, _, _ = setup () in
  Service.drain svc;
  let sessions = Monitor.to_json svc Monitor.Sessions in
  check_contains "sessions json" sessions "\"view\": \"sessions\"";
  check_contains "sessions json" sessions "\"tenant\": \"etl\"";
  check_contains "sessions json" sessions "\"done\": 1";
  let broker = Monitor.to_json svc Monitor.Broker_leases in
  check_contains "broker json" broker "\"budget_pages\":";
  check_contains "broker json" broker "\"leases\": []";
  Engine.shutdown eng

(* --- tenant SLO accounting (headroom, deadline misses) --- *)

let test_tenant_slo_accounting () =
  let eng, svc, _, _ = setup () in
  Service.drain svc;
  let rep = Service.report svc in
  let tn name =
    List.find (fun t -> t.Service.tns_tenant = name) rep.Service.tenants
  in
  let web = tn "web" and etl = tn "etl" in
  (* Q3 at sf 0.001 finishes well inside web's 1500 ms target *)
  Alcotest.(check int) "web misses" 0 web.Service.tns_deadline_miss;
  Alcotest.(check bool) "web headroom positive and finite" true
    (Float.is_finite web.Service.tns_min_headroom_ms
     && web.Service.tns_min_headroom_ms > 0.0);
  Alcotest.(check bool) "headroom bounded by target" true
    (web.Service.tns_min_headroom_ms <= web.Service.tns_target_ms);
  Alcotest.(check int) "etl misses" 0 etl.Service.tns_deadline_miss;
  let json = Monitor.to_json svc Monitor.Tenants in
  check_contains "tenants json" json "\"deadline_misses\": 0";
  check_contains "tenants json" json "\"min_headroom_ms\":";
  Engine.shutdown eng

let test_cancelled_statement_is_a_miss () =
  let eng, svc, _, w = setup () in
  let id = Session.submit ~label:"doomed" ~arrival_ms:0.0 w (sql "Q10") in
  ignore (Service.step svc);
  Alcotest.(check bool) "cancelled" true (Session.cancel w id);
  Service.drain svc;
  let rep = Service.report svc in
  let web =
    List.find (fun t -> t.Service.tns_tenant = "web") rep.Service.tenants
  in
  Alcotest.(check int)
    "a cancelled statement counts as a deadline miss" 1
    web.Service.tns_deadline_miss;
  Alcotest.(check int) "but not as an SLO violation" 0
    web.Service.tns_violations;
  Engine.shutdown eng

(* --- ledger view and Prometheus exposition need the trace --- *)

let test_ledger_and_prometheus () =
  let tr = Trace.create () in
  let eng, svc, _, _ = setup ~trace:tr () in
  Service.drain svc;
  let json = Monitor.to_json svc Monitor.Ledger in
  check_contains "ledger json" json "\"view\": \"ledger\"";
  check_contains "ledger json" json "\"kind\":";
  let prom = Monitor.prometheus svc in
  check_contains "prometheus" prom "# TYPE mqr_";
  check_contains "prometheus" prom "mqr_svc_web_slo_headroom_ms";
  check_contains "prometheus" prom "le=\"+Inf\"";
  (* deterministic: the same service state exports the same text *)
  Alcotest.(check string) "export is stable" prom (Monitor.prometheus svc);
  Engine.shutdown eng

let test_traceless_service () =
  let eng, svc, _, _ = setup () in
  Service.drain svc;
  Alcotest.(check string) "no trace, empty exposition" ""
    (Monitor.prometheus svc);
  let json = Monitor.to_json svc Monitor.Ledger in
  check_contains "traceless ledger json" json "\"ledger\": []";
  Engine.shutdown eng

let suite =
  [ Alcotest.test_case "view names round-trip" `Quick test_view_names;
    Alcotest.test_case "live statements view" `Quick
      test_live_statements_view;
    Alcotest.test_case "sessions and broker views" `Quick
      test_sessions_and_broker_views;
    Alcotest.test_case "tenant SLO accounting" `Quick
      test_tenant_slo_accounting;
    Alcotest.test_case "cancelled statement is a deadline miss" `Quick
      test_cancelled_statement_is_a_miss;
    Alcotest.test_case "ledger view and prometheus export" `Quick
      test_ledger_and_prometheus;
    Alcotest.test_case "traceless service degrades gracefully" `Quick
      test_traceless_service ]
