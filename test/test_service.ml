(* Query service: session lifecycle, SLO-aware scheduling, determinism,
   failure isolation, cancellation and teardown. *)
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Verifier = Mqr_analysis.Verifier
module Optimizer = Mqr_opt.Optimizer
module Service = Mqr_wlm.Service
module Session = Mqr_wlm.Session
module Broker = Mqr_wlm.Broker
module Queries = Mqr_tpcd.Queries
module Tpcd = Mqr_tpcd.Workload

let sql n = (Queries.find n).Queries.sql

let engine ?(parallel = 1) ?(verify = Verifier.Off) () =
  let catalog = Tpcd.experiment_catalog ~sf:0.001 () in
  Engine.create ~budget_pages:128 ~pool_pages:512 ~verify_plans:verify
    ~opt_options:{ Optimizer.default_options with Optimizer.max_dop = 2 }
    ~parallel catalog

let service ?(policy = Service.Slo_aware) ?(max_concurrency = 2) eng =
  Service.create
    ~options:
      { Service.default_options with Service.policy; max_concurrency }
    eng

(* The bench scenario in miniature: batch work arrives first, interactive
   statements must overtake it.  Returns the sessions in (etl, web)
   order; every statement is drained to a terminal status. *)
let mixed_workload svc =
  Service.add_tenant svc ~slo:Session.Batch "etl";
  Service.add_tenant svc ~slo:Session.Interactive "web";
  let e = Service.open_session svc ~tenant:"etl" in
  let w = Service.open_session svc ~tenant:"web" in
  ignore (Session.submit ~label:"q5" ~arrival_ms:0.0 e (sql "Q5"));
  ignore (Session.submit ~label:"q10" ~arrival_ms:0.0 e (sql "Q10"));
  ignore (Session.submit ~label:"q3" ~arrival_ms:5.0 w (sql "Q3"));
  ignore (Session.submit ~label:"q6" ~arrival_ms:10.0 w (sql "Q6"));
  Service.drain svc;
  (e, w)

let assert_all_done sess =
  List.iter
    (fun (s : Session.stmt) ->
       Alcotest.(check string) (s.Session.stmt_label ^ " done") "done"
         (Session.status_to_string s.Session.stmt_status))
    (Session.statements sess)

let stmt_rows (s : Session.stmt) =
  match s.Session.stmt_status with
  | Session.Done r -> r.Dispatcher.rows
  | _ -> Alcotest.failf "%s not done" s.Session.stmt_label

(* --- result identity --- *)

let test_rows_match_solo () =
  let eng = engine () in
  let svc = service eng in
  let e, w = mixed_workload svc in
  assert_all_done e;
  assert_all_done w;
  List.iter
    (fun (s : Session.stmt) ->
       let solo = Engine.run_sql (engine ()) s.Session.stmt_sql in
       Alcotest.(check bool)
         (s.Session.stmt_label ^ " rows bit-identical to solo run") true
         (stmt_rows s = solo.Dispatcher.rows))
    (Session.statements e @ Session.statements w);
  let r = Service.report svc in
  Alcotest.(check int) "no lease outlives its statement" 0
    r.Service.outstanding_leases;
  Engine.shutdown eng

(* --- determinism --- *)

let fingerprint svc sessions =
  let r = Service.report svc in
  ( r.Service.makespan_ms,
    List.concat_map
      (fun sess ->
         List.map
           (fun (s : Session.stmt) ->
              ( s.Session.stmt_label,
                Session.status_to_string s.Session.stmt_status,
                s.Session.stmt_admit_ms,
                s.Session.stmt_finish_ms,
                Reference.canonical (stmt_rows s) ))
           (Session.statements sess))
      sessions )

let test_deterministic () =
  let run () =
    let eng = engine () in
    let svc = service eng in
    let e, w = mixed_workload svc in
    let fp = fingerprint svc [ e; w ] in
    Engine.shutdown eng;
    fp
  in
  let m1, fp1 = run () in
  let m2, fp2 = run () in
  Alcotest.(check (float 0.0)) "same simulated makespan" m1 m2;
  List.iter2
    (fun (l1, st1, a1, f1, rows1) (l2, st2, a2, f2, rows2) ->
       Alcotest.(check string) "same label" l1 l2;
       Alcotest.(check string) (l1 ^ " same status") st1 st2;
       Alcotest.(check (float 0.0)) (l1 ^ " same admit") a1 a2;
       Alcotest.(check (float 0.0)) (l1 ^ " same finish") f1 f2;
       Alcotest.(check (list (list string))) (l1 ^ " same rows") rows1 rows2)
    fp1 fp2

let test_pool_invisible_to_simulation () =
  let run parallel =
    let eng = engine ~parallel () in
    let svc = service eng in
    let e, w = mixed_workload svc in
    let fp = fingerprint svc [ e; w ] in
    Engine.shutdown eng;
    fp
  in
  let m1, fp1 = run 1 in
  let m2, fp2 = run 2 in
  Alcotest.(check (float 0.0)) "pool size invisible to makespan" m1 m2;
  List.iter2
    (fun (l1, _, _, f1, rows1) (_, _, _, f2, rows2) ->
       Alcotest.(check (float 0.0)) (l1 ^ " same finish across pools") f1 f2;
       Alcotest.(check (list (list string)))
         (l1 ^ " same rows across pools") rows1 rows2)
    fp1 fp2

(* --- SLO-aware scheduling --- *)

let interactive_p99 svc =
  let r = Service.report svc in
  (List.assoc Session.Interactive r.Service.classes).Service.cs_p99_ms

let test_slo_aware_beats_round_robin () =
  let run policy =
    let eng = engine () in
    let svc = service ~policy ~max_concurrency:1 eng in
    let e, w = mixed_workload svc in
    assert_all_done e;
    assert_all_done w;
    let p99 = interactive_p99 svc in
    Engine.shutdown eng;
    p99
  in
  let rr = run Service.Round_robin in
  let slo = run Service.Slo_aware in
  Alcotest.(check bool)
    (Printf.sprintf
       "interactive p99 improves under EDF (rr %.1fms, slo-aware %.1fms)" rr
       slo)
    true (slo < rr)

(* --- session lifecycle --- *)

let test_lifecycle () =
  let eng = engine () in
  let svc = service ~max_concurrency:1 eng in
  Service.add_tenant svc ~slo:Session.Interactive "web";
  let s = Service.open_session svc ~tenant:"web" in
  let q5 = Session.submit ~label:"q5" s (sql "Q5") in
  Alcotest.(check string) "admitted eagerly into the free slot" "running"
    (Session.status_to_string (Session.poll s q5));
  let q6 = Session.submit ~label:"q6" s (sql "Q6") in
  Alcotest.(check string) "second waits for the slot" "queued"
    (Session.status_to_string (Session.poll s q6));
  ignore (Service.step svc);
  Alcotest.(check string) "still running after a step" "running"
    (Session.status_to_string (Session.poll s q5));
  Alcotest.(check bool) "cancel queued statement" true (Session.cancel s q6);
  Service.drain svc;
  Alcotest.(check string) "first completed" "done"
    (Session.status_to_string (Session.poll s q5));
  Alcotest.(check string) "second stayed cancelled" "cancelled"
    (Session.status_to_string (Session.poll s q6));
  Alcotest.(check bool) "result available once done" true
    (Session.result s q5 <> None);
  Alcotest.(check bool) "cancelling a finished statement is a no-op" false
    (Session.cancel s q5);
  Session.close s;
  Alcotest.(check bool) "closed" true (Session.closed s);
  Alcotest.check_raises "submit on a closed session"
    (Invalid_argument "Session.submit: session is closed") (fun () ->
      ignore (Session.submit s (sql "Q6")));
  Engine.shutdown eng

let test_cancel_running_releases_lease () =
  let eng = engine () in
  let svc = service ~max_concurrency:1 eng in
  Service.add_tenant svc ~slo:Session.Batch "etl";
  let s = Service.open_session svc ~tenant:"etl" in
  let q5 = Session.submit ~label:"q5" s (sql "Q5") in
  ignore (Service.step svc);
  ignore (Service.step svc);
  Alcotest.(check string) "running mid-flight" "running"
    (Session.status_to_string (Session.poll s q5));
  Alcotest.(check bool) "cancel running statement" true (Session.cancel s q5);
  Alcotest.(check string) "cancelled" "cancelled"
    (Session.status_to_string (Session.poll s q5));
  Alcotest.(check int) "lease released on cancel" 0
    (Broker.outstanding (Service.broker svc));
  Alcotest.(check int) "no transient pages left" 0
    (Service.tenant_pages_in_flight svc "etl");
  (* the slot is free again: the session keeps serving *)
  let q6 = Session.submit ~label:"q6" s (sql "Q6") in
  Service.drain svc;
  Alcotest.(check string) "later statement completes" "done"
    (Session.status_to_string (Session.poll s q6));
  Engine.shutdown eng

(* --- failure isolation --- *)

let test_failure_isolated () =
  let eng = engine () in
  let svc = service eng in
  Service.add_tenant svc ~slo:Session.Interactive "web";
  let s = Service.open_session svc ~tenant:"web" in
  let bad = Session.submit ~label:"bad" s "select nope from lineitem" in
  let good = Session.submit ~label:"good" s (sql "Q6") in
  Service.drain svc;
  (match Session.poll s bad with
   | Session.Failed _ -> ()
   | st ->
     Alcotest.failf "expected failed, got %s" (Session.status_to_string st));
  Alcotest.(check string) "good statement unaffected" "done"
    (Session.status_to_string (Session.poll s good));
  Alcotest.(check int) "failed statement released its lease" 0
    (Broker.outstanding (Service.broker svc));
  (* the session survives: submit again after the failure *)
  let again = Session.submit ~label:"again" s (sql "Q6") in
  Service.drain svc;
  Alcotest.(check string) "service keeps serving" "done"
    (Session.status_to_string (Session.poll s again));
  Engine.shutdown eng

(* --- sanitizer + teardown --- *)

let test_sanitize_clean () =
  let eng = engine ~verify:Verifier.Sanitize () in
  let svc = service eng in
  let e, w = mixed_workload svc in
  assert_all_done e;
  assert_all_done w;
  Alcotest.(check int) "TEN-LIFETIME: etl pages zero" 0
    (Service.tenant_pages_in_flight svc "etl");
  Alcotest.(check int) "TEN-LIFETIME: web pages zero" 0
    (Service.tenant_pages_in_flight svc "web");
  Engine.shutdown eng

let test_shutdown_idempotent () =
  let eng = engine ~parallel:2 () in
  let svc = service eng in
  let e, w = mixed_workload svc in
  assert_all_done e;
  assert_all_done w;
  Engine.shutdown eng;
  (* every error path of a long-lived host may call shutdown again *)
  Engine.shutdown eng;
  Engine.shutdown eng

let suite =
  [ Alcotest.test_case "rows match solo execution" `Quick
      test_rows_match_solo;
    Alcotest.test_case "service deterministic" `Quick test_deterministic;
    Alcotest.test_case "pool invisible to simulation" `Quick
      test_pool_invisible_to_simulation;
    Alcotest.test_case "slo-aware beats round-robin" `Quick
      test_slo_aware_beats_round_robin;
    Alcotest.test_case "session lifecycle" `Quick test_lifecycle;
    Alcotest.test_case "cancel running releases lease" `Quick
      test_cancel_running_releases_lease;
    Alcotest.test_case "failure isolated" `Quick test_failure_isolated;
    Alcotest.test_case "sanitizer clean under service" `Quick
      test_sanitize_clean;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent ]
