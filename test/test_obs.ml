(* Observability subsystem: metrics registry, span nesting, audit ledger
   consistency with the dispatcher's event log, and the zero-overhead
   guarantee (tracing never moves the simulated clock). *)
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Wl = Mqr_wlm.Workload
module Queries = Mqr_tpcd.Queries
module Tpcd = Mqr_tpcd.Workload
module Trace = Mqr_obs.Trace
module Metrics = Mqr_obs.Metrics

let engine ?trace () =
  let catalog = Tpcd.experiment_catalog ~sf:0.001 () in
  Engine.create ~budget_pages:64 ~pool_pages:512 ?trace catalog

let sql name = (Queries.find name).Queries.sql

(* --- metrics registry --- *)

let test_metrics_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m ~by:4 "a";
  Metrics.incr m "b";
  Metrics.set_gauge m "g" 0.25;
  Metrics.set_gauge m "g" 0.5;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter m "a");
  Alcotest.(check int) "unknown counter is 0" 0 (Metrics.counter m "zzz");
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("a", 5); ("b", 1) ]
    (Metrics.counters m);
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauge keeps latest value"
    [ ("g", 0.5) ]
    (Metrics.gauges m)

let test_metrics_log_histogram () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "ms") [ 1.0; 2.0; 4.0; 1024.0 ];
  match Metrics.histograms m with
  | [ ("ms", s) ] ->
    Alcotest.(check int) "n" 4 s.Metrics.n;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 1024.0 s.Metrics.max;
    Alcotest.(check (float 1e-9)) "sum" 1031.0 s.Metrics.sum;
    Alcotest.(check int) "all samples binned" 4
      (List.fold_left (fun acc (_, _, c) -> acc + c) 0 s.Metrics.buckets);
    (* log-scale: boundaries stay positive (and may collapse to a
       singleton — histogram buckets are inclusive on both ends) *)
    List.iter
      (fun (lo, hi, c) ->
         if c > 0 then
           Alcotest.(check bool) "bucket is a positive interval" true
             (0.0 < lo && lo <= hi))
      s.Metrics.buckets
  | hs ->
    Alcotest.failf "expected exactly one histogram series, got %d"
      (List.length hs)

(* --- span stack discipline --- *)

let test_span_stack_discipline () =
  let tr = Trace.create () in
  let s = Trace.scope tr ~label:"q" () in
  let outer = Trace.open_span s ~name:"outer" ~ts_ms:0.0 () in
  let inner = Trace.open_span s ~name:"inner" ~ts_ms:1.0 () in
  Alcotest.check_raises "closing out of order is malformed nesting"
    (Invalid_argument "Trace.close_span: span closed out of order")
    (fun () -> Trace.close_span s ~ts_ms:2.0 outer);
  Trace.close_span s ~ts_ms:2.0 inner;
  Trace.close_span s ~ts_ms:3.0 outer;
  Alcotest.(check int) "no spans left open" 0 (Trace.open_spans tr);
  match Trace.spans tr with
  | [ i; o ] ->
    (* completion order: inner closes first *)
    Alcotest.(check string) "inner first" "inner" i.Trace.sp_name;
    Alcotest.(check int) "inner depth" 1 i.Trace.sp_depth;
    Alcotest.(check string) "outer second" "outer" o.Trace.sp_name;
    Alcotest.(check int) "outer depth" 0 o.Trace.sp_depth
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* Two spans on the same lane must be disjoint or properly nested —
   partial overlap means the trace forest is malformed. *)
let assert_well_formed tr =
  Alcotest.(check int) "no orphan (unclosed) spans" 0 (Trace.open_spans tr);
  let spans = Trace.spans tr in
  List.iter
    (fun (a : Trace.span) ->
       Alcotest.(check bool) "span interval is ordered" true
         (a.Trace.sp_begin_ms <= a.Trace.sp_end_ms))
    spans;
  List.iter
    (fun (a : Trace.span) ->
       List.iter
         (fun (b : Trace.span) ->
            if a != b && a.Trace.sp_tid = b.Trace.sp_tid then begin
              let disjoint =
                a.Trace.sp_end_ms <= b.Trace.sp_begin_ms
                || b.Trace.sp_end_ms <= a.Trace.sp_begin_ms
              in
              let a_inside_b =
                b.Trace.sp_begin_ms <= a.Trace.sp_begin_ms
                && a.Trace.sp_end_ms <= b.Trace.sp_end_ms
              in
              let b_inside_a =
                a.Trace.sp_begin_ms <= b.Trace.sp_begin_ms
                && b.Trace.sp_end_ms <= a.Trace.sp_end_ms
              in
              Alcotest.(check bool) "spans disjoint or nested" true
                (disjoint || a_inside_b || b_inside_a)
            end)
         spans)
    spans

let test_single_query_spans () =
  let tr = Trace.create () in
  let e = engine ~trace:tr () in
  let r = Engine.run_sql e (sql "Q3") in
  assert_well_formed tr;
  Alcotest.(check int) "one trace lane" 1 (List.length (Trace.queries tr));
  let spans = Trace.spans tr in
  Alcotest.(check bool) "at least one span per operator" true
    (List.length spans >= List.length r.Dispatcher.actual_rows);
  let cats =
    List.sort_uniq compare (List.map (fun s -> s.Trace.sp_cat) spans)
  in
  List.iter
    (fun c ->
       Alcotest.(check bool) (c ^ " spans present") true (List.mem c cats))
    [ "query"; "unit"; "operator" ];
  (* exactly one query-depth span and it covers the whole run *)
  match List.filter (fun s -> s.Trace.sp_cat = "query") spans with
  | [ q ] ->
    Alcotest.(check (float 1e-9)) "query span starts at 0" 0.0
      q.Trace.sp_begin_ms;
    Alcotest.(check (float 1e-6)) "query span ends at elapsed"
      r.Dispatcher.elapsed_ms q.Trace.sp_end_ms
  | qs -> Alcotest.failf "expected 1 query span, got %d" (List.length qs)

let test_workload_spans_well_formed () =
  let tr = Trace.create () in
  let e = engine () in
  let specs =
    List.map (fun n -> Wl.spec ~label:n (sql n)) [ "Q3"; "Q10"; "Q5" ]
  in
  let options = { Wl.default_options with Wl.max_concurrency = 2 } in
  let r = Wl.run ~options ~trace:tr e specs in
  Alcotest.(check int) "all queries completed" 3 (List.length r.Wl.results);
  assert_well_formed tr;
  Alcotest.(check int) "one lane per query" 3 (List.length (Trace.queries tr));
  Alcotest.(check (list string)) "lanes keep the spec labels"
    [ "Q3"; "Q10"; "Q5" ]
    (List.map snd (Trace.queries tr));
  (* each query's span timestamps are anchored at its admission time *)
  List.iter
    (fun (qr : Wl.query_result) ->
       let tid =
         fst (List.nth (Trace.queries tr) qr.Wl.index)
       in
       let begins =
         List.filter_map
           (fun (s : Trace.span) ->
              if s.Trace.sp_tid = tid then Some s.Trace.sp_begin_ms else None)
           (Trace.spans tr)
       in
       List.iter
         (fun b ->
            Alcotest.(check bool) "span begins after admission" true
              (b >= qr.Wl.admit_ms -. 1e-9))
         begins)
    r.Wl.results;
  (* queue waits landed in the wlm histogram *)
  let m = Trace.metrics tr in
  match List.assoc_opt "wlm.queue_ms" (Metrics.histograms m) with
  | Some s -> Alcotest.(check int) "one queue sample per query" 3 s.Metrics.n
  | None -> Alcotest.fail "wlm.queue_ms histogram missing"

(* --- audit ledger vs the dispatcher event log --- *)

let test_ledger_matches_events () =
  let tr = Trace.create () in
  let e = engine ~trace:tr () in
  let r = Engine.run_sql e (sql "Q7") in
  let count f = List.length (List.filter f r.Dispatcher.events) in
  let ledger = Trace.ledger tr in
  let lcount f = List.length (List.filter f ledger) in
  Alcotest.(check int) "one Considered entry per Ev_considered"
    (count (function Dispatcher.Ev_considered _ -> true | _ -> false))
    (lcount (fun d ->
       match d.Trace.d_kind with Trace.Considered _ -> true | _ -> false));
  Alcotest.(check int) "one Switched entry per Ev_switched"
    (count (function Dispatcher.Ev_switched _ -> true | _ -> false))
    (lcount (fun d ->
       match d.Trace.d_kind with Trace.Switched _ -> true | _ -> false));
  Alcotest.(check int) "one Rejected entry per Ev_rejected"
    (count (function Dispatcher.Ev_rejected _ -> true | _ -> false))
    (lcount (fun d ->
       match d.Trace.d_kind with Trace.Rejected _ -> true | _ -> false));
  Alcotest.(check int) "one Realloc entry per Ev_realloc"
    (count (function Dispatcher.Ev_realloc _ -> true | _ -> false))
    (lcount (fun d ->
       match d.Trace.d_kind with Trace.Realloc _ -> true | _ -> false));
  (* the Eq. 1/Eq. 2 terms in the ledger are the ones from the events,
     in order *)
  let considered_events =
    List.filter_map
      (function
        | Dispatcher.Ev_considered { t_improved; t_optimizer; t_opt_estimated; _ } ->
          Some (t_improved, t_optimizer, t_opt_estimated)
        | _ -> None)
      r.Dispatcher.events
  in
  let considered_ledger =
    List.filter_map
      (fun d ->
         match d.Trace.d_kind with
         | Trace.Considered { t_improved; t_optimizer; t_opt_estimated; _ } ->
           Some (t_improved, t_optimizer, t_opt_estimated)
         | _ -> None)
      ledger
  in
  Alcotest.(check (list (triple (float 1e-9) (float 1e-9) (float 1e-9))))
    "ledger carries the exact Eq. 1/Eq. 2 terms" considered_events
    considered_ledger;
  (* every entry records estimated-vs-observed cardinalities coherently *)
  List.iter
    (fun d ->
       Alcotest.(check bool) "decision point ordinal positive" true
         (d.Trace.d_seq >= 1);
       Alcotest.(check bool) "observed rows non-negative" true
         (d.Trace.d_actual_rows >= 0);
       Alcotest.(check (float 1e-6)) "estimation error is actual/est"
         (float_of_int d.Trace.d_actual_rows
          /. Float.max 1e-9 d.Trace.d_est_rows)
         d.Trace.d_error)
    ledger

(* --- timestamped events --- *)

let test_timed_events () =
  let e = engine () in
  let r = Engine.run_sql e (sql "Q5") in
  Alcotest.(check int) "timed_events mirrors events"
    (List.length r.Dispatcher.events)
    (List.length r.Dispatcher.timed_events);
  List.iter2
    (fun ev (_, tev) ->
       Alcotest.(check bool) "same event in the same position" true
         (ev == tev))
    r.Dispatcher.events r.Dispatcher.timed_events;
  let rec monotone = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
      Alcotest.(check bool) "timestamps non-decreasing" true (t1 <= t2);
      monotone rest
    | _ -> ()
  in
  monotone r.Dispatcher.timed_events;
  List.iter
    (fun (t, _) ->
       Alcotest.(check bool) "timestamps within the run" true
         (0.0 <= t && t <= r.Dispatcher.elapsed_ms))
    r.Dispatcher.timed_events

(* --- zero overhead: tracing never touches the simulated clock --- *)

let test_tracing_zero_overhead () =
  let catalog = Tpcd.experiment_catalog ~sf:0.001 () in
  let plain = Engine.create ~budget_pages:64 ~pool_pages:512 catalog in
  let tr = Trace.create () in
  let traced =
    Engine.create ~budget_pages:64 ~pool_pages:512 ~trace:tr catalog
  in
  List.iter
    (fun q ->
       let off = Engine.run_sql plain (sql q) in
       let on = Engine.run_sql traced (sql q) in
       Alcotest.(check (float 0.0))
         (q ^ ": elapsed identical") off.Dispatcher.elapsed_ms
         on.Dispatcher.elapsed_ms;
       Alcotest.(check bool) (q ^ ": rows identical") true
         (off.Dispatcher.rows = on.Dispatcher.rows))
    [ "Q3"; "Q7" ];
  Alcotest.(check bool) "the traced runs actually recorded spans" true
    (Trace.spans tr <> [])

(* --- exporters --- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- bounded series memory + quantiles + Prometheus export --- *)

let test_metrics_bounded_reservoir () =
  let m = Metrics.create () in
  for i = 1 to 100_000 do
    Metrics.observe m "ms" (float_of_int i)
  done;
  match Metrics.histograms m with
  | [ ("ms", s) ] ->
    (* exact streaming stats survive reservoir replacement... *)
    Alcotest.(check int) "n is the exact stream count" 100_000 s.Metrics.n;
    Alcotest.(check (float 1e-9)) "min exact" 1.0 s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max exact" 100_000.0 s.Metrics.max;
    Alcotest.(check (float 1e-3)) "sum exact" 5_000_050_000.0 s.Metrics.sum;
    (* ...while the buckets come from a bounded sample *)
    let binned =
      List.fold_left (fun acc (_, _, c) -> acc + c) 0 s.Metrics.buckets
    in
    Alcotest.(check bool) "buckets bounded by the reservoir" true
      (binned <= 512);
    List.iter
      (fun (what, q) ->
         Alcotest.(check bool) (what ^ " within observed range") true
           (s.Metrics.min <= q && q <= s.Metrics.max))
      [ ("p50", s.Metrics.p50); ("p95", s.Metrics.p95);
        ("p99", s.Metrics.p99) ];
    Alcotest.(check bool) "quantiles ordered" true
      (s.Metrics.p50 <= s.Metrics.p95 && s.Metrics.p95 <= s.Metrics.p99)
  | hs -> Alcotest.failf "expected one series, got %d" (List.length hs)

let test_metrics_quantiles_exact_when_small () =
  let m = Metrics.create () in
  (* fewer samples than the reservoir capacity: nearest-rank is exact *)
  List.iter (Metrics.observe m "lat") [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  match Metrics.histograms m with
  | [ ("lat", s) ] ->
    Alcotest.(check (float 1e-9)) "p50 nearest-rank" 3.0 s.Metrics.p50;
    Alcotest.(check (float 1e-9)) "p95 nearest-rank" 5.0 s.Metrics.p95;
    Alcotest.(check (float 1e-9)) "p99 nearest-rank" 5.0 s.Metrics.p99
  | _ -> Alcotest.fail "expected one series"

let test_metrics_deterministic_reservoir () =
  let fill () =
    let m = Metrics.create () in
    for i = 1 to 10_000 do
      Metrics.observe m "ms" (float_of_int (i * 7 mod 997))
    done;
    m
  in
  (* name-seeded rng: two registries fed identically agree exactly *)
  Alcotest.(check string) "exports byte-identical"
    (Metrics.to_prometheus (fill ()))
    (Metrics.to_prometheus (fill ()))

let test_prometheus_exposition () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "reopt.switches";
  Metrics.set_gauge m "svc.web.slo_headroom_ms" 1502.5;
  List.iter (Metrics.observe m "unit ms") [ 1.0; 2.0; 4.0; 8.0 ];
  let text = Metrics.to_prometheus m in
  List.iter
    (fun frag ->
       Alcotest.(check bool) ("exposition contains " ^ frag) true
         (contains text frag))
    [ "# TYPE mqr_reopt_switches counter"; "mqr_reopt_switches 3";
      "# TYPE mqr_svc_web_slo_headroom_ms gauge";
      "mqr_svc_web_slo_headroom_ms 1502.5";
      "# TYPE mqr_unit_ms histogram"; "mqr_unit_ms_bucket{le=\"+Inf\"} 4";
      "mqr_unit_ms_sum 15"; "mqr_unit_ms_count 4" ];
  (* families sorted by mangled name *)
  let type_lines =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
      if String.length l > 7 && String.sub l 0 7 = "# TYPE " then
        Some (List.nth (String.split_on_char ' ' l) 2)
      else None)
  in
  Alcotest.(check (list string)) "families sorted"
    (List.sort String.compare type_lines) type_lines

let test_chrome_export_shape () =
  let tr = Trace.create () in
  let e = engine ~trace:tr () in
  ignore (Engine.run_sql e (sql "Q3"));
  let json = Trace.to_chrome_json tr in
  Alcotest.(check bool) "top-level object" true (json.[0] = '{');
  List.iter
    (fun frag ->
       Alcotest.(check bool) ("contains " ^ frag) true (contains json frag))
    [ "\"traceEvents\""; "\"ph\": \"X\""; "\"ph\": \"M\"";
      "\"thread_name\""; "\"displayTimeUnit\""; "\"pid\": 1" ];
  let summary = Trace.to_summary_json tr in
  List.iter
    (fun frag ->
       Alcotest.(check bool) ("summary contains " ^ frag) true
         (contains summary frag))
    [ "\"queries\""; "\"spans\""; "\"metrics\""; "\"ledger\"";
      "\"open_spans\": 0" ]

(* --- explain-analyze renders one uniform stat block per verify mode --- *)

let test_explain_analyze_uniform () =
  let catalog = Tpcd.experiment_catalog ~sf:0.001 () in
  let off = Engine.create ~budget_pages:64 ~pool_pages:512 catalog in
  let sane =
    Engine.create ~budget_pages:64 ~pool_pages:512
      ~verify_plans:Mqr_analysis.Verifier.Sanitize catalog
  in
  let render e =
    Fmt.str "%a" Dispatcher.pp_explain_analyze (Engine.run_sql e (sql "Q3"))
  in
  let strip_verification text =
    String.split_on_char '\n' text
    |> List.filter (fun l ->
      not (String.length l >= 12 && String.sub l 0 12 = "verification"))
    |> String.concat "\n"
  in
  let t_off = render off and t_sane = render sane in
  (* both modes always render the full stat block... *)
  List.iter
    (fun frag ->
       List.iter
         (fun (name, text) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s block present under %s" frag name)
              true (contains text frag))
         [ ("off", t_off); ("sanitize", t_sane) ])
    [ "collectors:"; "runtime filters:"; "buffer pool:"; "verification:" ];
  (* ...and everything except the verification count is identical *)
  Alcotest.(check string) "identical columns across verify modes"
    (strip_verification t_off) (strip_verification t_sane)

let suite =
  [ Alcotest.test_case "metrics counters and gauges" `Quick
      test_metrics_counters_and_gauges;
    Alcotest.test_case "metrics log-scale histogram" `Quick
      test_metrics_log_histogram;
    Alcotest.test_case "metrics reservoir bounded" `Quick
      test_metrics_bounded_reservoir;
    Alcotest.test_case "metrics quantiles exact when small" `Quick
      test_metrics_quantiles_exact_when_small;
    Alcotest.test_case "metrics reservoir deterministic" `Quick
      test_metrics_deterministic_reservoir;
    Alcotest.test_case "prometheus exposition shape" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "span stack discipline" `Quick
      test_span_stack_discipline;
    Alcotest.test_case "single query spans" `Quick test_single_query_spans;
    Alcotest.test_case "workload spans well-formed" `Quick
      test_workload_spans_well_formed;
    Alcotest.test_case "ledger matches events" `Quick
      test_ledger_matches_events;
    Alcotest.test_case "timed events stamped and monotone" `Quick
      test_timed_events;
    Alcotest.test_case "tracing has zero simulated overhead" `Quick
      test_tracing_zero_overhead;
    Alcotest.test_case "chrome and summary export shape" `Quick
      test_chrome_export_shape;
    Alcotest.test_case "explain analyze uniform across verify modes" `Quick
      test_explain_analyze_uniform ]
