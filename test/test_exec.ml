open Mqr_storage
module Exec_ctx = Mqr_exec.Exec_ctx
module Scan = Mqr_exec.Scan
module Rows_ops = Mqr_exec.Rows_ops
module Join = Mqr_exec.Join
module Sort = Mqr_exec.Sort
module Aggregate = Mqr_exec.Aggregate
module Collector = Mqr_exec.Collector
module Expr = Mqr_expr.Expr
module Histogram = Mqr_stats.Histogram

let ctx () = Exec_ctx.create ~pool_pages:256 ()

let schema_ab q =
  Schema.make
    [ Schema.col ~qualifier:q "a" Value.TInt;
      Schema.col ~qualifier:q "b" Value.TInt ]

let rows_of l = Array.of_list (List.map (fun (a, b) -> [| Value.Int a; Value.Int b |]) l)

let sorted_pairs rows =
  Array.to_list rows
  |> List.map (fun t -> Array.to_list (Array.map Value.to_string t))
  |> List.sort compare

(* --- scans --- *)

let test_seq_scan () =
  let c = ctx () in
  let heap = Heap_file.create (schema_ab "t") in
  for i = 0 to 99 do
    Heap_file.append heap [| Value.Int i; Value.Int (i * 2) |]
  done;
  let rows = Scan.seq_scan c heap in
  Alcotest.(check int) "all rows" 100 (Array.length rows);
  Alcotest.(check bool) "charged io" true
    ((Sim_clock.counters c.Exec_ctx.clock).Sim_clock.seq_reads > 0)

let test_index_scan () =
  let c = ctx () in
  let heap = Heap_file.create (schema_ab "t") in
  let bt = Btree.create () in
  for i = 0 to 999 do
    Heap_file.append heap [| Value.Int i; Value.Int i |];
    Btree.insert bt (Value.Int i) i
  done;
  let rows = Scan.index_scan c heap bt ~lo:(Value.Int 10, true) ~hi:(Value.Int 19, true) () in
  Alcotest.(check int) "range size" 10 (Array.length rows)

(* --- filter/project/limit --- *)

let test_filter () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 100 (fun i -> (i, i))) in
  let out = Rows_ops.filter c schema Expr.(col "a" <% int 10) rows in
  Alcotest.(check int) "filtered" 10 (Array.length out)

let test_project () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of [ (1, 2); (3, 4) ] in
  let out, out_schema = Rows_ops.project c schema [ "t.b" ] rows in
  Alcotest.(check int) "arity" 1 (Schema.arity out_schema);
  Alcotest.(check bool) "values" true (Value.equal out.(0).(0) (Value.Int 2))

let test_limit () =
  let c = ctx () in
  let rows = rows_of (List.init 100 (fun i -> (i, i))) in
  Alcotest.(check int) "limited" 7 (Array.length (Rows_ops.limit c 7 rows));
  Alcotest.(check int) "under limit" 100 (Array.length (Rows_ops.limit c 200 rows))

(* --- hash join vs reference nested loop --- *)

let reference_join left right ~li ~ri =
  List.concat_map
    (fun lt ->
       List.filter_map
         (fun rt ->
            if Value.equal lt.(li) rt.(ri) then Some (Tuple.concat lt rt)
            else None)
         (Array.to_list right))
    (Array.to_list left)

let test_hash_join_matches_reference () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of (List.init 50 (fun i -> (i mod 7, i))) in
  let right = rows_of (List.init 30 (fun i -> (i mod 5, i * 10))) in
  let r =
    Join.hash_join c ~mem_pages:64 ~build:(right, rs) ~probe:(left, ls)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  let expect = reference_join left right ~li:0 ~ri:0 in
  Alcotest.(check int) "row count" (List.length expect) (Array.length r.Join.rows);
  Alcotest.(check (list (list string))) "rows match"
    (sorted_pairs (Array.of_list expect))
    (sorted_pairs r.Join.rows)

let test_hash_join_one_pass_in_memory () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of [ (1, 1) ] and right = rows_of [ (1, 2) ] in
  let r =
    Join.hash_join c ~mem_pages:64 ~build:(right, rs) ~probe:(left, ls)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  Alcotest.(check int) "1 pass" 1 r.Join.passes;
  Alcotest.(check int) "no spill writes" 0
    (Sim_clock.counters c.Exec_ctx.clock).Sim_clock.writes

let test_hash_join_spills_when_tight () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let big = rows_of (List.init 5000 (fun i -> (i, i))) in
  let r =
    Join.hash_join c ~mem_pages:2 ~build:(big, rs) ~probe:(big, ls)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  Alcotest.(check bool) "multi-pass" true (r.Join.passes > 1);
  Alcotest.(check bool) "spill writes charged" true
    ((Sim_clock.counters c.Exec_ctx.clock).Sim_clock.writes > 0);
  Alcotest.(check int) "results still exact" 5000 (Array.length r.Join.rows)

let test_hash_join_null_keys_dont_match () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = [| [| Value.Null; Value.Int 1 |] |] in
  let right = [| [| Value.Null; Value.Int 2 |] |] in
  let r =
    Join.hash_join c ~mem_pages:8 ~build:(right, rs) ~probe:(left, ls)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  Alcotest.(check int) "nulls never join" 0 (Array.length r.Join.rows)

let test_hash_join_residual () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of [ (1, 5); (1, 15) ] in
  let right = rows_of [ (1, 0) ] in
  let r =
    Join.hash_join c ~mem_pages:8 ~build:(right, rs) ~probe:(left, ls)
      ~keys:[ ("l.a", "r.a") ] ~extra:Expr.(col "l.b" <% int 10) ()
  in
  Alcotest.(check int) "residual filters" 1 (Array.length r.Join.rows)

let test_index_nl_join_matches_reference () =
  let c = ctx () in
  let ls = schema_ab "l" in
  let inner_schema = schema_ab "r" in
  let heap = Heap_file.create inner_schema in
  let bt = Btree.create () in
  for i = 0 to 29 do
    Heap_file.append heap [| Value.Int (i mod 5); Value.Int (i * 10) |];
    Btree.insert bt (Value.Int (i mod 5)) i
  done;
  let outer = rows_of (List.init 50 (fun i -> (i mod 7, i))) in
  let r =
    Join.index_nl_join c ~outer:(outer, ls) ~inner_heap:heap ~inner_schema
      ~inner_index:bt ~outer_col:"l.a" ()
  in
  let inner_rows = Array.init 30 (fun i -> Heap_file.get heap i) in
  let expect = reference_join outer inner_rows ~li:0 ~ri:0 in
  Alcotest.(check int) "row count" (List.length expect) (Array.length r.Join.rows);
  Alcotest.(check bool) "random reads charged" true
    ((Sim_clock.counters c.Exec_ctx.clock).Sim_clock.rand_reads > 0)

let test_block_nl_join_cross () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of [ (1, 1); (2, 2) ] in
  let right = rows_of [ (10, 10); (20, 20); (30, 30) ] in
  let r = Join.block_nl_join c ~mem_pages:8 ~outer:(left, ls) ~inner:(right, rs) () in
  Alcotest.(check int) "cross product" 6 (Array.length r.Join.rows)

let test_block_nl_join_pred () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of (List.init 10 (fun i -> (i, i))) in
  let right = rows_of (List.init 10 (fun i -> (i, i))) in
  let r =
    Join.block_nl_join c ~mem_pages:8 ~outer:(left, ls) ~inner:(right, rs)
      ~pred:Expr.(col "l.a" <% col "r.a") ()
  in
  Alcotest.(check int) "strictly less pairs" 45 (Array.length r.Join.rows)

(* --- merge join --- *)

module Merge_join = Mqr_exec.Merge_join

let test_merge_join_matches_reference () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of (List.init 50 (fun i -> (i mod 7, i))) in
  let right = rows_of (List.init 30 (fun i -> (i mod 5, i * 10))) in
  let r =
    Merge_join.merge_join c ~mem_pages:64 ~left:(left, ls) ~right:(right, rs)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  let expect = reference_join left right ~li:0 ~ri:0 in
  Alcotest.(check int) "row count" (List.length expect)
    (Array.length r.Merge_join.rows);
  Alcotest.(check (list (list string))) "rows match"
    (sorted_pairs (Array.of_list expect))
    (sorted_pairs r.Merge_join.rows)

let test_merge_join_duplicates_both_sides () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of [ (1, 0); (1, 1); (2, 2) ] in
  let right = rows_of [ (1, 10); (1, 11); (1, 12); (3, 13) ] in
  let r =
    Merge_join.merge_join c ~mem_pages:16 ~left:(left, ls) ~right:(right, rs)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  Alcotest.(check int) "2x3 pairs" 6 (Array.length r.Merge_join.rows)

let test_merge_join_nulls () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = [| [| Value.Null; Value.Int 1 |]; [| Value.Int 1; Value.Int 2 |] |] in
  let right = [| [| Value.Null; Value.Int 3 |]; [| Value.Int 1; Value.Int 4 |] |] in
  let r =
    Merge_join.merge_join c ~mem_pages:16 ~left:(left, ls) ~right:(right, rs)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  Alcotest.(check int) "null keys skipped" 1 (Array.length r.Merge_join.rows)

let test_merge_join_residual () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let left = rows_of [ (1, 5); (1, 15) ] in
  let right = rows_of [ (1, 0) ] in
  let r =
    Merge_join.merge_join c ~mem_pages:16 ~left:(left, ls) ~right:(right, rs)
      ~keys:[ ("l.a", "r.a") ] ~extra:Expr.(col "l.b" <% int 10) ()
  in
  Alcotest.(check int) "residual filters" 1 (Array.length r.Merge_join.rows)

let test_merge_join_external_charges () =
  let c = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let big = rows_of (List.init 4000 (fun i -> (i, i))) in
  let r =
    Merge_join.merge_join c ~mem_pages:4 ~left:(big, ls) ~right:(big, rs)
      ~keys:[ ("l.a", "r.a") ] ()
  in
  Alcotest.(check bool) "left external" true (r.Merge_join.left_passes > 1);
  Alcotest.(check bool) "spill charged" true
    ((Sim_clock.counters c.Exec_ctx.clock).Sim_clock.writes > 0);
  Alcotest.(check int) "exact rows" 4000 (Array.length r.Merge_join.rows)

let prop_merge_join_equals_hash_join =
  QCheck.Test.make ~name:"merge join = hash join" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 0 50) (int_range 0 6))
              (list_of_size (Gen.int_range 0 50) (int_range 0 6)))
    (fun (lks, rks) ->
       let c = ctx () in
       let ls = schema_ab "l" and rs = schema_ab "r" in
       let left = rows_of (List.mapi (fun i k -> (k, i)) lks) in
       let right = rows_of (List.mapi (fun i k -> (k, i + 500)) rks) in
       let m =
         Merge_join.merge_join c ~mem_pages:8 ~left:(left, ls)
           ~right:(right, rs) ~keys:[ ("l.a", "r.a") ] ()
       in
       let h =
         Join.hash_join c ~mem_pages:8 ~build:(right, rs) ~probe:(left, ls)
           ~keys:[ ("l.a", "r.a") ] ()
       in
       sorted_pairs m.Merge_join.rows = sorted_pairs h.Join.rows)

(* --- sort --- *)

let test_sort_orders () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of [ (3, 1); (1, 2); (2, 3) ] in
  let r = Sort.sort c ~mem_pages:16 schema ~keys:[ ("t.a", true) ] rows in
  let keys = Array.to_list (Array.map (fun t -> Value.to_string t.(0)) r.Sort.rows) in
  Alcotest.(check (list string)) "ascending" [ "1"; "2"; "3" ] keys

let test_sort_desc_and_secondary () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of [ (1, 5); (2, 1); (1, 9); (2, 3) ] in
  let r =
    Sort.sort c ~mem_pages:16 schema ~keys:[ ("t.a", false); ("t.b", true) ] rows
  in
  let pairs =
    Array.to_list
      (Array.map (fun t -> (Value.to_string t.(0), Value.to_string t.(1))) r.Sort.rows)
  in
  Alcotest.(check (list (pair string string))) "desc then asc"
    [ ("2", "1"); ("2", "3"); ("1", "5"); ("1", "9") ]
    pairs

let test_sort_passes () =
  Alcotest.(check int) "fits" 1 (Sort.sort_passes ~mem_pages:10 ~data_pages:5);
  Alcotest.(check int) "one merge" 2 (Sort.sort_passes ~mem_pages:10 ~data_pages:50);
  Alcotest.(check bool) "deep merge" true
    (Sort.sort_passes ~mem_pages:3 ~data_pages:100 > 2)

let test_external_sort_charges () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 5000 (fun i -> (5000 - i, i))) in
  let r = Sort.sort c ~mem_pages:2 schema ~keys:[ ("t.a", true) ] rows in
  Alcotest.(check bool) "multi-pass" true (r.Sort.passes > 1);
  Alcotest.(check bool) "spill charged" true
    ((Sim_clock.counters c.Exec_ctx.clock).Sim_clock.writes > 0);
  (* still exactly sorted *)
  let ok = ref true in
  for i = 0 to Array.length r.Sort.rows - 2 do
    if Value.compare r.Sort.rows.(i).(0) r.Sort.rows.(i + 1).(0) > 0 then ok := false
  done;
  Alcotest.(check bool) "sorted" true !ok

(* --- aggregate --- *)

let test_aggregate_group_sums () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 100 (fun i -> (i mod 4, i))) in
  let aggs =
    [ { Aggregate.fn = Aggregate.Sum; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "s" };
      { Aggregate.fn = Aggregate.Count; distinct_arg = false; arg = None; out_name = "n" } ]
  in
  let r = Aggregate.hash_aggregate c ~mem_pages:16 schema ~group_by:[ "t.a" ] ~aggs rows in
  Alcotest.(check int) "4 groups" 4 (Array.length r.Aggregate.rows);
  Array.iter
    (fun t ->
       let n = match t.(2) with Value.Int n -> n | _ -> -1 in
       Alcotest.(check int) "25 per group" 25 n)
    r.Aggregate.rows

let test_aggregate_global_empty () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let aggs = [ { Aggregate.fn = Aggregate.Count; distinct_arg = false; arg = None; out_name = "n" } ] in
  let r = Aggregate.hash_aggregate c ~mem_pages:16 schema ~group_by:[] ~aggs [||] in
  Alcotest.(check int) "one row" 1 (Array.length r.Aggregate.rows);
  Alcotest.(check bool) "count 0" true
    (Value.equal r.Aggregate.rows.(0).(0) (Value.Int 0))

let test_aggregate_avg_min_max () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of [ (0, 10); (0, 20); (0, 30) ] in
  let aggs =
    [ { Aggregate.fn = Aggregate.Avg; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "avg" };
      { Aggregate.fn = Aggregate.Min; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "min" };
      { Aggregate.fn = Aggregate.Max; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "max" } ]
  in
  let r = Aggregate.hash_aggregate c ~mem_pages:16 schema ~group_by:[] ~aggs rows in
  let t = r.Aggregate.rows.(0) in
  Alcotest.(check bool) "avg" true (Value.equal t.(0) (Value.Float 20.0));
  Alcotest.(check bool) "min" true (Value.equal t.(1) (Value.Int 10));
  Alcotest.(check bool) "max" true (Value.equal t.(2) (Value.Int 30))

let test_aggregate_nulls_skipped () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = [| [| Value.Int 0; Value.Null |]; [| Value.Int 0; Value.Int 4 |] |] in
  let aggs =
    [ { Aggregate.fn = Aggregate.Count; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "n" };
      { Aggregate.fn = Aggregate.Sum; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "s" } ]
  in
  let r = Aggregate.hash_aggregate c ~mem_pages:16 schema ~group_by:[ "t.a" ] ~aggs rows in
  let t = r.Aggregate.rows.(0) in
  Alcotest.(check bool) "count non-null" true (Value.equal t.(1) (Value.Int 1));
  Alcotest.(check bool) "sum skips null" true (Value.equal t.(2) (Value.Int 4))

let test_sorted_aggregate_matches_hash () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 100 (fun i -> (i / 25, i))) in  (* grouped *)
  let aggs =
    [ { Aggregate.fn = Aggregate.Sum; distinct_arg = false; arg = Some (Expr.col "t.b"); out_name = "s" };
      { Aggregate.fn = Aggregate.Count; distinct_arg = false; arg = None; out_name = "n" } ]
  in
  let h = Aggregate.hash_aggregate c ~mem_pages:16 schema ~group_by:[ "t.a" ] ~aggs rows in
  let s = Aggregate.sorted_aggregate c schema ~group_by:[ "t.a" ] ~aggs rows in
  Alcotest.(check (list (list string))) "same groups"
    (sorted_pairs h.Aggregate.rows)
    (sorted_pairs s.Aggregate.rows)

let test_sorted_aggregate_global_empty () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let aggs = [ { Aggregate.fn = Aggregate.Count; distinct_arg = false; arg = None; out_name = "n" } ] in
  let r = Aggregate.sorted_aggregate c schema ~group_by:[] ~aggs [||] in
  Alcotest.(check int) "one row" 1 (Array.length r.Aggregate.rows)

let test_merge_join_presorted_skips_sort_cost () =
  let c1 = ctx () and c2 = ctx () in
  let ls = schema_ab "l" and rs = schema_ab "r" in
  let rows = rows_of (List.init 3000 (fun i -> (i, i))) in  (* already sorted *)
  let run c ~flags =
    ignore
      (Merge_join.merge_join c ~mem_pages:3
         ?left_sorted:(Some (fst flags)) ?right_sorted:(Some (snd flags))
         ~left:(rows, ls) ~right:(rows, rs) ~keys:[ ("l.a", "r.a") ] ())
  in
  run c1 ~flags:(false, false);
  run c2 ~flags:(true, true);
  let cost c = Sim_clock.elapsed_ms c.Exec_ctx.clock in
  Alcotest.(check bool) "presorted cheaper" true (cost c2 < cost c1)

(* --- collector --- *)

let test_collector_counters () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 500 (fun i -> (i mod 20, i))) in
  let obs = Collector.collect c schema (Collector.spec ()) rows in
  Alcotest.(check int) "rows" 500 obs.Collector.rows;
  match List.assoc_opt "t.a" obs.Collector.col_ranges with
  | Some (lo, hi) ->
    Alcotest.(check bool) "min" true (Value.equal lo (Value.Int 0));
    Alcotest.(check bool) "max" true (Value.equal hi (Value.Int 19))
  | None -> Alcotest.fail "no range"

let test_collector_histogram () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 2000 (fun i -> (i mod 10, i))) in
  let spec = Collector.spec ~hist_cols:[ "t.a" ] () in
  let obs = Collector.collect c schema spec rows in
  match List.assoc_opt "t.a" obs.Collector.histograms with
  | Some h ->
    Alcotest.(check (float 20.0)) "scaled to stream" 2000.0 (Histogram.total_rows h);
    let s = Histogram.est_eq h 3.0 in
    Alcotest.(check bool) (Printf.sprintf "eq sel %.3f ~ 0.1" s) true
      (Float.abs (s -. 0.1) < 0.05)
  | None -> Alcotest.fail "no histogram"

let test_collector_distinct () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 1000 (fun i -> (i mod 37, i))) in
  let spec = Collector.spec ~distinct_cols:[ "t.a" ] () in
  let obs = Collector.collect c schema spec rows in
  match List.assoc_opt "t.a" obs.Collector.distincts with
  | Some d -> Alcotest.(check bool) "37" true (Float.abs (d -. 37.0) < 2.0)
  | None -> Alcotest.fail "no distinct"

let test_collector_cost_budgeting () =
  let base = Collector.estimated_cost_ms (Collector.spec ()) ~rows:1000.0 in
  let loaded =
    Collector.estimated_cost_ms
      (Collector.spec ~hist_cols:[ "a" ] ~distinct_cols:[ "b" ] ())
      ~rows:1000.0
  in
  Alcotest.(check bool) "stats cost more" true (loaded > base);
  Alcotest.(check (float 1e-9)) "formula"
    (1000.0 *. (Collector.base_tuple_ms +. (2.0 *. Collector.stat_tuple_ms)))
    loaded

let test_collector_to_column_stats () =
  let c = ctx () in
  let schema = schema_ab "t" in
  let rows = rows_of (List.init 100 (fun i -> (i, i))) in
  let spec = Collector.spec ~hist_cols:[ "t.a" ] ~distinct_cols:[ "t.a" ] () in
  let obs = Collector.collect c schema spec rows in
  let st = Collector.column_stats_of_observed obs ~column:"t.a" in
  Alcotest.(check bool) "has histogram" true
    (st.Mqr_catalog.Column_stats.histogram <> None);
  Alcotest.(check bool) "has distinct" true
    (st.Mqr_catalog.Column_stats.distinct <> None)

let prop_hash_join_equals_nested_loop =
  QCheck.Test.make ~name:"hash join = nested loop" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 0 60) (int_range 0 8))
              (list_of_size (Gen.int_range 0 60) (int_range 0 8)))
    (fun (lks, rks) ->
       let c = ctx () in
       let ls = schema_ab "l" and rs = schema_ab "r" in
       let left = rows_of (List.mapi (fun i k -> (k, i)) lks) in
       let right = rows_of (List.mapi (fun i k -> (k, i + 1000)) rks) in
       let r =
         Join.hash_join c ~mem_pages:4 ~build:(right, rs) ~probe:(left, ls)
           ~keys:[ ("l.a", "r.a") ] ()
       in
       let expect = reference_join left right ~li:0 ~ri:0 in
       sorted_pairs r.Join.rows = sorted_pairs (Array.of_list expect))

let suite =
  [ Alcotest.test_case "seq scan" `Quick test_seq_scan;
    Alcotest.test_case "index scan" `Quick test_index_scan;
    Alcotest.test_case "filter" `Quick test_filter;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "limit" `Quick test_limit;
    Alcotest.test_case "hash join = reference" `Quick test_hash_join_matches_reference;
    Alcotest.test_case "hash join 1 pass" `Quick test_hash_join_one_pass_in_memory;
    Alcotest.test_case "hash join spills" `Quick test_hash_join_spills_when_tight;
    Alcotest.test_case "hash join null keys" `Quick test_hash_join_null_keys_dont_match;
    Alcotest.test_case "hash join residual" `Quick test_hash_join_residual;
    Alcotest.test_case "index nl join = reference" `Quick test_index_nl_join_matches_reference;
    Alcotest.test_case "block nl cross" `Quick test_block_nl_join_cross;
    Alcotest.test_case "block nl pred" `Quick test_block_nl_join_pred;
    Alcotest.test_case "merge join = reference" `Quick test_merge_join_matches_reference;
    Alcotest.test_case "merge join duplicates" `Quick test_merge_join_duplicates_both_sides;
    Alcotest.test_case "merge join nulls" `Quick test_merge_join_nulls;
    Alcotest.test_case "merge join residual" `Quick test_merge_join_residual;
    Alcotest.test_case "merge join external" `Quick test_merge_join_external_charges;
    QCheck_alcotest.to_alcotest prop_merge_join_equals_hash_join;
    Alcotest.test_case "sort orders" `Quick test_sort_orders;
    Alcotest.test_case "sort desc+secondary" `Quick test_sort_desc_and_secondary;
    Alcotest.test_case "sort passes" `Quick test_sort_passes;
    Alcotest.test_case "external sort charges" `Quick test_external_sort_charges;
    Alcotest.test_case "aggregate group sums" `Quick test_aggregate_group_sums;
    Alcotest.test_case "aggregate global empty" `Quick test_aggregate_global_empty;
    Alcotest.test_case "aggregate avg/min/max" `Quick test_aggregate_avg_min_max;
    Alcotest.test_case "aggregate nulls" `Quick test_aggregate_nulls_skipped;
    Alcotest.test_case "sorted agg = hash agg" `Quick test_sorted_aggregate_matches_hash;
    Alcotest.test_case "sorted agg empty" `Quick test_sorted_aggregate_global_empty;
    Alcotest.test_case "presorted merge join cheaper" `Quick test_merge_join_presorted_skips_sort_cost;
    Alcotest.test_case "collector counters" `Quick test_collector_counters;
    Alcotest.test_case "collector histogram" `Quick test_collector_histogram;
    Alcotest.test_case "collector distinct" `Quick test_collector_distinct;
    Alcotest.test_case "collector cost" `Quick test_collector_cost_budgeting;
    Alcotest.test_case "collector to column stats" `Quick test_collector_to_column_stats;
    QCheck_alcotest.to_alcotest prop_hash_join_equals_nested_loop ]
