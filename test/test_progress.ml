(* Progress/ETA estimation: the per-statement estimator must be pure
   observation (attached runs bit-identical to unattached, at every pool
   size), monotone (percent and eta_lo never decrease, eta_hi >= eta_lo)
   and land at exactly 100% on completion — across every benchmark
   query, every reopt mode, plan switches and cancellation. *)
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Queries = Mqr_tpcd.Queries
module Tpcd = Mqr_tpcd.Workload
module Progress = Mqr_obs.Progress

(* max_dop pinned so the optimizer picks the same plan degrees at every
   pool size: simulated time then depends only on the plan, and pools
   1/4 must agree bit-for-bit *)
let engine ?(parallel = 1) () =
  let catalog = Tpcd.experiment_catalog ~sf:0.001 () in
  Engine.create ~budget_pages:64 ~pool_pages:512 ~parallel
    ~opt_options:
      { Mqr_opt.Optimizer.default_options with Mqr_opt.Optimizer.max_dop = 2 }
    catalog

let sql name = (Queries.find name).Queries.sql

let all_modes =
  [ Dispatcher.Off; Dispatcher.Memory_only; Dispatcher.Plan_only;
    Dispatcher.Full; Dispatcher.Bound_checked ]

(* --- estimator unit behaviour --- *)

let sample_percent (s : Progress.sample) = s.Progress.percent

let test_percent_clamped_monotone () =
  let p = Progress.create () in
  let u ~now ~est =
    Progress.update p ~label:Progress.Decision ~now_ms:now
      ~remaining_est_ms:est ~remaining_lo_ms:est ~remaining_hi_ms:est
  in
  let s1 = u ~now:50.0 ~est:50.0 in
  Alcotest.(check (float 1e-9)) "50/100 = 50%" 50.0 (sample_percent s1);
  (* a plan switch can raise the remainder estimate: raw percent would
     regress to 25%, the clamp must hold the line *)
  let s2 = u ~now:50.0 ~est:150.0 in
  Alcotest.(check (float 1e-9)) "clamped at previous" 50.0 (sample_percent s2);
  let s3 = u ~now:150.0 ~est:50.0 in
  Alcotest.(check (float 1e-9)) "resumes once truth catches up" 75.0
    (sample_percent s3);
  Alcotest.(check bool) "stream monotone" true (Progress.monotone p)

let test_eta_bounds () =
  let p = Progress.create () in
  let u ~now ~lo ~hi =
    Progress.update p ~label:Progress.Decision ~now_ms:now
      ~remaining_est_ms:((lo +. hi) /. 2.0) ~remaining_lo_ms:lo
      ~remaining_hi_ms:hi
  in
  let s1 = u ~now:10.0 ~lo:90.0 ~hi:190.0 in
  Alcotest.(check (float 1e-9)) "eta_lo = now + rem_lo" 100.0
    s1.Progress.eta_lo_ms;
  Alcotest.(check (float 1e-9)) "eta_hi = now + rem_hi" 200.0
    s1.Progress.eta_hi_ms;
  (* a looser lower bound later may not drag eta_lo backwards... *)
  let s2 = u ~now:20.0 ~lo:10.0 ~hi:500.0 in
  Alcotest.(check (float 1e-9)) "eta_lo monotone" 100.0 s2.Progress.eta_lo_ms;
  (* ...but eta_hi may legitimately rise (plan switch raised the
     provable worst case) *)
  Alcotest.(check (float 1e-9)) "eta_hi may rise" 520.0 s2.Progress.eta_hi_ms;
  let s3 = u ~now:30.0 ~lo:300.0 ~hi:100.0 in
  Alcotest.(check bool) "inverted input interval is repaired" true
    (s3.Progress.eta_hi_ms >= s3.Progress.eta_lo_ms);
  Alcotest.(check bool) "stream monotone" true (Progress.monotone p)

let test_finish_idempotent () =
  let p = Progress.create () in
  ignore
    (Progress.update p ~label:Progress.Start ~now_ms:0.0
       ~remaining_est_ms:100.0 ~remaining_lo_ms:80.0 ~remaining_hi_ms:120.0);
  let f1 = Progress.finish p ~now_ms:90.0 in
  Alcotest.(check (float 1e-9)) "finish is 100%" 100.0 f1.Progress.percent;
  Alcotest.(check (float 1e-9)) "eta collapses lo" f1.Progress.eta_lo_ms
    f1.Progress.eta_hi_ms;
  Alcotest.(check bool) "finished" true (Progress.finished p);
  let n = List.length (Progress.samples p) in
  let f2 = Progress.finish p ~now_ms:95.0 in
  Alcotest.(check int) "idempotent: no new sample"
    n (List.length (Progress.samples p));
  Alcotest.(check (float 1e-9)) "idempotent: same sample" f1.Progress.ts_ms
    f2.Progress.ts_ms

(* --- the full matrix: every query x every mode x pools 1/4 --- *)

let check_stream name (p : Progress.t) =
  Alcotest.(check bool) (name ^ ": monotone") true (Progress.monotone p);
  Alcotest.(check bool) (name ^ ": finished") true (Progress.finished p);
  match Progress.latest p with
  | None -> Alcotest.failf "%s: no progress samples" name
  | Some last ->
    Alcotest.(check (float 1e-9)) (name ^ ": final percent") 100.0
      last.Progress.percent;
    Alcotest.(check bool) (name ^ ": final label is finish") true
      (last.Progress.label = Progress.Finish)

let test_matrix () =
  let base = engine () in
  let p1 = engine () in
  let p4 = engine ~parallel:4 () in
  let switch_seen = ref false in
  List.iter
    (fun mode ->
       List.iter
         (fun (q : Queries.query) ->
            let name =
              Printf.sprintf "%s/%s" q.Queries.name
                (Dispatcher.mode_to_string mode)
            in
            let off = Engine.run_sql base ~mode q.Queries.sql in
            List.iter
              (fun (pool, eng) ->
                 let name = Printf.sprintf "%s/pool=%d" name pool in
                 let p = Progress.create () in
                 let on = Engine.run_sql eng ~mode ~progress:p q.Queries.sql in
                 Alcotest.(check (float 0.0)) (name ^ ": elapsed identical")
                   off.Dispatcher.elapsed_ms on.Dispatcher.elapsed_ms;
                 Alcotest.(check bool) (name ^ ": rows identical") true
                   (off.Dispatcher.rows = on.Dispatcher.rows);
                 check_stream name p;
                 if
                   List.exists
                     (fun (s : Progress.sample) ->
                        s.Progress.label = Progress.Switch)
                     (Progress.samples p)
                 then switch_seen := true)
              [ (1, p1); (4, p4) ])
         Queries.all)
    all_modes;
  Alcotest.(check bool)
    "at least one stream crossed a plan switch" true !switch_seen;
  Engine.shutdown base;
  Engine.shutdown p1;
  Engine.shutdown p4

(* --- cancellation: an aborted run's stream stays monotone and open --- *)

let test_cancellation () =
  let eng = engine () in
  let p = Progress.create () in
  let cfg = Engine.dispatcher_config eng ~mode:Dispatcher.Full ~progress:p () in
  let r = Dispatcher.start cfg (Engine.bind_sql eng (sql "Q5")) in
  (match Dispatcher.step r with
   | Some _ -> Alcotest.fail "Q5 finished in one unit"
   | None -> ());
  (match Dispatcher.step r with Some _ | None -> ());
  Dispatcher.abort r;
  Alcotest.(check bool) "run aborted" true (Dispatcher.aborted r);
  Alcotest.(check bool) "stream monotone after abort" true
    (Progress.monotone p);
  Alcotest.(check bool) "a cancelled statement never reaches 100%" false
    (Progress.finished p);
  Alcotest.(check bool) "estimator saw the run start" true
    (Progress.samples p <> []);
  (match Progress.latest p with
   | Some last ->
     Alcotest.(check bool) "percent stays below 100" true
       (last.Progress.percent < 100.0)
   | None -> Alcotest.fail "no samples");
  Engine.shutdown eng

let suite =
  [ Alcotest.test_case "percent clamped monotone" `Quick
      test_percent_clamped_monotone;
    Alcotest.test_case "eta bounds" `Quick test_eta_bounds;
    Alcotest.test_case "finish idempotent" `Quick test_finish_idempotent;
    Alcotest.test_case "all queries x modes x pools 1/4" `Quick test_matrix;
    Alcotest.test_case "cancellation keeps stream honest" `Quick
      test_cancellation ]
