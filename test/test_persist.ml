(* CSV codec, catalog persistence round-trips, DDL/COPY/ANALYZE statements. *)
open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Column_stats = Mqr_catalog.Column_stats
module Persist = Mqr_catalog.Persist
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Histogram = Mqr_stats.Histogram

(* --- CSV --- *)

let test_csv_roundtrip_line () =
  List.iter
    (fun fields ->
       Alcotest.(check (list string)) "roundtrip" fields
         (Csv.decode_line (Csv.encode_line fields)))
    [ [ "a"; "b"; "c" ];
      [ "has,comma"; "has\"quote"; "has\nnewline" ];
      [ ""; ""; "" ];
      [ "plain" ];
      [ "\"quoted at start"; "trailing\"" ] ]

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "mqr_csv" ".csv" in
  let records =
    [ [ "1"; "hello, world"; "x" ]; [ "2"; "line\nbreak"; "\"q\"" ]; [ "3"; ""; "z" ] ]
  in
  Csv.write_file path records;
  let back = Csv.read_file path in
  Sys.remove path;
  Alcotest.(check (list (list string))) "file roundtrip" records back

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"csv line roundtrip" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 6) (string_gen_of_size (Gen.int_range 0 20) Gen.printable))
    (fun fields ->
       (* \r is normalized away by the decoder, as in RFC 4180 line ends *)
       let fields = List.map (String.map (fun c -> if c = '\r' then ' ' else c)) fields in
       Csv.decode_line (Csv.encode_line fields) = fields)

let test_csv_empty_file () =
  let path = Filename.temp_file "mqr_csv" ".csv" in
  Csv.write_file path [];
  Alcotest.(check (list (list string))) "empty" [] (Csv.read_file path);
  Sys.remove path

let test_csv_unterminated_quote () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Csv.decode_line "\"abc");
       false
     with Failure _ -> true)

(* --- persistence --- *)

let sample_catalog () =
  let catalog = Catalog.create () in
  let schema =
    Schema.make
      [ Schema.col "id" Value.TInt;
        Schema.col ~width:12 "tag" Value.TString;
        Schema.col "score" Value.TFloat;
        Schema.col "day" Value.TDate ]
  in
  let heap = Heap_file.create schema in
  for i = 0 to 99 do
    Heap_file.append heap
      [| Value.Int i;
         (if i mod 10 = 0 then Value.Null else Value.String (Printf.sprintf "t%d" (i mod 3)));
         Value.Float (float_of_int i /. 7.0);
         Value.Date (9000 + i) |]
  done;
  ignore (Catalog.add_table catalog "things" heap);
  Catalog.analyze_table ~keys:[ "id" ] catalog "things";
  ignore (Catalog.create_index catalog ~table:"things" ~column:"id");
  (* include degradations so they round-trip too *)
  Catalog.degrade_scale_cardinality catalog ~table:"things" 0.5;
  Catalog.degrade_mark_stale catalog ~table:"things" ~column:"score";
  catalog

let temp_dir () =
  let d = Filename.temp_file "mqr_db" "" in
  Sys.remove d;
  d

let test_persist_roundtrip_data () =
  let catalog = sample_catalog () in
  let dir = temp_dir () in
  Persist.save catalog ~dir;
  let back = Persist.load ~dir in
  let tbl0 = Catalog.find_exn catalog "things" in
  let tbl1 = Catalog.find_exn back "things" in
  Alcotest.(check int) "rows" (Heap_file.tuple_count tbl0.Catalog.heap)
    (Heap_file.tuple_count tbl1.Catalog.heap);
  Alcotest.(check int) "believed rows preserved" tbl0.Catalog.believed_rows
    tbl1.Catalog.believed_rows;
  for rid = 0 to Heap_file.tuple_count tbl0.Catalog.heap - 1 do
    if not (Tuple.equal (Heap_file.get tbl0.Catalog.heap rid)
              (Heap_file.get tbl1.Catalog.heap rid))
    then Alcotest.failf "tuple %d differs" rid
  done

let test_persist_roundtrip_stats () =
  let catalog = sample_catalog () in
  let dir = temp_dir () in
  Persist.save catalog ~dir;
  let back = Persist.load ~dir in
  let tbl0 = Catalog.find_exn catalog "things" in
  let tbl1 = Catalog.find_exn back "things" in
  let st0 = Option.get (Catalog.column_stats tbl0 "score") in
  let st1 = Option.get (Catalog.column_stats tbl1 "score") in
  Alcotest.(check bool) "stale preserved" st0.Column_stats.stale
    st1.Column_stats.stale;
  Alcotest.(check bool) "key flag" true
    (Option.get (Catalog.column_stats tbl1 "id")).Column_stats.is_key;
  (match st0.Column_stats.histogram, st1.Column_stats.histogram with
   | Some h0, Some h1 ->
     Alcotest.(check (float 0.01)) "hist rows" (Histogram.total_rows h0)
       (Histogram.total_rows h1);
     Alcotest.(check bool) "kind" true (Histogram.kind h0 = Histogram.kind h1);
     Alcotest.(check (float 1e-6)) "range estimate equal"
       (Histogram.est_range h0 ~lo:(Some (2.0, true)) ~hi:(Some (8.0, true)))
       (Histogram.est_range h1 ~lo:(Some (2.0, true)) ~hi:(Some (8.0, true)))
   | _ -> Alcotest.fail "histogram lost");
  (* string dictionary survives *)
  let tag0 = Option.get (Catalog.column_stats tbl0 "tag") in
  let tag1 = Option.get (Catalog.column_stats tbl1 "tag") in
  Alcotest.(check bool) "dict" true
    (tag0.Column_stats.dict = tag1.Column_stats.dict)

let test_persist_roundtrip_queries () =
  let catalog = sample_catalog () in
  let dir = temp_dir () in
  Persist.save catalog ~dir;
  let back = Persist.load ~dir in
  let sql = "select tag, count(*) as n from things where id < 50 group by tag" in
  let r0 = Engine.run_sql (Engine.create catalog) sql in
  let r1 = Engine.run_sql (Engine.create back) sql in
  Alcotest.(check (list (list string))) "same result"
    (Reference.canonical r0.Dispatcher.rows)
    (Reference.canonical r1.Dispatcher.rows);
  (* indexes were rebuilt *)
  let tbl1 = Catalog.find_exn back "things" in
  Alcotest.(check bool) "index present" true
    (Catalog.find_index tbl1 ~column:"id" <> None)

let test_persist_corrupt () =
  let dir = temp_dir () in
  Sys.mkdir dir 0o755;
  Csv.write_file (Filename.concat dir "tables.csv") [ [ "ghost" ] ];
  Alcotest.(check bool) "missing table files" true
    (try
       ignore (Persist.load ~dir);
       false
     with Persist.Corrupt _ | Sys_error _ -> true)

(* --- DDL / COPY / ANALYZE statements --- *)

let test_create_table_and_insert () =
  let engine = Engine.create (Catalog.create ()) in
  (match Engine.execute engine
           "create table pets (name string(20), age int, seen date)" with
   | Engine.Created "pets" -> ()
   | _ -> Alcotest.fail "create table");
  (match Engine.execute engine
           "insert into pets values ('rex', 3, date '2020-05-01')" with
   | Engine.Modified { count = 1; _ } -> ()
   | _ -> Alcotest.fail "insert into created table");
  let r = Engine.run_sql engine "select name from pets where age = 3" in
  Alcotest.(check int) "one pet" 1 (Array.length r.Dispatcher.rows)

let test_create_index_statement () =
  let engine = Engine.create (Catalog.create ()) in
  ignore (Engine.execute engine "create table nums (k int, v int)");
  ignore (Engine.execute engine "insert into nums values (1, 10), (2, 20)");
  (match Engine.execute engine "create index on nums (k)" with
   | Engine.Created "nums.k" -> ()
   | _ -> Alcotest.fail "create index");
  let catalog = Engine.catalog engine in
  let tbl = Catalog.find_exn catalog "nums" in
  Alcotest.(check bool) "index exists" true
    (Catalog.find_index tbl ~column:"k" <> None)

let test_copy_statement () =
  let engine = Engine.create (Catalog.create ()) in
  ignore (Engine.execute engine "create table pts (x int, y float, lbl string)");
  let path = Filename.temp_file "mqr_copy" ".csv" in
  Csv.write_file path
    [ [ "1"; "2.5"; "alpha" ]; [ "2"; "3.5"; "beta, with comma" ]; [ "3"; ""; "" ] ];
  (match Engine.execute engine (Printf.sprintf "copy pts from '%s'" path) with
   | Engine.Modified { count = 3; _ } -> ()
   | _ -> Alcotest.fail "copy count");
  Sys.remove path;
  let r = Engine.run_sql engine "select x from pts where y > 3.0" in
  Alcotest.(check int) "filtered" 1 (Array.length r.Dispatcher.rows);
  (* empty float field became NULL and never matches *)
  let r2 = Engine.run_sql engine "select x from pts" in
  Alcotest.(check int) "all rows" 3 (Array.length r2.Dispatcher.rows)

let test_analyze_statement () =
  let engine = Engine.create (Catalog.create ()) in
  ignore (Engine.execute engine "create table zz (a int)");
  ignore (Engine.execute engine "insert into zz values (1), (2), (3)");
  (match Engine.execute engine "analyze zz" with
   | Engine.Analyzed "zz" -> ()
   | _ -> Alcotest.fail "analyze");
  let tbl = Catalog.find_exn (Engine.catalog engine) "zz" in
  Alcotest.(check int) "believed rows updated" 3 tbl.Catalog.believed_rows

let test_copy_bad_field () =
  let engine = Engine.create (Catalog.create ()) in
  ignore (Engine.execute engine "create table q (a int)");
  let path = Filename.temp_file "mqr_copy" ".csv" in
  Csv.write_file path [ [ "not-an-int" ] ];
  Alcotest.(check bool) "rejects bad field" true
    (try
       ignore (Engine.execute engine (Printf.sprintf "copy q from '%s'" path));
       false
     with Engine.Dml_error _ -> true);
  Sys.remove path

let suite =
  [ Alcotest.test_case "csv line roundtrip" `Quick test_csv_roundtrip_line;
    Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
    Alcotest.test_case "csv empty file" `Quick test_csv_empty_file;
    Alcotest.test_case "csv unterminated quote" `Quick test_csv_unterminated_quote;
    Alcotest.test_case "persist data" `Quick test_persist_roundtrip_data;
    Alcotest.test_case "persist stats" `Quick test_persist_roundtrip_stats;
    Alcotest.test_case "persist queries" `Quick test_persist_roundtrip_queries;
    Alcotest.test_case "persist corrupt" `Quick test_persist_corrupt;
    Alcotest.test_case "create table" `Quick test_create_table_and_insert;
    Alcotest.test_case "create index" `Quick test_create_index_statement;
    Alcotest.test_case "copy" `Quick test_copy_statement;
    Alcotest.test_case "analyze statement" `Quick test_analyze_statement;
    Alcotest.test_case "copy bad field" `Quick test_copy_bad_field ]
