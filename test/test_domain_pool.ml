(* The domain pool under the parallel operators: deterministic batch
   order, exception containment, idempotent shutdown, nested batches. *)
module Domain_pool = Mqr_exec.Domain_pool

let with_pool size f =
  let pool = Domain_pool.create ~size () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () -> f pool)

let test_results_in_submission_order () =
  with_pool 3 (fun pool ->
      let results =
        Domain_pool.run_all pool
          (Array.init 64 (fun i () ->
               (* uneven work so completion order differs from input order *)
               let n = ref 0 in
               for _ = 1 to (i mod 7) * 10_000 do incr n done;
               i * i))
      in
      Alcotest.(check (array int)) "input order"
        (Array.init 64 (fun i -> i * i))
        results)

let test_exception_rethrown_lowest_index () =
  with_pool 3 (fun pool ->
      (match
         Domain_pool.run_all pool
           [| (fun () -> 1);
              (fun () -> failwith "task-1");
              (fun () -> failwith "task-2");
              (fun () -> 4) |]
       with
       | _ -> Alcotest.fail "batch should raise"
       | exception Failure m ->
         Alcotest.(check string) "lowest-indexed exception" "task-1" m);
      (* a throwing batch must not leak its siblings *)
      Alcotest.(check int) "no pending tasks" 0 (Domain_pool.pending pool);
      (* and the pool keeps working afterwards *)
      let again = Domain_pool.run_all pool [| (fun () -> 7); (fun () -> 8) |] in
      Alcotest.(check (array int)) "pool survives" [| 7; 8 |] again)

let test_shutdown_idempotent_then_inline () =
  let pool = Domain_pool.create ~size:4 () in
  Alcotest.(check bool) "not shut down" false (Domain_pool.is_shutdown pool);
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  Alcotest.(check bool) "shut down" true (Domain_pool.is_shutdown pool);
  (* batches after shutdown still run (inline) with the same semantics *)
  let r = Domain_pool.run_all pool (Array.init 5 (fun i () -> i + 1)) in
  Alcotest.(check (array int)) "inline after shutdown" [| 1; 2; 3; 4; 5 |] r

let test_size_one_runs_inline () =
  with_pool 1 (fun pool ->
      Alcotest.(check int) "size" 1 (Domain_pool.size pool);
      let d0 = (Domain.self () :> int) in
      let r =
        Domain_pool.run_all pool [| (fun () -> (Domain.self () :> int)) |]
      in
      Alcotest.(check (array int)) "ran on the caller" [| d0 |] r)

let test_nested_batches_run_inline () =
  with_pool 3 (fun pool ->
      let r =
        Domain_pool.run_all pool
          (Array.init 4 (fun i () ->
               (* a worker submitting a batch must not deadlock: nested
                  batches run inline on the worker *)
               let inner =
                 Domain_pool.run_all pool
                   (Array.init 3 (fun j () -> (i * 10) + j))
               in
               Array.fold_left ( + ) 0 inner))
      in
      Alcotest.(check (array int)) "nested sums"
        [| 3; 33; 63; 93 |] r;
      Alcotest.(check int) "drained" 0 (Domain_pool.pending pool))

let suite =
  [ Alcotest.test_case "results in submission order" `Quick
      test_results_in_submission_order;
    Alcotest.test_case "exception rethrown, no leaks" `Quick
      test_exception_rethrown_lowest_index;
    Alcotest.test_case "shutdown idempotent, then inline" `Quick
      test_shutdown_idempotent_then_inline;
    Alcotest.test_case "size one runs inline" `Quick test_size_one_runs_inline;
    Alcotest.test_case "nested batches run inline" `Quick
      test_nested_batches_run_inline ]
