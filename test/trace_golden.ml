(* Golden-file driver: run one benchmark query on a seeded sf=0.001
   catalog with the trace collector attached and print an export on
   stdout.  The simulated clock is deterministic, so the output is
   byte-stable and `dune promote` maintains the goldens.

     trace_golden chrome Q3    -- Chrome trace-event JSON
     trace_golden summary Q7   -- compact summary (spans, metrics, ledger) *)

module Engine = Mqr_core.Engine
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload
module Trace = Mqr_obs.Trace

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: trace_golden chrome|summary <query>";
    exit 2
  end;
  let what = Sys.argv.(1) and name = Sys.argv.(2) in
  let tr = Trace.create () in
  let catalog = Workload.experiment_catalog ~sf:0.001 () in
  let engine = Engine.create ~budget_pages:64 ~pool_pages:512 ~trace:tr catalog in
  let sql = (Queries.find name).Queries.sql in
  ignore (Engine.run_query engine ~label:name (Engine.bind_sql engine sql));
  match what with
  | "chrome" -> print_string (Trace.to_chrome_json tr)
  | "summary" -> print_string (Trace.to_summary_json tr)
  | _ ->
    prerr_endline "usage: trace_golden chrome|summary <query>";
    exit 2
