(* Rng, Zipf, Reservoir, Distinct. *)
module Rng = Mqr_stats.Rng
module Zipf = Mqr_stats.Zipf
module Reservoir = Mqr_stats.Reservoir
module Distinct = Mqr_stats.Distinct
module Value = Mqr_storage.Value

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_unit () =
  let rng = Rng.create 2 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_zipf_probs_sum () =
  let z = Zipf.create ~n:50 ~z:0.6 in
  let total = List.fold_left ( +. ) 0.0 (List.init 50 (fun i -> Zipf.prob z (i + 1))) in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total

let test_zipf_monotone () =
  let z = Zipf.create ~n:100 ~z:0.6 in
  for i = 1 to 99 do
    if Zipf.prob z i < Zipf.prob z (i + 1) -. 1e-12 then
      Alcotest.failf "prob not monotone at %d" i
  done

let test_zipf_uniform_when_zero () =
  let z = Zipf.create ~n:10 ~z:0.0 in
  for i = 1 to 10 do
    Alcotest.(check (float 1e-9)) "uniform" 0.1 (Zipf.prob z i)
  done

let test_zipf_sampling_skew () =
  let z = Zipf.create ~n:100 ~z:1.0 in
  let rng = Rng.create 5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let i = Zipf.sample_index z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 1 much more frequent than rank 50" true
    (counts.(0) > 5 * max 1 counts.(49))

let test_reservoir_small_stream () =
  let r = Reservoir.create ~capacity:100 () in
  List.iter (Reservoir.add r) [ 1; 2; 3 ];
  Alcotest.(check int) "seen" 3 (Reservoir.seen r);
  Alcotest.(check int) "sample size" 3 (Array.length (Reservoir.sample r))

let test_reservoir_capacity_bound () =
  let r = Reservoir.create ~capacity:50 () in
  for i = 1 to 10_000 do
    Reservoir.add r i
  done;
  Alcotest.(check int) "seen" 10_000 (Reservoir.seen r);
  Alcotest.(check int) "capped" 50 (Array.length (Reservoir.sample r))

let test_reservoir_uniformish () =
  (* mean of a uniform 1..n stream sample should be near n/2 *)
  let n = 20_000 in
  let r = Reservoir.create ~rng:(Rng.create 3) ~capacity:500 () in
  for i = 1 to n do
    Reservoir.add r i
  done;
  let s = Reservoir.sample r in
  let mean =
    Array.fold_left (fun a x -> a +. float_of_int x) 0.0 s
    /. float_of_int (Array.length s)
  in
  Alcotest.(check bool) "mean within 15% of n/2" true
    (Float.abs (mean -. (float_of_int n /. 2.0)) < 0.15 *. float_of_int n)

let test_distinct_exact () =
  let d = Distinct.create () in
  List.iter (fun i -> Distinct.add d (Value.Int (i mod 37))) (List.init 1000 Fun.id);
  Alcotest.(check bool) "exact" true (Distinct.is_exact d);
  Alcotest.(check (float 0.01)) "37 distinct" 37.0 (Distinct.estimate d)

let test_distinct_fm_accuracy () =
  let d = Distinct.create ~exact_limit:100 () in
  let n = 50_000 in
  for i = 1 to n do
    Distinct.add d (Value.Int i)
  done;
  Alcotest.(check bool) "overflowed to sketch" true (not (Distinct.is_exact d));
  let est = Distinct.estimate d in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within 2.5x of %d" est n)
    true
    (est > float_of_int n /. 2.5 && est < float_of_int n *. 2.5)

let test_distinct_repeats_ignored () =
  let d = Distinct.create () in
  for _ = 1 to 10_000 do
    Distinct.add d (Value.String "same")
  done;
  Alcotest.(check (float 0.01)) "one distinct" 1.0 (Distinct.estimate d)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:300
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
       let rng = Rng.create seed in
       let v = Rng.int rng bound in
       v >= 0 && v < bound)

let prop_reservoir_size =
  QCheck.Test.make ~name:"reservoir size = min(seen, capacity)" ~count:200
    QCheck.(pair (int_range 1 200) (int_range 0 500))
    (fun (cap, n) ->
       let r = Reservoir.create ~capacity:cap () in
       for i = 1 to n do
         Reservoir.add r i
       done;
       Array.length (Reservoir.sample r) = min cap n)

let suite =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng float in [0,1)" `Quick test_rng_float_unit;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "zipf probs sum" `Quick test_zipf_probs_sum;
    Alcotest.test_case "zipf monotone" `Quick test_zipf_monotone;
    Alcotest.test_case "zipf z=0 uniform" `Quick test_zipf_uniform_when_zero;
    Alcotest.test_case "zipf sampling skew" `Quick test_zipf_sampling_skew;
    Alcotest.test_case "reservoir small stream" `Quick test_reservoir_small_stream;
    Alcotest.test_case "reservoir capacity" `Quick test_reservoir_capacity_bound;
    Alcotest.test_case "reservoir uniform-ish" `Quick test_reservoir_uniformish;
    Alcotest.test_case "distinct exact" `Quick test_distinct_exact;
    Alcotest.test_case "distinct FM accuracy" `Quick test_distinct_fm_accuracy;
    Alcotest.test_case "distinct repeats" `Quick test_distinct_repeats_ignored;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_reservoir_size ]
