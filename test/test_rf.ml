(* Runtime join filters: bloom/min-max semantics, end-to-end result
   equivalence, observed-selectivity feedback, and the broker page-lease
   invariant. *)
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Reopt_policy = Mqr_core.Reopt_policy
module Inaccuracy = Mqr_core.Inaccuracy
module Rf = Mqr_exec.Runtime_filter
module Exec_ctx = Mqr_exec.Exec_ctx
module Queries = Mqr_tpcd.Queries
module Tpcd = Mqr_tpcd.Workload
module Value = Mqr_storage.Value
module Schema = Mqr_storage.Schema

let sf = 0.001
let budget = 16 (* tight: mid-size builds spill, so pruning saves I/O *)

let engine ~runtime_filters catalog =
  Engine.create ~budget_pages:budget ~pool_pages:(8 * budget)
    ~runtime_filters catalog

let schema1 =
  Schema.make [ Schema.col ~qualifier:"t" "k" Value.TInt ]

let rows_of_keys keys =
  Array.of_list (List.map (fun k -> [| Value.Int k |]) keys)

let mk_filter ?(est_sel = 0.5) ?(max_pages = 4) keys =
  let ctx = Exec_ctx.create ~pool_pages:64 () in
  Rf.create ctx ~source:"test" ~build_col:"t.k" ~target_col:"u.k" ~est_sel
    ~max_pages ~key_idx:0 (rows_of_keys keys)

(* --- filter unit semantics --- *)

let test_no_false_negatives () =
  let build = List.init 100 (fun i -> 2 * i) in
  let f = mk_filter build in
  List.iter
    (fun k ->
       Alcotest.(check bool)
         (Printf.sprintf "build key %d admitted" k)
         true
         (Rf.admits f (Value.Int k)))
    build

let test_prunes_absent_keys () =
  (* interleaved so min-max cannot do the work: the bloom must *)
  let f = mk_filter (List.init 100 (fun i -> 2 * i)) in
  let ctx = Exec_ctx.create ~pool_pages:64 () in
  let probe = rows_of_keys (List.init 199 (fun i -> i)) in
  let out = Rf.apply ctx f ~idx:0 probe in
  Alcotest.(check bool) "all 100 build keys pass" true
    (Array.length out >= 100);
  Alcotest.(check bool)
    (Printf.sprintf "most absent keys dropped (passed %d)" (Array.length out))
    true
    (Array.length out < 150);
  Alcotest.(check int) "probed counts every input row" 199 (Rf.probed f);
  Alcotest.(check int) "passed + dropped = probed" 199
    (Rf.passed f + Rf.dropped f);
  Alcotest.(check (float 1e-9)) "observed_sel = passed/probed"
    (float_of_int (Rf.passed f) /. 199.0)
    (Rf.observed_sel f)

let test_minmax_and_nulls () =
  let f = mk_filter [ 10; 20; 30 ] in
  Alcotest.(check bool) "below min rejected" false (Rf.admits f (Value.Int 5));
  Alcotest.(check bool) "above max rejected" false (Rf.admits f (Value.Int 35));
  Alcotest.(check bool) "null never joins" false (Rf.admits f Value.Null);
  (* a String can never equi-join Int keys: the range check passes
     conservatively, but the bloom safely rejects it *)
  Alcotest.(check bool) "type-mismatched value rejected by bloom" false
    (Rf.admits f (Value.String "x"));
  (* without a bloom, the conservative range pass must let it through *)
  let mm = mk_filter ~max_pages:0 [ 10; 20; 30 ] in
  Alcotest.(check bool) "incomparable value passes min-max-only filter" true
    (Rf.admits mm (Value.String "x"))

let test_minmax_only_degradation () =
  let f = mk_filter ~max_pages:0 [ 10; 20; 30 ] in
  Alcotest.(check bool) "no bloom at 0 pages" false (Rf.has_bloom f);
  Alcotest.(check int) "holds no pages" 0 (Rf.pages f);
  (* in-range but absent: only a bloom could reject it *)
  Alcotest.(check bool) "in-range admitted without bloom" true
    (Rf.admits f (Value.Int 15));
  Alcotest.(check bool) "out-of-range still rejected" false
    (Rf.admits f (Value.Int 99))

let test_empty_build_drops_all () =
  let f = mk_filter [] in
  Alcotest.(check bool) "nothing joins an empty build" false
    (Rf.admits f (Value.Int 1))

let test_pages_for () =
  Alcotest.(check int) "no keys, no pages" 0 (Rf.pages_for ~keys:0);
  Alcotest.(check bool) "one key needs one page" true
    (Rf.pages_for ~keys:1 = 1);
  Alcotest.(check bool) "sizing grows with keys" true
    (Rf.pages_for ~keys:100_000 > Rf.pages_for ~keys:100)

(* --- end-to-end: identical results with filters on --- *)

let canon (r : Dispatcher.report) =
  List.sort compare
    (Array.to_list
       (Array.map (Fmt.str "%a" Mqr_storage.Tuple.pp) r.Dispatcher.rows))

let test_results_identical () =
  let catalog = Tpcd.experiment_catalog ~sf () in
  let off = engine ~runtime_filters:false catalog in
  let on = engine ~runtime_filters:true catalog in
  List.iter
    (fun (q : Queries.query) ->
       List.iter
         (fun mode ->
            let a = Engine.run_sql off ~mode q.Queries.sql in
            let b = Engine.run_sql on ~mode q.Queries.sql in
            Alcotest.(check (list string))
              (Printf.sprintf "%s (%s) rows identical" q.Queries.name
                 (Dispatcher.mode_to_string mode))
              (canon a) (canon b))
         [ Dispatcher.Off; Dispatcher.Full ])
    Queries.all

(* --- observed selectivity is reported and sane --- *)

let test_selectivity_feedback () =
  let catalog = Tpcd.experiment_catalog ~sf () in
  let on = engine ~runtime_filters:true catalog in
  let reports =
    List.map
      (fun name ->
         Engine.run_sql on ~mode:Dispatcher.Off (Queries.find name).Queries.sql)
      [ "Q3"; "Q5"; "Q10" ]
  in
  let filters =
    List.concat_map (fun (r : Dispatcher.report) -> r.Dispatcher.filters)
      reports
  in
  Alcotest.(check bool) "join-heavy queries built filters" true
    (filters <> []);
  List.iter
    (fun (col, est, obs) ->
       let ok v = v >= 0.0 && v <= 1.0 in
       Alcotest.(check bool) (col ^ " est in [0,1]") true (ok est);
       Alcotest.(check bool) (col ^ " observed in [0,1]") true (ok obs))
    filters;
  (* the estimates were degraded on purpose: at least one filter must
     observe real pruning *)
  Alcotest.(check bool) "some filter pruned below 90%" true
    (List.exists (fun (_, _, obs) -> obs < 0.9) filters)

let test_explain_shows_annotations () =
  let catalog = Tpcd.experiment_catalog ~sf () in
  let on = engine ~runtime_filters:true catalog in
  let off = engine ~runtime_filters:false catalog in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let has_rf e name =
    contains
      (Mqr_opt.Plan.to_string
         (Engine.explain e (Queries.find name).Queries.sql))
      "rf:["
  in
  Alcotest.(check bool) "rf-on plan annotated" true
    (List.exists (has_rf on) [ "Q3"; "Q5"; "Q10" ]);
  Alcotest.(check bool) "rf-off plan clean" false
    (List.exists (has_rf off) [ "Q3"; "Q5"; "Q10" ])

(* --- broker invariant: filter pages always come back --- *)

let test_broker_pages_returned () =
  let catalog = Tpcd.experiment_catalog ~sf () in
  let on = engine ~runtime_filters:true catalog in
  let lease_calls = ref 0 in
  let broker ~min_pages ~max_pages =
    incr lease_calls;
    ignore min_pages;
    min max_pages (4 * budget)
  in
  List.iter
    (fun (name, mode) ->
       let cfg = Engine.dispatcher_config on ~mode ~broker () in
       let r = Dispatcher.start cfg (Engine.bind_sql on (Queries.find name).Queries.sql) in
       let rec drive () =
         match Dispatcher.step r with
         | None ->
           (* a decision point: every filter of the finished unit must have
              retired and returned its lease — also across plan switches *)
           Alcotest.(check int)
             (name ^ " holds no filter pages at decision point") 0
             (Dispatcher.filter_pages_held r);
           drive ()
         | Some report ->
           Alcotest.(check int) (name ^ " holds no filter pages at end") 0
             (Dispatcher.filter_pages_held r);
           report
       in
       let report = drive () in
       if report.Dispatcher.filters <> [] then
         Alcotest.(check bool) (name ^ " filters actually held pages") true
           (report.Dispatcher.filter_pages_peak > 0))
    [ ("Q3", Dispatcher.Off); ("Q5", Dispatcher.Full); ("Q7", Dispatcher.Full) ];
  Alcotest.(check bool) "broker was consulted" true (!lease_calls > 0)

(* --- surprise policy and error grading --- *)

let test_surprise_policy () =
  let p = Reopt_policy.default_params in
  Alcotest.(check bool) "accurate estimate: no surprise" false
    (Reopt_policy.filter_surprise p ~est:0.5 ~obs:0.5);
  Alcotest.(check bool) "3.3x off: within factor 4" false
    (Reopt_policy.filter_surprise p ~est:1.0 ~obs:0.3);
  Alcotest.(check bool) "50x off: surprise" true
    (Reopt_policy.filter_surprise p ~obs:0.5 ~est:0.01);
  Alcotest.(check bool) "surprise is symmetric" true
    (Reopt_policy.filter_surprise p ~obs:0.01 ~est:0.5);
  let lvl = Alcotest.testable Inaccuracy.pp_level ( = ) in
  Alcotest.check lvl "within 2x -> Low" Inaccuracy.Low
    (Inaccuracy.selectivity_error_level ~est:0.5 ~obs:0.4);
  Alcotest.check lvl "3x -> Medium" Inaccuracy.Medium
    (Inaccuracy.selectivity_error_level ~est:0.1 ~obs:0.3);
  Alcotest.check lvl "50x -> High" Inaccuracy.High
    (Inaccuracy.selectivity_error_level ~est:0.01 ~obs:0.5)

let suite =
  [ Alcotest.test_case "bloom has no false negatives" `Quick
      test_no_false_negatives;
    Alcotest.test_case "bloom prunes absent keys" `Quick
      test_prunes_absent_keys;
    Alcotest.test_case "min-max bounds and nulls" `Quick test_minmax_and_nulls;
    Alcotest.test_case "0 pages degrades to min-max only" `Quick
      test_minmax_only_degradation;
    Alcotest.test_case "empty build drops everything" `Quick
      test_empty_build_drops_all;
    Alcotest.test_case "bitmap page sizing" `Quick test_pages_for;
    Alcotest.test_case "results identical with filters on" `Slow
      test_results_identical;
    Alcotest.test_case "observed selectivity feedback" `Quick
      test_selectivity_feedback;
    Alcotest.test_case "explain shows rf annotations" `Quick
      test_explain_shows_annotations;
    Alcotest.test_case "broker filter pages returned" `Quick
      test_broker_pages_returned;
    Alcotest.test_case "surprise policy and error grading" `Quick
      test_surprise_policy ]
