(* Cardinality-bound abstract interpretation: provable intervals over
   hand-built plans, seeded out-of-interval plans producing their BND-*
   diagnostics, and the bound-checked switching gate. *)
open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Expr = Mqr_expr.Expr
module Plan = Mqr_opt.Plan
module Bounds = Mqr_analysis.Bounds
module Verifier = Mqr_analysis.Verifier
module Diagnostic = Mqr_analysis.Diagnostic
module Reopt_policy = Mqr_core.Reopt_policy

(* t(a unique dense 0..99, b string), u(k unique dense 0..49, v float),
   f(x -> t.a, y -> u.k): a two-dimensional star with a 200-row fact. *)
let catalog () =
  let c = Catalog.create () in
  let t =
    Heap_file.create
      (Schema.make [ Schema.col "a" Value.TInt; Schema.col "b" Value.TString ])
  in
  for i = 0 to 99 do
    Heap_file.append t [| Value.Int i; Value.String "x" |]
  done;
  ignore (Catalog.add_table c "t" t);
  let u =
    Heap_file.create
      (Schema.make [ Schema.col "k" Value.TInt; Schema.col "v" Value.TFloat ])
  in
  for i = 0 to 49 do
    Heap_file.append u [| Value.Int i; Value.Float 0.5 |]
  done;
  ignore (Catalog.add_table c "u" u);
  let f =
    Heap_file.create
      (Schema.make [ Schema.col "x" Value.TInt; Schema.col "y" Value.TInt ])
  in
  for i = 0 to 199 do
    Heap_file.append f [| Value.Int (i mod 100); Value.Int (i mod 50) |]
  done;
  ignore (Catalog.add_table c "f" f);
  Catalog.analyze_table c "t";
  Catalog.analyze_table c "u";
  Catalog.analyze_table c "f";
  c

let next_id = ref 0

let mk ?(rows = 10.0) ?(min_mem = 0) ?(max_mem = 0) ?(mem = 0) schema node =
  incr next_id;
  { Plan.id = !next_id;
    node;
    schema;
    est = { Plan.rows; width = 8.0; op_ms = 1.0; total_ms = 1.0 };
    min_mem;
    max_mem;
    mem;
    dop = 1 }

let table_schema c name =
  Schema.qualify
    (Heap_file.schema (Catalog.find_exn c name).Catalog.heap) name

let scan c ?(rows = 100.0) ?filter name =
  mk ~rows (table_schema c name)
    (Plan.Seq_scan { table = name; alias = name; filter })

let hash_join ?(rows = 50.0) ?(min_mem = 1) ?(max_mem = 4) ~keys build probe =
  mk ~rows ~min_mem ~max_mem
    (Schema.concat probe.Plan.schema build.Plan.schema)
    (Plan.Hash_join { build; probe; keys; extra = None; rf = [] })

let block_nl ?(rows = 50.0) ?pred outer inner =
  mk ~rows
    (Schema.concat outer.Plan.schema inner.Plan.schema)
    (Plan.Block_nl_join { outer; inner; pred })

let analyze c plan = Bounds.analyze (Bounds.env c) plan

let rows_of a (p : Plan.t) =
  match Bounds.rows a p.Plan.id with
  | Some iv -> iv
  | None -> Alcotest.fail "node has no interval"

let codes sel diags =
  List.filter_map
    (fun (d : Diagnostic.t) ->
       if sel d then Some d.Diagnostic.code else None)
    diags

let error_codes = codes Diagnostic.is_error
let warning_codes = codes (fun d -> not (Diagnostic.is_error d))

let check_has_warning code diags =
  Alcotest.(check bool)
    (Printf.sprintf "warning %s reported" code)
    true
    (List.mem code (warning_codes diags))

(* --- interval propagation --- *)

let test_scan_exact () =
  let c = catalog () in
  let p = scan c "t" in
  let iv = rows_of (analyze c p) p in
  Alcotest.(check (float 0.0)) "lo anchored on heap truth" 100.0 iv.Bounds.lo;
  Alcotest.(check (float 0.0)) "hi anchored on heap truth" 100.0 iv.Bounds.hi

let test_filter_widens_lo () =
  let c = catalog () in
  let base = scan c "t" in
  let p =
    mk ~rows:50.0 base.Plan.schema
      (Plan.Filter
         { input = base;
           pred =
             Expr.Cmp (Expr.Gt, Expr.Col "t.a", Expr.Const (Value.Int 12)) })
  in
  let iv = rows_of (analyze c p) p in
  Alcotest.(check (float 0.0)) "filter may drop everything" 0.0 iv.Bounds.lo;
  Alcotest.(check bool) "filter never adds rows" true (iv.Bounds.hi <= 100.0)

let test_unique_key_join_bounded () =
  let c = catalog () in
  (* f.x -> t.a: t.a is provably unique, so the join cannot exceed f *)
  let p = hash_join ~keys:[ ("f.x", "t.a") ] (scan c "t") (scan c ~rows:200.0 "f") in
  let iv = rows_of (analyze c p) p in
  Alcotest.(check bool) "capped by the fact side" true (iv.Bounds.hi <= 200.5)

(* The star regression: the build pairs two independent dimensions; each
   single key alone fans out to the other dimension's size, but pinning
   BOTH keys at once pins one row of each dimension, so the joint
   per-value frequency is 1 and the two-key join stays within the fact. *)
let test_two_key_star_join_collapses () =
  let c = catalog () in
  let dims = block_nl ~rows:5000.0 (scan c "t") (scan c ~rows:50.0 "u") in
  let p =
    hash_join ~rows:200.0
      ~keys:[ ("f.x", "t.a"); ("f.y", "u.k") ]
      dims
      (scan c ~rows:200.0 "f")
  in
  let a = analyze c p in
  let div = rows_of a dims in
  Alcotest.(check (float 0.0)) "cross product of dims is exact" 5000.0
    div.Bounds.hi;
  let iv = rows_of a p in
  Alcotest.(check bool)
    (Printf.sprintf "joint key bound collapses the join (hi=%.0f)" iv.Bounds.hi)
    true (iv.Bounds.hi <= 200.5)

(* Equality pins through a join predicate: each disjunct pins one row of
   each (unique-keyed) side, so the OR of two pin pairs passes <= 2 rows
   out of a 5000-row cross product. *)
let test_pred_equality_pins_cross_product () =
  let c = catalog () in
  let eq col n = Expr.Cmp (Expr.Eq, Expr.Col col, Expr.Const (Value.Int n)) in
  let pred =
    Expr.Or
      ( Expr.And (eq "t.a" 1, eq "u.k" 2),
        Expr.And (eq "t.a" 3, eq "u.k" 4) )
  in
  let p = block_nl ~rows:2.0 ~pred (scan c "t") (scan c ~rows:50.0 "u") in
  let iv = rows_of (analyze c p) p in
  Alcotest.(check bool)
    (Printf.sprintf "two pin pairs pass at most two rows (hi=%.0f)"
       iv.Bounds.hi)
    true (iv.Bounds.hi <= 2.5)

(* --- seeded out-of-interval plans -> BND-* diagnostics --- *)

let test_estimate_outside_interval () =
  let c = catalog () in
  (* an unfiltered scan of a 100-row heap estimated at 640 rows *)
  let p = scan c ~rows:640.0 "t" in
  let diags = Verifier.verify (Verifier.context c) p in
  check_has_warning "BND-EST" diags;
  Alcotest.(check (list string)) "warnings only" [] (error_codes diags)

let test_worst_case_memory_over_budget () =
  let c = catalog () in
  let p = hash_join ~keys:[ ("f.x", "t.a") ] (scan c "t") (scan c ~rows:200.0 "f") in
  let diags = Verifier.verify (Verifier.context ~budget_pages:1 c) p in
  check_has_warning "BND-MEM" diags

let test_dominated_access_path () =
  let c = catalog () in
  (* a table big enough that scanning it all visibly loses to one index
     probe: an equality on a provably unique indexed column matches at
     most one row, so the sequential scan is dominated at any
     cardinality inside the bounds *)
  let big =
    Heap_file.create
      (Schema.make
         [ Schema.col "id" Value.TInt; Schema.col "pad" Value.TString ])
  in
  for i = 0 to 4999 do
    Heap_file.append big
      [| Value.Int i; Value.String (String.make 64 'p') |]
  done;
  ignore (Catalog.add_table c "big" big);
  ignore (Catalog.create_index c ~table:"big" ~column:"id");
  Catalog.analyze_table c "big";
  let p =
    scan c ~rows:1.0
      ~filter:
        (Expr.Cmp (Expr.Eq, Expr.Col "big.id", Expr.Const (Value.Int 7)))
      "big"
  in
  let diags = Verifier.verify (Verifier.context c) p in
  check_has_warning "BND-DOM" diags

let test_clean_plan_has_no_bnd () =
  let c = catalog () in
  let p = hash_join ~rows:200.0 ~keys:[ ("f.x", "t.a") ]
      (scan c "t") (scan c ~rows:200.0 "f")
  in
  let diags = Verifier.verify (Verifier.context c) p in
  Alcotest.(check (list string)) "no bounds findings" []
    (List.filter (fun s -> String.length s >= 4 && String.sub s 0 4 = "BND-")
       (warning_codes diags @ error_codes diags))

(* --- cost intervals and the switching gate --- *)

let test_cost_interval_ordered () =
  let c = catalog () in
  let p = hash_join ~rows:200.0 ~keys:[ ("f.x", "t.a") ]
      (scan c "t") (scan c ~rows:200.0 "f")
  in
  let iv =
    Bounds.cost_interval (Bounds.env c) ~model:Sim_clock.default_model p
  in
  Alcotest.(check bool) "lower bound positive" true (iv.Bounds.lo > 0.0);
  Alcotest.(check bool) "interval ordered" true (iv.Bounds.lo <= iv.Bounds.hi);
  Alcotest.(check bool) "upper bound finite" true (Float.is_finite iv.Bounds.hi)

let test_accept_bound_checked_gate () =
  Alcotest.(check bool) "provable win admitted" true
    (Reopt_policy.accept_bound_checked ~new_hi_ms:10.0 ~cur_lo_ms:20.0);
  Alcotest.(check bool) "tie vetoed" false
    (Reopt_policy.accept_bound_checked ~new_hi_ms:20.0 ~cur_lo_ms:20.0);
  Alcotest.(check bool) "unbounded candidate vetoed" false
    (Reopt_policy.accept_bound_checked ~new_hi_ms:Float.infinity
       ~cur_lo_ms:20.0)

let suite =
  [ Alcotest.test_case "unfiltered scan interval is exact" `Quick
      test_scan_exact;
    Alcotest.test_case "filter widens the lower bound to zero" `Quick
      test_filter_widens_lo;
    Alcotest.test_case "unique-key join capped by the probe side" `Quick
      test_unique_key_join_bounded;
    Alcotest.test_case "two-key star join collapses via joint frequency"
      `Quick test_two_key_star_join_collapses;
    Alcotest.test_case "equality pins bound a predicated cross product"
      `Quick test_pred_equality_pins_cross_product;
    Alcotest.test_case "estimate outside interval -> BND-EST" `Quick
      test_estimate_outside_interval;
    Alcotest.test_case "worst-case memory over budget -> BND-MEM" `Quick
      test_worst_case_memory_over_budget;
    Alcotest.test_case "dominated access path -> BND-DOM" `Quick
      test_dominated_access_path;
    Alcotest.test_case "well-formed plan has no BND findings" `Quick
      test_clean_plan_has_no_bnd;
    Alcotest.test_case "cost interval is ordered and finite" `Quick
      test_cost_interval_ordered;
    Alcotest.test_case "bound-checked gate admits only provable wins" `Quick
      test_accept_bound_checked_gate ]
