(* DML, update-activity staleness, start-time sampling, explain-analyze. *)
open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Column_stats = Mqr_catalog.Column_stats
module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Sampling = Mqr_core.Sampling
module Stats_env = Mqr_opt.Stats_env
module Plan = Mqr_opt.Plan
module Query = Mqr_sql.Query
module Parser = Mqr_sql.Parser
module Expr = Mqr_expr.Expr

let small_catalog () =
  let catalog = Catalog.create () in
  let schema =
    Schema.make
      [ Schema.col "id" Value.TInt;
        Schema.col "grp" Value.TInt;
        Schema.col "amount" Value.TFloat ]
  in
  let heap = Heap_file.create schema in
  for i = 0 to 199 do
    Heap_file.append heap
      [| Value.Int i; Value.Int (i mod 5); Value.Float (float_of_int (i * 3)) |]
  done;
  ignore (Catalog.add_table catalog "items" heap);
  Catalog.analyze_table ~keys:[ "id" ] catalog "items";
  ignore (Catalog.create_index catalog ~table:"items" ~column:"id");
  catalog

(* --- DML --- *)

let count_rows engine =
  let r = Engine.run_sql engine "select count(*) as n from items" in
  match r.Dispatcher.rows.(0).(0) with
  | Value.Int n -> n
  | _ -> Alcotest.fail "count type"

let test_insert () =
  let engine = Engine.create (small_catalog ()) in
  (match Engine.execute engine "insert into items values (200, 1, 5.5), (201, 2, 6.5)" with
   | Engine.Modified { table = "items"; count = 2 } -> ()
   | _ -> Alcotest.fail "insert result");
  Alcotest.(check int) "202 rows" 202 (count_rows engine)

let test_insert_coercion () =
  let engine = Engine.create (small_catalog ()) in
  (* int literal into a float column *)
  (match Engine.execute engine "insert into items values (300, 1, 7)" with
   | Engine.Modified { count = 1; _ } -> ()
   | _ -> Alcotest.fail "coerced insert");
  let r = Engine.run_sql engine "select amount from items where id = 300" in
  Alcotest.(check bool) "stored as float" true
    (Value.equal r.Dispatcher.rows.(0).(0) (Value.Float 7.0))

let test_insert_arity_error () =
  let engine = Engine.create (small_catalog ()) in
  Alcotest.(check bool) "arity rejected" true
    (try
       ignore (Engine.execute engine "insert into items values (1, 2)");
       false
     with Engine.Dml_error _ -> true)

let test_insert_type_error () =
  let engine = Engine.create (small_catalog ()) in
  Alcotest.(check bool) "type rejected" true
    (try
       ignore (Engine.execute engine "insert into items values ('x', 1, 2.0)");
       false
     with Engine.Dml_error _ -> true)

let test_delete () =
  let engine = Engine.create (small_catalog ()) in
  (match Engine.execute engine "delete from items where grp = 0" with
   | Engine.Modified { count; _ } -> Alcotest.(check int) "deleted" 40 count
   | _ -> Alcotest.fail "delete result");
  Alcotest.(check int) "160 left" 160 (count_rows engine)

let test_delete_keeps_index_consistent () =
  let catalog = small_catalog () in
  let engine = Engine.create catalog in
  ignore (Engine.execute engine "delete from items where id < 100");
  (* index scan must agree with a full scan after the rebuild *)
  let r = Engine.run_sql engine "select id from items where id = 150" in
  Alcotest.(check int) "one row" 1 (Array.length r.Dispatcher.rows);
  let tbl = Catalog.find_exn catalog "items" in
  Alcotest.(check int) "index rebuilt to live rows" 100
    (Btree.entry_count
       (Option.get (Catalog.find_index tbl ~column:"id")).Catalog.btree)

let test_update_activity_marks_stale () =
  let catalog = small_catalog () in
  let engine = Engine.create catalog in
  (* a few updates: not yet stale *)
  ignore (Engine.execute engine "delete from items where id = 0");
  let q = Engine.bind_sql engine "select amount from items where grp = 1" in
  let env = Stats_env.create catalog q.Query.relations in
  let st0 = Option.get (Stats_env.stats_of env "items.grp") in
  Alcotest.(check bool) "fresh enough" false st0.Column_stats.stale;
  (* heavy updates: > 10% of the table *)
  ignore (Engine.execute engine "delete from items where grp = 2");
  let env = Stats_env.create catalog q.Query.relations in
  let st1 = Option.get (Stats_env.stats_of env "items.grp") in
  Alcotest.(check bool) "stale after heavy updates" true st1.Column_stats.stale;
  (* ANALYZE clears it *)
  Engine.analyze engine ~keys:[ "id" ] "items";
  let env = Stats_env.create catalog q.Query.relations in
  let st2 = Option.get (Stats_env.stats_of env "items.grp") in
  Alcotest.(check bool) "fresh after analyze" false st2.Column_stats.stale

let test_query_after_dml_correct () =
  let catalog = small_catalog () in
  let engine = Engine.create catalog in
  ignore (Engine.execute engine "delete from items where grp = 4");
  ignore (Engine.execute engine "insert into items values (500, 9, 1.0)");
  let q = Engine.bind_sql engine
      "select grp, count(*) as n from items group by grp order by grp" in
  let expect, _ = Reference.run catalog q in
  let r = Engine.run_sql engine
      "select grp, count(*) as n from items group by grp order by grp" in
  Alcotest.(check (list (list string))) "reference agrees"
    (Reference.canonical expect)
    (Reference.canonical r.Dispatcher.rows)

(* --- start-time sampling --- *)

let skewed_catalog () =
  let catalog = Catalog.create () in
  let schema =
    Schema.make [ Schema.col "k" Value.TInt; Schema.col "flag" Value.TInt ]
  in
  let heap = Heap_file.create schema in
  (* only 2% of rows have flag = 1, but there is no histogram *)
  for i = 0 to 4999 do
    Heap_file.append heap
      [| Value.Int i; Value.Int (if i mod 50 = 0 then 1 else 0) |]
  done;
  ignore (Catalog.add_table catalog "facts" heap);
  Catalog.analyze_table ~keys:[ "k" ] catalog "facts";
  Catalog.degrade_drop_histogram catalog ~table:"facts" ~column:"flag";
  (* hide the distinct count too: force the default guess *)
  catalog

let test_sampling_probe_measures_selectivity () =
  let catalog = skewed_catalog () in
  let ctx = Mqr_exec.Exec_ctx.create () in
  let q =
    Query.bind catalog (Parser.parse "select k from facts where flag = 1")
  in
  let env = Stats_env.create catalog q.Query.relations in
  let probes =
    Sampling.probe_and_override ~catalog ~ctx ~env q ~sample_rows:400
  in
  match probes with
  | [ p ] ->
    Alcotest.(check string) "alias" "facts" p.Sampling.alias;
    Alcotest.(check bool)
      (Printf.sprintf "observed %.4f near 0.02" p.Sampling.observed_selectivity)
      true
      (p.Sampling.observed_selectivity < 0.06);
    Alcotest.(check bool) "override installed" true
      (Stats_env.local_selectivity env ~alias:"facts" <> None)
  | _ -> Alcotest.fail "expected one probe"

let test_sampling_charges_io () =
  let catalog = skewed_catalog () in
  let ctx = Mqr_exec.Exec_ctx.create () in
  let q = Query.bind catalog (Parser.parse "select k from facts where flag = 1") in
  let env = Stats_env.create catalog q.Query.relations in
  ignore (Sampling.probe_and_override ~catalog ~ctx ~env q ~sample_rows:100);
  Alcotest.(check bool) "random reads charged" true
    ((Sim_clock.counters ctx.Mqr_exec.Exec_ctx.clock).Sim_clock.rand_reads > 0)

let test_sampling_skips_certain_predicates () =
  let catalog = small_catalog () in  (* full MaxDiff stats: low inaccuracy *)
  let ctx = Mqr_exec.Exec_ctx.create () in
  let q = Query.bind catalog (Parser.parse "select id from items where grp = 1") in
  let env = Stats_env.create catalog q.Query.relations in
  let probes = Sampling.probe_and_override ~catalog ~ctx ~env q ~sample_rows:100 in
  Alcotest.(check int) "nothing probed" 0 (List.length probes)

let test_engine_probe_rows_event () =
  let catalog = skewed_catalog () in
  let engine = Engine.create catalog in
  let r =
    Engine.run_sql engine ~probe_rows:200
      "select count(*) as n from facts where flag = 1"
  in
  let sampled =
    List.exists
      (fun ev -> match ev with Dispatcher.Ev_sampled _ -> true | _ -> false)
      r.Dispatcher.events
  in
  Alcotest.(check bool) "sampling event" true sampled;
  match r.Dispatcher.rows.(0).(0) with
  | Value.Int 100 -> ()
  | v -> Alcotest.failf "wrong count %s" (Value.to_string v)

(* --- explain analyze --- *)

let test_actual_rows_recorded () =
  let catalog = small_catalog () in
  let engine = Engine.create catalog in
  let r = Engine.run_sql engine "select grp, count(*) as n from items group by grp" in
  Alcotest.(check bool) "actuals recorded" true (r.Dispatcher.actual_rows <> []);
  (* the root of the final plan produced the result rows *)
  let root_id = r.Dispatcher.final_plan.Plan.id in
  (match List.assoc_opt root_id r.Dispatcher.actual_rows with
   | Some n -> Alcotest.(check int) "root actual = result" 5 n
   | None -> Alcotest.fail "root not recorded");
  (* rendering doesn't raise *)
  let rendered =
    Fmt.str "%a" Dispatcher.pp_plan_with_actuals
      (r.Dispatcher.final_plan, r.Dispatcher.actual_rows)
  in
  Alcotest.(check bool) "render mentions actuals" true
    (String.length rendered > 0)

(* --- merge join integration --- *)

let test_merge_join_only_plans () =
  let catalog = small_catalog () in
  (* force merge joins by disabling nothing: instead check merge-join plans
     produce identical answers when the optimizer may pick them *)
  let engine =
    Engine.create
      ~opt_options:
        { Mqr_opt.Optimizer.default_options with
          Mqr_opt.Optimizer.enable_index_join = false }
      catalog
  in
  let sql = "select a.grp, count(*) as n from items a, items b \
             where a.id = b.id group by a.grp order by a.grp" in
  let q = Engine.bind_sql engine sql in
  let expect, _ = Reference.run catalog q in
  let r = Engine.run_sql engine sql in
  Alcotest.(check (list (list string))) "self-join agrees"
    (Reference.canonical expect)
    (Reference.canonical r.Dispatcher.rows)

(* --- plan cache --- *)

let test_plan_cache_hits () =
  let catalog = small_catalog () in
  let engine = Engine.create ~plan_cache:true catalog in
  let sql = "select grp, count(*) as n from items group by grp" in
  let r1 = Engine.run_sql engine sql in
  let r2 = Engine.run_sql engine sql in
  (* second run pays no optimizer time *)
  Alcotest.(check int) "no optimizer invocation on hit" 0
    r2.Dispatcher.counters.Sim_clock.opt_invocations;
  Alcotest.(check bool) "first run optimized" true
    (r1.Dispatcher.counters.Sim_clock.opt_invocations >= 1);
  (match Engine.plan_cache_stats engine with
   | Some (hits, misses, size) ->
     Alcotest.(check int) "one hit" 1 hits;
     Alcotest.(check int) "one miss" 1 misses;
     Alcotest.(check int) "one entry" 1 size
   | None -> Alcotest.fail "cache enabled");
  Alcotest.(check (list (list string))) "same answers"
    (Reference.canonical r1.Dispatcher.rows)
    (Reference.canonical r2.Dispatcher.rows)

let test_plan_cache_invalidated_by_updates () =
  let catalog = small_catalog () in
  let engine = Engine.create ~plan_cache:true catalog in
  let sql = "select grp, count(*) as n from items group by grp" in
  ignore (Engine.run_sql engine sql);
  (* heavy update activity: > 10% of the table *)
  ignore (Engine.execute engine "delete from items where grp = 1");
  let r = Engine.run_sql engine sql in
  Alcotest.(check bool) "re-optimized after drift" true
    (r.Dispatcher.counters.Sim_clock.opt_invocations >= 1)

let test_plan_cache_invalidated_by_analyze () =
  let catalog = small_catalog () in
  let engine = Engine.create ~plan_cache:true catalog in
  let sql = "select grp, count(*) as n from items group by grp" in
  ignore (Engine.run_sql engine sql);
  (* ANALYZE refreshes statistics without any update activity — the update
     counter stays 0, so only the stats epoch can reveal the change *)
  Engine.analyze engine ~keys:[ "id" ] "items";
  let r = Engine.run_sql engine sql in
  Alcotest.(check bool) "re-optimized after analyze" true
    (r.Dispatcher.counters.Sim_clock.opt_invocations >= 1)

let test_plan_cache_per_mode () =
  let catalog = small_catalog () in
  let engine = Engine.create ~plan_cache:true catalog in
  let sql = "select grp, count(*) as n from items group by grp" in
  ignore (Engine.run_sql engine ~mode:Dispatcher.Off sql);
  let r = Engine.run_sql engine ~mode:Dispatcher.Full sql in
  (* different mode is a different cache key: full mode optimized anew *)
  Alcotest.(check bool) "full mode not served the off-mode plan" true
    (r.Dispatcher.counters.Sim_clock.opt_invocations >= 1)

let suite =
  [ Alcotest.test_case "insert" `Quick test_insert;
    Alcotest.test_case "insert coercion" `Quick test_insert_coercion;
    Alcotest.test_case "insert arity error" `Quick test_insert_arity_error;
    Alcotest.test_case "insert type error" `Quick test_insert_type_error;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "delete keeps index" `Quick test_delete_keeps_index_consistent;
    Alcotest.test_case "update activity stale" `Quick test_update_activity_marks_stale;
    Alcotest.test_case "query after dml" `Quick test_query_after_dml_correct;
    Alcotest.test_case "sampling measures selectivity" `Quick test_sampling_probe_measures_selectivity;
    Alcotest.test_case "sampling charges io" `Quick test_sampling_charges_io;
    Alcotest.test_case "sampling skips certain" `Quick test_sampling_skips_certain_predicates;
    Alcotest.test_case "engine probe_rows" `Quick test_engine_probe_rows_event;
    Alcotest.test_case "actual rows recorded" `Quick test_actual_rows_recorded;
    Alcotest.test_case "merge-join plans agree" `Quick test_merge_join_only_plans;
    Alcotest.test_case "plan cache hits" `Quick test_plan_cache_hits;
    Alcotest.test_case "plan cache invalidation" `Quick test_plan_cache_invalidated_by_updates;
    Alcotest.test_case "plan cache analyze invalidation" `Quick test_plan_cache_invalidated_by_analyze;
    Alcotest.test_case "plan cache per mode" `Quick test_plan_cache_per_mode ]
