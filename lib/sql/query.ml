open Mqr_storage
module Expr = Mqr_expr.Expr
module Catalog = Mqr_catalog.Catalog

exception Bind_error of string

type relation = {
  table : string;
  alias : string;
  rel_schema : Schema.t;
}

type agg = {
  fn : Ast.agg_fn;
  distinct_arg : bool;
  arg : Expr.t option;
  out_name : string;
}

type t = {
  relations : relation list;
  conjuncts : Expr.t list;
  select_cols : string list;
  aggs : agg list;
  group_by : string list;
  having : Expr.t option;
  order_by : (string * bool) list;
  limit : int option;
}

let err fmt = Format.kasprintf (fun s -> raise (Bind_error s)) fmt

let input_schema t =
  List.fold_left
    (fun acc r -> Schema.concat acc r.rel_schema)
    (Schema.make []) t.relations

(* Rewrite every column reference in [e] to its fully qualified form. *)
let qualify_expr schema e =
  let qualify_col c =
    match Schema.index_of schema c with
    | i ->
      let col = Schema.column schema i in
      if col.Schema.qualifier = "" then Expr.Col col.Schema.name
      else Expr.Col (col.Schema.qualifier ^ "." ^ col.Schema.name)
    | exception Not_found -> err "unknown column %s" c
    | exception Schema.Ambiguous c -> err "ambiguous column %s" c
  in
  let rec go e =
    match e with
    | Expr.Col c -> qualify_col c
    | Expr.Const _ -> e
    | Expr.Arith (op, a, b) -> Expr.Arith (op, go a, go b)
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
    | Expr.Between (x, lo, hi) -> Expr.Between (go x, go lo, go hi)
    | Expr.And (a, b) -> Expr.And (go a, go b)
    | Expr.Or (a, b) -> Expr.Or (go a, go b)
    | Expr.Not a -> Expr.Not (go a)
    | Expr.Udf u -> Expr.Udf { u with Expr.args = List.map go u.Expr.args }
  in
  go e

let qualify_col_name schema c =
  match qualify_expr schema (Expr.Col c) with
  | Expr.Col q -> q
  | _ -> assert false

let bind catalog (q : Ast.query) =
  if q.Ast.select = [] then err "empty select list";
  if q.Ast.distinct && List.exists
       (fun item -> match item with Ast.Agg_item _ -> true | _ -> false)
       q.Ast.select
  then err "SELECT DISTINCT with aggregates is not supported";
  if q.Ast.from = [] then err "empty from list";
  (* Relations *)
  let relations =
    List.map
      (fun (table, alias) ->
         match Catalog.find catalog table with
         | None -> err "unknown table %s" table
         | Some tbl ->
           let alias = Option.value ~default:table alias in
           { table;
             alias;
             rel_schema = Schema.qualify (Heap_file.schema tbl.Catalog.heap) alias })
      q.Ast.from
  in
  let aliases = List.map (fun r -> r.alias) relations in
  let dedup = List.sort_uniq String.compare aliases in
  if List.length dedup <> List.length aliases then err "duplicate relation alias";
  let schema =
    List.fold_left (fun acc r -> Schema.concat acc r.rel_schema)
      (Schema.make []) relations
  in
  (* WHERE *)
  let conjuncts =
    match q.Ast.where with
    | None -> []
    | Some e -> Expr.conjuncts (qualify_expr schema e)
  in
  (* GROUP BY *)
  let group_by = List.map (qualify_col_name schema) q.Ast.group_by in
  (* SELECT *)
  let agg_counter = ref 0 in
  let fresh_agg_name fn =
    incr agg_counter;
    Printf.sprintf "%s_%d" (Ast.agg_fn_to_string fn) !agg_counter
  in
  let select_cols = ref [] and aggs = ref [] in
  List.iter
    (fun item ->
       match item with
       | Ast.Star ->
         List.iter
           (fun col ->
              select_cols :=
                (col.Schema.qualifier ^ "." ^ col.Schema.name) :: !select_cols)
           (Schema.columns schema)
       | Ast.Expr_item (Expr.Col c, alias) ->
         let qc = qualify_col_name schema c in
         ignore alias;
         select_cols := qc :: !select_cols
       | Ast.Expr_item (_, _) ->
         err "only plain columns and aggregates are supported in SELECT"
       | Ast.Agg_item (fn, distinct_arg, arg, alias) ->
         let arg = Option.map (qualify_expr schema) arg in
         let out_name = Option.value ~default:(fresh_agg_name fn) alias in
         aggs := { fn; distinct_arg; arg; out_name } :: !aggs)
    q.Ast.select;
  let select_cols = List.rev !select_cols and aggs = List.rev !aggs in
  (* SELECT DISTINCT c1, c2 is GROUP BY c1, c2 with no aggregates *)
  let group_by =
    if q.Ast.distinct && aggs = [] && group_by = [] then select_cols
    else group_by
  in
  (* Aggregate validation *)
  if aggs <> [] || group_by <> [] then begin
    List.iter
      (fun c ->
         if not (List.mem c group_by) then
           err "non-aggregate output column %s not in GROUP BY" c)
      select_cols
  end;
  (* HAVING: resolved against the aggregate's output schema (group columns
     keep their qualifiers; aggregate outputs are bare names) *)
  let having =
    match q.Ast.having with
    | None -> None
    | Some _ when aggs = [] && group_by = [] ->
      err "HAVING requires GROUP BY or aggregates"
    | Some pred ->
      let out_schema =
        let group_cols =
          List.map (fun g -> Schema.column schema (Schema.index_of schema g))
            group_by
        in
        let agg_cols =
          List.map
            (fun (a : agg) ->
               (* type refined later by output_schema; TBool is fine for
                  name resolution *)
               Schema.col a.out_name Value.TFloat)
            aggs
        in
        Schema.make (group_cols @ agg_cols)
      in
      Some (qualify_expr out_schema pred)
  in
  (* ORDER BY: resolve against output names (group cols, agg names, or
     plain qualified columns). *)
  let output_names =
    if aggs <> [] || group_by <> [] then
      group_by @ List.map (fun a -> a.out_name) aggs
    else select_cols
  in
  let order_by =
    List.map
      (fun { Ast.key; asc } ->
         let resolved =
           if List.mem key output_names then key
           else begin
             match qualify_col_name schema key with
             | q when List.mem q output_names -> q
             | q ->
               if aggs = [] && group_by = [] then q
               else err "ORDER BY column %s is not in the output" key
             | exception Bind_error _ ->
               (* maybe it's an aggregate alias with qualification *)
               err "cannot resolve ORDER BY column %s" key
           end
         in
         (resolved, asc))
      q.Ast.order_by
  in
  { relations;
    conjuncts;
    select_cols;
    aggs;
    group_by;
    having;
    order_by;
    limit = q.Ast.limit }

let agg_type schema (a : agg) =
  match a.fn, a.arg with
  | Ast.Count, _ -> Value.TInt
  | Ast.Avg, _ -> Value.TFloat
  | (Ast.Sum | Ast.Min | Ast.Max), Some e -> Mqr_expr.Expr.type_of schema e
  | (Ast.Sum | Ast.Min | Ast.Max), None -> err "%s requires an argument" (Ast.agg_fn_to_string a.fn)

let output_schema _catalog t =
  let schema = input_schema t in
  if t.aggs = [] && t.group_by = [] then begin
    let idxs = List.map (Schema.index_of schema) t.select_cols in
    Schema.project schema idxs
  end
  else begin
    let group_cols =
      List.map
        (fun g ->
           let i = Schema.index_of schema g in
           Schema.column schema i)
        t.group_by
    in
    let agg_cols =
      List.map
        (fun a -> Schema.col a.out_name (agg_type schema a))
        t.aggs
    in
    Schema.make (group_cols @ agg_cols)
  end

(* Number of join operators any plan for this block will contain.  The
   paper classifies queries by this count; note it is relations - 1, not
   the number of join conjuncts (a query can carry redundant equalities,
   e.g. TPC-D Q5's c_nationkey = s_nationkey). *)
let join_count t = max 0 (List.length t.relations - 1)

let pp fmt t =
  Fmt.pf fmt "@[<v>relations: %a@,conjuncts: %a@,select: %a@,aggs: %a@,group_by: %a@]"
    (Fmt.list ~sep:Fmt.comma (fun fmt r -> Fmt.pf fmt "%s as %s" r.table r.alias))
    t.relations
    (Fmt.list ~sep:Fmt.comma Expr.pp) t.conjuncts
    (Fmt.list ~sep:Fmt.comma Fmt.string) t.select_cols
    (Fmt.list ~sep:Fmt.comma (fun fmt a -> Fmt.string fmt a.out_name)) t.aggs
    (Fmt.list ~sep:Fmt.comma Fmt.string) t.group_by
