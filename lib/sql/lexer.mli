(** Hand-written SQL lexer for the engine's SPJA subset. *)

type token =
  | IDENT of string      (** lower-cased identifier, possibly qualified later *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string         (** lower-cased keyword (select, from, ...) *)
  | LPAREN | RPAREN | COMMA | DOT | STAR
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | SLASH
  | EOF

exception Lex_error of string

val keywords : string list

(** Tokenize an entire statement. @raise Lex_error on bad input. *)
val tokenize : string -> token list

val token_to_string : token -> string
