module Expr = Mqr_expr.Expr
module Value = Mqr_storage.Value

type udf_def = {
  name : string;
  fn : Value.t list -> Value.t;
  selectivity : float option;
}

exception Parse_error of string

type state = {
  toks : Lexer.token array;
  mutable pos : int;
  udfs : udf_def list;
}

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s (at token %s)" msg
          (Lexer.token_to_string (peek st))))

let expect st tok msg =
  if peek st = tok then advance st else fail st msg

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (Lexer.KW kw)

let expect_kw st kw = expect st (Lexer.KW kw) ("expected " ^ kw)

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

(* A column reference: ident or ident.ident *)
let column_ref st =
  let first = ident st in
  if accept st Lexer.DOT then first ^ "." ^ ident st else first

let rec parse_or st =
  let left = parse_and st in
  if accept_kw st "or" then Expr.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_kw st "and" then Expr.And (left, parse_and st) else left

and parse_not st =
  if accept_kw st "not" then Expr.Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_sum st in
  match peek st with
  | Lexer.EQ -> advance st; Expr.Cmp (Expr.Eq, left, parse_sum st)
  | Lexer.NE -> advance st; Expr.Cmp (Expr.Ne, left, parse_sum st)
  | Lexer.LT -> advance st; Expr.Cmp (Expr.Lt, left, parse_sum st)
  | Lexer.LE -> advance st; Expr.Cmp (Expr.Le, left, parse_sum st)
  | Lexer.GT -> advance st; Expr.Cmp (Expr.Gt, left, parse_sum st)
  | Lexer.GE -> advance st; Expr.Cmp (Expr.Ge, left, parse_sum st)
  | Lexer.KW "between" ->
    advance st;
    let lo = parse_sum st in
    expect_kw st "and";
    let hi = parse_sum st in
    Expr.Between (left, lo, hi)
  | _ -> left

and parse_sum st =
  let left = parse_prod st in
  match peek st with
  | Lexer.PLUS -> advance st; Expr.Arith (Expr.Add, left, parse_sum st)
  | Lexer.MINUS -> advance st; Expr.Arith (Expr.Sub, left, parse_sum st)
  | _ -> left

and parse_prod st =
  let left = parse_unary st in
  match peek st with
  | Lexer.STAR -> advance st; Expr.Arith (Expr.Mul, left, parse_prod st)
  | Lexer.SLASH -> advance st; Expr.Arith (Expr.Div, left, parse_prod st)
  | _ -> left

and parse_unary st =
  if accept st Lexer.MINUS then
    Expr.Arith (Expr.Sub, Expr.Const (Value.Int 0), parse_primary st)
  else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i -> advance st; Expr.Const (Value.Int i)
  | Lexer.FLOAT f -> advance st; Expr.Const (Value.Float f)
  | Lexer.STRING s -> advance st; Expr.Const (Value.String s)
  | Lexer.KW "date" ->
    advance st;
    (match peek st with
     | Lexer.STRING s ->
       advance st;
       Expr.Const (Value.date_of_string s)
     | _ -> fail st "expected date literal string")
  | Lexer.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st Lexer.RPAREN "expected )";
    e
  | Lexer.IDENT _ ->
    let name = column_ref st in
    if peek st = Lexer.LPAREN then begin
      advance st;
      let args = parse_args st in
      expect st Lexer.RPAREN "expected )";
      match List.find_opt (fun u -> u.name = name) st.udfs with
      | Some u ->
        Expr.udf ?selectivity:u.selectivity ~name:u.name u.fn args
      | None -> raise (Parse_error ("unknown function " ^ name))
    end
    else Expr.Col name
  | _ -> fail st "expected expression"

and parse_args st =
  if peek st = Lexer.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_or st in
      if accept st Lexer.COMMA then go (e :: acc) else List.rev (e :: acc)
    in
    go []
  end

let agg_of_kw = function
  | "count" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | "avg" -> Some Ast.Avg
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | _ -> None

let parse_alias st =
  if accept_kw st "as" then Some (ident st)
  else
    match peek st with
    | Lexer.IDENT s -> advance st; Some s
    | _ -> None

let parse_select_item st =
  match peek st with
  | Lexer.STAR -> advance st; Ast.Star
  | Lexer.KW kw when agg_of_kw kw <> None ->
    let fn = Option.get (agg_of_kw kw) in
    advance st;
    expect st Lexer.LPAREN "expected ( after aggregate";
    let distinct = accept_kw st "distinct" in
    let arg =
      if accept st Lexer.STAR then None else Some (parse_or st)
    in
    if distinct && arg = None then fail st "DISTINCT * is not valid";
    expect st Lexer.RPAREN "expected ) after aggregate";
    Ast.Agg_item (fn, distinct, arg, parse_alias st)
  | _ ->
    let e = parse_or st in
    Ast.Expr_item (e, parse_alias st)

let parse_from_item st =
  let table = ident st in
  let alias =
    match peek st with
    | Lexer.IDENT s -> advance st; Some s
    | _ -> None
  in
  (table, alias)

let comma_list st parse_item =
  let rec go acc =
    let item = parse_item st in
    if accept st Lexer.COMMA then go (item :: acc) else List.rev (item :: acc)
  in
  go []

let parse_query st =
  expect_kw st "select";
  let distinct = accept_kw st "distinct" in
  let select = comma_list st parse_select_item in
  expect_kw st "from";
  let from = comma_list st parse_from_item in
  let where = if accept_kw st "where" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "group" then begin
      expect_kw st "by";
      comma_list st column_ref
    end
    else []
  in
  let having = if accept_kw st "having" then Some (parse_or st) else None in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      comma_list st (fun st ->
          let key = column_ref st in
          let asc =
            if accept_kw st "desc" then false
            else begin
              ignore (accept_kw st "asc");
              true
            end
          in
          { Ast.key; asc })
    end
    else []
  in
  let limit =
    if accept_kw st "limit" then begin
      match peek st with
      | Lexer.INT n -> advance st; Some n
      | _ -> fail st "expected integer after limit"
    end
    else None
  in
  expect st Lexer.EOF "trailing tokens after query";
  { Ast.select; distinct; from; where; group_by; having; order_by; limit }

type statement =
  | Select of Ast.query
  | Insert of { table : string; rows : Expr.t list list }
  | Delete of { table : string; where : Expr.t option }
  | Create_table of {
      table : string;
      columns : (string * Mqr_storage.Value.ty * int option) list;
    }
  | Create_index of { table : string; column : string }
  | Copy of { table : string; file : string }
  | Analyze of string

let parse_insert st =
  expect_kw st "insert";
  expect_kw st "into";
  let table = ident st in
  expect_kw st "values";
  let parse_row st =
    expect st Lexer.LPAREN "expected ( before row";
    let vals = parse_args st in
    expect st Lexer.RPAREN "expected ) after row";
    vals
  in
  let rows = comma_list st parse_row in
  expect st Lexer.EOF "trailing tokens after insert";
  Insert { table; rows }

let parse_delete st =
  expect_kw st "delete";
  expect_kw st "from";
  let table = ident st in
  let where = if accept_kw st "where" then Some (parse_or st) else None in
  expect st Lexer.EOF "trailing tokens after delete";
  Delete { table; where }

let parse_type st =
  match ident st with
  | "int" | "integer" -> Value.TInt
  | "float" | "double" | "real" -> Value.TFloat
  | "bool" | "boolean" -> Value.TBool
  | ty -> (match ty with
           | "string" | "text" | "varchar" | "char" -> Value.TString
           | _ -> fail st ("unknown type " ^ ty))

let parse_type_with_width st =
  (* DATE is a keyword, so handle it before the identifier path *)
  if accept_kw st "date" then (Value.TDate, None)
  else begin
    let ty = parse_type st in
    if peek st = Lexer.LPAREN then begin
      advance st;
      match peek st with
      | Lexer.INT w ->
        advance st;
        expect st Lexer.RPAREN "expected ) after width";
        (ty, Some w)
      | _ -> fail st "expected width"
    end
    else (ty, None)
  end

let parse_create st =
  expect_kw st "create";
  if accept_kw st "table" then begin
    let table = ident st in
    expect st Lexer.LPAREN "expected ( after table name";
    let parse_column st =
      let cname = ident st in
      let ty, width = parse_type_with_width st in
      (cname, ty, width)
    in
    let columns = comma_list st parse_column in
    expect st Lexer.RPAREN "expected ) after columns";
    expect st Lexer.EOF "trailing tokens after create table";
    Create_table { table; columns }
  end
  else begin
    expect_kw st "index";
    expect_kw st "on";
    let table = ident st in
    expect st Lexer.LPAREN "expected ( before column";
    let column = ident st in
    expect st Lexer.RPAREN "expected ) after column";
    expect st Lexer.EOF "trailing tokens after create index";
    Create_index { table; column }
  end

let parse_copy st =
  expect_kw st "copy";
  let table = ident st in
  expect_kw st "from";
  match peek st with
  | Lexer.STRING file ->
    advance st;
    expect st Lexer.EOF "trailing tokens after copy";
    Copy { table; file }
  | _ -> fail st "expected file name string"

let make_state ?(udfs = []) src =
  { toks = Array.of_list (Lexer.tokenize src); pos = 0; udfs }

let parse ?udfs src = parse_query (make_state ?udfs src)

let parse_statement ?udfs src =
  let st = make_state ?udfs src in
  match peek st with
  | Lexer.KW "insert" -> parse_insert st
  | Lexer.KW "delete" -> parse_delete st
  | Lexer.KW "create" -> parse_create st
  | Lexer.KW "copy" -> parse_copy st
  | Lexer.KW "analyze" ->
    advance st;
    let table = ident st in
    expect st Lexer.EOF "trailing tokens after analyze";
    Analyze table
  | _ -> Select (parse_query st)

let parse_expr ?udfs src =
  let st = make_state ?udfs src in
  let e = parse_or st in
  expect st Lexer.EOF "trailing tokens after expression";
  e
