type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LPAREN | RPAREN | COMMA | DOT | STAR
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | SLASH
  | EOF

exception Lex_error of string

let keywords =
  [ "select"; "from"; "where"; "group"; "order"; "by"; "having"; "limit";
    "and"; "or"; "not"; "between"; "as"; "asc"; "desc"; "date";
    "insert"; "into"; "values"; "delete"; "create"; "table"; "index";
    "on"; "copy"; "analyze";
    "count"; "sum"; "avg"; "min"; "max"; "distinct" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit tk = out := tk :: !out in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let word = String.lowercase_ascii (String.sub src !i (!j - !i)) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word);
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1] then begin
        incr j;
        while !j < n && is_digit src.[!j] do incr j done;
        emit (FLOAT (float_of_string (String.sub src !i (!j - !i))))
      end
      else emit (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !j >= n then raise (Lex_error "unterminated string literal")
        else if src.[!j] = '\'' then
          if !j + 1 < n && src.[!j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            j := !j + 2
          end
          else begin
            closed := true;
            incr j
          end
        else begin
          Buffer.add_char buf src.[!j];
          incr j
        end
      done;
      emit (STRING (Buffer.contents buf));
      i := !j
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "<>" -> emit NE; i := !i + 2
      | Some "!=" -> emit NE; i := !i + 2
      | Some "<=" -> emit LE; i := !i + 2
      | Some ">=" -> emit GE; i := !i + 2
      | _ ->
        (match c with
         | '(' -> emit LPAREN | ')' -> emit RPAREN
         | ',' -> emit COMMA | '.' -> emit DOT | '*' -> emit STAR
         | '=' -> emit EQ | '<' -> emit LT | '>' -> emit GT
         | '+' -> emit PLUS | '-' -> emit MINUS | '/' -> emit SLASH
         | ';' -> ()
         | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c)));
        incr i
    end
  done;
  List.rev (EOF :: !out)

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | KW k -> String.uppercase_ascii k
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | DOT -> "." | STAR -> "*"
  | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | PLUS -> "+" | MINUS -> "-" | SLASH -> "/"
  | EOF -> "<eof>"
