(** Bound query blocks.

    The binder resolves table names against the catalog, qualifies every
    column reference with its relation alias, and validates the aggregate
    structure.  The optimizer consumes this normal form directly: a set of
    relations plus a bag of WHERE conjuncts. *)

open Mqr_storage

exception Bind_error of string

type relation = {
  table : string;
  alias : string;
  rel_schema : Schema.t;  (** columns qualified with [alias] *)
}

type agg = {
  fn : Ast.agg_fn;
  distinct_arg : bool;  (** e.g. count(distinct c) *)
  arg : Mqr_expr.Expr.t option;  (** [None] only for count-star *)
  out_name : string;
}

type t = {
  relations : relation list;
  conjuncts : Mqr_expr.Expr.t list;  (** fully-qualified WHERE conjuncts *)
  select_cols : string list;         (** qualified non-aggregate outputs *)
  aggs : agg list;
  group_by : string list;            (** qualified *)
  having : Mqr_expr.Expr.t option;
      (** over the aggregate output: group columns and aggregate names *)
  order_by : (string * bool) list;   (** output-column name, ascending? *)
  limit : int option;
}

(** Bind an AST query against the catalog.
    @raise Bind_error on unknown tables/columns, ambiguity, or invalid
    aggregate structure. *)
val bind : Mqr_catalog.Catalog.t -> Ast.query -> t

(** Combined (alias-qualified) schema of all relations. *)
val input_schema : t -> Schema.t

(** Schema of the query result. *)
val output_schema : Mqr_catalog.Catalog.t -> t -> Schema.t

(** Number of join operators any plan for this block will contain
    (relations - 1); the paper classifies queries as simple/medium/complex
    by this count. *)
val join_count : t -> int

val pp : Format.formatter -> t -> unit
