(** Recursive-descent parser for the SQL subset.

    User-defined functions appearing in predicates are resolved against the
    [udfs] registry at parse time so the resulting expression carries the
    executable closure (and its declared selectivity, if any). *)

type udf_def = {
  name : string;
  fn : Mqr_storage.Value.t list -> Mqr_storage.Value.t;
  selectivity : float option;
}

exception Parse_error of string

(** @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)
val parse : ?udfs:udf_def list -> string -> Ast.query

type statement =
  | Select of Ast.query
  | Insert of { table : string; rows : Mqr_expr.Expr.t list list }
      (** INSERT INTO t VALUES (..), (..), ... — constant expressions *)
  | Delete of { table : string; where : Mqr_expr.Expr.t option }
  | Create_table of {
      table : string;
      columns : (string * Mqr_storage.Value.ty * int option) list;
          (** (name, type, optional width for strings) *)
    }
  | Create_index of { table : string; column : string }
  | Copy of { table : string; file : string }
      (** COPY t FROM 'file.csv' *)
  | Analyze of string  (** ANALYZE t *)

val parse_statement : ?udfs:udf_def list -> string -> statement

(** Parse a scalar/boolean expression on its own (for tests). *)
val parse_expr : ?udfs:udf_def list -> string -> Mqr_expr.Expr.t
