(** Abstract syntax for the SQL subset. *)

type agg_fn = Count | Sum | Avg | Min | Max

val agg_fn_to_string : agg_fn -> string

type select_item =
  | Star
  | Expr_item of Mqr_expr.Expr.t * string option      (** expr [AS alias] *)
  | Agg_item of agg_fn * bool * Mqr_expr.Expr.t option * string option
      (** function, DISTINCT flag, argument ([None] = count-star), alias *)

type order_item = { key : string; asc : bool }

type query = {
  select : select_item list;
  distinct : bool;  (** SELECT DISTINCT *)
  from : (string * string option) list;  (** (table, alias) *)
  where : Mqr_expr.Expr.t option;
  group_by : string list;
  having : Mqr_expr.Expr.t option;
  order_by : order_item list;
  limit : int option;
}

val pp_query : Format.formatter -> query -> unit

(** Render back to SQL text (used for remainder-query resubmission). *)
val to_sql : query -> string
