module Expr = Mqr_expr.Expr

type agg_fn = Count | Sum | Avg | Min | Max

let agg_fn_to_string = function
  | Count -> "count" | Sum -> "sum" | Avg -> "avg" | Min -> "min" | Max -> "max"

type select_item =
  | Star
  | Expr_item of Expr.t * string option
  | Agg_item of agg_fn * bool * Expr.t option * string option
      (* fn, DISTINCT?, argument, alias *)

type order_item = { key : string; asc : bool }

type query = {
  select : select_item list;
  distinct : bool;
  from : (string * string option) list;
  where : Expr.t option;
  group_by : string list;
  having : Expr.t option;
  order_by : order_item list;
  limit : int option;
}

let item_to_sql = function
  | Star -> "*"
  | Expr_item (e, None) -> Expr.to_sql e
  | Expr_item (e, Some a) -> Expr.to_sql e ^ " as " ^ a
  | Agg_item (fn, distinct, arg, alias) ->
    let arg_s = match arg with None -> "*" | Some e -> Expr.to_sql e in
    let arg_s = if distinct then "distinct " ^ arg_s else arg_s in
    let base = Printf.sprintf "%s(%s)" (agg_fn_to_string fn) arg_s in
    (match alias with None -> base | Some a -> base ^ " as " ^ a)

let to_sql q =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (if q.distinct then "select distinct " else "select ");
  Buffer.add_string buf (String.concat ", " (List.map item_to_sql q.select));
  Buffer.add_string buf " from ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (t, a) -> match a with None -> t | Some a -> t ^ " " ^ a)
          q.from));
  (match q.where with
   | None -> ()
   | Some e ->
     Buffer.add_string buf " where ";
     Buffer.add_string buf (Expr.to_sql e));
  (match q.group_by with
   | [] -> ()
   | cols ->
     Buffer.add_string buf " group by ";
     Buffer.add_string buf (String.concat ", " cols));
  (match q.having with
   | None -> ()
   | Some e ->
     Buffer.add_string buf " having ";
     Buffer.add_string buf (Expr.to_sql e));
  (match q.order_by with
   | [] -> ()
   | items ->
     Buffer.add_string buf " order by ";
     Buffer.add_string buf
       (String.concat ", "
          (List.map (fun i -> i.key ^ if i.asc then "" else " desc") items)));
  (match q.limit with
   | None -> ()
   | Some n -> Buffer.add_string buf (" limit " ^ string_of_int n));
  Buffer.contents buf

let pp_query fmt q = Fmt.string fmt (to_sql q)
