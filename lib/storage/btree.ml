type node =
  | Leaf of leaf
  | Internal of internal

and leaf = {
  lid : int;
  mutable keys : Value.t array;
  mutable vals : int list array;
  mutable next : leaf option;
}

and internal = {
  iid : int;
  mutable seps : Value.t array;   (* seps.(i) = smallest key under children.(i+1) *)
  mutable children : node array;
}

type t = {
  id : int;
  fanout : int;
  mutable root : node;
  mutable entries : int;
  mutable distinct : int;
  mutable next_node_id : int;
  mutable nleaves : int;
}

let next_file_id = ref 1_000_000

let fresh_file_id () =
  incr next_file_id;
  !next_file_id

let create ?(fanout = 64) () =
  if fanout < 4 then invalid_arg "Btree.create: fanout < 4";
  let leaf = { lid = 0; keys = [||]; vals = [||]; next = None } in
  { id = fresh_file_id (); fanout; root = Leaf leaf; entries = 0; distinct = 0;
    next_node_id = 1; nleaves = 1 }

let file_id t = t.id
let fanout t = t.fanout
let entry_count t = t.entries
let key_count t = t.distinct
let leaf_count t = t.nleaves

let fresh_node_id t =
  let id = t.next_node_id in
  t.next_node_id <- id + 1;
  id

let rec height_of = function
  | Leaf _ -> 1
  | Internal n -> 1 + height_of n.children.(0)

let height t = height_of t.root

(* Index of the first element of [a] strictly greater than [key], i.e. the
   number of elements <= key. *)
let upper_bound a key =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare a.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Index of the first element >= key. *)
let lower_bound a key =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare a.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

(* Result of inserting below: either done in place, or the node split and
   the new right sibling (with its separator key) must be added above. *)
type split = No_split | Split of Value.t * node

let split_leaf t lf =
  let n = Array.length lf.keys in
  let mid = n / 2 in
  let right =
    { lid = fresh_node_id t;
      keys = Array.sub lf.keys mid (n - mid);
      vals = Array.sub lf.vals mid (n - mid);
      next = lf.next }
  in
  lf.keys <- Array.sub lf.keys 0 mid;
  lf.vals <- Array.sub lf.vals 0 mid;
  lf.next <- Some right;
  t.nleaves <- t.nleaves + 1;
  Split (right.keys.(0), Leaf right)

let split_internal t nd =
  let n = Array.length nd.children in
  let mid = n / 2 in
  (* children mid..n-1 move right; separator between halves is seps.(mid-1) *)
  let sep = nd.seps.(mid - 1) in
  let right =
    { iid = fresh_node_id t;
      seps = Array.sub nd.seps mid (Array.length nd.seps - mid);
      children = Array.sub nd.children mid (n - mid) }
  in
  nd.seps <- Array.sub nd.seps 0 (mid - 1);
  nd.children <- Array.sub nd.children 0 mid;
  Split (sep, Internal right)

let rec insert_into t node key rid =
  match node with
  | Leaf lf ->
    let pos = lower_bound lf.keys key in
    if pos < Array.length lf.keys && Value.equal lf.keys.(pos) key then begin
      lf.vals.(pos) <- rid :: lf.vals.(pos);
      t.entries <- t.entries + 1;
      No_split
    end else begin
      lf.keys <- array_insert lf.keys pos key;
      lf.vals <- array_insert lf.vals pos [ rid ];
      t.entries <- t.entries + 1;
      t.distinct <- t.distinct + 1;
      if Array.length lf.keys > t.fanout then split_leaf t lf else No_split
    end
  | Internal nd ->
    let pos = upper_bound nd.seps key in
    (match insert_into t nd.children.(pos) key rid with
     | No_split -> No_split
     | Split (sep, right) ->
       nd.seps <- array_insert nd.seps pos sep;
       nd.children <- array_insert nd.children (pos + 1) right;
       if Array.length nd.children > t.fanout then split_internal t nd
       else No_split)

let insert t key rid =
  if Value.is_null key then invalid_arg "Btree.insert: Null key";
  match insert_into t t.root key rid with
  | No_split -> ()
  | Split (sep, right) ->
    let root =
      { iid = fresh_node_id t; seps = [| sep |]; children = [| t.root; right |] }
    in
    t.root <- Internal root

let rec find_leaf node key =
  match node with
  | Leaf lf -> lf
  | Internal nd -> find_leaf nd.children.(upper_bound nd.seps key) key

let rec leftmost_leaf = function
  | Leaf lf -> lf
  | Internal nd -> leftmost_leaf nd.children.(0)

let lookup t key =
  let lf = find_leaf t.root key in
  let pos = lower_bound lf.keys key in
  if pos < Array.length lf.keys && Value.equal lf.keys.(pos) key then
    lf.vals.(pos)
  else []

let range t ?lo ?hi f =
  let start =
    match lo with
    | Some k -> find_leaf t.root k
    | None -> leftmost_leaf t.root
  in
  let rec walk lf =
    let n = Array.length lf.keys in
    let start_pos = match lo with Some k -> lower_bound lf.keys k | None -> 0 in
    let continue = ref true in
    for i = start_pos to n - 1 do
      if !continue then begin
        let key = lf.keys.(i) in
        match hi with
        | Some h when Value.compare key h > 0 -> continue := false
        | _ -> f key lf.vals.(i)
      end
    done;
    if !continue then
      match lf.next with Some nxt -> walk nxt | None -> ()
  in
  walk start

let touch_page t ~pool ~clock page =
  if not (Buffer_pool.access pool ~file:t.id ~page) then
    Sim_clock.charge_rand_read clock 1

let probe t ~pool ~clock ?lo ?hi () =
  (* Root-to-leaf descent. *)
  let rec descend node =
    match node with
    | Leaf lf ->
      touch_page t ~pool ~clock lf.lid;
      lf
    | Internal nd ->
      touch_page t ~pool ~clock nd.iid;
      let pos = match lo with Some k -> upper_bound nd.seps k | None -> 0 in
      descend nd.children.(pos)
  in
  let start = descend t.root in
  let acc = ref [] in
  let rec walk lf first =
    if not first then touch_page t ~pool ~clock lf.lid;
    let n = Array.length lf.keys in
    let start_pos = match lo with Some k -> lower_bound lf.keys k | None -> 0 in
    let continue = ref true in
    for i = start_pos to n - 1 do
      if !continue then begin
        let key = lf.keys.(i) in
        match hi with
        | Some h when Value.compare key h > 0 -> continue := false
        | _ -> acc := List.rev_append lf.vals.(i) !acc
      end
    done;
    Sim_clock.charge_cpu_tuples clock (max 1 (n - start_pos));
    if !continue then
      match lf.next with Some nxt -> walk nxt false | None -> ()
  in
  walk start true;
  List.rev !acc

let check t =
  let ( let* ) r f = Result.bind r f in
  let rec check_sorted a i =
    if i + 1 >= Array.length a then Ok ()
    else if Value.compare a.(i) a.(i + 1) >= 0 then Error "unsorted keys"
    else check_sorted a (i + 1)
  in
  let rec go node ~is_root =
    match node with
    | Leaf lf ->
      let* () = check_sorted lf.keys 0 in
      if Array.length lf.keys > t.fanout then Error "leaf overflow" else Ok 1
    | Internal nd ->
      let nc = Array.length nd.children in
      if nc < 2 then Error "internal underflow"
      else if nc > t.fanout then Error "internal overflow"
      else if Array.length nd.seps <> nc - 1 then Error "sep/child mismatch"
      else
        let* () = check_sorted nd.seps 0 in
        let rec depths i acc =
          if i >= nc then Ok acc
          else
            let* h = go nd.children.(i) ~is_root:false in
            match acc with
            | Some h0 when h0 <> h -> Error "unbalanced"
            | _ -> depths (i + 1) (Some h)
        in
        let* d = depths 0 None in
        ignore is_root;
        (match d with Some h -> Ok (h + 1) | None -> Error "no children")
  in
  Result.map (fun (_ : int) -> ()) (go t.root ~is_root:true)
