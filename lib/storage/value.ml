type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int

type ty = TBool | TInt | TFloat | TString | TDate

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | (Bool _ | Int _ | Float _ | String _ | Date _), _ ->
    invalid_arg "Value.compare: incompatible types"

let equal a b =
  match a, b with
  | Null, Null -> true
  | Null, _ | _, Null -> false
  | _ -> compare a b = 0

let hash v =
  match v with
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (float_of_int d) lxor 0x5bd1

let type_of = function
  | Null -> invalid_arg "Value.type_of: Null"
  | Bool _ -> TBool
  | Int _ -> TInt
  | Float _ -> TFloat
  | String _ -> TString
  | Date _ -> TDate

let byte_size = function
  | Null -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Float _ -> 8
  | String s -> 4 + String.length s
  | Date _ -> 4

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Bool b -> if b then 1.0 else 0.0
  | Date d -> float_of_int d
  | Null -> invalid_arg "Value.to_float: Null"
  | String _ -> invalid_arg "Value.to_float: String"

let of_float ty f =
  match ty with
  | TInt -> Int (int_of_float (Float.round f))
  | TFloat -> Float f
  | TBool -> Bool (f <> 0.0)
  | TDate -> Date (int_of_float (Float.round f))
  | TString -> invalid_arg "Value.of_float: TString"

let is_null = function Null -> true | _ -> false

(* Civil-date arithmetic (proleptic Gregorian), Howard Hinnant's algorithm. *)
let days_from_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (m + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + d - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146097 + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - (365 * yoe + yoe / 4 - yoe / 100) in
  let mp = (5 * doy + 2) / 153 in
  let d = doy - (153 * mp + 2) / 5 + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let date_of_string s =
  match String.split_on_char '-' s with
  | [ ys; ms; ds ] ->
    (try
       let y = int_of_string ys and m = int_of_string ms and d = int_of_string ds in
       if m < 1 || m > 12 || d < 1 || d > 31 then
         invalid_arg ("Value.date_of_string: " ^ s)
       else Date (days_from_civil ~y ~m ~d)
     with Failure _ -> invalid_arg ("Value.date_of_string: " ^ s))
  | _ -> invalid_arg ("Value.date_of_string: " ^ s)

let date_to_string days =
  let y, m, d = civil_from_days days in
  Printf.sprintf "%04d-%02d-%02d" y m d

let pp fmt = function
  | Null -> Fmt.string fmt "NULL"
  | Bool b -> Fmt.bool fmt b
  | Int i -> Fmt.int fmt i
  | Float f -> Fmt.pf fmt "%.4f" f
  | String s -> Fmt.pf fmt "%s" s
  | Date d -> Fmt.string fmt (date_to_string d)

let to_string v = Fmt.str "%a" pp v

let pp_ty fmt ty =
  Fmt.string fmt
    (match ty with
     | TBool -> "BOOL"
     | TInt -> "INT"
     | TFloat -> "FLOAT"
     | TString -> "STRING"
     | TDate -> "DATE")

let ty_to_string ty = Fmt.str "%a" pp_ty ty

let add a b =
  match a, b with
  | Null, v | v, Null -> v
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Int x, Float y | Float y, Int x -> Float (float_of_int x +. y)
  | _ -> invalid_arg "Value.add: non-numeric"

let min_value a b =
  match a, b with
  | Null, v | v, Null -> v
  | _ -> if compare a b <= 0 then a else b

let max_value a b =
  match a, b with
  | Null, v | v, Null -> v
  | _ -> if compare a b >= 0 then a else b
