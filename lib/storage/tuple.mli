(** Tuples: fixed-arity arrays of values. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t
val concat : t -> t -> t
val project : t -> int list -> t

(** Actual byte footprint of this tuple (header + per-value sizes). *)
val byte_size : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
