type t = Value.t array

let arity = Array.length
let get t i = t.(i)
let concat = Array.append
let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let header_bytes = 8

let byte_size t =
  header_bytes + Array.fold_left (fun acc v -> acc + Value.byte_size v) 0 t

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let pp fmt t = Fmt.pf fmt "[%a]" (Fmt.array ~sep:(Fmt.any "|") Value.pp) t
let to_string t = Fmt.str "%a" pp t
