(** In-memory B+-tree secondary index.

    Keys are {!Value.t}; each key maps to the rids of the heap-file tuples
    with that key.  Node visits during cost-accounted probes go through the
    {!Buffer_pool} (each node is a logical page of the index file), so
    repeated probes of a hot index are cheap, as on a real system. *)

type t

(** [create schema_ty ()] builds an empty index.  [fanout] is the maximum
    number of keys per node (default 64 ≈ a 4 KB page of key/pointer
    pairs). *)
val create : ?fanout:int -> unit -> t

val file_id : t -> int
val fanout : t -> int

val insert : t -> Value.t -> int -> unit

val entry_count : t -> int

(** Number of distinct keys. *)
val key_count : t -> int

val height : t -> int
val leaf_count : t -> int

(** Exact lookups / range scans without cost accounting. *)
val lookup : t -> Value.t -> int list

(** [range t ?lo ?hi f] calls [f key rids] for keys in the (inclusive)
    interval; [None] bounds are open ends. *)
val range : t -> ?lo:Value.t -> ?hi:Value.t -> (Value.t -> int list -> unit) -> unit

(** Cost-accounted probe: descends root-to-leaf and walks leaves covering
    the interval, charging a random read per buffer-pool miss on index
    pages.  Returns the matching rids in key order. *)
val probe :
  t -> pool:Buffer_pool.t -> clock:Sim_clock.t ->
  ?lo:Value.t -> ?hi:Value.t -> unit -> int list

(** Structural well-formedness check for tests: sorted keys, balanced
    depth, fanout bounds.  Returns an error description if violated. *)
val check : t -> (unit, string) result
