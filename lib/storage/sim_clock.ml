type model = {
  seq_read_ms : float;
  rand_read_ms : float;
  write_ms : float;
  cpu_tuple_ms : float;
  hash_tuple_ms : float;
  sort_tuple_ms : float;
  opt_per_plan_ms : float;
}

let default_model = {
  seq_read_ms = 2.0;
  rand_read_ms = 8.0;
  write_ms = 3.0;
  cpu_tuple_ms = 0.004;
  hash_tuple_ms = 0.003;
  sort_tuple_ms = 0.002;
  opt_per_plan_ms = 0.5;
}

type counters = {
  seq_reads : int;
  rand_reads : int;
  writes : int;
  cpu_ms : float;
  opt_ms : float;
  opt_invocations : int;
}

type t = {
  m : model;
  mutable c : counters;
}

let zero_counters =
  { seq_reads = 0; rand_reads = 0; writes = 0; cpu_ms = 0.0; opt_ms = 0.0;
    opt_invocations = 0 }

let create ?(model = default_model) () = { m = model; c = zero_counters }
let model t = t.m

let charge_seq_read t n = t.c <- { t.c with seq_reads = t.c.seq_reads + n }
let charge_rand_read t n = t.c <- { t.c with rand_reads = t.c.rand_reads + n }
let charge_write t n = t.c <- { t.c with writes = t.c.writes + n }

let charge_cpu_ms t ms = t.c <- { t.c with cpu_ms = t.c.cpu_ms +. ms }

let charge_cpu_tuples t n = charge_cpu_ms t (float_of_int n *. t.m.cpu_tuple_ms)
let charge_hash_tuples t n = charge_cpu_ms t (float_of_int n *. t.m.hash_tuple_ms)
let charge_sort_tuples t n = charge_cpu_ms t (float_of_int n *. t.m.sort_tuple_ms)

let charge_optimizer t ~plans =
  let ms = float_of_int plans *. t.m.opt_per_plan_ms in
  t.c <- { t.c with
           opt_ms = t.c.opt_ms +. ms;
           opt_invocations = t.c.opt_invocations + 1 }

let elapsed_of m c =
  (float_of_int c.seq_reads *. m.seq_read_ms)
  +. (float_of_int c.rand_reads *. m.rand_read_ms)
  +. (float_of_int c.writes *. m.write_ms)
  +. c.cpu_ms +. c.opt_ms

let elapsed_ms t = elapsed_of t.m t.c

let counters t = t.c
let snapshot t = t.c

let since t c0 =
  let c = t.c in
  elapsed_of t.m
    { seq_reads = c.seq_reads - c0.seq_reads;
      rand_reads = c.rand_reads - c0.rand_reads;
      writes = c.writes - c0.writes;
      cpu_ms = c.cpu_ms -. c0.cpu_ms;
      opt_ms = c.opt_ms -. c0.opt_ms;
      opt_invocations = c.opt_invocations - c0.opt_invocations }

let reset t = t.c <- zero_counters

let pp_counters fmt c =
  Fmt.pf fmt
    "{seq_reads=%d; rand_reads=%d; writes=%d; cpu=%.2fms; opt=%.2fms (%d invocations)}"
    c.seq_reads c.rand_reads c.writes c.cpu_ms c.opt_ms c.opt_invocations
