(** LRU buffer pool.

    Tuples live in memory (this is a simulator), so the pool's only job is
    deciding whether a page access is a *hit* (free) or a *miss* (charged to
    the {!Sim_clock} by the caller).  Pages are identified by
    [(file_id, page_no)]. *)

type t

val create : capacity_pages:int -> t

val capacity : t -> int

(** [access t ~file ~page] touches a page, returns [true] on a hit and
    [false] on a miss (the page is then resident until evicted). *)
val access : t -> file:int -> page:int -> bool

(** Drop every cached page of [file] (used when temp tables are deleted). *)
val invalidate_file : t -> int -> unit

val hits : t -> int
val misses : t -> int
val resident : t -> int
