(** Typed runtime values.

    Every cell of every tuple in the engine is a [Value.t].  Dates are
    stored as a count of days since 1970-01-01 so that range predicates on
    dates are plain integer comparisons. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int  (** days since 1970-01-01 *)

type ty = TBool | TInt | TFloat | TString | TDate

(** Total order over values.  [Null] sorts before everything; [Int] and
    [Float] compare numerically against each other; comparing other
    cross-type pairs raises [Invalid_argument]. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Hash suitable for hash joins / hash aggregation: numerically equal
    [Int]/[Float] values hash identically. *)
val hash : t -> int

(** Type of a (non-null) value. *)
val type_of : t -> ty

(** Storage footprint in bytes, used for page-capacity and memory-demand
    accounting. *)
val byte_size : t -> int

(** Numeric view of a value ([Bool]s are 0/1, [Date]s their day number).
    Raises [Invalid_argument] on [String] and [Null]. *)
val to_float : t -> float

(** Inverse of [to_float] for a given target type; floats destined for
    integer-like columns are rounded. *)
val of_float : ty -> float -> t

val is_null : t -> bool

(** [date_of_string "1994-01-01"] parses an ISO date into [Date].
    Raises [Invalid_argument] on malformed input. *)
val date_of_string : string -> t

(** Renders [Date] values back to ISO format. *)
val date_to_string : int -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string

(** Addition over numeric values; used by the aggregate operators. *)
val add : t -> t -> t

(** Minimum / maximum under [compare], treating [Null] as absent. *)
val min_value : t -> t -> t
val max_value : t -> t -> t
