(** Relation schemas.

    A schema is an ordered list of columns.  Columns are addressed either by
    position or by a (possibly qualified) name such as ["lineitem.l_qty"].
    Qualifiers are table aliases attached when a scan enters a query. *)

type column = {
  name : string;        (** bare column name, e.g. ["l_qty"] *)
  qualifier : string;   (** table/alias qualifier, [""] if none *)
  ty : Value.ty;
  avg_width : int;      (** declared average byte width, used for sizing *)
}

type t

val make : column list -> t
val columns : t -> column list
val arity : t -> int
val column : t -> int -> column

(** [qualify schema alias] sets the qualifier of every column. *)
val qualify : t -> string -> t

(** Concatenation, for join outputs. *)
val concat : t -> t -> t

(** [project schema idxs] keeps only the columns at [idxs], in order. *)
val project : t -> int list -> t

(** Resolve a column reference.  ["q.c"] matches qualifier+name; a bare
    ["c"] matches any column with that name and raises [Ambiguous] if
    several match.  @raise Not_found if no column matches. *)
val index_of : t -> string -> int

exception Ambiguous of string

(** Average tuple width in bytes (sum of column widths + header). *)
val avg_tuple_width : t -> int

(** Column helper with a default width derived from the type (strings get
    [width] which defaults to 16). *)
val col : ?qualifier:string -> ?width:int -> string -> Value.ty -> column

val pp : Format.formatter -> t -> unit
