let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let encode_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string buf "\"\""
         else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let encode_line fields = String.concat "," (List.map encode_field fields)

(* Streaming decoder over a string, tracking quote state; returns the list
   of records. *)
let decode_all src =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length src in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec plain i =
    if i >= n then (if Buffer.length buf > 0 || !fields <> [] then flush_record ())
    else
      match src.[i] with
      | ',' -> flush_field (); plain (i + 1)
      | '\n' -> flush_record (); plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv: unterminated quoted field"
    else
      match src.[i] with
      | '"' when i + 1 < n && src.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !records

let decode_line s =
  match decode_all s with
  | [ record ] -> record
  | [] -> [ "" ]
  | _ -> failwith "Csv.decode_line: multiple records"

let write_file path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       List.iter
         (fun record ->
            output_string oc (encode_line record);
            output_char oc '\n')
         records)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
       let len = in_channel_length ic in
       let content = really_input_string ic len in
       decode_all content)
