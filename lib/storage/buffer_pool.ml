type key = int * int

type t = {
  capacity : int;
  resident : (key, unit) Hashtbl.t;
  pending : (key, int) Hashtbl.t;  (* queue occurrences per key *)
  order : key Queue.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity_pages =
  if capacity_pages < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  { capacity = capacity_pages;
    resident = Hashtbl.create (2 * capacity_pages);
    pending = Hashtbl.create (2 * capacity_pages);
    order = Queue.create ();
    hits = 0;
    misses = 0 }

let capacity t = t.capacity

(* The lazy-deletion queue grows by one entry per access; compact it when
   it gets much larger than the resident set, or a long-running scan over a
   cached table would grow it without bound. *)
let compact t =
  (* Queue.fold visits oldest-first; prepending yields a newest-first list.
     Keeping each key's first (i.e. newest) occurrence and reversing gives
     the resident keys oldest-to-newest — the queue's invariant. *)
  let newest_first = Queue.fold (fun acc k -> k :: acc) [] t.order in
  let seen = Hashtbl.create (2 * t.capacity) in
  let kept_newest_first =
    List.filter
      (fun k ->
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.replace seen k ();
           Hashtbl.mem t.resident k
         end)
      newest_first
  in
  Queue.clear t.order;
  Hashtbl.reset t.pending;
  List.iter
    (fun k ->
       Queue.push k t.order;
       Hashtbl.replace t.pending k 1)
    (List.rev kept_newest_first)

let push_occurrence t key =
  Queue.push key t.order;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.pending key) in
  Hashtbl.replace t.pending key (n + 1);
  if Queue.length t.order > 8 * t.capacity + 64 then compact t

(* Pop queue entries; an entry is the key's live (least-recent) occurrence
   only when it is the last pending one.  Evict that key if resident. *)
let rec evict_lru t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some key ->
    let n = Option.value ~default:0 (Hashtbl.find_opt t.pending key) in
    if n <= 1 then Hashtbl.remove t.pending key
    else Hashtbl.replace t.pending key (n - 1);
    if n <= 1 && Hashtbl.mem t.resident key then Hashtbl.remove t.resident key
    else evict_lru t

let access t ~file ~page =
  let key = (file, page) in
  let hit = Hashtbl.mem t.resident key in
  if hit then t.hits <- t.hits + 1
  else begin
    t.misses <- t.misses + 1;
    Hashtbl.replace t.resident key ()
  end;
  push_occurrence t key;
  while Hashtbl.length t.resident > t.capacity do
    evict_lru t
  done;
  hit

let invalidate_file t file =
  let doomed =
    Hashtbl.fold (fun (f, p) () acc -> if f = file then (f, p) :: acc else acc)
      t.resident []
  in
  List.iter (Hashtbl.remove t.resident) doomed

let hits t = t.hits
let misses t = t.misses
let resident t = Hashtbl.length t.resident
