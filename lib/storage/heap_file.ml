type t = {
  id : int;
  schema : Schema.t;
  mutable data : Tuple.t array;
  mutable len : int;
  per_page : int;
}

let page_size_bytes = 4096

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let create schema =
  let width = max 1 (Schema.avg_tuple_width schema) in
  let per_page = max 1 (page_size_bytes / width) in
  { id = fresh_id (); schema; data = Array.make 64 [||]; len = 0; per_page }

let file_id t = t.id
let schema t = t.schema
let tuples_per_page t = t.per_page

let append t tuple =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) [||] in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- tuple;
  t.len <- t.len + 1

let tuple_count t = t.len
let page_count t = (t.len + t.per_page - 1) / t.per_page

let get t rid =
  if rid < 0 || rid >= t.len then invalid_arg "Heap_file.get: bad rid";
  t.data.(rid)

let fetch t ~pool ~clock rid =
  let page = rid / t.per_page in
  if not (Buffer_pool.access pool ~file:t.id ~page) then
    Sim_clock.charge_rand_read clock 1;
  Sim_clock.charge_cpu_tuples clock 1;
  get t rid

let scan t ~pool ~clock f =
  for rid = 0 to t.len - 1 do
    if rid mod t.per_page = 0 then begin
      let page = rid / t.per_page in
      if not (Buffer_pool.access pool ~file:t.id ~page) then
        Sim_clock.charge_seq_read clock 1
    end;
    Sim_clock.charge_cpu_tuples clock 1;
    f rid t.data.(rid)
  done

let scan_range t ~pool ~clock ~from_rid ~to_rid f =
  let lo = max 0 from_rid and hi = min t.len to_rid in
  let touched = Hashtbl.create 16 in
  for rid = lo to hi - 1 do
    let page = rid / t.per_page in
    if not (Hashtbl.mem touched page) then begin
      Hashtbl.replace touched page ();
      if not (Buffer_pool.access pool ~file:t.id ~page) then
        Sim_clock.charge_seq_read clock 1
    end;
    Sim_clock.charge_cpu_tuples clock 1;
    f rid t.data.(rid)
  done

let iter t f =
  for rid = 0 to t.len - 1 do
    f rid t.data.(rid)
  done

let charge_full_write t ~clock = Sim_clock.charge_write clock (page_count t)

let retain t keep =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    if keep t.data.(i) then begin
      t.data.(!kept) <- t.data.(i);
      incr kept
    end
  done;
  let deleted = t.len - !kept in
  (* release references beyond the new length *)
  for i = !kept to t.len - 1 do
    t.data.(i) <- [||]
  done;
  t.len <- !kept;
  deleted
