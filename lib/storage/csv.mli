(** Minimal RFC-4180-style CSV reading and writing.

    Fields containing commas, quotes or newlines are quoted; quotes are
    doubled.  Used by the persistence layer and the CLI's COPY. *)

val encode_line : string list -> string

(** @raise Failure on malformed quoting. *)
val decode_line : string -> string list

val write_file : string -> string list list -> unit

(** Reads the whole file; handles quoted fields spanning lines. *)
val read_file : string -> string list list
