type column = {
  name : string;
  qualifier : string;
  ty : Value.ty;
  avg_width : int;
}

type t = { cols : column array }

exception Ambiguous of string

let make cols = { cols = Array.of_list cols }
let columns t = Array.to_list t.cols
let arity t = Array.length t.cols
let column t i = t.cols.(i)

let qualify t alias =
  { cols = Array.map (fun c -> { c with qualifier = alias }) t.cols }

let concat a b = { cols = Array.append a.cols b.cols }

let project t idxs = { cols = Array.of_list (List.map (fun i -> t.cols.(i)) idxs) }

let split_ref r =
  match String.index_opt r '.' with
  | None -> ("", r)
  | Some i ->
    (String.sub r 0 i, String.sub r (i + 1) (String.length r - i - 1))

let index_of t r =
  let q, n = split_ref r in
  let matches = ref [] in
  Array.iteri
    (fun i c ->
       if c.name = n && (q = "" || c.qualifier = q) then matches := i :: !matches)
    t.cols;
  match !matches with
  | [ i ] -> i
  | [] -> raise Not_found
  | _ -> raise (Ambiguous r)

let header_bytes = 8

let avg_tuple_width t =
  header_bytes + Array.fold_left (fun acc c -> acc + c.avg_width) 0 t.cols

let default_width ty =
  match ty with
  | Value.TBool -> 1
  | Value.TInt -> 8
  | Value.TFloat -> 8
  | Value.TDate -> 4
  | Value.TString -> 16

let col ?(qualifier = "") ?width name ty =
  let avg_width = match width with Some w -> w | None -> default_width ty in
  { name; qualifier; ty; avg_width }

let pp fmt t =
  let pp_col fmt c =
    if c.qualifier = "" then Fmt.pf fmt "%s:%a" c.name Value.pp_ty c.ty
    else Fmt.pf fmt "%s.%s:%a" c.qualifier c.name Value.pp_ty c.ty
  in
  Fmt.pf fmt "(%a)" (Fmt.array ~sep:(Fmt.any ", ") pp_col) t.cols
