(** Simulated execution clock.

    The paper reports wall-clock times on a Paradise cluster.  We replace
    the cluster with a deterministic cost ledger: every operator charges the
    clock for the page I/Os and per-tuple CPU work it performs, and the
    "execution time" of a query is the ledger total.  The optimizer uses
    the same rate constants for its estimates, so estimation error comes
    only from cardinality/selectivity mistakes — exactly the error source
    the paper studies. *)

type model = {
  seq_read_ms : float;   (** sequential page read *)
  rand_read_ms : float;  (** random page read (index probes) *)
  write_ms : float;      (** page write *)
  cpu_tuple_ms : float;  (** touching one tuple (predicate eval, copy) *)
  hash_tuple_ms : float; (** hashing/inserting one tuple into a table *)
  sort_tuple_ms : float; (** one comparison-ish unit of sort work *)
  opt_per_plan_ms : float;
  (** optimizer cost per enumerated join sub-plan; used both to charge the
      clock when the optimizer (re-)runs and to compute the paper's
      [T_opt,estimated] calibration. *)
}

val default_model : model

type t

val create : ?model:model -> unit -> t
val model : t -> model

val charge_seq_read : t -> int -> unit
val charge_rand_read : t -> int -> unit
val charge_write : t -> int -> unit
val charge_cpu_tuples : t -> int -> unit
val charge_hash_tuples : t -> int -> unit
val charge_sort_tuples : t -> int -> unit

(** Arbitrary CPU charge in milliseconds (statistics collection, optimizer
    invocations). *)
val charge_cpu_ms : t -> float -> unit

(** Charge one optimizer invocation that enumerated [plans] sub-plans; the
    charge is also recorded separately so reports can show re-optimization
    overhead. *)
val charge_optimizer : t -> plans:int -> unit

val elapsed_ms : t -> float

(** Ledger breakdown, for reports and tests. *)
type counters = {
  seq_reads : int;
  rand_reads : int;
  writes : int;
  cpu_ms : float;
  opt_ms : float;
  opt_invocations : int;
}

val counters : t -> counters

(** [since t c] is the time elapsed after snapshot [c] was taken. *)
val snapshot : t -> counters
val since : t -> counters -> float

val reset : t -> unit
val pp_counters : Format.formatter -> counters -> unit
