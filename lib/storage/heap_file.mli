(** Heap files: the engine's table storage.

    Tuples are kept in an in-memory growable array divided into fixed-size
    logical pages; page accesses are routed through a {!Buffer_pool} and
    charged to a {!Sim_clock}, so scans and fetches cost what they would on
    disk.  The number of tuples per page is derived from the schema's
    average tuple width and a 4 KB page. *)

type t

(** Globally unique id, used as the buffer-pool file id. *)
val file_id : t -> int

val page_size_bytes : int

val create : Schema.t -> t
val schema : t -> Schema.t

val append : t -> Tuple.t -> unit

val tuple_count : t -> int
val page_count : t -> int
val tuples_per_page : t -> int

(** Direct access without I/O accounting (tests, statistics bootstrap). *)
val get : t -> int -> Tuple.t

(** [fetch t ~pool ~clock rid] reads the tuple's page through the buffer
    pool, charging a random read on a miss. *)
val fetch : t -> pool:Buffer_pool.t -> clock:Sim_clock.t -> int -> Tuple.t

(** [scan t ~pool ~clock f] calls [f rid tuple] for every tuple, charging a
    sequential read per page miss and CPU per tuple. *)
val scan :
  t -> pool:Buffer_pool.t -> clock:Sim_clock.t -> (int -> Tuple.t -> unit) -> unit

(** [iter t f] iterates without any cost accounting. *)
val iter : t -> (int -> Tuple.t -> unit) -> unit

(** [scan_range t ~pool ~clock ~from_rid ~to_rid f] scans rids
    [from_rid, to_rid) sequentially with the same cost accounting as
    {!scan} (one sequential read per page miss, CPU per tuple).  Used by
    the partitioned-parallel striped scan. *)
val scan_range :
  t -> pool:Buffer_pool.t -> clock:Sim_clock.t -> from_rid:int -> to_rid:int ->
  (int -> Tuple.t -> unit) -> unit

(** Charge the cost of writing the whole file out (used when an operator
    materializes its output). *)
val charge_full_write : t -> clock:Sim_clock.t -> unit

(** [retain t keep] compacts the file, keeping only tuples satisfying
    [keep]; returns how many were deleted.  Rids are reassigned, so any
    index on the table must be rebuilt afterwards. *)
val retain : t -> (Tuple.t -> bool) -> int
