(** Deterministic splitmix64 random-number generator.

    Every randomized component (data generation, reservoir sampling, FM
    sketches) takes an explicit [Rng.t] so runs are reproducible. *)

type t

val create : int -> t

(** Raw next 64-bit state step. *)
val next_int64 : t -> int64

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Independent generator seeded from this one. *)
val split : t -> t

(** Fisher–Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit
