module Value = Mqr_storage.Value

(* 64-bit mix to decorrelate Value.hash outputs. *)
let mix64 h =
  let open Int64 in
  let z = of_int h in
  let z = mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  logxor z (shift_right_logical z 33)

module Fm = struct
  type t = {
    maps : int;
    sketch : int array;  (* bitmaps of observed trailing-rank positions *)
  }

  let phi = 0.77351

  let create ?(maps = 64) () =
    if maps < 1 then invalid_arg "Distinct.Fm.create";
    { maps; sketch = Array.make maps 0 }

  let trailing_zeros x =
    if Int64.equal x 0L then 62
    else begin
      let rec go i =
        if Int64.equal (Int64.logand (Int64.shift_right_logical x i) 1L) 1L then i
        else go (i + 1)
      in
      go 0
    end

  let add t v =
    let h = mix64 (Value.hash v) in
    let bucket = Int64.to_int (Int64.rem (Int64.logand h 0x7FFFFFFFFFFFFFFFL)
                                 (Int64.of_int t.maps)) in
    let rest = Int64.shift_right_logical h 8 in
    let r = trailing_zeros rest in
    t.sketch.(bucket) <- t.sketch.(bucket) lor (1 lsl min r 61)

  (* Position of lowest zero bit. *)
  let lowest_zero bits =
    let rec go i = if bits land (1 lsl i) = 0 then i else go (i + 1) in
    go 0

  let estimate t =
    let sum = Array.fold_left (fun acc b -> acc + lowest_zero b) 0 t.sketch in
    let mean = float_of_int sum /. float_of_int t.maps in
    float_of_int t.maps /. phi *. (2.0 ** mean)
end

type t = {
  exact_limit : int;
  exact : (int, unit) Hashtbl.t;
  fm : Fm.t;
  mutable overflowed : bool;
}

let create ?(exact_limit = 4096) () =
  { exact_limit;
    exact = Hashtbl.create 256;
    fm = Fm.create ();
    overflowed = false }

let add t v =
  Fm.add t.fm v;
  if not t.overflowed then begin
    let h = Int64.to_int (mix64 (Value.hash v)) in
    if not (Hashtbl.mem t.exact h) then begin
      Hashtbl.replace t.exact h ();
      if Hashtbl.length t.exact > t.exact_limit then t.overflowed <- true
    end
  end

let is_exact t = not t.overflowed

let estimate t =
  if t.overflowed then Fm.estimate t.fm
  else float_of_int (Hashtbl.length t.exact)
