type 'a t = {
  rng : Rng.t;
  cap : int;
  mutable items : 'a array;
  mutable n : int;     (* filled slots *)
  mutable seen : int;
}

let create ?(rng = Rng.create 0x5eed) ~capacity () =
  if capacity < 1 then invalid_arg "Reservoir.create: capacity < 1";
  { rng; cap = capacity; items = [||]; n = 0; seen = 0 }

let add t x =
  t.seen <- t.seen + 1;
  if t.n < t.cap then begin
    if t.n = Array.length t.items then begin
      let bigger = Array.make (max 8 (min t.cap (2 * max 1 t.n))) x in
      Array.blit t.items 0 bigger 0 t.n;
      t.items <- bigger
    end;
    t.items.(t.n) <- x;
    t.n <- t.n + 1
  end else begin
    let j = Rng.int t.rng t.seen in
    if j < t.cap then t.items.(j) <- x
  end

let seen t = t.seen
let sample t = Array.sub t.items 0 t.n
let capacity t = t.cap
