type kind = Equi_width | Equi_depth | Maxdiff | Serial | V_optimal

let kind_to_string = function
  | Equi_width -> "equi-width"
  | Equi_depth -> "equi-depth"
  | Maxdiff -> "maxdiff"
  | Serial -> "serial"
  | V_optimal -> "v-optimal"

type bucket = {
  lo : float;
  hi : float;
  rows : float;
  distinct : float;
}

type t = {
  kind : kind;
  bkts : bucket array;
  total : float;
}

let kind t = t.kind
let buckets t = Array.to_list t.bkts
let total_rows t = t.total
let distinct t = Array.fold_left (fun acc b -> acc +. b.distinct) 0.0 t.bkts

let min_value t =
  if Array.length t.bkts = 0 then None else Some t.bkts.(0).lo

let max_value t =
  let n = Array.length t.bkts in
  if n = 0 then None else Some t.bkts.(n - 1).hi

(* Frequency table of a data array: sorted (value, count) pairs. *)
let freq_table data =
  let sorted = Array.copy data in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let v = sorted.(!i) in
    let j = ref !i in
    while !j < n && sorted.(!j) = v do incr j done;
    out := (v, !j - !i) :: !out;
    i := !j
  done;
  Array.of_list (List.rev !out)

let of_buckets kind bkts =
  let total = Array.fold_left (fun acc b -> acc +. b.rows) 0.0 bkts in
  { kind; bkts; total }

let build_equi_width ~buckets freqs =
  let n = Array.length freqs in
  if n = 0 then [||]
  else begin
    let lo = fst freqs.(0) and hi = fst freqs.(n - 1) in
    let nb = max 1 (min buckets n) in
    let width = (hi -. lo) /. float_of_int nb in
    if width <= 0.0 then
      [| { lo; hi; rows = Array.fold_left (fun a (_, c) -> a +. float_of_int c) 0.0 freqs;
           distinct = float_of_int n } |]
    else begin
      let out = ref [] in
      let idx = ref 0 in
      for b = 0 to nb - 1 do
        let b_hi = if b = nb - 1 then hi else lo +. (width *. float_of_int (b + 1)) in
        let rows = ref 0.0 and d = ref 0.0 in
        let v_lo = ref infinity and v_hi = ref neg_infinity in
        while
          !idx < n
          && (fst freqs.(!idx) < b_hi || (b = nb - 1 && fst freqs.(!idx) <= hi))
        do
          let v, c = freqs.(!idx) in
          rows := !rows +. float_of_int c;
          d := !d +. 1.0;
          if v < !v_lo then v_lo := v;
          if v > !v_hi then v_hi := v;
          incr idx
        done;
        if !rows > 0.0 then
          out := { lo = !v_lo; hi = !v_hi; rows = !rows; distinct = !d } :: !out
      done;
      Array.of_list (List.rev !out)
    end
  end

let build_equi_depth ~buckets freqs =
  let n = Array.length freqs in
  if n = 0 then [||]
  else begin
    let total = Array.fold_left (fun a (_, c) -> a +. float_of_int c) 0.0 freqs in
    let nb = max 1 (min buckets n) in
    let target = total /. float_of_int nb in
    let out = ref [] in
    let cur_rows = ref 0.0 and cur_d = ref 0.0 in
    let cur_lo = ref (fst freqs.(0)) in
    let flush hi =
      if !cur_rows > 0.0 then
        out := { lo = !cur_lo; hi; rows = !cur_rows; distinct = !cur_d } :: !out;
      cur_rows := 0.0;
      cur_d := 0.0
    in
    Array.iteri
      (fun i (v, c) ->
         if !cur_rows = 0.0 then cur_lo := v;
         cur_rows := !cur_rows +. float_of_int c;
         cur_d := !cur_d +. 1.0;
         if !cur_rows >= target && i < n - 1 then flush v)
      freqs;
    flush (fst freqs.(n - 1));
    Array.of_list (List.rev !out)
  end

(* MaxDiff(V,A): boundaries at the largest differences between the "areas"
   (frequency * spread) of adjacent distinct values. *)
let build_maxdiff ~buckets freqs =
  let n = Array.length freqs in
  if n = 0 then [||]
  else if n = 1 then
    let v, c = freqs.(0) in
    [| { lo = v; hi = v; rows = float_of_int c; distinct = 1.0 } |]
  else begin
    let area i =
      let v, c = freqs.(i) in
      let spread = if i < n - 1 then fst freqs.(i + 1) -. v else 1.0 in
      float_of_int c *. max spread 1e-9
    in
    let diffs =
      Array.init (n - 1) (fun i -> (Float.abs (area (i + 1) -. area i), i))
    in
    Array.sort (fun (a, _) (b, _) -> Float.compare b a) diffs;
    let nb = max 1 (min buckets n) in
    let split_after = Hashtbl.create 16 in
    Array.iteri
      (fun rank (_, i) -> if rank < nb - 1 then Hashtbl.replace split_after i ())
      diffs;
    let out = ref [] in
    let cur_rows = ref 0.0 and cur_d = ref 0.0 in
    let cur_lo = ref (fst freqs.(0)) in
    for i = 0 to n - 1 do
      let v, c = freqs.(i) in
      if !cur_rows = 0.0 then cur_lo := v;
      cur_rows := !cur_rows +. float_of_int c;
      cur_d := !cur_d +. 1.0;
      if Hashtbl.mem split_after i || i = n - 1 then begin
        out := { lo = !cur_lo; hi = v; rows = !cur_rows; distinct = !cur_d } :: !out;
        cur_rows := 0.0;
        cur_d := 0.0
      end
    done;
    Array.of_list (List.rev !out)
  end

(* Serial / end-biased: singleton buckets for the (buckets-1) most frequent
   values, one collective bucket (assumed uniform) for the rest. *)
let build_serial ~buckets freqs =
  let n = Array.length freqs in
  if n = 0 then [||]
  else begin
    let nb = max 2 buckets in
    let by_freq = Array.copy freqs in
    Array.sort (fun (_, c1) (_, c2) -> Int.compare c2 c1) by_freq;
    let top_count = min (nb - 1) n in
    let top = Hashtbl.create top_count in
    for i = 0 to top_count - 1 do
      Hashtbl.replace top (fst by_freq.(i)) ()
    done;
    let singles = ref [] in
    let rest_rows = ref 0.0 and rest_d = ref 0.0 in
    let rest_lo = ref infinity and rest_hi = ref neg_infinity in
    Array.iter
      (fun (v, c) ->
         if Hashtbl.mem top v then
           singles := { lo = v; hi = v; rows = float_of_int c; distinct = 1.0 } :: !singles
         else begin
           rest_rows := !rest_rows +. float_of_int c;
           rest_d := !rest_d +. 1.0;
           if v < !rest_lo then rest_lo := v;
           if v > !rest_hi then rest_hi := v
         end)
      freqs;
    let bkts =
      if !rest_rows > 0.0 then
        { lo = !rest_lo; hi = !rest_hi; rows = !rest_rows; distinct = !rest_d }
        :: !singles
      else !singles
    in
    let arr = Array.of_list bkts in
    Array.sort (fun b1 b2 -> Float.compare b1.lo b2.lo) arr;
    arr
  end

(* V-optimal(F): choose bucket boundaries minimising the total within-
   bucket variance of the frequencies, by the classic O(n^2 b) dynamic
   program.  Large domains are pre-reduced to at most [max_cells] cells so
   the DP stays cheap; this approximation is standard practice. *)
let build_voptimal ~buckets freqs =
  let max_cells = 256 in
  let cells =
    let n = Array.length freqs in
    if n <= max_cells then freqs
    else begin
      (* coalesce adjacent values into ~max_cells equal-width cells *)
      let lo = fst freqs.(0) and hi = fst freqs.(n - 1) in
      let w = (hi -. lo) /. float_of_int max_cells in
      let cells = Array.make max_cells (0.0, 0) in
      let counts = Array.make max_cells 0 in
      Array.iter
        (fun (v, c) ->
           let i = min (max_cells - 1) (int_of_float ((v -. lo) /. max w 1e-9)) in
           counts.(i) <- counts.(i) + c)
        freqs;
      Array.iteri (fun i c -> cells.(i) <- (lo +. (w *. float_of_int i), c)) counts;
      Array.of_list
        (List.filter (fun (_, c) -> c > 0) (Array.to_list cells))
    end
  in
  let n = Array.length cells in
  if n = 0 then [||]
  else begin
    let b = max 1 (min buckets n) in
    (* prefix sums for O(1) variance of any cell range *)
    let pre = Array.make (n + 1) 0.0 and pre2 = Array.make (n + 1) 0.0 in
    for i = 0 to n - 1 do
      let c = float_of_int (snd cells.(i)) in
      pre.(i + 1) <- pre.(i) +. c;
      pre2.(i + 1) <- pre2.(i) +. (c *. c)
    done;
    let sse i j =
      (* cells i..j inclusive *)
      let len = float_of_int (j - i + 1) in
      let sum = pre.(j + 1) -. pre.(i) in
      (pre2.(j + 1) -. pre2.(i)) -. (sum *. sum /. len)
    in
    let inf = infinity in
    let dp = Array.make_matrix (n + 1) (b + 1) inf in
    let cut = Array.make_matrix (n + 1) (b + 1) 0 in
    dp.(0).(0) <- 0.0;
    for j = 1 to n do
      for k = 1 to min j b do
        for i = k - 1 to j - 1 do
          let c = dp.(i).(k - 1) +. sse i (j - 1) in
          if c < dp.(j).(k) then begin
            dp.(j).(k) <- c;
            cut.(j).(k) <- i
          end
        done
      done
    done;
    (* walk the cuts back into bucket boundaries over [cells] *)
    let rec boundaries j k acc =
      if k = 0 then acc else boundaries cut.(j).(k) (k - 1) (cut.(j).(k) :: acc)
    in
    let starts = boundaries n b [] in
    let ranges =
      let rec pair = function
        | [ s ] -> [ (s, n - 1) ]
        | s :: (s' :: _ as rest) -> (s, s' - 1) :: pair rest
        | [] -> []
      in
      pair starts
    in
    (* convert cell ranges back to buckets over the original values *)
    let bucket_of (i, j) =
      let lo_v = fst cells.(i) and hi_v = fst cells.(j) in
      (* collect original frequencies within [lo_v, hi_of_cell j] *)
      let hi_bound =
        if j + 1 < n then fst cells.(j + 1) else infinity
      in
      let rows = ref 0.0 and d = ref 0.0 in
      let real_lo = ref infinity and real_hi = ref neg_infinity in
      Array.iter
        (fun (v, c) ->
           if v >= lo_v && v < hi_bound then begin
             rows := !rows +. float_of_int c;
             d := !d +. 1.0;
             if v < !real_lo then real_lo := v;
             if v > !real_hi then real_hi := v
           end)
        freqs;
      if !rows > 0.0 then
        Some { lo = !real_lo; hi = !real_hi; rows = !rows; distinct = !d }
      else begin
        ignore hi_v;
        None
      end
    in
    Array.of_list (List.filter_map bucket_of ranges)
  end

let build kind ~buckets data =
  let freqs = freq_table data in
  let bkts =
    match kind with
    | Equi_width -> build_equi_width ~buckets freqs
    | Equi_depth -> build_equi_depth ~buckets freqs
    | Maxdiff -> build_maxdiff ~buckets freqs
    | Serial -> build_serial ~buckets freqs
    | V_optimal -> build_voptimal ~buckets freqs
  in
  of_buckets kind bkts

let scale t rows =
  if t.total <= 0.0 then t
  else begin
    let f = rows /. t.total in
    { t with
      bkts = Array.map (fun b -> { b with rows = b.rows *. f }) t.bkts;
      total = rows }
  end

let est_eq t v =
  if t.total <= 0.0 then 0.0
  else begin
    let matching = ref 0.0 in
    Array.iter
      (fun b ->
         if v >= b.lo && v <= b.hi then
           matching := !matching +. (b.rows /. max b.distinct 1.0))
      t.bkts;
    Float.min 1.0 (!matching /. t.total)
  end

(* Fraction of bucket [b] inside the query interval, under the uniform
   (continuous) intra-bucket assumption.  Singleton buckets are all-in or
   all-out. *)
let bucket_overlap b ~lo ~hi =
  let b_lo = b.lo and b_hi = b.hi in
  let q_lo, _lo_incl = match lo with Some (v, i) -> (v, i) | None -> (neg_infinity, true) in
  let q_hi, _hi_incl = match hi with Some (v, i) -> (v, i) | None -> (infinity, true) in
  if q_lo > b_hi || q_hi < b_lo then 0.0
  else if b_lo = b_hi then begin
    (* singleton: in or out; treat open bounds exactly *)
    let in_lo = match lo with
      | Some (v, incl) -> if incl then b_lo >= v else b_lo > v
      | None -> true
    in
    let in_hi = match hi with
      | Some (v, incl) -> if incl then b_hi <= v else b_hi < v
      | None -> true
    in
    if in_lo && in_hi then 1.0 else 0.0
  end else begin
    let eff_lo = Float.max b_lo q_lo and eff_hi = Float.min b_hi q_hi in
    if eff_hi < eff_lo then 0.0
    else if eff_hi = eff_lo then
      (* point (or degenerate) overlap inside a wide bucket: one of the
         bucket's distinct values, not a zero-width sliver *)
      1.0 /. Float.max 1.0 b.distinct
    else
      Float.max
        ((eff_hi -. eff_lo) /. (b_hi -. b_lo))
        (1.0 /. Float.max 1.0 b.distinct)
  end

let est_range t ~lo ~hi =
  if t.total <= 0.0 then 0.0
  else begin
    let rows = ref 0.0 in
    Array.iter
      (fun b -> rows := !rows +. (b.rows *. bucket_overlap b ~lo ~hi))
      t.bkts;
    Float.min 1.0 (!rows /. t.total)
  end

let est_distinct_in_range t ~lo ~hi =
  let d = ref 0.0 in
  Array.iter
    (fun b -> d := !d +. (b.distinct *. bucket_overlap b ~lo ~hi))
    t.bkts;
  !d

(* Bucket-overlap equi-join estimate: for each pair of overlapping buckets,
   the expected number of matches is r1 * r2 / max(d1, d2) scaled by the
   overlap fractions, under per-bucket containment. *)
let est_join_selectivity t1 t2 =
  if t1.total <= 0.0 || t2.total <= 0.0 then 0.0
  else begin
    let matches = ref 0.0 in
    Array.iter
      (fun b1 ->
         Array.iter
           (fun b2 ->
              let lo = Float.max b1.lo b2.lo and hi = Float.min b1.hi b2.hi in
              if lo <= hi then begin
                let f1 = bucket_overlap b1 ~lo:(Some (lo, true)) ~hi:(Some (hi, true)) in
                let f2 = bucket_overlap b2 ~lo:(Some (lo, true)) ~hi:(Some (hi, true)) in
                let r1 = b1.rows *. f1 and r2 = b2.rows *. f2 in
                let d1 = Float.max 1.0 (b1.distinct *. f1) in
                let d2 = Float.max 1.0 (b2.distinct *. f2) in
                matches := !matches +. (r1 *. r2 /. Float.max d1 d2)
              end)
           t2.bkts)
      t1.bkts;
    Float.min 1.0 (!matches /. (t1.total *. t2.total))
  end

let pp fmt t =
  Fmt.pf fmt "@[<v>%s histogram, %.0f rows, %d buckets" (kind_to_string t.kind)
    t.total (Array.length t.bkts);
  Array.iter
    (fun b ->
       Fmt.pf fmt "@,  [%g, %g] rows=%.1f distinct=%.1f" b.lo b.hi b.rows b.distinct)
    t.bkts;
  Fmt.pf fmt "@]"
