(** Distinct-value estimation for streams.

    Two estimators, as cited by the paper: the probabilistic counting
    sketch of Flajolet–Martin [6] (PCSA with stochastic averaging) for
    unbounded streams, and an exact hash-based counter (the "bitmap
    approach") that is cheap when the number of distinct values is small —
    the statistics collector uses the exact counter up to a budget and
    falls back to the sketch beyond it. *)

module Fm : sig
  type t

  (** [create ~maps ()] uses [maps] stochastic-averaging buckets
      (default 64). *)
  val create : ?maps:int -> unit -> t

  val add : t -> Mqr_storage.Value.t -> unit
  val estimate : t -> float
end

(** Adaptive counter: exact until [exact_limit] distinct values, sketch
    afterwards. *)
type t

val create : ?exact_limit:int -> unit -> t
val add : t -> Mqr_storage.Value.t -> unit
val estimate : t -> float

(** Whether the estimate is still exact. *)
val is_exact : t -> bool
