(** Generalized Zipfian distribution (Zipf [27], as used by the paper's
    skew experiments via the Wisconsin technical report [18]).

    Rank [i] of [n] has probability proportional to [1 / i^z]; [z = 0] is
    uniform, larger [z] is more skewed.  The paper uses [z = 0.3] and
    [z = 0.6]. *)

type t

val create : n:int -> z:float -> t

val n : t -> int
val z : t -> float

(** Probability of rank [i] (1-based). *)
val prob : t -> int -> float

(** Sample a rank in [1, n]. *)
val sample : t -> Rng.t -> int

(** [sample_index t rng] is [sample t rng - 1], for 0-based tables. *)
val sample_index : t -> Rng.t -> int
