type t = {
  n : int;
  z : float;
  cdf : float array;  (* cdf.(i) = P(rank <= i+1) *)
}

let create ~n ~z =
  if n < 1 then invalid_arg "Zipf.create: n < 1";
  if z < 0.0 then invalid_arg "Zipf.create: z < 0";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** z)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
       acc := !acc +. (w /. total);
       cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n; z; cdf }

let n t = t.n
let z t = t.z

let prob t i =
  if i < 1 || i > t.n then invalid_arg "Zipf.prob: rank out of range";
  if i = 1 then t.cdf.(0) else t.cdf.(i - 1) -. t.cdf.(i - 2)

let sample t rng =
  let u = Rng.float rng in
  (* first index with cdf >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let sample_index t rng = sample t rng - 1
