(** Vitter's reservoir sampling (Algorithm R).

    The statistics-collector operator feeds every tuple of an intermediate
    result through a reservoir; when the stream ends, the reservoir is a
    uniform sample from which a histogram is built — exactly the technique
    the paper takes from Vitter [24] / Poosala-Ioannidis [19]. *)

type 'a t

val create : ?rng:Rng.t -> capacity:int -> unit -> 'a t

val add : 'a t -> 'a -> unit

(** Number of elements offered so far (not the sample size). *)
val seen : 'a t -> int

(** Current sample, in insertion-replacement order. *)
val sample : 'a t -> 'a array

val capacity : 'a t -> int
