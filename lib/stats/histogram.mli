(** Histograms over a numeric domain.

    The four kinds the paper's rules distinguish:
    - [Serial] (end-biased): exact frequencies for the most frequent values
      plus one bucket for the remainder — the "low inaccuracy" class;
    - [Maxdiff] (Poosala et al. [19]) — what Paradise stores in its
      catalogs;
    - [Equi_width] and [Equi_depth] — the "medium inaccuracy" class;
    - [V_optimal] — boundaries minimising within-bucket frequency variance
      (the optimality benchmark of the taxonomy; built with the classic
      quadratic dynamic program over a bounded number of cells).

    Histograms are built over floats; the catalog layer maps typed column
    values (dates, dictionary-encoded strings) onto this domain.  All
    estimators return *fractions of rows* in [0, 1]. *)

type kind = Equi_width | Equi_depth | Maxdiff | Serial | V_optimal

val kind_to_string : kind -> string

type bucket = {
  lo : float;
  hi : float;        (** inclusive; [lo = hi] for singleton buckets *)
  rows : float;
  distinct : float;
}

type t

val kind : t -> kind
val buckets : t -> bucket list
val total_rows : t -> float
val distinct : t -> float
val min_value : t -> float option
val max_value : t -> float option

(** Reconstruct a histogram from explicit buckets (persistence). *)
val of_buckets : kind -> bucket array -> t

(** [build kind ~buckets data] constructs a histogram with at most
    [buckets] buckets over [data].  An empty [data] yields an empty
    histogram whose estimators return 0. *)
val build : kind -> buckets:int -> float array -> t

(** [scale t rows] linearly rescales row counts so [total_rows] becomes
    [rows] — used to extrapolate a reservoir-sample histogram to the full
    stream the sample came from. *)
val scale : t -> float -> t

(** Fraction of rows equal to [v]. *)
val est_eq : t -> float -> float

(** Fraction of rows in the interval; bounds are [(value, inclusive?)];
    [None] means unbounded. *)
val est_range : t -> lo:(float * bool) option -> hi:(float * bool) option -> float

(** Join selectivity between two attribute distributions: estimated
    fraction of the cross product satisfying equality, via bucket-overlap
    alignment with per-bucket containment. *)
val est_join_selectivity : t -> t -> float

(** Estimated distinct values within a range (for group-count estimates
    after a selection). *)
val est_distinct_in_range :
  t -> lo:(float * bool) option -> hi:(float * bool) option -> float

val pp : Format.formatter -> t -> unit
