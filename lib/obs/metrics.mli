(** Engine-wide metrics registry: counters, gauges, and log-scale
    histograms.

    Everything is in-memory and zero-I/O: recording a sample never touches
    the simulated clock or the filesystem, so metrics can stay enabled in
    production paths without perturbing a query's measured cost.  Export
    views ({!counters}, {!gauges}, {!histograms}) return
    deterministically-sorted association lists so reports and golden files
    are byte-stable.

    Memory is bounded: each histogram series keeps a fixed-capacity
    reservoir (Vitter's Algorithm R over a name-seeded deterministic rng)
    plus exact streaming n/min/max/sum, so a long-lived service can
    observe forever without growing.  Quantiles ({!summary.p50} ...) are
    nearest-rank over the reservoir sample: exact while the series is
    short, a uniform-sample estimate once it saturates.

    Histograms are log-scale: samples are binned over [log2 v] using the
    {!Mqr_stats.Histogram} machinery (an equi-width histogram over the log
    domain is exactly a log-scale histogram over the raw domain), which
    suits the engine's heavy-tailed series — elapsed milliseconds, queue
    waits, filter selectivities. *)

type t

val create : unit -> t

(** Add [by] (default 1) to a named counter, creating it at 0. *)
val incr : t -> ?by:int -> string -> unit

(** Current value of a counter (0 when never incremented). *)
val counter : t -> string -> int

(** Set a named gauge to its latest value. *)
val set_gauge : t -> string -> float -> unit

(** Record one sample into a named log-scale histogram series.  O(1) and
    O(capacity) memory: the sample lands in the series reservoir (or
    replaces a slot once the reservoir is full) and updates the exact
    running n/min/max/sum. *)
val observe : t -> string -> float -> unit

(** Summary of one histogram series.  [n]/[min]/[max]/[sum] are exact over
    the whole stream; [p50]/[p95]/[p99] are nearest-rank quantiles of the
    reservoir sample; [buckets] are [(lo, hi, count)] in the raw domain
    with power-of-two boundaries over the reservoir sample; samples
    [<= 0] are clamped to the smallest positive bucket. *)
type summary = {
  n : int;
  min : float;
  max : float;
  sum : float;
  p50 : float;
  p95 : float;
  p99 : float;
  buckets : (float * float * int) list;
}

(** Sorted by name, for deterministic reports. *)
val counters : t -> (string * int) list

val gauges : t -> (string * float) list
val histograms : t -> (string * summary) list

val pp : Format.formatter -> t -> unit

(** Prometheus text exposition of the whole registry: families sorted by
    mangled name ([mqr_] prefix, non-alphanumerics folded to [_]), one
    [# TYPE] line per family, histogram buckets cumulative and closed by
    [+Inf] = exact stream count.  Deterministic: same registry state,
    same bytes. *)
val to_prometheus : t -> string
