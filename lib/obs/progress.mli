(** Per-statement progress / ETA estimator.

    The dispatcher feeds this at every decision point and plan switch with
    what the re-optimizer itself believes: the simulated clock (work done
    so far), the remainder plan's Eq.1 cost estimate, and the provable
    remaining-cost interval from {!Mqr_analysis.Bounds}.  The estimator
    turns those into a percent-done figure and an ETA interval
    [[eta_lo_ms, eta_hi_ms]] on the simulated clock.

    Guarantees:
    - {b zero simulated cost} — updates only read the clock value they
      are handed, they never charge it, so a run with progress attached
      is bit-identical (rows and simulated elapsed) to one without;
    - {b percent is monotone non-decreasing} and lands at exactly 100 on
      completion (raw estimates can regress when a plan switch raises
      the remainder estimate; the clamp absorbs that);
    - {b eta_lo is monotone non-decreasing} and never in the past — a
      provable lower bound on the finish time can only tighten upward;
    - [eta_hi >= eta_lo] always.  The upper bound is deliberately {e not}
      clamped downward: a plan switch may legitimately raise the provable
      worst case, and hiding that would lie to the operator. *)

(** Why an update fired. *)
type label =
  | Start  (** initial plan chosen, before the first unit executes *)
  | Decision  (** a decision point completed (post-recost) *)
  | Switch  (** the plan was just switched to a re-optimized remainder *)
  | Finish  (** the statement completed *)

val label_to_string : label -> string

type sample = {
  seq : int;  (** 0-based update index *)
  ts_ms : float;  (** simulated clock at the update *)
  done_ms : float;  (** simulated work completed so far *)
  remaining_est_ms : float;  (** remainder plan's Eq.1 estimate *)
  percent : float;  (** clamped monotone, in [0, 100] *)
  eta_lo_ms : float;  (** absolute simulated finish-time lower bound *)
  eta_hi_ms : float;  (** absolute simulated finish-time upper bound *)
  label : label;
}

type t

val create : unit -> t

(** Record one estimator update.  [now_ms] is the simulated clock;
    [remaining_est_ms] the remainder plan's cost-model estimate;
    [remaining_lo_ms]/[remaining_hi_ms] the provable remaining-cost
    interval (pass the estimate for both when no bounds are available).
    Returns the recorded (clamped) sample. *)
val update :
  t ->
  label:label ->
  now_ms:float ->
  remaining_est_ms:float ->
  remaining_lo_ms:float ->
  remaining_hi_ms:float ->
  sample

(** Final update: percent 100, ETA collapsed to [now_ms].  Idempotent. *)
val finish : t -> now_ms:float -> sample

(** Most recent sample, if any update has been recorded. *)
val latest : t -> sample option

(** All samples, oldest first. *)
val samples : t -> sample list

(** True once {!finish} has run. *)
val finished : t -> bool

(** True iff percent never decreases and eta_lo never decreases across
    {!samples} (the invariant the estimator promises; exposed so tests
    and the bench can assert it directly). *)
val monotone : t -> bool
