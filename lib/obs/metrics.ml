module Histogram = Mqr_stats.Histogram
module Reservoir = Mqr_stats.Reservoir
module Rng = Mqr_stats.Rng

(* A long-lived service observes millions of samples per series; keeping
   them all is an unbounded leak.  Each series holds a fixed-capacity
   Algorithm R reservoir (uniform over everything offered) plus exact
   streaming n/min/max/sum.  The reservoir rng is seeded from the series
   name, so the same observation sequence always yields the same sample
   — export views stay byte-stable. *)
let reservoir_capacity = 512

type series = {
  res : float Reservoir.t;
  mutable s_min : float;
  mutable s_max : float;
  mutable s_sum : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    series = Hashtbl.create 16 }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let seed_of_name name =
  (* deterministic, name-derived: two registries observing the same
     series in the same order agree sample-for-sample *)
  String.fold_left (fun h c -> (h * 131) + Char.code c) 0x9e3779b9 name
  land max_int

let observe t name v =
  let s =
    match Hashtbl.find_opt t.series name with
    | Some s -> s
    | None ->
      let s =
        { res =
            Reservoir.create
              ~rng:(Rng.create (seed_of_name name))
              ~capacity:reservoir_capacity ();
          s_min = infinity; s_max = neg_infinity; s_sum = 0.0 }
      in
      Hashtbl.replace t.series name s;
      s
  in
  Reservoir.add s.res v;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v;
  s.s_sum <- s.s_sum +. v

type summary = {
  n : int;
  min : float;
  max : float;
  sum : float;
  p50 : float;
  p95 : float;
  p99 : float;
  buckets : (float * float * int) list;
}

(* Samples <= 0 cannot live on a log scale; clamp them to a tiny positive
   floor so zero selectivities and zero-cost spans still land in the
   smallest bucket instead of being dropped. *)
let log_floor = 1e-9

(* Nearest-rank quantile over a sorted array (the convention the service
   report already uses for its latency percentiles). *)
let quantile sorted q =
  let len = Array.length sorted in
  if len = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int len)) in
    sorted.(Stdlib.min (len - 1) (Stdlib.max 0 (rank - 1)))
  end

let summarize s =
  let sample = Reservoir.sample s.res in
  (* equi-width over log2(v) = log-scale over v; reuse lib/stats *)
  let logs =
    Array.map (fun v -> Float.log2 (Float.max log_floor v)) sample
  in
  let h = Histogram.build Histogram.Equi_width ~buckets:8 logs in
  let buckets =
    List.filter_map
      (fun (b : Histogram.bucket) ->
         let count = int_of_float (b.Histogram.rows +. 0.5) in
         if count = 0 then None
         else Some (Float.exp2 b.Histogram.lo, Float.exp2 b.Histogram.hi, count))
      (Histogram.buckets h)
  in
  let sorted = Array.copy sample in
  Array.sort Float.compare sorted;
  { n = Reservoir.seen s.res; min = s.s_min; max = s.s_max; sum = s.s_sum;
    p50 = quantile sorted 0.50;
    p95 = quantile sorted 0.95;
    p99 = quantile sorted 0.99;
    buckets }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters ( ! )
let gauges t = sorted_bindings t.gauges ( ! )

let histograms t = sorted_bindings t.series summarize

let pp fmt t =
  Fmt.pf fmt "@[<v>";
  List.iter (fun (k, v) -> Fmt.pf fmt "%-32s %d@," k v) (counters t);
  List.iter (fun (k, v) -> Fmt.pf fmt "%-32s %.3f@," k v) (gauges t);
  List.iter
    (fun (k, s) ->
       Fmt.pf fmt "%-32s n=%d min=%.3f max=%.3f mean=%.3f p50=%.3f p99=%.3f@,"
         k s.n s.min s.max
         (s.sum /. float_of_int (Stdlib.max 1 s.n))
         s.p50 s.p99)
    (histograms t);
  Fmt.pf fmt "@]"

(* --- Prometheus text exposition ------------------------------------ *)

let prom_name name =
  "mqr_"
  ^ String.map
      (fun c ->
         match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
      name

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_prometheus t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let families =
    List.map (fun (k, v) -> (prom_name k, `Counter v)) (counters t)
    @ List.map (fun (k, v) -> (prom_name k, `Gauge v)) (gauges t)
    @ List.map (fun (k, s) -> (prom_name k, `Histogram s)) (histograms t)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, family) ->
       match family with
       | `Counter v ->
         line "# TYPE %s counter\n" name;
         line "%s %d\n" name v
       | `Gauge v ->
         line "# TYPE %s gauge\n" name;
         line "%s %s\n" name (prom_float v)
       | `Histogram s ->
         line "# TYPE %s histogram\n" name;
         let cum = ref 0 in
         List.iter
           (fun (_, hi, count) ->
              cum := !cum + count;
              line "%s_bucket{le=\"%s\"} %d\n" name (prom_float hi) !cum)
           s.buckets;
         (* the reservoir under-counts vs. the true n once it saturates;
            +Inf carries the exact stream count, which keeps the series
            monotone (reservoir buckets sum to <= n) *)
         line "%s_bucket{le=\"+Inf\"} %d\n" name s.n;
         line "%s_sum %s\n" name (prom_float s.sum);
         line "%s_count %d\n" name s.n)
    families;
  Buffer.contents b
