module Histogram = Mqr_stats.Histogram

type series = {
  mutable samples : float list;  (* newest first *)
  mutable s_n : int;
  mutable s_min : float;
  mutable s_max : float;
  mutable s_sum : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    series = Hashtbl.create 16 }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let observe t name v =
  let s =
    match Hashtbl.find_opt t.series name with
    | Some s -> s
    | None ->
      let s =
        { samples = []; s_n = 0; s_min = infinity; s_max = neg_infinity;
          s_sum = 0.0 }
      in
      Hashtbl.replace t.series name s;
      s
  in
  s.samples <- v :: s.samples;
  s.s_n <- s.s_n + 1;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v;
  s.s_sum <- s.s_sum +. v

type summary = {
  n : int;
  min : float;
  max : float;
  sum : float;
  buckets : (float * float * int) list;
}

(* Samples <= 0 cannot live on a log scale; clamp them to a tiny positive
   floor so zero selectivities and zero-cost spans still land in the
   smallest bucket instead of being dropped. *)
let log_floor = 1e-9

let summarize samples s =
  (* equi-width over log2(v) = log-scale over v; reuse lib/stats *)
  let logs =
    Array.of_list
      (List.rev_map (fun v -> Float.log2 (Float.max log_floor v)) samples)
  in
  let h = Histogram.build Histogram.Equi_width ~buckets:8 logs in
  let buckets =
    List.filter_map
      (fun (b : Histogram.bucket) ->
         let count = int_of_float (b.Histogram.rows +. 0.5) in
         if count = 0 then None
         else Some (Float.exp2 b.Histogram.lo, Float.exp2 b.Histogram.hi, count))
      (Histogram.buckets h)
  in
  { n = s.s_n; min = s.s_min; max = s.s_max; sum = s.s_sum; buckets }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters ( ! )
let gauges t = sorted_bindings t.gauges ( ! )

let histograms t =
  sorted_bindings t.series (fun s -> summarize s.samples s)

let pp fmt t =
  Fmt.pf fmt "@[<v>";
  List.iter (fun (k, v) -> Fmt.pf fmt "%-32s %d@," k v) (counters t);
  List.iter (fun (k, v) -> Fmt.pf fmt "%-32s %.3f@," k v) (gauges t);
  List.iter
    (fun (k, s) ->
       Fmt.pf fmt "%-32s n=%d min=%.3f max=%.3f mean=%.3f@," k s.n s.min s.max
         (s.sum /. float_of_int (Stdlib.max 1 s.n)))
    (histograms t);
  Fmt.pf fmt "@]"
