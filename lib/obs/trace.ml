type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span = {
  sp_tid : int;
  sp_name : string;
  sp_cat : string;
  sp_depth : int;
  sp_begin_ms : float;
  sp_end_ms : float;
  sp_args : (string * arg) list;
}

type instant = {
  i_tid : int;
  i_name : string;
  i_cat : string;
  i_ts_ms : float;
  i_args : (string * arg) list;
}

type decision_kind =
  | Considered of {
      decision : string;
      t_improved : float;
      t_optimizer : float;
      t_opt_estimated : float;
      forced : bool;
    }
  | Switched of {
      t_new_total : float;
      t_improved : float;
      materialize_ms : float;
    }
  | Rejected of { t_new_total : float; t_improved : float }
  | Realloc of { granted_pages : int; consumers : int }

type decision = {
  d_query : string;
  d_tid : int;
  d_seq : int;
  d_ts_ms : float;
  d_unit_op : string;
  d_est_rows : float;
  d_actual_rows : int;
  d_error : float;
  d_kind : decision_kind;
}

type t = {
  m : Metrics.t;
  mutable scopes : (int * string) list;  (* (tid, label), newest first *)
  mutable t_spans : span list;           (* newest first *)
  mutable t_instants : instant list;     (* newest first *)
  mutable t_ledger : decision list;      (* newest first *)
  mutable next_tid : int;
  mutable t_open : int;                  (* spans currently open *)
  mutable t_tenants : (string * int) list;  (* tenant -> pid, newest first *)
  mutable tid_pid : (int * int) list;    (* only non-default pids *)
  mutable next_pid : int;
}

let create () =
  { m = Metrics.create ();
    scopes = [];
    t_spans = [];
    t_instants = [];
    t_ledger = [];
    next_tid = 0;
    t_open = 0;
    t_tenants = [];
    tid_pid = [];
    (* pid 1 is the default (tenant-less) process, so Chrome output for
       single-tenant sessions stays byte-identical to the old exporter *)
    next_pid = 2 }

let metrics t = t.m

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)

type pending = { p_name : string; p_cat : string; p_begin : float }

type token = pending

type scope = {
  parent : t;
  tid : int;
  label : string;
  offset : float;
  tenant : string option;
  mutable stack : pending list;  (* innermost first *)
  mutable seq : int;             (* decision-point ordinal *)
  mutable lanes : (int * scope) list;  (* memoized worker lanes *)
}

(* Each distinct tenant becomes its own Chrome-trace *process*, so a
   multi-tenant service renders one swimlane group per tenant.  Scopes
   without a tenant stay on the default pid 1 and the exporter output is
   unchanged. *)
let tenant_pid t = function
  | None -> 1
  | Some name ->
    (match List.assoc_opt name t.t_tenants with
     | Some pid -> pid
     | None ->
       let pid = t.next_pid in
       t.next_pid <- pid + 1;
       t.t_tenants <- (name, pid) :: t.t_tenants;
       pid)

let scope t ?(offset_ms = 0.0) ?tenant ~label () =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  t.scopes <- (tid, label) :: t.scopes;
  let pid = tenant_pid t tenant in
  if pid <> 1 then t.tid_pid <- (tid, pid) :: t.tid_pid;
  { parent = t; tid; label; offset = offset_ms; tenant; stack = []; seq = 0;
    lanes = [] }

(* One extra Chrome-trace thread per parallel worker of a query, so the
   per-worker spans of an exchange operator render as their own tracks.
   Lanes share the query's offset (and tenant lane) and are memoized:
   every operator's worker [i] lands on the same track. *)
let worker_lane s i =
  match List.assoc_opt i s.lanes with
  | Some lane -> lane
  | None ->
    let lane =
      scope s.parent ~offset_ms:s.offset ?tenant:s.tenant
        ~label:(Printf.sprintf "%s#w%d" s.label i) ()
    in
    s.lanes <- (i, lane) :: s.lanes;
    lane

let scope_label s = s.label
let scope_tid s = s.tid
let scope_metrics s = s.parent.m

let open_span s ?(cat = "span") ~name ~ts_ms () =
  let p = { p_name = name; p_cat = cat; p_begin = s.offset +. ts_ms } in
  s.stack <- p :: s.stack;
  s.parent.t_open <- s.parent.t_open + 1;
  p

let close_span s ?(args = []) ~ts_ms token =
  match s.stack with
  | p :: rest when p == token ->
    s.stack <- rest;
    s.parent.t_open <- s.parent.t_open - 1;
    s.parent.t_spans <-
      { sp_tid = s.tid;
        sp_name = p.p_name;
        sp_cat = p.p_cat;
        sp_depth = List.length rest;
        sp_begin_ms = p.p_begin;
        sp_end_ms = s.offset +. ts_ms;
        sp_args = args }
      :: s.parent.t_spans
  | _ -> invalid_arg "Trace.close_span: span closed out of order"

(* Error-path teardown: close every span still open in the scope,
   innermost first, so an exception thrown mid-unit leaves the trace
   well-formed (a long-lived service keeps exporting after failures). *)
let rec unwind s ?(args = []) ~ts_ms () =
  match s.stack with
  | [] -> ()
  | p :: _ ->
    close_span s ~args ~ts_ms p;
    unwind s ~args ~ts_ms ()

let instant s ?(cat = "event") ?(args = []) ~name ~ts_ms () =
  s.parent.t_instants <-
    { i_tid = s.tid;
      i_name = name;
      i_cat = cat;
      i_ts_ms = s.offset +. ts_ms;
      i_args = args }
    :: s.parent.t_instants

let new_decision_point s =
  s.seq <- s.seq + 1;
  s.seq

let decision s ~ts_ms ~unit_op ~est_rows ~actual_rows kind =
  s.parent.t_ledger <-
    { d_query = s.label;
      d_tid = s.tid;
      d_seq = s.seq;
      d_ts_ms = s.offset +. ts_ms;
      d_unit_op = unit_op;
      d_est_rows = est_rows;
      d_actual_rows = actual_rows;
      d_error =
        float_of_int actual_rows /. Float.max 1e-9 est_rows;
      d_kind = kind }
    :: s.parent.t_ledger

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let queries t = List.rev t.scopes
let spans t = List.rev t.t_spans
let instants t = List.rev t.t_instants
let ledger t = List.rev t.t_ledger
let open_spans t = t.t_open
let tenant_lanes t = List.rev t.t_tenants

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled: deterministic, dependency-free)        *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.3f" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> if b then "true" else "false"

let args_json args =
  String.concat ", "
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (escape k) (arg_json v)) args)

(* simulated milliseconds -> integral trace microseconds: exact for the
   cost model's resolution, and byte-stable *)
let us ms = int_of_float (Float.round (ms *. 1000.0))

let decision_kind_fields = function
  | Considered { decision; t_improved; t_optimizer; t_opt_estimated; forced } ->
    [ ("kind", Str "considered");
      ("decision", Str decision);
      ("t_improved_ms", Float t_improved);
      ("t_optimizer_ms", Float t_optimizer);
      ("t_opt_estimated_ms", Float t_opt_estimated);
      ("forced_by_filter_surprise", Bool forced) ]
  | Switched { t_new_total; t_improved; materialize_ms } ->
    [ ("kind", Str "switched");
      ("t_new_total_ms", Float t_new_total);
      ("t_improved_ms", Float t_improved);
      ("materialize_ms", Float materialize_ms) ]
  | Rejected { t_new_total; t_improved } ->
    [ ("kind", Str "rejected");
      ("t_new_total_ms", Float t_new_total);
      ("t_improved_ms", Float t_improved) ]
  | Realloc { granted_pages; consumers } ->
    [ ("kind", Str "realloc");
      ("granted_pages", Int granted_pages);
      ("consumers", Int consumers) ]

let decision_fields d =
  [ ("query", Str d.d_query);
    ("seq", Int d.d_seq);
    ("ts_ms", Float d.d_ts_ms);
    ("unit_op", Str d.d_unit_op);
    ("est_rows", Float d.d_est_rows);
    ("actual_rows", Int d.d_actual_rows);
    ("cardinality_error", Float d.d_error) ]
  @ decision_kind_fields d.d_kind

let kind_name = function
  | Considered _ -> "considered"
  | Switched _ -> "switched"
  | Rejected _ -> "rejected"
  | Realloc _ -> "realloc"

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "  ";
    Buffer.add_string buf line
  in
  let pids = Hashtbl.create 16 in
  List.iter (fun (tid, pid) -> Hashtbl.replace pids tid pid) t.tid_pid;
  let pid_of tid = Option.value ~default:1 (Hashtbl.find_opt pids tid) in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  List.iter
    (fun (name, pid) ->
       event
         (Printf.sprintf
            "{\"ph\": \"M\", \"pid\": %d, \"tid\": 0, \"name\": \
             \"process_name\", \"args\": {\"name\": \"%s\"}}"
            pid (escape name)))
    (tenant_lanes t);
  List.iter
    (fun (tid, label) ->
       event
         (Printf.sprintf
            "{\"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"name\": \
             \"thread_name\", \"args\": {\"name\": \"%s\"}}"
            (pid_of tid) tid (escape label)))
    (queries t);
  List.iter
    (fun sp ->
       event
         (Printf.sprintf
            "{\"ph\": \"X\", \"pid\": %d, \"tid\": %d, \"name\": \"%s\", \
             \"cat\": \"%s\", \"ts\": %d, \"dur\": %d, \"args\": {%s}}"
            (pid_of sp.sp_tid) sp.sp_tid (escape sp.sp_name)
            (escape sp.sp_cat)
            (us sp.sp_begin_ms)
            (max 0 (us sp.sp_end_ms - us sp.sp_begin_ms))
            (args_json (("depth", Int sp.sp_depth) :: sp.sp_args))))
    (spans t);
  List.iter
    (fun i ->
       event
         (Printf.sprintf
            "{\"ph\": \"i\", \"pid\": %d, \"tid\": %d, \"name\": \"%s\", \
             \"cat\": \"%s\", \"ts\": %d, \"s\": \"t\", \"args\": {%s}}"
            (pid_of i.i_tid) i.i_tid (escape i.i_name) (escape i.i_cat)
            (us i.i_ts_ms)
            (args_json i.i_args)))
    (instants t);
  List.iter
    (fun d ->
       event
         (Printf.sprintf
            "{\"ph\": \"i\", \"pid\": %d, \"tid\": %d, \"name\": \"%s\", \
             \"cat\": \"decision\", \"ts\": %d, \"s\": \"t\", \"args\": {%s}}"
            (pid_of d.d_tid) d.d_tid (kind_name d.d_kind) (us d.d_ts_ms)
            (args_json (decision_fields d))))
    (ledger t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_summary_json t =
  let buf = Buffer.create 4096 in
  let obj fields = "{" ^ args_json fields ^ "}" in
  Buffer.add_string buf "{\n  \"queries\": [";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (tid, label) -> obj [ ("tid", Int tid); ("label", Str label) ])
          (queries t)));
  Buffer.add_string buf
    (Printf.sprintf "],\n  \"spans\": %d,\n  \"open_spans\": %d,\n"
       (List.length t.t_spans) t.t_open);
  Buffer.add_string buf "  \"metrics\": {\n    \"counters\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %d" (escape k) v)
          (Metrics.counters t.m)));
  Buffer.add_string buf "},\n    \"gauges\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %.3f" (escape k) v)
          (Metrics.gauges t.m)));
  Buffer.add_string buf "},\n    \"histograms\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (k, (s : Metrics.summary)) ->
             Printf.sprintf
               "\"%s\": {\"n\": %d, \"min\": %.3f, \"max\": %.3f, \"sum\": \
                %.3f, \"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, \
                \"buckets\": [%s]}"
               (escape k) s.Metrics.n s.Metrics.min s.Metrics.max
               s.Metrics.sum s.Metrics.p50 s.Metrics.p95 s.Metrics.p99
               (String.concat ", "
                  (List.map
                     (fun (lo, hi, n) ->
                        Printf.sprintf "[%.6g, %.6g, %d]" lo hi n)
                     s.Metrics.buckets)))
          (Metrics.histograms t.m)));
  Buffer.add_string buf "}\n  },\n  \"ledger\": [\n";
  List.iteri
    (fun i d ->
       if i > 0 then Buffer.add_string buf ",\n";
       Buffer.add_string buf ("    " ^ obj (decision_fields d)))
    (ledger t);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Human-readable ledger                                               *)

let pp_decision fmt d =
  let head =
    Printf.sprintf "%-10s #%d @%9.1fms %-12s %s" d.d_query d.d_seq d.d_ts_ms
      (kind_name d.d_kind) d.d_unit_op
  in
  let card =
    Printf.sprintf "est=%.0f actual=%d (x%.2f)" d.d_est_rows d.d_actual_rows
      d.d_error
  in
  match d.d_kind with
  | Considered { decision; t_improved; t_optimizer; t_opt_estimated; forced } ->
    Fmt.pf fmt
      "%s  %s  %s T_improved=%.1f T_optimizer=%.1f T_opt,est=%.1f%s" head card
      decision t_improved t_optimizer t_opt_estimated
      (if forced then " [forced: filter surprise]" else "")
  | Switched { t_new_total; t_improved; materialize_ms } ->
    Fmt.pf fmt "%s  %s  T_new=%.1f < T_improved=%.1f (materialize %.1f)" head
      card t_new_total t_improved materialize_ms
  | Rejected { t_new_total; t_improved } ->
    Fmt.pf fmt "%s  %s  T_new=%.1f >= T_improved=%.1f" head card t_new_total
      t_improved
  | Realloc { granted_pages; consumers } ->
    Fmt.pf fmt "%s  %s  %d pages over %d consumers" head card granted_pages
      consumers

let pp_ledger fmt t =
  match ledger t with
  | [] -> Fmt.pf fmt "audit ledger: empty@."
  | ds ->
    Fmt.pf fmt "audit ledger (%d decision entries):@." (List.length ds);
    List.iter (fun d -> Fmt.pf fmt "  %a@." pp_decision d) ds
