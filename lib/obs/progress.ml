type label = Start | Decision | Switch | Finish

let label_to_string = function
  | Start -> "start"
  | Decision -> "decision"
  | Switch -> "switch"
  | Finish -> "finish"

type sample = {
  seq : int;
  ts_ms : float;
  done_ms : float;
  remaining_est_ms : float;
  percent : float;
  eta_lo_ms : float;
  eta_hi_ms : float;
  label : label;
}

type t = {
  mutable revs : sample list;  (* newest first *)
  mutable next_seq : int;
  mutable last_percent : float;
  mutable last_eta_lo : float;
  mutable is_finished : bool;
}

let create () =
  { revs = []; next_seq = 0; last_percent = 0.0; last_eta_lo = 0.0;
    is_finished = false }

let push t s =
  t.revs <- s :: t.revs;
  t.next_seq <- t.next_seq + 1;
  t.last_percent <- s.percent;
  t.last_eta_lo <- s.eta_lo_ms;
  s

let update t ~label ~now_ms ~remaining_est_ms ~remaining_lo_ms
    ~remaining_hi_ms =
  let rem_est = Float.max 0.0 remaining_est_ms in
  let rem_lo = Float.max 0.0 remaining_lo_ms in
  let rem_hi = Float.max rem_lo (Float.max 0.0 remaining_hi_ms) in
  let total = now_ms +. rem_est in
  let raw = if total <= 0.0 then 100.0 else 100.0 *. now_ms /. total in
  let percent =
    if t.is_finished then 100.0
    else Float.max t.last_percent (Float.min 100.0 (Float.max 0.0 raw))
  in
  (* the provable finish-time floor only tightens upward; the ceiling
     may rise on a plan switch and is only pinned above the floor *)
  let eta_lo = Float.max t.last_eta_lo (now_ms +. rem_lo) in
  let eta_hi = Float.max eta_lo (now_ms +. rem_hi) in
  push t
    { seq = t.next_seq; ts_ms = now_ms; done_ms = now_ms;
      remaining_est_ms = rem_est; percent; eta_lo_ms = eta_lo;
      eta_hi_ms = eta_hi; label }

let finish t ~now_ms =
  match t.revs with
  | last :: _ when t.is_finished -> last
  | _ ->
    t.is_finished <- true;
    let eta = Float.max t.last_eta_lo now_ms in
    push t
      { seq = t.next_seq; ts_ms = now_ms; done_ms = now_ms;
        remaining_est_ms = 0.0; percent = 100.0; eta_lo_ms = eta;
        eta_hi_ms = eta; label = Finish }

let latest t = match t.revs with [] -> None | s :: _ -> Some s
let samples t = List.rev t.revs
let finished t = t.is_finished

let monotone t =
  let rec ok = function
    | a :: (b :: _ as rest) ->
      b.percent >= a.percent && b.eta_lo_ms >= a.eta_lo_ms && ok rest
    | _ -> true
  in
  List.for_all (fun s -> s.eta_hi_ms >= s.eta_lo_ms) (samples t)
  && ok (samples t)
