(** Query tracing: operator spans, a decision-point audit ledger, and
    Chrome-trace export.

    A {!t} is a per-session collector shared by every query the engine (or
    workload manager) runs while it is attached.  Each query opens a
    {!scope} — one Chrome-trace thread lane — and the dispatcher stamps
    spans and ledger entries with the query's own {!Mqr_storage.Sim_clock}
    time plus the scope's [offset_ms] (a workload manager passes the
    query's admission time so concurrent queries interleave correctly on
    the shared timeline).

    Tracing is pure observation: nothing here charges the simulated clock
    or touches the filesystem, so a traced run's simulated elapsed time
    and result rows are byte-identical to an untraced one (the bench
    [trace] scenario asserts this — the observability analogue of the
    paper's [mu * T_est] overhead budget, held at zero).  Exporters return
    strings; callers decide where they go.

    Spans obey a strict stack discipline per scope ({!close_span} raises
    on out-of-order closes), so a finished trace is a well-formed forest:
    query → unit → operator. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span = {
  sp_tid : int;          (** the owning scope's lane *)
  sp_name : string;
  sp_cat : string;
  sp_depth : int;        (** nesting depth within the scope, 0 = query *)
  sp_begin_ms : float;   (** offset-adjusted simulated time *)
  sp_end_ms : float;
  sp_args : (string * arg) list;
}

type instant = {
  i_tid : int;
  i_name : string;
  i_cat : string;
  i_ts_ms : float;
  i_args : (string * arg) list;
}

(** One audit-ledger entry: everything the re-optimization policy looked
    at when it made (or declined) a mid-query decision, so a sub-optimal
    choice can be replayed post-hoc.  Times are the Eq. 1/Eq. 2 terms of
    the paper (Section 2.4). *)
type decision_kind =
  | Considered of {
      decision : string;        (** too-cheap | close-enough | consider *)
      t_improved : float;       (** T_cur,improved for the remainder *)
      t_optimizer : float;      (** T_cur,optimizer (original estimate) *)
      t_opt_estimated : float;  (** T_opt,estimated (Eq. 1 left side) *)
      forced : bool;            (** a filter surprise overrode Eq. 2 *)
    }
  | Switched of {
      t_new_total : float;      (** new plan total incl. materialization *)
      t_improved : float;
      materialize_ms : float;
    }
  | Rejected of { t_new_total : float; t_improved : float }
  | Realloc of { granted_pages : int; consumers : int }

type decision = {
  d_query : string;
  d_tid : int;
  d_seq : int;           (** decision-point ordinal within the query *)
  d_ts_ms : float;
  d_unit_op : string;    (** the execution unit that just finished *)
  d_est_rows : float;    (** optimizer's cardinality estimate for it *)
  d_actual_rows : int;   (** observed cardinality *)
  d_error : float;       (** actual / estimated (1.0 = perfect) *)
  d_kind : decision_kind;
}

type t

val create : unit -> t

(** The session-wide metrics registry the trace aggregates into. *)
val metrics : t -> Metrics.t

(** {2 Scopes: one lane per query} *)

type scope

(** [scope t ~label ()] opens a new lane; [offset_ms] shifts every
    timestamp recorded through it (a query's admission time under a
    workload manager; 0 for a solo query).  [tenant] assigns the lane to
    a tenant: each distinct tenant renders as its own Chrome-trace
    {e process} (pid >= 2, with process-name metadata), so a multi-tenant
    service gets one swimlane group per tenant.  Tenant-less scopes stay
    on the default pid 1 and the exporter output is unchanged. *)
val scope : t -> ?offset_ms:float -> ?tenant:string -> label:string -> unit -> scope

val scope_label : scope -> string
val scope_tid : scope -> int
val scope_metrics : scope -> Metrics.t

(** [worker_lane s i] is a child lane for parallel worker [i] of [s]'s
    query — its own Chrome-trace thread labelled ["<label>#wI"], sharing
    [s]'s time offset.  Memoized per scope, so every operator's worker
    [i] stamps onto the same track. *)
val worker_lane : scope -> int -> scope

type token

val open_span :
  scope -> ?cat:string -> name:string -> ts_ms:float -> unit -> token

(** Closes the scope's innermost open span; raises [Invalid_argument] if
    [token] is not that span (malformed nesting). *)
val close_span :
  scope -> ?args:(string * arg) list -> ts_ms:float -> token -> unit

(** Error-path teardown: close every span still open in the scope,
    innermost first, stamping each with [args] and [ts_ms].  Leaves the
    trace well-formed after an exception aborts a query mid-unit, so a
    long-lived service can keep exporting.  No-op on an empty stack. *)
val unwind :
  scope -> ?args:(string * arg) list -> ts_ms:float -> unit -> unit

val instant :
  scope -> ?cat:string -> ?args:(string * arg) list -> name:string ->
  ts_ms:float -> unit -> unit

(** Bump and return the scope's decision-point ordinal (1-based). *)
val new_decision_point : scope -> int

(** Append a ledger entry stamped with the scope's current decision-point
    ordinal. *)
val decision :
  scope -> ts_ms:float -> unit_op:string -> est_rows:float ->
  actual_rows:int -> decision_kind -> unit

(** {2 Reading a finished trace} *)

(** [(tid, label)] per query scope, in tid order. *)
val queries : t -> (int * string) list

(** Completed spans in completion order. *)
val spans : t -> span list

(** Instant events in emission order. *)
val instants : t -> instant list

(** The audit ledger, chronological. *)
val ledger : t -> decision list

(** Spans opened but not yet closed, across all scopes — 0 in any
    well-formed finished trace. *)
val open_spans : t -> int

(** [(tenant, pid)] per distinct tenant seen by {!scope}, in pid order. *)
val tenant_lanes : t -> (string * int) list

(** {2 Exporters}

    Pure: both return the document as a string. *)

(** Chrome trace-event JSON (the [chrome://tracing] / Perfetto format):
    complete ["X"] events for spans, instant ["i"] events for samples,
    filters and ledger entries, thread-name metadata per query. *)
val to_chrome_json : t -> string

(** Compact machine-readable summary: queries, span count, the full
    metrics registry, and the audit ledger. *)
val to_summary_json : t -> string

val pp_ledger : Format.formatter -> t -> unit
val pp_decision : Format.formatter -> decision -> unit
