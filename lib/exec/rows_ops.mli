(** Streamed row operators: filter, project, limit.

    These run inside a pipeline, so they charge only CPU. *)

open Mqr_storage

val filter : Exec_ctx.t -> Schema.t -> Mqr_expr.Expr.t -> Tuple.t array -> Tuple.t array

(** [project ctx schema cols rows] keeps the named columns, in order.
    Returns the projected rows and their schema. *)
val project :
  Exec_ctx.t -> Schema.t -> string list -> Tuple.t array ->
  Tuple.t array * Schema.t

val limit : Exec_ctx.t -> int -> Tuple.t array -> Tuple.t array

(** Total byte footprint of a row set. *)
val bytes_of_rows : Tuple.t array -> int
