open Mqr_storage
module Histogram = Mqr_stats.Histogram
module Reservoir = Mqr_stats.Reservoir
module Distinct = Mqr_stats.Distinct
module Column_stats = Mqr_catalog.Column_stats

let base_tuple_ms = 0.0003
let stat_tuple_ms = 0.0012
let default_sample_size = Heap_file.page_size_bytes / 8

type spec = {
  hist_cols : string list;
  distinct_cols : string list;
  hist_kind : Histogram.kind;
  hist_buckets : int;
  sample_size : int;
}

let spec ?(hist_kind = Histogram.Maxdiff) ?(hist_buckets = 32)
    ?(sample_size = default_sample_size) ?(hist_cols = [])
    ?(distinct_cols = []) () =
  { hist_cols; distinct_cols; hist_kind; hist_buckets; sample_size }

let spec_is_trivial s = s.hist_cols = [] && s.distinct_cols = []

let spec_columns s = s.hist_cols @ s.distinct_cols

type observed = {
  rows : int;
  bytes : int;
  avg_width : int;
  col_ranges : (string * (Value.t * Value.t)) list;
  histograms : (string * Histogram.t) list;
  distincts : (string * float) list;
  dicts : (string * (string * float) list) list;
}

let estimated_cost_ms s ~rows =
  let stats = List.length s.hist_cols + List.length s.distinct_cols in
  rows *. (base_tuple_ms +. (float_of_int stats *. stat_tuple_ms))

let collect ctx schema s rows =
  let clock = ctx.Exec_ctx.clock in
  let n = Array.length rows in
  let arity = Schema.arity schema in
  let qualified i =
    let c = Schema.column schema i in
    if c.Schema.qualifier = "" then c.Schema.name
    else c.Schema.qualifier ^ "." ^ c.Schema.name
  in
  (* Always-on running counters. *)
  let bytes = ref 0 in
  let mins = Array.make arity Value.Null and maxs = Array.make arity Value.Null in
  (* Requested statistics. *)
  let hist_targets =
    List.map (fun c -> (c, Schema.index_of schema c, Reservoir.create ~capacity:s.sample_size ())) s.hist_cols
  in
  let distinct_targets =
    List.map (fun c -> (c, Schema.index_of schema c, Distinct.create ())) s.distinct_cols
  in
  Array.iter
    (fun t ->
       bytes := !bytes + Tuple.byte_size t;
       for i = 0 to arity - 1 do
         if not (Value.is_null t.(i)) then begin
           mins.(i) <- Value.min_value mins.(i) t.(i);
           maxs.(i) <- Value.max_value maxs.(i) t.(i)
         end
       done;
       List.iter
         (fun (_, i, res) ->
            if not (Value.is_null t.(i)) then Reservoir.add res t.(i))
         hist_targets;
       List.iter
         (fun (_, i, d) ->
            if not (Value.is_null t.(i)) then Distinct.add d t.(i))
         distinct_targets)
    rows;
  Sim_clock.charge_cpu_ms clock (estimated_cost_ms s ~rows:(float_of_int n));
  let dicts = ref [] in
  let histograms =
    List.map
      (fun (c, _, res) ->
         let sample = Reservoir.sample res in
         let seen = Reservoir.seen res in
         let has_string =
           Array.exists (fun v -> match v with Value.String _ -> true | _ -> false)
             sample
         in
         let to_float =
           if has_string then begin
             let module SS = Set.Make (String) in
             let set =
               Array.fold_left
                 (fun acc v ->
                    match v with Value.String s -> SS.add s acc | _ -> acc)
                 SS.empty sample
             in
             let dict = List.mapi (fun i s -> (s, float_of_int i)) (SS.elements set) in
             dicts := (c, dict) :: !dicts;
             fun v ->
               match v with
               | Value.String s -> List.assoc s dict
               | v -> Value.to_float v
           end
           else Value.to_float
         in
         let data = Array.map to_float sample in
         let h = Histogram.build s.hist_kind ~buckets:s.hist_buckets data in
         (c, Histogram.scale h (float_of_int seen)))
      hist_targets
  in
  let distincts =
    List.map (fun (c, _, d) -> (c, Distinct.estimate d)) distinct_targets
  in
  let col_ranges =
    List.filter_map
      (fun i ->
         if Value.is_null mins.(i) then None
         else Some (qualified i, (mins.(i), maxs.(i))))
      (List.init arity (fun i -> i))
  in
  { rows = n;
    bytes = !bytes;
    avg_width = (if n = 0 then 0 else !bytes / n);
    col_ranges;
    histograms;
    distincts;
    dicts = !dicts }

let column_stats_of_observed obs ~column =
  let range = List.assoc_opt column obs.col_ranges in
  let histogram = List.assoc_opt column obs.histograms in
  let distinct =
    match List.assoc_opt column obs.distincts with
    | Some d -> Some d
    | None -> Option.map Histogram.distinct histogram
  in
  { Column_stats.min_v = Option.map fst range;
    max_v = Option.map snd range;
    distinct;
    histogram;
    stale = false;
    dict = List.assoc_opt column obs.dicts;
    is_key = false }

let pp_observed fmt o =
  Fmt.pf fmt "@[<v>observed: %d rows, %d bytes (avg width %d)" o.rows o.bytes
    o.avg_width;
  List.iter
    (fun (c, h) ->
       Fmt.pf fmt "@,  histogram %s: %.0f distinct" c (Histogram.distinct h))
    o.histograms;
  List.iter (fun (c, d) -> Fmt.pf fmt "@,  distinct %s: %.1f" c d) o.distincts;
  Fmt.pf fmt "@]"
