open Mqr_storage

(* Rate constants, deliberately outside Sim_clock.model (like the
   collector's): a bloom probe is cheaper than a full hash-table probe
   because no tuple is copied and no bucket chain is walked. *)
let build_tuple_ms = 0.0015
let probe_tuple_ms = 0.001
let bits_per_key = 10
let num_hashes = 3

type t = {
  source : string;
  build_col : string;
  target_col : string;
  est_sel : float;
  empty_build : bool;
  min_v : Value.t;
  max_v : Value.t;
  bits : Bytes.t;
  nbits : int;
  pages : int;
  mutable probed : int;
  mutable passed : int;
}

let target_col t = t.target_col
let build_col t = t.build_col
let source t = t.source
let est_sel t = t.est_sel
let pages t = t.pages
let probed t = t.probed
let passed t = t.passed
let has_bloom t = t.nbits > 0

let pages_for ~keys =
  if keys <= 0 then 0
  else
    let bytes = (keys * bits_per_key + 7) / 8 in
    (bytes + Heap_file.page_size_bytes - 1) / Heap_file.page_size_bytes

(* Double hashing: k bit positions derived from two independent hashes of
   the key, the standard Kirsch-Mitzenmacher construction. *)
let second_hash h1 = ((h1 * 0x9e3779b1) lxor (h1 lsr 16)) lor 1

let set_bit bits i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Bytes.unsafe_set bits byte
    (Char.chr (Char.code (Bytes.unsafe_get bits byte) lor mask))

let test_bit bits i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Char.code (Bytes.unsafe_get bits byte) land mask <> 0

let bloom_add t v =
  let h1 = Value.hash v in
  let h2 = second_hash h1 in
  for i = 0 to num_hashes - 1 do
    set_bit t.bits (abs (h1 + (i * h2)) mod t.nbits)
  done

let bloom_test t v =
  let h1 = Value.hash v in
  let h2 = second_hash h1 in
  let rec go i =
    i >= num_hashes
    || (test_bit t.bits (abs (h1 + (i * h2)) mod t.nbits) && go (i + 1))
  in
  go 0

let create ctx ~source ~build_col ~target_col ~est_sel ~max_pages ~key_idx
    rows =
  let clock = ctx.Exec_ctx.clock in
  let n = Array.length rows in
  Sim_clock.charge_cpu_ms clock (float_of_int n *. build_tuple_ms);
  let keys = ref 0 in
  let min_v = ref Value.Null and max_v = ref Value.Null in
  Array.iter
    (fun tuple ->
       let v = tuple.(key_idx) in
       if not (Value.is_null v) then begin
         incr keys;
         min_v := Value.min_value !min_v v;
         max_v := Value.max_value !max_v v
       end)
    rows;
  let want_pages = pages_for ~keys:!keys in
  let pages = max 0 (min want_pages max_pages) in
  let nbits =
    if !keys = 0 || pages = 0 then 0
    else min (!keys * bits_per_key) (pages * Heap_file.page_size_bytes * 8)
  in
  let t =
    { source;
      build_col;
      target_col;
      est_sel;
      empty_build = !keys = 0;
      min_v = !min_v;
      max_v = !max_v;
      bits = Bytes.make ((nbits + 7) / 8) '\000';
      nbits;
      pages = (if nbits = 0 then 0 else pages);
      probed = 0;
      passed = 0 }
  in
  if nbits > 0 then
    Array.iter
      (fun tuple ->
         let v = tuple.(key_idx) in
         if not (Value.is_null v) then bloom_add t v)
      rows;
  t

(* An empty build side or an out-of-range key can never find a join
   partner; a null probe key never equi-joins.  Incomparable values (a
   type mismatch the join itself would reject) pass conservatively. *)
let admits t v =
  if Value.is_null v then false
  else if t.empty_build then false
  else
    let in_range =
      match Value.compare v t.min_v, Value.compare v t.max_v with
      | lo, hi -> lo >= 0 && hi <= 0
      | exception Invalid_argument _ -> true
    in
    in_range && (t.nbits = 0 || bloom_test t v)

let applicable t schema =
  match Schema.index_of schema t.target_col with
  | idx -> Some idx
  | exception Not_found -> None
  | exception Schema.Ambiguous _ -> None

let apply ctx t ~idx rows =
  let n = Array.length rows in
  if n = 0 then rows
  else begin
    Sim_clock.charge_cpu_ms ctx.Exec_ctx.clock
      (float_of_int n *. probe_tuple_ms);
    t.probed <- t.probed + n;
    let kept = ref 0 in
    Array.iter (fun tuple -> if admits t tuple.(idx) then incr kept) rows;
    t.passed <- t.passed + !kept;
    if !kept = n then rows
    else begin
      let out = Array.make !kept [||] in
      let j = ref 0 in
      Array.iter
        (fun tuple ->
           if admits t tuple.(idx) then begin
             out.(!j) <- tuple;
             incr j
           end)
        rows;
      out
    end
  end

let observed_sel t =
  if t.probed = 0 then t.est_sel
  else float_of_int t.passed /. float_of_int t.probed

let dropped t = t.probed - t.passed
