open Mqr_storage

type t = {
  clock : Sim_clock.t;
  pool : Buffer_pool.t;
}

let create ?model ?(pool_pages = 1024) () =
  { clock = Sim_clock.create ?model (); pool = Buffer_pool.create ~capacity_pages:pool_pages }

let pages_of_bytes bytes =
  max 1 ((bytes + Heap_file.page_size_bytes - 1) / Heap_file.page_size_bytes)

let elapsed_ms t = Sim_clock.elapsed_ms t.clock
