open Mqr_storage

let sort_passes ~mem_pages ~data_pages =
  let mem = max 2 mem_pages in
  if data_pages <= mem then 1
  else begin
    let runs = (data_pages + mem - 1) / mem in
    let fan_in = max 2 (mem - 1) in
    let rec merge_levels levels runs =
      if runs <= 1 then levels
      else merge_levels (levels + 1) ((runs + fan_in - 1) / fan_in)
    in
    1 + merge_levels 0 runs
  end

type result = {
  rows : Tuple.t array;
  passes : int;
}

let sort ctx ~mem_pages schema ~keys rows =
  let clock = ctx.Exec_ctx.clock in
  let idxs = List.map (fun (c, asc) -> (Schema.index_of schema c, asc)) keys in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (i, asc) :: rest ->
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then if asc then c else -c else go rest
    in
    go idxs
  in
  let out = Array.copy rows in
  Array.sort cmp out;
  let n = Array.length rows in
  let log2n = if n <= 1 then 1 else int_of_float (ceil (log (float_of_int n) /. log 2.0)) in
  Sim_clock.charge_sort_tuples clock (n * log2n);
  let data_pages = Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows rows) in
  let passes = sort_passes ~mem_pages ~data_pages in
  for _ = 2 to passes do
    Sim_clock.charge_write clock data_pages;
    Sim_clock.charge_seq_read clock data_pages
  done;
  { rows = out; passes }
