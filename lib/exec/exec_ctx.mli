(** Execution context shared by all operators: the simulated clock that
    accumulates I/O and CPU charges, and the buffer pool page accesses are
    routed through. *)

open Mqr_storage

type t = {
  clock : Sim_clock.t;
  pool : Buffer_pool.t;
}

val create : ?model:Sim_clock.model -> ?pool_pages:int -> unit -> t

(** Pages needed to hold [bytes]. *)
val pages_of_bytes : int -> int

(** Simulated time so far. *)
val elapsed_ms : t -> float
