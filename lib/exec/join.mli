(** Join algorithms.

    All joins are inner joins over in-memory row sets; what the memory
    grant changes is the *cost* charged: a hash join whose build side does
    not fit in its allocation runs as a Grace (partitioned) join, paying a
    write+read of both inputs per extra pass — the 2-pass behaviour that
    the paper's memory-reallocation example (Figure 3) avoids. *)

open Mqr_storage

(** Number of passes a hash join needs: 1 if [fudge * build_pages] fits in
    [mem_pages], otherwise 1 + levels of recursive partitioning. *)
val hash_join_passes : mem_pages:int -> build_pages:int -> int

val hash_join_fudge : float

type result = {
  rows : Tuple.t array;
  schema : Schema.t;
  passes : int;  (** 1 = in-memory; >1 = partitioned *)
}

(** [hash_join ctx ~mem_pages ~build ~probe ~keys ~extra] joins on the
    column pairs [keys] (probe column, build column); [extra] is a residual
    predicate over the concatenated schema (probe columns first). *)
val hash_join :
  Exec_ctx.t -> mem_pages:int ->
  build:Tuple.t array * Schema.t -> probe:Tuple.t array * Schema.t ->
  keys:(string * string) list -> ?extra:Mqr_expr.Expr.t -> unit -> result

(** Indexed nested-loops join: for each outer row, probe the inner table's
    B+-tree on [inner_col = outer value of outer_col] and fetch matches.
    Output schema = outer columns followed by inner columns. *)
val index_nl_join :
  Exec_ctx.t ->
  outer:Tuple.t array * Schema.t ->
  inner_heap:Heap_file.t -> inner_schema:Schema.t -> inner_index:Btree.t ->
  outer_col:string -> ?extra:Mqr_expr.Expr.t -> unit -> result

(** Block nested-loops fallback for joins with no equality conjunct. *)
val block_nl_join :
  Exec_ctx.t -> mem_pages:int ->
  outer:Tuple.t array * Schema.t -> inner:Tuple.t array * Schema.t ->
  ?pred:Mqr_expr.Expr.t -> unit -> result
