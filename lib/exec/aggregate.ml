open Mqr_storage
module Expr = Mqr_expr.Expr

type agg_fn = Count | Sum | Avg | Min | Max

type spec = {
  fn : agg_fn;
  distinct_arg : bool;
  arg : Expr.t option;
  out_name : string;
}

type result = {
  rows : Tuple.t array;
  schema : Schema.t;
  passes : int;
}

let agg_ty input_schema s =
  match s.fn, s.arg with
  | Count, _ -> Value.TInt
  | Avg, _ -> Value.TFloat
  | (Sum | Min | Max), Some e -> Expr.type_of input_schema e
  | (Sum | Min | Max), None ->
    invalid_arg "Aggregate: sum/min/max need an argument"

let output_schema input_schema ~group_by ~aggs =
  let group_cols =
    List.map
      (fun g -> Schema.column input_schema (Schema.index_of input_schema g))
      group_by
  in
  let agg_cols = List.map (fun s -> Schema.col s.out_name (agg_ty input_schema s)) aggs in
  Schema.make (group_cols @ agg_cols)

module Key = struct
  type t = Value.t list

  let equal a b = List.equal Value.equal a b
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end

module Ktbl = Hashtbl.Make (Key)

module Vkey = struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end

module Vtbl = Hashtbl.Make (Vkey)

type acc = {
  mutable count : int;
  mutable sum : Value.t;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
  mutable seen : unit Vtbl.t option;  (* distinct-argument tracking *)
}

let hash_aggregate ctx ~mem_pages input_schema ~group_by ~aggs rows =
  let clock = ctx.Exec_ctx.clock in
  let out_schema = output_schema input_schema ~group_by ~aggs in
  let group_idx = List.map (Schema.index_of input_schema) group_by in
  let arg_evals =
    List.map
      (fun s -> Option.map (fun e -> Expr.compile input_schema e) s.arg)
      aggs
  in
  let table : acc array Ktbl.t = Ktbl.create 256 in
  let specs = Array.of_list aggs in
  let fresh_accs () =
    Array.init (Array.length specs) (fun i ->
        { count = 0; sum = Value.Null; min_v = Value.Null; max_v = Value.Null;
          seen =
            (if specs.(i).distinct_arg then Some (Vtbl.create 16) else None) })
  in
  let feed_one a v =
    let fresh =
      match a.seen with
      | None -> true
      | Some set ->
        if Vtbl.mem set v then false
        else begin
          Vtbl.replace set v ();
          true
        end
    in
    if fresh then begin
      a.count <- a.count + 1;
      a.sum <- Value.add a.sum v;
      a.min_v <- Value.min_value a.min_v v;
      a.max_v <- Value.max_value a.max_v v
    end
  in
  Array.iter
    (fun t ->
       let key = List.map (fun i -> t.(i)) group_idx in
       let accs =
         match Ktbl.find_opt table key with
         | Some a -> a
         | None ->
           let a = fresh_accs () in
           Ktbl.replace table key a;
           a
       in
       List.iteri
         (fun i ev ->
            let a = accs.(i) in
            match ev with
            | None -> a.count <- a.count + 1
            | Some f ->
              let v = f t in
              if not (Value.is_null v) then feed_one a v)
         arg_evals)
    rows;
  Sim_clock.charge_hash_tuples clock (Array.length rows);
  (* A global aggregate (no GROUP BY) over an empty input still yields one
     row, per SQL semantics. *)
  if group_by = [] && Ktbl.length table = 0 then
    Ktbl.replace table [] (fresh_accs ());
  let finalize key accs =
    let agg_vals =
      List.mapi
        (fun i s ->
           let a = accs.(i) in
           match s.fn with
           | Count -> Value.Int a.count
           | Sum -> a.sum
           | Min -> a.min_v
           | Max -> a.max_v
           | Avg ->
             if a.count = 0 then Value.Null
             else Value.Float (Value.to_float a.sum /. float_of_int a.count))
        aggs
    in
    Array.of_list (key @ agg_vals)
  in
  let out = Ktbl.fold (fun key accs acc -> finalize key accs :: acc) table [] in
  let out = Array.of_list out in
  Sim_clock.charge_cpu_tuples clock (Array.length out);
  (* Memory model: if the group table exceeds the grant, aggregation spills
     and re-reads its input once (2-pass partitioned aggregation). *)
  let group_bytes = Rows_ops.bytes_of_rows out in
  let input_pages = Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows rows) in
  let passes =
    if Exec_ctx.pages_of_bytes group_bytes <= max 1 mem_pages then 1
    else begin
      Sim_clock.charge_write clock input_pages;
      Sim_clock.charge_seq_read clock input_pages;
      2
    end
  in
  { rows = out; schema = out_schema; passes }

(* Streaming variant: input grouped on the group-by columns.  We reuse the
   accumulator machinery; groups close when the key changes. *)
let sorted_aggregate ctx input_schema ~group_by ~aggs rows =
  let clock = ctx.Exec_ctx.clock in
  let out_schema = output_schema input_schema ~group_by ~aggs in
  let group_idx = List.map (Schema.index_of input_schema) group_by in
  let arg_evals =
    List.map
      (fun s -> Option.map (fun e -> Expr.compile input_schema e) s.arg)
      aggs
  in
  let specs = Array.of_list aggs in
  let fresh_accs () =
    Array.init (Array.length specs) (fun i ->
        { count = 0; sum = Value.Null; min_v = Value.Null; max_v = Value.Null;
          seen =
            (if specs.(i).distinct_arg then Some (Vtbl.create 16) else None) })
  in
  let finalize key accs =
    let agg_vals =
      List.mapi
        (fun i s ->
           let a = accs.(i) in
           match s.fn with
           | Count -> Value.Int a.count
           | Sum -> a.sum
           | Min -> a.min_v
           | Max -> a.max_v
           | Avg ->
             if a.count = 0 then Value.Null
             else Value.Float (Value.to_float a.sum /. float_of_int a.count))
        aggs
    in
    Array.of_list (key @ agg_vals)
  in
  let feed accs t =
    List.iteri
      (fun i ev ->
         let a = accs.(i) in
         match ev with
         | None -> a.count <- a.count + 1
         | Some f ->
           let v = f t in
           if not (Value.is_null v) then begin
             let fresh =
               match a.seen with
               | None -> true
               | Some set ->
                 if Vtbl.mem set v then false
                 else begin
                   Vtbl.replace set v ();
                   true
                 end
             in
             if fresh then begin
               a.count <- a.count + 1;
               a.sum <- Value.add a.sum v;
               a.min_v <- Value.min_value a.min_v v;
               a.max_v <- Value.max_value a.max_v v
             end
           end)
      arg_evals
  in
  let out = ref [] in
  let current = ref None in
  Array.iter
    (fun t ->
       let key = List.map (fun i -> t.(i)) group_idx in
       (match !current with
        | Some (k, accs) when Key.equal k key -> feed accs t
        | Some (k, accs) ->
          out := finalize k accs :: !out;
          let accs' = fresh_accs () in
          feed accs' t;
          current := Some (key, accs')
        | None ->
          let accs = fresh_accs () in
          feed accs t;
          current := Some (key, accs)))
    rows;
  (match !current with
   | Some (k, accs) -> out := finalize k accs :: !out
   | None -> if group_by = [] then out := [ finalize [] (fresh_accs ()) ]);
  Sim_clock.charge_cpu_tuples clock (Array.length rows);
  let out = Array.of_list (List.rev !out) in
  Sim_clock.charge_cpu_tuples clock (Array.length out);
  { rows = out; schema = out_schema; passes = 1 }
