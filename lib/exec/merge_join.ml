open Mqr_storage

type result = {
  rows : Tuple.t array;
  schema : Schema.t;
  left_passes : int;
  right_passes : int;
}

let key_compare idxs a b =
  let rec go = function
    | [] -> 0
    | i :: rest ->
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go rest
  in
  go idxs

let has_null idxs t = List.exists (fun i -> Value.is_null t.(i)) idxs

let merge_join ctx ~mem_pages ?(left_sorted = false) ?(right_sorted = false)
    ~left:(left_rows, left_schema) ~right:(right_rows, right_schema) ~keys
    ?extra () =
  let clock = ctx.Exec_ctx.clock in
  let out_schema = Schema.concat left_schema right_schema in
  let li = List.map (fun (l, _) -> Schema.index_of left_schema l) keys in
  let ri = List.map (fun (_, r) -> Schema.index_of right_schema r) keys in
  (* each side sorts within half the grant *)
  let half = max 2 (mem_pages / 2) in
  let lkeys = List.map (fun (l, _) -> (l, true)) keys in
  let rkeys = List.map (fun (_, r) -> (r, true)) keys in
  let sort_side sorted schema keys rows =
    if sorted then { Sort.rows; passes = 0 }
    else Sort.sort ctx ~mem_pages:half schema ~keys rows
  in
  let ls = sort_side left_sorted left_schema lkeys left_rows in
  let rs = sort_side right_sorted right_schema rkeys right_rows in
  let l = ls.Sort.rows and r = rs.Sort.rows in
  let nl = Array.length l and nr = Array.length r in
  let residual =
    Option.map (fun e -> Mqr_expr.Expr.compile_pred out_schema e) extra
  in
  let out = ref [] in
  let n_out = ref 0 in
  (* classic merge with duplicate-group pairing *)
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    if has_null li l.(!i) then incr i
    else if has_null ri r.(!j) then incr j
    else begin
      let c =
        let rec cmp ls rs =
          match ls, rs with
          | [], [] -> 0
          | il :: lrest, ir :: rrest ->
            let c = Value.compare l.(!i).(il) r.(!j).(ir) in
            if c <> 0 then c else cmp lrest rrest
          | _ -> 0
        in
        cmp li ri
      in
      if c < 0 then incr i
      else if c > 0 then incr j
      else begin
        (* find the extent of the equal-key group on both sides *)
        let i_end = ref (!i + 1) in
        while !i_end < nl && key_compare li l.(!i) l.(!i_end) = 0 do
          incr i_end
        done;
        let j_end = ref (!j + 1) in
        (* right group boundary: same key as the current right row *)
        while !j_end < nr && key_compare ri r.(!j) r.(!j_end) = 0 do
          incr j_end
        done;
        for a = !i to !i_end - 1 do
          for b = !j to !j_end - 1 do
            let joined = Tuple.concat l.(a) r.(b) in
            match residual with
            | Some p when not (p joined) -> ()
            | _ ->
              out := joined :: !out;
              incr n_out
          done
        done;
        i := !i_end;
        j := !j_end
      end
    end
  done;
  Sim_clock.charge_cpu_tuples clock (nl + nr + !n_out);
  { rows = Array.of_list (List.rev !out);
    schema = out_schema;
    left_passes = ls.Sort.passes;
    right_passes = rs.Sort.passes }
