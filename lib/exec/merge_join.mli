(** Sort-merge join.

    Sorts both inputs on the join keys (external-sort cost model, the
    grant split between the two sorts) and merges, pairing duplicate key
    groups with a block-nested inner loop.  Preferable to hash join when
    memory is very tight or the inputs are pre-sorted; the optimizer
    considers it as a third join alternative. *)

open Mqr_storage

type result = {
  rows : Tuple.t array;
  schema : Schema.t;  (** left columns then right columns *)
  left_passes : int;
  right_passes : int;
}

(** [merge_join ctx ~mem_pages ~left ~right ~keys ~extra ()] joins on the
    equality of the column pairs [keys] (left column, right column);
    [extra] is a residual predicate over the concatenated schema.  Rows
    with NULL key values never match.  [left_sorted]/[right_sorted] declare
    an input already ordered on its key columns (e.g. an index scan or a
    lower merge join), skipping that side's sort entirely — the payoff of
    interesting orders. *)
val merge_join :
  Exec_ctx.t -> mem_pages:int ->
  ?left_sorted:bool -> ?right_sorted:bool ->
  left:Tuple.t array * Schema.t -> right:Tuple.t array * Schema.t ->
  keys:(string * string) list -> ?extra:Mqr_expr.Expr.t -> unit -> result
