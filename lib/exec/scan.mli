(** Table access operators. *)

open Mqr_storage

(** Full scan: charges a sequential read per page (buffer-pool misses) and
    CPU per tuple.  Returns the rows in heap order. *)
val seq_scan : Exec_ctx.t -> Heap_file.t -> Tuple.t array

(** Index range scan: probes the B+-tree for rids in the (inclusive when
    flagged) interval, then fetches each matching tuple through the buffer
    pool (random reads on misses — an unclustered index). *)
val index_scan :
  Exec_ctx.t -> Heap_file.t -> Btree.t ->
  ?lo:Value.t * bool -> ?hi:Value.t * bool -> unit -> Tuple.t array
