(** External merge sort (cost model) over in-memory rows. *)

open Mqr_storage

(** Total passes over the data: 1 for the run formation (in-memory when the
    input fits) plus merge passes with fan-in [mem_pages - 1]. *)
val sort_passes : mem_pages:int -> data_pages:int -> int

type result = {
  rows : Tuple.t array;
  passes : int;
}

(** [sort ctx ~mem_pages schema ~keys rows] sorts by the named columns
    ([true] = ascending), charging comparison CPU plus a write+read of the
    whole input per merge pass. *)
val sort :
  Exec_ctx.t -> mem_pages:int -> Schema.t -> keys:(string * bool) list ->
  Tuple.t array -> result
