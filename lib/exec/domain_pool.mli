(** A long-lived pool of OCaml 5 domains with a work-stealing task queue.

    The pool is spawned once per [Engine] (or [Workload]) and reused for
    every parallel operator; domains are expensive to fork, so operators
    must never spawn their own.  Tasks are closures submitted in batches;
    each batch blocks the submitter until every task has finished and
    returns the results in submission order, so callers observe fully
    deterministic merges no matter which domain ran which task.

    Scheduling: each worker owns a deque; batches are dealt round-robin
    across the deques and an idle worker steals from its neighbours before
    sleeping on the pool's condition variable.

    Exceptions raised by a task are caught on the worker, stored in the
    task's result slot, and re-raised on the submitting thread after the
    whole batch has drained — a throwing task never wedges a worker or
    leaks its siblings ({!pending} returns to 0).

    A pool of size 1 (or a batch submitted from inside a worker — nested
    parallelism) runs inline on the caller, with identical semantics. *)

type t

(** [create ~size ()] spawns [size - 1 >= 0] worker domains (the
    submitting thread is itself a worker of last resort for inline
    execution; [size <= 1] spawns none). *)
val create : size:int -> unit -> t

(** Number of domains serving this pool (1 = inline execution). *)
val size : t -> int

(** [run_all pool thunks] executes every thunk, blocks until all have
    finished, and returns their results in input order.  If any task
    raised, the lowest-indexed exception is re-raised after the batch has
    fully drained. *)
val run_all : t -> (unit -> 'a) array -> 'a array

(** Tasks submitted but not yet finished; 0 whenever no batch is in
    flight (used by tests to prove no task leaks under exceptions). *)
val pending : t -> int

(** True when {!shutdown} has completed (or was never needed). *)
val is_shutdown : t -> bool

(** Drain queued work, stop the workers and join their domains.
    Idempotent; after shutdown batches run inline. *)
val shutdown : t -> unit
