(** Partitioned (shared-nothing) parallel execution, Paradise-style.

    The paper's testbed was a 4-node parallel DBMS.  This module provides
    that substrate: work is hash- or round-robin-partitioned across
    [degree] workers, each worker runs the ordinary serial operator
    against its own clock and its own slice of the buffer pool, and the
    parent clock is charged with the *maximum* worker time (workers
    proceed in parallel) plus the network cost of any repartitioning
    exchange and a small per-worker startup fee.

    Two notions of "parallel" are deliberately decoupled:

    - [degree] is the {e plan} degree of parallelism: how many partitions
      the data is split into, and therefore what the simulated clock is
      charged.  It is part of the plan and fully deterministic.
    - [pool] is the {e execution} substrate: a {!Domain_pool.t} of real
      domains the per-worker closures are submitted to.  Worker closures
      touch only their own [Exec_ctx] and their own result slot and are
      merged in worker-index order, so the result rows and every simulated
      charge are byte-identical whether the pool has 1 domain or 8 — only
      wall-clock time changes.  [pool = None] runs the workers inline.

    Skew matters exactly as on a real cluster: a heavy hash partition
    dominates the max.  Per-worker simulated and wall-clock elapsed are
    reported through [on_worker] so callers can trace each lane and
    detect that skew. *)

open Mqr_storage

type t = {
  degree : int;
  net_ms_per_page : float;  (** shipping one page through the interconnect *)
  pool : Domain_pool.t option;  (** real domains; [None] = inline *)
}

(** Charged to the parent clock per extra worker: forking the closure and
    folding its results back in.  Mirrored by the cost model so estimated
    and actual parallel costs agree. *)
val startup_ms : float

(** Default interconnect cost per exchanged page. *)
val default_net_ms_per_page : float

val sequential : t

(** 4-node Paradise-like configuration; [pool] supplies real domains. *)
val make : ?net_ms_per_page:float -> ?pool:Domain_pool.t -> degree:int ->
  unit -> t

(** [run ctx t f] executes [f worker_index worker_ctx] for every worker,
    each against a fresh clock and a buffer-pool slice of [slice_pages]
    (default: an even split of [ctx]'s pool), then charges [ctx]'s clock
    with the slowest worker's simulated time plus {!startup_ms} per extra
    worker.  Returns the per-worker results in index order; [on_worker]
    receives each worker's simulated and wall-clock elapsed, also in
    index order. *)
val run :
  Exec_ctx.t -> t -> ?slice_pages:int ->
  ?on_worker:(int -> sim_ms:float -> wall_ms:float -> unit) ->
  (int -> Exec_ctx.t -> 'a) -> 'a list

(** Hash-partition rows on a column; charges the exchange (all pages cross
    the interconnect under hash repartitioning). *)
val partition_by :
  Exec_ctx.t -> t -> Schema.t -> column:string -> Tuple.t array ->
  Tuple.t array array

(** Round-robin partitioning (no key): the rows still cross the
    interconnect, so the exchange is charged exactly like
    {!partition_by}. *)
val partition_round_robin :
  Exec_ctx.t -> t -> Tuple.t array -> Tuple.t array array

(** Parallel operators built from the serial ones.  All return exactly the
    serial result multiset, merged in worker-index order. *)

val scan :
  Exec_ctx.t -> t -> ?slice_pages:int ->
  ?on_worker:(int -> sim_ms:float -> wall_ms:float -> unit) ->
  Heap_file.t -> Tuple.t array

(** Co-partitioned hash join: both inputs are hash-exchanged on the join
    key, each worker joins its partition pair with [mem_pages / degree]
    pages. *)
val hash_join :
  Exec_ctx.t -> t -> ?slice_pages:int ->
  ?on_worker:(int -> sim_ms:float -> wall_ms:float -> unit) ->
  mem_pages:int ->
  build:Tuple.t array * Schema.t -> probe:Tuple.t array * Schema.t ->
  keys:(string * string) list -> ?extra:Mqr_expr.Expr.t -> unit ->
  Tuple.t array * Schema.t

(** Partitioned aggregation: input exchanged on the first grouping column,
    so every group is computed wholly on one worker. *)
val aggregate :
  Exec_ctx.t -> t -> ?slice_pages:int ->
  ?on_worker:(int -> sim_ms:float -> wall_ms:float -> unit) ->
  mem_pages:int -> Schema.t -> group_by:string list ->
  aggs:Aggregate.spec list -> Tuple.t array -> Tuple.t array * Schema.t

(** Partitioned sort: round-robin exchange, per-worker external sort, then
    a deterministic k-way merge on the parent (ties broken by worker
    index, so the output is independent of the pool size). *)
val sort :
  Exec_ctx.t -> t -> ?slice_pages:int ->
  ?on_worker:(int -> sim_ms:float -> wall_ms:float -> unit) ->
  mem_pages:int -> Schema.t -> keys:(string * bool) list ->
  Tuple.t array -> Tuple.t array
