(** Partitioned (shared-nothing) parallel execution, Paradise-style.

    The paper's testbed was a 4-node parallel DBMS.  This module simulates
    that substrate: work is hash- or round-robin-partitioned across
    [degree] workers, each worker runs the ordinary serial operator against
    its own clock and its own slice of the buffer pool, and the parent
    clock is charged with the *maximum* worker time (workers proceed in
    parallel) plus the network cost of any repartitioning exchange.

    Results are identical to serial execution; only the simulated time
    changes.  Skew matters exactly as on a real cluster: a heavy hash
    partition dominates the max. *)

open Mqr_storage

type t = {
  degree : int;
  net_ms_per_page : float;  (** shipping one page through the interconnect *)
}

val sequential : t

(** 4-node Paradise-like configuration. *)
val make : ?net_ms_per_page:float -> degree:int -> unit -> t

(** [run ctx t f] executes [f worker_index worker_ctx] for every worker,
    each against a fresh clock and a buffer-pool slice, then charges
    [ctx]'s clock with the slowest worker's elapsed time.  Returns the
    per-worker results in index order. *)
val run : Exec_ctx.t -> t -> (int -> Exec_ctx.t -> 'a) -> 'a list

(** Hash-partition rows on a column; charges the exchange (all pages cross
    the interconnect under hash repartitioning). *)
val partition_by :
  Exec_ctx.t -> t -> Schema.t -> column:string -> Tuple.t array ->
  Tuple.t array array

(** Round-robin partitioning (no key): used for striped scans; charges no
    exchange, as each worker reads its own slice. *)
val partition_round_robin : t -> Tuple.t array -> Tuple.t array array

(** Parallel operators built from the serial ones.  All return exactly the
    serial results. *)

val scan :
  Exec_ctx.t -> t -> Heap_file.t -> Tuple.t array

(** Co-partitioned hash join: both inputs are hash-exchanged on the join
    key, each worker joins its partition pair with [mem_pages / degree]
    pages. *)
val hash_join :
  Exec_ctx.t -> t -> mem_pages:int ->
  build:Tuple.t array * Schema.t -> probe:Tuple.t array * Schema.t ->
  keys:(string * string) list -> ?extra:Mqr_expr.Expr.t -> unit ->
  Tuple.t array * Schema.t

(** Partitioned aggregation: input exchanged on the first grouping column
    (or round-robin + final merge when there is none). *)
val aggregate :
  Exec_ctx.t -> t -> mem_pages:int -> Schema.t -> group_by:string list ->
  aggs:Aggregate.spec list -> Tuple.t array -> Tuple.t array * Schema.t
