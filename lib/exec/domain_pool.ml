(* Work-stealing pool of OCaml 5 domains.

   One mutex guards all deques and counters: tasks here are coarse
   (operator partitions, thousands of tuples each), so queue contention is
   noise next to task bodies and a single lock keeps the invariants easy
   to audit.  Workers prefer their own deque, then steal round-robin from
   the others, and only then sleep on [cond].  [cond] is broadcast on
   submission, task completion and shutdown; waiters re-check their
   predicate in a loop, so spurious and cross-purpose wakeups are safe. *)

type task = { body : unit -> unit }

type t = {
  n : int;
  deques : task Queue.t array;          (* one per worker *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable stop : bool;
  mutable outstanding : int;            (* submitted, not yet finished *)
  mutable next : int;                   (* round-robin submission cursor *)
  mutable domains : unit Domain.t array;
}

(* Nested [run_all] from inside a task must not block on the pool it is
   already running on (the workers it would wait for may all be waiting on
   it).  Workers flag their domain; flagged callers run inline. *)
let on_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let size t = t.n
let is_shutdown t = t.stop || t.n <= 1

let pending t =
  Mutex.lock t.mutex;
  let p = t.outstanding in
  Mutex.unlock t.mutex;
  p

(* Pop a runnable task, own deque first, stealing otherwise; called with
   [t.mutex] held.  Queued work is drained even after [stop] so shutdown
   never strands a submitted batch; [None] only once stopped *and* dry. *)
let rec next_task t w =
  let steal i = Queue.take_opt t.deques.((w + i) mod t.n) in
  let rec scan i = if i >= t.n then None else
      match steal i with Some _ as r -> r | None -> scan (i + 1)
  in
  match scan 0 with
  | Some _ as r -> r
  | None ->
    if t.stop then None
    else begin
      Condition.wait t.cond t.mutex;
      next_task t w
    end

let worker_loop t w () =
  Domain.DLS.set on_worker true;
  let rec loop () =
    Mutex.lock t.mutex;
    match next_task t w with
    | None -> Mutex.unlock t.mutex
    | Some task ->
      Mutex.unlock t.mutex;
      task.body ();
      loop ()
  in
  loop ()

let create ~size () =
  let n = max 1 size in
  let t =
    { n;
      deques = Array.init n (fun _ -> Queue.create ());
      mutex = Mutex.create ();
      cond = Condition.create ();
      stop = n <= 1;
      outstanding = 0;
      next = 0;
      domains = [||] }
  in
  if n > 1 then
    t.domains <- Array.init n (fun w -> Domain.spawn (worker_loop t w));
  t

let run_inline thunks =
  let results = Array.map (fun f -> try Ok (f ()) with e -> Error e) thunks in
  Array.map (function Ok v -> v | Error e -> raise e) results

let run_all t thunks =
  let n_tasks = Array.length thunks in
  if n_tasks = 0 then [||]
  else if t.n <= 1 || t.stop || Domain.DLS.get on_worker then
    run_inline thunks
  else begin
    let results = Array.make n_tasks None in
    let finished = ref 0 in                      (* guarded by t.mutex *)
    let wrap i f =
      { body =
          (fun () ->
             let r = try Ok (f ()) with e -> Error e in
             Mutex.lock t.mutex;
             results.(i) <- Some r;
             incr finished;
             t.outstanding <- t.outstanding - 1;
             Condition.broadcast t.cond;
             Mutex.unlock t.mutex) }
    in
    Mutex.lock t.mutex;
    if t.stop then begin
      (* lost the race with shutdown: fall back to inline *)
      Mutex.unlock t.mutex;
      run_inline thunks
    end else begin
      Array.iteri
        (fun i f ->
           Queue.push (wrap i f) t.deques.(t.next);
           t.next <- (t.next + 1) mod t.n;
           t.outstanding <- t.outstanding + 1)
        thunks;
      Condition.broadcast t.cond;
      while !finished < n_tasks do Condition.wait t.cond t.mutex done;
      Mutex.unlock t.mutex;
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false)
        results
    end
  end

let shutdown t =
  if t.n > 1 then begin
    Mutex.lock t.mutex;
    let first = not t.stop in
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    if first then begin
      Array.iter Domain.join t.domains;
      t.domains <- [||]
    end
  end
