open Mqr_storage

let filter ctx schema pred rows =
  let p = Mqr_expr.Expr.compile_pred schema pred in
  Sim_clock.charge_cpu_tuples ctx.Exec_ctx.clock (Array.length rows);
  Array.of_list (List.filter p (Array.to_list rows))

let project ctx schema cols rows =
  let idxs = List.map (Schema.index_of schema) cols in
  Sim_clock.charge_cpu_tuples ctx.Exec_ctx.clock (Array.length rows);
  (Array.map (fun t -> Tuple.project t idxs) rows, Schema.project schema idxs)

let limit ctx n rows =
  Sim_clock.charge_cpu_tuples ctx.Exec_ctx.clock (min n (Array.length rows));
  if Array.length rows <= n then rows else Array.sub rows 0 n

let bytes_of_rows rows =
  Array.fold_left (fun acc t -> acc + Tuple.byte_size t) 0 rows
