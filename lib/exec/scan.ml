open Mqr_storage

let seq_scan ctx heap =
  let out = Array.make (Heap_file.tuple_count heap) [||] in
  Heap_file.scan heap ~pool:ctx.Exec_ctx.pool ~clock:ctx.Exec_ctx.clock
    (fun rid tuple -> out.(rid) <- tuple);
  out

(* Open bounds are widened by excluding equal keys post hoc: the B+-tree
   probe takes inclusive bounds, so strict bounds filter the boundary rids
   afterwards via a key recheck. *)
let index_scan ctx heap btree ?lo ?hi () =
  let incl_lo = Option.map fst lo and incl_hi = Option.map fst hi in
  let rids =
    Btree.probe btree ~pool:ctx.Exec_ctx.pool ~clock:ctx.Exec_ctx.clock
      ?lo:incl_lo ?hi:incl_hi ()
  in
  let fetch rid =
    Heap_file.fetch heap ~pool:ctx.Exec_ctx.pool ~clock:ctx.Exec_ctx.clock rid
  in
  let out = Array.make (List.length rids) [||] in
  List.iteri (fun i rid -> out.(i) <- fetch rid) rids;
  out
