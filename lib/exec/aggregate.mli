(** Hash aggregation with grouping.

    The executor keeps its own aggregate-function type so it does not
    depend on the SQL front end; the dispatcher maps the bound query's
    aggregates onto these specs. *)

open Mqr_storage

type agg_fn = Count | Sum | Avg | Min | Max

type spec = {
  fn : agg_fn;
  distinct_arg : bool;
      (** aggregate over the distinct argument values (COUNT/SUM/AVG
          DISTINCT); ignored for MIN/MAX where it changes nothing *)
  arg : Mqr_expr.Expr.t option;  (** [None] only for count-star *)
  out_name : string;
}

type result = {
  rows : Tuple.t array;
  schema : Schema.t;  (** group columns followed by aggregate outputs *)
  passes : int;       (** >1 when the group table exceeded its memory *)
}

(** Output schema without executing (for plan annotation). *)
val output_schema : Schema.t -> group_by:string list -> aggs:spec list -> Schema.t

val hash_aggregate :
  Exec_ctx.t -> mem_pages:int -> Schema.t -> group_by:string list ->
  aggs:spec list -> Tuple.t array -> result

(** Streaming aggregation over input already sorted (grouped) on the
    group-by columns: one pass, constant memory, never spills.  The caller
    must guarantee that equal group keys are adjacent. *)
val sorted_aggregate :
  Exec_ctx.t -> Schema.t -> group_by:string list -> aggs:spec list ->
  Tuple.t array -> result
