open Mqr_storage

let hash_join_fudge = 1.2

(* Each pass of Grace partitioning divides the build side by up to
   (mem_pages - 1) output partitions (at least 2); one more pass is needed
   until a partition fits. *)
let hash_join_passes ~mem_pages ~build_pages =
  let mem = max 2 mem_pages in
  let fan_out = max 2 (mem - 1) in
  let need = int_of_float (ceil (hash_join_fudge *. float_of_int build_pages)) in
  let rec go passes part_pages =
    if part_pages <= mem then passes
    else go (passes + 1) ((part_pages + fan_out - 1) / fan_out)
  in
  go 1 need

type result = {
  rows : Tuple.t array;
  schema : Schema.t;
  passes : int;
}

module VKey = struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end

module Vtbl = Hashtbl.Make (VKey)

module Key = struct
  type t = Value.t array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end

module Ktbl = Hashtbl.Make (Key)

let hash_join ctx ~mem_pages ~build:(build_rows, build_schema)
    ~probe:(probe_rows, probe_schema) ~keys ?extra () =
  let clock = ctx.Exec_ctx.clock in
  let out_schema = Schema.concat probe_schema build_schema in
  let probe_idx =
    Array.of_list (List.map (fun (p, _) -> Schema.index_of probe_schema p) keys)
  in
  let build_idx =
    Array.of_list (List.map (fun (_, b) -> Schema.index_of build_schema b) keys)
  in
  let build_bytes = Rows_ops.bytes_of_rows build_rows in
  let probe_bytes = Rows_ops.bytes_of_rows probe_rows in
  let build_pages = Exec_ctx.pages_of_bytes build_bytes in
  let probe_pages = Exec_ctx.pages_of_bytes probe_bytes in
  let passes = hash_join_passes ~mem_pages ~build_pages in
  (* Extra passes write and re-read both inputs once per partitioning
     level, plus the repartitioning CPU. *)
  for _ = 2 to passes do
    Sim_clock.charge_write clock (build_pages + probe_pages);
    Sim_clock.charge_seq_read clock (build_pages + probe_pages);
    Sim_clock.charge_hash_tuples clock
      (Array.length build_rows + Array.length probe_rows)
  done;
  let residual =
    Option.map (fun e -> Mqr_expr.Expr.compile_pred out_schema e) extra
  in
  let out = ref [] in
  let n_out = ref 0 in
  let emit pt bt =
    let joined = Tuple.concat pt bt in
    match residual with
    | Some p when not (p joined) -> ()
    | _ ->
      out := joined :: !out;
      incr n_out
  in
  (* The in-memory join itself (final pass).  Single-key joins use the
     value directly as the table key; multi-key joins build one key array
     per stored build tuple and reuse a scratch array for probe lookups,
     so the hot loops allocate nothing per probe tuple. *)
  (match build_idx with
   | [| bi |] ->
     let pi = probe_idx.(0) in
     let table = Vtbl.create (max 16 (Array.length build_rows)) in
     Array.iter
       (fun t ->
          let k = t.(bi) in
          if not (Value.is_null k) then Vtbl.add table k t)
       build_rows;
     Array.iter
       (fun pt ->
          let k = pt.(pi) in
          if not (Value.is_null k) then
            List.iter (emit pt) (Vtbl.find_all table k))
       probe_rows
   | _ ->
     let nk = Array.length build_idx in
     let has_null t idx =
       let rec go i = i < nk && (Value.is_null t.(idx.(i)) || go (i + 1)) in
       go 0
     in
     let table = Ktbl.create (max 16 (Array.length build_rows)) in
     Array.iter
       (fun t ->
          if not (has_null t build_idx) then
            Ktbl.add table (Array.map (fun i -> t.(i)) build_idx) t)
       build_rows;
     let scratch = Array.make nk Value.Null in
     Array.iter
       (fun pt ->
          if not (has_null pt probe_idx) then begin
            for i = 0 to nk - 1 do
              scratch.(i) <- pt.(probe_idx.(i))
            done;
            List.iter (emit pt) (Ktbl.find_all table scratch)
          end)
       probe_rows);
  Sim_clock.charge_hash_tuples clock (Array.length build_rows);
  Sim_clock.charge_hash_tuples clock (Array.length probe_rows);
  Sim_clock.charge_cpu_tuples clock !n_out;
  { rows = Array.of_list (List.rev !out); schema = out_schema; passes }

let index_nl_join ctx ~outer:(outer_rows, outer_schema) ~inner_heap
    ~inner_schema ~inner_index ~outer_col ?extra () =
  let out_schema = Schema.concat outer_schema inner_schema in
  let oi = Schema.index_of outer_schema outer_col in
  let residual =
    Option.map (fun e -> Mqr_expr.Expr.compile_pred out_schema e) extra
  in
  let out = ref [] in
  let n_out = ref 0 in
  Array.iter
    (fun ot ->
       let key = ot.(oi) in
       if not (Value.is_null key) then begin
         let rids =
           Btree.probe inner_index ~pool:ctx.Exec_ctx.pool
             ~clock:ctx.Exec_ctx.clock ~lo:key ~hi:key ()
         in
         List.iter
           (fun rid ->
              let it =
                Heap_file.fetch inner_heap ~pool:ctx.Exec_ctx.pool
                  ~clock:ctx.Exec_ctx.clock rid
              in
              let joined = Tuple.concat ot it in
              match residual with
              | Some p when not (p joined) -> ()
              | _ ->
                out := joined :: !out;
                incr n_out)
           rids
       end)
    outer_rows;
  Sim_clock.charge_cpu_tuples ctx.Exec_ctx.clock (Array.length outer_rows + !n_out);
  { rows = Array.of_list (List.rev !out); schema = out_schema; passes = 1 }

let block_nl_join ctx ~mem_pages ~outer:(outer_rows, outer_schema)
    ~inner:(inner_rows, inner_schema) ?pred () =
  let clock = ctx.Exec_ctx.clock in
  let out_schema = Schema.concat outer_schema inner_schema in
  let residual =
    Option.map (fun e -> Mqr_expr.Expr.compile_pred out_schema e) pred
  in
  let outer_pages = Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows outer_rows) in
  let inner_pages = Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows inner_rows) in
  (* One inner re-read per outer memory-block beyond the first. *)
  let blocks = max 1 ((outer_pages + mem_pages - 1) / max 1 mem_pages) in
  for _ = 2 to blocks do
    Sim_clock.charge_seq_read clock inner_pages
  done;
  Sim_clock.charge_cpu_tuples clock
    (Array.length outer_rows * max 1 (Array.length inner_rows));
  let out = ref [] in
  Array.iter
    (fun ot ->
       Array.iter
         (fun it ->
            let joined = Tuple.concat ot it in
            match residual with
            | Some p when not (p joined) -> ()
            | _ -> out := joined :: !out)
         inner_rows)
    outer_rows;
  { rows = Array.of_list (List.rev !out); schema = out_schema; passes = blocks }
