(** Runtime join filters (sideways information passing).

    When a hash join finishes its build phase — or a merge join its left
    input — the set of join-key values it just saw is itself a statistic:
    a probe-side tuple whose key is absent can never contribute to the
    join's output.  The dispatcher wraps that set as a bloom filter plus
    min-max bounds and pushes it down into the probe-side scan pipeline,
    dropping non-qualifying tuples for a per-tuple cost of
    {!probe_tuple_ms} before they incur the join's hashing, sorting,
    spill I/O or collector work.

    Filters are one-sided: a bloom filter has false positives but no false
    negatives, min-max pruning is exact, and null probe keys never satisfy
    an equi-join — so applying a filter never changes the join's result,
    only the work done to produce it.

    The observed pass rate ({!observed_sel}) is reported back to the
    dispatcher, which compares it against the optimizer's estimate: a
    large deviation marks the remaining estimates suspect and can force a
    re-optimization of the remainder (see {!Mqr_core.Reopt_policy}). *)

open Mqr_storage

(** CPU charged per build-side tuple when constructing a filter. *)
val build_tuple_ms : float

(** CPU charged per probe-side tuple tested against a filter. *)
val probe_tuple_ms : float

val bits_per_key : int
val num_hashes : int

type t

(** Bitmap pages needed for a bloom filter over [keys] build values at
    {!bits_per_key} bits each; 0 when the build side is empty. *)
val pages_for : keys:int -> int

(** [create ctx ~source ~build_col ~target_col ~est_sel ~max_pages
    ~key_idx rows] builds a filter from column [key_idx] of the build
    rows, charging {!build_tuple_ms} per row.  [max_pages] caps the bloom
    bitmap (fewer pages = higher false-positive rate); [max_pages = 0]
    degrades to min-max bounds only.  [source] names the publishing join
    for display; [est_sel] is the optimizer's estimated pass fraction. *)
val create :
  Exec_ctx.t -> source:string -> build_col:string -> target_col:string ->
  est_sel:float -> max_pages:int -> key_idx:int -> Tuple.t array -> t

(** Column index of [target_col] in [schema], or [None] when the filter
    does not apply there (column absent or ambiguous). *)
val applicable : t -> Schema.t -> int option

(** Can this key value possibly join?  False for nulls, values outside the
    build side's [min, max], and bloom misses; never falsely negative. *)
val admits : t -> Value.t -> bool

(** Filter the rows on column [idx], charging {!probe_tuple_ms} per input
    row and recording the pass rate. *)
val apply : Exec_ctx.t -> t -> idx:int -> Tuple.t array -> Tuple.t array

val target_col : t -> string
val build_col : t -> string
val source : t -> string
val est_sel : t -> float

(** Bitmap pages actually held (0 for a min-max-only filter). *)
val pages : t -> int

val probed : t -> int
val passed : t -> int
val dropped : t -> int
val has_bloom : t -> bool

(** Observed pass fraction; the estimate when nothing was probed yet. *)
val observed_sel : t -> float
