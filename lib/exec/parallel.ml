open Mqr_storage

type t = {
  degree : int;
  net_ms_per_page : float;
  pool : Domain_pool.t option;
}

let startup_ms = 0.05
let default_net_ms_per_page = 0.4

let sequential = { degree = 1; net_ms_per_page = 0.0; pool = None }

let make ?(net_ms_per_page = default_net_ms_per_page) ?pool ~degree () =
  if degree < 1 then invalid_arg "Parallel.make: degree < 1";
  { degree; net_ms_per_page; pool }

(* Each worker closure owns a fresh [Exec_ctx] (clock + buffer-pool slice)
   and writes only its own result slot, so the simulated charges it makes
   are identical whether the closures run inline, on 2 domains or on 8 —
   the scheduling substrate can only change wall-clock time. *)
let run ctx t ?slice_pages ?on_worker f =
  if t.degree = 1 then [ f 0 ctx ]
  else begin
    let model = Sim_clock.model ctx.Exec_ctx.clock in
    let slice =
      match slice_pages with
      | Some p -> max 1 p
      | None -> max 1 (Buffer_pool.capacity ctx.Exec_ctx.pool / t.degree)
    in
    let thunks =
      Array.init t.degree (fun w () ->
          let wctx = Exec_ctx.create ~model ~pool_pages:slice () in
          let t0 = Unix.gettimeofday () in
          let r = f w wctx in
          let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          (r, Sim_clock.elapsed_ms wctx.Exec_ctx.clock, wall_ms))
    in
    let results =
      match t.pool with
      | Some pool -> Domain_pool.run_all pool thunks
      | None -> Array.map (fun f -> f ()) thunks
    in
    let slowest =
      Array.fold_left (fun acc (_, sim, _) -> Float.max acc sim) 0.0 results
    in
    (match on_worker with
     | Some g ->
       Array.iteri (fun w (_, sim_ms, wall_ms) -> g w ~sim_ms ~wall_ms) results
     | None -> ());
    Sim_clock.charge_cpu_ms ctx.Exec_ctx.clock slowest;
    Sim_clock.charge_cpu_ms ctx.Exec_ctx.clock
      (startup_ms *. float_of_int (t.degree - 1));
    Array.to_list (Array.map (fun (r, _, _) -> r) results)
  end

let charge_exchange ctx t rows =
  if t.degree > 1 then begin
    let pages = Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows rows) in
    Sim_clock.charge_cpu_ms ctx.Exec_ctx.clock
      (float_of_int pages *. t.net_ms_per_page)
  end

let partition_by ctx t schema ~column rows =
  let i = Schema.index_of schema column in
  let parts = Array.make t.degree [] in
  Array.iter
    (fun tuple ->
       let w =
         if Value.is_null tuple.(i) then 0
         else (Value.hash tuple.(i) land max_int) mod t.degree
       in
       parts.(w) <- tuple :: parts.(w))
    rows;
  charge_exchange ctx t rows;
  Array.map (fun l -> Array.of_list (List.rev l)) parts

let partition_round_robin ctx t rows =
  let parts = Array.make t.degree [] in
  Array.iteri
    (fun i tuple -> parts.(i mod t.degree) <- tuple :: parts.(i mod t.degree))
    rows;
  charge_exchange ctx t rows;
  Array.map (fun l -> Array.of_list (List.rev l)) parts

(* Striped scan: worker [w] reads rids w*n/d .. (w+1)*n/d — each from its
   own disk, so pages divide across workers and no exchange is charged. *)
let scan ctx t ?slice_pages ?on_worker heap =
  if t.degree = 1 then Scan.seq_scan ctx heap
  else begin
    let n = Heap_file.tuple_count heap in
    let chunks =
      run ctx t ?slice_pages ?on_worker (fun w wctx ->
          let lo = w * n / t.degree and hi = (w + 1) * n / t.degree in
          let out = Array.make (max 0 (hi - lo)) [||] in
          Heap_file.scan_range heap ~pool:wctx.Exec_ctx.pool
            ~clock:wctx.Exec_ctx.clock ~from_rid:lo ~to_rid:hi
            (fun rid tuple -> out.(rid - lo) <- tuple);
          out)
    in
    Array.concat chunks
  end

let hash_join ctx t ?slice_pages ?on_worker ~mem_pages
    ~build:(build_rows, build_schema) ~probe:(probe_rows, probe_schema) ~keys
    ?extra () =
  match keys, t.degree with
  | [], _ | _, 1 ->
    let r =
      Join.hash_join ctx ~mem_pages ~build:(build_rows, build_schema)
        ~probe:(probe_rows, probe_schema) ~keys ?extra ()
    in
    (r.Join.rows, r.Join.schema)
  | (probe_col, build_col) :: _, _ ->
    let build_parts = partition_by ctx t build_schema ~column:build_col build_rows in
    let probe_parts = partition_by ctx t probe_schema ~column:probe_col probe_rows in
    let per_worker_mem = max 2 (mem_pages / t.degree) in
    let chunks =
      run ctx t ?slice_pages ?on_worker (fun w wctx ->
          let r =
            Join.hash_join wctx ~mem_pages:per_worker_mem
              ~build:(build_parts.(w), build_schema)
              ~probe:(probe_parts.(w), probe_schema)
              ~keys ?extra ()
          in
          r.Join.rows)
    in
    let schema = Schema.concat probe_schema build_schema in
    (Array.concat chunks, schema)

let aggregate ctx t ?slice_pages ?on_worker ~mem_pages schema ~group_by ~aggs
    rows =
  match group_by, t.degree with
  | [], _ | _, 1 ->
    let r = Aggregate.hash_aggregate ctx ~mem_pages schema ~group_by ~aggs rows in
    (r.Aggregate.rows, r.Aggregate.schema)
  | first :: _, _ ->
    (* same first grouping column -> same worker, so every group is
       computed wholly on one worker *)
    let parts = partition_by ctx t schema ~column:first rows in
    let per_worker_mem = max 1 (mem_pages / t.degree) in
    let chunks =
      run ctx t ?slice_pages ?on_worker (fun w wctx ->
          let r =
            Aggregate.hash_aggregate wctx ~mem_pages:per_worker_mem schema
              ~group_by ~aggs parts.(w)
          in
          r.Aggregate.rows)
    in
    let out_schema = Aggregate.output_schema schema ~group_by ~aggs in
    (Array.concat chunks, out_schema)

let sort ctx t ?slice_pages ?on_worker ~mem_pages schema ~keys rows =
  if t.degree = 1 then
    (Sort.sort ctx ~mem_pages schema ~keys rows).Sort.rows
  else begin
    let parts = partition_round_robin ctx t rows in
    let per_worker_mem = max 2 (mem_pages / t.degree) in
    let chunks =
      Array.of_list
        (run ctx t ?slice_pages ?on_worker (fun w wctx ->
             (Sort.sort wctx ~mem_pages:per_worker_mem schema ~keys
                parts.(w)).Sort.rows))
    in
    (* k-way merge on the parent, one comparison-ish unit per output row;
       ties resolve to the lowest worker index so the merge is a pure
       function of the chunks *)
    let idxs = List.map (fun (c, asc) -> (Schema.index_of schema c, asc)) keys in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (i, asc) :: rest ->
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then if asc then c else -c else go rest
      in
      go idxs
    in
    let n = Array.length rows in
    let out = Array.make n [||] in
    let cursor = Array.make t.degree 0 in
    for o = 0 to n - 1 do
      let best = ref (-1) in
      for w = t.degree - 1 downto 0 do
        if cursor.(w) < Array.length chunks.(w) then
          if
            !best < 0
            || cmp chunks.(w).(cursor.(w)) chunks.(!best).(cursor.(!best)) <= 0
          then best := w
      done;
      out.(o) <- chunks.(!best).(cursor.(!best));
      cursor.(!best) <- cursor.(!best) + 1
    done;
    Sim_clock.charge_sort_tuples ctx.Exec_ctx.clock n;
    out
  end
