open Mqr_storage

type t = {
  degree : int;
  net_ms_per_page : float;
}

let sequential = { degree = 1; net_ms_per_page = 0.0 }

let make ?(net_ms_per_page = 0.4) ~degree () =
  if degree < 1 then invalid_arg "Parallel.make: degree < 1";
  { degree; net_ms_per_page }

let run ctx t f =
  if t.degree = 1 then [ f 0 ctx ]
  else begin
    let model = Sim_clock.model ctx.Exec_ctx.clock in
    let pool_slice =
      max 8 (Buffer_pool.capacity ctx.Exec_ctx.pool / t.degree)
    in
    let slowest = ref 0.0 in
    let results =
      List.init t.degree (fun w ->
          let wctx = Exec_ctx.create ~model ~pool_pages:pool_slice () in
          let r = f w wctx in
          let elapsed = Sim_clock.elapsed_ms wctx.Exec_ctx.clock in
          if elapsed > !slowest then slowest := elapsed;
          r)
    in
    Sim_clock.charge_cpu_ms ctx.Exec_ctx.clock !slowest;
    results
  end

let charge_exchange ctx t rows =
  if t.degree > 1 then begin
    let pages = Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows rows) in
    Sim_clock.charge_cpu_ms ctx.Exec_ctx.clock
      (float_of_int pages *. t.net_ms_per_page)
  end

let partition_by ctx t schema ~column rows =
  let i = Schema.index_of schema column in
  let parts = Array.make t.degree [] in
  Array.iter
    (fun tuple ->
       let w =
         if Value.is_null tuple.(i) then 0
         else (Value.hash tuple.(i) land max_int) mod t.degree
       in
       parts.(w) <- tuple :: parts.(w))
    rows;
  charge_exchange ctx t rows;
  Array.map (fun l -> Array.of_list (List.rev l)) parts

let partition_round_robin t rows =
  let parts = Array.make t.degree [] in
  Array.iteri (fun i tuple -> parts.(i mod t.degree) <- tuple :: parts.(i mod t.degree)) rows;
  Array.map (fun l -> Array.of_list (List.rev l)) parts

(* Striped scan: worker [w] reads rids w, w+degree, ... — each from its own
   disk, so pages divide across workers. *)
let scan ctx t heap =
  if t.degree = 1 then Scan.seq_scan ctx heap
  else begin
    let n = Heap_file.tuple_count heap in
    let chunks =
      run ctx t (fun w wctx ->
          let lo = w * n / t.degree and hi = (w + 1) * n / t.degree in
          let out = Array.make (max 0 (hi - lo)) [||] in
          Heap_file.scan_range heap ~pool:wctx.Exec_ctx.pool
            ~clock:wctx.Exec_ctx.clock ~from_rid:lo ~to_rid:hi
            (fun rid tuple -> out.(rid - lo) <- tuple);
          out)
    in
    Array.concat chunks
  end

let hash_join ctx t ~mem_pages ~build:(build_rows, build_schema)
    ~probe:(probe_rows, probe_schema) ~keys ?extra () =
  match keys, t.degree with
  | [], _ | _, 1 ->
    let r =
      Join.hash_join ctx ~mem_pages ~build:(build_rows, build_schema)
        ~probe:(probe_rows, probe_schema) ~keys ?extra ()
    in
    (r.Join.rows, r.Join.schema)
  | (probe_col, build_col) :: _, _ ->
    let build_parts = partition_by ctx t build_schema ~column:build_col build_rows in
    let probe_parts = partition_by ctx t probe_schema ~column:probe_col probe_rows in
    let per_worker_mem = max 2 (mem_pages / t.degree) in
    let chunks =
      run ctx t (fun w wctx ->
          let r =
            Join.hash_join wctx ~mem_pages:per_worker_mem
              ~build:(build_parts.(w), build_schema)
              ~probe:(probe_parts.(w), probe_schema)
              ~keys ?extra ()
          in
          r.Join.rows)
    in
    let schema = Schema.concat probe_schema build_schema in
    (Array.concat chunks, schema)

let aggregate ctx t ~mem_pages schema ~group_by ~aggs rows =
  match group_by, t.degree with
  | [], _ | _, 1 ->
    let r = Aggregate.hash_aggregate ctx ~mem_pages schema ~group_by ~aggs rows in
    (r.Aggregate.rows, r.Aggregate.schema)
  | first :: _, _ ->
    (* same first grouping column -> same worker, so every group is
       computed wholly on one worker *)
    let parts = partition_by ctx t schema ~column:first rows in
    let per_worker_mem = max 1 (mem_pages / t.degree) in
    let chunks =
      run ctx t (fun w wctx ->
          let r =
            Aggregate.hash_aggregate wctx ~mem_pages:per_worker_mem schema
              ~group_by ~aggs parts.(w)
          in
          r.Aggregate.rows)
    in
    let out_schema = Aggregate.output_schema schema ~group_by ~aggs in
    (Array.concat chunks, out_schema)
