(** The statistics-collector operator (paper Section 2.2 / 3.1).

    A streamed operator that examines the tuples of an intermediate result
    without modifying, copying or spilling them: cardinality, average tuple
    size and per-column min/max are maintained as running values; requested
    histograms are built from a one-page reservoir sample (Vitter [24],
    applied as in Poosala–Ioannidis [19]); requested distinct counts use
    probabilistic counting (Flajolet–Martin [6]) with an exact fast path.

    The CPU price per tuple per tracked statistic is exposed so the
    statistics-collectors insertion algorithm can budget collectors against
    the [mu] overhead bound. *)

open Mqr_storage

(** Milliseconds charged per tuple for the always-on counters. *)
val base_tuple_ms : float

(** Milliseconds charged per tuple per histogram or distinct-count
    statistic. *)
val stat_tuple_ms : float

(** Reservoir capacity: one 4 KB page of samples, as in the paper. *)
val default_sample_size : int

type spec = {
  hist_cols : string list;      (** qualified columns needing histograms *)
  distinct_cols : string list;  (** columns needing distinct counts *)
  hist_kind : Mqr_stats.Histogram.kind;
  hist_buckets : int;
  sample_size : int;
}

val spec :
  ?hist_kind:Mqr_stats.Histogram.kind -> ?hist_buckets:int ->
  ?sample_size:int -> ?hist_cols:string list -> ?distinct_cols:string list ->
  unit -> spec

(** Is there anything beyond the free counters to collect? *)
val spec_is_trivial : spec -> bool

(** Every column the spec tracks (histograms then distincts). *)
val spec_columns : spec -> string list

type observed = {
  rows : int;
  bytes : int;
  avg_width : int;
  col_ranges : (string * (Value.t * Value.t)) list;
      (** per column: observed (min, max) over non-null values *)
  histograms : (string * Mqr_stats.Histogram.t) list;
      (** per requested column, scaled to the full stream *)
  distincts : (string * float) list;
  dicts : (string * (string * float) list) list;
      (** string-valued histogram columns: dictionary from the sample *)
}

(** Run the collector over a drained intermediate result, charging its CPU
    cost to the clock. *)
val collect : Exec_ctx.t -> Schema.t -> spec -> Tuple.t array -> observed

(** Estimated collection cost in milliseconds for [rows] tuples under
    [spec] — used by the insertion algorithm's budget. *)
val estimated_cost_ms : spec -> rows:float -> float

(** Turn an observation into catalog statistics for one column (used when
    a re-optimized remainder sees the materialized intermediate as a base
    table). *)
val column_stats_of_observed :
  observed -> column:string -> Mqr_catalog.Column_stats.t

val pp_observed : Format.formatter -> observed -> unit
