(** Canned experiment setups: generated catalog plus the catalog
    degradations that recreate the estimation-error sources the paper
    lists (stale statistics, missing histograms, correlations the
    histograms cannot capture). *)

type degradation =
  | Stale_cardinality of string * float
      (** catalog believes [factor] times the true size (data grew or
          shrank since the last ANALYZE) *)
  | Drop_histogram of string * string      (** (table, column) *)
  | Drop_column_stats of string * string
      (** column never analyzed: no histogram, no min/max, no distinct *)
  | Mark_stale of string * string
  | Histogram_kind of Mqr_stats.Histogram.kind
      (** re-analyze every table with this kind *)

(** The default experiment degradations: lineitem and orders doubled since
    their statistics were collected, the date columns were never analyzed,
    and the string columns the queries filter on lost their histograms. *)
val paper_degradations : degradation list

(** Apply in list order.  Note that [Histogram_kind] re-analyzes every
    table, erasing earlier drop/stale degradations — put it first. *)
val apply : Mqr_catalog.Catalog.t -> degradation list -> unit

(** [experiment_catalog ()] = generate + degrade, ready for the
    benchmarks.  [sf] defaults to 0.01, [skew_z] to 0. *)
val experiment_catalog :
  ?sf:float -> ?skew_z:float -> ?seed:int ->
  ?degradations:degradation list -> unit -> Mqr_catalog.Catalog.t
