open Mqr_storage

let c = Schema.col

let region =
  Schema.make
    [ c "r_regionkey" Value.TInt;
      c ~width:12 "r_name" Value.TString ]

let nation =
  Schema.make
    [ c "n_nationkey" Value.TInt;
      c ~width:16 "n_name" Value.TString;
      c "n_regionkey" Value.TInt ]

let supplier =
  Schema.make
    [ c "s_suppkey" Value.TInt;
      c ~width:18 "s_name" Value.TString;
      c "s_nationkey" Value.TInt;
      c "s_acctbal" Value.TFloat ]

let customer =
  Schema.make
    [ c "c_custkey" Value.TInt;
      c ~width:18 "c_name" Value.TString;
      c "c_nationkey" Value.TInt;
      c ~width:10 "c_mktsegment" Value.TString;
      c "c_acctbal" Value.TFloat ]

let part =
  Schema.make
    [ c "p_partkey" Value.TInt;
      c ~width:24 "p_name" Value.TString;
      c ~width:10 "p_brand" Value.TString;
      c ~width:24 "p_type" Value.TString;
      c "p_size" Value.TInt;
      c "p_retailprice" Value.TFloat ]

let partsupp =
  Schema.make
    [ c "ps_partkey" Value.TInt;
      c "ps_suppkey" Value.TInt;
      c "ps_availqty" Value.TInt;
      c "ps_supplycost" Value.TFloat ]

let orders =
  Schema.make
    [ c "o_orderkey" Value.TInt;
      c "o_custkey" Value.TInt;
      c ~width:1 "o_orderstatus" Value.TString;
      c "o_totalprice" Value.TFloat;
      c "o_orderdate" Value.TDate;
      c ~width:15 "o_orderpriority" Value.TString;
      c "o_shippriority" Value.TInt ]

let lineitem =
  Schema.make
    [ c "l_orderkey" Value.TInt;
      c "l_partkey" Value.TInt;
      c "l_suppkey" Value.TInt;
      c "l_linenumber" Value.TInt;
      c "l_quantity" Value.TFloat;
      c "l_extendedprice" Value.TFloat;
      c "l_discount" Value.TFloat;
      c "l_tax" Value.TFloat;
      c ~width:1 "l_returnflag" Value.TString;
      c ~width:1 "l_linestatus" Value.TString;
      c "l_shipdate" Value.TDate;
      c "l_commitdate" Value.TDate;
      c "l_receiptdate" Value.TDate;
      c ~width:10 "l_shipmode" Value.TString ]

let all =
  [ ("region", region, [ "r_regionkey" ]);
    ("nation", nation, [ "n_nationkey" ]);
    ("supplier", supplier, [ "s_suppkey" ]);
    ("customer", customer, [ "c_custkey" ]);
    ("part", part, [ "p_partkey" ]);
    ("partsupp", partsupp, [ "ps_partkey"; "ps_suppkey" ]);
    ("orders", orders, [ "o_orderkey" ]);
    ("lineitem", lineitem, [ "l_orderkey"; "l_linenumber" ]) ]

let indexes =
  [ ("region", "r_regionkey");
    ("nation", "n_nationkey");
    ("supplier", "s_suppkey");
    ("customer", "c_custkey");
    ("part", "p_partkey");
    ("orders", "o_orderkey");
    ("orders", "o_custkey");
    ("lineitem", "l_orderkey");
    ("lineitem", "l_partkey") ]

let base_cardinality = function
  | "region" -> 5
  | "nation" -> 25
  | "supplier" -> 10_000
  | "customer" -> 150_000
  | "part" -> 200_000
  | "partsupp" -> 800_000
  | "orders" -> 1_500_000
  | "lineitem" -> 6_000_000
  | t -> invalid_arg ("Schema_def.base_cardinality: " ^ t)
