(** TPC-D-style schema definitions (the eight benchmark tables).

    Scaled-down in the data generator; the shapes (keys, foreign keys,
    column types) follow the TPC-D specification [21]. *)

open Mqr_storage

val region : Schema.t
val nation : Schema.t
val supplier : Schema.t
val customer : Schema.t
val part : Schema.t
val partsupp : Schema.t
val orders : Schema.t
val lineitem : Schema.t

(** (table name, schema, primary-key columns). *)
val all : (string * Schema.t * string list) list

(** Columns to index for each table: primary keys plus the foreign keys the
    benchmark queries join on. *)
val indexes : (string * string) list

(** Cardinality of a table at scale factor 1.0 (lineitem is approximate:
    it averages four rows per order). *)
val base_cardinality : string -> int
