open Mqr_storage
module Rng = Mqr_stats.Rng
module Zipf = Mqr_stats.Zipf
module Catalog = Mqr_catalog.Catalog

type options = {
  sf : float;
  skew_z : float;
  seed : int;
  correlated : bool;
  hist_kind : Mqr_stats.Histogram.kind;
  hist_buckets : int;
}

let default =
  { sf = 0.01;
    skew_z = 0.0;
    seed = 42;
    correlated = true;
    hist_kind = Mqr_stats.Histogram.Maxdiff;
    hist_buckets = 16 }

let scaled_cardinality opts table =
  match table with
  | "region" -> 5
  | "nation" -> 25
  | t ->
    max 10
      (int_of_float (float_of_int (Schema_def.base_cardinality t) *. opts.sf))

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [| "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA";
     "FRANCE"; "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN";
     "JORDAN"; "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA";
     "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES" |]

(* nation -> region mapping from the TPC-D spec *)
let nation_region =
  [| 0; 1; 1; 1; 4; 0; 3; 3; 2; 2; 4; 4; 2; 4; 0; 0; 0; 1; 2; 3; 4; 2; 3; 3; 1 |]

let segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities =
  [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let ship_modes =
  [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let part_types =
  [| "ECONOMY ANODIZED STEEL"; "ECONOMY BURNISHED COPPER";
     "STANDARD POLISHED BRASS"; "STANDARD BRUSHED NICKEL";
     "LARGE PLATED TIN"; "MEDIUM ANODIZED COPPER"; "SMALL POLISHED STEEL";
     "PROMO BURNISHED NICKEL" |]

let part_brands = [| "Brand#1"; "Brand#2"; "Brand#3"; "Brand#4"; "Brand#5" |]

(* Skew-aware picker: draws uniformly, or through a Zipfian over the value
   domain when z > 0.  Zipf tables are cached per domain size (building one
   is O(n)). *)
let make_cached_pick rng z =
  let cache : (int, Zipf.t) Hashtbl.t = Hashtbl.create 8 in
  fun n ->
    if n <= 1 then 0
    else if z <= 0.0 then Rng.int rng n
    else begin
      let zipf =
        match Hashtbl.find_opt cache n with
        | Some zf -> zf
        | None ->
          let zf = Zipf.create ~n ~z in
          Hashtbl.replace cache n zf;
          zf
      in
      Zipf.sample_index zipf rng
    end

let date s = Value.date_of_string s

let day_of v = match v with Value.Date d -> d | _ -> assert false

let generate opts =
  let catalog = Catalog.create () in
  let rng = Rng.create opts.seed in
  let pick = make_cached_pick rng opts.skew_z in
  let uniform n = if n <= 1 then 0 else Rng.int rng n in
  let n_supplier = scaled_cardinality opts "supplier" in
  let n_customer = scaled_cardinality opts "customer" in
  let n_part = scaled_cardinality opts "part" in
  let n_partsupp = scaled_cardinality opts "partsupp" in
  let n_orders = scaled_cardinality opts "orders" in
  let mk name schema =
    let heap = Heap_file.create schema in
    ignore (Catalog.add_table catalog name heap);
    heap
  in
  (* region *)
  let region = mk "region" Schema_def.region in
  Array.iteri
    (fun i name ->
       Heap_file.append region [| Value.Int i; Value.String name |])
    region_names;
  (* nation *)
  let nation = mk "nation" Schema_def.nation in
  Array.iteri
    (fun i name ->
       Heap_file.append nation
         [| Value.Int i; Value.String name; Value.Int nation_region.(i) |])
    nation_names;
  (* supplier *)
  let supplier = mk "supplier" Schema_def.supplier in
  for i = 0 to n_supplier - 1 do
    Heap_file.append supplier
      [| Value.Int i;
         Value.String (Printf.sprintf "Supplier#%06d" i);
         Value.Int (pick 25);
         Value.Float (float_of_int (uniform 10_000) /. 10.0 -. 100.0) |]
  done;
  (* customer *)
  let customer = mk "customer" Schema_def.customer in
  for i = 0 to n_customer - 1 do
    Heap_file.append customer
      [| Value.Int i;
         Value.String (Printf.sprintf "Customer#%06d" i);
         Value.Int (pick 25);
         Value.String segments.(pick (Array.length segments));
         Value.Float (float_of_int (uniform 11_000) /. 10.0 -. 100.0) |]
  done;
  (* part *)
  let part = mk "part" Schema_def.part in
  for i = 0 to n_part - 1 do
    Heap_file.append part
      [| Value.Int i;
         Value.String (Printf.sprintf "part name %06d" i);
         Value.String part_brands.(pick (Array.length part_brands));
         Value.String part_types.(pick (Array.length part_types));
         Value.Int (1 + pick 50);
         Value.Float (900.0 +. float_of_int (uniform 1100)) |]
  done;
  (* partsupp *)
  let partsupp = mk "partsupp" Schema_def.partsupp in
  for i = 0 to n_partsupp - 1 do
    Heap_file.append partsupp
      [| Value.Int (i mod n_part);
         Value.Int ((i / 4) mod n_supplier);
         Value.Int (1 + uniform 9999);
         Value.Float (1.0 +. float_of_int (uniform 1000)) |]
  done;
  (* orders + lineitem *)
  let orders = mk "orders" Schema_def.orders in
  let lineitem = mk "lineitem" Schema_def.lineitem in
  let start_day = day_of (date "1992-01-01") in
  let end_day = day_of (date "1998-08-02") in
  let date_span = end_day - start_day in
  let flags = [| "R"; "A"; "N" |] in
  let statuses = [| "O"; "F" |] in
  for o = 0 to n_orders - 1 do
    let custkey = pick n_customer in
    let orderdate = start_day + pick date_span in
    let n_lines = 1 + uniform 7 in
    let totalprice = ref 0.0 in
    for line = 1 to n_lines do
      let quantity = 1 + pick 50 in
      let partkey = pick n_part in
      let suppkey = pick n_supplier in
      let price = float_of_int (quantity * (900 + uniform 1100)) /. 10.0 in
      (* Correlation: bigger quantities get bigger discounts, so the
         optimizer's independence assumption on (quantity, discount)
         predicates is wrong by construction. *)
      let discount =
        if opts.correlated then
          Float.min 0.10 (0.01 +. (float_of_int quantity /. 50.0 *. 0.08))
          +. (float_of_int (uniform 3) /. 100.0)
        else float_of_int (uniform 11) /. 100.0
      in
      let shipdate = orderdate + 1 + uniform 121 in
      let commitdate = orderdate + 30 + uniform 60 in
      let receiptdate =
        if opts.correlated then shipdate + 1 + uniform 30
        else orderdate + 1 + uniform 151
      in
      let returnflag =
        if opts.correlated && receiptdate > commitdate + 15 then "R"
        else flags.(pick 3)
      in
      totalprice := !totalprice +. price;
      Heap_file.append lineitem
        [| Value.Int o;
           Value.Int partkey;
           Value.Int suppkey;
           Value.Int line;
           Value.Float (float_of_int quantity);
           Value.Float price;
           Value.Float discount;
           Value.Float (float_of_int (uniform 9) /. 100.0);
           Value.String returnflag;
           Value.String statuses.(uniform 2);
           Value.Date shipdate;
           Value.Date commitdate;
           Value.Date receiptdate;
           Value.String ship_modes.(pick (Array.length ship_modes)) |]
    done;
    Heap_file.append orders
      [| Value.Int o;
         Value.Int custkey;
         Value.String statuses.(uniform 2);
         Value.Float !totalprice;
         Value.Date orderdate;
         Value.String priorities.(pick (Array.length priorities));
         Value.Int (uniform 2) |]
  done;
  (* statistics + indexes *)
  List.iter
    (fun (name, _, keys) ->
       Catalog.analyze_table ~kind:opts.hist_kind ~buckets:opts.hist_buckets
         ~keys catalog name)
    Schema_def.all;
  List.iter
    (fun (table, column) -> ignore (Catalog.create_index catalog ~table ~column))
    Schema_def.indexes;
  catalog
