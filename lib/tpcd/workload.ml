module Catalog = Mqr_catalog.Catalog

type degradation =
  | Stale_cardinality of string * float
  | Drop_histogram of string * string
  | Drop_column_stats of string * string
  | Mark_stale of string * string
  | Histogram_kind of Mqr_stats.Histogram.kind

let paper_degradations =
  [ (* the fact tables grew since ANALYZE: the optimizer works from sizes
       ~2x too small, so joins above them are under-provisioned *)
    Stale_cardinality ("lineitem", 0.5);
    Stale_cardinality ("orders", 0.5);
    (* the date columns were never analyzed (in 1998 terms: predicates on
       derived/transformed attributes): range guesses default to 1/3 *)
    Drop_column_stats ("orders", "o_orderdate");
    Drop_column_stats ("lineitem", "l_shipdate");
    (* selective string predicates with no histogram: default guesses *)
    Drop_histogram ("customer", "c_mktsegment");
    Drop_histogram ("part", "p_type");
    Drop_histogram ("lineitem", "l_returnflag");
    (* correlated pair (quantity, discount): even with histograms the
       independence assumption misestimates the conjunction *)
    Mark_stale ("lineitem", "l_discount") ]

let apply catalog ds =
  List.iter
    (fun d ->
       match d with
       | Stale_cardinality (table, factor) ->
         Catalog.degrade_scale_cardinality catalog ~table factor
       | Drop_histogram (table, column) ->
         Catalog.degrade_drop_histogram catalog ~table ~column
       | Drop_column_stats (table, column) ->
         Catalog.degrade_drop_column_stats catalog ~table ~column
       | Mark_stale (table, column) ->
         Catalog.degrade_mark_stale catalog ~table ~column
       | Histogram_kind kind ->
         List.iter
           (fun (name, _, _) ->
              Catalog.degrade_set_histogram_kind catalog ~table:name ~kind)
           Schema_def.all)
    ds

let experiment_catalog ?(sf = 0.01) ?(skew_z = 0.0) ?(seed = 42)
    ?(degradations = paper_degradations) () =
  let catalog =
    Datagen.generate { Datagen.default with Datagen.sf; skew_z; seed }
  in
  apply catalog degradations;
  catalog
