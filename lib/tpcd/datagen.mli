(** Scaled-down TPC-D data generator.

    Follows dbgen's shapes: fixed region/nation dimension tables, 1–7
    lineitems per order, ship/commit/receipt dates derived from the order
    date.  Two deliberate departures used by the experiments:

    - [skew_z > 0] draws every non-key attribute (and the foreign-key
      references) from a generalized Zipfian distribution, as in the
      paper's skew experiments (z = 0.3, 0.6);
    - [correlated] (on by default, as in real data) ties [l_discount] to
      [l_quantity] and [l_receiptdate] to [l_shipdate], producing the
      multi-attribute selection correlations that break the optimizer's
      independence assumption (the paper's footnote 2). *)

type options = {
  sf : float;          (** scale factor; 1.0 = full TPC-D sizes *)
  skew_z : float;      (** Zipf parameter; 0 = uniform *)
  seed : int;
  correlated : bool;
  hist_kind : Mqr_stats.Histogram.kind;  (** catalog histogram kind *)
  hist_buckets : int;
}

val default : options

(** Populate a fresh catalog: tables loaded, statistics analyzed with the
    requested histogram kind, B+-tree indexes built per
    {!Schema_def.indexes}. *)
val generate : options -> Mqr_catalog.Catalog.t

(** Row count of a table at these options. *)
val scaled_cardinality : options -> string -> int
