(** The TPC-D benchmark queries used in the paper's evaluation (Q1, Q3,
    Q5, Q6, Q7, Q8, Q10), simplified exactly as the paper describes:
    aggregates over expressions are replaced by plain-column aggregates,
    and features Paradise lacked are dropped.  Join structure — what the
    experiments depend on — is preserved. *)

type klass = Simple | Medium | Complex

val klass_to_string : klass -> string

type query = {
  name : string;   (** e.g. "Q5" *)
  sql : string;
  joins : int;
  klass : klass;
}

val q1 : query
val q3 : query
val q5 : query
val q6 : query
val q7 : query
val q8 : query
val q10 : query

(** In the paper's presentation order: simple, medium, complex. *)
val all : query list

val find : string -> query

(** The paper's classification rule: 0–1 joins simple, 2–3 medium, 4+
    complex. *)
val classify : joins:int -> klass
