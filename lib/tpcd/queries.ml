type klass = Simple | Medium | Complex

let klass_to_string = function
  | Simple -> "simple"
  | Medium -> "medium"
  | Complex -> "complex"

type query = {
  name : string;
  sql : string;
  joins : int;
  klass : klass;
}

let classify ~joins =
  if joins <= 1 then Simple else if joins <= 3 then Medium else Complex

let mk name joins sql = { name; sql; joins; klass = classify ~joins }

let q1 =
  mk "Q1" 0
    "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
     sum(l_extendedprice) as sum_price, avg(l_quantity) as avg_qty, \
     avg(l_discount) as avg_disc, count(*) as count_order \
     from lineitem \
     where l_shipdate <= date '1998-09-02' \
     group by l_returnflag, l_linestatus \
     order by l_returnflag, l_linestatus"

let q3 =
  mk "Q3" 2
    "select l_orderkey, sum(l_extendedprice) as revenue, o_orderdate, \
     o_shippriority \
     from customer, orders, lineitem \
     where c_mktsegment = 'BUILDING' and c_custkey = o_custkey \
     and l_orderkey = o_orderkey and o_orderdate < date '1995-03-15' \
     and l_shipdate > date '1995-03-15' \
     group by l_orderkey, o_orderdate, o_shippriority \
     order by revenue desc, o_orderdate limit 10"

let q5 =
  mk "Q5" 5
    "select n_name, sum(l_extendedprice) as revenue \
     from customer, orders, lineitem, supplier, nation, region \
     where c_custkey = o_custkey and l_orderkey = o_orderkey \
     and l_suppkey = s_suppkey and c_nationkey = s_nationkey \
     and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
     and r_name = 'ASIA' and o_orderdate >= date '1994-01-01' \
     and o_orderdate < date '1995-01-01' \
     group by n_name order by revenue desc"

let q6 =
  mk "Q6" 0
    "select sum(l_extendedprice) as revenue \
     from lineitem \
     where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' \
     and l_discount between 0.05 and 0.07 and l_quantity < 24"

let q7 =
  mk "Q7" 5
    "select n1.n_name as supp_nation, n2.n_name as cust_nation, \
     sum(l_extendedprice) as revenue \
     from supplier, lineitem, orders, customer, nation n1, nation n2 \
     where s_suppkey = l_suppkey and o_orderkey = l_orderkey \
     and c_custkey = o_custkey and s_nationkey = n1.n_nationkey \
     and c_nationkey = n2.n_nationkey \
     and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY') \
     or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE')) \
     and l_shipdate between date '1995-01-01' and date '1996-12-31' \
     group by n1.n_name, n2.n_name"

let q8 =
  mk "Q8" 7
    "select n2.n_name as nation, sum(l_extendedprice) as volume \
     from part, supplier, lineitem, orders, customer, nation n1, nation n2, \
     region \
     where p_partkey = l_partkey and s_suppkey = l_suppkey \
     and l_orderkey = o_orderkey and o_custkey = c_custkey \
     and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey \
     and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey \
     and o_orderdate between date '1995-01-01' and date '1996-12-31' \
     and p_type = 'ECONOMY ANODIZED STEEL' \
     group by n2.n_name"

let q10 =
  mk "Q10" 3
    "select c_custkey, c_name, sum(l_extendedprice) as revenue, n_name \
     from customer, orders, lineitem, nation \
     where c_custkey = o_custkey and l_orderkey = o_orderkey \
     and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01' \
     and l_returnflag = 'R' and c_nationkey = n_nationkey \
     group by c_custkey, c_name, n_name \
     order by revenue desc limit 20"

let all = [ q1; q6; q3; q10; q5; q7; q8 ]

let find name =
  match List.find_opt (fun q -> q.name = name) all with
  | Some q -> q
  | None -> invalid_arg ("Queries.find: unknown query " ^ name)
