open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Column_stats = Mqr_catalog.Column_stats
module Expr = Mqr_expr.Expr
module Query = Mqr_sql.Query
module Plan = Mqr_opt.Plan
module Optimizer = Mqr_opt.Optimizer
module Stats_env = Mqr_opt.Stats_env
module Cost_model = Mqr_opt.Cost_model
module Memory_manager = Mqr_memman.Memory_manager
module Exec_ctx = Mqr_exec.Exec_ctx
module Scan = Mqr_exec.Scan
module Rows_ops = Mqr_exec.Rows_ops
module Join = Mqr_exec.Join
module Sort_op = Mqr_exec.Sort
module Merge_join = Mqr_exec.Merge_join
module Aggregate = Mqr_exec.Aggregate
module Collector = Mqr_exec.Collector
module Runtime_filter = Mqr_exec.Runtime_filter
module Parallel = Mqr_exec.Parallel
module Domain_pool = Mqr_exec.Domain_pool
module Verifier = Mqr_analysis.Verifier
module Diagnostic = Mqr_analysis.Diagnostic
module Bounds = Mqr_analysis.Bounds
module Trace = Mqr_obs.Trace
module Metrics = Mqr_obs.Metrics
module Progress = Mqr_obs.Progress

let log_src = Logs.Src.create "mqr.dispatcher" ~doc:"Mid-query re-optimization"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Off | Memory_only | Plan_only | Full | Bound_checked

let mode_to_string = function
  | Off -> "off"
  | Memory_only -> "memory-only"
  | Plan_only -> "plan-only"
  | Full -> "full"
  | Bound_checked -> "bound-checked"

type config = {
  catalog : Catalog.t;
  model : Sim_clock.model;
  pool_pages : int;
  budget_pages : int;
  params : Reopt_policy.params;
  opt_options : Optimizer.options;
  mode : mode;
  start_sampling : int option;
      (* probe uncertain local predicates with this many sampled rows
         before optimizing (hybrid parametric/dynamic strategy) *)
  broker : (min_pages:int -> max_pages:int -> int) option;
      (* when set, the memory budget is not fixed: every (re-)allocation
         asks the broker for a lease sized to the remaining plan's demand,
         so a workload manager can move pages between concurrent queries *)
  env_overlay : (Query.t -> Stats_env.t -> unit) option;
      (* applied to every freshly built estimation environment (initial
         optimization and mid-query re-optimizations) before the query's
         own observed statistics; a workload manager uses it to feed
         statistics observed by earlier queries into this one *)
  temp_prefix : string;
      (* disambiguates intermediate-result table names when several
         queries share one catalog (concurrent workloads) *)
  verify : Verifier.mode;
      (* static plan verification: [Pre] checks the instrumented plan
         before execution (errors refuse to execute), [Sanitize] also
         re-verifies the remainder at every decision point and after
         every mid-query plan switch *)
  trace : Trace.scope option;
      (* when set, the run stamps operator/unit/query spans, decision-point
         audit-ledger entries and metrics into the scope's parent trace;
         tracing is pure observation and never charges the simulated
         clock *)
  domain_pool : Mqr_exec.Domain_pool.t option;
      (* real OCaml domains the per-worker closures of parallel operators
         are submitted to.  The pool only changes wall-clock time: result
         rows and simulated charges are functions of each operator's plan
         [dop], never of the pool size (None = run workers inline) *)
  progress : Progress.t option;
      (* when set, the run records a progress/ETA sample at start, at
         every decision point, after every plan switch and on completion,
         built from the remainder's Eq.1 estimate and its provable
         remaining-cost interval; like tracing, progress is pure
         observation and never charges the simulated clock *)
}

type event =
  | Ev_unit_done of { op : string; est_rows : float; actual_rows : int }
  | Ev_collected of { cid : int; alias : string; columns : string list }
  | Ev_realloc of { grants : Memory_manager.grant list }
  | Ev_considered of {
      decision : Reopt_policy.decision;
      t_improved : float;
      t_optimizer : float;
      t_opt_estimated : float;
    }
  | Ev_switched of {
      t_new_total : float;
      t_improved : float;
      materialize_ms : float;
    }
  | Ev_rejected of { t_new_total : float; t_improved : float }
  | Ev_bound_check of {
      new_hi_ms : float;  (* candidate's provable worst-case remaining cost *)
      cur_lo_ms : float;  (* current plan's provable best-case remaining cost *)
      admitted : bool;    (* worst case provably beats best case? *)
    }
  | Ev_sampled of Sampling.probe
  | Ev_parallel of {
      op : string;           (* operator run with an exchange *)
      dop : int;             (* plan degree of parallelism *)
      want_pages : int;      (* pool-page slices requested for workers *)
      got_pages : int;       (* slices actually leased (shortfall visible) *)
      max_worker_ms : float; (* slowest worker's simulated time (charged) *)
      avg_worker_ms : float; (* mean worker simulated time (skew signal) *)
    }
  | Ev_filter of {
      source : string;      (* publishing join *)
      target_col : string;  (* probe-side column being pruned *)
      est_sel : float;
      observed_sel : float;
      probed : int;
      dropped : int;
      pages : int;          (* bloom bitmap pages leased *)
    }

type report = {
  rows : Tuple.t array;
  result_schema : Schema.t;
  elapsed_ms : float;
  counters : Sim_clock.counters;
  events : event list;
  timed_events : (float * event) list;
      (* every event with the Sim_clock time at which it was emitted —
         [events] is the same list unstamped, kept for compatibility *)
  switches : int;
  collectors : int;
  initial_plan : Plan.t;
  final_plan : Plan.t;
  actual_rows : (int * int) list;
      (* (plan node id, observed output rows) for every executed node *)
  actual_ms : (int * float) list;
      (* (plan node id, simulated ms spent in that node alone) *)
  pool_hits : int;
  pool_misses : int;
  observed_stats : (string * Column_stats.t) list;
      (* qualified column -> statistics gathered by this query's
         collectors; outlives the query (paper Section 2.6) *)
  observed_cards : (string * int) list;
      (* alias -> exact cardinality, for relations scanned in full *)
  filters : (string * float * float) list;
      (* (probe column, estimated selectivity, observed selectivity) for
         every runtime filter built, in build order *)
  filter_pages_peak : int;
      (* most bloom-bitmap pages held at once (leased from the broker when
         one is configured) *)
  filter_pages_held : int;
      (* bloom-bitmap pages still held at completion; 0 is the lifetime
         invariant the sanitizer asserts *)
  worker_pages_peak : int;
      (* most pool-page slices leased to parallel workers at once *)
  worker_pages_held : int;
      (* worker slices still held at completion; 0 is the lease invariant
         the sanitizer asserts (same discipline as filter pages) *)
  collector_ms : float;
      (* simulated CPU spent inside statistics collectors *)
  verifications : int;
      (* plan-verification runs performed (0 when verify = Off) *)
}

(* ------------------------------------------------------------------ *)
(* Run state.                                                          *)

type state = {
  cfg : config;
  ctx : Exec_ctx.t;
  mutable memman : Memory_manager.t;
  query : Query.t;
  mutable env : Stats_env.t;
  mutable current : Plan.t;
  (* original optimizer estimates per node id — the plan annotations *)
  orig_op_ms : (int, float) Hashtbl.t;
  (* in-memory intermediate results by temp-table name *)
  store : (string, Tuple.t array * Schema.t) Hashtbl.t;
  (* observed column statistics, re-applied to every new Stats_env *)
  mutable overrides : (string * Column_stats.t) list;
  mutable temp_names : string list;
  (* alias -> exact cardinality for full (unfiltered) scans *)
  mutable observed_cards : (string * int) list;
  (* (emission time, event), newest first *)
  mutable events : (float * event) list;
  mutable switches : int;
  mutable next_temp : int;
  mutable next_id : int;  (* fresh plan-node ids *)
  (* observed output cardinality per executed plan-node id *)
  actuals : (int, int) Hashtbl.t;
  (* simulated milliseconds spent inside each node (children excluded) *)
  actual_ms : (int, float) Hashtbl.t;
  (* runtime filters currently pushed down (publishing join's build side
     done, probe side executing); scans test their output against these *)
  mutable active_filters : Runtime_filter.t list;
  (* bloom-bitmap pages currently held / high-water mark *)
  mutable filter_pages : int;
  mutable filter_pages_peak : int;
  (* (probe column, est sel, observed sel) per retired filter, newest first *)
  mutable filter_obs : (string * float * float) list;
  (* a retired filter's pass rate deviated badly from the estimate: force
     the next decision point past the Eq. 2 close-enough shortcut *)
  mutable filter_surprise : bool;
  (* pool-page slices currently leased to parallel workers / high-water *)
  mutable worker_pages : int;
  mutable worker_pages_peak : int;
  (* a parallel operator's workers finished badly out of balance: force
     the next decision point so re-costing can re-pick degrees *)
  mutable skew_surprise : bool;
  (* simulated milliseconds spent inside statistics collectors *)
  mutable collector_ms : float;
  (* plan-verification runs performed *)
  mutable verifications : int;
  (* simulated milliseconds runtime filters spent testing probe rows *)
  mutable filter_probe_ms : float;
  (* the execution unit that last finished — the cardinality context the
     audit ledger attaches to every decision entry *)
  mutable unit_op : string;
  mutable unit_est : float;
  mutable unit_actual : int;
  (* a filter surprise forced the current decision point past Eq. 2 *)
  mutable last_force : bool;
}

(* forward declaration for logging of events (defined below) *)
let pp_event_ref :
  (Format.formatter -> event -> unit) ref =
  ref (fun _ _ -> ())

(* ------------------------------------------------------------------ *)
(* Observability: translate dispatcher events into audit-ledger entries,
   metrics and trace instants.  Pure observation — nothing here charges
   the simulated clock.                                                *)

let now st = Sim_clock.elapsed_ms st.ctx.Exec_ctx.clock

let decision_metric = function
  | Reopt_policy.Too_cheap -> "decision.too_cheap"
  | Reopt_policy.Close_enough -> "decision.close_enough"
  | Reopt_policy.Consider -> "decision.consider"

let ledger_entry st scope ~ts kind =
  Trace.decision scope ~ts_ms:ts ~unit_op:st.unit_op ~est_rows:st.unit_est
    ~actual_rows:st.unit_actual kind

let trace_event st scope ~ts ev =
  let m = Trace.scope_metrics scope in
  match ev with
  | Ev_unit_done { op; est_rows; actual_rows } ->
    st.unit_op <- op;
    st.unit_est <- est_rows;
    st.unit_actual <- actual_rows
  | Ev_collected { cid; alias; columns } ->
    Metrics.incr m "collector.collections";
    Trace.instant scope ~cat:"collector"
      ~name:(Printf.sprintf "collected#%d" cid)
      ~args:
        [ ("alias", Trace.Str alias);
          ("columns", Trace.Str (String.concat "," columns)) ]
      ~ts_ms:ts ()
  | Ev_realloc { grants } ->
    Metrics.incr m "decision.realloc";
    ledger_entry st scope ~ts
      (Trace.Realloc
         { granted_pages =
             List.fold_left
               (fun acc (g : Memory_manager.grant) ->
                  acc + g.Memory_manager.granted)
               0 grants;
           consumers = List.length grants })
  | Ev_considered { decision; t_improved; t_optimizer; t_opt_estimated } ->
    Metrics.incr m "decision.considered";
    Metrics.incr m (decision_metric decision);
    ledger_entry st scope ~ts
      (Trace.Considered
         { decision = Reopt_policy.decision_to_string decision;
           t_improved;
           t_optimizer;
           t_opt_estimated;
           forced = st.last_force })
  | Ev_switched { t_new_total; t_improved; materialize_ms } ->
    Metrics.incr m "plan.switched";
    ledger_entry st scope ~ts
      (Trace.Switched { t_new_total; t_improved; materialize_ms })
  | Ev_rejected { t_new_total; t_improved } ->
    Metrics.incr m "plan.rejected";
    ledger_entry st scope ~ts (Trace.Rejected { t_new_total; t_improved })
  | Ev_bound_check { new_hi_ms; cur_lo_ms; admitted } ->
    Metrics.incr m
      (if admitted then "bounds.admitted" else "bounds.vetoed");
    Trace.instant scope ~cat:"bounds" ~name:"bound_check"
      ~args:
        [ ("new_hi_ms", Trace.Float new_hi_ms);
          ("cur_lo_ms", Trace.Float cur_lo_ms);
          ("admitted", Trace.Str (if admitted then "true" else "false")) ]
      ~ts_ms:ts ()
  | Ev_sampled p ->
    Metrics.incr m "sampling.probes";
    Trace.instant scope ~cat:"sampling" ~name:("probe:" ^ p.Sampling.alias)
      ~args:
        [ ("sampled", Trace.Int p.Sampling.sampled);
          ("matched", Trace.Int p.Sampling.matched);
          ("observed_sel", Trace.Float p.Sampling.observed_selectivity);
          ("estimated_sel", Trace.Float p.Sampling.estimated_selectivity) ]
      ~ts_ms:ts ()
  | Ev_parallel { op; dop; want_pages; got_pages; max_worker_ms; avg_worker_ms }
    ->
    Metrics.incr m "parallel.ops";
    Metrics.observe m "parallel.max_worker_ms" max_worker_ms;
    if avg_worker_ms > 0.0 then
      Metrics.observe m "parallel.skew" (max_worker_ms /. avg_worker_ms);
    Trace.instant scope ~cat:"parallel" ~name:("exchange:" ^ op)
      ~args:
        [ ("dop", Trace.Int dop);
          ("want_pages", Trace.Int want_pages);
          ("got_pages", Trace.Int got_pages);
          ("max_worker_ms", Trace.Float max_worker_ms);
          ("avg_worker_ms", Trace.Float avg_worker_ms) ]
      ~ts_ms:ts ()
  | Ev_filter { source; target_col; est_sel; observed_sel; probed; dropped;
                pages } ->
    Metrics.incr m "filter.built";
    Metrics.observe m "filter.est_sel" est_sel;
    Metrics.observe m "filter.observed_sel" observed_sel;
    Trace.instant scope ~cat:"filter" ~name:("rf:" ^ target_col)
      ~args:
        [ ("source", Trace.Str source);
          ("est_sel", Trace.Float est_sel);
          ("observed_sel", Trace.Float observed_sel);
          ("probed", Trace.Int probed);
          ("dropped", Trace.Int dropped);
          ("pages", Trace.Int pages) ]
      ~ts_ms:ts ()

let emit st ev =
  let ts = now st in
  st.events <- (ts, ev) :: st.events;
  (match st.cfg.trace with
   | Some scope -> trace_event st scope ~ts ev
   | None ->
     (* the ledger's cardinality context is also kept without a trace so
        behaviour does not depend on observability being attached *)
     (match ev with
      | Ev_unit_done { op; est_rows; actual_rows } ->
        st.unit_op <- op;
        st.unit_est <- est_rows;
        st.unit_actual <- actual_rows
      | _ -> ()));
  Log.debug (fun m -> m "%a" !pp_event_ref ev)

(* Span helpers: no-ops without an attached trace. *)
let span_open st ~cat name =
  match st.cfg.trace with
  | None -> None
  | Some scope -> Some (Trace.open_span scope ~cat ~name ~ts_ms:(now st) ())

let span_close st ?(args = []) tok =
  match st.cfg.trace, tok with
  | Some scope, Some tok -> Trace.close_span scope ~args ~ts_ms:(now st) tok
  | _ -> ()

let fresh_plan_id st =
  st.next_id <- st.next_id + 1;
  st.next_id

let fresh_temp_name st =
  st.next_temp <- st.next_temp + 1;
  Printf.sprintf "__temp%s_%d" st.cfg.temp_prefix st.next_temp

let record_annotations st plan =
  List.iter
    (fun (n : Plan.t) ->
       Hashtbl.replace st.orig_op_ms n.Plan.id n.Plan.est.Plan.op_ms)
    (Plan.nodes plan)

let apply_overrides st env =
  List.iter
    (fun (column, stats) -> Stats_env.override env ~column stats)
    st.overrides

(* ------------------------------------------------------------------ *)
(* Plan verification (static analysis; see Mqr_analysis.Verifier).     *)

(* The dispatcher's answers to the verifier's questions: the temp-table
   store (so a re-planned remainder is checked against what was actually
   materialized), the live memory budget, and the mu collector bound. *)
let verifier_context st =
  Verifier.context
    ~temp_schema:(fun name -> Option.map snd (Hashtbl.find_opt st.store name))
    ~budget_pages:(Memory_manager.budget_pages st.memman)
    ~mu:st.cfg.params.Reopt_policy.mu st.cfg.catalog

(* Verification is pure analysis: it never touches the simulated clock,
   so turning the sanitizer on cannot change a query's elapsed time. *)
let verify_plan st ~what plan =
  if st.cfg.verify <> Verifier.Off then begin
    st.verifications <- st.verifications + 1;
    ignore (Verifier.check_exn ~what (verifier_context st) plan)
  end

(* The sanitizer's dynamic half of the transient-lease lifetime passes:
   bitmap pages and worker pool slices must both be back to zero whenever
   execution is observable from outside a unit. *)
let assert_filters_retired st ~what =
  if st.filter_pages <> 0 then
    raise
      (Verifier.Rejected
         { what;
           diags =
             [ Diagnostic.error ~pass:"resource" ~code:"RF-LIFETIME"
                 ~hint:"runtime filters must retire within their unit"
                 ~node_id:st.current.Plan.id
                 ~path:[ Plan.op_name st.current ]
                 (Printf.sprintf
                    "%d bloom-bitmap pages still leased at a decision point"
                    st.filter_pages) ] });
  if st.worker_pages <> 0 then
    raise
      (Verifier.Rejected
         { what;
           diags =
             [ Diagnostic.error ~pass:"parallel" ~code:"PAR-LIFETIME"
                 ~hint:"worker pool slices must release within their operator"
                 ~node_id:st.current.Plan.id
                 ~path:[ Plan.op_name st.current ]
                 (Printf.sprintf
                    "%d worker pool-slice pages still leased at a decision \
                     point"
                    st.worker_pages) ] })

(* Ground-truth environment for the bounds analysis: bucket/distinct
   counts of temp tables are sample-derived (inherited from a reservoir
   collector) and therefore not trusted; base-table counts are. *)
let bounds_env st =
  Bounds.env ~count_trusted:(fun name -> not (Hashtbl.mem st.store name))
    st.cfg.catalog

(* Progress estimator feed: the remainder's Eq.1 estimate plus its
   provable remaining-cost interval, read off the current plan at the
   current simulated time.  Pure observation — reads the clock, never
   charges it — so attaching progress leaves rows and simulated elapsed
   bit-identical (same bar as tracing). *)
let progress_update st label =
  match st.cfg.progress with
  | None -> ()
  | Some p ->
    let rem_est = st.current.Plan.est.Plan.total_ms in
    let iv =
      Bounds.cost_interval (bounds_env st) ~model:st.cfg.model
        ~max_dop:st.cfg.opt_options.Optimizer.max_dop st.current
    in
    ignore
      (Progress.update p ~label ~now_ms:(now st) ~remaining_est_ms:rem_est
         ~remaining_lo_ms:iv.Bounds.lo ~remaining_hi_ms:iv.Bounds.hi)

let progress_finish st =
  match st.cfg.progress with
  | None -> ()
  | Some p -> ignore (Progress.finish p ~now_ms:(now st))

(* The sanitizer's dynamic half of the bounds pass: every cardinality the
   executor just observed must lie inside its provable interval.  The
   analysis claims soundness, so any violation is a hard error, not a
   warning.  [subtree] limits the check to the nodes that actually ran in
   this unit — after a plan switch, retired node ids may collide with
   renumbered ones, so only just-executed ids are compared. *)
let assert_observed_bounds st ~what subtree =
  let a = Bounds.analyze (bounds_env st) st.current in
  let diags =
    List.filter_map
      (fun (n : Plan.t) ->
         match
           (Hashtbl.find_opt st.actuals n.Plan.id, Bounds.rows a n.Plan.id)
         with
         | Some obs, Some iv
           when not (Bounds.contains iv (float_of_int obs)) ->
           Some
             (Diagnostic.error ~pass:"bounds" ~code:"BND-OBSERVED"
                ~hint:
                  "a statistic the analysis trusted is wrong, or the \
                   analysis itself is unsound"
                ~node_id:n.Plan.id
                ~path:[ Plan.op_name n ]
                (Printf.sprintf
                   "%s produced %d rows, outside its provable interval %s"
                   (Plan.op_name n) obs
                   (Fmt.str "%a" Bounds.pp_interval iv)))
         | _ -> None)
      (Plan.nodes subtree)
  in
  if diags <> [] then raise (Verifier.Rejected { what; diags })

(* ------------------------------------------------------------------ *)
(* Executing plan nodes.                                               *)

let bare_column col =
  match String.index_opt col '.' with
  | Some i -> String.sub col (i + 1) (String.length col - i - 1)
  | None -> col

let heap_of st table = (Catalog.find_exn st.cfg.catalog table).Catalog.heap

(* --- transient page leases (runtime filters, parallel workers) ----- *)

(* Bloom bitmaps and parallel workers' buffer-pool slices are both
   transient working memory: leased from the broker on top of the
   remaining plan's demand while a unit runs, always back to zero at
   decision points and at query completion.  The broker sees one combined
   figure (filter pages + worker pages) so concurrent queries are charged
   for everything a unit really holds; without a broker each kind has its
   own cap ([no_broker_cap], checked against that kind's own holdings). *)
let acquire_transient_pages st ~no_broker_cap ~kind_held ~held want =
  if want <= 0 then 0
  else
    match st.cfg.broker with
    | None ->
      let cap = max 1 no_broker_cap in
      min want (max 0 (cap - kind_held ()))
    | Some lease ->
      let min_d, max_d = Memory_manager.plan_demand st.current in
      let tentative = held () + want in
      let budget =
        lease ~min_pages:(min_d + tentative) ~max_pages:(max_d + tentative)
      in
      (* pages the lease grants beyond the plan's hard minimum are
         available to transient consumers *)
      let covered = max 0 (budget - min_d) in
      let shortfall = max 0 (tentative - covered) in
      let got = max 0 (want - shortfall) in
      if got < want then
        (* shrink the lease back to what we actually hold *)
        ignore
          (lease ~min_pages:(min_d + held () + got)
             ~max_pages:(max_d + held () + got));
      got

let release_transient_pages st ~held =
  match st.cfg.broker with
  | None -> ()
  | Some lease ->
    let min_d, max_d = Memory_manager.plan_demand st.current in
    ignore
      (lease ~min_pages:(min_d + held ()) ~max_pages:(max_d + held ()))

(* --- runtime-filter lifecycle ------------------------------------- *)

(* The combined transient figure the broker negotiates against. *)
let pages_in_flight st = st.filter_pages + st.worker_pages

let acquire_filter_pages st want =
  let got =
    acquire_transient_pages st
      ~no_broker_cap:(st.cfg.budget_pages / 4)
      ~kind_held:(fun () -> st.filter_pages)
      ~held:(fun () -> pages_in_flight st)
      want
  in
  st.filter_pages <- st.filter_pages + got;
  if st.filter_pages > st.filter_pages_peak then
    st.filter_pages_peak <- st.filter_pages;
  got

let release_filter_pages st n =
  if n > 0 then begin
    st.filter_pages <- max 0 (st.filter_pages - n);
    release_transient_pages st ~held:(fun () -> pages_in_flight st)
  end

(* --- parallel-worker lifecycle ------------------------------------ *)

(* Each worker of a parallel operator runs against its own buffer-pool
   slice.  The slices are transient working memory exactly like bloom
   bitmaps: leased for the duration of one operator, visible to the
   broker, and provably back to zero at decision points.  Without a
   broker the slices merely subdivide the query's own pool, so the cap is
   the pool itself. *)
let acquire_worker_pages st want =
  let got =
    acquire_transient_pages st ~no_broker_cap:st.cfg.pool_pages
      ~kind_held:(fun () -> st.worker_pages)
      ~held:(fun () -> pages_in_flight st)
      want
  in
  st.worker_pages <- st.worker_pages + got;
  if st.worker_pages > st.worker_pages_peak then
    st.worker_pages_peak <- st.worker_pages;
  got

let release_worker_pages st n =
  if n > 0 then begin
    st.worker_pages <- max 0 (st.worker_pages - n);
    release_transient_pages st ~held:(fun () -> pages_in_flight st)
  end

(* Workers finishing more than this factor above the mean signal a skewed
   partitioning: the next decision point is forced past Eq. 2 so
   re-costing (with the now-better statistics) can re-pick degrees. *)
let skew_factor = 2.0

(* Run one parallel operator end to end: lease the workers' pool slices
   (clamped to what the broker grants — over-commit surfaces as a smaller
   slice, not an abort), stamp each worker's span onto its own trace
   lane, emit the exchange event, and flag skew.  [f] receives the
   configured exchange, the per-worker slice, and the completion
   callback to pass through to [Parallel]. *)
let with_workers st (p : Plan.t) ~op f =
  let dop = p.Plan.dop in
  let par = Parallel.make ?pool:st.cfg.domain_pool ~degree:dop () in
  let want = dop * max 1 (st.cfg.pool_pages / dop) in
  let got = acquire_worker_pages st want in
  let slice = max 1 (got / dop) in
  let sims = Array.make dop 0.0 in
  let walls = Array.make dop 0.0 in
  let t_start = now st in
  let on_worker i ~sim_ms ~wall_ms =
    sims.(i) <- sim_ms;
    walls.(i) <- wall_ms
  in
  Fun.protect
    ~finally:(fun () -> release_worker_pages st got)
    (fun () ->
       let result = f par ~slice_pages:slice ~on_worker in
       (match st.cfg.trace with
        | None -> ()
        | Some scope ->
          Array.iteri
            (fun i sim_ms ->
               let lane = Trace.worker_lane scope i in
               let tok =
                 Trace.open_span lane ~cat:"worker" ~name:op ~ts_ms:t_start ()
               in
               Trace.close_span lane ~ts_ms:(t_start +. sim_ms) tok
                 ~args:
                   [ ("sim_ms", Trace.Float sim_ms);
                     ("wall_ms", Trace.Float walls.(i)) ])
            sims);
       let max_ms = Array.fold_left Float.max 0.0 sims in
       let avg_ms =
         Array.fold_left ( +. ) 0.0 sims /. float_of_int (max 1 dop)
       in
       if avg_ms > 0.0 && max_ms /. avg_ms > skew_factor then
         st.skew_surprise <- true;
       emit st
         (Ev_parallel
            { op; dop; want_pages = want; got_pages = got;
              max_worker_ms = max_ms; avg_worker_ms = avg_ms });
       result)

(* Build one filter per annotation from the finished build/left side and
   push it onto the active stack.  An annotation whose build column is
   missing from the delivered schema (projected away) is skipped. *)
let install_filters st ~source ~rf ~rows ~schema =
  let tok =
    if rf = [] then None else span_open st ~cat:"filter" "rf-build"
  in
  let installed =
    List.filter_map
      (fun (f : Plan.rf) ->
         match Schema.index_of schema f.Plan.rf_build_col with
         | exception (Not_found | Schema.Ambiguous _) -> None
         | key_idx ->
           let want = Runtime_filter.pages_for ~keys:(Array.length rows) in
           let got = acquire_filter_pages st want in
           let flt =
             Runtime_filter.create st.ctx ~source
               ~build_col:f.Plan.rf_build_col ~target_col:f.Plan.rf_probe_col
               ~est_sel:f.Plan.rf_sel ~max_pages:got ~key_idx rows
           in
           st.active_filters <- flt :: st.active_filters;
           Some (flt, got))
      rf
  in
  if rf <> [] then
    span_close st tok
      ~args:
        [ ("source", Trace.Str source);
          ("filters", Trace.Int (List.length installed));
          ("keys", Trace.Int (Array.length rows));
          ("pages",
           Trace.Int (List.fold_left (fun a (_, p) -> a + p) 0 installed)) ];
  installed

(* Pop the filters once the probe side has run: report the observed pass
   rate (feeding the re-optimization policy) and return the leased
   pages. *)
let retire_filters st installed =
  List.iter
    (fun ((flt : Runtime_filter.t), pages) ->
       st.active_filters <- List.filter (fun g -> g != flt) st.active_filters;
       let est = Runtime_filter.est_sel flt in
       let obs = Runtime_filter.observed_sel flt in
       emit st
         (Ev_filter
            { source = Runtime_filter.source flt;
              target_col = Runtime_filter.target_col flt;
              est_sel = est;
              observed_sel = obs;
              probed = Runtime_filter.probed flt;
              dropped = Runtime_filter.dropped flt;
              pages });
       st.filter_obs <-
         (Runtime_filter.target_col flt, est, obs) :: st.filter_obs;
       if Runtime_filter.probed flt > 0
       && Reopt_policy.filter_surprise st.cfg.params ~est ~obs
       then st.filter_surprise <- true;
       release_filter_pages st pages)
    installed

(* A filter that has seen a fair sample of probes and passed nearly all of
   them prunes nothing: testing further rows is pure overhead.  Such
   filters are retired early — dropped from the active stack so scans stop
   consulting them, while the publishing join still releases their pages
   and reports them at the usual retire point. *)
let rf_useless_sel = 0.9
let rf_useless_min_probed = 256

let drop_useless_filters st =
  match st.active_filters with
  | [] -> ()
  | filters ->
    st.active_filters <-
      List.filter
        (fun flt ->
           not
             (Runtime_filter.probed flt >= rf_useless_min_probed
              && Runtime_filter.observed_sel flt >= rf_useless_sel))
        filters

(* Test rows flowing out of a leaf against every active filter whose
   target column the schema carries. *)
let apply_runtime_filters st schema rows =
  drop_useless_filters st;
  match st.active_filters with
  | [] -> rows
  | filters ->
    let t0 = Sim_clock.snapshot st.ctx.Exec_ctx.clock in
    let rows =
      List.fold_left
        (fun rows flt ->
           match Runtime_filter.applicable flt schema with
           | Some idx -> Runtime_filter.apply st.ctx flt ~idx rows
           | None -> rows)
        rows filters
    in
    st.filter_probe_ms <-
      st.filter_probe_ms +. Sim_clock.since st.ctx.Exec_ctx.clock t0;
    rows

let rec exec_node st (p : Plan.t) : Tuple.t array * Schema.t =
  let tok = span_open st ~cat:"operator" (Plan.op_name p) in
  let t0 = Sim_clock.snapshot st.ctx.Exec_ctx.clock in
  let rows, schema = exec_node_inner st p in
  let total = Sim_clock.since st.ctx.Exec_ctx.clock t0 in
  let children_ms =
    List.fold_left
      (fun acc (c : Plan.t) ->
         acc +. Option.value ~default:0.0 (Hashtbl.find_opt st.actual_ms c.Plan.id))
      0.0 (Plan.children p)
  in
  let self_ms = Float.max 0.0 (total -. children_ms) in
  Hashtbl.replace st.actual_ms p.Plan.id self_ms;
  Hashtbl.replace st.actuals p.Plan.id (Array.length rows);
  span_close st tok
    ~args:
      [ ("id", Trace.Int p.Plan.id);
        ("est_rows", Trace.Float p.Plan.est.Plan.rows);
        ("rows", Trace.Int (Array.length rows));
        ("self_ms", Trace.Float self_ms) ];
  (rows, schema)

and exec_node_inner st (p : Plan.t) : Tuple.t array * Schema.t =
  let ctx = st.ctx in
  match p.Plan.node with
  | Plan.Seq_scan { table; alias = _; filter } ->
    let heap = heap_of st table in
    let rows =
      if p.Plan.dop > 1 then
        with_workers st p ~op:(Plan.op_name p)
          (fun par ~slice_pages ~on_worker ->
             Parallel.scan ctx par ~slice_pages ~on_worker heap)
      else Scan.seq_scan ctx heap
    in
    let rows =
      match filter with
      | None -> rows
      | Some pred -> Rows_ops.filter ctx p.Plan.schema pred rows
    in
    (apply_runtime_filters st p.Plan.schema rows, p.Plan.schema)
  | Plan.Index_scan { table; alias = _; index_col; lo; hi; filter } ->
    let tbl = Catalog.find_exn st.cfg.catalog table in
    let index =
      match Catalog.find_index tbl ~column:(bare_column index_col) with
      | Some ix -> ix.Catalog.btree
      | None -> invalid_arg ("Dispatcher: missing index on " ^ index_col)
    in
    let rows = Scan.index_scan ctx tbl.Catalog.heap index ?lo ?hi () in
    let rows =
      match filter with
      | None -> rows
      | Some pred -> Rows_ops.filter ctx p.Plan.schema pred rows
    in
    (apply_runtime_filters st p.Plan.schema rows, p.Plan.schema)
  | Plan.Materialized { name; on_disk; _ } ->
    let rows, schema =
      match Hashtbl.find_opt st.store name with
      | Some r -> r
      | None -> invalid_arg ("Dispatcher: unknown intermediate " ^ name)
    in
    if on_disk then begin
      let pages =
        Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows rows)
      in
      Sim_clock.charge_seq_read ctx.Exec_ctx.clock pages;
      Sim_clock.charge_cpu_tuples ctx.Exec_ctx.clock (Array.length rows)
    end;
    (apply_runtime_filters st schema rows, schema)
  | Plan.Collect { input; spec; cid } ->
    (* Collectors must observe the raw stream: statistics (and the exact
       cardinality of a full scan) describe the relation, not what happens
       to survive a runtime filter pushed down by the join above.  So the
       filters are lifted over the collector and applied to its output. *)
    let saved = st.active_filters in
    st.active_filters <- [];
    let rows, schema = exec_node st input in
    st.active_filters <- saved;
    (* an unfiltered full scan yields the relation's exact cardinality —
       a statistic worth keeping beyond the query (Section 2.6) *)
    (match input.Plan.node with
     | Plan.Seq_scan { alias; filter = None; _ } ->
       st.observed_cards <-
         (alias, Array.length rows)
         :: List.remove_assoc alias st.observed_cards
     | _ -> ());
    let ctok =
      span_open st ~cat:"collector" (Printf.sprintf "collect#%d" cid)
    in
    let c0 = Sim_clock.snapshot ctx.Exec_ctx.clock in
    let obs = Collector.collect ctx schema spec rows in
    let collect_ms = Sim_clock.since ctx.Exec_ctx.clock c0 in
    st.collector_ms <- st.collector_ms +. collect_ms;
    span_close st ctok
      ~args:
        [ ("rows", Trace.Int (Array.length rows));
          ("collect_ms", Trace.Float collect_ms) ];
    let columns = Collector.spec_columns spec in
    List.iter
      (fun column ->
         st.overrides <-
           (column, Collector.column_stats_of_observed obs ~column)
           :: List.remove_assoc column st.overrides;
         Stats_env.override st.env ~column
           (Collector.column_stats_of_observed obs ~column))
      columns;
    let alias =
      match input.Plan.node with
      | Plan.Seq_scan { alias; _ } | Plan.Index_scan { alias; _ } -> alias
      | _ -> Plan.op_name input
    in
    emit st (Ev_collected { cid; alias; columns });
    (apply_runtime_filters st schema rows, schema)
  | Plan.Hash_join { build; probe; keys; extra; rf } ->
    let build_rows, build_schema = exec_node st build in
    let installed =
      install_filters st ~source:(Plan.op_name p) ~rf ~rows:build_rows
        ~schema:build_schema
    in
    let probe_rows, probe_schema = exec_node st probe in
    retire_filters st installed;
    let mem_pages = if p.Plan.mem > 0 then p.Plan.mem else p.Plan.max_mem in
    if p.Plan.dop > 1 && keys <> [] then
      with_workers st p ~op:(Plan.op_name p)
        (fun par ~slice_pages ~on_worker ->
           Parallel.hash_join ctx par ~slice_pages ~on_worker ~mem_pages
             ~build:(build_rows, build_schema)
             ~probe:(probe_rows, probe_schema) ~keys ?extra ())
    else
      let r =
        Join.hash_join ctx ~mem_pages ~build:(build_rows, build_schema)
          ~probe:(probe_rows, probe_schema) ~keys ?extra ()
      in
      (r.Join.rows, r.Join.schema)
  | Plan.Index_nl_join
      { outer; table; alias; outer_col = oc; inner_col; inner_filter; extra } ->
    let outer_rows, outer_schema = exec_node st outer in
    let tbl = Catalog.find_exn st.cfg.catalog table in
    let index =
      match Catalog.find_index tbl ~column:(bare_column inner_col) with
      | Some ix -> ix.Catalog.btree
      | None -> invalid_arg ("Dispatcher: missing index on " ^ inner_col)
    in
    let inner_schema = Schema.qualify (Heap_file.schema tbl.Catalog.heap) alias in
    let residual =
      match List.filter_map Fun.id [ inner_filter; extra ] with
      | [] -> None
      | l -> Some (Expr.conjoin l)
    in
    let r =
      Join.index_nl_join ctx ~outer:(outer_rows, outer_schema)
        ~inner_heap:tbl.Catalog.heap ~inner_schema ~inner_index:index
        ~outer_col:oc ?extra:residual ()
    in
    (r.Join.rows, r.Join.schema)
  | Plan.Block_nl_join { outer; inner; pred } ->
    let outer_rows, outer_schema = exec_node st outer in
    let inner_rows, inner_schema = exec_node st inner in
    let mem_pages = if p.Plan.mem > 0 then p.Plan.mem else p.Plan.max_mem in
    let r =
      Join.block_nl_join st.ctx ~mem_pages ~outer:(outer_rows, outer_schema)
        ~inner:(inner_rows, inner_schema) ?pred ()
    in
    (r.Join.rows, r.Join.schema)
  | Plan.Merge_join { left; right; keys; extra; left_sorted; right_sorted; rf }
    ->
    let left_rows, left_schema = exec_node st left in
    let installed =
      install_filters st ~source:(Plan.op_name p) ~rf ~rows:left_rows
        ~schema:left_schema
    in
    let right_rows, right_schema = exec_node st right in
    retire_filters st installed;
    let mem_pages = if p.Plan.mem > 0 then p.Plan.mem else p.Plan.max_mem in
    let r =
      Merge_join.merge_join ctx ~mem_pages ~left_sorted ~right_sorted
        ~left:(left_rows, left_schema) ~right:(right_rows, right_schema)
        ~keys ?extra ()
    in
    (r.Merge_join.rows, r.Merge_join.schema)
  | Plan.Aggregate { input; group_by; aggs; pre_sorted } ->
    let rows, schema = exec_node st input in
    if pre_sorted then begin
      let r = Aggregate.sorted_aggregate ctx schema ~group_by ~aggs rows in
      (r.Aggregate.rows, r.Aggregate.schema)
    end
    else begin
      let mem_pages = if p.Plan.mem > 0 then p.Plan.mem else p.Plan.max_mem in
      if p.Plan.dop > 1 && group_by <> [] then
        with_workers st p ~op:(Plan.op_name p)
          (fun par ~slice_pages ~on_worker ->
             Parallel.aggregate ctx par ~slice_pages ~on_worker ~mem_pages
               schema ~group_by ~aggs rows)
      else
        let r =
          Aggregate.hash_aggregate ctx ~mem_pages schema ~group_by ~aggs rows
        in
        (r.Aggregate.rows, r.Aggregate.schema)
    end
  | Plan.Sort { input; keys } ->
    let rows, schema = exec_node st input in
    let mem_pages = if p.Plan.mem > 0 then p.Plan.mem else p.Plan.max_mem in
    if p.Plan.dop > 1 then
      ( with_workers st p ~op:(Plan.op_name p)
          (fun par ~slice_pages ~on_worker ->
             Parallel.sort ctx par ~slice_pages ~on_worker ~mem_pages schema
               ~keys rows),
        schema )
    else
      let r = Sort_op.sort ctx ~mem_pages schema ~keys rows in
      (r.Sort_op.rows, schema)
  | Plan.Filter { input; pred } ->
    let rows, schema = exec_node st input in
    (Rows_ops.filter ctx schema pred rows, schema)
  | Plan.Project { input; cols } ->
    let rows, schema = exec_node st input in
    Rows_ops.project ctx schema cols rows
  | Plan.Limit { input; n } ->
    let rows, schema = exec_node st input in
    (Rows_ops.limit ctx n rows, schema)

(* ------------------------------------------------------------------ *)
(* Unit selection and plan surgery.                                    *)

let is_join (p : Plan.t) =
  match p.Plan.node with
  | Plan.Hash_join _ | Plan.Index_nl_join _ | Plan.Block_nl_join _
  | Plan.Merge_join _ -> true
  | _ -> false

(* Deepest leftmost join whose inputs contain no other join. *)
let rec find_ready_join (p : Plan.t) =
  match List.find_map find_ready_join (Plan.children p) with
  | Some j -> Some j
  | None -> if is_join p then Some p else None

let rec replace_node (p : Plan.t) ~target_id ~replacement =
  if p.Plan.id = target_id then replacement
  else
    Plan.with_children p
      (List.map
         (replace_node ~target_id ~replacement)
         (Plan.children p))

(* ------------------------------------------------------------------ *)
(* Registering an intermediate result as a temp table.                 *)

let register_temp st ~name ~rows ~schema =
  let heap = Heap_file.create schema in
  Array.iter (Heap_file.append heap) rows;
  let table = Catalog.add_table st.cfg.catalog name heap in
  (* Free statistics: exact cardinality plus per-column min/max (the paper
     collects these for every intermediate result); histograms/distincts
     inherited from upstream collectors where the column passed through. *)
  let base_obs = Collector.collect st.ctx schema (Collector.spec ()) rows in
  table.Catalog.stats <-
    Array.of_list
      (List.map
         (fun col ->
            let q =
              if col.Schema.qualifier = "" then col.Schema.name
              else col.Schema.qualifier ^ "." ^ col.Schema.name
            in
            match List.assoc_opt q st.overrides with
            | Some stats -> stats
            | None -> Collector.column_stats_of_observed base_obs ~column:q)
         (Schema.columns schema));
  st.temp_names <- name :: st.temp_names;
  Hashtbl.replace st.store name (rows, schema)

(* ------------------------------------------------------------------ *)
(* Remainder-query reconstruction (paper Figure 6: SQL over Temp_i).   *)

let remainder_query st (current : Plan.t) : Query.t =
  let q = st.query in
  let relations = ref [] and conjuncts = ref [] in
  let add_relation r = relations := r :: !relations in
  let add_conjuncts cs = conjuncts := cs @ !conjuncts in
  let original_relation alias =
    match
      List.find_opt (fun (r : Query.relation) -> r.Query.alias = alias)
        q.Query.relations
    with
    | Some r -> r
    | None ->
      (* a temp table introduced by an earlier plan switch: its heap schema
         already carries the original qualifiers *)
      (match Hashtbl.find_opt st.store alias with
       | Some (_, schema) -> { Query.table = alias; alias; rel_schema = schema }
       | None -> invalid_arg ("Dispatcher: unknown alias " ^ alias))
  in
  let rec walk (p : Plan.t) =
    match p.Plan.node with
    | Plan.Materialized { name; _ } ->
      let _, schema = Hashtbl.find st.store name in
      add_relation { Query.table = name; alias = name; rel_schema = schema }
    | Plan.Seq_scan { alias; filter; _ } | Plan.Index_scan { alias; filter; _ } ->
      add_relation (original_relation alias);
      (match filter with
       | Some f -> add_conjuncts (Expr.conjuncts f)
       | None -> ())
    | Plan.Hash_join { build; probe; keys; extra; _ } ->
      walk build;
      walk probe;
      add_conjuncts
        (List.map (fun (a, b) -> Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)) keys);
      (match extra with Some e -> add_conjuncts (Expr.conjuncts e) | None -> ())
    | Plan.Index_nl_join
        { outer; alias; outer_col = oc; inner_col; inner_filter; extra; _ } ->
      walk outer;
      add_relation (original_relation alias);
      add_conjuncts [ Expr.Cmp (Expr.Eq, Expr.Col oc, Expr.Col inner_col) ];
      (match inner_filter with
       | Some f -> add_conjuncts (Expr.conjuncts f)
       | None -> ());
      (match extra with Some e -> add_conjuncts (Expr.conjuncts e) | None -> ())
    | Plan.Block_nl_join { outer; inner; pred } ->
      walk outer;
      walk inner;
      (match pred with Some e -> add_conjuncts (Expr.conjuncts e) | None -> ())
    | Plan.Merge_join { left; right; keys; extra; _ } ->
      walk left;
      walk right;
      add_conjuncts
        (List.map (fun (a, b) -> Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b)) keys);
      (match extra with Some e -> add_conjuncts (Expr.conjuncts e) | None -> ())
    | Plan.Aggregate { input; _ } | Plan.Sort { input; _ }
    | Plan.Project { input; _ } | Plan.Limit { input; _ }
    | Plan.Collect { input; _ } | Plan.Filter { input; _ } ->
      walk input
  in
  walk current;
  { Query.relations = List.rev !relations;
    conjuncts = List.rev !conjuncts;
    select_cols = q.Query.select_cols;
    aggs = q.Query.aggs;
    group_by = q.Query.group_by;
    having = q.Query.having;
    order_by = q.Query.order_by;
    limit = q.Query.limit }

(* Materialization overhead of switching: writing every in-memory
   intermediate of the current plan to disk. *)
let pending_materialize_ms st (current : Plan.t) =
  Plan.fold
    (fun acc (n : Plan.t) ->
       match n.Plan.node with
       | Plan.Materialized { name; on_disk = false; _ } ->
         let rows, _ = Hashtbl.find st.store name in
         let pages =
           float_of_int (Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows rows))
         in
         acc +. (pages *. st.cfg.model.Sim_clock.write_ms)
       | _ -> acc)
    0.0 current

let charge_materialization st (current : Plan.t) =
  let rec fix (p : Plan.t) =
    match p.Plan.node with
    | Plan.Materialized ({ name; on_disk = false; _ } as m) ->
      let rows, _ = Hashtbl.find st.store name in
      let pages = Exec_ctx.pages_of_bytes (Rows_ops.bytes_of_rows rows) in
      Sim_clock.charge_write st.ctx.Exec_ctx.clock pages;
      { p with Plan.node = Plan.Materialized { m with on_disk = true } }
    | _ -> Plan.with_children p (List.map fix (Plan.children p))
  in
  fix current

(* ------------------------------------------------------------------ *)
(* Decision point, after each completed unit.                          *)

(* Grant memory to the current plan's consumers.  With a broker the budget
   is a lease re-negotiated on every call (shrunken demand after
   re-optimization hands pages back to the workload); without one it is
   the fixed per-query budget. *)
let allocate_memory st =
  (match st.cfg.broker with
   | None -> ()
   | Some lease ->
     let min_pages, max_pages = Memory_manager.plan_demand st.current in
     let budget = lease ~min_pages ~max_pages in
     st.memman <- Memory_manager.create ~budget_pages:(max 1 budget));
  Memory_manager.allocate st.memman st.current

let reallocate st =
  let grants = allocate_memory st in
  st.current <- Optimizer.recost ~planning_mem:st.cfg.opt_options.Optimizer.planning_mem_pages
      ~max_dop:st.cfg.opt_options.Optimizer.max_dop
      ~model:st.cfg.model ~env:st.env st.current;
  emit st (Ev_realloc { grants })

let count_leaf_relations (p : Plan.t) =
  Plan.fold
    (fun acc (n : Plan.t) ->
       match n.Plan.node with
       | Plan.Seq_scan _ | Plan.Index_scan _ | Plan.Materialized _ -> acc + 1
       | Plan.Index_nl_join _ -> acc + 1
       | _ -> acc)
    0 p

let try_replan ?(force = false) st =
  let t_improved = st.current.Plan.est.Plan.total_ms in
  let t_optimizer =
    List.fold_left
      (fun acc (n : Plan.t) ->
         match Hashtbl.find_opt st.orig_op_ms n.Plan.id with
         | Some ms -> acc +. ms
         | None -> acc)
      0.0 (Plan.nodes st.current)
  in
  let t_opt_estimated =
    Optimizer.estimated_opt_ms ~model:st.cfg.model
      ~relations:(count_leaf_relations st.current)
  in
  let decision =
    Reopt_policy.should_consider st.cfg.params ~t_opt_estimated ~t_improved
      ~t_optimizer
  in
  emit st (Ev_considered { decision; t_improved; t_optimizer; t_opt_estimated });
  match decision with
  (* Eq. 1 is never overridden: when the remainder is cheap relative to
     the optimizer invocation, re-planning cannot pay off no matter how
     wrong the estimates are.  A filter surprise only overrides Eq. 2's
     "close enough" — the estimates it was judged by are now suspect. *)
  | Reopt_policy.Too_cheap -> ()
  | Reopt_policy.Close_enough when not force -> ()
  | Reopt_policy.Close_enough | Reopt_policy.Consider ->
    let rq = remainder_query st st.current in
    let env' = Stats_env.create st.cfg.catalog rq.Query.relations in
    (match st.cfg.env_overlay with
     | Some overlay -> overlay rq env'
     | None -> ());
    apply_overrides st env';
    (match
       Optimizer.optimize ~options:st.cfg.opt_options
         ~clock:st.ctx.Exec_ctx.clock ~model:st.cfg.model ~env:env' rq
     with
     | exception Optimizer.Planning_error _ -> ()
     | { Optimizer.plan = new_plan; _ } ->
       let materialize_ms = pending_materialize_ms st st.current in
       (* reading the temp back is already in the new plan's scan costs *)
       let t_new_total = new_plan.Plan.est.Plan.total_ms +. materialize_ms in
       (* Bound-checked mode: on top of the estimate-based test, the
          candidate's provable worst-case remaining cost (collection
          overhead and the pending materialization included) must beat the
          current plan's provable best-case remaining cost — a switch is
          admitted only when it provably cannot lose. *)
       let bound_admitted =
         match st.cfg.mode with
         | Bound_checked ->
           let benv = bounds_env st in
           let max_dop = st.cfg.opt_options.Optimizer.max_dop in
           let cand =
             Bounds.cost_interval benv ~model:st.cfg.model ~max_dop new_plan
           in
           let cur =
             Bounds.cost_interval benv ~model:st.cfg.model ~max_dop st.current
           in
           let new_hi_ms =
             (cand.Bounds.hi *. (1.0 +. st.cfg.params.Reopt_policy.mu))
             +. materialize_ms
           in
           let admitted =
             Reopt_policy.accept_bound_checked ~new_hi_ms
               ~cur_lo_ms:cur.Bounds.lo
           in
           emit st
             (Ev_bound_check
                { new_hi_ms; cur_lo_ms = cur.Bounds.lo; admitted });
           admitted
         | Off | Memory_only | Plan_only | Full -> true
       in
       if Reopt_policy.accept_new_plan ~t_new_total ~t_improved
       && bound_admitted
       then begin
         (* Switch: pay the writes, renumber the new plan's ids into our
            space, adopt its annotations as the new baseline. *)
         ignore (charge_materialization st st.current);
         let rec renumber (p : Plan.t) =
           let kids = List.map renumber (Plan.children p) in
           { (Plan.with_children p kids) with Plan.id = fresh_plan_id st }
         in
         let new_plan = renumber new_plan in
         let scia =
           Scia.insert ~mu:st.cfg.params.Reopt_policy.mu ~env:env' new_plan
         in
         let new_plan =
           Optimizer.recost ~planning_mem:st.cfg.opt_options.Optimizer.planning_mem_pages
             ~max_dop:st.cfg.opt_options.Optimizer.max_dop
             ~model:st.cfg.model ~env:env' scia.Scia.plan
         in
         (* Scia.insert hands the Collect wrappers ids past the plan's max
            from its own counter; pull next_id past them or a later
            Materialized leaf would reuse a live Collect id and the
            id-keyed analyses (bounds, actuals) would conflate the two. *)
         st.next_id <-
           List.fold_left
             (fun m (n : Plan.t) -> max m n.Plan.id)
             st.next_id (Plan.nodes new_plan);
         st.env <- env';
         st.current <- new_plan;
         record_annotations st new_plan;
         ignore (allocate_memory st);
         st.current <-
           Optimizer.recost ~planning_mem:st.cfg.opt_options.Optimizer.planning_mem_pages
      ~max_dop:st.cfg.opt_options.Optimizer.max_dop
      ~model:st.cfg.model ~env:st.env st.current;
         st.switches <- st.switches + 1;
         emit st (Ev_switched { t_new_total; t_improved; materialize_ms });
         if st.cfg.verify = Verifier.Sanitize then
           verify_plan st ~what:"switched plan" st.current;
         progress_update st Progress.Switch
       end
       else emit st (Ev_rejected { t_new_total; t_improved }))

let decision_point st =
  let force = st.filter_surprise || st.skew_surprise in
  st.filter_surprise <- false;
  st.skew_surprise <- false;
  st.last_force <- force;
  (match st.cfg.trace with
   | Some scope ->
     ignore (Trace.new_decision_point scope);
     Metrics.incr (Trace.scope_metrics scope) "decision_points"
   | None -> ());
  (* improved estimates for the remainder *)
  st.current <- Optimizer.recost ~planning_mem:st.cfg.opt_options.Optimizer.planning_mem_pages
      ~max_dop:st.cfg.opt_options.Optimizer.max_dop
      ~model:st.cfg.model ~env:st.env st.current;
  (match st.cfg.mode with
   | Off -> ()
   | Memory_only -> reallocate st
   | Plan_only ->
     if Plan.join_count st.current >= 1
     && st.switches < st.cfg.params.Reopt_policy.max_switches
     then try_replan ~force st
   | Full | Bound_checked ->
     (* Re-allocation is free, so apply it first; a plan switch must then
        beat the re-allocated current plan, not the starved one.
        Bound-checked behaves like Full except that try_replan additionally
        requires the candidate's provable worst case to beat the current
        plan's provable best case. *)
     reallocate st;
     if Plan.join_count st.current >= 1
     && st.switches < st.cfg.params.Reopt_policy.max_switches
     then try_replan ~force st);
  if st.cfg.verify = Verifier.Sanitize then begin
    assert_filters_retired st ~what:"decision point";
    verify_plan st ~what:"remainder plan at decision point" st.current
  end;
  progress_update st Progress.Decision

(* ------------------------------------------------------------------ *)
(* Main loop.                                                          *)

type run = {
  st : state;
  plan0 : Plan.t;
  r_collectors : int;
  q_span : Trace.token option;
  mutable result : report option;
  mutable aborted : bool;
}

let start ?prepared cfg query =
  (* the query span covers everything, optimization included *)
  let q_span =
    Option.map
      (fun scope ->
         Trace.open_span scope ~cat:"query"
           ~name:("query:" ^ Trace.scope_label scope) ~ts_ms:0.0 ())
      cfg.trace
  in
  let ctx = Exec_ctx.create ~model:cfg.model ~pool_pages:cfg.pool_pages () in
  let env = Stats_env.create cfg.catalog query.Query.relations in
  (match cfg.env_overlay with
   | Some overlay -> overlay query env
   | None -> ());
  (* Start-time probing is orthogonal to mid-query re-optimization: it
     improves the very first plan even in Off mode. *)
  let probes =
    match cfg.start_sampling with
    | Some n when n > 0 ->
      Sampling.probe_and_override ~catalog:cfg.catalog ~ctx ~env query
        ~sample_rows:n
    | _ -> []
  in
  let plan0, collectors =
    match prepared with
    | Some (plan, collectors) ->
      (* a cached static plan: optimization and collector insertion were
         paid when it was first compiled *)
      (plan, collectors)
    | None ->
      let opt =
        Optimizer.optimize ~options:cfg.opt_options ~clock:ctx.Exec_ctx.clock
          ~model:cfg.model ~env query
      in
      (match cfg.mode with
       | Off -> (opt.Optimizer.plan, 0)
       | _ ->
         let scia =
           Scia.insert ~mu:cfg.params.Reopt_policy.mu ~env opt.Optimizer.plan
         in
         (Optimizer.recost
            ~planning_mem:cfg.opt_options.Optimizer.planning_mem_pages
            ~max_dop:cfg.opt_options.Optimizer.max_dop
            ~model:cfg.model ~env scia.Scia.plan,
          List.length scia.Scia.kept))
  in
  let memman = Memory_manager.create ~budget_pages:cfg.budget_pages in
  let max_id =
    List.fold_left (fun m (n : Plan.t) -> max m n.Plan.id) 0 (Plan.nodes plan0)
  in
  let st =
    { cfg;
      ctx;
      memman;
      query;
      env;
      current = plan0;
      orig_op_ms = Hashtbl.create 64;
      store = Hashtbl.create 8;
      overrides = [];
      temp_names = [];
      observed_cards = [];
      events = [];
      switches = 0;
      next_temp = 0;
      next_id = max_id;
      actuals = Hashtbl.create 64;
      actual_ms = Hashtbl.create 64;
      active_filters = [];
      filter_pages = 0;
      filter_pages_peak = 0;
      filter_obs = [];
      filter_surprise = false;
      worker_pages = 0;
      worker_pages_peak = 0;
      skew_surprise = false;
      collector_ms = 0.0;
      verifications = 0;
      filter_probe_ms = 0.0;
      unit_op = "";
      unit_est = 0.0;
      unit_actual = 0;
      last_force = false }
  in
  ignore (allocate_memory st);
  let plan0 =
    Optimizer.recost ~planning_mem:cfg.opt_options.Optimizer.planning_mem_pages
      ~max_dop:cfg.opt_options.Optimizer.max_dop ~model:cfg.model ~env plan0
  in
  st.current <- plan0;
  record_annotations st plan0;
  (* refuse to execute a plan that fails static analysis *)
  verify_plan st ~what:"initial plan" plan0;
  List.iter (fun p -> emit st (Ev_sampled p)) probes;
  progress_update st Progress.Start;
  { st; plan0; r_collectors = collectors; q_span; result = None;
    aborted = false }

(* Abandon a run's externally-visible state: transient broker pages
   (bloom bitmaps, worker pool slices) go back to the pool, temp tables
   leave the shared catalog, and the trace unwinds to a well-formed
   forest.  Called on cancel and on any exception escaping [step], so a
   failed query in a long-lived service leaks neither pages nor catalog
   entries.  (The query's memory lease itself belongs to the workload
   scheduler, which releases it when it observes the failure.) *)
let teardown r ~error =
  let st = r.st in
  st.active_filters <- [];
  if st.filter_pages > 0 then release_filter_pages st st.filter_pages;
  if st.worker_pages > 0 then release_worker_pages st st.worker_pages;
  List.iter
    (fun name ->
       Catalog.drop_table st.cfg.catalog name;
       Hashtbl.remove st.store name)
    st.temp_names;
  st.temp_names <- [];
  match st.cfg.trace with
  | None -> ()
  | Some scope ->
    let args =
      ("aborted", Trace.Bool true)
      :: (match error with
          | Some msg -> [ ("error", Trace.Str msg) ]
          | None -> [])
    in
    Trace.unwind scope ~args
      ~ts_ms:(Sim_clock.elapsed_ms st.ctx.Exec_ctx.clock) ()

(* Cancel a run that has not produced its report.  Idempotent; a
   subsequent [step] raises. *)
let abort r =
  if Option.is_none r.result && not r.aborted then begin
    r.aborted <- true;
    teardown r ~error:None
  end

(* Re-negotiate the memory lease for a run that has not finished —
   called by a workload manager when pages freed by another query can be
   re-granted to this one.  No-op between a unit's start and end because
   steps are atomic; safe whenever the caller holds the run. *)
let refresh_memory r =
  match r.result, r.st.cfg.broker with
  | None, Some _ -> reallocate r.st
  | _ -> ()

let finished r = Option.is_some r.result || r.aborted

let aborted r = r.aborted

(* Bloom-bitmap pages currently leased; zero whenever a unit is not
   mid-execution (filters live strictly inside one unit). *)
let filter_pages_held r = r.st.filter_pages

(* Worker pool-slice pages currently leased; zero outside a parallel
   operator's execution (same lifetime discipline as filter pages). *)
let worker_pages_held r = r.st.worker_pages

let run_elapsed_ms r = Sim_clock.elapsed_ms r.st.ctx.Exec_ctx.clock

(* Execute one unit (a ready join, or the final aggregate/sort stack).
   Returns the report once the last unit completed. *)
let step_once r =
  match r.result with
  | Some report -> Some report
  | None ->
    let st = r.st in
    (match find_ready_join st.current with
     | Some j ->
       let utok = span_open st ~cat:"unit" ("unit:" ^ Plan.op_name j) in
       let probe0 = st.filter_probe_ms in
       let rows, schema = exec_node st j in
       emit st
         (Ev_unit_done
            { op = Plan.op_name j;
              est_rows = j.Plan.est.Plan.rows;
              actual_rows = Array.length rows });
       (* st.current still contains [j]: check the observed cardinalities
          of the just-executed subtree against their provable intervals
          before the unit is folded into a Materialized leaf. *)
       if st.cfg.verify = Verifier.Sanitize then
         assert_observed_bounds st ~what:"executed unit" j;
       let name = fresh_temp_name st in
       register_temp st ~name ~rows ~schema;
       let leaf =
         { Plan.id = fresh_plan_id st;
           node =
             Plan.Materialized
               { name; covers = Plan.aliases j; on_disk = false };
           schema;
           est =
             { Plan.rows = float_of_int (Array.length rows);
               width =
                 (if Array.length rows = 0 then 1.0
                  else
                    float_of_int (Rows_ops.bytes_of_rows rows)
                    /. float_of_int (Array.length rows));
               op_ms = 0.0;
               total_ms = 0.0 };
           min_mem = 0;
           max_mem = 0;
           mem = 0;
           dop = 1 }
       in
       st.current <-
         replace_node st.current ~target_id:j.Plan.id ~replacement:leaf;
       decision_point st;
       span_close st utok
         ~args:
           [ ("op", Trace.Str (Plan.op_name j));
             ("est_rows", Trace.Float j.Plan.est.Plan.rows);
             ("rows", Trace.Int (Array.length rows));
             ("rf_probe_ms", Trace.Float (st.filter_probe_ms -. probe0)) ];
       None
     | None ->
       (* Remaining stack: aggregate/sort/project/limit over the last
          result. *)
       let utok = span_open st ~cat:"unit" "unit:finalize" in
       let rows, result_schema = exec_node st st.current in
       span_close st utok
         ~args:[ ("rows", Trace.Int (Array.length rows)) ];
       if st.cfg.verify = Verifier.Sanitize then begin
         assert_filters_retired st ~what:"query completion";
         assert_observed_bounds st ~what:"query completion" st.current
       end;
       (* Drop temp tables so the engine can be reused. *)
       List.iter (Catalog.drop_table st.cfg.catalog) st.temp_names;
       let elapsed = Sim_clock.elapsed_ms st.ctx.Exec_ctx.clock in
       (match st.cfg.trace, r.q_span with
        | Some scope, Some q_span ->
          let hits = Buffer_pool.hits st.ctx.Exec_ctx.pool in
          let misses = Buffer_pool.misses st.ctx.Exec_ctx.pool in
          Trace.close_span scope ~ts_ms:elapsed q_span
            ~args:
              [ ("rows", Trace.Int (Array.length rows));
                ("switches", Trace.Int st.switches);
                ("collectors", Trace.Int r.r_collectors);
                ("collector_ms", Trace.Float st.collector_ms);
                ("pool_hits", Trace.Int hits);
                ("pool_misses", Trace.Int misses) ];
          let m = Trace.scope_metrics scope in
          Metrics.incr m "queries";
          Metrics.incr m ~by:r.r_collectors "collectors";
          Metrics.incr m ~by:hits "buffer_pool.hits";
          Metrics.incr m ~by:misses "buffer_pool.misses";
          let th = Metrics.counter m "buffer_pool.hits" in
          let tm = Metrics.counter m "buffer_pool.misses" in
          if th + tm > 0 then
            Metrics.set_gauge m "buffer_pool.hit_ratio"
              (float_of_int th /. float_of_int (th + tm));
          Metrics.observe m "query.elapsed_ms" elapsed;
          Metrics.observe m "query.collector_ms" st.collector_ms
        | _ -> ());
       let report =
         { rows;
           result_schema;
           elapsed_ms = elapsed;
           counters = Sim_clock.counters st.ctx.Exec_ctx.clock;
           events = List.rev_map snd st.events;
           timed_events = List.rev st.events;
           switches = st.switches;
           collectors = r.r_collectors;
           initial_plan = r.plan0;
           final_plan = st.current;
           actual_rows =
             Hashtbl.fold (fun id n acc -> (id, n) :: acc) st.actuals [];
           actual_ms =
             Hashtbl.fold (fun id ms acc -> (id, ms) :: acc) st.actual_ms [];
           pool_hits = Buffer_pool.hits st.ctx.Exec_ctx.pool;
           pool_misses = Buffer_pool.misses st.ctx.Exec_ctx.pool;
           observed_stats = st.overrides;
           observed_cards = st.observed_cards;
           filters = List.rev st.filter_obs;
           filter_pages_peak = st.filter_pages_peak;
           filter_pages_held = st.filter_pages;
           worker_pages_peak = st.worker_pages_peak;
           worker_pages_held = st.worker_pages;
           collector_ms = st.collector_ms;
           verifications = st.verifications }
       in
       progress_finish st;
       r.result <- Some report;
       Some report)

(* Any exception escaping a unit (executor failure, sanitizer rejection,
   a broken UDF) tears the run down before propagating: the same cleanup
   as [abort], then re-raise with the original backtrace. *)
let step r =
  if r.aborted then invalid_arg "Dispatcher.step: aborted run";
  try step_once r
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    r.aborted <- true;
    (try teardown r ~error:(Some (Printexc.to_string e)) with _ -> ());
    Printexc.raise_with_backtrace e bt

let run ?prepared cfg query =
  let r = start ?prepared cfg query in
  let rec drive () =
    match step r with
    | Some report -> report
    | None -> drive ()
  in
  drive ()

(* EXPLAIN ANALYZE-style rendering: the annotated plan with observed
   cardinalities next to the estimates. *)
let pp_plan_with_actuals fmt (plan, actuals) =
  let rec go indent (p : Plan.t) =
    let pad = String.make indent ' ' in
    let actual =
      match List.assoc_opt p.Plan.id actuals with
      | Some n -> Printf.sprintf "%d" n
      | None -> "-"
    in
    Fmt.pf fmt "%s%s  [est=%.0f actual=%s rows]@." pad (Plan.op_name p)
      p.Plan.est.Plan.rows actual;
    List.iter (go (indent + 2)) (Plan.children p)
  in
  go 0 plan

(* Full EXPLAIN ANALYZE: estimated vs observed rows and per-operator
   simulated time. *)
let pp_explain_analyze fmt (report : report) =
  let rec go indent (p : Plan.t) =
    let pad = String.make indent ' ' in
    let rows =
      match List.assoc_opt p.Plan.id report.actual_rows with
      | Some n -> Printf.sprintf "%d" n
      | None -> "-"
    in
    let ms =
      match List.assoc_opt p.Plan.id report.actual_ms with
      | Some v -> Printf.sprintf "%.1f" v
      | None -> "-"
    in
    Fmt.pf fmt "%s%s  [rows est=%.0f actual=%s | ms est=%.1f actual=%s]@."
      pad (Plan.op_name p) p.Plan.est.Plan.rows rows p.Plan.est.Plan.op_ms ms;
    List.iter (go (indent + 2)) (Plan.children p)
  in
  go 0 report.initial_plan;
  (* Uniform stat block: every verify mode (off / pre-execution /
     sanitize) renders the same lines, so explain-analyze output can be
     diffed across modes without normalisation. *)
  Fmt.pf fmt "collectors: %d (%.1f ms)@." report.collectors
    report.collector_ms;
  Fmt.pf fmt "runtime filters: %d (%d pages peak, %d held at completion)@."
    (List.length report.filters)
    report.filter_pages_peak report.filter_pages_held;
  List.iter
    (fun (col, est, obs) ->
       Fmt.pf fmt "  filter on %s: sel est=%.3f observed=%.3f@." col est obs)
    report.filters;
  (* only parallel runs get a worker line, so serial explain-analyze
     output stays byte-identical to earlier releases *)
  if report.worker_pages_peak > 0 then
    Fmt.pf fmt "parallel workers: %d pages peak, %d held at completion@."
      report.worker_pages_peak report.worker_pages_held;
  let accesses = report.pool_hits + report.pool_misses in
  Fmt.pf fmt "buffer pool: %d hits / %d misses (%.1f%% hit rate)@."
    report.pool_hits report.pool_misses
    (if accesses = 0 then 0.0
     else 100.0 *. float_of_int report.pool_hits /. float_of_int accesses);
  Fmt.pf fmt "verification: %d runs@." report.verifications

let pp_event fmt = function
  | Ev_unit_done { op; est_rows; actual_rows } ->
    Fmt.pf fmt "unit done: %s (estimated %.0f rows, actual %d)" op est_rows
      actual_rows
  | Ev_collected { cid; alias; columns } ->
    Fmt.pf fmt "collected #%d at %s: %s" cid alias (String.concat ", " columns)
  | Ev_realloc { grants } ->
    Fmt.pf fmt "memory re-allocated: %a"
      (Fmt.list ~sep:Fmt.comma Memory_manager.pp_grant)
      grants
  | Ev_considered { decision; t_improved; t_optimizer; t_opt_estimated } ->
    Fmt.pf fmt
      "re-optimization %s (T_improved=%.1fms T_optimizer=%.1fms T_opt,est=%.1fms)"
      (Reopt_policy.decision_to_string decision)
      t_improved t_optimizer t_opt_estimated
  | Ev_switched { t_new_total; t_improved; materialize_ms } ->
    Fmt.pf fmt
      "plan switched: T_new=%.1fms < T_improved=%.1fms (materialize %.1fms)"
      t_new_total t_improved materialize_ms
  | Ev_rejected { t_new_total; t_improved } ->
    Fmt.pf fmt "new plan rejected: T_new=%.1fms >= T_improved=%.1fms"
      t_new_total t_improved
  | Ev_bound_check { new_hi_ms; cur_lo_ms; admitted } ->
    Fmt.pf fmt "bound check: new_hi=%.1fms %s cur_lo=%.1fms (%s)" new_hi_ms
      (if admitted then "<" else ">=")
      cur_lo_ms
      (if admitted then "admitted" else "vetoed")
  | Ev_sampled probe -> Sampling.pp_probe fmt probe
  | Ev_parallel { op; dop; want_pages; got_pages; max_worker_ms; avg_worker_ms }
    ->
    Fmt.pf fmt
      "parallel %s: dop=%d slices=%d/%d pages, workers max=%.1fms avg=%.1fms"
      op dop got_pages want_pages max_worker_ms avg_worker_ms
  | Ev_filter
      { source; target_col; est_sel; observed_sel; probed; dropped; pages } ->
    Fmt.pf fmt
      "runtime filter from %s on %s: sel est=%.3f observed=%.3f (dropped \
       %d/%d, %d pages)"
      source target_col est_sel observed_sel dropped probed pages

let () = pp_event_ref := pp_event
