open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Parser = Mqr_sql.Parser
module Query = Mqr_sql.Query
module Optimizer = Mqr_opt.Optimizer
module Stats_env = Mqr_opt.Stats_env
module Plan = Mqr_opt.Plan
module Memory_manager = Mqr_memman.Memory_manager
module Verifier = Mqr_analysis.Verifier
module Trace = Mqr_obs.Trace
module Domain_pool = Mqr_exec.Domain_pool

type t = {
  catalog : Catalog.t;
  model : Sim_clock.model;
  pool_pages : int;
  budget_pages : int;
  params : Reopt_policy.params;
  opt_options : Optimizer.options;
  udfs : Parser.udf_def list ref;
  plan_cache : Plan_cache.t option;
  verify : Verifier.mode;
  trace : Trace.t option;
  domain_pool : Domain_pool.t option;
}

let create ?(model = Sim_clock.default_model) ?(pool_pages = 2048)
    ?(budget_pages = 512) ?(params = Reopt_policy.default_params)
    ?opt_options ?(runtime_filters = false) ?(plan_cache = false)
    ?(verify_plans = Verifier.Off) ?trace ?(parallel = 1) catalog =
  (* Unless told otherwise, the optimizer assumes each memory consumer will
     receive about half the memory-manager budget.  [parallel] both raises
     the optimizer's degree-of-parallelism ceiling and spins up the domain
     pool the workers run on; at 1 everything stays serial and no domains
     are spawned. *)
  let opt_options =
    match opt_options with
    | Some o -> { o with Optimizer.enable_runtime_filters = runtime_filters }
    | None ->
      { Optimizer.default_options with
        Optimizer.planning_mem_pages = max 8 (budget_pages / 2);
        enable_runtime_filters = runtime_filters;
        max_dop = max 1 parallel }
  in
  { catalog; model; pool_pages; budget_pages; params; opt_options;
    udfs = ref [];
    plan_cache = (if plan_cache then Some (Plan_cache.create ()) else None);
    verify = verify_plans;
    trace;
    domain_pool =
      (if parallel > 1 then Some (Domain_pool.create ~size:parallel ())
       else None) }

(* Tear down the domain pool.  Idempotent — the pool joins its domains
   exactly once no matter how many times this is called, so error paths
   in long-lived hosts can shut down defensively.  A no-op for serial
   engines; without it the domains of a parallel engine are reclaimed
   only at process exit. *)
let shutdown t = Option.iter Domain_pool.shutdown t.domain_pool

let catalog t = t.catalog

let verify_mode t = t.verify

let plan_cache_stats t =
  Option.map (fun c -> (Plan_cache.hits c, Plan_cache.misses c, Plan_cache.size c))
    t.plan_cache
let params t = t.params
(* Reconfigured engines get a fresh plan cache: plans compiled under the
   old parameters (different mu, planning memory) must not be served. *)
let fresh_cache t =
  Option.map (fun _ -> Plan_cache.create ()) t.plan_cache

let with_params t params = { t with params; plan_cache = fresh_cache t }
let with_budget t ~budget_pages =
  { t with
    budget_pages;
    plan_cache = fresh_cache t;
    opt_options =
      { t.opt_options with
        Optimizer.planning_mem_pages = max 8 (budget_pages / 2) } }

let register_udf t ~name ?selectivity fn =
  t.udfs := { Parser.name; fn; selectivity } :: !(t.udfs)

(* One trace lane per query: the scope's label is what the Chrome-trace
   thread is called, so prefer the (truncated) SQL text. *)
let truncate_label s =
  let s = String.map (function '\n' | '\t' | '\r' -> ' ' | c -> c) s in
  if String.length s <= 48 then s else String.sub s 0 45 ^ "..."

let scope_for t label =
  Option.map (fun tr -> Trace.scope tr ~label ()) t.trace

let config ?trace ?progress t mode start_sampling =
  { Dispatcher.catalog = t.catalog;
    model = t.model;
    pool_pages = t.pool_pages;
    budget_pages = t.budget_pages;
    params = t.params;
    opt_options = t.opt_options;
    mode;
    start_sampling;
    broker = None;
    env_overlay = None;
    temp_prefix = "";
    verify = t.verify;
    trace;
    domain_pool = t.domain_pool;
    progress }

let budget_pages t = t.budget_pages

(* Workload managers build per-query dispatcher configurations from the
   engine's settings, overriding the pieces they own (memory broker,
   statistics overlay, temp-table namespace). *)
let dispatcher_config t ~mode ?probe_rows ?budget_pages ?broker ?env_overlay
    ?(temp_prefix = "") ?verify ?trace ?progress () =
  { (config t mode probe_rows) with
    Dispatcher.budget_pages =
      Option.value ~default:t.budget_pages budget_pages;
    broker;
    env_overlay;
    temp_prefix;
    verify = Option.value ~default:t.verify verify;
    trace;
    progress }

let bind_sql t sql = Query.bind t.catalog (Parser.parse ~udfs:!(t.udfs) sql)

type exec_result =
  | Rows of Dispatcher.report
  | Modified of { table : string; count : int }
  | Created of string
  | Analyzed of string

exception Dml_error of string

let const_value schema_col e =
  let v =
    match e with
    | Mqr_expr.Expr.Const v -> v
    | e ->
      (* allow constant arithmetic, e.g. -3 or 2+2 *)
      (try Mqr_expr.Expr.compile (Schema.make []) e [||]
       with _ -> raise (Dml_error "INSERT values must be constants"))
  in
  (* light coercion toward the column type *)
  match v, schema_col.Schema.ty with
  | Value.Null, _ -> Value.Null
  | Value.Int i, Value.TFloat -> Value.Float (float_of_int i)
  | Value.Int i, Value.TDate -> Value.Date i
  | v, ty when Value.type_of v = ty -> v
  | v, ty ->
    raise
      (Dml_error
         (Printf.sprintf "value %s does not fit column %s of type %s"
            (Value.to_string v) schema_col.Schema.name (Value.ty_to_string ty)))

let insert_rows t ~table rows =
  let tbl = Catalog.find_exn t.catalog table in
  let schema = Heap_file.schema tbl.Catalog.heap in
  let arity = Schema.arity schema in
  List.iter
    (fun row ->
       if List.length row <> arity then
         raise
           (Dml_error
              (Printf.sprintf "expected %d values for %s, got %d" arity table
                 (List.length row)));
       let tuple =
         Array.of_list
           (List.mapi (fun i e -> const_value (Schema.column schema i) e) row)
       in
       let rid = Heap_file.tuple_count tbl.Catalog.heap in
       Heap_file.append tbl.Catalog.heap tuple;
       (* indexes extend incrementally: rids are stable on insert *)
       List.iter
         (fun ix ->
            match Catalog.column_index tbl ix.Catalog.column with
            | Some ci when not (Value.is_null tuple.(ci)) ->
              Mqr_storage.Btree.insert ix.Catalog.btree tuple.(ci) rid
            | _ -> ())
         tbl.Catalog.indexes)
    rows;
  Catalog.note_updates t.catalog ~table (List.length rows);
  List.length rows

let delete_rows t ~table ~where =
  let tbl = Catalog.find_exn t.catalog table in
  let schema = Schema.qualify (Heap_file.schema tbl.Catalog.heap) table in
  let keep =
    match where with
    | None -> fun _ -> false
    | Some pred ->
      let p = Mqr_expr.Expr.compile_pred schema pred in
      fun tuple -> not (p tuple)
  in
  let deleted = Heap_file.retain tbl.Catalog.heap keep in
  if deleted > 0 then Catalog.rebuild_indexes t.catalog ~table;
  Catalog.note_updates t.catalog ~table deleted;
  deleted

let run_query t ?(mode = Dispatcher.Full) ?probe_rows ?(label = "query")
    ?progress q =
  Dispatcher.run (config ?trace:(scope_for t label) ?progress t mode probe_rows)
    q

let run_sql t ?(mode = Dispatcher.Full) ?probe_rows ?progress sql =
  let label = truncate_label sql in
  match t.plan_cache with
  | None -> run_query t ~mode ?probe_rows ~label ?progress (bind_sql t sql)
  | Some cache ->
    (* plans are instrumented per mode, so the mode is part of the key *)
    let key = Dispatcher.mode_to_string mode ^ "|" ^ sql in
    (match Plan_cache.find cache t.catalog key with
     | Some entry ->
       Dispatcher.run
         ~prepared:(entry.Plan_cache.plan, entry.Plan_cache.collectors)
         (config ?trace:(scope_for t label) ?progress t mode probe_rows)
         entry.Plan_cache.query
     | None ->
       let q = bind_sql t sql in
       let report =
         Dispatcher.run
           (config ?trace:(scope_for t label) ?progress t mode probe_rows) q
       in
       Plan_cache.store cache t.catalog key
         ~plan:report.Dispatcher.initial_plan ~query:q
         ~collectors:report.Dispatcher.collectors;
       report)

let coerce_csv_field col s =
  if s = "" then Value.Null
  else
    try
      match col.Schema.ty with
      | Value.TInt -> Value.Int (int_of_string (String.trim s))
      | Value.TFloat -> Value.Float (float_of_string (String.trim s))
      | Value.TBool -> Value.Bool (bool_of_string (String.trim s))
      | Value.TDate -> Value.date_of_string (String.trim s)
      | Value.TString -> Value.String s
    with Failure _ | Invalid_argument _ ->
      raise
        (Dml_error
           (Printf.sprintf "cannot read %S as %s for column %s" s
              (Value.ty_to_string col.Schema.ty) col.Schema.name))

let copy_csv t ~table ~file =
  let tbl = Catalog.find_exn t.catalog table in
  let schema = Heap_file.schema tbl.Catalog.heap in
  let arity = Schema.arity schema in
  let count = ref 0 in
  List.iter
    (fun record ->
       if List.length record <> arity then
         raise
           (Dml_error
              (Printf.sprintf "expected %d fields, got %d" arity
                 (List.length record)));
       let tuple =
         Array.of_list
           (List.mapi (fun i s -> coerce_csv_field (Schema.column schema i) s)
              record)
       in
       Heap_file.append tbl.Catalog.heap tuple;
       incr count)
    (Mqr_storage.Csv.read_file file);
  Catalog.note_updates t.catalog ~table !count;
  Catalog.rebuild_indexes t.catalog ~table;
  !count

let execute t ?mode ?probe_rows sql =
  match Parser.parse_statement ~udfs:!(t.udfs) sql with
  | Parser.Select q ->
    Rows
      (run_query t ?mode ?probe_rows ~label:(truncate_label sql)
         (Query.bind t.catalog q))
  | Parser.Insert { table; rows } ->
    Modified { table; count = insert_rows t ~table rows }
  | Parser.Delete { table; where } ->
    Modified { table; count = delete_rows t ~table ~where }
  | Parser.Create_table { table; columns } ->
    let schema =
      Schema.make
        (List.map (fun (name, ty, width) -> Schema.col ?width name ty) columns)
    in
    ignore (Catalog.add_table t.catalog table (Heap_file.create schema));
    Created table
  | Parser.Create_index { table; column } ->
    ignore (Catalog.create_index t.catalog ~table ~column);
    Created (table ^ "." ^ column)
  | Parser.Copy { table; file } ->
    Modified { table; count = copy_csv t ~table ~file }
  | Parser.Analyze table ->
    Catalog.analyze_table t.catalog table;
    Analyzed table

let analyze t ?kind ?buckets ?keys table =
  Catalog.analyze_table ?kind ?buckets ?keys t.catalog table

let explain t sql =
  let q = bind_sql t sql in
  let env = Stats_env.create t.catalog q.Query.relations in
  let r = Optimizer.optimize ~options:t.opt_options ~model:t.model ~env q in
  r.Optimizer.plan

(* Static analysis without execution: build the plan exactly as the
   dispatcher would (optimize; unless mode is Off, insert collectors and
   re-cost; grant memory) and run the verifier over it. *)
let lint t ?(mode = Dispatcher.Full) sql =
  let q = bind_sql t sql in
  let env = Stats_env.create t.catalog q.Query.relations in
  let r = Optimizer.optimize ~options:t.opt_options ~model:t.model ~env q in
  let plan =
    match mode with
    | Dispatcher.Off -> r.Optimizer.plan
    | _ ->
      let scia =
        Scia.insert ~mu:t.params.Reopt_policy.mu ~env r.Optimizer.plan
      in
      Optimizer.recost ~planning_mem:t.opt_options.Optimizer.planning_mem_pages
        ~max_dop:t.opt_options.Optimizer.max_dop ~model:t.model ~env
        scia.Scia.plan
  in
  let memman = Memory_manager.create ~budget_pages:t.budget_pages in
  ignore (Memory_manager.allocate memman plan);
  let vctx =
    Verifier.context ~budget_pages:t.budget_pages
      ~mu:t.params.Reopt_policy.mu t.catalog
  in
  (plan, Verifier.verify vctx plan)

let time_ms t ?mode ?probe_rows sql =
  (run_sql t ?mode ?probe_rows sql).Dispatcher.elapsed_ms

let pp_summary fmt (r : Dispatcher.report) =
  Fmt.pf fmt "@[<v>%d result rows in %.1f simulated ms@," (Array.length r.Dispatcher.rows)
    r.Dispatcher.elapsed_ms;
  Fmt.pf fmt "I/O: %a@," Sim_clock.pp_counters r.Dispatcher.counters;
  Fmt.pf fmt "buffer pool: %d hits / %d misses@," r.Dispatcher.pool_hits
    r.Dispatcher.pool_misses;
  Fmt.pf fmt "collectors inserted: %d, plan switches: %d@,"
    r.Dispatcher.collectors r.Dispatcher.switches;
  List.iter
    (fun ev -> Fmt.pf fmt "  %a@," Dispatcher.pp_event ev)
    r.Dispatcher.events;
  Fmt.pf fmt "@]"

let print_summary r = Fmt.pr "%a@." pp_summary r
