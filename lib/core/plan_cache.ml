module Catalog = Mqr_catalog.Catalog
module Plan = Mqr_opt.Plan
module Query = Mqr_sql.Query

type entry = {
  plan : Plan.t;
  query : Query.t;
  collectors : int;
}

type stored = {
  e : entry;
  (* (update counter, stats epoch) of the referenced tables at caching
     time *)
  table_versions : (string * (int * int)) list;
}

type t = {
  capacity : int;
  table : (string, stored) Hashtbl.t;
  order : string Queue.t;  (* FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 64) () =
  { capacity;
    table = Hashtbl.create 32;
    order = Queue.create ();
    hits = 0;
    misses = 0 }

(* A plan is stale when a referenced table disappeared, had its statistics
   refreshed by ANALYZE (the stats epoch moved: the plan was costed under
   numbers that no longer exist), or has seen more than 10% extra update
   activity since caching. *)
let still_valid catalog stored =
  List.for_all
    (fun (table, (cached_updates, cached_epoch)) ->
       match Catalog.find catalog table with
       | None -> false
       | Some tbl ->
         let now = tbl.Catalog.updates_since_analyze in
         if tbl.Catalog.stats_epoch <> cached_epoch then false
         else if now < cached_updates then false
         else begin
           let believed = max 1 tbl.Catalog.believed_rows in
           float_of_int (now - cached_updates) /. float_of_int believed <= 0.1
         end)
    stored.table_versions

let versions catalog (q : Query.t) =
  List.filter_map
    (fun (r : Query.relation) ->
       match Catalog.find catalog r.Query.table with
       | Some tbl ->
         Some
           (r.Query.table,
            (tbl.Catalog.updates_since_analyze, tbl.Catalog.stats_epoch))
       | None -> None)
    q.Query.relations

let find t catalog sql =
  match Hashtbl.find_opt t.table sql with
  | Some stored when still_valid catalog stored ->
    t.hits <- t.hits + 1;
    Some stored.e
  | Some _ ->
    Hashtbl.remove t.table sql;
    t.misses <- t.misses + 1;
    None
  | None ->
    t.misses <- t.misses + 1;
    None

let store t catalog sql ~plan ~query ~collectors =
  if not (Hashtbl.mem t.table sql) then begin
    while Hashtbl.length t.table >= t.capacity do
      match Queue.take_opt t.order with
      | Some victim -> Hashtbl.remove t.table victim
      | None -> Hashtbl.reset t.table
    done;
    Queue.push sql t.order
  end;
  Hashtbl.replace t.table sql
    { e = { plan; query; collectors }; table_versions = versions catalog query }

let invalidate t sql = Hashtbl.remove t.table sql

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order

let hits t = t.hits
let misses t = t.misses
let size t = Hashtbl.length t.table
