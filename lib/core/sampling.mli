(** Start-time selectivity probing — the hybrid direction the paper
    sketches in Sections 4–5: combine run-time re-optimization with
    plans informed by information gathered just before execution
    (parameterized/dynamic plans à la Graefe–Cole and Ioannidis et al.).

    Before the optimizer runs, each relation whose local predicate has a
    Medium/High inaccuracy potential is probed: a small random sample of
    its tuples is fetched (paying random-read cost through the buffer
    pool) and the predicate's true selectivity is measured.  The
    measurement is installed in the {!Mqr_opt.Stats_env} as a local
    selectivity override, so the very first plan already reflects reality
    for those predicates.  Mid-query re-optimization then handles what
    sampling cannot see: join selectivities and distribution changes at
    intermediate results. *)



type probe = {
  alias : string;
  sampled : int;
  matched : int;
  observed_selectivity : float;  (** with add-one smoothing *)
  estimated_selectivity : float; (** what the optimizer would have used *)
}

(** [probe_and_override ~catalog ~ctx ~env query ~sample_rows] probes every
    relation with an uncertain local predicate, installs the overrides in
    [env] and returns what was measured.  Costs are charged to
    [ctx.clock]. *)
val probe_and_override :
  catalog:Mqr_catalog.Catalog.t -> ctx:Mqr_exec.Exec_ctx.t ->
  env:Mqr_opt.Stats_env.t -> Mqr_sql.Query.t -> sample_rows:int -> probe list

val pp_probe : Format.formatter -> probe -> unit
