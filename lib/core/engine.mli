(** Public facade: a database engine with Dynamic Re-Optimization.

    Typical use:
    {[
      let catalog = Mqr_catalog.Catalog.create () in
      (* ... load tables, analyze, create indexes ... *)
      let engine = Engine.create catalog in
      let report = Engine.run_sql engine "select ... from ... where ..." in
      Engine.print_summary report
    ]} *)

open Mqr_storage

type t

(** [create catalog] builds an engine.  [pool_pages] is the buffer-pool
    capacity (default 2048), [budget_pages] the memory-manager budget
    (default 512).  [runtime_filters] turns on bloom/min-max runtime join
    filters (sideways information passing, see
    {!Mqr_exec.Runtime_filter}); it overrides the flag inside
    [opt_options] when both are given.  [plan_cache] enables the
    static-plan store of the paper's Section 2.6: repeated queries skip
    optimization and collector insertion until their tables drift (see
    {!Plan_cache}).  [verify_plans] enables the static plan verifier
    (see {!Mqr_analysis.Verifier}): [Pre] analyses every instrumented
    plan before execution and refuses to run one with error-severity
    findings; [Sanitize] additionally re-verifies the remainder plan at
    every decision point and after every mid-query plan switch.  [trace]
    attaches an observability collector (see {!Mqr_obs.Trace}): every
    query run through the engine opens a scope in it (labelled with its
    truncated SQL) and stamps operator spans, decision-point ledger
    entries and metrics — pure observation that never charges the
    simulated clock.  [parallel] (default 1) enables intra-query
    parallelism: the optimizer may assign operators a degree of
    parallelism up to [parallel], and a {!Mqr_exec.Domain_pool} of that
    many real domains executes the workers.  Result rows and simulated
    time depend only on the chosen plan degrees, never on how many
    domains actually run them, so [parallel] changes wall-clock time
    only.  Call {!shutdown} to join the domains when discarding a
    parallel engine. *)
val create :
  ?model:Sim_clock.model ->
  ?pool_pages:int ->
  ?budget_pages:int ->
  ?params:Reopt_policy.params ->
  ?opt_options:Mqr_opt.Optimizer.options ->
  ?runtime_filters:bool ->
  ?plan_cache:bool ->
  ?verify_plans:Mqr_analysis.Verifier.mode ->
  ?trace:Mqr_obs.Trace.t ->
  ?parallel:int ->
  Mqr_catalog.Catalog.t -> t

(** Join the engine's worker domains.  Idempotent: safe to call from
    every error path of a long-lived host — repeated calls after the
    first are no-ops, as is the whole call for serial engines. *)
val shutdown : t -> unit

val catalog : t -> Mqr_catalog.Catalog.t

(** The verifier mode queries inherit unless a dispatcher config
    overrides it. *)
val verify_mode : t -> Mqr_analysis.Verifier.mode

(** The engine's global memory-manager budget. *)
val budget_pages : t -> int

(** Build a {!Dispatcher.config} from the engine's settings — the hook a
    workload manager uses to run queries through {!Dispatcher.start} with
    its own memory broker, statistics overlay, and temp-table namespace
    ([temp_prefix] must be unique per in-flight query).  [budget_pages]
    overrides the engine's budget (e.g. a fixed slice per query). *)
val dispatcher_config :
  t ->
  mode:Dispatcher.mode ->
  ?probe_rows:int ->
  ?budget_pages:int ->
  ?broker:(min_pages:int -> max_pages:int -> int) ->
  ?env_overlay:(Mqr_sql.Query.t -> Mqr_opt.Stats_env.t -> unit) ->
  ?temp_prefix:string ->
  ?verify:Mqr_analysis.Verifier.mode ->
  ?trace:Mqr_obs.Trace.scope ->
  ?progress:Mqr_obs.Progress.t ->
  unit -> Dispatcher.config

(** (hits, misses, entries) when the plan cache is enabled. *)
val plan_cache_stats : t -> (int * int * int) option
val params : t -> Reopt_policy.params

(** Replace the re-optimization parameters (mu, theta1, theta2) — used by
    the sensitivity experiments. *)
val with_params : t -> Reopt_policy.params -> t

val with_budget : t -> budget_pages:int -> t

(** Register a user-defined function usable in SQL predicates.  When
    [selectivity] is omitted the optimizer falls back to its default guess
    and the inaccuracy-potential rules treat predicates using the function
    as [High]. *)
val register_udf :
  t -> name:string -> ?selectivity:float -> (Value.t list -> Value.t) -> unit

(** Parse, bind, optimize and execute under the given re-optimization mode
    (default [Full]).  [probe_rows] enables start-time selectivity sampling
    of uncertain predicates with that many probed rows per relation (the
    hybrid strategy; see {!Sampling}).  [progress] attaches a progress/ETA
    estimator the dispatcher updates at every decision point (pure
    observation; zero simulated cost). *)
val run_sql :
  t -> ?mode:Dispatcher.mode -> ?probe_rows:int ->
  ?progress:Mqr_obs.Progress.t -> string -> Dispatcher.report

(** Statement-level entry point: SELECT returns a report, INSERT/DELETE
    return the affected-row count.  Update activity is tracked and makes
    the table's statistics progressively less trustworthy until
    {!analyze} is run (the paper's update-activity rule). *)
type exec_result =
  | Rows of Dispatcher.report
  | Modified of { table : string; count : int }
  | Created of string   (** table or index name *)
  | Analyzed of string

exception Dml_error of string

val execute :
  t -> ?mode:Dispatcher.mode -> ?probe_rows:int -> string -> exec_result

(** Recollect a table's statistics (ANALYZE), clearing its update
    counter. *)
val analyze :
  t -> ?kind:Mqr_stats.Histogram.kind -> ?buckets:int -> ?keys:string list ->
  string -> unit

(** Run an already-bound query block.  [label] names the query's trace
    scope when the engine was created with [?trace]. *)
val run_query :
  t -> ?mode:Dispatcher.mode -> ?probe_rows:int -> ?label:string ->
  ?progress:Mqr_obs.Progress.t -> Mqr_sql.Query.t -> Dispatcher.report

(** Parse and bind without executing. *)
val bind_sql : t -> string -> Mqr_sql.Query.t

(** Optimize without executing: the annotated plan. *)
val explain : t -> string -> Mqr_opt.Plan.t

(** Static analysis without execution: build the plan exactly as the
    dispatcher would under [mode] (default [Full]: optimize, insert
    collectors, re-cost, grant memory; [Off] skips instrumentation) and
    run every verifier pass over it.  Returns the analysed plan and the
    findings, errors first. *)
val lint :
  t -> ?mode:Dispatcher.mode -> string ->
  Mqr_opt.Plan.t * Mqr_analysis.Diagnostic.t list

(** Convenience: simulated execution time of a query under a mode. *)
val time_ms :
  t -> ?mode:Dispatcher.mode -> ?probe_rows:int -> string -> float

val print_summary : Dispatcher.report -> unit
val pp_summary : Format.formatter -> Dispatcher.report -> unit
