module Plan = Mqr_opt.Plan
module Stats_env = Mqr_opt.Stats_env
module Collector = Mqr_exec.Collector
module Expr = Mqr_expr.Expr
module Schema = Mqr_storage.Schema

type candidate = {
  column : string;
  stat : [ `Histogram | `Distinct ];
  at_alias : string;
  level : Inaccuracy.level;
  affected_ms : float;
  collect_ms : float;
}

type outcome = {
  plan : Plan.t;
  kept : candidate list;
  dropped : candidate list;
  budget_ms : float;
}

let owns_col schema col =
  match Schema.index_of schema col with
  | (_ : int) -> true
  | exception Not_found -> false
  | exception Schema.Ambiguous _ -> false

(* Qualified columns a node's own predicate work refers to (join keys,
   residuals, group-by columns). *)
let used_columns (p : Plan.t) =
  match p.Plan.node with
  | Plan.Hash_join { keys; extra; _ } ->
    List.concat_map (fun (a, b) -> [ a; b ]) keys
    @ (match extra with None -> [] | Some e -> Expr.columns e)
  | Plan.Index_nl_join { outer_col; inner_col; extra; _ } ->
    [ outer_col; inner_col ]
    @ (match extra with None -> [] | Some e -> Expr.columns e)
  | Plan.Block_nl_join { pred; _ } ->
    (match pred with None -> [] | Some e -> Expr.columns e)
  | Plan.Merge_join { keys; extra; _ } ->
    List.concat_map (fun (a, b) -> [ a; b ]) keys
    @ (match extra with None -> [] | Some e -> Expr.columns e)
  | _ -> []

let group_columns (p : Plan.t) =
  match p.Plan.node with
  | Plan.Aggregate { group_by; _ } -> group_by
  | _ -> []

(* Sum of this node's own cost and every node above it: the part of the
   plan "after" a statistic's first use. *)
let affected_ms_of ~above (u : Plan.t) =
  List.fold_left (fun acc (a : Plan.t) -> acc +. a.Plan.est.Plan.op_ms)
    u.Plan.est.Plan.op_ms above

(* [ancestors] is nearest-first. *)
let candidates_for_scan env (scan : Plan.t) ~alias ~ancestors =
  let schema = scan.Plan.schema in
  let rows = scan.Plan.est.Plan.rows in
  let collect_ms = rows *. Collector.stat_tuple_ms in
  (* nearest ancestor using a column of this scan, with everything above *)
  let rec first_use cols_of = function
    | [] -> None
    | (a : Plan.t) :: above ->
      (match List.filter (owns_col schema) (cols_of a) with
       | [] -> first_use cols_of above
       | cols -> Some (cols, a, above))
  in
  let hists =
    (* every ancestor join contributes its first use of each column *)
    let seen = Hashtbl.create 8 in
    let rec walk = function
      | [] -> []
      | (a : Plan.t) :: above ->
        let cols = List.filter (owns_col schema) (used_columns a) in
        let fresh = List.filter (fun c -> not (Hashtbl.mem seen c)) cols in
        List.iter (fun c -> Hashtbl.replace seen c ()) fresh;
        List.map
          (fun column ->
             { column;
               stat = `Histogram;
               at_alias = alias;
               level = Inaccuracy.histogram_level env scan ~column;
               affected_ms = affected_ms_of ~above a;
               collect_ms })
          fresh
        @ walk above
    in
    walk ancestors
  in
  let distincts =
    match first_use group_columns ancestors with
    | None -> []
    | Some (cols, a, above) ->
      List.map
        (fun column ->
           { column;
             stat = `Distinct;
             at_alias = alias;
             level = Inaccuracy.distinct_level env scan ~column;
             affected_ms = affected_ms_of ~above a;
             collect_ms })
        cols
  in
  hists @ distincts

let compare_effectiveness a b =
  (* more effective first: higher inaccuracy, then larger affected cost *)
  match Inaccuracy.compare_level b.level a.level with
  | 0 -> Float.compare b.affected_ms a.affected_ms
  | c -> c

let insert ~mu ~env plan =
  let total_ms = plan.Plan.est.Plan.total_ms in
  let budget_ms = mu *. total_ms in
  (* Gather scan nodes with their ancestor chains (nearest first). *)
  let scans = ref [] in
  let rec walk ancestors (p : Plan.t) =
    (match p.Plan.node with
     | Plan.Seq_scan { alias; _ } | Plan.Index_scan { alias; _ } ->
       scans := (p, alias, ancestors) :: !scans
     | _ -> ());
    List.iter (walk (p :: ancestors)) (Plan.children p)
  in
  walk [] plan;
  let scans = List.rev !scans in
  let all =
    List.concat_map
      (fun (scan, alias, ancestors) ->
         candidates_for_scan env scan ~alias ~ancestors)
      scans
  in
  let ranked = List.stable_sort compare_effectiveness all in
  (* Keep the most effective statistics within the budget. *)
  let kept, dropped, _ =
    List.fold_left
      (fun (kept, dropped, spent) c ->
         if spent +. c.collect_ms <= budget_ms then
           (c :: kept, dropped, spent +. c.collect_ms)
         else (kept, c :: dropped, spent))
      ([], [], 0.0) ranked
  in
  let kept = List.rev kept and dropped = List.rev dropped in
  (* Wrap each scan that has kept statistics in a Collect operator. *)
  let next_id = ref (List.fold_left (fun m (n : Plan.t) -> max m n.Plan.id) 0 (Plan.nodes plan) + 1) in
  let next_cid = ref 0 in
  let rec rebuild (p : Plan.t) =
    let p = Plan.with_children p (List.map rebuild (Plan.children p)) in
    match p.Plan.node with
    | Plan.Seq_scan { alias; _ } | Plan.Index_scan { alias; _ } ->
      let mine = List.filter (fun c -> c.at_alias = alias) kept in
      if mine = [] then p
      else begin
        let hist_cols =
          List.filter_map
            (fun c -> if c.stat = `Histogram then Some c.column else None)
            mine
        in
        let distinct_cols =
          List.filter_map
            (fun c -> if c.stat = `Distinct then Some c.column else None)
            mine
        in
        let spec = Collector.spec ~hist_cols ~distinct_cols () in
        let cid = !next_cid in
        incr next_cid;
        let id = !next_id in
        incr next_id;
        (* the wrapper streams its input through unchanged but pays the
           per-tuple collection CPU, so the annotation stays internally
           consistent even before the next re-cost *)
        let collect_ms =
          Collector.estimated_cost_ms spec ~rows:p.Plan.est.Plan.rows
        in
        { Plan.id = id;
          node = Plan.Collect { input = p; spec; cid };
          schema = p.Plan.schema;
          est =
            { p.Plan.est with
              Plan.op_ms = collect_ms;
              total_ms = p.Plan.est.Plan.total_ms +. collect_ms };
          min_mem = 0;
          max_mem = 0;
          mem = 0;
          dop = 1 }
      end
    | _ -> p
  in
  let plan = rebuild plan in
  { plan; kept; dropped; budget_ms }

let pp_candidate fmt c =
  Fmt.pf fmt "%s(%s) at %s [inaccuracy=%s affected=%.1fms cost=%.2fms]"
    (match c.stat with `Histogram -> "hist" | `Distinct -> "distinct")
    c.column c.at_alias
    (Inaccuracy.level_to_string c.level)
    c.affected_ms c.collect_ms
