(** Re-optimization decision heuristics (paper Section 2.4).

    With [T_cur,improved] the improved estimate for executing the remainder
    of the current plan, [T_cur,optimizer] the optimizer's original
    estimate for the same operators, and [T_opt,estimated] the calibrated
    worst-case cost of re-invoking the optimizer:

    - Equation 1 — only re-optimize when the remainder dwarfs the
      optimizer invocation: [T_opt,estimated <= theta1 * T_cur,improved]
      (theta1 ~ 0.05);
    - Equation 2 — only re-optimize when the plan looks sub-optimal:
      [(T_cur,improved - T_cur,optimizer) / T_cur,optimizer > theta2]
      (theta2 ~ 0.2).

    A re-optimized plan is accepted only if its total estimated time —
    including the already-spent optimization time and the materialization
    of the current intermediate result — beats the improved estimate of
    staying the course: [T_new-plan,total < T_cur-plan,improved]. *)

type params = {
  mu : float;      (** max statistics-collection overhead fraction, ~0.05 *)
  theta1 : float;  (** Eq. 1 threshold, ~0.05 *)
  theta2 : float;  (** Eq. 2 threshold, ~0.2 *)
  max_switches : int;  (** safety bound on plan changes per query *)
  rf_surprise_factor : float;
  (** a runtime filter's observed pass rate deviating from the estimate by
      more than this factor (either direction) forces the next decision
      point to consider re-optimization even when Eq. 2 says the plan
      looks close enough (~4) *)
}

val default_params : params

type decision =
  | Too_cheap      (** Eq. 1 failed *)
  | Close_enough   (** Eq. 2 failed *)
  | Consider       (** both heuristics passed: re-invoke the optimizer *)

val should_consider :
  params -> t_opt_estimated:float -> t_improved:float -> t_optimizer:float ->
  decision

val accept_new_plan : t_new_total:float -> t_improved:float -> bool

(** Guaranteed-win acceptance for the dispatcher's bound-checked mode:
    admit the candidate only when its provable worst-case remaining cost
    [new_hi_ms] (finite, upper bound of {!Mqr_analysis.Bounds.cost_interval}
    plus collection overhead and materialization) is below the current
    plan's provable best-case remaining cost [cur_lo_ms]. *)
val accept_bound_checked : new_hi_ms:float -> cur_lo_ms:float -> bool

(** Is the deviation between a filter's estimated and observed selectivity
    large enough ([> rf_surprise_factor] either way) to distrust the
    remaining plan? *)
val filter_surprise : params -> est:float -> obs:float -> bool

val decision_to_string : decision -> string
