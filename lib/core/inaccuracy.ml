module Plan = Mqr_opt.Plan
module Stats_env = Mqr_opt.Stats_env
module Column_stats = Mqr_catalog.Column_stats
module Histogram = Mqr_stats.Histogram
module Expr = Mqr_expr.Expr

type level = Low | Medium | High

let bump = function Low -> Medium | Medium -> High | High -> High
let rank = function Low -> 0 | Medium -> 1 | High -> 2
let max_level a b = if rank a >= rank b then a else b
let compare_level a b = Int.compare (rank a) (rank b)

let level_to_string = function
  | Low -> "low"
  | Medium -> "medium"
  | High -> "high"

let base_histogram_level env ~column =
  match Stats_env.stats_of env column with
  | None -> High
  | Some st ->
    let base =
      match st.Column_stats.histogram with
      | None -> High
      | Some h ->
        (match Histogram.kind h with
         | Histogram.Serial | Histogram.Maxdiff | Histogram.V_optimal -> Low
         | Histogram.Equi_width | Histogram.Equi_depth -> Medium)
    in
    if st.Column_stats.stale then bump base else base

let rec pred_has_udf = function
  | Expr.Udf _ -> true
  | Expr.Col _ | Expr.Const _ -> false
  | Expr.Arith (_, a, b) | Expr.Cmp (_, a, b) | Expr.And (a, b)
  | Expr.Or (a, b) -> pred_has_udf a || pred_has_udf b
  | Expr.Between (e, lo, hi) ->
    pred_has_udf e || pred_has_udf lo || pred_has_udf hi
  | Expr.Not e -> pred_has_udf e

(* Effect of a pushed-down selection on a scan's output-cardinality level:
   UDF -> High; two or more distinct attributes -> one level worse than the
   worst attribute (correlations); single attribute -> that attribute's
   histogram level. *)
(* How wrong a selectivity estimate turned out, as a level: within 2x ->
   Low, within 4x -> Medium, beyond -> High.  Used to grade runtime-filter
   estimates against their observed pass rates. *)
let selectivity_error_level ~est ~obs =
  let est = Float.max 1e-6 est and obs = Float.max 1e-6 obs in
  let ratio = if est > obs then est /. obs else obs /. est in
  if ratio < 2.0 then Low else if ratio < 4.0 then Medium else High

let filter_level env = function
  | None -> Low
  | Some pred ->
    if pred_has_udf pred then High
    else begin
      let cols = List.sort_uniq String.compare (Expr.columns pred) in
      let worst =
        List.fold_left
          (fun acc c -> max_level acc (base_histogram_level env ~column:c))
          Low cols
      in
      if List.length cols >= 2 then bump worst else worst
    end

let is_key_col env column =
  match Stats_env.stats_of env column with
  | Some st -> st.Column_stats.is_key
  | None -> false

let pp_level fmt l = Fmt.string fmt (level_to_string l)

let rec cardinality_level env (p : Plan.t) =
  match p.Plan.node with
  | Plan.Seq_scan { filter; _ } | Plan.Index_scan { filter; _ } ->
    filter_level env filter
  | Plan.Materialized _ -> Low  (* observed exactly *)
  | Plan.Hash_join { build; probe; keys; extra; _ } ->
    let inputs =
      max_level (cardinality_level env build) (cardinality_level env probe)
    in
    let key_join =
      keys <> []
      && List.for_all
           (fun (a, b) -> is_key_col env a || is_key_col env b)
           keys
    in
    let lvl = if key_join then inputs else bump inputs in
    if extra <> None then bump lvl else lvl
  | Plan.Index_nl_join { outer; outer_col; inner_col; extra; _ } ->
    let inputs = cardinality_level env outer in
    let key_join = is_key_col env outer_col || is_key_col env inner_col in
    let lvl = if key_join then inputs else bump inputs in
    if extra <> None then bump lvl else lvl
  | Plan.Merge_join { left; right; keys; extra; _ } ->
    let inputs =
      max_level (cardinality_level env left) (cardinality_level env right)
    in
    let key_join =
      keys <> []
      && List.for_all (fun (a, b) -> is_key_col env a || is_key_col env b) keys
    in
    let lvl = if key_join then inputs else bump inputs in
    if extra <> None then bump lvl else lvl
  | Plan.Block_nl_join { outer; inner; pred } ->
    let inputs =
      max_level (cardinality_level env outer) (cardinality_level env inner)
    in
    if pred = None then inputs else High
  | Plan.Aggregate { input; group_by; _ } ->
    (* The output cardinality is the number of groups: the level of the
       grouping columns' distinct estimate in the input. *)
    List.fold_left
      (fun acc c -> max_level acc (distinct_level env input ~column:c))
      Low group_by
  | Plan.Filter { input; pred } ->
    max_level (filter_level env (Some pred)) (cardinality_level env input)
  | Plan.Sort { input; _ } | Plan.Project { input; _ }
  | Plan.Limit { input; _ } | Plan.Collect { input; _ } ->
    cardinality_level env input

and distinct_level env (p : Plan.t) ~column =
  match p.Plan.node with
  | Plan.Seq_scan { filter = None; _ } | Plan.Index_scan { filter = None; _ } ->
    (* base table: low only when the catalog knows the count *)
    (match Stats_env.stats_of env column with
     | Some { Column_stats.distinct = Some _; stale = false; _ } -> Low
     | Some { Column_stats.distinct = Some _; stale = true; _ } -> Medium
     | _ -> High)
  | _ -> High

let rec owning_child env (p : Plan.t) ~column =
  match
    List.find_opt
      (fun (c : Plan.t) ->
         match Mqr_storage.Schema.index_of c.Plan.schema column with
         | (_ : int) -> true
         | exception Not_found -> false
         | exception Mqr_storage.Schema.Ambiguous _ -> false)
      (Plan.children p)
  with
  | Some c -> owning_child env c ~column
  | None -> p

let histogram_level env (p : Plan.t) ~column =
  let origin = owning_child env p ~column in
  let col_level = base_histogram_level env ~column in
  (* the distribution at [p] reflects both the base histogram quality and
     everything that happened to the rows on the way *)
  max_level col_level (cardinality_level env origin)
  |> fun lvl -> max_level lvl (cardinality_level env p)
