(** Static-plan cache.

    Section 2.6 of the paper: the output of the statistics-collectors
    insertion algorithm is "the final static plan for the query that can be
    stored in the database system".  This module is that store: annotated,
    collector-instrumented plans keyed by query text.

    A cached plan embeds the optimizer estimates of its day; like any
    static plan it goes stale as tables change.  Entries are invalidated
    when a referenced table has seen significant update activity since the
    plan was cached, was dropped, or had its statistics refreshed by
    ANALYZE (its stats epoch moved — even when no rows changed, the plan
    was costed under numbers that no longer exist) — and, of course, a
    stale plan that slips through is exactly what Dynamic Re-Optimization
    repairs at run time. *)

type t

val create : ?capacity:int -> unit -> t

type entry = {
  plan : Mqr_opt.Plan.t;
  query : Mqr_sql.Query.t;
  collectors : int;
}

(** [find t catalog sql] returns a still-valid entry, dropping and
    reporting staleness otherwise. *)
val find : t -> Mqr_catalog.Catalog.t -> string -> entry option

val store :
  t -> Mqr_catalog.Catalog.t -> string -> plan:Mqr_opt.Plan.t ->
  query:Mqr_sql.Query.t -> collectors:int -> unit

val invalidate : t -> string -> unit
val clear : t -> unit

val hits : t -> int
val misses : t -> int
val size : t -> int
