(** The scheduler/dispatcher with Dynamic Re-Optimization (paper Figure 9).

    Events are also traced on the [mqr.dispatcher] {!Logs} source at debug
    level — enable with [Logs.Src.set_level Dispatcher.log_src (Some Debug)].

    A plan executes as a sequence of units (a join together with the scan
    pipelines feeding it, then the final aggregate/sort stack).  When a
    unit completes, the statistics its collectors gathered become
    available, the remainder of the plan is re-costed under the improved
    estimates, and — per {!Reopt_policy} — the dispatcher either

    - re-invokes the Memory Manager with the improved estimates (dynamic
      resource re-allocation), and/or
    - re-invokes the optimizer on the remainder of the query (posed over
      the materialized intermediate, as in the paper's Figure 6), and
      switches plans when the new plan wins even after paying the
      materialization and re-optimization overheads.

    [mode] isolates the two mechanisms for the Figure 11 experiment. *)

open Mqr_storage

type mode =
  | Off           (** baseline: no collectors, no re-optimization *)
  | Memory_only   (** improved estimates only drive memory re-allocation *)
  | Plan_only     (** improved estimates only drive plan modification *)
  | Full
  | Bound_checked
      (** [Full], but a plan switch is additionally admitted only when the
          candidate's provable worst-case remaining cost (upper bound of
          {!Mqr_analysis.Bounds.cost_interval}, collection overhead and
          materialization included) beats the current plan's provable
          best-case remaining cost — switching cannot lose to estimation
          error ({!Reopt_policy.accept_bound_checked}) *)

val mode_to_string : mode -> string

val log_src : Logs.src

type config = {
  catalog : Mqr_catalog.Catalog.t;
  model : Sim_clock.model;
  pool_pages : int;
  budget_pages : int;   (** memory-manager budget *)
  params : Reopt_policy.params;
  opt_options : Mqr_opt.Optimizer.options;
  mode : mode;
  start_sampling : int option;
      (** probe uncertain local predicates on this many sampled rows
          before the first optimization (the hybrid strategy of
          Sections 4-5); [None] disables *)
  broker : (min_pages:int -> max_pages:int -> int) option;
      (** when set, [budget_pages] is ignored after start-up: every
          (re-)allocation asks the broker for a lease bounded by the
          remaining plan's aggregate memory demand, so a workload manager
          can shift pages between concurrent queries (the paper's dynamic
          resource re-allocation lifted to the workload level) *)
  env_overlay : (Mqr_sql.Query.t -> Mqr_opt.Stats_env.t -> unit) option;
      (** applied to every freshly built estimation environment before
          this query's own observed statistics; used by the workload
          manager's cross-query statistics feedback *)
  temp_prefix : string;
      (** disambiguates intermediate-result table names when several
          in-flight queries share one catalog; [""] for a solo query *)
  verify : Mqr_analysis.Verifier.mode;
      (** static plan verification (see {!Mqr_analysis.Verifier}): [Pre]
          analyses the instrumented plan before execution and
          {!start}/{!run} raise {!Mqr_analysis.Verifier.Rejected} on any
          error-severity finding; [Sanitize] additionally re-verifies the
          remainder plan at every decision point and after every
          mid-query plan switch, and asserts the runtime-filter lease
          invariant ([filter_pages_held = 0]) there.  Verification is
          pure analysis — it never touches the simulated clock. *)
  trace : Mqr_obs.Trace.scope option;
      (** when set, the run stamps operator/unit/query spans,
          decision-point audit-ledger entries and metrics into the scope's
          trace (see {!Mqr_obs.Trace}).  Tracing is pure observation: it
          never charges the simulated clock, so a traced run's elapsed
          time and result rows are identical to an untraced one *)
  domain_pool : Mqr_exec.Domain_pool.t option;
      (** real OCaml domains parallel operators submit their per-worker
          closures to.  The pool only affects wall-clock time: result rows
          and simulated charges depend on each operator's plan [dop]
          annotation, never on the pool size ([None] runs workers
          inline) *)
  progress : Mqr_obs.Progress.t option;
      (** when set, the run records a progress/ETA sample into the
          estimator at start, at every decision point, after every plan
          switch and on completion, combining the remainder plan's Eq.1
          cost estimate with its provable remaining-cost interval from
          {!Mqr_analysis.Bounds}.  Like tracing, progress is pure
          observation: it never charges the simulated clock, so a run
          with progress attached has bit-identical elapsed time and
          byte-identical rows *)
}

type event =
  | Ev_unit_done of { op : string; est_rows : float; actual_rows : int }
  | Ev_collected of { cid : int; alias : string; columns : string list }
  | Ev_realloc of { grants : Mqr_memman.Memory_manager.grant list }
  | Ev_considered of {
      decision : Reopt_policy.decision;
      t_improved : float;
      t_optimizer : float;
      t_opt_estimated : float;
    }
  | Ev_switched of {
      t_new_total : float;
      t_improved : float;
      materialize_ms : float;
    }
  | Ev_rejected of { t_new_total : float; t_improved : float }
  | Ev_bound_check of {
      new_hi_ms : float;
          (** candidate's provable worst-case remaining cost *)
      cur_lo_ms : float;
          (** current plan's provable best-case remaining cost *)
      admitted : bool;  (** the worst case provably beats the best case *)
    }  (** emitted at every bound-checked switch consideration *)
  | Ev_sampled of Sampling.probe
  | Ev_parallel of {
      op : string;           (** operator executed with an exchange *)
      dop : int;             (** plan degree of parallelism *)
      want_pages : int;      (** pool-page slices requested for workers *)
      got_pages : int;       (** slices actually leased; a shortfall under
                                 a broker shows over-commit being clamped *)
      max_worker_ms : float; (** slowest worker (what the clock charged) *)
      avg_worker_ms : float; (** mean worker time — max/avg is the skew *)
    }  (** a parallel operator finished; emitted once per exchange *)
  | Ev_filter of {
      source : string;      (** publishing join *)
      target_col : string;  (** probe-side column pruned *)
      est_sel : float;      (** optimizer's estimated pass fraction *)
      observed_sel : float; (** actual pass fraction *)
      probed : int;
      dropped : int;
      pages : int;          (** bloom bitmap pages leased *)
    }  (** a runtime filter was retired after its probe side ran *)

type report = {
  rows : Tuple.t array;
  result_schema : Schema.t;
  elapsed_ms : float;
  counters : Sim_clock.counters;
  events : event list;
  timed_events : (float * event) list;
      (** every event paired with the simulated time at which it was
          emitted — [events] is the same list unstamped, kept for
          compatibility *)
  switches : int;
  collectors : int;  (** collectors inserted into the initial plan *)
  initial_plan : Mqr_opt.Plan.t;
  final_plan : Mqr_opt.Plan.t;
  actual_rows : (int * int) list;
      (** (plan-node id, observed output rows) for every executed node —
          the raw material of an EXPLAIN ANALYZE *)
  actual_ms : (int * float) list;
      (** (plan-node id, simulated milliseconds spent in that node alone) *)
  pool_hits : int;    (** buffer-pool page hits during execution *)
  pool_misses : int;  (** buffer-pool page misses during execution *)
  observed_stats : (string * Mqr_catalog.Column_stats.t) list;
      (** qualified column -> statistics gathered by this query's
          collectors; they can outlive the query (Section 2.6) and seed a
          workload-level statistics cache *)
  observed_cards : (string * int) list;
      (** alias -> exact cardinality for relations scanned in full *)
  filters : (string * float * float) list;
      (** (probe column, estimated selectivity, observed selectivity) per
          runtime filter built, in build order — the sideways information
          passing audit trail *)
  filter_pages_peak : int;
      (** most bloom-bitmap pages held at once *)
  filter_pages_held : int;
      (** bloom-bitmap pages still leased at completion — always 0 (the
          lifetime invariant the sanitizer asserts; exposed so callers
          need not reach into dispatcher internals) *)
  worker_pages_peak : int;
      (** most buffer-pool pages leased to parallel workers at once; 0 on
          a fully serial run *)
  worker_pages_held : int;
      (** worker pool-slice pages still leased at completion — always 0
          (same lease discipline as filter pages, asserted by the
          sanitizer as [PAR-LIFETIME]) *)
  collector_ms : float;
      (** simulated CPU spent inside statistics collectors — what the
          paper's mu budget bounds *)
  verifications : int;
      (** plan-verification runs performed (0 when [verify = Off]) *)
}

(** Execute a bound query under the configuration.  [prepared] supplies a
    cached static plan (with its collector count) and skips optimization
    and collector insertion — see {!Plan_cache}. *)
val run :
  ?prepared:Mqr_opt.Plan.t * int -> config -> Mqr_sql.Query.t -> report

(** {2 Stepwise execution}

    A workload manager interleaves many queries over the simulated clock:
    [start] optimizes and instruments the query without executing it, and
    each [step] runs exactly one execution unit (one ready join together
    with the pipelines feeding it, or the final aggregate/sort stack, which
    completes the query).  [run] is [start] followed by [step] to
    completion. *)

type run

val start :
  ?prepared:Mqr_opt.Plan.t * int -> config -> Mqr_sql.Query.t -> run

(** [step r] executes the next unit; returns the report once the query
    finished (repeat calls keep returning it).  If a unit raises
    (executor failure, sanitizer rejection, a broken UDF) the run is
    torn down exactly like {!abort} before the exception propagates —
    no leaked temp tables, no leaked transient broker pages — and
    further [step] calls raise [Invalid_argument]. *)
val step : run -> report option

(** Cancel a run mid-query: releases transient broker pages, drops the
    run's temp tables from the shared catalog, and closes its open trace
    spans.  Idempotent; no-op once the report exists.  The run's memory
    lease itself belongs to whoever created the broker hook and must be
    released there. *)
val abort : run -> unit

(** [finished r] once [r] has its report {e or} was aborted. *)
val finished : run -> bool

(** The run was torn down by {!abort} or by an exception inside {!step}. *)
val aborted : run -> bool

(** Simulated milliseconds this run has consumed so far. *)
val run_elapsed_ms : run -> float

(** Bloom-bitmap pages the run currently holds.  Filters live strictly
    inside one execution unit, so this is 0 whenever the run is observable
    from outside a [step] — at every decision point, after a mid-query
    plan switch, and at completion (leased pages always return to the
    broker). *)
val filter_pages_held : run -> int

(** Buffer-pool pages currently leased to parallel workers.  Worker slices
    live strictly inside one operator, so this is 0 whenever the run is
    observable from outside a [step] — the parallel analogue of
    {!filter_pages_held}. *)
val worker_pages_held : run -> int

(** Re-negotiate the run's memory lease against its broker and re-allocate
    over the remaining plan — lets the workload manager re-grant pages
    freed by a finished query to one still in flight.  No-op on finished
    runs or broker-less configurations (the fixed budget cannot change). *)
val refresh_memory : run -> unit

val pp_event : Format.formatter -> event -> unit

(** Render a plan with observed cardinalities beside the estimates
    (EXPLAIN ANALYZE style); pass [report.initial_plan, report.actual_rows]
    or the final plan. *)
val pp_plan_with_actuals :
  Format.formatter -> Mqr_opt.Plan.t * (int * int) list -> unit

(** Full EXPLAIN ANALYZE over the report's initial plan: estimated vs
    observed cardinalities and per-operator simulated time. *)
val pp_explain_analyze : Format.formatter -> report -> unit
