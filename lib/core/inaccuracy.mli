(** Inaccuracy-potential levels (paper Section 2.5).

    A level of [High] for a statistic means the corresponding optimizer
    estimate is likely wrong, making run-time observation of that statistic
    valuable.  Levels start from what the catalog knows about base-table
    columns and are propagated up the plan by the paper's rules:

    - base histogram: serial (or MaxDiff) -> Low, equi-width/equi-depth ->
      Medium, none -> High; one level worse if the statistics are stale;
    - distinct counts: Low on base tables when known, High at any
      intermediate point;
    - selection with a single-attribute simple predicate: unchanged;
      with predicates over two or more attributes of the relation: one
      level worse (possible correlation); with a user-defined predicate:
      High;
    - equi-join on key attributes: max of the inputs; on non-key
      attributes: one level worse; non-equi join: High;
    - aggregate output: the level of the grouping columns' distinct-count
      estimate in its input. *)

type level = Low | Medium | High

val bump : level -> level
val max_level : level -> level -> level
val compare_level : level -> level -> int
val level_to_string : level -> string

(** Level of the catalog histogram for a qualified column. *)
val base_histogram_level :
  Mqr_opt.Stats_env.t -> column:string -> level

(** Level of a pushed-down selection's output-cardinality estimate
    ([None] = no filter = exact). *)
val filter_level :
  Mqr_opt.Stats_env.t -> Mqr_expr.Expr.t option -> level

(** Grade of a selectivity estimate against its observation: within a
    factor of 2 -> [Low], 4 -> [Medium], beyond -> [High].  Used for
    runtime-filter pass rates. *)
val selectivity_error_level : est:float -> obs:float -> level

val pp_level : Format.formatter -> level -> unit

(** Level of the optimizer's *cardinality* estimate for a plan node's
    output. *)
val cardinality_level : Mqr_opt.Stats_env.t -> Mqr_opt.Plan.t -> level

(** Level of the optimizer's knowledge of [column]'s distribution at the
    output of [plan] (for deciding whether to histogram it there). *)
val histogram_level :
  Mqr_opt.Stats_env.t -> Mqr_opt.Plan.t -> column:string -> level

(** Level for the distinct-value count of [column] at the output of
    [plan]. *)
val distinct_level :
  Mqr_opt.Stats_env.t -> Mqr_opt.Plan.t -> column:string -> level
