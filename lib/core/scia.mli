(** The statistics-collectors insertion algorithm (paper Section 2.5).

    Runs as a post-processing phase over the optimizer's annotated plan:

    1. list every *potentially useful* statistic — a histogram on a column
       that participates in a join predicate later in the plan, a distinct
       count on columns grouped by a later aggregate;
    2. score each by its *inaccuracy potential* (how likely the optimizer's
       estimate is wrong — {!Inaccuracy}) and, to break ties, by the
       fraction of the remaining plan the statistic affects;
    3. drop the least effective statistics until the total estimated
       collection cost fits within [mu * T_cur-plan,optimizer];
    4. wrap the corresponding scan outputs in [Collect] operators.

    Cardinality, average tuple size and min/max are treated as free and are
    always observed (the dispatcher collects them at every intermediate
    result), exactly as the paper assumes. *)

type candidate = {
  column : string;              (** qualified column *)
  stat : [ `Histogram | `Distinct ];
  at_alias : string;            (** scan whose output is observed *)
  level : Inaccuracy.level;
  affected_ms : float;          (** cost of the plan portion it influences *)
  collect_ms : float;           (** estimated cost of observing it *)
}

type outcome = {
  plan : Mqr_opt.Plan.t;        (** plan with [Collect] operators inserted *)
  kept : candidate list;
  dropped : candidate list;
  budget_ms : float;            (** mu * estimated query time *)
}

(** [insert ~mu ~env plan] returns the instrumented plan.  Collector ids
    ([cid]) are dense, starting at 0, in left-to-right scan order. *)
val insert :
  mu:float -> env:Mqr_opt.Stats_env.t -> Mqr_opt.Plan.t -> outcome

val pp_candidate : Format.formatter -> candidate -> unit
