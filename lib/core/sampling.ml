open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Query = Mqr_sql.Query
module Expr = Mqr_expr.Expr
module Selectivity = Mqr_expr.Selectivity
module Stats_env = Mqr_opt.Stats_env
module Exec_ctx = Mqr_exec.Exec_ctx

type probe = {
  alias : string;
  sampled : int;
  matched : int;
  observed_selectivity : float;
  estimated_selectivity : float;
}

let local_conjuncts env (q : Query.t) alias =
  List.filter
    (fun conj ->
       match Expr.columns conj with
       | [] -> false
       | cols ->
         List.for_all
           (fun c ->
              let rel = Stats_env.rel env ~alias in
              Stats_env.owns rel c)
           cols)
    q.Query.conjuncts

let probe_relation ~catalog ~ctx (r : Query.relation) pred ~sample_rows =
  let tbl = Catalog.find_exn catalog r.Query.table in
  let heap = tbl.Catalog.heap in
  let n = Heap_file.tuple_count heap in
  if n = 0 then None
  else begin
    let rng = Mqr_stats.Rng.create (0x5a17 + Heap_file.file_id heap) in
    let test = Expr.compile_pred r.Query.rel_schema pred in
    let sample = min sample_rows n in
    let matched = ref 0 in
    for _ = 1 to sample do
      let rid = Mqr_stats.Rng.int rng n in
      let tuple =
        Heap_file.fetch heap ~pool:ctx.Exec_ctx.pool ~clock:ctx.Exec_ctx.clock
          rid
      in
      if test tuple then incr matched
    done;
    (* add-one smoothing keeps zero-match probes from predicting an empty
       result outright *)
    let observed =
      (float_of_int !matched +. 1.0) /. (float_of_int sample +. 2.0)
    in
    Some (sample, !matched, observed)
  end

let probe_and_override ~catalog ~ctx ~env (q : Query.t) ~sample_rows =
  let sel_env = Stats_env.selectivity_env env in
  List.filter_map
    (fun (r : Query.relation) ->
       let alias = r.Query.alias in
       match local_conjuncts env q alias with
       | [] -> None
       | conjs ->
         let pred = Expr.conjoin conjs in
         let level = Inaccuracy.filter_level env (Some pred) in
         if Inaccuracy.compare_level level Inaccuracy.Medium < 0 then None
         else begin
           match probe_relation ~catalog ~ctx r pred ~sample_rows with
           | None -> None
           | Some (sampled, matched, observed) ->
             let estimated = Selectivity.selectivity sel_env pred in
             Stats_env.override_local_selectivity env ~alias
               ~selectivity:observed;
             Some
               { alias;
                 sampled;
                 matched;
                 observed_selectivity = observed;
                 estimated_selectivity = estimated }
         end)
    q.Query.relations

let pp_probe fmt p =
  Fmt.pf fmt
    "sampled %s: %d/%d matched -> selectivity %.4f (optimizer assumed %.4f)"
    p.alias p.matched p.sampled p.observed_selectivity
    p.estimated_selectivity
