type params = {
  mu : float;
  theta1 : float;
  theta2 : float;
  max_switches : int;
  rf_surprise_factor : float;
}

let default_params =
  { mu = 0.05; theta1 = 0.05; theta2 = 0.2; max_switches = 4;
    rf_surprise_factor = 4.0 }

type decision =
  | Too_cheap
  | Close_enough
  | Consider

let should_consider p ~t_opt_estimated ~t_improved ~t_optimizer =
  if t_opt_estimated > p.theta1 *. t_improved then Too_cheap
  else if
    t_optimizer <= 0.0
    || (t_improved -. t_optimizer) /. t_optimizer <= p.theta2
  then Close_enough
  else Consider

let accept_new_plan ~t_new_total ~t_improved = t_new_total < t_improved

(* Bound-checked switching: only admit a candidate whose *worst-case*
   remaining cost (upper bound of its provable cost interval, collection
   overhead and materialization included) beats the *best-case* remaining
   cost of staying the course.  An infinite upper bound — the analysis
   could not bound the candidate — never wins. *)
let accept_bound_checked ~new_hi_ms ~cur_lo_ms =
  Float.is_finite new_hi_ms && new_hi_ms < cur_lo_ms

(* A runtime filter whose observed pass rate deviates from the estimate by
   more than [rf_surprise_factor] in either direction means the join
   selectivity underlying the remaining plan is badly wrong. *)
let filter_surprise p ~est ~obs =
  let est = Float.max 1e-6 est and obs = Float.max 1e-6 obs in
  let ratio = if est > obs then est /. obs else obs /. est in
  ratio > p.rf_surprise_factor

let decision_to_string = function
  | Too_cheap -> "too-cheap (Eq. 1)"
  | Close_enough -> "close-enough (Eq. 2)"
  | Consider -> "consider"
