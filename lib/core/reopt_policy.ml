type params = {
  mu : float;
  theta1 : float;
  theta2 : float;
  max_switches : int;
}

let default_params = { mu = 0.05; theta1 = 0.05; theta2 = 0.2; max_switches = 4 }

type decision =
  | Too_cheap
  | Close_enough
  | Consider

let should_consider p ~t_opt_estimated ~t_improved ~t_optimizer =
  if t_opt_estimated > p.theta1 *. t_improved then Too_cheap
  else if
    t_optimizer <= 0.0
    || (t_improved -. t_optimizer) /. t_optimizer <= p.theta2
  then Close_enough
  else Consider

let accept_new_plan ~t_new_total ~t_improved = t_new_total < t_improved

let decision_to_string = function
  | Too_cheap -> "too-cheap (Eq. 1)"
  | Close_enough -> "close-enough (Eq. 2)"
  | Consider -> "consider"
