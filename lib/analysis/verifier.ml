open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Expr = Mqr_expr.Expr
module Plan = Mqr_opt.Plan
module Collector = Mqr_exec.Collector
module Aggregate = Mqr_exec.Aggregate

type context = {
  base_schema : string -> Schema.t option;
  base_rows : string -> float option;
  temp_schema : string -> Schema.t option;
  budget_pages : int option;
  mu : float option;
  bounds : Bounds.env;
}

let context ?temp_schema ?budget_pages ?mu catalog =
  let temp_schema =
    match temp_schema with Some f -> f | None -> fun _ -> None
  in
  (* Temp tables inherit sample-based collector statistics: their min/max
     windows are exact but their bucket/distinct counts are not trusted by
     the bounds analysis. *)
  let bounds =
    Bounds.env ~count_trusted:(fun name -> Option.is_none (temp_schema name))
      catalog
  in
  { bounds;
    base_schema =
      (fun table ->
         Option.map
           (fun (t : Catalog.table) -> Heap_file.schema t.Catalog.heap)
           (Catalog.find catalog table));
    base_rows =
      (fun table ->
         Option.map
           (fun (t : Catalog.table) -> float_of_int t.Catalog.believed_rows)
           (Catalog.find catalog table));
    temp_schema;
    budget_pages;
    mu }

type pass = {
  pass_name : string;
  run : context -> Plan.t -> Diagnostic.t list;
}

type mode = Off | Pre | Sanitize

let mode_to_string = function
  | Off -> "off"
  | Pre -> "pre"
  | Sanitize -> "sanitize"

(* ------------------------------------------------------------------ *)
(* Shared helpers.                                                     *)

(* Visit every node with its ancestor chain (nearest first). *)
let iter_with_ancestors f plan =
  let rec go ancestors (p : Plan.t) =
    f ~ancestors p;
    List.iter (go (p :: ancestors)) (Plan.children p)
  in
  go [] plan

let path_of ~ancestors (p : Plan.t) =
  List.rev (Plan.op_name p :: List.map Plan.op_name ancestors)

let resolves schema col =
  match Schema.index_of schema col with
  | (_ : int) -> true
  | exception Not_found -> false
  | exception Schema.Ambiguous _ -> true

let col_ty schema col =
  match Schema.index_of schema col with
  | i -> Some (Schema.column schema i).Schema.ty
  | exception Not_found -> None
  | exception Schema.Ambiguous _ -> None

(* Int/Float compare numerically and Date is carried as an integer day
   number, so the three interoperate; everything else must match. *)
let numericish = function
  | Value.TInt | Value.TFloat | Value.TDate -> true
  | Value.TBool | Value.TString -> false

let compatible a b = a = b || (numericish a && numericish b)

let shape_key s =
  List.map
    (fun (c : Schema.column) -> (c.Schema.qualifier, c.Schema.name, c.Schema.ty))
    (Schema.columns s)

let same_shape a b = shape_key a = shape_key b

let schema_to_string s = Fmt.str "%a" Schema.pp s

(* The schema a scan of [table] should deliver.  Materialized
   intermediates keep their original column qualifiers (the store/heap
   schema verbatim); base tables are re-qualified by the scan alias, as
   the binder does. *)
let scan_schema ctx ~table ~alias =
  match ctx.temp_schema table with
  | Some s -> Some s
  | None ->
    (match ctx.base_schema table with
     | Some s -> Some (Schema.qualify s alias)
     | None -> None)

(* ------------------------------------------------------------------ *)
(* Pass 1: schema/type dataflow.                                       *)

let schema_pass_name = "schema"

let schema_run ctx plan =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let err ~code ?hint ~node_id ~path msg =
    add (Diagnostic.error ~pass:schema_pass_name ~code ?hint ~node_id ~path msg)
  in
  let check_cols ~what ~node_id ~path schema cols =
    List.iter
      (fun c ->
         if not (resolves schema c) then
           err ~code:"SCH-COLREF" ~node_id ~path
             ~hint:"reference a column of this operator's input"
             (Fmt.str "%s references column %s, absent from schema [%s]" what
                c (schema_to_string schema)))
      cols
  in
  let check_expr ~what ~node_id ~path schema e =
    check_cols ~what ~node_id ~path schema (Expr.columns e);
    if Expr.resolvable schema e then
      match Expr.type_of schema e with
      | (_ : Value.ty) -> ()
      | exception _ ->
        err ~code:"SCH-TYPE" ~node_id ~path
          ~hint:"operand types must agree"
          (Fmt.str "%s mixes incompatible operand types" what)
  in
  let check_key_pair ~what ~node_id ~path (s1, n1) (s2, n2) (c1, c2) =
    check_cols ~what:(what ^ " (" ^ n1 ^ " side)") ~node_id ~path s1 [ c1 ];
    check_cols ~what:(what ^ " (" ^ n2 ^ " side)") ~node_id ~path s2 [ c2 ];
    match (col_ty s1 c1, col_ty s2 c2) with
    | Some a, Some b when not (compatible a b) ->
      err ~code:"SCH-TYPE" ~node_id ~path
        ~hint:"join columns must have comparable types"
        (Fmt.str "%s compares %s:%s with %s:%s" what c1
           (Value.ty_to_string a) c2 (Value.ty_to_string b))
    | _ -> ()
  in
  let check_shape ~node_id ~path ~expected (p : Plan.t) =
    if not (same_shape expected p.Plan.schema) then
      err ~code:"SCH-SHAPE" ~node_id ~path
        ~hint:"rebuild the node with the schema its inputs imply"
        (Fmt.str "recorded schema [%s] does not match the inferred [%s]"
           (schema_to_string p.Plan.schema) (schema_to_string expected))
  in
  iter_with_ancestors
    (fun ~ancestors (p : Plan.t) ->
       let node_id = p.Plan.id in
       let path = path_of ~ancestors p in
       match p.Plan.node with
       | Plan.Seq_scan { table; alias; filter } ->
         (match scan_schema ctx ~table ~alias with
          | None ->
            err ~code:"SCH-TABLE" ~node_id ~path
              ~hint:"scan a table known to the catalog or the temp store"
              (Fmt.str "unknown table %s" table)
          | Some expected -> check_shape ~node_id ~path ~expected p);
         Option.iter
           (check_expr ~what:"scan filter" ~node_id ~path p.Plan.schema)
           filter
       | Plan.Index_scan { table; alias; index_col; lo; hi; filter } ->
         (match scan_schema ctx ~table ~alias with
          | None ->
            err ~code:"SCH-TABLE" ~node_id ~path
              ~hint:"scan a table known to the catalog or the temp store"
              (Fmt.str "unknown table %s" table)
          | Some expected -> check_shape ~node_id ~path ~expected p);
         check_cols ~what:"index scan" ~node_id ~path p.Plan.schema
           [ index_col ];
         (match col_ty p.Plan.schema index_col with
          | None -> ()
          | Some ty ->
            List.iter
              (fun bound ->
                 match bound with
                 | Some (v, _) when not (Value.is_null v) ->
                   if not (compatible (Value.type_of v) ty) then
                     err ~code:"SCH-TYPE" ~node_id ~path
                       ~hint:"index bounds must match the key column type"
                       (Fmt.str "index bound %s does not fit %s:%s"
                          (Value.to_string v) index_col
                          (Value.ty_to_string ty))
                 | _ -> ())
              [ lo; hi ]);
         Option.iter
           (check_expr ~what:"scan filter" ~node_id ~path p.Plan.schema)
           filter
       | Plan.Materialized { name; _ } ->
         (match ctx.temp_schema name with
          | Some expected -> check_shape ~node_id ~path ~expected p
          | None ->
            (match ctx.base_schema name with
             | Some expected -> check_shape ~node_id ~path ~expected p
             | None ->
               err ~code:"SCH-TEMP" ~node_id ~path
                 ~hint:
                   "a re-planned remainder may only read intermediates \
                    that were actually materialized"
                 (Fmt.str "unknown materialized intermediate %s" name)))
       | Plan.Hash_join { build; probe; keys; extra; rf = _ } ->
         let expected = Schema.concat probe.Plan.schema build.Plan.schema in
         check_shape ~node_id ~path ~expected p;
         List.iter
           (fun (pc, bc) ->
              check_key_pair ~what:"hash-join key" ~node_id ~path
                (probe.Plan.schema, "probe") (build.Plan.schema, "build")
                (pc, bc))
           keys;
         Option.iter
           (check_expr ~what:"join residual" ~node_id ~path p.Plan.schema)
           extra
       | Plan.Index_nl_join
           { outer; table; alias; outer_col; inner_col; inner_filter; extra }
         ->
         (match scan_schema ctx ~table ~alias with
          | None ->
            err ~code:"SCH-TABLE" ~node_id ~path
              ~hint:"join against a table known to the catalog"
              (Fmt.str "unknown inner table %s" table)
          | Some inner ->
            let expected = Schema.concat outer.Plan.schema inner in
            check_shape ~node_id ~path ~expected p;
            check_key_pair ~what:"index-nl key" ~node_id ~path
              (outer.Plan.schema, "outer") (inner, "inner")
              (outer_col, inner_col);
            Option.iter
              (check_expr ~what:"inner filter" ~node_id ~path expected)
              inner_filter);
         Option.iter
           (check_expr ~what:"join residual" ~node_id ~path p.Plan.schema)
           extra
       | Plan.Block_nl_join { outer; inner; pred } ->
         let expected = Schema.concat outer.Plan.schema inner.Plan.schema in
         check_shape ~node_id ~path ~expected p;
         Option.iter
           (check_expr ~what:"join predicate" ~node_id ~path p.Plan.schema)
           pred
       | Plan.Merge_join { left; right; keys; extra; _ } ->
         let expected = Schema.concat left.Plan.schema right.Plan.schema in
         check_shape ~node_id ~path ~expected p;
         List.iter
           (fun (lc, rc) ->
              check_key_pair ~what:"merge-join key" ~node_id ~path
                (left.Plan.schema, "left") (right.Plan.schema, "right")
                (lc, rc))
           keys;
         Option.iter
           (check_expr ~what:"join residual" ~node_id ~path p.Plan.schema)
           extra
       | Plan.Aggregate { input; group_by; aggs; _ } ->
         check_cols ~what:"group-by" ~node_id ~path input.Plan.schema group_by;
         List.iter
           (fun (a : Aggregate.spec) ->
              Option.iter
                (check_expr ~what:("aggregate " ^ a.Aggregate.out_name)
                   ~node_id ~path input.Plan.schema)
                a.Aggregate.arg)
           aggs;
         (match
            Aggregate.output_schema input.Plan.schema ~group_by ~aggs
          with
          | expected -> check_shape ~node_id ~path ~expected p
          | exception _ -> () (* the column errors above already fired *))
       | Plan.Filter { input; pred } ->
         check_expr ~what:"filter predicate" ~node_id ~path input.Plan.schema
           pred;
         check_shape ~node_id ~path ~expected:input.Plan.schema p
       | Plan.Sort { input; keys } ->
         check_cols ~what:"sort key" ~node_id ~path input.Plan.schema
           (List.map fst keys);
         check_shape ~node_id ~path ~expected:input.Plan.schema p
       | Plan.Project { input; cols } ->
         check_cols ~what:"projection" ~node_id ~path input.Plan.schema cols;
         (match
            List.map (Schema.index_of input.Plan.schema) cols
          with
          | idxs ->
            check_shape ~node_id ~path
              ~expected:(Schema.project input.Plan.schema idxs) p
          | exception _ -> ())
       | Plan.Limit { input; _ } ->
         check_shape ~node_id ~path ~expected:input.Plan.schema p
       | Plan.Collect { input; _ } ->
         check_shape ~node_id ~path ~expected:input.Plan.schema p)
    plan;
  List.rev !diags

let schema_pass = { pass_name = schema_pass_name; run = schema_run }

(* ------------------------------------------------------------------ *)
(* Pass 2: annotation lints.                                           *)

let annotation_pass_name = "annotation"

(* The optimizer clamps node cardinalities at 0.05 rows and group counts
   at 1, so monotonicity is checked with an absolute one-row slack on top
   of rounding tolerance. *)
let exceeds out bound = out > (bound *. 1.000001) +. 1.0

let finite f = Float.is_finite f

let annotation_run ctx plan =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  iter_with_ancestors
    (fun ~ancestors (p : Plan.t) ->
       let node_id = p.Plan.id in
       let path = path_of ~ancestors p in
       let { Plan.rows; width; op_ms; total_ms } = p.Plan.est in
       let invalid what v =
         add
           (Diagnostic.error ~pass:annotation_pass_name ~code:"EST-INVALID"
              ~hint:"annotate every operator with finite, non-negative estimates"
              ~node_id ~path
              (Fmt.str "%s estimate is %g" what v))
       in
       if not (finite rows) || rows < 0.0 then invalid "cardinality" rows;
       if not (finite width) || width <= 0.0 then invalid "tuple width" width;
       if not (finite op_ms) || op_ms < 0.0 then invalid "operator cost" op_ms;
       if not (finite total_ms) || total_ms < 0.0 then
         invalid "cumulative cost" total_ms;
       (* A materialized intermediate can genuinely hold zero rows; an
          estimate below the optimizer's own 0.05-row clamp anywhere else
          means a statistics failure upstream. *)
       (match p.Plan.node with
        | Plan.Materialized _ -> ()
        | _ ->
          if finite rows && rows < 0.05 then
            add
              (Diagnostic.warning ~pass:annotation_pass_name ~code:"EST-ZERO"
                 ~hint:"clamp degenerate estimates to at least one row"
                 ~node_id ~path
                 (Fmt.str "degenerate cardinality estimate (%g rows)" rows)));
       (* total_ms should accumulate the children's totals plus op_ms. *)
       let children_total =
         List.fold_left
           (fun acc (c : Plan.t) -> acc +. c.Plan.est.Plan.total_ms)
           0.0 (Plan.children p)
       in
       let expect_total = op_ms +. children_total in
       if
         finite total_ms && finite expect_total
         && Float.abs (total_ms -. expect_total)
            > 0.001 +. (1e-5 *. Float.max 1.0 expect_total)
       then
         add
           (Diagnostic.warning ~pass:annotation_pass_name ~code:"EST-TOTAL"
              ~hint:"re-cost the plan after rewriting it"
              ~node_id ~path
              (Fmt.str
                 "cumulative cost %.3fms differs from op + children = %.3fms"
                 total_ms expect_total));
       (* Cardinality plausibility against the children. *)
       let join_bound ~what bound =
         if finite rows && finite bound && exceeds rows bound then
           add
             (Diagnostic.error ~pass:annotation_pass_name ~code:"EST-JOIN-BOUND"
                ~hint:"a join cannot produce more rows than the product of \
                       its inputs"
                ~node_id ~path
                (Fmt.str "%s estimates %g rows, above its bound %g" what rows
                   bound))
       in
       let mono_bound ~what bound =
         if finite rows && finite bound && exceeds rows bound then
           add
             (Diagnostic.error ~pass:annotation_pass_name ~code:"EST-MONO"
                ~hint:"this operator can only shrink or preserve its input"
                ~node_id ~path
                (Fmt.str "%s estimates %g rows from an input of %g" what rows
                   bound))
       in
       match p.Plan.node with
       | Plan.Hash_join { build; probe; _ } ->
         join_bound ~what:"hash join"
           (build.Plan.est.Plan.rows *. probe.Plan.est.Plan.rows)
       | Plan.Merge_join { left; right; _ } ->
         join_bound ~what:"merge join"
           (left.Plan.est.Plan.rows *. right.Plan.est.Plan.rows)
       | Plan.Block_nl_join { outer; inner; _ } ->
         join_bound ~what:"nested-loops join"
           (outer.Plan.est.Plan.rows *. inner.Plan.est.Plan.rows)
       | Plan.Index_nl_join { outer; table; _ } ->
         (match ctx.base_rows table with
          | Some inner_rows ->
            join_bound ~what:"index nested-loops join"
              (outer.Plan.est.Plan.rows *. Float.max 1.0 inner_rows)
          | None -> ())
       | Plan.Filter { input; _ } ->
         mono_bound ~what:"filter" input.Plan.est.Plan.rows
       | Plan.Aggregate { input; _ } ->
         mono_bound ~what:"aggregate" input.Plan.est.Plan.rows
       | Plan.Sort { input; _ } ->
         mono_bound ~what:"sort" input.Plan.est.Plan.rows
       | Plan.Project { input; _ } ->
         mono_bound ~what:"project" input.Plan.est.Plan.rows
       | Plan.Limit { input; n } ->
         mono_bound ~what:"limit"
           (Float.min input.Plan.est.Plan.rows (float_of_int n))
       | Plan.Collect { input; _ } ->
         mono_bound ~what:"collector" input.Plan.est.Plan.rows
       | Plan.Seq_scan _ | Plan.Index_scan _ | Plan.Materialized _ -> ())
    plan;
  List.rev !diags

let annotation_pass = { pass_name = annotation_pass_name; run = annotation_run }

(* ------------------------------------------------------------------ *)
(* Pass 3: SCIA legality.                                              *)

let scia_pass_name = "scia"

let is_join (p : Plan.t) =
  match p.Plan.node with
  | Plan.Hash_join _ | Plan.Index_nl_join _ | Plan.Block_nl_join _
  | Plan.Merge_join _ -> true
  | _ -> false

let is_aggregate (p : Plan.t) =
  match p.Plan.node with Plan.Aggregate _ -> true | _ -> false

let scia_run ctx plan =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let seen_cids : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let collect_ms = ref 0.0 in
  iter_with_ancestors
    (fun ~ancestors (p : Plan.t) ->
       match p.Plan.node with
       | Plan.Collect { input; spec; cid } ->
         let node_id = p.Plan.id in
         let path = path_of ~ancestors p in
         collect_ms :=
           !collect_ms
           +. Collector.estimated_cost_ms spec ~rows:p.Plan.est.Plan.rows;
         (* Streamed position: the collector examines tuples as they flow
            out of a scan pipeline; anything that blocks, copies or joins
            beneath it makes the observation point illegal (paper
            Section 3.1). *)
         (match input.Plan.node with
          | Plan.Seq_scan _ | Plan.Index_scan _ | Plan.Materialized _ -> ()
          | _ ->
            add
              (Diagnostic.error ~pass:scia_pass_name ~code:"SCIA-POSITION"
                 ~hint:"insert collectors directly above scans, where the \
                        stream is observable without blocking"
                 ~node_id ~path
                 (Fmt.str "collector #%d sits above %s, not a streamed scan"
                    cid (Plan.op_name input))));
         (* An intermediate that is already on disk belongs to a finished
            execution unit: collecting below it can never influence a
            decision point. *)
         (match input.Plan.node with
          | Plan.Materialized { name; on_disk = true; _ } ->
            add
              (Diagnostic.error ~pass:scia_pass_name ~code:"SCIA-POSITION"
                 ~hint:"drop collectors over already-executed units"
                 ~node_id ~path
                 (Fmt.str
                    "collector #%d observes %s, an already-executed unit"
                    cid name))
          | _ -> ());
         (match Hashtbl.find_opt seen_cids cid with
          | Some other ->
            add
              (Diagnostic.error ~pass:scia_pass_name ~code:"SCIA-DUPCID"
                 ~hint:"collection-point ids must be unique"
                 ~node_id ~path
                 (Fmt.str "collector id %d already used by node #%d" cid
                    other))
          | None -> Hashtbl.replace seen_cids cid node_id);
         List.iter
           (fun c ->
              if not (resolves input.Plan.schema c) then
                add
                  (Diagnostic.error ~pass:scia_pass_name ~code:"SCIA-COLS"
                     ~hint:"collect statistics only over columns the input \
                            delivers"
                     ~node_id ~path
                     (Fmt.str "collector #%d tracks %s, absent from its input"
                        cid c)))
           (Collector.spec_columns spec);
         (* A collector whose statistics no operator above can use will
            never pay for itself. *)
         if
           not
             (List.exists (fun a -> is_join a || is_aggregate a) ancestors)
         then
           add
             (Diagnostic.warning ~pass:scia_pass_name ~code:"SCIA-ORPHAN"
                ~hint:"collect only where a join or aggregate above can \
                       benefit from the statistics"
                ~node_id ~path
                (Fmt.str
                   "collector #%d has no join or aggregate above it to \
                    inform" cid))
       | _ -> ())
    plan;
  (* Total collector CPU against the paper's mu budget.  Estimates shift
     as units execute and the remainder is re-costed, so the lint fires
     only on a gross violation (2x the budget). *)
  (match ctx.mu with
   | Some mu when !collect_ms > 0.0 ->
     let cap = mu *. plan.Plan.est.Plan.total_ms in
     if !collect_ms > (2.0 *. cap) +. 0.5 then
       add
         (Diagnostic.warning ~pass:scia_pass_name ~code:"SCIA-BUDGET"
            ~hint:"drop the least effective collectors to fit the mu budget"
            ~node_id:plan.Plan.id
            ~path:[ Plan.op_name plan ]
            (Fmt.str
               "collectors cost %.2fms against a budget of %.2fms (mu=%g \
                of %.2fms)"
               !collect_ms cap mu plan.Plan.est.Plan.total_ms))
   | _ -> ());
  List.rev !diags

let scia_pass = { pass_name = scia_pass_name; run = scia_run }

(* ------------------------------------------------------------------ *)
(* Pass 4: resource and lifetime checks.                               *)

let resource_pass_name = "resource"

(* Scan-pipeline leaves of a subtree where the dispatcher can apply a
   runtime filter, with the column each would be matched against. *)
let filter_sites sub ~col =
  Plan.fold
    (fun acc (n : Plan.t) ->
       match n.Plan.node with
       | Plan.Seq_scan { alias; _ } | Plan.Index_scan { alias; _ } ->
         if resolves n.Plan.schema col then alias :: acc else acc
       | Plan.Materialized { name; _ } ->
         if resolves n.Plan.schema col then name :: acc else acc
       | _ -> acc)
    [] sub

let check_rf ~node_id ~path ~what ~(build : Plan.t) ~(probe : Plan.t) rfs add =
  List.iter
    (fun { Plan.rf_build_col; rf_probe_col; rf_sel; rf_sites } ->
       if not (Float.is_finite rf_sel) || rf_sel <= 0.0 || rf_sel > 1.0 then
         add
           (Diagnostic.error ~pass:resource_pass_name ~code:"RF-SEL"
              ~hint:"estimated filter selectivity must lie in (0, 1]"
              ~node_id ~path
              (Fmt.str "%s filter on %s has selectivity %g" what rf_probe_col
                 rf_sel));
       if not (resolves build.Plan.schema rf_build_col) then
         add
           (Diagnostic.warning ~pass:resource_pass_name ~code:"RF-BUILDCOL"
              ~hint:"the build side must deliver the filter's key column \
                     (the dispatcher will skip installing it)"
              ~node_id ~path
              (Fmt.str "%s filter key %s is not in the build-side schema"
                 what rf_build_col));
       (* Lifetime balance: a filter installs when the build side finishes
          and must retire when the probe side of the same unit has run.
          That holds iff every site is a probe-side scan owning the probed
          column — a site elsewhere (or nowhere) would hold its bitmap
          pages past the unit's decision point. *)
       let legal = filter_sites probe ~col:rf_probe_col in
       if rf_sites = [] then
         add
           (Diagnostic.error ~pass:resource_pass_name ~code:"RF-LIFETIME"
              ~hint:"a filter with no site never probes: drop the annotation"
              ~node_id ~path
              (Fmt.str "%s filter on %s has no probe-side site" what
                 rf_probe_col))
       else
         List.iter
           (fun site ->
              if not (List.mem site legal) then
                add
                  (Diagnostic.error ~pass:resource_pass_name ~code:"RF-LIFETIME"
                     ~hint:"filter sites must be probe-side scans owning \
                            the probed column, so the lease retires with \
                            the unit (filter_pages_held returns to 0)"
                     ~node_id ~path
                     (Fmt.str
                        "%s filter site %s is not a probe-side scan owning \
                         %s" what site rf_probe_col)))
           rf_sites;
       (* Satellite: a sub-row build estimate is a statistics failure; the
          optimizer clamps it, but flag the symptom at its source. *)
       if build.Plan.est.Plan.rows < 1.0 then
         add
           (Diagnostic.warning ~pass:resource_pass_name ~code:"RF-DEGEN"
              ~hint:"clamp degenerate build-side estimates to at least one \
                     row before sizing the filter"
              ~node_id ~path
              (Fmt.str
                 "%s filter on %s is sized from a degenerate build estimate \
                  (%g rows)"
                 what rf_probe_col build.Plan.est.Plan.rows)))
    rfs

let resource_run ctx plan =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let granted = ref 0 in
  let min_total = ref 0 in
  let consumers = ref 0 in
  iter_with_ancestors
    (fun ~ancestors (p : Plan.t) ->
       let node_id = p.Plan.id in
       let path = path_of ~ancestors p in
       if Plan.is_memory_consumer p then begin
         incr consumers;
         granted := !granted + max 0 p.Plan.mem;
         min_total := !min_total + max 1 p.Plan.min_mem;
         if p.Plan.min_mem > p.Plan.max_mem then
           add
             (Diagnostic.error ~pass:resource_pass_name ~code:"MEM-RANGE"
                ~hint:"an operator's minimum demand cannot exceed its maximum"
                ~node_id ~path
                (Fmt.str "memory demand min %d > max %d pages" p.Plan.min_mem
                   p.Plan.max_mem));
         if p.Plan.mem < 0 then
           add
             (Diagnostic.error ~pass:resource_pass_name ~code:"MEM-RANGE"
                ~hint:"a grant can never be negative" ~node_id ~path
                (Fmt.str "granted %d pages outside demand [%d, %d]"
                   p.Plan.mem p.Plan.min_mem p.Plan.max_mem));
         (* Over-grants are wasteful but safe (the operator ignores the
            excess) and arise legitimately mid-query: a decision-point
            recost can shrink an operator's declared demand below a grant
            made under the earlier, larger estimate. *)
         if p.Plan.mem > p.Plan.max_mem then
           add
             (Diagnostic.warning ~pass:resource_pass_name ~code:"MEM-RANGE"
                ~hint:"a grant above the maximum demand wastes budget"
                ~node_id ~path
                (Fmt.str "granted %d pages above the maximum demand %d"
                   p.Plan.mem p.Plan.max_mem));
         if p.Plan.mem > 0 && p.Plan.mem < p.Plan.min_mem then
           add
             (Diagnostic.warning ~pass:resource_pass_name ~code:"MEM-RANGE"
                ~hint:"a grant below the minimum demand forces extra passes"
                ~node_id ~path
                (Fmt.str "granted %d pages below the minimum demand %d"
                   p.Plan.mem p.Plan.min_mem))
       end;
       match p.Plan.node with
       | Plan.Hash_join { build; probe; rf; _ } ->
         check_rf ~node_id ~path ~what:"hash-join" ~build ~probe rf add
       | Plan.Merge_join { left; right; rf; _ } ->
         check_rf ~node_id ~path ~what:"merge-join" ~build:left ~probe:right
           rf add
       | _ -> ())
    plan;
  (* The allocator may legally grant every operator its minimum even when
     the budget cannot cover them all, so the budget bound is
     max(budget, sum of minimums). *)
  (match ctx.budget_pages with
   | Some budget when !granted > 0 ->
     let bound = max budget !min_total in
     if !granted > bound then
       add
         (Diagnostic.error ~pass:resource_pass_name ~code:"MEM-BUDGET"
            ~hint:"total grants must fit the memory-manager budget"
            ~node_id:plan.Plan.id
            ~path:[ Plan.op_name plan ]
            (Fmt.str
               "%d pages granted across %d consumers exceed the budget of \
                %d pages"
               !granted !consumers budget))
   | _ -> ());
  List.rev !diags

let resource_pass = { pass_name = resource_pass_name; run = resource_run }

(* ------------------------------------------------------------------ *)
(* Pass 5: parallel-shape checks.  A plan's [dop] annotations are what
   the dispatcher partitions data by and what the cost model charged
   exchanges for; a degree the executor cannot honour would silently run
   serially while the estimates assumed otherwise. *)

let parallel_pass_name = "parallel"

(* Operators the executor has an exchange implementation for. *)
let exchangeable (p : Plan.t) =
  match p.Plan.node with
  | Plan.Seq_scan _ | Plan.Sort _ -> true
  | Plan.Hash_join { keys; _ } -> keys <> []
  | Plan.Aggregate { group_by; pre_sorted; _ } ->
    (not pre_sorted) && group_by <> []
  | _ -> false

let parallel_run _ctx plan =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  iter_with_ancestors
    (fun ~ancestors (p : Plan.t) ->
       let node_id = p.Plan.id in
       let path = path_of ~ancestors p in
       if p.Plan.dop < 1 then
         add
           (Diagnostic.error ~pass:parallel_pass_name ~code:"PAR-DOP"
              ~hint:"the degree of parallelism is at least 1 (serial)"
              ~node_id ~path
              (Fmt.str "degree of parallelism %d < 1" p.Plan.dop));
       if p.Plan.dop > 1 && not (exchangeable p) then
         add
           (Diagnostic.error ~pass:parallel_pass_name ~code:"PAR-OP"
              ~hint:"only striped scans, keyed hash joins, grouped hash \
                     aggregation and sorts have exchange operators; \
                     everything else must stay serial"
              ~node_id ~path
              (Fmt.str "%s cannot run with dop=%d" (Plan.op_name p)
                 p.Plan.dop));
       (* Each worker receives an even share of the memory grant; a share
          too small to operate forces per-worker spill passes the parallel
          cost estimate never priced. *)
       if p.Plan.dop > 1 && Plan.is_memory_consumer p && p.Plan.mem > 0
       && p.Plan.mem / p.Plan.dop < 2
       then
         add
           (Diagnostic.warning ~pass:parallel_pass_name ~code:"PAR-MEM"
              ~hint:"grant at least two pages per worker or lower the \
                     degree: sub-minimal slices spill on every worker"
              ~node_id ~path
              (Fmt.str
                 "granted %d pages split %d ways leaves workers under two \
                  pages each"
                 p.Plan.mem p.Plan.dop)))
    plan;
  List.rev !diags

let parallel_pass = { pass_name = parallel_pass_name; run = parallel_run }

(* ------------------------------------------------------------------ *)
(* Pass 6: cardinality-bound abstract interpretation (see {!Bounds}).
   Estimates are opinions; the intervals are proofs — an estimate outside
   its provable interval is working from stale or degraded statistics, a
   worst-case memory demand over the broker budget can spill no matter how
   the grants fall, and a provably-dominated access path can never win.
   All three are warnings: degraded statistics are an operating condition
   this engine is explicitly designed to survive, not a malformed plan.
   The hard-error counterpart (BND-OBSERVED) lives in the dispatcher's
   sanitizer, where an observed cardinality outside its interval falsifies
   the analysis itself. *)

let bounds_pass_name = "bounds"

(* Tolerances mirror [exceeds]: a row of absolute slack plus one part per
   million, so float noise never trips the comparison. *)
let bnd_outside (iv : Bounds.interval) est =
  est > (iv.Bounds.hi *. 1.000001) +. 1.0
  || est < (iv.Bounds.lo *. 0.999999) -. 1.0

(* Worst-case working-memory demand of a consumer, from the provable upper
   bound on its build/sort/group input — [None] when the input is unbounded
   or the operator adapts gracefully (block NL runs in one page). *)
let worst_case_mem b (p : Plan.t) =
  let hi_pages (q : Plan.t) =
    match Bounds.pages b q.Plan.id with
    | Some iv when Float.is_finite iv.Bounds.hi -> Some iv.Bounds.hi
    | _ -> None
  in
  match p.Plan.node with
  | Plan.Hash_join { build; _ } ->
    Option.map
      (fun bp -> snd (Mqr_opt.Cost_model.hash_join_mem ~build_pages:bp))
      (hi_pages build)
  | Plan.Sort { input; _ } ->
    Option.map
      (fun dp -> snd (Mqr_opt.Cost_model.sort_mem ~data_pages:dp))
      (hi_pages input)
  | Plan.Aggregate { pre_sorted = false; group_by = _ :: _; _ } ->
    Option.map
      (fun gp -> snd (Mqr_opt.Cost_model.aggregate_mem ~group_pages:gp))
      (hi_pages p)
  | Plan.Merge_join { left; right; left_sorted; right_sorted; _ }
    when not (left_sorted && right_sorted) ->
    (match (hi_pages left, hi_pages right) with
     | Some l, Some r ->
       Some (snd (Mqr_opt.Cost_model.merge_join_mem ~left_pages:l ~right_pages:r))
     | _ -> None)
  | _ -> None

let bounds_run ctx plan =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let b = Bounds.analyze ctx.bounds plan in
  iter_with_ancestors
    (fun ~ancestors (p : Plan.t) ->
       let node_id = p.Plan.id in
       let path = path_of ~ancestors p in
       (match Bounds.rows b node_id with
        | Some iv when bnd_outside iv p.Plan.est.Plan.rows ->
          add
            (Diagnostic.warning ~pass:bounds_pass_name ~code:"BND-EST"
               ~hint:"the optimizer is working from stale or degraded \
                      statistics; re-run ANALYZE"
               ~node_id ~path
               (Fmt.str "estimated %.0f rows outside the provable interval %a"
                  p.Plan.est.Plan.rows Bounds.pp_interval iv))
        | _ -> ());
       (match (ctx.budget_pages, worst_case_mem b p) with
        | Some budget, Some need when need > budget ->
          add
            (Diagnostic.warning ~pass:bounds_pass_name ~code:"BND-MEM"
               ~hint:"even a full-budget grant can spill; expect extra \
                      passes at this operator"
               ~node_id ~path
               (Fmt.str
                  "worst-case memory demand of %d pages exceeds the broker \
                   budget of %d pages"
                  need budget))
        | _ -> ());
       (match Bounds.dominated_scan ctx.bounds ~model:Sim_clock.default_model p with
        | Some msg ->
          add
            (Diagnostic.warning ~pass:bounds_pass_name ~code:"BND-DOM"
               ~hint:"the access path is provably beaten at any cardinality \
                      inside the bounds"
               ~node_id ~path msg)
        | None -> ()))
    plan;
  List.rev !diags

let bounds_pass = { pass_name = bounds_pass_name; run = bounds_run }

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)

let all_passes =
  [ schema_pass; annotation_pass; scia_pass; resource_pass; parallel_pass;
    bounds_pass ]

let verify ?(passes = all_passes) ctx plan =
  List.stable_sort Diagnostic.compare
    (List.concat_map (fun pass -> pass.run ctx plan) passes)

exception Rejected of { what : string; diags : Diagnostic.t list }

let check_exn ?passes ~what ctx plan =
  let ds = verify ?passes ctx plan in
  (match Diagnostic.errors ds with
   | [] -> ()
   | errs -> raise (Rejected { what; diags = errs }));
  ds

(* Dynamic service-level lifetime check: the per-tenant sum of transient
   pages (bloom bitmaps + worker pool slices, over all the tenant's
   in-flight runs) must be zero whenever the scheduler observes those
   runs from outside a step — the multi-tenant generalization of
   RF-LIFETIME / PAR-LIFETIME. *)
let reject_tenant_pages ~what ~tenant ~pages =
  raise
    (Rejected
       { what;
         diags =
           [ Diagnostic.error ~pass:"service" ~code:"TEN-LIFETIME"
               ~hint:
                 "transient leases must retire before the scheduler observes \
                  the run"
               ~node_id:0 ~path:[ "service" ]
               (Printf.sprintf
                  "tenant %s holds %d transient pages at a decision point"
                  tenant pages) ] })

let () =
  Printexc.register_printer (function
    | Rejected { what; diags } ->
      Some
        (Fmt.str "Plan verification failed (%s):@.%a" what
           Diagnostic.pp_report diags)
    | _ -> None)
