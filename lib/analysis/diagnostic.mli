(** Structured findings of the plan verifier.

    Every analysis pass reports through this type: a stable
    machine-readable code (tests match on it), a severity, the plan node
    the finding is anchored to together with the operator path from the
    root, a human message, and — where the pass knows one — a fixit
    hint. *)

type severity =
  | Error    (** the plan must not execute *)
  | Warning  (** suspicious but runnable *)
  | Info

type t = {
  code : string;       (** stable code, e.g. ["SCH-COLREF"] *)
  severity : severity;
  pass_name : string;  (** the pass that produced the finding *)
  node_id : int;       (** anchoring plan node *)
  path : string list;  (** operator names, root first, down to the node *)
  message : string;
  hint : string option;  (** suggested fix *)
}

val make :
  severity -> pass:string -> code:string -> ?hint:string -> node_id:int ->
  path:string list -> string -> t

val error :
  pass:string -> code:string -> ?hint:string -> node_id:int ->
  path:string list -> string -> t

val warning :
  pass:string -> code:string -> ?hint:string -> node_id:int ->
  path:string list -> string -> t

val info :
  pass:string -> code:string -> ?hint:string -> node_id:int ->
  path:string list -> string -> t

val is_error : t -> bool

(** Only the [Error]-severity findings. *)
val errors : t list -> t list

val warnings : t list -> t list

val severity_to_string : severity -> string

(** Orders by severity (errors first), then node id, then code. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Multi-line rendering of a finding list plus a one-line tally. *)
val pp_report : Format.formatter -> t list -> unit
