type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  pass_name : string;
  node_id : int;
  path : string list;
  message : string;
  hint : string option;
}

let make severity ~pass ~code ?hint ~node_id ~path message =
  { code; severity; pass_name = pass; node_id; path; message; hint }

let error ~pass ~code ?hint ~node_id ~path message =
  make Error ~pass ~code ?hint ~node_id ~path message

let warning ~pass ~code ?hint ~node_id ~path message =
  make Warning ~pass ~code ?hint ~node_id ~path message

let info ~pass ~code ?hint ~node_id ~path message =
  make Info ~pass ~code ?hint ~node_id ~path message

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 ->
    (match Stdlib.compare a.node_id b.node_id with
     | 0 -> Stdlib.compare a.code b.code
     | c -> c)
  | c -> c

let pp fmt d =
  Fmt.pf fmt "%s[%s] at #%d %s: %s"
    (severity_to_string d.severity) d.code d.node_id
    (String.concat " > " d.path)
    d.message;
  match d.hint with
  | Some h -> Fmt.pf fmt " (fix: %s)" h
  | None -> ()

let to_string d = Fmt.str "%a" pp d

let pp_report fmt ds =
  let ds = List.stable_sort compare ds in
  List.iter (fun d -> Fmt.pf fmt "%a@." pp d) ds;
  Fmt.pf fmt "%d error(s), %d warning(s)@."
    (List.length (errors ds))
    (List.length (warnings ds))
