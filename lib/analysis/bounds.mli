(** Cardinality-bound abstract interpretation over annotated plans.

    Propagates *provable* row-count and page intervals [[lo, hi]] bottom-up
    over a {!Mqr_opt.Plan.t}, anchored on ground truth the engine can
    actually prove rather than on the catalog's believed cardinalities:

    - scans start from the heap file's true tuple count; histogram buckets,
      min/max windows and string dictionaries give hard bounds for
      range/equality predicates (inclusion-exclusion combines conjuncts);
    - proven-unique columns ([distinct = rows] under fresh statistics — the
      per-column [is_key] flag alone is {e not} trusted, composite keys set
      it on non-unique columns) and per-bucket frequency caps bound join
      fan-out and group counts; a unique {e dense} integer key column whose
      probe side provably stays inside its [min, max] window makes a
      foreign-key join exact (every probe row matches exactly one build
      row);
    - everything else is capped by the cross product.

    Widening is explicit: any stale, dropped or update-invalidated
    statistic widens the affected interval up to [[0, n]] (or [[0, +inf)]
    past a join), and tables for which bucket/distinct counts are not
    trustworthy — temp tables whose statistics were inherited from a
    sample-based collector — keep only their min/max window reasoning.
    Plans carrying runtime-filter annotations have the lower bound of every
    prunable leaf widened to 0, since filters may remove rows before they
    are counted.

    Soundness contract: for every node, the number of rows the executor
    actually produces for that node lies within the node's interval.  The
    sanitizer enforces this at run time (BND-OBSERVED). *)

type interval = { lo : float; hi : float }

val pp_interval : Format.formatter -> interval -> unit

(** Membership with a half-row tolerance for float rounding. *)
val contains : interval -> float -> bool

(** Analysis environment: ground truth per table.  [count_trusted] says
    whether a table's bucket/distinct counts describe its current contents
    exactly (default: yes); pass [false] for temp tables whose statistics
    were inherited from a reservoir-sample collector — their min/max
    windows stay usable (observed exactly over every row) but their counts
    do not. *)
type env

val env : ?count_trusted:(string -> bool) -> Mqr_catalog.Catalog.t -> env

(** Result of one analysis run, keyed by plan-node id. *)
type t

val analyze : env -> Mqr_opt.Plan.t -> t

(** Provable row-count interval of a node ([None] for unknown ids). *)
val rows : t -> int -> interval option

(** Provable size in pages of a node's output (derived from the row
    interval and the annotated average tuple width). *)
val pages : t -> int -> interval option

(** Provable interval on the plan's total cost under [model]'s rates,
    relative to the engine's own serial cost formulas ({!Mqr_opt.Cost_model}
    evaluated at the interval endpoints): the upper bound assumes the
    minimum memory grant (worst-case spilling) and adds parallel
    startup/exchange overhead when [max_dop > 1]; the lower bound assumes
    an uncontended grant and perfectly even [max_dop]-way partitioning.
    Used by the bound-checked re-optimization mode: switch only when the
    candidate's upper bound beats the current plan's lower bound. *)
val cost_interval :
  env -> model:Mqr_storage.Sim_clock.model -> ?max_dop:int ->
  Mqr_opt.Plan.t -> interval

(** Provably-dominated access-path choice: [Some message] when a serial
    sequential scan is provably beaten by an available index path (its
    worst-case cost under [model] is below the sequential scan's exact
    cost), or when an index scan's provable minimum number of matches makes
    it cost more than scanning the table outright. *)
val dominated_scan :
  env -> model:Mqr_storage.Sim_clock.model -> Mqr_opt.Plan.t -> string option
