open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Column_stats = Mqr_catalog.Column_stats
module Histogram = Mqr_stats.Histogram
module Expr = Mqr_expr.Expr
module Plan = Mqr_opt.Plan
module Cost_model = Mqr_opt.Cost_model
module Collector = Mqr_exec.Collector

(* ------------------------------------------------------------------ *)
(* Intervals.                                                          *)

type interval = { lo : float; hi : float }

let inf = Float.infinity
let point x = { lo = x; hi = x }

(* "Anything from nothing to the whole input". *)
let top n = { lo = 0.0; hi = n }

(* Past an unresolvable table nothing at all is provable. *)
let unknown = { lo = 0.0; hi = inf }

let pp_interval ppf { lo; hi } =
  if hi = inf then Format.fprintf ppf "[%.0f, +inf)" lo
  else Format.fprintf ppf "[%.0f, %.0f]" lo hi

let contains { lo; hi } x = x >= lo -. 0.5 && x <= hi +. 0.5

(* Product with the 0 * inf = 0 convention (an empty input stays empty no
   matter how unbounded the other side is). *)
let mul a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

(* Rows passing the conjunction of two conditions, each known to pass
   within [a] / [b] rows of the same [n]-row input (inclusion-exclusion
   on the lower bound). *)
let inter_conj n a b =
  { lo = Float.max 0.0 (a.lo +. b.lo -. n); hi = Float.min a.hi b.hi }

(* Upper bound on rows a predicate accepts out of a population of at most
   [hi] rows whose joint per-value frequency over a pinned column set is
   bounded by [joint]: every equality conjunct pinning a column to a
   constant holds the survivors to the joint frequency of all pinned
   columns (the specific constant can only match fewer rows than the
   most frequent value), and a disjunction passes at most the sum of its
   branches.  Conjuncts of any other shape are ignored — they only
   filter further. *)
let pred_count_hi ~hi ~joint pred =
  let rec eq_cols e =
    match e with
    | Expr.And (a, b) -> eq_cols a @ eq_cols b
    | _ ->
      (match Expr.shape_of e with
       | Expr.S_col_cmp_const (c, Expr.Eq, _) -> [ c ]
       | _ -> [])
  in
  let rec count e =
    match e with
    | Expr.Or (a, b) -> Float.min hi (count a +. count b)
    | _ -> (match eq_cols e with [] -> hi | cols -> Float.min hi (joint cols))
  in
  count pred

(* ------------------------------------------------------------------ *)
(* Environment: ground truth per table.                                *)

type col_info = {
  stats : Column_stats.t;
  fresh : bool;
      (* the recorded min/max window, dictionary and histogram layout
         describe (a superset of) the column's current values *)
  counts : bool;
      (* bucket/distinct counts describe the current contents exactly *)
  unique : bool;  (* proven: fresh distinct count = true row count *)
  dense : bool;   (* unique integer key covering every value in [min, max] *)
  no_nulls : bool;
}

type table_info = {
  t_rows : float;   (* true heap tuple count, never the believed one *)
  t_pages : float;
  col : string -> col_info option;  (* by bare column name *)
  has_index : string -> bool;
}

type env = { table : string -> table_info option }

let env ?(count_trusted = fun _ -> true) catalog =
  let table name =
    match Catalog.find catalog name with
    | None -> None
    | Some tbl ->
      let t_rows = float_of_int (Heap_file.tuple_count tbl.Catalog.heap) in
      let t_pages = float_of_int (Heap_file.page_count tbl.Catalog.heap) in
      let unchanged = tbl.Catalog.updates_since_analyze = 0 in
      let trusted = count_trusted name in
      let col cname =
        match Catalog.column_stats tbl cname with
        | None -> None
        | Some st ->
          let fresh = unchanged && not st.Column_stats.stale in
          let counts =
            fresh && trusted
            && (match st.Column_stats.histogram with
                | Some h -> Histogram.total_rows h <= t_rows +. 0.5
                | None -> true)
          in
          let no_nulls =
            counts
            && (match st.Column_stats.histogram with
                | Some h -> Float.abs (Histogram.total_rows h -. t_rows) <= 0.5
                | None -> false)
          in
          (* The per-column is_key flag is NOT trusted: composite declared
             keys set it on every member column, which is individually
             non-unique.  Uniqueness must be proven from the counts. *)
          let unique =
            counts
            && (match st.Column_stats.distinct with
                | Some d -> d >= t_rows -. 0.5
                | None -> false)
          in
          let dense =
            unique && no_nulls
            && (match (st.Column_stats.min_v, st.Column_stats.max_v) with
                | Some (Value.Int a), Some (Value.Int b)
                | Some (Value.Date a), Some (Value.Date b) ->
                  Float.abs (float_of_int (b - a + 1) -. t_rows) <= 0.5
                | _ -> false)
          in
          Some { stats = st; fresh; counts; unique; dense; no_nulls }
      in
      let has_index cname =
        Option.is_some (Catalog.find_index tbl ~column:cname)
      in
      Some { t_rows; t_pages; col; has_index }
  in
  { table }

(* ------------------------------------------------------------------ *)
(* Value / domain helpers.                                             *)

let bare col =
  match String.rindex_opt col '.' with
  | Some i -> String.sub col (i + 1) (String.length col - i - 1)
  | None -> col

let vcmp a b =
  match Value.compare a b with
  | c -> Some c
  | exception Invalid_argument _ -> None

(* Insertion position of a string absent from a sorted dictionary: the
   half-ordinal below its rank.  Exact, since every occurring value sits
   on an integer ordinal. *)
let dict_pos dict s =
  match List.assoc_opt s dict with
  | Some x -> x
  | None ->
    let r =
      List.fold_left
        (fun acc (k, (_ : float)) -> if String.compare k s < 0 then acc + 1 else acc)
        0 dict
    in
    float_of_int r -. 0.5

(* Map a constant onto a column's histogram domain without falling into
   the cross-type trap (an Int constant against a dictionary-backed string
   column must not be read as an ordinal). *)
let domain_pos (st : Column_stats.t) v =
  match (v, st.Column_stats.dict) with
  | Value.Null, _ -> `Unknown
  | Value.String s, Some d ->
    (match List.assoc_opt s d with
     | Some x -> `Pos x
     | None -> `Miss (dict_pos d s))
  | Value.String _, None -> `Unknown
  | _, Some _ -> `Unknown
  | v, None ->
    (match Value.to_float v with
     | x -> `Pos x
     | exception Invalid_argument _ -> `Unknown)

(* ------------------------------------------------------------------ *)
(* Predicate bounds over one table's scan.                             *)

(* Rows of an [n]-row scan of [ti] that can satisfy [col = v]. *)
let eq_interval ti n col v =
  match ti.col col with
  | None -> top n
  | Some info ->
    if not info.fresh then top n
    else
      let st = info.stats in
      let lt_min =
        match st.Column_stats.min_v with
        | Some mn -> (match vcmp v mn with Some c -> c < 0 | None -> false)
        | None -> false
      in
      let gt_max =
        match st.Column_stats.max_v with
        | Some mx -> (match vcmp v mx with Some c -> c > 0 | None -> false)
        | None -> false
      in
      if lt_min || gt_max then point 0.0
      else if not info.counts then top n
      else
        let cap u = if info.unique then Float.min 1.0 u else u in
        (match domain_pos st v with
         | `Miss _ -> point 0.0  (* exact dictionary: the value never occurs *)
         | `Unknown -> { lo = 0.0; hi = cap n }
         | `Pos x ->
           (match st.Column_stats.histogram with
            | None -> { lo = 0.0; hi = cap n }
            | Some h ->
              (match
                 List.find_opt
                   (fun (b : Histogram.bucket) -> b.Histogram.lo <= x && x <= b.Histogram.hi)
                   (Histogram.buckets h)
               with
               | None -> point 0.0  (* exact buckets cover every value *)
               | Some b ->
                 if b.Histogram.lo = b.Histogram.hi then point b.Histogram.rows
                 else
                   { lo = 0.0;
                     hi =
                       cap
                         (Float.max 0.0
                            (b.Histogram.rows -. b.Histogram.distinct +. 1.0)) })))

(* Rows that can satisfy [blo <= col <= bhi] (either bound optional, each
   (value, inclusive?)). *)
let range_interval ti n col ~blo ~bhi =
  match ti.col col with
  | None -> top n
  | Some info ->
    if not info.fresh then top n
    else
      let st = info.stats in
      let empty_by_window =
        (match (bhi, st.Column_stats.min_v) with
         | Some (v, incl), Some mn ->
           (match vcmp v mn with
            | Some c -> c < 0 || (c = 0 && not incl)
            | None -> false)
         | _ -> false)
        || (match (blo, st.Column_stats.max_v) with
            | Some (v, incl), Some mx ->
              (match vcmp v mx with
               | Some c -> c > 0 || (c = 0 && not incl)
               | None -> false)
            | _ -> false)
      in
      if empty_by_window then point 0.0
      else if not info.counts then top n
      else
        match st.Column_stats.histogram with
        | None -> top n
        | Some h ->
          (* Map each bound onto the domain; an unmappable bound is treated
             as absent (widening the range: fine for the upper bound) and
             forfeits the lower bound. *)
          let map = function
            | None -> (None, true)
            | Some (v, incl) ->
              (match domain_pos st v with
               | `Pos x -> (Some (x, incl), true)
               | `Miss x -> (Some (x, true), true)
               | `Unknown -> (None, false))
          in
          let dlo, lo_ok = map blo in
          let dhi, hi_ok = map bhi in
          let bucket_intersects (b : Histogram.bucket) =
            (match dlo with
             | None -> true
             | Some (x, incl) ->
               b.Histogram.hi > x || (b.Histogram.hi = x && incl))
            && (match dhi with
                | None -> true
                | Some (x, incl) ->
                  b.Histogram.lo < x || (b.Histogram.lo = x && incl))
          in
          let bucket_contained (b : Histogram.bucket) =
            (match dlo with
             | None -> true
             | Some (x, incl) ->
               b.Histogram.lo > x || (b.Histogram.lo = x && incl))
            && (match dhi with
                | None -> true
                | Some (x, incl) ->
                  b.Histogram.hi < x || (b.Histogram.hi = x && incl))
          in
          let hi_rows =
            List.fold_left
              (fun acc b -> if bucket_intersects b then acc +. b.Histogram.rows else acc)
              0.0 (Histogram.buckets h)
          in
          let lo_rows =
            if lo_ok && hi_ok then
              List.fold_left
                (fun acc b -> if bucket_contained b then acc +. b.Histogram.rows else acc)
                0.0 (Histogram.buckets h)
            else 0.0
          in
          let hi_rows = Float.min n hi_rows in
          { lo = Float.min lo_rows hi_rows; hi = hi_rows }

(* Rows that can satisfy [col <> v]. *)
let ne_interval ti n col v =
  match ti.col col with
  | None -> top n
  | Some info ->
    (match (info.counts, info.stats.Column_stats.histogram) with
     | true, Some h ->
       let nn = Histogram.total_rows h in  (* exact non-null count *)
       let e = eq_interval ti n col v in
       { lo = Float.max 0.0 (nn -. e.hi); hi = Float.min n (Float.max 0.0 (nn -. e.lo)) }
     | _ -> top n)

let conjunct_interval ti n c =
  match Expr.shape_of c with
  | Expr.S_col_cmp_const (col, op, v) ->
    if Value.is_null v then point 0.0  (* null comparisons pass nothing *)
    else
      let col = bare col in
      (match op with
       | Expr.Eq -> eq_interval ti n col v
       | Expr.Ne -> ne_interval ti n col v
       | Expr.Lt -> range_interval ti n col ~blo:None ~bhi:(Some (v, false))
       | Expr.Le -> range_interval ti n col ~blo:None ~bhi:(Some (v, true))
       | Expr.Gt -> range_interval ti n col ~blo:(Some (v, false)) ~bhi:None
       | Expr.Ge -> range_interval ti n col ~blo:(Some (v, true)) ~bhi:None)
  | Expr.S_col_between (col, vlo, vhi) ->
    if Value.is_null vlo || Value.is_null vhi then point 0.0
    else
      range_interval ti n (bare col) ~blo:(Some (vlo, true)) ~bhi:(Some (vhi, true))
  | Expr.S_col_eq_col _ | Expr.S_col_cmp_col _ | Expr.S_udf _ | Expr.S_other ->
    top n

(* Conjunction over an [n]-row input: the upper bound is the tightest
   conjunct, the lower bound subtracts every conjunct's worst-case miss
   count (inclusion-exclusion). *)
let conjunction ti n cs =
  let ivs = List.map (conjunct_interval ti n) cs in
  let hi = List.fold_left (fun acc i -> Float.min acc i.hi) n ivs in
  let deficit = List.fold_left (fun acc i -> acc +. (n -. i.lo)) 0.0 ivs in
  { lo = Float.max 0.0 (Float.min (n -. deficit) hi); hi = Float.max 0.0 hi }

let pred_interval ti n = function
  | None -> point n
  | Some pred -> conjunction ti n (Expr.conjuncts pred)

(* ------------------------------------------------------------------ *)
(* Plan analysis.                                                      *)

type node_bounds = { b_rows : interval; b_pages : interval }
type t = { tbl : (int, node_bounds) Hashtbl.t }

let rows t id = Option.map (fun nb -> nb.b_rows) (Hashtbl.find_opt t.tbl id)
let pages t id = Option.map (fun nb -> nb.b_pages) (Hashtbl.find_opt t.tbl id)

let width_of (p : Plan.t) =
  let w = p.Plan.est.Plan.width in
  if Float.is_finite w && w > 0.0 then w else 1.0

let pages_iv r w =
  { lo = Cost_model.pages ~rows:r.lo ~width:w;
    hi = (if Float.is_finite r.hi then Cost_model.pages ~rows:r.hi ~width:w else inf) }

let resolves schema col =
  match Schema.index_of schema col with
  | (_ : int) -> true
  | exception Not_found -> false
  | exception Schema.Ambiguous _ -> true

(* [min, max] of src provably inside [min, max] of cover. *)
let within (si : Column_stats.t) (ci : Column_stats.t) =
  match (si.Column_stats.min_v, si.Column_stats.max_v,
         ci.Column_stats.min_v, ci.Column_stats.max_v)
  with
  | Some smn, Some smx, Some cmn, Some cmx ->
    (match (vcmp smn cmn, vcmp smx cmx) with
     | Some a, Some b -> a >= 0 && b <= 0
     | _ -> false)
  | _ -> false

let analyze env (plan : Plan.t) =
  let tbl = Hashtbl.create 64 in
  let stored (p : Plan.t) = Hashtbl.find tbl p.Plan.id in
  (* Runtime-filter annotations anywhere in the plan widen the lower bound
     of every prunable leaf to 0: leaves record post-filter counts. *)
  let rf_cols =
    Plan.fold
      (fun acc (p : Plan.t) ->
        match p.Plan.node with
        | Plan.Hash_join { rf; _ } | Plan.Merge_join { rf; _ } ->
          List.fold_left (fun a (r : Plan.rf) -> r.Plan.rf_probe_col :: a) acc rf
        | _ -> acc)
      [] plan
  in
  let rf_pruned (p : Plan.t) =
    rf_cols <> [] && List.exists (fun c -> resolves p.Plan.schema c) rf_cols
  in
  (* Does this subtree deliver every row of a base table (row-preserving
     wrappers only), safe from runtime-filter pruning? *)
  let rec full_base_scan (p : Plan.t) =
    match p.Plan.node with
    | Plan.Seq_scan { table; alias = _; filter = None } ->
      if rf_pruned p then None else env.table table
    | Plan.Collect { input; _ } | Plan.Sort { input; _ } | Plan.Project { input; _ } ->
      full_base_scan input
    | _ -> None
  in
  (* Statistics of the leaf column feeding [col] (qualified names resolve
     at exactly one leaf; bail out when ambiguous across leaves). *)
  let src_col_info (p : Plan.t) col =
    let hits = ref [] in
    let rec walk (q : Plan.t) =
      match q.Plan.node with
      | Plan.Seq_scan { table; _ } | Plan.Index_scan { table; _ } ->
        if resolves q.Plan.schema col then hits := table :: !hits
      | Plan.Materialized { name; _ } ->
        if resolves q.Plan.schema col then hits := name :: !hits
      | _ -> List.iter walk (Plan.children q)
    in
    walk p;
    match !hits with
    | [ table ] -> Option.bind (env.table table) (fun ti -> ti.col (bare col))
    | _ -> None
  in
  let rec go (p : Plan.t) : interval =
    let r = compute p in
    let r =
      match p.Plan.node with
      | (Plan.Seq_scan _ | Plan.Index_scan _ | Plan.Materialized _ | Plan.Collect _)
        when rf_pruned p ->
        { r with lo = 0.0 }
      | _ -> r
    in
    Hashtbl.replace tbl p.Plan.id { b_rows = r; b_pages = pages_iv r (width_of p) };
    r
  and compute (p : Plan.t) : interval =
    match p.Plan.node with
    | Plan.Seq_scan { table; alias = _; filter } ->
      (match env.table table with
       | None -> unknown
       | Some ti -> pred_interval ti ti.t_rows filter)
    | Plan.Index_scan { table; alias = _; index_col; lo; hi; filter } ->
      (match env.table table with
       | None -> unknown
       | Some ti ->
         (* The residual filter includes the bounds in optimizer-built
            plans; intersecting with the bound window separately also
            covers hand-built plans carrying bounds alone. *)
         let bound_iv = range_interval ti ti.t_rows (bare index_col) ~blo:lo ~bhi:hi in
         let filter_iv = pred_interval ti ti.t_rows filter in
         inter_conj ti.t_rows bound_iv filter_iv)
    | Plan.Materialized { name; covers = _; on_disk = _ } ->
      (match env.table name with
       | None -> unknown
       | Some ti -> point ti.t_rows)
    | Plan.Hash_join { build; probe; keys; extra; rf = _ } ->
      let b = go build in
      let pr = go probe in
      (* hash keys are (probe column, build column); normalize to
         (left = build, right = probe) pairs *)
      join_interval ~left:build ~left_iv:b ~right:probe ~right_iv:pr
        ~keys:(List.map (fun (pc, bc) -> (bc, pc)) keys)
        ~extra
    | Plan.Merge_join
        { left; right; keys; extra; left_sorted = _; right_sorted = _; rf = _ } ->
      let l = go left in
      let r = go right in
      join_interval ~left ~left_iv:l ~right ~right_iv:r ~keys ~extra
    | Plan.Index_nl_join
        { outer; table; alias = _; outer_col; inner_col; inner_filter; extra } ->
      let o = go outer in
      (match env.table table with
       | None -> unknown
       | Some ti ->
         let inner_iv = pred_interval ti ti.t_rows inner_filter in
         let hi =
           Float.min
             (mul o.hi inner_iv.hi)
             (Float.min
                (mul o.hi (col_mult ti (bare inner_col)))
                (mul inner_iv.hi (joint_mult outer [ outer_col ])))
         in
         let exact =
           Option.is_none inner_filter && Option.is_none extra
           && (match ti.col (bare inner_col) with
               | Some ci when ci.dense ->
                 (match src_col_info outer outer_col with
                  | Some si when si.no_nulls && si.fresh -> within si.stats ci.stats
                  | _ -> false)
               | _ -> false)
         in
         if exact then { lo = Float.min o.lo hi; hi = Float.min o.hi hi }
         else { lo = 0.0; hi })
    | Plan.Block_nl_join { outer; inner; pred } ->
      let o = go outer in
      let i = go inner in
      let hi = mul o.hi i.hi in
      (match pred with
       | None -> { lo = mul o.lo i.lo; hi }  (* cross product is exact *)
       | Some p ->
         (* a column on both sides would be ambiguous — drop it (looser) *)
         let joint cols =
           let on_o c = resolves outer.Plan.schema c
           and on_i c = resolves inner.Plan.schema c in
           mul
             (joint_mult outer
                (List.filter (fun c -> on_o c && not (on_i c)) cols))
             (joint_mult inner
                (List.filter (fun c -> on_i c && not (on_o c)) cols))
         in
         { lo = 0.0; hi = pred_count_hi ~hi ~joint p })
    | Plan.Aggregate { input; group_by = []; aggs = _; pre_sorted = _ } ->
      let (_ : interval) = go input in
      point 1.0  (* scalar aggregates emit one row even on empty input *)
    | Plan.Aggregate { input; group_by; aggs = _; pre_sorted = _ } ->
      let i = go input in
      let dprod =
        List.fold_left (fun acc g -> mul acc (distinct_ub input g)) 1.0 group_by
      in
      { lo = (if i.lo >= 1.0 then 1.0 else 0.0); hi = Float.min i.hi dprod }
    | Plan.Filter { input; pred = _ } ->
      let i = go input in
      { lo = 0.0; hi = i.hi }
    | Plan.Sort { input; _ } | Plan.Project { input; _ } | Plan.Collect { input; _ } ->
      go input
    | Plan.Limit { input; n } ->
      let i = go input in
      let fn = float_of_int n in
      { lo = Float.min i.lo fn; hi = Float.min i.hi fn }
  (* Join bounds over normalized (left col, right col) key pairs: the
     upper bound caps the cross product by each side's provable per-value
     frequency; a single-key equi-join against a side that delivers a
     whole base table whose key is unique and dense, with the other side's
     values provably inside that window and never null, is exact — every
     such row matches exactly one cover row (the foreign-key case). *)
  and join_interval ~left ~left_iv ~right ~right_iv ~keys ~extra =
    let cross = mul left_iv.hi right_iv.hi in
    let hi =
      (* pin ALL key columns of a side at once: the joint per-value
         frequency is what one row of the other side can match *)
      let lks = List.map fst keys and rks = List.map snd keys in
      Float.min cross
        (Float.min
           (mul right_iv.hi (joint_mult left lks))
           (mul left_iv.hi (joint_mult right rks)))
    in
    let hi =
      (* an extra (non-equi) join predicate can only filter; its equality
         conjuncts pin columns of the equi-join output *)
      match extra with
      | None -> hi
      | Some p ->
        let on_l c = resolves left.Plan.schema c
        and on_r c = resolves right.Plan.schema c in
        let joint cols =
          let sl = List.filter (fun c -> on_l c && not (on_r c)) cols in
          let sr = List.filter (fun c -> on_r c && not (on_l c)) cols in
          Float.min
            (mul (joint_mult left sl)
               (joint_mult right (List.map snd keys @ sr)))
            (mul (joint_mult right sr)
               (joint_mult left (List.map fst keys @ sl)))
        in
        pred_count_hi ~hi ~joint p
    in
    let covers ~cover:(cnode, ccol) ~src:(snode, scol) =
      match full_base_scan cnode with
      | None -> false
      | Some ti ->
        (match ti.col (bare ccol) with
         | Some ci when ci.dense ->
           (match src_col_info snode scol with
            | Some si when si.no_nulls && si.fresh -> within si.stats ci.stats
            | _ -> false)
         | _ -> false)
    in
    let exact =
      match (extra, keys) with
      | None, [ (lc, rc) ] ->
        if covers ~cover:(left, lc) ~src:(right, rc) then Some right_iv
        else if covers ~cover:(right, rc) ~src:(left, lc) then Some left_iv
        else None
      | _ -> None
    in
    match exact with
    | Some s -> { lo = Float.min s.lo hi; hi = Float.min s.hi hi }
    | None -> { lo = 0.0; hi }
  (* Provable joint per-value frequency: an upper bound on how many rows
     of [p] can simultaneously agree on ONE fixed assignment of values to
     every column in [cols].  The join rule propagates pins across keys —
     once a side is held to an assignment, each of its rows fixes the
     other side's key columns too, so the other side contributes its
     joint frequency with those keys pinned as well.  This is what makes
     the bound sharp on star shapes: independently pinned dimensions
     multiply out to ~1 instead of compounding whole-side fan-outs.
     Ignoring a column that resolves nowhere only loosens the bound, so
     unresolvable pins are safe; [cols = []] degrades to the node's row
     upper bound. *)
  and joint_mult (p : Plan.t) cols =
    let hi = (stored p).b_rows.hi in
    let cols = List.filter (resolves p.Plan.schema) cols in
    let tbl_joint topt cs =
      match topt with
      | None -> inf
      | Some ti ->
        if cs = [] then ti.t_rows
        else
          List.fold_left
            (fun acc c -> Float.min acc (col_mult ti (bare c)))
            inf cs
    in
    let m =
      if cols = [] then hi
      else
        match p.Plan.node with
        | Plan.Seq_scan { table; _ } | Plan.Index_scan { table; _ } ->
          tbl_joint (env.table table) cols
        | Plan.Materialized { name; _ } -> tbl_joint (env.table name) cols
        | Plan.Collect { input; _ } | Plan.Sort { input; _ }
        | Plan.Project { input; _ } | Plan.Limit { input; _ }
        | Plan.Filter { input; _ } ->
          joint_mult input cols
        | Plan.Hash_join { build; probe; keys; _ } ->
          (* keys are (probe column, build column) pairs *)
          let sb = List.filter (resolves build.Plan.schema) cols in
          let sp = List.filter (resolves probe.Plan.schema) cols in
          Float.min
            (mul (joint_mult build sb)
               (joint_mult probe (List.map fst keys @ sp)))
            (mul (joint_mult probe sp)
               (joint_mult build (List.map snd keys @ sb)))
        | Plan.Merge_join { left; right; keys; _ } ->
          let sl = List.filter (resolves left.Plan.schema) cols in
          let sr = List.filter (resolves right.Plan.schema) cols in
          Float.min
            (mul (joint_mult left sl)
               (joint_mult right (List.map snd keys @ sr)))
            (mul (joint_mult right sr)
               (joint_mult left (List.map fst keys @ sl)))
        | Plan.Index_nl_join { outer; table; alias = _; outer_col; inner_col; _ }
          ->
          let so = List.filter (resolves outer.Plan.schema) cols in
          let si =
            List.filter (fun c -> not (resolves outer.Plan.schema c)) cols
          in
          let ti = env.table table in
          Float.min
            (mul (joint_mult outer so) (tbl_joint ti (inner_col :: si)))
            (mul (tbl_joint ti si) (joint_mult outer (outer_col :: so)))
        | Plan.Block_nl_join { outer; inner; _ } ->
          let so = List.filter (resolves outer.Plan.schema) cols in
          let si = List.filter (resolves inner.Plan.schema) cols in
          mul (joint_mult outer so) (joint_mult inner si)
        | Plan.Aggregate { input; group_by; _ } ->
          let sg = List.filter (fun c -> List.mem c group_by) cols in
          if sg = [] then hi
          else
            List.fold_left
              (fun acc g ->
                 if List.mem g sg then acc else mul acc (distinct_ub input g))
              1.0 group_by
    in
    Float.min m hi
  (* Provable per-value frequency of [c] in one table. *)
  and col_mult ti c =
    match ti.col c with
    | None -> inf
    | Some info ->
      if info.unique then 1.0
      else if not info.counts then inf
      else (
        match info.stats.Column_stats.histogram with
        | Some h ->
          List.fold_left
            (fun acc (b : Histogram.bucket) ->
              Float.max acc
                (Float.max 0.0 (b.Histogram.rows -. b.Histogram.distinct +. 1.0)))
            0.0 (Histogram.buckets h)
        | None ->
          (match info.stats.Column_stats.distinct with
           | Some d when d >= 1.0 -> Float.max 1.0 (ti.t_rows -. d +. 1.0)
           | _ -> inf))
  (* Upper bound on the number of distinct values of [col] in the output
     of [p]. *)
  and distinct_ub (p : Plan.t) col =
    let hi = (stored p).b_rows.hi in
    let tbl_distinct topt =
      match topt with
      | None -> inf
      | Some ti ->
        (match ti.col (bare col) with
         | Some info when info.counts ->
           (match info.stats.Column_stats.distinct with Some d -> d | None -> inf)
         | _ -> inf)
    in
    let d =
      match p.Plan.node with
      | Plan.Seq_scan { table; _ } | Plan.Index_scan { table; _ } ->
        tbl_distinct (env.table table)
      | Plan.Materialized { name; _ } -> tbl_distinct (env.table name)
      | Plan.Collect { input; _ } | Plan.Sort { input; _ } | Plan.Project { input; _ }
      | Plan.Limit { input; _ } | Plan.Filter { input; _ } ->
        distinct_ub input col
      | Plan.Hash_join { build; probe; _ } ->
        let on_probe = resolves probe.Plan.schema col in
        let on_build = resolves build.Plan.schema col in
        if on_probe && not on_build then distinct_ub probe col
        else if on_build && not on_probe then distinct_ub build col
        else inf
      | Plan.Merge_join { left; right; _ } ->
        let on_left = resolves left.Plan.schema col in
        let on_right = resolves right.Plan.schema col in
        if on_left && not on_right then distinct_ub left col
        else if on_right && not on_left then distinct_ub right col
        else inf
      | Plan.Index_nl_join { outer; table; _ } ->
        if resolves outer.Plan.schema col then distinct_ub outer col
        else tbl_distinct (env.table table)
      | Plan.Block_nl_join { outer; inner; _ } ->
        if resolves outer.Plan.schema col then distinct_ub outer col
        else distinct_ub inner col
      | Plan.Aggregate { input; group_by; _ } ->
        if List.mem col group_by then distinct_ub input col else inf
    in
    Float.min d hi
  in
  let (_ : interval) = go plan in
  { tbl }

(* ------------------------------------------------------------------ *)
(* Cost intervals.                                                     *)

(* A memory grant large enough that no formula spills. *)
let ample_mem = 1_000_000_000

let cost_interval env ~model ?(max_dop = 1) (plan : Plan.t) =
  let b = analyze env plan in
  let r (p : Plan.t) =
    match Hashtbl.find_opt b.tbl p.Plan.id with
    | Some nb -> nb.b_rows
    | None -> unknown
  in
  let pg (p : Plan.t) =
    match Hashtbl.find_opt b.tbl p.Plan.id with
    | Some nb -> nb.b_pages
    | None -> { lo = 1.0; hi = inf }
  in
  let fin xs f = if List.for_all Float.is_finite xs then f () else inf in
  let rec total (p : Plan.t) =
    let kids = List.map total (Plan.children p) in
    List.fold_left
      (fun acc k -> { lo = acc.lo +. k.lo; hi = acc.hi +. k.hi })
      (op_cost p) kids
  and op_cost (p : Plan.t) =
    let rows_iv = r p in
    let serial =
      match p.Plan.node with
      | Plan.Seq_scan { table; _ } ->
        (match env.table table with
         | Some ti ->
           (* the scan always reads the whole heap: exact *)
           point (Cost_model.seq_scan_ms model ~pages:ti.t_pages ~rows:ti.t_rows)
         | None -> unknown)
      | Plan.Index_scan { table; alias = _; index_col; lo; hi; filter = _ } ->
        (match env.table table with
         | Some ti ->
           (* fetches are driven by the bound matches, not the residual
              output *)
           let m = range_interval ti ti.t_rows (bare index_col) ~blo:lo ~bhi:hi in
           { lo = Cost_model.index_scan_ms model ~match_rows:m.lo ~table_pages:ti.t_pages;
             hi =
               fin [ m.hi ] (fun () ->
                 Cost_model.index_scan_ms model ~match_rows:m.hi ~table_pages:ti.t_pages) }
         | None -> unknown)
      | Plan.Hash_join { build; probe; rf; _ } ->
        let br = r build and bp = pg build in
        let prr = r probe and pp = pg probe in
        let rf_hi =
          List.fold_left
            (fun acc (_ : Plan.rf) ->
              acc
              +. fin [ br.hi; prr.hi ] (fun () ->
                   Cost_model.runtime_filter_ms ~build_rows:br.hi ~probe_rows:prr.hi))
            0.0 rf
        in
        { lo =
            Cost_model.hash_join_ms model ~build_rows:br.lo ~build_pages:bp.lo
              ~probe_rows:prr.lo ~probe_pages:pp.lo ~out_rows:rows_iv.lo
              ~mem_pages:ample_mem;
          hi =
            fin [ br.hi; bp.hi; prr.hi; pp.hi; rows_iv.hi ] (fun () ->
              Cost_model.hash_join_ms model ~build_rows:br.hi ~build_pages:bp.hi
                ~probe_rows:prr.hi ~probe_pages:pp.hi ~out_rows:rows_iv.hi
                ~mem_pages:1)
            +. rf_hi }
      | Plan.Merge_join { left; right; left_sorted; right_sorted; rf; _ } ->
        let lr = r left and lp = pg left in
        let rr = r right and rp = pg right in
        let rf_hi =
          List.fold_left
            (fun acc (_ : Plan.rf) ->
              acc
              +. fin [ lr.hi; rr.hi ] (fun () ->
                   Cost_model.runtime_filter_ms ~build_rows:lr.hi ~probe_rows:rr.hi))
            0.0 rf
        in
        { lo =
            Cost_model.merge_join_ms model ~left_rows:lr.lo ~left_pages:lp.lo
              ~right_rows:rr.lo ~right_pages:rp.lo ~out_rows:rows_iv.lo
              ~mem_pages:ample_mem ~left_sorted ~right_sorted;
          hi =
            fin [ lr.hi; lp.hi; rr.hi; rp.hi; rows_iv.hi ] (fun () ->
              Cost_model.merge_join_ms model ~left_rows:lr.hi ~left_pages:lp.hi
                ~right_rows:rr.hi ~right_pages:rp.hi ~out_rows:rows_iv.hi
                ~mem_pages:1 ~left_sorted ~right_sorted)
            +. rf_hi }
      | Plan.Index_nl_join { outer; _ } ->
        let o = r outer in
        { lo = Cost_model.index_nl_join_ms model ~outer_rows:o.lo ~out_rows:rows_iv.lo;
          hi =
            fin [ o.hi; rows_iv.hi ] (fun () ->
              Cost_model.index_nl_join_ms model ~outer_rows:o.hi ~out_rows:rows_iv.hi) }
      | Plan.Block_nl_join { outer; inner; _ } ->
        let orr = r outer and op = pg outer in
        let ir = r inner and ip = pg inner in
        { lo =
            Cost_model.block_nl_join_ms model ~outer_rows:orr.lo ~outer_pages:op.lo
              ~inner_rows:ir.lo ~inner_pages:ip.lo ~out_rows:rows_iv.lo
              ~mem_pages:ample_mem;
          hi =
            fin [ orr.hi; op.hi; ir.hi; ip.hi; rows_iv.hi ] (fun () ->
              Cost_model.block_nl_join_ms model ~outer_rows:orr.hi ~outer_pages:op.hi
                ~inner_rows:ir.hi ~inner_pages:ip.hi ~out_rows:rows_iv.hi
                ~mem_pages:1) }
      | Plan.Aggregate { input; group_by = _; aggs = _; pre_sorted } ->
        let ir = r input and ip = pg input in
        let gp = pg p in
        if pre_sorted then
          { lo = Cost_model.aggregate_sorted_ms model ~in_rows:ir.lo ~groups:rows_iv.lo;
            hi =
              fin [ ir.hi; rows_iv.hi ] (fun () ->
                Cost_model.aggregate_sorted_ms model ~in_rows:ir.hi ~groups:rows_iv.hi) }
        else
          { lo =
              Cost_model.aggregate_ms model ~in_rows:ir.lo ~in_pages:ip.lo
                ~groups:rows_iv.lo ~group_pages:gp.lo ~mem_pages:ample_mem;
            hi =
              fin [ ir.hi; ip.hi; rows_iv.hi; gp.hi ] (fun () ->
                Cost_model.aggregate_ms model ~in_rows:ir.hi ~in_pages:ip.hi
                  ~groups:rows_iv.hi ~group_pages:gp.hi ~mem_pages:1) }
      | Plan.Sort { input; _ } ->
        let ir = r input and ip = pg input in
        { lo = Cost_model.sort_ms model ~rows:ir.lo ~data_pages:ip.lo ~mem_pages:ample_mem;
          hi =
            fin [ ir.hi; ip.hi ] (fun () ->
              Cost_model.sort_ms model ~rows:ir.hi ~data_pages:ip.hi ~mem_pages:1) }
      | Plan.Filter { input; _ } ->
        let ir = r input in
        { lo = ir.lo *. model.Sim_clock.cpu_tuple_ms;
          hi = ir.hi *. model.Sim_clock.cpu_tuple_ms }
      | Plan.Project _ ->
        { lo = Cost_model.project_ms model ~rows:rows_iv.lo;
          hi = Cost_model.project_ms model ~rows:rows_iv.hi }
      | Plan.Limit _ ->
        { lo = Cost_model.limit_ms model ~rows:rows_iv.lo;
          hi = Cost_model.limit_ms model ~rows:rows_iv.hi }
      | Plan.Collect { spec; _ } ->
        { lo = Collector.estimated_cost_ms spec ~rows:rows_iv.lo;
          hi =
            fin [ rows_iv.hi ] (fun () ->
              Collector.estimated_cost_ms spec ~rows:rows_iv.hi) }
      | Plan.Materialized { name = _; covers = _; on_disk } ->
        if on_disk then
          let pgs = pg p in
          { lo = Cost_model.seq_scan_ms model ~pages:pgs.lo ~rows:rows_iv.lo;
            hi =
              fin [ pgs.hi; rows_iv.hi ] (fun () ->
                Cost_model.seq_scan_ms model ~pages:pgs.hi ~rows:rows_iv.hi) }
        else point 0.0
    in
    (* Parallel slack: re-optimization may re-choose any degree up to
       [max_dop], so the best case splits the work evenly and the worst
       case adds startup and exchange overhead on top of the serial cost. *)
    let dmax = max max_dop p.Plan.dop in
    if dmax <= 1 then serial
    else
      let xpages =
        List.fold_left (fun acc c -> acc +. (pg c).hi) (pg p).hi (Plan.children p)
      in
      { lo = serial.lo /. float_of_int dmax;
        hi =
          fin [ serial.hi; xpages ] (fun () ->
            serial.hi +. Cost_model.startup_ms ~dop:dmax
            +. Cost_model.exchange_ms ~pages:xpages) }
  in
  total plan

(* ------------------------------------------------------------------ *)
(* Provably-dominated access paths.                                    *)

let dominated_scan env ~model (p : Plan.t) =
  match p.Plan.node with
  | Plan.Seq_scan { table; alias = _; filter = Some pred } when p.Plan.dop = 1 ->
    (match env.table table with
     | None -> None
     | Some ti ->
       let seq = Cost_model.seq_scan_ms model ~pages:ti.t_pages ~rows:ti.t_rows in
       let conjs = Expr.conjuncts pred in
       let residual_cpu =
         float_of_int (max 0 (List.length conjs - 1)) *. model.Sim_clock.cpu_tuple_ms
       in
       let best =
         List.fold_left
           (fun best c ->
             match Expr.shape_of c with
             | Expr.S_col_cmp_const (col, _, _) | Expr.S_col_between (col, _, _) ->
               let bc = bare col in
               if not (ti.has_index bc) then best
               else
                 let m = conjunct_interval ti ti.t_rows c in
                 if not (Float.is_finite m.hi) then best
                 else
                   let idx =
                     Cost_model.index_scan_ms model ~match_rows:m.hi
                       ~table_pages:ti.t_pages
                     +. (m.hi *. residual_cpu)
                   in
                   if idx < seq then
                     (match best with
                      | Some (_, b) when b <= idx -> best
                      | _ -> Some (bc, idx))
                   else best
             | _ -> best)
           None conjs
       in
       Option.map
         (fun (c, idx) ->
           Printf.sprintf
             "an index scan on %s costs at most %.1f ms against %.1f ms for the \
              sequential scan"
             c idx seq)
         best)
  | Plan.Index_scan { table; alias = _; index_col; lo; hi; filter = _ }
    when p.Plan.dop = 1 ->
    (match env.table table with
     | None -> None
     | Some ti ->
       let m = range_interval ti ti.t_rows (bare index_col) ~blo:lo ~bhi:hi in
       let idx_lo =
         Cost_model.index_scan_ms model ~match_rows:m.lo ~table_pages:ti.t_pages
       in
       let seq = Cost_model.seq_scan_ms model ~pages:ti.t_pages ~rows:ti.t_rows in
       if idx_lo > seq then
         Some
           (Printf.sprintf
              "at least %.0f provable matches cost this index scan at least %.1f ms \
               against %.1f ms for a sequential scan"
              m.lo idx_lo seq)
       else None)
  | _ -> None
