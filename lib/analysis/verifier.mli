(** Static analysis over annotated query execution plans.

    The whole re-optimization mechanism rests on invariants of the
    annotated plan — every operator carries estimates, collectors sit at
    legal streamed positions within the [mu] budget, a re-planned
    remainder must be consistent with the temp tables it reads, memory
    grants must fit the broker budget, and runtime-filter leases must
    provably return to zero.  A malformed plan otherwise only fails deep
    inside the dispatcher.  This module checks those invariants up front:
    composable passes run over a plan before execution and (in sanitizer
    mode) again at every decision point and after every mid-query plan
    switch.

    Six passes ship:

    - {!schema_pass} — infers each operator's output schema bottom-up
      from the catalog (and the temp-table store for re-planned
      remainders) and rejects dangling column references, operand type
      mismatches and shape drift ([SCH-*] codes);
    - {!annotation_pass} — every operator has sane estimates; child to
      parent cardinality monotonicity is plausible (join and filter
      estimates never exceed cross-product / input bounds); degenerate
      zero-row estimates are flagged ([EST-*]);
    - {!scia_pass} — statistics collectors only at streamed positions
      directly above a scan, unique collection-point ids, spec columns
      the input actually owns, total collector CPU within the [mu]
      budget, no collector orphaned below nothing that can use its
      statistics ([SCIA-*]);
    - {!resource_pass} — memory assignments respect min/max demands and
      the broker budget; runtime-filter annotations are installable and
      retire inside their unit, so [filter_pages_held] provably returns
      to 0 ([MEM-*], [RF-*]);
    - {!parallel_pass} — degree-of-parallelism annotations are sane:
      every [dop] is at least 1, degrees above 1 only on operators with
      an exchange implementation, per-worker memory shares workable
      ([PAR-*]);
    - {!bounds_pass} — cardinality-bound abstract interpretation (see
      {!Bounds}): estimates outside their provable interval, worst-case
      memory demands over the broker budget, provably-dominated access
      paths ([BND-*], all warnings — the hard-error counterpart,
      [BND-OBSERVED], is raised by the dispatcher's sanitizer when an
      {e observed} cardinality falls outside its interval). *)

open Mqr_storage

(** How the environment the plan will run in answers questions the plan
    poses.  Build one with {!context} (catalog-only, e.g. for [lint]) or
    fill the fields directly (the dispatcher adds its temp-table store
    and live memory budget). *)
type context = {
  base_schema : string -> Schema.t option;
      (** unqualified heap schema of a base table *)
  base_rows : string -> float option;
      (** believed cardinality of a base table *)
  temp_schema : string -> Schema.t option;
      (** schema of a materialized intermediate, with the {e original}
          column qualifiers preserved — consulted before [base_schema]
          so re-planned remainders are checked against what was actually
          materialized *)
  budget_pages : int option;  (** memory-manager budget, when known *)
  mu : float option;  (** collector overhead bound, when known *)
  bounds : Bounds.env;
      (** ground-truth environment for the bounds pass; {!context} builds
          it from the catalog, distrusting bucket/distinct counts of any
          table [temp_schema] knows (collector-derived statistics) *)
}

(** Catalog-backed context. [temp_schema] defaults to "no temps". *)
val context :
  ?temp_schema:(string -> Schema.t option) ->
  ?budget_pages:int -> ?mu:float -> Mqr_catalog.Catalog.t -> context

type pass = {
  pass_name : string;
  run : context -> Mqr_opt.Plan.t -> Diagnostic.t list;
}

val schema_pass : pass
val annotation_pass : pass
val scia_pass : pass
val resource_pass : pass

(** Parallel-shape checks over the plan's [dop] annotations: every degree
    is at least 1 ([PAR-DOP]), a degree above 1 only appears on operators
    the executor has an exchange implementation for — striped scans,
    keyed hash joins, grouped hash aggregation, sorts ([PAR-OP]) — and
    the memory grant split across the workers leaves each a workable
    share ([PAR-MEM]). *)
val parallel_pass : pass

(** Cardinality-bound abstract interpretation over the plan (warnings:
    [BND-EST] estimate outside its provable row interval, [BND-MEM]
    worst-case working memory over the broker budget, [BND-DOM]
    provably-dominated access-path choice). *)
val bounds_pass : pass

(** The six passes above, in that order. *)
val all_passes : pass list

(** Run the passes (default {!all_passes}) and return every finding,
    errors first. *)
val verify :
  ?passes:pass list -> context -> Mqr_opt.Plan.t -> Diagnostic.t list

exception Rejected of { what : string; diags : Diagnostic.t list }
(** [diags] holds only the [Error]-severity findings. *)

(** Like {!verify} but raises {!Rejected} when any finding is an error;
    [what] names the plan being refused (e.g. ["initial plan"],
    ["switched plan"]). *)
val check_exn :
  ?passes:pass list -> what:string -> context -> Mqr_opt.Plan.t ->
  Diagnostic.t list

(** Raise {!Rejected} with a [TEN-LIFETIME] error: tenant [tenant] still
    holds [pages] transient pages (bloom bitmaps + worker pool slices,
    summed over its in-flight runs) at a point where the service
    scheduler observes its runs from outside a step.  The multi-tenant
    generalization of the sanitizer's [RF-LIFETIME] / [PAR-LIFETIME]
    dynamic checks. *)
val reject_tenant_pages : what:string -> tenant:string -> pages:int -> 'a

(** How much verification the dispatcher performs. *)
type mode =
  | Off
  | Pre       (** verify the instrumented plan once, before execution *)
  | Sanitize
      (** [Pre] plus re-verification at every decision point and after
          every mid-query plan switch, and assert the runtime-filter
          lease invariant ([filter_pages_held = 0]) there *)

val mode_to_string : mode -> string
