open Mqr_storage
module Expr = Mqr_expr.Expr
module Selectivity = Mqr_expr.Selectivity
module Query = Mqr_sql.Query
module Aggregate = Mqr_exec.Aggregate
module Collector = Mqr_exec.Collector

type options = {
  enable_index_join : bool;
  enable_merge_join : bool;
  enable_bushy : bool;
  enable_runtime_filters : bool;
  planning_mem_pages : int;
  max_dop : int;
}

let default_options =
  { enable_index_join = true;
    enable_merge_join = true;
    enable_bushy = true;
    enable_runtime_filters = false;
    planning_mem_pages = 128;
    max_dop = 1 }

type result = {
  plan : Plan.t;
  plans_enumerated : int;
}

exception Planning_error of string

(* ------------------------------------------------------------------ *)
(* Shared context for one optimization run.                            *)

type ctx = {
  model : Sim_clock.model;
  env : Stats_env.t;
  sel_env : Selectivity.env;
  planning_mem : int;
  max_dop : int;
  mutable next_id : int;
  mutable enumerated : int;
}

let make_ctx ?(planning_mem = default_options.planning_mem_pages)
    ?(max_dop = 1) ~model ~env () =
  { model;
    env;
    sel_env = Stats_env.selectivity_env env;
    planning_mem;
    max_dop = max 1 max_dop;
    next_id = 0;
    enumerated = 0 }

(* Memory assumed when costing: the grant when one exists, otherwise the
   planning assumption capped by the operator's own maximum. *)
let effective_mem ctx ~mem ~max_mem =
  if mem > 0 then mem else min max_mem (max 2 ctx.planning_mem)

let fresh_id ctx =
  let id = ctx.next_id in
  ctx.next_id <- id + 1;
  id

let sel ctx e = Selectivity.selectivity ctx.sel_env e

let sel_opt ctx = function None -> 1.0 | Some e -> sel ctx e

let width_of schema = float_of_int (Schema.avg_tuple_width schema)

(* ------------------------------------------------------------------ *)
(* Node constructors: estimation + costing in one place so [recost]    *)
(* and the DP share the exact same formulas.                           *)

let mk_node ctx ?(dop = 1) node schema ~rows ~op_ms ~children ~min_mem
    ~max_mem ~mem =
  let rows = Float.max 0.05 rows in
  let total_ms =
    List.fold_left (fun acc (c : Plan.t) -> acc +. c.Plan.est.Plan.total_ms)
      op_ms children
  in
  { Plan.id = fresh_id ctx;
    node;
    schema;
    est = { Plan.rows; width = width_of schema; op_ms; total_ms };
    min_mem;
    max_mem;
    mem;
    dop }

(* ------------------------------------------------------------------ *)
(* Degree-of-parallelism choice.  Candidate degrees are powers of two up
   to [max_dop] (the degrees the bench sweeps); [per_worker d] prices one
   even partition's share and [exchange_pages] what must cross the
   interconnect first.  Degree 1 is exactly the serial cost — no exchange,
   no startup — so with [max_dop = 1] every plan, cost and trace is
   byte-identical to a build without parallelism.  Ties keep the smaller
   degree. *)

let choose_dop ctx ~exchange_pages ~per_worker =
  let rec go d (best_d, best_ms) =
    if d > ctx.max_dop then (best_d, best_ms)
    else begin
      let ms =
        Cost_model.parallel_ms ~dop:d ~exchange_pages ~per_worker:(per_worker d)
      in
      go (d * 2) (if ms < best_ms then (d, ms) else (best_d, best_ms))
    end
  in
  go 2 (1, per_worker 1)

let scan_out_rows ctx ~alias ~filter =
  let r = Stats_env.rel ctx.env ~alias in
  match filter, Stats_env.local_selectivity ctx.env ~alias with
  | Some _, Some sel -> r.Stats_env.rows *. sel
  | _ -> r.Stats_env.rows *. sel_opt ctx filter

let mk_seq_scan ctx ~table ~alias ~filter ~schema =
  let r = Stats_env.rel ctx.env ~alias in
  let rows = scan_out_rows ctx ~alias ~filter in
  (* the scan stripes across workers (each reads its own rid range, no
     exchange); the predicate is evaluated on the parent and stays serial *)
  let dop, scan_ms =
    choose_dop ctx ~exchange_pages:0.0 ~per_worker:(fun d ->
        let d = float_of_int d in
        Cost_model.seq_scan_ms ctx.model ~pages:(r.Stats_env.pages /. d)
          ~rows:(r.Stats_env.rows /. d))
  in
  let op_ms =
    scan_ms
    +. (match filter with
        | None -> 0.0
        | Some _ -> r.Stats_env.rows *. ctx.model.Sim_clock.cpu_tuple_ms)
  in
  mk_node ctx ~dop (Plan.Seq_scan { table; alias; filter }) schema ~rows ~op_ms
    ~children:[] ~min_mem:0 ~max_mem:0 ~mem:0

let mk_index_scan ctx ~table ~alias ~index_col ~lo ~hi ~filter ~schema
    ~index_sel =
  let r = Stats_env.rel ctx.env ~alias in
  let rows = scan_out_rows ctx ~alias ~filter in
  let match_rows = Float.max 1.0 (r.Stats_env.rows *. index_sel) in
  let op_ms =
    Cost_model.index_scan_ms ctx.model ~match_rows
      ~table_pages:r.Stats_env.pages
    +. (match filter with
        | None -> 0.0
        | Some _ -> match_rows *. ctx.model.Sim_clock.cpu_tuple_ms)
  in
  mk_node ctx (Plan.Index_scan { table; alias; index_col; lo; hi; filter })
    schema ~rows ~op_ms ~children:[] ~min_mem:0 ~max_mem:0 ~mem:0

let join_sel ctx ~keys ~extra =
  let key_sel =
    List.fold_left
      (fun acc (p, b) ->
         acc *. Selectivity.equijoin_selectivity ctx.sel_env ~left:p ~right:b)
      1.0 keys
  in
  key_sel *. sel_opt ctx extra

(* ------------------------------------------------------------------ *)
(* Runtime-filter annotation (sideways information passing).           *)

(* Estimated pass fraction of a filter built from [build_col] applied to
   [probe_col]: by containment, the build side covers at most
   min(distinct(build_col), build_rows) of the probe column's distinct
   values.  Unknown distincts yield 1.0: the filter still runs (its
   observed selectivity is the point) but earns no cost credit.  A
   build-side estimate of under one row is a statistics failure rather
   than a one-distinct-value build; it also earns no credit — crediting
   min(distinct, 1)/distinct(probe) would hand the deepest discount to
   exactly the joins whose estimates are garbage, letting the optimizer
   flip a mis-estimated subtree onto the build side on the strength of a
   filter it cannot predict (the plan verifier flags the degenerate
   estimate as RF-DEGEN). *)
let rf_est_sel ctx ~build_rows ~build_col ~probe_col =
  if build_rows < 1.0 then 1.0
  else
  match
    ( Selectivity.distinct_of_column ctx.sel_env build_col,
      Selectivity.distinct_of_column ctx.sel_env probe_col )
  with
  | Some db, Some dp when dp >= 1.0 ->
    Float.min 1.0 (Float.min db build_rows /. dp)
  | _ -> 1.0

(* Leaves of the probe subtree whose schema owns the filtered column —
   the sites where the dispatcher will apply the filter. *)
let rf_sites probe ~col =
  let owns (n : Plan.t) =
    match Schema.index_of n.Plan.schema col with
    | (_ : int) -> true
    | exception Not_found -> false
    | exception Schema.Ambiguous _ -> false
  in
  List.rev
    (Plan.fold
       (fun acc (n : Plan.t) ->
          match n.Plan.node with
          | (Plan.Seq_scan { alias; _ } | Plan.Index_scan { alias; _ })
            when owns n -> alias :: acc
          | Plan.Materialized { name; _ } when owns n -> name :: acc
          | _ -> acc)
       [] probe)

let rf_annotations ctx ~with_rf ~build ~probe ~keys =
  if not with_rf then []
  else
    List.filter_map
      (fun (probe_col, build_col) ->
         match rf_sites probe ~col:probe_col with
         | [] -> None
         | sites ->
           Some
             { Plan.rf_build_col = build_col;
               rf_probe_col = probe_col;
               rf_sel =
                 rf_est_sel ctx ~build_rows:build.Plan.est.Plan.rows
                   ~build_col ~probe_col;
               rf_sites = sites })
      keys

let rf_combined_sel rf =
  List.fold_left (fun acc f -> acc *. f.Plan.rf_sel) 1.0 rf

(* Selectivity credited when *costing* the join: only half the predicted
   reduction.  The estimate rides on catalog distinct counts — often stale
   exactly when filters matter — and an over-credited filter would let the
   optimizer chase join orders whose benefit never materializes.  The full
   reduction is still realized at run time; this only damps plan choice. *)
let rf_credit_sel rf = 0.5 +. (0.5 *. rf_combined_sel rf)

let rf_overhead_ms ~build_rows ~probe_rows rf =
  List.fold_left
    (fun acc (_ : Plan.rf) ->
       acc +. Cost_model.runtime_filter_ms ~build_rows ~probe_rows)
    0.0 rf

let mk_hash_join ctx ~build ~probe ~keys ~extra ~mem ~with_rf =
  let schema = Schema.concat probe.Plan.schema build.Plan.schema in
  let b = build.Plan.est and p = probe.Plan.est in
  let rows = b.Plan.rows *. p.Plan.rows *. join_sel ctx ~keys ~extra in
  let rf = rf_annotations ctx ~with_rf ~build ~probe ~keys in
  (* the join's own work shrinks to the filtered probe cardinality; the
     output estimate does not change (the filter only removes tuples that
     could never join) *)
  let probe_rows_eff = p.Plan.rows *. rf_credit_sel rf in
  let build_pages = Cost_model.pages ~rows:b.Plan.rows ~width:b.Plan.width in
  let probe_pages =
    Cost_model.pages ~rows:probe_rows_eff ~width:p.Plan.width
  in
  let min_mem, max_mem = Cost_model.hash_join_mem ~build_pages in
  let mem = effective_mem ctx ~mem ~max_mem in
  (* both inputs are hash-exchanged on the key, then each worker joins its
     co-partition pair with an even share of the memory grant; runtime
     filters are built and probed outside the partitioned join and stay
     serial *)
  let dop, join_ms =
    if keys = [] then (1, Cost_model.hash_join_ms ctx.model
                         ~build_rows:b.Plan.rows ~build_pages
                         ~probe_rows:probe_rows_eff ~probe_pages
                         ~out_rows:rows ~mem_pages:mem)
    else
      choose_dop ctx ~exchange_pages:(build_pages +. probe_pages)
        ~per_worker:(fun d ->
            let fd = float_of_int d in
            Cost_model.hash_join_ms ctx.model
              ~build_rows:(b.Plan.rows /. fd)
              ~build_pages:(build_pages /. fd)
              ~probe_rows:(probe_rows_eff /. fd)
              ~probe_pages:(probe_pages /. fd)
              ~out_rows:(rows /. fd)
              ~mem_pages:(max 2 (mem / d)))
  in
  let op_ms =
    join_ms
    +. rf_overhead_ms ~build_rows:b.Plan.rows ~probe_rows:p.Plan.rows rf
  in
  mk_node ctx ~dop (Plan.Hash_join { build; probe; keys; extra; rf }) schema
    ~rows ~op_ms ~children:[ build; probe ] ~min_mem ~max_mem ~mem

let mk_index_nl_join ctx ~outer ~table ~alias ~outer_col ~inner_col
    ~inner_filter ~extra ~inner_schema =
  let r = Stats_env.rel ctx.env ~alias in
  let schema = Schema.concat outer.Plan.schema inner_schema in
  let o = outer.Plan.est in
  let jsel =
    Selectivity.equijoin_selectivity ctx.sel_env ~left:outer_col
      ~right:inner_col
  in
  let fetched = o.Plan.rows *. r.Stats_env.rows *. jsel in
  let rows = fetched *. sel_opt ctx inner_filter *. sel_opt ctx extra in
  let op_ms =
    Cost_model.index_nl_join_ms ctx.model ~outer_rows:o.Plan.rows
      ~out_rows:(Float.max 1.0 fetched)
    +. (match inner_filter with
        | None -> 0.0
        | Some _ -> fetched *. ctx.model.Sim_clock.cpu_tuple_ms)
  in
  mk_node ctx
    (Plan.Index_nl_join
       { outer; table; alias; outer_col; inner_col; inner_filter; extra })
    schema ~rows ~op_ms ~children:[ outer ] ~min_mem:0 ~max_mem:0 ~mem:0

let mk_block_nl_join ctx ~outer ~inner ~pred ~mem =
  let schema = Schema.concat outer.Plan.schema inner.Plan.schema in
  let o = outer.Plan.est and i = inner.Plan.est in
  let rows = o.Plan.rows *. i.Plan.rows *. sel_opt ctx pred in
  let outer_pages = Cost_model.pages ~rows:o.Plan.rows ~width:o.Plan.width in
  let inner_pages = Cost_model.pages ~rows:i.Plan.rows ~width:i.Plan.width in
  let min_mem, max_mem = Cost_model.block_nl_join_mem ~outer_pages in
  let mem = effective_mem ctx ~mem ~max_mem in
  let op_ms =
    Cost_model.block_nl_join_ms ctx.model ~outer_rows:o.Plan.rows ~outer_pages
      ~inner_rows:i.Plan.rows ~inner_pages ~out_rows:rows ~mem_pages:mem
  in
  mk_node ctx (Plan.Block_nl_join { outer; inner; pred }) schema ~rows ~op_ms
    ~children:[ outer; inner ] ~min_mem ~max_mem ~mem

(* A side counts as pre-sorted only when the join has a single key pair and
   the side delivers that key in ascending order; an input ordered by the
   leading column alone is NOT sorted for a multi-key merge. *)
let side_sorted plan key = List.mem key (Plan.orders_of plan)

let mk_merge_join ctx ~left ~right ~keys ~extra ~mem ~with_rf =
  let schema = Schema.concat left.Plan.schema right.Plan.schema in
  let le = left.Plan.est and re = right.Plan.est in
  let rows = le.Plan.rows *. re.Plan.rows *. join_sel ctx ~keys ~extra in
  let left_sorted =
    match keys with [ (l, _) ] -> side_sorted left l | _ -> false
  in
  let right_sorted =
    match keys with [ (_, r) ] -> side_sorted right r | _ -> false
  in
  (* the left side plays the hash join's build role: its key set filters
     the right side before the right-side sort *)
  let rf =
    rf_annotations ctx ~with_rf ~build:left ~probe:right
      ~keys:(List.map (fun (l, r) -> (r, l)) keys)
  in
  let right_rows_eff = re.Plan.rows *. rf_credit_sel rf in
  let left_pages = Cost_model.pages ~rows:le.Plan.rows ~width:le.Plan.width in
  let right_pages =
    Cost_model.pages ~rows:right_rows_eff ~width:re.Plan.width
  in
  let min_mem, max_mem = Cost_model.merge_join_mem ~left_pages ~right_pages in
  let mem = effective_mem ctx ~mem ~max_mem in
  let op_ms =
    Cost_model.merge_join_ms ctx.model ~left_rows:le.Plan.rows ~left_pages
      ~right_rows:right_rows_eff ~right_pages ~out_rows:rows ~mem_pages:mem
      ~left_sorted ~right_sorted
    +. rf_overhead_ms ~build_rows:le.Plan.rows ~probe_rows:re.Plan.rows rf
  in
  mk_node ctx
    (Plan.Merge_join { left; right; keys; extra; left_sorted; right_sorted; rf })
    schema ~rows ~op_ms ~children:[ left; right ] ~min_mem ~max_mem ~mem

let group_count ctx ~input_rows ~group_by =
  match group_by with
  | [] -> 1.0
  | cols ->
    let product =
      List.fold_left
        (fun acc c ->
           match Selectivity.distinct_of_column ctx.sel_env c with
           | Some d -> acc *. Float.max 1.0 d
           | None -> acc *. 100.0)
        1.0 cols
    in
    Float.max 1.0 (Float.min input_rows product)

let mk_aggregate ctx ~input ~group_by ~aggs ~mem =
  let schema =
    Aggregate.output_schema input.Plan.schema ~group_by ~aggs
  in
  let in_est = input.Plan.est in
  let rows = group_count ctx ~input_rows:in_est.Plan.rows ~group_by in
  (* streaming aggregation when the single grouping column arrives in
     order: equal keys adjacent, one pass, no working memory *)
  let pre_sorted =
    match group_by with
    | [ g ] -> List.mem g (Plan.orders_of input)
    | _ -> false
  in
  let group_pages = Cost_model.pages ~rows ~width:(width_of schema) in
  let in_pages =
    Cost_model.pages ~rows:in_est.Plan.rows ~width:in_est.Plan.width
  in
  let min_mem, max_mem =
    if pre_sorted then (0, 0) else Cost_model.aggregate_mem ~group_pages
  in
  let mem = if pre_sorted then 0 else effective_mem ctx ~mem ~max_mem in
  (* partitioned on the first grouping column (every group lands wholly on
     one worker); streaming and ungrouped aggregation stay serial *)
  let dop, op_ms =
    if pre_sorted then
      (1, Cost_model.aggregate_sorted_ms ctx.model ~in_rows:in_est.Plan.rows
            ~groups:rows)
    else if group_by = [] then
      (1, Cost_model.aggregate_ms ctx.model ~in_rows:in_est.Plan.rows
            ~in_pages ~groups:rows ~group_pages ~mem_pages:mem)
    else
      choose_dop ctx ~exchange_pages:in_pages ~per_worker:(fun d ->
          let fd = float_of_int d in
          Cost_model.aggregate_ms ctx.model
            ~in_rows:(in_est.Plan.rows /. fd)
            ~in_pages:(in_pages /. fd)
            ~groups:(rows /. fd)
            ~group_pages:(group_pages /. fd)
            ~mem_pages:(max 1 (mem / d)))
  in
  mk_node ctx ~dop (Plan.Aggregate { input; group_by; aggs; pre_sorted })
    schema ~rows ~op_ms ~children:[ input ] ~min_mem ~max_mem ~mem

let mk_sort ctx ~input ~keys ~mem =
  let in_est = input.Plan.est in
  let data_pages =
    Cost_model.pages ~rows:in_est.Plan.rows ~width:in_est.Plan.width
  in
  let min_mem, max_mem = Cost_model.sort_mem ~data_pages in
  let mem = effective_mem ctx ~mem ~max_mem in
  (* round-robin exchange, per-worker external sort, then a serial k-way
     merge on the parent (one comparison unit per output row) *)
  let dop, op_ms =
    choose_dop ctx ~exchange_pages:data_pages ~per_worker:(fun d ->
        let fd = float_of_int d in
        Cost_model.sort_ms ctx.model ~rows:(in_est.Plan.rows /. fd)
          ~data_pages:(data_pages /. fd) ~mem_pages:(max 2 (mem / d))
        +. (if d = 1 then 0.0
            else in_est.Plan.rows *. ctx.model.Sim_clock.sort_tuple_ms))
  in
  mk_node ctx ~dop (Plan.Sort { input; keys }) input.Plan.schema
    ~rows:in_est.Plan.rows ~op_ms ~children:[ input ] ~min_mem ~max_mem ~mem

let mk_filter ctx ~input ~pred =
  let in_est = input.Plan.est in
  let rows = in_est.Plan.rows *. sel ctx pred in
  let op_ms = in_est.Plan.rows *. ctx.model.Sim_clock.cpu_tuple_ms in
  mk_node ctx (Plan.Filter { input; pred }) input.Plan.schema ~rows ~op_ms
    ~children:[ input ] ~min_mem:0 ~max_mem:0 ~mem:0

let mk_project ctx ~input ~cols =
  let idxs = List.map (Schema.index_of input.Plan.schema) cols in
  let schema = Schema.project input.Plan.schema idxs in
  let rows = input.Plan.est.Plan.rows in
  let op_ms = Cost_model.project_ms ctx.model ~rows in
  mk_node ctx (Plan.Project { input; cols }) schema ~rows ~op_ms
    ~children:[ input ] ~min_mem:0 ~max_mem:0 ~mem:0

let mk_limit ctx ~input ~n =
  let rows = Float.min (float_of_int n) input.Plan.est.Plan.rows in
  let op_ms = Cost_model.limit_ms ctx.model ~rows in
  mk_node ctx (Plan.Limit { input; n }) input.Plan.schema ~rows ~op_ms
    ~children:[ input ] ~min_mem:0 ~max_mem:0 ~mem:0

let mk_collect ctx ~input ~spec ~cid =
  let rows = input.Plan.est.Plan.rows in
  let op_ms = Collector.estimated_cost_ms spec ~rows in
  mk_node ctx (Plan.Collect { input; spec; cid }) input.Plan.schema ~rows
    ~op_ms ~children:[ input ] ~min_mem:0 ~max_mem:0 ~mem:0

(* ------------------------------------------------------------------ *)
(* Conjunct analysis.                                                  *)

type conj_info = {
  expr : Expr.t;
  owners : string list;  (* aliases of relations owning referenced columns *)
}

let alias_owning env col =
  match
    List.find_opt (fun r -> Stats_env.owns r col) (Stats_env.relations env)
  with
  | Some r -> r.Stats_env.alias
  | None -> raise (Planning_error ("unknown column " ^ col))

let conj_info env e =
  let owners =
    List.sort_uniq String.compare
      (List.map (alias_owning env) (Expr.columns e))
  in
  { expr = e; owners }

(* ------------------------------------------------------------------ *)
(* Access paths.                                                       *)

(* Index-usable bounds for [col] within local conjuncts: combined eq/range
   constants. *)
let index_bounds conjs col =
  let lo = ref None and hi = ref None in
  let tighten_lo v incl =
    match !lo with
    | None -> lo := Some (v, incl)
    | Some (v0, _) when Value.compare v v0 > 0 -> lo := Some (v, incl)
    | Some _ -> ()
  in
  let tighten_hi v incl =
    match !hi with
    | None -> hi := Some (v, incl)
    | Some (v0, _) when Value.compare v v0 < 0 -> hi := Some (v, incl)
    | Some _ -> ()
  in
  let used = ref [] in
  List.iter
    (fun conj ->
       match Expr.shape_of conj with
       | Expr.S_col_cmp_const (c, op, v) when c = col ->
         (match op with
          | Expr.Eq -> tighten_lo v true; tighten_hi v true; used := conj :: !used
          | Expr.Lt -> tighten_hi v false; used := conj :: !used
          | Expr.Le -> tighten_hi v true; used := conj :: !used
          | Expr.Gt -> tighten_lo v false; used := conj :: !used
          | Expr.Ge -> tighten_lo v true; used := conj :: !used
          | Expr.Ne -> ())
       | Expr.S_col_between (c, l, h) when c = col ->
         tighten_lo l true;
         tighten_hi h true;
         used := conj :: !used
       | _ -> ())
    conjs;
  (!lo, !hi, !used)

(* All access paths for a relation: sequential scan, index range scans for
   every index with a usable bound, and full index scans on columns whose
   order is interesting further up (they cost more I/O but deliver sorted
   output for merge joins, streaming aggregation or ORDER BY). *)
let access_paths ctx ~(rel : Stats_env.rel_info) ~local ~interesting =
  let filter = match local with [] -> None | l -> Some (Expr.conjoin l) in
  let seq =
    mk_seq_scan ctx ~table:rel.Stats_env.table ~alias:rel.Stats_env.alias
      ~filter ~schema:rel.Stats_env.rel_schema
  in
  ctx.enumerated <- ctx.enumerated + 1;
  let ranged =
    List.filter_map
      (fun col ->
         let lo, hi, used = index_bounds local col in
         if lo = None && hi = None then None
         else begin
           ctx.enumerated <- ctx.enumerated + 1;
           let index_sel = sel ctx (Expr.conjoin used) in
           Some
             (mk_index_scan ctx ~table:rel.Stats_env.table
                ~alias:rel.Stats_env.alias ~index_col:col ~lo ~hi ~filter
                ~schema:rel.Stats_env.rel_schema ~index_sel)
         end)
      rel.Stats_env.indexed_cols
  in
  let ordered =
    List.filter_map
      (fun col ->
         let already =
           List.exists
             (fun (p : Plan.t) -> List.mem col (Plan.orders_of p))
             ranged
         in
         if already || not (List.mem col interesting) then None
         else begin
           ctx.enumerated <- ctx.enumerated + 1;
           Some
             (mk_index_scan ctx ~table:rel.Stats_env.table
                ~alias:rel.Stats_env.alias ~index_col:col ~lo:None ~hi:None
                ~filter ~schema:rel.Stats_env.rel_schema ~index_sel:1.0)
         end)
      rel.Stats_env.indexed_cols
  in
  seq :: (ranged @ ordered)

(* ------------------------------------------------------------------ *)
(* Join enumeration (DP over alias subsets).                           *)

(* [rels] pairs each relation alias with its candidate access paths.  The
   DP keeps, per subset of relations, a small Pareto set: the cheapest plan
   overall plus the cheapest plan delivering each interesting order
   (System R's interesting orders). *)
let optimize_joins ctx options ~rels ~join_conjs ~complex_conjs ~interesting =
  let n = List.length rels in
  if n > 16 then raise (Planning_error "too many relations (max 16)");
  let alias_bit = List.mapi (fun i (alias, _) -> (alias, 1 lsl i)) rels in
  let bit_of alias = List.assoc alias alias_bit in
  let mask_of owners =
    List.fold_left (fun acc a -> acc lor bit_of a) 0 owners
  in
  let full = (1 lsl n) - 1 in
  let best : (int, Plan.t list) Hashtbl.t = Hashtbl.create 64 in
  let cheapest = function
    | [] -> invalid_arg "cheapest: empty"
    | p :: rest ->
      List.fold_left
        (fun (a : Plan.t) (b : Plan.t) ->
           if b.Plan.est.Plan.total_ms < a.Plan.est.Plan.total_ms then b else a)
        p rest
  in
  (* Pareto retention: cheapest overall + cheapest provider per order. *)
  let retained plans =
    match plans with
    | [] -> []
    | _ ->
      let keep = ref [ cheapest plans ] in
      List.iter
        (fun o ->
           match
             List.filter (fun p -> List.mem o (Plan.orders_of p)) plans
           with
           | [] -> ()
           | providers ->
             let c = cheapest providers in
             if not (List.memq c !keep) then keep := c :: !keep)
        interesting;
      !keep
  in
  let bucket mask = Option.value ~default:[] (Hashtbl.find_opt best mask) in
  let consider mask plan =
    Hashtbl.replace best mask (retained (plan :: bucket mask))
  in
  (* Conjuncts annotated with their owner masks. *)
  let joins = List.map (fun ci -> (ci, mask_of ci.owners)) join_conjs in
  let complexes = List.map (fun ci -> (ci, mask_of ci.owners)) complex_conjs in
  (* Conjuncts that become applicable exactly when [mask] is assembled by
     joining [s1] and [s2]: owners span both sides. *)
  let spanning all s1 s2 =
    List.filter_map
      (fun (ci, m) ->
         if m land s1 <> 0 && m land s2 <> 0 && m land lnot (s1 lor s2) = 0
         then Some ci
         else None)
      all
  in
  (* Singletons. *)
  List.iteri
    (fun i (_, paths) -> List.iter (consider (1 lsl i)) paths)
    rels;
  (* Scan parameters of a singleton's relation (any of its access paths). *)
  let scan_info_of s2 =
    match bucket s2 with
    | { Plan.node = Plan.Seq_scan { table; alias; filter }; _ } :: _
    | { Plan.node = Plan.Index_scan { table; alias; filter; _ }; _ } :: _ ->
      Some (table, alias, filter)
    | _ -> None
  in
  (* Subsets in increasing popcount order: iterating masks ascending works
     because any strict submask is numerically smaller. *)
  for mask = 1 to full do
    if mask land (mask - 1) <> 0 then begin
      (* all ordered splits (s1 = probe/outer side, s2 = build/inner) *)
      let s1 = ref (mask land (mask - 1)) in
      while !s1 > 0 do
        let s2 = mask lxor !s1 in
        let lefts = bucket !s1 and rights = bucket s2 in
        let conns = spanning joins !s1 s2 in
        let cplx = spanning complexes !s1 s2 in
        let bushy_ok =
          options.enable_bushy || s2 land (s2 - 1) = 0 (* right singleton *)
        in
        if lefts <> [] && rights <> [] && bushy_ok && conns <> [] then begin
          (* split conjuncts into equality keys and residual *)
          let keys, residual =
            List.partition_map
              (fun ci ->
                 match Expr.shape_of ci.expr with
                 | Expr.S_col_eq_col (a, b) ->
                   let a_owner = alias_owning ctx.env a in
                   if bit_of a_owner land !s1 <> 0 then Left (a, b)
                   else Left (b, a)
                 | _ -> Right ci.expr)
              conns
          in
          let extra_list = residual @ List.map (fun ci -> ci.expr) cplx in
          let extra =
            match extra_list with [] -> None | l -> Some (Expr.conjoin l)
          in
          List.iter
            (fun left ->
               List.iter
                 (fun right ->
                    if keys <> [] then begin
                      ctx.enumerated <- ctx.enumerated + 1;
                      consider mask
                        (mk_hash_join ctx ~build:right ~probe:left ~keys
                           ~extra ~mem:0
                           ~with_rf:options.enable_runtime_filters);
                      if options.enable_merge_join then begin
                        ctx.enumerated <- ctx.enumerated + 1;
                        consider mask
                          (mk_merge_join ctx ~left ~right ~keys ~extra ~mem:0
                             ~with_rf:options.enable_runtime_filters)
                      end
                    end
                    else begin
                      (* connected only through non-equi predicates *)
                      ctx.enumerated <- ctx.enumerated + 1;
                      consider mask
                        (mk_block_nl_join ctx ~outer:left ~inner:right
                           ~pred:extra ~mem:0)
                    end)
                 rights;
               (* indexed nested loops: inner side must be a single base
                  relation with an index on its key column *)
               if keys <> [] && options.enable_index_join
               && s2 land (s2 - 1) = 0
               then begin
                 match scan_info_of s2 with
                 | None -> ()
                 | Some (table, alias, filter) ->
                   List.iter
                     (fun (outer_col, inner_col) ->
                        let info = Stats_env.rel ctx.env ~alias in
                        if List.mem inner_col info.Stats_env.indexed_cols
                        then begin
                          ctx.enumerated <- ctx.enumerated + 1;
                          let other_keys =
                            List.filter
                              (fun (o, i) -> (o, i) <> (outer_col, inner_col))
                              keys
                          in
                          let extra_all =
                            List.map
                              (fun (o, i) -> Expr.(Cmp (Eq, Col o, Col i)))
                              other_keys
                            @ extra_list
                          in
                          let extra =
                            match extra_all with
                            | [] -> None
                            | l -> Some (Expr.conjoin l)
                          in
                          consider mask
                            (mk_index_nl_join ctx ~outer:left ~table ~alias
                               ~outer_col ~inner_col ~inner_filter:filter
                               ~extra
                               ~inner_schema:info.Stats_env.rel_schema)
                        end)
                     keys
               end)
            lefts
        end;
        s1 := (!s1 - 1) land mask
      done;
      (* Cross-product fallback when nothing connected this subset. *)
      if not (Hashtbl.mem best mask) then begin
        let s1 = ref (mask land (mask - 1)) in
        while !s1 > 0 do
          let s2 = mask lxor !s1 in
          (match bucket !s1, bucket s2 with
           | left :: _, right :: _ ->
             let cplx = spanning complexes !s1 s2 in
             let pred =
               match cplx with
               | [] -> None
               | l -> Some (Expr.conjoin (List.map (fun ci -> ci.expr) l))
             in
             ctx.enumerated <- ctx.enumerated + 1;
             consider mask
               (mk_block_nl_join ctx ~outer:left ~inner:right ~pred ~mem:0)
           | _ -> ());
          s1 := (!s1 - 1) land mask
        done
      end
    end
  done;
  match bucket full with
  | [] -> raise (Planning_error "join enumeration produced no plan")
  | plans -> plans

(* ------------------------------------------------------------------ *)
(* Full query planning.                                                *)

let agg_fn_of = function
  | Mqr_sql.Ast.Count -> Aggregate.Count
  | Mqr_sql.Ast.Sum -> Aggregate.Sum
  | Mqr_sql.Ast.Avg -> Aggregate.Avg
  | Mqr_sql.Ast.Min -> Aggregate.Min
  | Mqr_sql.Ast.Max -> Aggregate.Max

let agg_specs (q : Query.t) =
  List.map
    (fun (a : Query.agg) ->
       { Aggregate.fn = agg_fn_of a.Query.fn;
         distinct_arg = a.Query.distinct_arg;
         arg = a.Query.arg;
         out_name = a.Query.out_name })
    q.Query.aggs

let plan_query ctx options (q : Query.t) =
  let infos = List.map (conj_info ctx.env) q.Query.conjuncts in
  let local, rest =
    List.partition (fun ci -> List.length ci.owners <= 1) infos
  in
  let join_conjs, complex_conjs =
    List.partition
      (fun ci ->
         List.length ci.owners = 2
         &&
         match Expr.shape_of ci.expr with
         | Expr.S_col_eq_col _ | Expr.S_col_cmp_col _ -> true
         | _ -> false)
      rest
  in
  (* Interesting orders: join-key columns (merge joins), grouping columns
     (streaming aggregation), and a single ascending ORDER BY column (sort
     elision). *)
  let interesting =
    let join_cols =
      List.concat_map
        (fun ci ->
           match Expr.shape_of ci.expr with
           | Expr.S_col_eq_col (a, b) -> [ a; b ]
           | _ -> [])
        join_conjs
    in
    let order_cols =
      match q.Query.order_by with [ (c, true) ] -> [ c ] | _ -> []
    in
    List.sort_uniq String.compare (join_cols @ q.Query.group_by @ order_cols)
  in
  (* Base access paths with local predicates pushed down. *)
  let rels =
    List.map
      (fun (r : Query.relation) ->
         let rel = Stats_env.rel ctx.env ~alias:r.Query.alias in
         let my_local =
           List.filter_map
             (fun ci ->
                match ci.owners with
                | [ a ] when a = r.Query.alias -> Some ci.expr
                | _ -> None)
             local
         in
         (r.Query.alias, access_paths ctx ~rel ~local:my_local ~interesting))
      q.Query.relations
  in
  let candidates =
    match rels with
    | [ (_, paths) ] -> paths
    | _ -> optimize_joins ctx options ~rels ~join_conjs ~complex_conjs ~interesting
  in
  (* Complete each join candidate with aggregation / projection / ordering
     and keep the cheapest finished plan; a candidate that already delivers
     the needed order skips its sort, one grouped on the grouping column
     aggregates in a streaming pass. *)
  let complete joined =
    let with_agg =
      if q.Query.aggs = [] && q.Query.group_by = [] then joined
      else
        mk_aggregate ctx ~input:joined ~group_by:q.Query.group_by
          ~aggs:(agg_specs q) ~mem:0
    in
    let with_having =
      match q.Query.having with
      | None -> with_agg
      | Some pred -> mk_filter ctx ~input:with_agg ~pred
    in
    (* Sort before projecting: ORDER BY may reference columns that are not
       in the SELECT list, and projection preserves row order. *)
    let with_sort =
      match q.Query.order_by with
      | [] -> with_having
      | [ (c, true) ] when List.mem c (Plan.orders_of with_having) ->
        with_having (* order already delivered: sort elided *)
      | keys -> mk_sort ctx ~input:with_having ~keys ~mem:0
    in
    let with_project =
      if q.Query.aggs = [] && q.Query.group_by = [] then
        mk_project ctx ~input:with_sort ~cols:q.Query.select_cols
      else with_sort
    in
    match q.Query.limit with
    | None -> with_project
    | Some n -> mk_limit ctx ~input:with_project ~n
  in
  match List.map complete candidates with
  | [] -> raise (Planning_error "no plan produced")
  | first :: rest ->
    List.fold_left
      (fun (a : Plan.t) (b : Plan.t) ->
         if b.Plan.est.Plan.total_ms < a.Plan.est.Plan.total_ms then b else a)
      first rest

let optimize ?(options = default_options) ?clock ~model ~env q =
  let ctx =
    make_ctx ~planning_mem:options.planning_mem_pages ~max_dop:options.max_dop
      ~model ~env ()
  in
  let plan = plan_query ctx options q in
  (match clock with
   | Some c -> Sim_clock.charge_optimizer c ~plans:ctx.enumerated
   | None -> ());
  { plan; plans_enumerated = ctx.enumerated }

(* ------------------------------------------------------------------ *)
(* Re-costing an existing structure under improved statistics.         *)

let recost ?(planning_mem = default_options.planning_mem_pages) ?(max_dop = 1)
    ~model ~env plan =
  let ctx = make_ctx ~planning_mem ~max_dop ~model ~env () in
  let rec go (p : Plan.t) =
    let keep_mem = p.Plan.mem in
    let rebuilt =
      match p.Plan.node with
      | Plan.Seq_scan { table; alias; filter } ->
        mk_seq_scan ctx ~table ~alias ~filter ~schema:p.Plan.schema
      | Plan.Index_scan { table; alias; index_col; lo; hi; filter } ->
        let used_sel =
          (* selectivity of the bound constraints alone *)
          let conj_of_bound =
            let col = Expr.Col index_col in
            let lo_e =
              Option.map
                (fun (v, incl) ->
                   Expr.Cmp ((if incl then Expr.Ge else Expr.Gt), col, Expr.Const v))
                lo
            in
            let hi_e =
              Option.map
                (fun (v, incl) ->
                   Expr.Cmp ((if incl then Expr.Le else Expr.Lt), col, Expr.Const v))
                hi
            in
            Expr.conjoin (List.filter_map Fun.id [ lo_e; hi_e ])
          in
          sel ctx conj_of_bound
        in
        mk_index_scan ctx ~table ~alias ~index_col ~lo ~hi ~filter
          ~schema:p.Plan.schema ~index_sel:used_sel
      | Plan.Hash_join { build; probe; keys; extra; rf } ->
        mk_hash_join ctx ~build:(go build) ~probe:(go probe) ~keys ~extra
          ~mem:keep_mem ~with_rf:(rf <> [])
      | Plan.Index_nl_join
          { outer; table; alias; outer_col; inner_col; inner_filter; extra } ->
        let info = Stats_env.rel ctx.env ~alias in
        mk_index_nl_join ctx ~outer:(go outer) ~table ~alias ~outer_col
          ~inner_col ~inner_filter ~extra
          ~inner_schema:info.Stats_env.rel_schema
      | Plan.Block_nl_join { outer; inner; pred } ->
        mk_block_nl_join ctx ~outer:(go outer) ~inner:(go inner) ~pred
          ~mem:keep_mem
      | Plan.Merge_join { left; right; keys; extra; rf; _ } ->
        mk_merge_join ctx ~left:(go left) ~right:(go right) ~keys ~extra
          ~mem:keep_mem ~with_rf:(rf <> [])
      | Plan.Aggregate { input; group_by; aggs; _ } ->
        mk_aggregate ctx ~input:(go input) ~group_by ~aggs ~mem:keep_mem
      | Plan.Sort { input; keys } ->
        mk_sort ctx ~input:(go input) ~keys ~mem:keep_mem
      | Plan.Project { input; cols } -> mk_project ctx ~input:(go input) ~cols
      | Plan.Filter { input; pred } -> mk_filter ctx ~input:(go input) ~pred
      | Plan.Limit { input; n } -> mk_limit ctx ~input:(go input) ~n
      | Plan.Collect { input; spec; cid } ->
        mk_collect ctx ~input:(go input) ~spec ~cid
      | Plan.Materialized { on_disk; _ } ->
        let rows = p.Plan.est.Plan.rows and width = p.Plan.est.Plan.width in
        let op_ms =
          if on_disk then
            Cost_model.seq_scan_ms ctx.model
              ~pages:(Cost_model.pages ~rows ~width) ~rows
          else 0.0
        in
        { p with Plan.est = { p.Plan.est with Plan.op_ms; total_ms = op_ms } }
    in
    { rebuilt with Plan.id = p.Plan.id }
  in
  go plan

(* ------------------------------------------------------------------ *)
(* Calibration of T_opt,estimated (worst case: star join).             *)

let binom n k =
  let k = min k (n - k) in
  if k < 0 then 0.0
  else begin
    let r = ref 1.0 in
    for i = 1 to k do
      r := !r *. float_of_int (n - k + i) /. float_of_int i
    done;
    !r
  end

let estimated_opt_ms ~model ~relations =
  let n = max 1 relations in
  (* Connected subsets of a star of n relations contain the hub; a subset
     of size k admits 2(k-1) ordered connected splits, each costed with up
     to two physical alternatives, plus access-path enumeration. *)
  let count = ref (2.0 *. float_of_int n) in
  for k = 2 to n do
    count := !count +. (binom (n - 1) (k - 1) *. 4.0 *. float_of_int (k - 1))
  done;
  !count *. model.Sim_clock.opt_per_plan_ms
