(** Annotated physical query execution plans.

    Every node carries the optimizer's estimates (rows, bytes, per-operator
    and cumulative cost) — the paper's *annotated query execution plan* —
    plus its memory demands and the memory actually granted by the Memory
    Manager. *)

open Mqr_storage

type bound = (Value.t * bool) option  (** (value, inclusive?) *)

type est = {
  rows : float;
  width : float;    (** average output tuple bytes *)
  op_ms : float;    (** this operator's own estimated time at granted memory *)
  total_ms : float; (** cumulative, children included *)
}

(** A candidate runtime-filter site attached to a join by the optimizer:
    the build/left side's key values, published at run time as a bloom
    filter plus min-max bounds (see {!Mqr_exec.Runtime_filter}), prune the
    probe/right-side scans that own [rf_probe_col]. *)
type rf = {
  rf_build_col : string;
  rf_probe_col : string;
  rf_sel : float;  (** estimated fraction of probe rows passing *)
  rf_sites : string list;
      (** aliases of probe-side scans owning the column *)
}

type node =
  | Seq_scan of { table : string; alias : string; filter : Mqr_expr.Expr.t option }
  | Index_scan of {
      table : string;
      alias : string;
      index_col : string;  (** qualified *)
      lo : bound;
      hi : bound;
      filter : Mqr_expr.Expr.t option;  (** residual, includes the bounds *)
    }
  | Hash_join of {
      build : t;
      probe : t;
      keys : (string * string) list;  (** (probe column, build column) *)
      extra : Mqr_expr.Expr.t option;
      rf : rf list;  (** runtime-filter annotations, empty when disabled *)
    }
  | Index_nl_join of {
      outer : t;
      table : string;   (** inner base table *)
      alias : string;
      outer_col : string;
      inner_col : string;  (** qualified inner join column (indexed) *)
      inner_filter : Mqr_expr.Expr.t option;
      extra : Mqr_expr.Expr.t option;
    }
  | Block_nl_join of { outer : t; inner : t; pred : Mqr_expr.Expr.t option }
  | Merge_join of {
      left : t;
      right : t;
      keys : (string * string) list;  (** (left column, right column) *)
      extra : Mqr_expr.Expr.t option;
      left_sorted : bool;   (** input already ordered on its key: no sort *)
      right_sorted : bool;
      rf : rf list;  (** left-side filters pruning the right side *)
    }
  | Aggregate of {
      input : t;
      group_by : string list;
      aggs : Mqr_exec.Aggregate.spec list;
      pre_sorted : bool;
          (** input ordered on the grouping column: streaming aggregation *)
    }
  | Filter of { input : t; pred : Mqr_expr.Expr.t }
      (** standalone filter, e.g. a HAVING predicate over aggregate output *)
  | Sort of { input : t; keys : (string * bool) list }
  | Project of { input : t; cols : string list }
  | Limit of { input : t; n : int }
  | Collect of { input : t; spec : Mqr_exec.Collector.spec; cid : int }
      (** statistics-collector; [cid] identifies the collection point *)
  | Materialized of { name : string; covers : string list; on_disk : bool }
      (** placeholder for an already-computed intermediate result: [covers]
          lists the base-relation aliases folded into it.  In-memory
          intermediates cost nothing to re-consume (they stay pipelined);
          on-disk ones pay a scan.  Only the dispatcher creates these. *)

and t = {
  id : int;
  node : node;
  schema : Schema.t;
  est : est;
  min_mem : int;  (** pages *)
  max_mem : int;  (** pages *)
  mutable mem : int;  (** granted pages; meaningful for memory consumers *)
  dop : int;
      (** degree of parallelism: partitions the operator splits its work
          into (1 = serial).  A plan property — deterministic, re-chosen on
          re-optimization — independent of how many real domains execute
          the partitions. *)
}

(** Children in execution order (left/build/outer first). *)
val children : t -> t list

(** Rebuild a node with new children (same order and count as [children]).
    @raise Invalid_argument on a count mismatch. *)
val with_children : t -> t list -> t

(** Does this operator consume working memory (join/sort/aggregate)? *)
val is_memory_consumer : t -> bool

(** Pre-order fold. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** All nodes, pre-order. *)
val nodes : t -> t list

val find : t -> int -> t option

(** Base-relation aliases mentioned under this node. *)
val aliases : t -> string list

(** Columns by which the node's output arrives in ascending order
    (interesting orders). *)
val orders_of : t -> string list

(** Total number of join operators in the plan. *)
val join_count : t -> int

(** One-line operator name for display. *)
val op_name : t -> string

(** Pretty tree with annotations. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
