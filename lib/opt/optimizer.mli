(** System-R-style dynamic-programming query optimizer.

    Enumerates join orders (bushy, with an ordered build/probe choice per
    split), access paths (sequential vs B+-tree range scan) and join
    algorithms (hash join, indexed nested loops, block nested loops as a
    cross-product fallback), costing each candidate with {!Cost_model}
    under the current {!Stats_env}.  The winning plan is returned fully
    annotated — every node carries the estimates the run-time compares
    observations against.

    The number of candidates costed is reported (and charged to the
    simulated clock when one is supplied): it is the basis of the paper's
    [T_opt,estimated] calibration. *)

open Mqr_storage

type options = {
  enable_index_join : bool;
  enable_merge_join : bool;
  enable_bushy : bool;   (** false restricts the right side to singletons *)
  enable_runtime_filters : bool;
  (** annotate hash/merge joins with candidate runtime-filter sites
      ({!Plan.rf}) and credit the filtered probe cardinality in their
      cost; the dispatcher then builds and pushes the filters down. *)
  planning_mem_pages : int;
  (** memory a consumer is assumed to receive when costing candidate plans
      (before the Memory Manager has run).  Finite, so that build-side
      choice and spill risk influence plan selection, as in System R.
      Granted memory (set on plan nodes) always takes precedence. *)
  max_dop : int;
  (** maximum degree of parallelism per operator.  Candidate degrees are
      powers of two up to this cap; each operator gets the cheapest degree
      under {!Cost_model.parallel_ms} (exchange + startup vs divided
      work).  1 (the default) disables parallel planning entirely: plans,
      costs and traces are byte-identical to a serial build. *)
}

val default_options : options

type result = {
  plan : Plan.t;
  plans_enumerated : int;
}

exception Planning_error of string

(** [optimize ?options ?clock ~model ~env query] plans the bound query.
    When [clock] is given, optimizer time ([plans * opt_per_plan_ms]) is
    charged to it. *)
val optimize :
  ?options:options -> ?clock:Sim_clock.t -> model:Sim_clock.model ->
  env:Stats_env.t -> Mqr_sql.Query.t -> result

(** Recompute every annotation of an existing plan bottom-up under
    (possibly improved) statistics, *keeping the structure and the memory
    grants*: the result's [total_ms] is the paper's [T_cur-plan,improved]
    when [env] carries observed overrides.  Memory demands are refreshed
    from the new size estimates; granted memory is re-used where positive,
    otherwise the maximum demand is assumed.  [max_dop] lets the re-cost
    re-choose each operator's degree of parallelism from the improved
    statistics — the mechanism by which a decision point repairs a skewed
    partitioning. *)
val recost :
  ?planning_mem:int -> ?max_dop:int -> model:Sim_clock.model ->
  env:Stats_env.t -> Plan.t -> Plan.t

(** Calibrated worst-case (star join) optimization time for a query with
    [relations] relations — the paper's [T_opt,estimated]. *)
val estimated_opt_ms : model:Sim_clock.model -> relations:int -> float
