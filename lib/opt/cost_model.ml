open Mqr_storage

let page_bytes = float_of_int Heap_file.page_size_bytes

let pages ~rows ~width = Float.max 1.0 (ceil (rows *. width /. page_bytes))

let seq_scan_ms (m : Sim_clock.model) ~pages ~rows =
  (pages *. m.seq_read_ms) +. (rows *. m.cpu_tuple_ms)

let index_scan_ms (m : Sim_clock.model) ~match_rows ~table_pages =
  let descent = 2.0 *. m.rand_read_ms in
  let fetches = Float.min match_rows table_pages *. m.rand_read_ms in
  descent +. fetches +. (match_rows *. m.cpu_tuple_ms)

let hash_join_ms (m : Sim_clock.model) ~build_rows ~build_pages ~probe_rows
    ~probe_pages ~out_rows ~mem_pages =
  let passes =
    Mqr_exec.Join.hash_join_passes ~mem_pages
      ~build_pages:(int_of_float build_pages)
  in
  let spill =
    float_of_int (passes - 1)
    *. ((build_pages +. probe_pages) *. (m.write_ms +. m.seq_read_ms)
        +. ((build_rows +. probe_rows) *. m.hash_tuple_ms))
  in
  (* The small per-build-page term models hash-table memory setup; it also
     breaks cost ties toward building on the smaller input, as System R
     does. *)
  spill
  +. ((build_rows +. probe_rows) *. m.hash_tuple_ms)
  +. (out_rows *. m.cpu_tuple_ms)
  +. (build_pages *. 0.02)

let index_nl_join_ms (m : Sim_clock.model) ~outer_rows ~out_rows =
  (* One leaf-level probe per outer row (upper levels cached) plus one
     fetch per produced match. *)
  (outer_rows *. (m.rand_read_ms +. m.cpu_tuple_ms))
  +. (out_rows *. (m.rand_read_ms +. m.cpu_tuple_ms))

let block_nl_join_ms (m : Sim_clock.model) ~outer_rows ~outer_pages
    ~inner_rows ~inner_pages ~out_rows ~mem_pages =
  let blocks = Float.max 1.0 (ceil (outer_pages /. float_of_int (max 1 mem_pages))) in
  ((blocks -. 1.0) *. inner_pages *. m.seq_read_ms)
  +. (outer_rows *. inner_rows *. m.cpu_tuple_ms)
  +. (out_rows *. m.cpu_tuple_ms)

let aggregate_ms (m : Sim_clock.model) ~in_rows ~in_pages ~groups ~group_pages
    ~mem_pages =
  let spill =
    if group_pages > float_of_int (max 1 mem_pages) then
      in_pages *. (m.write_ms +. m.seq_read_ms)
    else 0.0
  in
  spill +. (in_rows *. m.hash_tuple_ms) +. (groups *. m.cpu_tuple_ms)

let sort_ms (m : Sim_clock.model) ~rows ~data_pages ~mem_pages =
  let passes =
    Mqr_exec.Sort.sort_passes ~mem_pages ~data_pages:(int_of_float data_pages)
  in
  let log2n = if rows <= 2.0 then 1.0 else ceil (log rows /. log 2.0) in
  (rows *. log2n *. m.sort_tuple_ms)
  +. (float_of_int (passes - 1) *. data_pages *. (m.write_ms +. m.seq_read_ms))

let merge_join_ms (m : Sim_clock.model) ~left_rows ~left_pages ~right_rows
    ~right_pages ~out_rows ~mem_pages ~left_sorted ~right_sorted =
  let half = max 2 (mem_pages / 2) in
  (if left_sorted then 0.0
   else sort_ms m ~rows:left_rows ~data_pages:left_pages ~mem_pages:half)
  +. (if right_sorted then 0.0
      else sort_ms m ~rows:right_rows ~data_pages:right_pages ~mem_pages:half)
  +. ((left_rows +. right_rows +. out_rows) *. m.cpu_tuple_ms)

let aggregate_sorted_ms (m : Sim_clock.model) ~in_rows ~groups =
  (in_rows +. groups) *. m.cpu_tuple_ms

let project_ms (m : Sim_clock.model) ~rows = rows *. m.cpu_tuple_ms
let limit_ms (m : Sim_clock.model) ~rows = rows *. m.cpu_tuple_ms

let materialize_ms (m : Sim_clock.model) ~pages =
  pages *. (m.write_ms +. m.seq_read_ms)

(* Overhead of one runtime filter: building it from the build/left side
   plus testing every probe/right-side row.  Rates are the executor's own
   (Runtime_filter), kept outside the model so estimation error stays a
   cardinality error. *)
let runtime_filter_ms ~build_rows ~probe_rows =
  (build_rows *. Mqr_exec.Runtime_filter.build_tuple_ms)
  +. (probe_rows *. Mqr_exec.Runtime_filter.probe_tuple_ms)

(* ------------------------------------------------------------------ *)
(* Parallel (partitioned) execution.  The executor charges the slowest
   worker plus the exchange and a per-worker startup fee
   (Mqr_exec.Parallel); the estimates below price the same three terms so
   estimated and actual parallel costs diverge only through cardinality
   error, exactly like the serial operators. *)

(* Shipping [pages] through the interconnect during a repartitioning
   exchange (hash or round-robin — both move every page). *)
let exchange_ms ~pages =
  pages *. Mqr_exec.Parallel.default_net_ms_per_page

(* Forking [dop] worker closures and merging their results. *)
let startup_ms ~dop =
  Mqr_exec.Parallel.startup_ms *. float_of_int (max 0 (dop - 1))

(* Cost of running an operator partitioned [dop] ways: [per_worker] prices
   one worker's share (the partitions are assumed even, so the slowest
   worker costs the same as any other), [exchange_pages] is everything
   that crosses the interconnect first. *)
let parallel_ms ~dop ~exchange_pages ~per_worker =
  per_worker +. exchange_ms ~pages:exchange_pages +. startup_ms ~dop

let fudge = Mqr_exec.Join.hash_join_fudge

let hash_join_mem ~build_pages =
  let need = int_of_float (ceil (fudge *. build_pages)) + 1 in
  let min_m = int_of_float (ceil (sqrt (fudge *. build_pages))) + 1 in
  (min min_m need, need)

let sort_mem ~data_pages =
  let need = int_of_float (ceil data_pages) in
  let min_m = max 2 (int_of_float (ceil (sqrt data_pages))) in
  (min min_m need, max 1 need)

let aggregate_mem ~group_pages =
  let need = int_of_float (ceil (fudge *. group_pages)) + 1 in
  let min_m = max 1 (int_of_float (ceil (sqrt group_pages))) in
  (min min_m need, need)

let merge_join_mem ~left_pages ~right_pages =
  let min_l, max_l = sort_mem ~data_pages:left_pages in
  let min_r, max_r = sort_mem ~data_pages:right_pages in
  (min_l + min_r, max_l + max_r)

let block_nl_join_mem ~outer_pages =
  let need = int_of_float (ceil outer_pages) in
  (1, max 1 need)
