open Mqr_storage

type bound = (Value.t * bool) option

type est = {
  rows : float;
  width : float;
  op_ms : float;
  total_ms : float;
}

(* A candidate runtime-filter site the optimizer attached to a join: the
   build/left side's key values, published at run time as a bloom filter
   plus min-max bounds, prune the probe/right-side scans that own
   [rf_probe_col].  [rf_sel] is the estimated fraction of probe rows
   passing the filter. *)
type rf = {
  rf_build_col : string;
  rf_probe_col : string;
  rf_sel : float;
  rf_sites : string list;  (* aliases of probe-side scans owning the column *)
}

type node =
  | Seq_scan of { table : string; alias : string; filter : Mqr_expr.Expr.t option }
  | Index_scan of {
      table : string;
      alias : string;
      index_col : string;
      lo : bound;
      hi : bound;
      filter : Mqr_expr.Expr.t option;
    }
  | Hash_join of {
      build : t;
      probe : t;
      keys : (string * string) list;
      extra : Mqr_expr.Expr.t option;
      rf : rf list;
    }
  | Index_nl_join of {
      outer : t;
      table : string;
      alias : string;
      outer_col : string;
      inner_col : string;
      inner_filter : Mqr_expr.Expr.t option;
      extra : Mqr_expr.Expr.t option;
    }
  | Block_nl_join of { outer : t; inner : t; pred : Mqr_expr.Expr.t option }
  | Merge_join of {
      left : t;
      right : t;
      keys : (string * string) list;
      extra : Mqr_expr.Expr.t option;
      left_sorted : bool;
      right_sorted : bool;
      rf : rf list;
    }
  | Aggregate of {
      input : t;
      group_by : string list;
      aggs : Mqr_exec.Aggregate.spec list;
      pre_sorted : bool;
          (* input ordered on the grouping column: streaming aggregation *)
    }
  | Filter of { input : t; pred : Mqr_expr.Expr.t }
  | Sort of { input : t; keys : (string * bool) list }
  | Project of { input : t; cols : string list }
  | Limit of { input : t; n : int }
  | Collect of { input : t; spec : Mqr_exec.Collector.spec; cid : int }
  | Materialized of { name : string; covers : string list; on_disk : bool }

and t = {
  id : int;
  node : node;
  schema : Schema.t;
  est : est;
  min_mem : int;
  max_mem : int;
  mutable mem : int;
  dop : int;
      (* degree of parallelism: how many partitions the operator splits its
         work into (1 = serial).  Part of the plan, so it is deterministic
         and re-chosen on re-optimization; the size of the domain pool that
         actually runs the partitions is an execution property and never
         appears in the plan. *)
}

let children t =
  match t.node with
  | Seq_scan _ | Index_scan _ | Materialized _ -> []
  | Hash_join { build; probe; _ } -> [ build; probe ]
  | Index_nl_join { outer; _ } -> [ outer ]
  | Block_nl_join { outer; inner; _ } -> [ outer; inner ]
  | Merge_join { left; right; _ } -> [ left; right ]
  | Aggregate { input; _ } | Sort { input; _ } | Project { input; _ }
  | Limit { input; _ } | Collect { input; _ } | Filter { input; _ } ->
    [ input ]

let with_children t kids =
  let node =
    match t.node, kids with
    | (Seq_scan _ | Index_scan _ | Materialized _), [] -> t.node
    | Hash_join j, [ build; probe ] -> Hash_join { j with build; probe }
    | Index_nl_join j, [ outer ] -> Index_nl_join { j with outer }
    | Block_nl_join j, [ outer; inner ] -> Block_nl_join { j with outer; inner }
    | Merge_join j, [ left; right ] -> Merge_join { j with left; right }
    | Aggregate a, [ input ] -> Aggregate { a with input }
    | Sort s, [ input ] -> Sort { s with input }
    | Filter f, [ input ] -> Filter { f with input }
    | Project p, [ input ] -> Project { p with input }
    | Limit l, [ input ] -> Limit { l with input }
    | Collect c, [ input ] -> Collect { c with input }
    | _ -> invalid_arg "Plan.with_children: arity mismatch"
  in
  { t with node }

let is_memory_consumer t =
  match t.node with
  | Hash_join _ | Block_nl_join _ | Merge_join _ | Aggregate _ | Sort _ ->
    true
  | Seq_scan _ | Index_scan _ | Index_nl_join _ | Project _ | Limit _
  | Collect _ | Materialized _ | Filter _ -> false

let rec fold f acc t =
  List.fold_left (fold f) (f acc t) (children t)

let nodes t = List.rev (fold (fun acc n -> n :: acc) [] t)

let find t id = List.find_opt (fun n -> n.id = id) (nodes t)

let aliases t =
  let rec go acc t =
    match t.node with
    | Seq_scan { alias; _ } | Index_scan { alias; _ } -> alias :: acc
    | Index_nl_join { outer; alias; _ } -> go (alias :: acc) outer
    | Materialized { covers; _ } -> List.rev_append covers acc
    | _ -> List.fold_left go acc (children t)
  in
  List.rev (go [] t)

(* Columns by which the output of a node arrives in ascending order: index
   scans deliver key order, merge joins deliver their (equal-valued) key
   columns, sorts deliver their leading ascending key, and order-preserving
   operators pass their input's orders through. *)
let rec orders_of t =
  match t.node with
  | Index_scan { index_col; _ } -> [ index_col ]
  | Merge_join { keys = (l, r) :: _; _ } -> [ l; r ]
  | Sort { keys = (c, true) :: _; _ } -> [ c ]
  | Index_nl_join { outer; _ } -> orders_of outer
  | Collect { input; _ } | Limit { input; _ } | Filter { input; _ } ->
    orders_of input
  | Project { input; cols; _ } ->
    List.filter (fun c -> List.mem c cols) (orders_of input)
  | Seq_scan _ | Hash_join _ | Block_nl_join _ | Merge_join _ | Aggregate _
  | Sort _ | Materialized _ -> []

let join_count t =
  fold
    (fun acc n ->
       match n.node with
       | Hash_join _ | Index_nl_join _ | Block_nl_join _ | Merge_join _ ->
         acc + 1
       | _ -> acc)
    0 t

let op_name t =
  match t.node with
  | Seq_scan { alias; _ } -> "seq_scan(" ^ alias ^ ")"
  | Index_scan { alias; index_col; _ } ->
    Printf.sprintf "index_scan(%s on %s)" alias index_col
  | Hash_join { keys; _ } ->
    Printf.sprintf "hash_join(%s)"
      (String.concat ", " (List.map (fun (p, b) -> p ^ "=" ^ b) keys))
  | Index_nl_join { outer_col; inner_col; _ } ->
    Printf.sprintf "index_nl_join(%s=%s)" outer_col inner_col
  | Block_nl_join _ -> "block_nl_join"
  | Merge_join { keys; _ } ->
    Printf.sprintf "merge_join(%s)"
      (String.concat ", " (List.map (fun (l, r) -> l ^ "=" ^ r) keys))
  | Aggregate { group_by; _ } ->
    Printf.sprintf "aggregate(by %s)" (String.concat ", " group_by)
  | Sort { keys; _ } ->
    Printf.sprintf "sort(%s)" (String.concat ", " (List.map fst keys))
  | Project { cols; _ } -> Printf.sprintf "project(%d cols)" (List.length cols)
  | Filter { pred; _ } ->
    Printf.sprintf "filter(%s)" (Mqr_expr.Expr.to_sql pred)
  | Limit { n; _ } -> Printf.sprintf "limit(%d)" n
  | Collect { spec; cid; _ } ->
    Printf.sprintf "collect#%d(%d hists, %d distincts)" cid
      (List.length spec.Mqr_exec.Collector.hist_cols)
      (List.length spec.Mqr_exec.Collector.distinct_cols)
  | Materialized { name; on_disk; _ } ->
    Printf.sprintf "materialized(%s%s)" name (if on_disk then ", on disk" else "")

let rec pp_indented fmt ~indent t =
  let pad = String.make indent ' ' in
  Fmt.pf fmt "%s%s  [rows=%.0f width=%.0f op=%.1fms total=%.1fms" pad
    (op_name t) t.est.rows t.est.width t.est.op_ms t.est.total_ms;
  if is_memory_consumer t then
    Fmt.pf fmt " mem=%d/%d..%d" t.mem t.min_mem t.max_mem;
  if t.dop > 1 then Fmt.pf fmt " dop=%d" t.dop;
  (match t.node with
   | Merge_join { left_sorted; right_sorted; _ }
     when left_sorted || right_sorted ->
     Fmt.pf fmt " pre-sorted:%s%s"
       (if left_sorted then "L" else "")
       (if right_sorted then "R" else "")
   | Aggregate { pre_sorted = true; _ } -> Fmt.pf fmt " streaming"
   | _ -> ());
  (match t.node with
   | Hash_join { rf = _ :: _ as rf; _ } | Merge_join { rf = _ :: _ as rf; _ } ->
     Fmt.pf fmt " rf:[%s]"
       (String.concat "; "
          (List.map
             (fun f ->
                Printf.sprintf "%s~%.2f@%s" f.rf_probe_col f.rf_sel
                  (String.concat "," f.rf_sites))
             rf))
   | _ -> ());
  Fmt.pf fmt "]@.";
  List.iter (pp_indented fmt ~indent:(indent + 2)) (children t)

let pp fmt t = pp_indented fmt ~indent:0 t

let to_string t = Fmt.str "%a" pp t
