open Mqr_storage
module Catalog = Mqr_catalog.Catalog
module Column_stats = Mqr_catalog.Column_stats
module Query = Mqr_sql.Query

type rel_info = {
  alias : string;
  table : string;
  rows : float;
  pages : float;
  rel_schema : Schema.t;
  col_stats : (string * Column_stats.t) list;
  indexed_cols : string list;
}

type t = {
  mutable rels : rel_info list;
  overrides : (string, Column_stats.t) Hashtbl.t;
  local_selectivity : (string, float) Hashtbl.t;  (* by relation alias *)
}

let qualified_name col =
  if col.Schema.qualifier = "" then col.Schema.name
  else col.Schema.qualifier ^ "." ^ col.Schema.name

let rel_info_of catalog (r : Query.relation) =
  let tbl = Catalog.find_exn catalog r.Query.table in
  let schema = r.Query.rel_schema in
  (* heavy update activity since ANALYZE makes every statistic on the
     table one level less trustworthy (paper Section 2.5) *)
  let heavily_updated = Catalog.update_ratio tbl > 0.1 in
  let col_stats =
    List.mapi
      (fun i col ->
         let stats =
           if i < Array.length tbl.Catalog.stats then tbl.Catalog.stats.(i)
           else Column_stats.empty
         in
         let stats =
           if heavily_updated then Column_stats.mark_stale stats else stats
         in
         (qualified_name col, stats))
      (Schema.columns schema)
  in
  let indexed_cols =
    List.filter_map
      (fun col ->
         match Catalog.find_index tbl ~column:col.Schema.name with
         | Some _ -> Some (qualified_name col)
         | None -> None)
      (Schema.columns schema)
  in
  { alias = r.Query.alias;
    table = r.Query.table;
    rows = float_of_int tbl.Catalog.believed_rows;
    pages = float_of_int tbl.Catalog.believed_pages;
    rel_schema = schema;
    col_stats;
    indexed_cols }

let create catalog relations =
  { rels = List.map (rel_info_of catalog) relations;
    overrides = Hashtbl.create 16;
    local_selectivity = Hashtbl.create 4 }

let relations t = t.rels

let rel t ~alias =
  match List.find_opt (fun r -> r.alias = alias) t.rels with
  | Some r -> r
  | None -> invalid_arg ("Stats_env.rel: unknown alias " ^ alias)

let override t ~column stats = Hashtbl.replace t.overrides column stats

let override_rows t ~alias ~rows =
  t.rels <-
    List.map
      (fun r ->
         if r.alias = alias then
           { r with rows; pages = Float.max 1.0 (rows *. r.pages /. Float.max 1.0 r.rows) }
         else r)
      t.rels

let stats_of t column =
  match Hashtbl.find_opt t.overrides column with
  | Some s -> Some s
  | None ->
    List.find_map (fun r -> List.assoc_opt column r.col_stats) t.rels

let selectivity_env t = { Mqr_expr.Selectivity.stats_of = stats_of t }

let is_stale t column =
  match stats_of t column with
  | Some s -> s.Column_stats.stale
  | None -> false

let owns r column = List.mem_assoc column r.col_stats

let override_local_selectivity t ~alias ~selectivity =
  Hashtbl.replace t.local_selectivity alias selectivity

let local_selectivity t ~alias = Hashtbl.find_opt t.local_selectivity alias
