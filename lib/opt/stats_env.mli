(** Estimation environment for one optimization run.

    Wraps the relations of a query block with their believed sizes, column
    statistics and indexes.  Observed statistics (from run-time collectors)
    can be layered on top as overrides keyed by qualified column name —
    this is how the re-optimizer feeds improved estimates to the
    optimizer without touching the catalog. *)

open Mqr_storage

type rel_info = {
  alias : string;
  table : string;
  rows : float;      (** catalog's believed cardinality *)
  pages : float;
  rel_schema : Schema.t;
  col_stats : (string * Mqr_catalog.Column_stats.t) list;
      (** by qualified column name as it appears in the query *)
  indexed_cols : string list;  (** qualified columns with a B+-tree *)
}

type t

(** Build from the bound query's relations.  Temp tables (whose heap
    schemas already carry original qualifiers) are handled identically. *)
val create :
  Mqr_catalog.Catalog.t -> Mqr_sql.Query.relation list -> t

val relations : t -> rel_info list
val rel : t -> alias:string -> rel_info

(** Add/replace observed statistics for a qualified column. *)
val override : t -> column:string -> Mqr_catalog.Column_stats.t -> unit

(** Override the believed cardinality of a relation (improved estimate). *)
val override_rows : t -> alias:string -> rows:float -> unit

(** Estimation hook for {!Mqr_expr.Selectivity}. *)
val selectivity_env : t -> Mqr_expr.Selectivity.env

val stats_of : t -> string -> Mqr_catalog.Column_stats.t option

(** Any statistic relevant to this column marked stale in the catalog? *)
val is_stale : t -> string -> bool

(** Does the relation own this qualified column? *)
val owns : rel_info -> string -> bool

(** Install a measured selectivity for a relation's combined local
    predicate (start-time sampling probes); the optimizer prefers it over
    histogram-based estimation of the scan's output. *)
val override_local_selectivity : t -> alias:string -> selectivity:float -> unit

val local_selectivity : t -> alias:string -> float option
