(** Operator cost formulas, shared between the optimizer (estimation) and
    the re-optimizer (re-costing a running plan with improved estimates).
    Rates come from the same {!Mqr_storage.Sim_clock.model} the executor
    charges against: estimation error is cardinality error, not rate
    error. *)

open Mqr_storage

val page_bytes : float

(** Pages occupied by [rows] tuples of [width] bytes. *)
val pages : rows:float -> width:float -> float

val seq_scan_ms : Sim_clock.model -> pages:float -> rows:float -> float

(** Unclustered index scan fetching [match_rows] of a table with
    [table_pages] pages: B+-tree descent, leaf walk, then a random read
    per fetched row capped by the table size. *)
val index_scan_ms :
  Sim_clock.model -> match_rows:float -> table_pages:float -> float

val hash_join_ms :
  Sim_clock.model -> build_rows:float -> build_pages:float ->
  probe_rows:float -> probe_pages:float -> out_rows:float -> mem_pages:int ->
  float

val index_nl_join_ms :
  Sim_clock.model -> outer_rows:float -> out_rows:float -> float

val block_nl_join_ms :
  Sim_clock.model -> outer_rows:float -> outer_pages:float ->
  inner_rows:float -> inner_pages:float -> out_rows:float -> mem_pages:int ->
  float

val aggregate_ms :
  Sim_clock.model -> in_rows:float -> in_pages:float -> groups:float ->
  group_pages:float -> mem_pages:int -> float

val sort_ms :
  Sim_clock.model -> rows:float -> data_pages:float -> mem_pages:int -> float

(** Sort-merge join: sort both sides (half the grant each, skipped for a
    pre-sorted side) + merge. *)
val merge_join_ms :
  Sim_clock.model -> left_rows:float -> left_pages:float ->
  right_rows:float -> right_pages:float -> out_rows:float -> mem_pages:int ->
  left_sorted:bool -> right_sorted:bool -> float

(** Streaming aggregation over pre-grouped input: one CPU pass. *)
val aggregate_sorted_ms :
  Sim_clock.model -> in_rows:float -> groups:float -> float

val project_ms : Sim_clock.model -> rows:float -> float
val limit_ms : Sim_clock.model -> rows:float -> float

(** Materializing an intermediate to a temp table and reading it back —
    the re-optimization overhead [T_materialize] of Section 2.4. *)
val materialize_ms : Sim_clock.model -> pages:float -> float

(** Overhead of one runtime filter: build from [build_rows], probe every
    one of [probe_rows] (rates from {!Mqr_exec.Runtime_filter}).  The
    benefit side is modelled by costing the join over the filtered probe
    cardinality instead. *)
val runtime_filter_ms : build_rows:float -> probe_rows:float -> float

(** Parallel (partitioned) execution, priced with the same three terms the
    executor charges (slowest worker + exchange + startup) so estimated
    and actual parallel costs diverge only through cardinality error. *)

(** Interconnect cost of repartitioning [pages] across workers. *)
val exchange_ms : pages:float -> float

(** Forking [dop] worker closures and merging their results back. *)
val startup_ms : dop:int -> float

(** [parallel_ms ~dop ~exchange_pages ~per_worker] prices an operator
    split [dop] ways, where [per_worker] is the cost of one (even)
    partition's share. *)
val parallel_ms : dop:int -> exchange_pages:float -> per_worker:float -> float

(** Memory demands in pages: [(minimum, maximum)]. *)
val hash_join_mem : build_pages:float -> int * int
val sort_mem : data_pages:float -> int * int
val aggregate_mem : group_pages:float -> int * int
val block_nl_join_mem : outer_pages:float -> int * int
val merge_join_mem : left_pages:float -> right_pages:float -> int * int
