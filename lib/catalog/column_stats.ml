open Mqr_storage
module Histogram = Mqr_stats.Histogram

type t = {
  min_v : Value.t option;
  max_v : Value.t option;
  distinct : float option;
  histogram : Histogram.t option;
  stale : bool;
  dict : (string * float) list option;
  is_key : bool;
}

let empty =
  { min_v = None; max_v = None; distinct = None; histogram = None;
    stale = false; dict = None; is_key = false }

let build_dict values =
  let module SS = Set.Make (String) in
  let set =
    List.fold_left
      (fun acc v -> match v with Value.String s -> SS.add s acc | _ -> acc)
      SS.empty values
  in
  List.mapi (fun i s -> (s, float_of_int i)) (SS.elements set)

let analyze ?(kind = Histogram.Maxdiff) ?(buckets = 32) ?(is_key = false) values =
  let non_null = List.filter (fun v -> not (Value.is_null v)) values in
  match non_null with
  | [] -> { empty with is_key }
  | _ ->
    let has_string =
      List.exists (fun v -> match v with Value.String _ -> true | _ -> false)
        non_null
    in
    let dict = if has_string then Some (build_dict non_null) else None in
    let to_domain_raw v =
      match v, dict with
      | Value.String s, Some d -> List.assoc s d
      | Value.String _, None -> assert false
      | v, _ -> Value.to_float v
    in
    let domain = Array.of_list (List.map to_domain_raw non_null) in
    let hist = Histogram.build kind ~buckets domain in
    let min_v =
      List.fold_left (fun acc v -> Value.min_value acc v) Value.Null non_null
    in
    let max_v =
      List.fold_left (fun acc v -> Value.max_value acc v) Value.Null non_null
    in
    { min_v = (if Value.is_null min_v then None else Some min_v);
      max_v = (if Value.is_null max_v then None else Some max_v);
      distinct = Some (Histogram.distinct hist);
      histogram = Some hist;
      stale = false;
      dict;
      is_key }

let to_domain t v =
  match v with
  | Value.Null -> None
  | Value.String s ->
    (match t.dict with
     | Some d -> List.assoc_opt s d
     | None -> None)
  | v -> Some (Value.to_float v)

let drop_histogram t = { t with histogram = None }
let mark_stale t = { t with stale = true }

let pp fmt t =
  let pp_opt pp_v fmt = function
    | None -> Fmt.string fmt "-"
    | Some v -> pp_v fmt v
  in
  Fmt.pf fmt "{min=%a; max=%a; distinct=%a; hist=%a; stale=%b; key=%b}"
    (pp_opt Value.pp) t.min_v (pp_opt Value.pp) t.max_v
    (pp_opt Fmt.float) t.distinct
    (pp_opt (fun fmt h -> Fmt.string fmt (Histogram.kind_to_string (Histogram.kind h))))
    t.histogram t.stale t.is_key
