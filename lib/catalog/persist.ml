open Mqr_storage
module Histogram = Mqr_stats.Histogram

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* Scalar encodings.                                                   *)

let encode_value = function
  | Value.Null -> ""
  | Value.Bool b -> "b:" ^ string_of_bool b
  | Value.Int i -> "i:" ^ string_of_int i
  | Value.Float f -> "f:" ^ Printf.sprintf "%h" f
  | Value.String s -> "s:" ^ s
  | Value.Date d -> "d:" ^ string_of_int d

let decode_value s =
  if s = "" then Value.Null
  else if String.length s < 2 || s.[1] <> ':' then
    corrupt "bad value literal %S" s
  else begin
    let body = String.sub s 2 (String.length s - 2) in
    match s.[0] with
    | 'b' -> Value.Bool (bool_of_string body)
    | 'i' -> Value.Int (int_of_string body)
    | 'f' -> Value.Float (float_of_string body)
    | 's' -> Value.String body
    | 'd' -> Value.Date (int_of_string body)
    | c -> corrupt "unknown value tag %c" c
  end

let encode_ty = Value.ty_to_string

let decode_ty = function
  | "BOOL" -> Value.TBool
  | "INT" -> Value.TInt
  | "FLOAT" -> Value.TFloat
  | "STRING" -> Value.TString
  | "DATE" -> Value.TDate
  | s -> corrupt "unknown type %S" s

let encode_kind = Histogram.kind_to_string

let decode_kind = function
  | "equi-width" -> Histogram.Equi_width
  | "equi-depth" -> Histogram.Equi_depth
  | "maxdiff" -> Histogram.Maxdiff
  | "serial" -> Histogram.Serial
  | "v-optimal" -> Histogram.V_optimal
  | s -> corrupt "unknown histogram kind %S" s

let fl = string_of_float
let parse_fl s = try float_of_string s with Failure _ -> corrupt "bad float %S" s

let opt_to_string f = function None -> "" | Some v -> f v
let opt_of_string f = function "" -> None | s -> Some (f s)

(* ------------------------------------------------------------------ *)
(* Save.                                                               *)

let ( // ) = Filename.concat

let save_table dir (tbl : Catalog.table) =
  let name = tbl.Catalog.name in
  let schema = Heap_file.schema tbl.Catalog.heap in
  Csv.write_file (dir // (name ^ ".schema.csv"))
    (List.map
       (fun c ->
          [ c.Schema.name; encode_ty c.Schema.ty; string_of_int c.Schema.avg_width ])
       (Schema.columns schema));
  let rows = ref [] in
  Heap_file.iter tbl.Catalog.heap (fun _ t ->
      rows := Array.to_list (Array.map encode_value t) :: !rows);
  Csv.write_file (dir // (name ^ ".data.csv")) (List.rev !rows);
  let meta =
    [ [ "believed_rows"; string_of_int tbl.Catalog.believed_rows ];
      [ "believed_pages"; string_of_int tbl.Catalog.believed_pages ];
      [ "updates"; string_of_int tbl.Catalog.updates_since_analyze ];
      [ "stats_epoch"; string_of_int tbl.Catalog.stats_epoch ] ]
    @ List.map (fun ix -> [ "index"; ix.Catalog.column ]) tbl.Catalog.indexes
  in
  Csv.write_file (dir // (name ^ ".meta.csv")) meta;
  let stats_rows = ref [] in
  Array.iteri
    (fun i (st : Column_stats.t) ->
       let idx = string_of_int i in
       stats_rows :=
         [ "col"; idx;
           string_of_bool st.Column_stats.is_key;
           string_of_bool st.Column_stats.stale;
           opt_to_string fl st.Column_stats.distinct;
           opt_to_string encode_value st.Column_stats.min_v;
           opt_to_string encode_value st.Column_stats.max_v ]
         :: !stats_rows;
       (match st.Column_stats.histogram with
        | None -> ()
        | Some h ->
          stats_rows := [ "hist"; idx; encode_kind (Histogram.kind h) ] :: !stats_rows;
          List.iter
            (fun (b : Histogram.bucket) ->
               stats_rows :=
                 [ "bucket"; idx; fl b.Histogram.lo; fl b.Histogram.hi;
                   fl b.Histogram.rows; fl b.Histogram.distinct ]
                 :: !stats_rows)
            (Histogram.buckets h));
       match st.Column_stats.dict with
       | None -> ()
       | Some dict ->
         List.iter
           (fun (s, ord) -> stats_rows := [ "dict"; idx; s; fl ord ] :: !stats_rows)
           dict)
    tbl.Catalog.stats;
  Csv.write_file (dir // (name ^ ".stats.csv")) (List.rev !stats_rows)

let save catalog ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tables =
    List.sort (fun (a : Catalog.table) b -> compare a.Catalog.name b.Catalog.name)
      (Catalog.tables catalog)
  in
  Csv.write_file (dir // "tables.csv")
    (List.map (fun (t : Catalog.table) -> [ t.Catalog.name ]) tables);
  List.iter (save_table dir) tables

(* ------------------------------------------------------------------ *)
(* Load.                                                               *)

let load_table catalog dir name =
  let schema_rows = Csv.read_file (dir // (name ^ ".schema.csv")) in
  let columns =
    List.map
      (fun row ->
         match row with
         | [ cname; ty; width ] ->
           Schema.col ~width:(int_of_string width) cname (decode_ty ty)
         | _ -> corrupt "%s: bad schema row" name)
      schema_rows
  in
  let schema = Schema.make columns in
  let heap = Heap_file.create schema in
  List.iter
    (fun row ->
       let tuple = Array.of_list (List.map decode_value row) in
       if Array.length tuple <> Schema.arity schema then
         corrupt "%s: arity mismatch in data" name;
       Heap_file.append heap tuple)
    (Csv.read_file (dir // (name ^ ".data.csv")));
  let tbl = Catalog.add_table catalog name heap in
  (* meta *)
  List.iter
    (fun row ->
       match row with
       | [ "believed_rows"; v ] -> tbl.Catalog.believed_rows <- int_of_string v
       | [ "believed_pages"; v ] -> tbl.Catalog.believed_pages <- int_of_string v
       | [ "updates"; v ] -> tbl.Catalog.updates_since_analyze <- int_of_string v
       | [ "stats_epoch"; v ] -> tbl.Catalog.stats_epoch <- int_of_string v
       | [ "index"; column ] -> ignore (Catalog.create_index catalog ~table:name ~column)
       | _ -> corrupt "%s: bad meta row" name)
    (Csv.read_file (dir // (name ^ ".meta.csv")));
  (* stats: first pass collects per-column pieces *)
  let arity = Schema.arity schema in
  let base = Array.make arity Column_stats.empty in
  let hist_kind = Array.make arity None in
  let buckets : Histogram.bucket list array = Array.make arity [] in
  let dicts : (string * float) list array = Array.make arity [] in
  List.iter
    (fun row ->
       match row with
       | [ "col"; idx; is_key; stale; distinct; min_v; max_v ] ->
         let i = int_of_string idx in
         base.(i) <-
           { Column_stats.empty with
             Column_stats.is_key = bool_of_string is_key;
             stale = bool_of_string stale;
             distinct = opt_of_string parse_fl distinct;
             min_v = opt_of_string decode_value min_v;
             max_v = opt_of_string decode_value max_v }
       | [ "hist"; idx; kind ] ->
         hist_kind.(int_of_string idx) <- Some (decode_kind kind)
       | [ "bucket"; idx; lo; hi; rows; distinct ] ->
         let i = int_of_string idx in
         buckets.(i) <-
           { Histogram.lo = parse_fl lo; hi = parse_fl hi;
             rows = parse_fl rows; distinct = parse_fl distinct }
           :: buckets.(i)
       | [ "dict"; idx; s; ord ] ->
         let i = int_of_string idx in
         dicts.(i) <- (s, parse_fl ord) :: dicts.(i)
       | _ -> corrupt "%s: bad stats row" name)
    (Csv.read_file (dir // (name ^ ".stats.csv")));
  tbl.Catalog.stats <-
    Array.init arity (fun i ->
        let histogram =
          match hist_kind.(i) with
          | None -> None
          | Some kind ->
            Some (Histogram.of_buckets kind (Array.of_list (List.rev buckets.(i))))
        in
        let dict = match dicts.(i) with [] -> None | d -> Some (List.rev d) in
        { (base.(i)) with Column_stats.histogram; dict })

let load ~dir =
  let catalog = Catalog.create () in
  List.iter
    (fun row ->
       match row with
       | [ name ] -> load_table catalog dir name
       | _ -> corrupt "bad manifest row")
    (Csv.read_file (dir // "tables.csv"));
  catalog
