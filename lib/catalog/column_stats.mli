(** Per-column catalog statistics.

    Statistics can be degraded for the experiments (histogram dropped,
    marked stale, cardinalities falsified) — these are the error sources
    the paper's footnote 2 lists.  String columns carry a dictionary that
    maps each string to an ordinal in sort order, so histograms over the
    ordinal domain support both equality and range estimation. *)

open Mqr_storage

type t = {
  min_v : Value.t option;
  max_v : Value.t option;
  distinct : float option;
  histogram : Mqr_stats.Histogram.t option;
  stale : bool;  (** significant update activity since the stats were built *)
  dict : (string * float) list option;  (** string -> ordinal, sorted *)
  is_key : bool;  (** values are unique (declared key) *)
}

val empty : t

(** [analyze ?kind ?buckets ?is_key values] computes full statistics from a
    column's values (nulls skipped).  Strings are dictionary-encoded.
    [kind] defaults to [Maxdiff], [buckets] to 32. *)
val analyze :
  ?kind:Mqr_stats.Histogram.kind -> ?buckets:int -> ?is_key:bool ->
  Value.t list -> t

(** Map a typed value onto the histogram domain ([None] for nulls and for
    strings missing from the dictionary). *)
val to_domain : t -> Value.t -> float option

(** Degradations. *)
val drop_histogram : t -> t
val mark_stale : t -> t

val pp : Format.formatter -> t -> unit
