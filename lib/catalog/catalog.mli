(** System catalog: named tables, their storage, indexes and statistics.

    The catalog's *believed* cardinality of a table is kept separately from
    the heap file's true size so experiments can make the optimizer work
    from stale numbers, as real catalogs do. *)

open Mqr_storage

type index = {
  column : string;
  btree : Btree.t;
}

type table = {
  name : string;
  heap : Heap_file.t;
  mutable believed_rows : int;
  mutable believed_pages : int;
  mutable stats : Column_stats.t array;  (** per column position *)
  mutable indexes : index list;
  mutable updates_since_analyze : int;
      (** rows inserted/deleted since statistics were last collected; the
          inaccuracy rules treat heavily-updated tables' statistics as
          stale (paper Section 2.5) *)
  mutable stats_epoch : int;
      (** bumped every time ANALYZE refreshes the table's statistics;
          consumers holding results derived from the old statistics
          (cached plans, workload-level observed-statistics overlays)
          compare epochs to detect that the ground shifted under them *)
}

type t

val create : unit -> t

(** [add_table t name heap] registers a table with empty statistics;
    believed cardinality starts at the true size. *)
val add_table : t -> string -> Heap_file.t -> table

val find : t -> string -> table option
val find_exn : t -> string -> table
val drop_table : t -> string -> unit
val tables : t -> table list

(** Recompute every column's statistics (and believed sizes) from the heap.
    [kind] picks the histogram kind stored for all columns (default
    MaxDiff, as in Paradise). *)
val analyze_table :
  ?kind:Mqr_stats.Histogram.kind -> ?buckets:int -> ?keys:string list ->
  t -> string -> unit

(** Build a secondary B+-tree index on a column; returns it. *)
val create_index : t -> table:string -> column:string -> index

(** Rebuild every index of a table from its heap (needed after DELETE
    compaction reassigns rids). *)
val rebuild_indexes : t -> table:string -> unit

(** Record update activity (insertions/deletions) on a table. *)
val note_updates : t -> table:string -> int -> unit

(** Fraction of the table updated since last ANALYZE. *)
val update_ratio : table -> float

val find_index : table -> column:string -> index option

(** Column statistics by (table, bare column name). *)
val column_stats : table -> string -> Column_stats.t option
val column_index : table -> string -> int option

(** Degradations for experiments. *)
val degrade_drop_histogram : t -> table:string -> column:string -> unit

(** Remove every statistic for a column (as if it was never analyzed);
    the optimizer falls back to its default guesses. *)
val degrade_drop_column_stats : t -> table:string -> column:string -> unit
val degrade_mark_stale : t -> table:string -> column:string -> unit
val degrade_scale_cardinality : t -> table:string -> float -> unit
val degrade_set_histogram_kind :
  t -> table:string -> kind:Mqr_stats.Histogram.kind -> unit
