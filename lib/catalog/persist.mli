(** Saving and loading a whole catalog to a directory of CSV files.

    Layout under [dir]:
    - [tables.csv] — manifest of table names;
    - [<table>.schema.csv] — column name, type, declared width;
    - [<table>.data.csv] — tuples with type-tagged fields;
    - [<table>.meta.csv] — believed cardinality/pages, update counter,
      indexed columns;
    - [<table>.stats.csv] — per-column statistics including histogram
      buckets and string dictionaries.

    [load] rebuilds heap files, B+-tree indexes and statistics exactly,
    including any degradations (stale flags, falsified cardinalities) the
    saved catalog carried — so experiment setups round-trip. *)

exception Corrupt of string

val save : Catalog.t -> dir:string -> unit

(** @raise Corrupt on malformed files, [Sys_error] on IO problems. *)
val load : dir:string -> Catalog.t
