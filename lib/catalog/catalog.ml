open Mqr_storage

type index = {
  column : string;
  btree : Btree.t;
}

type table = {
  name : string;
  heap : Heap_file.t;
  mutable believed_rows : int;
  mutable believed_pages : int;
  mutable stats : Column_stats.t array;
  mutable indexes : index list;
  mutable updates_since_analyze : int;
  mutable stats_epoch : int;
}

type t = { tbls : (string, table) Hashtbl.t }

let create () = { tbls = Hashtbl.create 16 }

let add_table t name heap =
  if Hashtbl.mem t.tbls name then
    invalid_arg ("Catalog.add_table: duplicate table " ^ name);
  let table =
    { name;
      heap;
      believed_rows = Heap_file.tuple_count heap;
      believed_pages = Heap_file.page_count heap;
      stats = Array.make (Schema.arity (Heap_file.schema heap)) Column_stats.empty;
      indexes = [];
      updates_since_analyze = 0;
      stats_epoch = 0 }
  in
  Hashtbl.replace t.tbls name table;
  table

let find t name = Hashtbl.find_opt t.tbls name

let find_exn t name =
  match find t name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Catalog.find_exn: no table " ^ name)

let drop_table t name = Hashtbl.remove t.tbls name

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tbls []

let column_index table name =
  let schema = Heap_file.schema table.heap in
  let rec go i =
    if i >= Schema.arity schema then None
    else if (Schema.column schema i).Schema.name = name then Some i
    else go (i + 1)
  in
  go 0

let column_stats table name =
  match column_index table name with
  | Some i -> Some table.stats.(i)
  | None -> None

let analyze_table ?(kind = Mqr_stats.Histogram.Maxdiff) ?(buckets = 32)
    ?(keys = []) t name =
  let table = find_exn t name in
  let schema = Heap_file.schema table.heap in
  let arity = Schema.arity schema in
  let columns = Array.make arity [] in
  Heap_file.iter table.heap (fun _ tuple ->
      for i = 0 to arity - 1 do
        columns.(i) <- tuple.(i) :: columns.(i)
      done);
  table.stats <-
    Array.mapi
      (fun i values ->
         let is_key = List.mem (Schema.column schema i).Schema.name keys in
         Column_stats.analyze ~kind ~buckets ~is_key values)
      columns;
  table.believed_rows <- Heap_file.tuple_count table.heap;
  table.believed_pages <- Heap_file.page_count table.heap;
  table.updates_since_analyze <- 0;
  table.stats_epoch <- table.stats_epoch + 1

let create_index t ~table ~column =
  let tbl = find_exn t table in
  match column_index tbl column with
  | None -> invalid_arg ("Catalog.create_index: no column " ^ column)
  | Some ci ->
    let btree = Btree.create () in
    Heap_file.iter tbl.heap (fun rid tuple ->
        if not (Value.is_null tuple.(ci)) then Btree.insert btree tuple.(ci) rid);
    let index = { column; btree } in
    tbl.indexes <- index :: tbl.indexes;
    index

let rebuild_indexes t ~table =
  let tbl = find_exn t table in
  let columns = List.map (fun ix -> ix.column) tbl.indexes in
  tbl.indexes <- [];
  List.iter (fun column -> ignore (create_index t ~table ~column)) columns

let note_updates t ~table n =
  let tbl = find_exn t table in
  tbl.updates_since_analyze <- tbl.updates_since_analyze + n

let update_ratio tbl =
  if tbl.believed_rows <= 0 then
    if tbl.updates_since_analyze > 0 then 1.0 else 0.0
  else float_of_int tbl.updates_since_analyze /. float_of_int tbl.believed_rows

let find_index table ~column =
  List.find_opt (fun ix -> ix.column = column) table.indexes

let update_stats t ~table ~column f =
  let tbl = find_exn t table in
  match column_index tbl column with
  | None -> invalid_arg ("Catalog: no column " ^ column)
  | Some i -> tbl.stats.(i) <- f tbl.stats.(i)

let degrade_drop_histogram t ~table ~column =
  update_stats t ~table ~column Column_stats.drop_histogram

let degrade_drop_column_stats t ~table ~column =
  update_stats t ~table ~column (fun st ->
      { Column_stats.empty with Column_stats.is_key = st.Column_stats.is_key })

let degrade_mark_stale t ~table ~column =
  update_stats t ~table ~column Column_stats.mark_stale

let degrade_scale_cardinality t ~table factor =
  let tbl = find_exn t table in
  tbl.believed_rows <-
    max 1 (int_of_float (float_of_int tbl.believed_rows *. factor));
  tbl.believed_pages <-
    max 1 (int_of_float (float_of_int tbl.believed_pages *. factor))

let degrade_set_histogram_kind t ~table ~kind =
  let tbl = find_exn t table in
  let schema = Heap_file.schema tbl.heap in
  let keys =
    List.filteri (fun i _ -> tbl.stats.(i).Column_stats.is_key)
      (List.map (fun c -> c.Schema.name) (Schema.columns schema))
  in
  analyze_table ~kind ~keys t table
