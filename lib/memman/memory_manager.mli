(** The Memory Manager (paper Section 3.1, after Nag & DeWitt [15]).

    Each memory-consuming operator (hash join, sort, aggregate, block
    nested loops) declares a minimum and maximum memory demand derived
    from the optimizer's size estimates.  Given a fixed budget of buffer
    pages, the manager walks the operators in execution order and grants
    each its maximum if the remaining budget can still cover the minimums
    of all later operators, otherwise its minimum; leftovers are then
    topped up in the same order.  This reproduces the paper's Figure 3
    behaviour: under an 8 MB budget the first join gets its maximum, the
    second only its minimum — and runs in two passes until improved
    estimates shrink its demand.

    Re-invoking [allocate] after the re-optimizer installs improved
    estimates is the paper's *dynamic resource re-allocation*. *)

type t

val create : budget_pages:int -> t
val budget_pages : t -> int

(** Memory consumers of a plan in execution order (post-order, build side
    before probe side). *)
val consumers_in_order : Mqr_opt.Plan.t -> Mqr_opt.Plan.t list

(** [(min, max)] aggregate page demand over a plan's memory consumers
    (each counted as at least one page) — what a query asks a workload
    memory broker for. *)
val plan_demand : Mqr_opt.Plan.t -> int * int

type grant = {
  node_id : int;
  op : string;
  min_pages : int;
  max_pages : int;
  granted : int;
}

(** Mutates the plan's [mem] fields; returns the grants for reporting.
    Operators satisfying [frozen] keep their current grant untouched (they
    have already started executing). *)
val allocate : t -> ?frozen:(int -> bool) -> Mqr_opt.Plan.t -> grant list

val pp_grant : Format.formatter -> grant -> unit
