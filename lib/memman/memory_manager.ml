module Plan = Mqr_opt.Plan

type t = { budget : int }

let create ~budget_pages =
  if budget_pages < 1 then invalid_arg "Memory_manager.create";
  { budget = budget_pages }

let budget_pages t = t.budget

let consumers_in_order plan =
  let rec post acc (p : Plan.t) =
    let acc = List.fold_left post acc (Plan.children p) in
    if Plan.is_memory_consumer p then p :: acc else acc
  in
  List.rev (post [] plan)

let plan_demand plan =
  let consumers = consumers_in_order plan in
  let mn =
    List.fold_left (fun a (p : Plan.t) -> a + max 1 p.Plan.min_mem) 0 consumers
  in
  let mx =
    List.fold_left (fun a (p : Plan.t) -> a + max 1 p.Plan.max_mem) 0 consumers
  in
  (mn, max mn mx)

type grant = {
  node_id : int;
  op : string;
  min_pages : int;
  max_pages : int;
  granted : int;
}

let allocate t ?(frozen = fun _ -> false) plan =
  let consumers =
    List.filter (fun (p : Plan.t) -> not (frozen p.Plan.id))
      (consumers_in_order plan)
  in
  let frozen_pages =
    List.fold_left
      (fun acc (p : Plan.t) ->
         if frozen p.Plan.id && Plan.is_memory_consumer p then acc + p.Plan.mem
         else acc)
      0 (Plan.nodes plan)
  in
  let budget = max 0 (t.budget - frozen_pages) in
  (* First pass: max if the rest can still get their minimums, else min. *)
  let rec first_pass remaining = function
    | [] -> []
    | (p : Plan.t) :: rest ->
      let min_rest =
        List.fold_left (fun acc (q : Plan.t) -> acc + q.Plan.min_mem) 0 rest
      in
      let grant =
        if p.Plan.max_mem + min_rest <= remaining then p.Plan.max_mem
        else min p.Plan.min_mem remaining
      in
      (p, grant) :: first_pass (remaining - grant) rest
  in
  let granted = first_pass budget consumers in
  let used = List.fold_left (fun acc (_, g) -> acc + g) 0 granted in
  (* Second pass: top up with leftovers in execution order. *)
  let leftover = ref (budget - used) in
  let granted =
    List.map
      (fun ((p : Plan.t), g) ->
         let extra = min !leftover (p.Plan.max_mem - g) in
         leftover := !leftover - extra;
         (p, g + extra))
      granted
  in
  List.map
    (fun ((p : Plan.t), g) ->
       let g = max 1 g in
       p.Plan.mem <- g;
       { node_id = p.Plan.id;
         op = Plan.op_name p;
         min_pages = p.Plan.min_mem;
         max_pages = p.Plan.max_mem;
         granted = g })
    granted

let pp_grant fmt g =
  Fmt.pf fmt "%s: granted %d pages (demand %d..%d)" g.op g.granted g.min_pages
    g.max_pages
