open Mqr_storage

type arith_op = Add | Sub | Mul | Div
type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Const of Value.t
  | Arith of arith_op * t * t
  | Cmp of cmp_op * t * t
  | Between of t * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Udf of udf

and udf = {
  udf_name : string;
  args : t list;
  fn : Value.t list -> Value.t;
  declared_selectivity : float option;
}

let col c = Col c
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let str s = Const (Value.String s)
let date s = Const (Value.date_of_string s)
let ( =% ) a b = Cmp (Eq, a, b)
let ( <% ) a b = Cmp (Lt, a, b)
let ( <=% ) a b = Cmp (Le, a, b)
let ( >% ) a b = Cmp (Gt, a, b)
let ( >=% ) a b = Cmp (Ge, a, b)
let ( &&% ) a b = And (a, b)
let ( ||% ) a b = Or (a, b)
let between e lo hi = Between (e, lo, hi)

let udf ?selectivity ~name fn args =
  Udf { udf_name = name; args; fn; declared_selectivity = selectivity }

let rec columns = function
  | Col c -> [ c ]
  | Const _ -> []
  | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    columns a @ columns b
  | Between (e, lo, hi) -> columns e @ columns lo @ columns hi
  | Not e -> columns e
  | Udf u -> List.concat_map columns u.args

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc c -> And (acc, c)) e rest

let arith_eval op a b =
  match op, a, b with
  | _, Value.Null, _ | _, _, Value.Null -> Value.Null
  | Add, x, y -> Value.add x y
  | Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Sub, x, y -> Value.Float (Value.to_float x -. Value.to_float y)
  | Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Mul, x, y -> Value.Float (Value.to_float x *. Value.to_float y)
  | Div, x, y ->
    let d = Value.to_float y in
    if d = 0.0 then Value.Null else Value.Float (Value.to_float x /. d)

let cmp_eval op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else begin
    let c = Value.compare a b in
    let r =
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
    in
    Value.Bool r
  end

let truthy = function Value.Bool b -> b | Value.Null -> false | _ -> false

let rec compile schema e =
  match e with
  | Col c ->
    let i = Schema.index_of schema c in
    fun t -> t.(i)
  | Const v -> fun _ -> v
  | Arith (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun t -> arith_eval op (fa t) (fb t)
  | Cmp (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun t -> cmp_eval op (fa t) (fb t)
  | Between (e, lo, hi) ->
    let fe = compile schema e and flo = compile schema lo and fhi = compile schema hi in
    fun t ->
      let v = fe t in
      (match cmp_eval Ge v (flo t), cmp_eval Le v (fhi t) with
       | Value.Bool a, Value.Bool b -> Value.Bool (a && b)
       | _ -> Value.Null)
  | And (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun t -> Value.Bool (truthy (fa t) && truthy (fb t))
  | Or (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun t -> Value.Bool (truthy (fa t) || truthy (fb t))
  | Not a ->
    let fa = compile schema a in
    fun t -> Value.Bool (not (truthy (fa t)))
  | Udf u ->
    let fargs = List.map (compile schema) u.args in
    fun t -> u.fn (List.map (fun f -> f t) fargs)

let compile_pred schema e =
  let f = compile schema e in
  fun t -> truthy (f t)

let resolvable schema e =
  List.for_all
    (fun c ->
       match Schema.index_of schema c with
       | (_ : int) -> true
       | exception Not_found -> false
       | exception Schema.Ambiguous _ -> false)
    (columns e)

let rec type_of schema = function
  | Col c -> (Schema.column schema (Schema.index_of schema c)).Schema.ty
  | Const v -> Value.type_of v
  | Arith (_, a, b) ->
    (match type_of schema a, type_of schema b with
     | Value.TInt, Value.TInt -> Value.TInt
     | _ -> Value.TFloat)
  | Cmp _ | Between _ | And _ | Or _ | Not _ -> Value.TBool
  | Udf _ -> Value.TBool

type shape =
  | S_col_cmp_const of string * cmp_op * Value.t
  | S_col_between of string * Value.t * Value.t
  | S_col_eq_col of string * string
  | S_col_cmp_col of cmp_op * string * string
  | S_udf of udf
  | S_other

let flip = function
  | Eq -> Eq | Ne -> Ne | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le

let shape_of = function
  | Cmp (op, Col c, Const v) -> S_col_cmp_const (c, op, v)
  | Cmp (op, Const v, Col c) -> S_col_cmp_const (c, flip op, v)
  | Cmp (Eq, Col a, Col b) -> S_col_eq_col (a, b)
  | Cmp (op, Col a, Col b) -> S_col_cmp_col (op, a, b)
  | Between (Col c, Const lo, Const hi) -> S_col_between (c, lo, hi)
  | Udf u -> S_udf u
  | _ -> S_other

let cmp_sql = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let arith_sql = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let sql_value v =
  match v with
  | Value.String s -> "'" ^ s ^ "'"
  | Value.Date d -> "date '" ^ Value.date_to_string d ^ "'"
  | Value.Bool b -> if b then "true" else "false"
  | v -> Value.to_string v

let rec to_sql = function
  | Col c -> c
  | Const v -> sql_value v
  | Arith (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_sql a) (arith_sql op) (to_sql b)
  | Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (to_sql a) (cmp_sql op) (to_sql b)
  | Between (e, lo, hi) ->
    Printf.sprintf "%s between %s and %s" (to_sql e) (to_sql lo) (to_sql hi)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_sql a) (to_sql b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_sql a) (to_sql b)
  | Not a -> Printf.sprintf "(not %s)" (to_sql a)
  | Udf u ->
    Printf.sprintf "%s(%s)" u.udf_name
      (String.concat ", " (List.map to_sql u.args))

let pp fmt e = Fmt.string fmt (to_sql e)

let rec equal a b =
  match a, b with
  | Col x, Col y -> x = y
  | Const x, Const y -> (Value.is_null x && Value.is_null y) || Value.equal x y
  | Arith (o1, a1, b1), Arith (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Between (e1, l1, h1), Between (e2, l2, h2) ->
    equal e1 e2 && equal l1 l2 && equal h1 h2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | Not a1, Not a2 -> equal a1 a2
  | Udf u1, Udf u2 ->
    u1.udf_name = u2.udf_name && List.equal equal u1.args u2.args
  | _ -> false
