(** Selectivity estimation for predicates.

    Estimates are computed against whatever statistics are available
    through [stats_of] (the optimizer passes catalog statistics for base
    tables and *observed* statistics once collectors have reported).
    When no statistics help, the classic System-R magic numbers apply. *)

(** Defaults used when statistics are missing: equality 1/10, range 1/3,
    user-defined predicate 1/10, anything else 1/4. *)
val default_eq : float
val default_range : float
val default_udf : float
val default_other : float

type env = {
  stats_of : string -> Mqr_catalog.Column_stats.t option;
  (** statistics for a (qualified or bare) column name, if known *)
}

(** [selectivity env pred] estimates the fraction of input rows (or of the
    cross product, for join predicates) satisfying [pred].  Conjunctions
    multiply (attribute-value independence); disjunctions use
    inclusion–exclusion. *)
val selectivity : env -> Expr.t -> float

(** Estimated number of distinct values of a column, if statistics allow. *)
val distinct_of_column : env -> string -> float option

(** Estimated distinct values of a column *after* applying [pred] — used
    for group-count estimation.  Falls back to scaling the distinct count
    by the predicate's selectivity with a floor of 1. *)
val distinct_after : env -> Expr.t -> string -> float option

(** Join selectivity between two named columns given both sides' stats. *)
val equijoin_selectivity :
  env -> left:string -> right:string -> float

val pp_env_missing : Format.formatter -> string -> unit
