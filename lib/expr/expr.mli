(** Scalar expressions and predicates.

    Columns are referenced by (possibly qualified) name and resolved
    against a {!Mqr_storage.Schema.t} at compile time.  User-defined
    functions carry an opaque OCaml closure plus an optional declared
    selectivity — the paper's "predicate with a user-defined method whose
    selectivity the system cannot estimate". *)

open Mqr_storage

type arith_op = Add | Sub | Mul | Div
type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of string
  | Const of Value.t
  | Arith of arith_op * t * t
  | Cmp of cmp_op * t * t
  | Between of t * t * t  (** [Between (e, lo, hi)] — inclusive bounds *)
  | And of t * t
  | Or of t * t
  | Not of t
  | Udf of udf

and udf = {
  udf_name : string;
  args : t list;
  fn : Value.t list -> Value.t;
  declared_selectivity : float option;
}

(** Convenience constructors. *)
val col : string -> t
val int : int -> t
val float : float -> t
val str : string -> t
val date : string -> t
val ( =% ) : t -> t -> t
val ( <% ) : t -> t -> t
val ( <=% ) : t -> t -> t
val ( >% ) : t -> t -> t
val ( >=% ) : t -> t -> t
val ( &&% ) : t -> t -> t
val ( ||% ) : t -> t -> t
val between : t -> t -> t -> t

val udf :
  ?selectivity:float -> name:string -> (Value.t list -> Value.t) -> t list -> t

(** All column names referenced. *)
val columns : t -> string list

(** Split a predicate into its top-level AND conjuncts. *)
val conjuncts : t -> t list

(** Rebuild a conjunction ([Const true] for the empty list). *)
val conjoin : t list -> t

(** [compile schema e] resolves columns and returns an evaluator.
    @raise Not_found on unresolvable columns. *)
val compile : Schema.t -> t -> Tuple.t -> Value.t

(** [compile_pred schema e] evaluates to a boolean; [Null] comparisons are
    false (SQL-style rejection). *)
val compile_pred : Schema.t -> t -> Tuple.t -> bool

(** Whether every column the expression mentions resolves in [schema]. *)
val resolvable : Schema.t -> t -> bool

(** Result type of an expression under a schema. *)
val type_of : Schema.t -> t -> Value.ty

(** Shapes the optimizer pattern-matches on. *)
type shape =
  | S_col_cmp_const of string * cmp_op * Value.t
  | S_col_between of string * Value.t * Value.t
  | S_col_eq_col of string * string        (** equi-join conjunct *)
  | S_col_cmp_col of cmp_op * string * string  (** non-equi join conjunct *)
  | S_udf of udf
  | S_other

val shape_of : t -> shape

(** SQL text, used when the dispatcher re-submits the remainder of a query
    against a temp table. *)
val to_sql : t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
