open Mqr_storage
module Histogram = Mqr_stats.Histogram
module Column_stats = Mqr_catalog.Column_stats

let default_eq = 0.1
let default_range = 1.0 /. 3.0
let default_udf = 0.1
let default_other = 0.25

type env = {
  stats_of : string -> Column_stats.t option;
}

let clamp s = Float.max 0.0 (Float.min 1.0 s)

(* Range selectivity via min/max linear interpolation when there is no
   histogram but the bounds are known. *)
let interpolate ~min_v ~max_v ~op ~v =
  let lo = Value.to_float min_v and hi = Value.to_float max_v in
  if hi <= lo then default_range
  else begin
    let x = Value.to_float v in
    let frac_below = clamp ((x -. lo) /. (hi -. lo)) in
    match op with
    | Expr.Lt | Expr.Le -> frac_below
    | Expr.Gt | Expr.Ge -> 1.0 -. frac_below
    | Expr.Eq | Expr.Ne -> default_eq
  end

let col_cmp_const env c op v =
  match env.stats_of c with
  | None ->
    (match op with
     | Expr.Eq -> default_eq
     | Expr.Ne -> 1.0 -. default_eq
     | _ -> default_range)
  | Some st ->
    let domain_v = Column_stats.to_domain st v in
    (match op, st.Column_stats.histogram, domain_v with
     | Expr.Eq, Some h, Some x -> Histogram.est_eq h x
     | Expr.Ne, Some h, Some x -> 1.0 -. Histogram.est_eq h x
     | Expr.Lt, Some h, Some x -> Histogram.est_range h ~lo:None ~hi:(Some (x, false))
     | Expr.Le, Some h, Some x -> Histogram.est_range h ~lo:None ~hi:(Some (x, true))
     | Expr.Gt, Some h, Some x -> Histogram.est_range h ~lo:(Some (x, false)) ~hi:None
     | Expr.Ge, Some h, Some x -> Histogram.est_range h ~lo:(Some (x, true)) ~hi:None
     | Expr.Eq, None, _ ->
       (match st.Column_stats.distinct with
        | Some d when d >= 1.0 -> 1.0 /. d
        | _ -> default_eq)
     | Expr.Ne, None, _ ->
       (match st.Column_stats.distinct with
        | Some d when d >= 1.0 -> 1.0 -. (1.0 /. d)
        | _ -> 1.0 -. default_eq)
     | (Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), None, _ ->
       (match st.Column_stats.min_v, st.Column_stats.max_v with
        | Some min_v, Some max_v -> interpolate ~min_v ~max_v ~op ~v
        | _ -> default_range)
     | _, Some _, None -> default_range)

let col_between env c lo hi =
  match env.stats_of c with
  | None -> default_range
  | Some st ->
    (match st.Column_stats.histogram,
           Column_stats.to_domain st lo,
           Column_stats.to_domain st hi with
     | Some h, Some x_lo, Some x_hi ->
       Histogram.est_range h ~lo:(Some (x_lo, true)) ~hi:(Some (x_hi, true))
     | _ ->
       let s_lo = col_cmp_const env c Expr.Ge lo in
       let s_hi = col_cmp_const env c Expr.Le hi in
       clamp (s_lo +. s_hi -. 1.0))

let distinct_of_column env c =
  match env.stats_of c with
  | None -> None
  | Some st ->
    (match st.Column_stats.distinct with
     | Some d -> Some d
     | None ->
       Option.map Histogram.distinct st.Column_stats.histogram)

let equijoin_selectivity env ~left ~right =
  let stl = env.stats_of left and str = env.stats_of right in
  match stl, str with
  | Some l, Some r ->
    (match l.Column_stats.histogram, r.Column_stats.histogram with
     | Some hl, Some hr -> Histogram.est_join_selectivity hl hr
     | _ ->
       (match distinct_of_column env left, distinct_of_column env right with
        | Some dl, Some dr when dl >= 1.0 && dr >= 1.0 -> 1.0 /. Float.max dl dr
        | _ -> default_eq))
  | _ ->
    (match distinct_of_column env left, distinct_of_column env right with
     | Some dl, Some dr when dl >= 1.0 && dr >= 1.0 -> 1.0 /. Float.max dl dr
     | Some d, None | None, Some d when d >= 1.0 -> 1.0 /. d
     | _ -> default_eq)

let rec selectivity env e =
  match e with
  | Expr.And (a, b) -> clamp (selectivity env a *. selectivity env b)
  | Expr.Or (a, b) ->
    let sa = selectivity env a and sb = selectivity env b in
    clamp (sa +. sb -. (sa *. sb))
  | Expr.Not a -> clamp (1.0 -. selectivity env a)
  | Expr.Const (Value.Bool true) -> 1.0
  | Expr.Const (Value.Bool false) -> 0.0
  | e ->
    (match Expr.shape_of e with
     | Expr.S_col_cmp_const (c, op, v) -> clamp (col_cmp_const env c op v)
     | Expr.S_col_between (c, lo, hi) -> clamp (col_between env c lo hi)
     | Expr.S_col_eq_col (a, b) ->
       clamp (equijoin_selectivity env ~left:a ~right:b)
     | Expr.S_col_cmp_col (_, _, _) -> default_range
     | Expr.S_udf u ->
       Option.value ~default:default_udf u.Expr.declared_selectivity
     | Expr.S_other -> default_other)

let distinct_after env pred c =
  match distinct_of_column env c with
  | None -> None
  | Some d ->
    (* If the predicate constrains [c] itself through a histogram we can do
       better than selectivity scaling. *)
    let directly_constrained =
      List.exists
        (fun conj ->
           match Expr.shape_of conj with
           | Expr.S_col_cmp_const (c', _, _) | Expr.S_col_between (c', _, _) ->
             c' = c
           | _ -> false)
        (Expr.conjuncts pred)
    in
    let s = selectivity env pred in
    if directly_constrained then begin
      match env.stats_of c with
      | Some st ->
        (match st.Column_stats.histogram with
         | Some h ->
           (* distinct values surviving the direct range constraints *)
           let est =
             List.fold_left
               (fun acc conj ->
                  match Expr.shape_of conj with
                  | Expr.S_col_between (c', lo, hi) when c' = c ->
                    (match Column_stats.to_domain st lo, Column_stats.to_domain st hi with
                     | Some l, Some hv ->
                       Float.min acc
                         (Histogram.est_distinct_in_range h
                            ~lo:(Some (l, true)) ~hi:(Some (hv, true)))
                     | _ -> acc)
                  | Expr.S_col_cmp_const (c', Expr.Eq, _) when c' = c -> Float.min acc 1.0
                  | _ -> acc)
               d (Expr.conjuncts pred)
           in
           Some (Float.max 1.0 est)
         | None -> Some (Float.max 1.0 (d *. s)))
      | None -> Some (Float.max 1.0 (d *. s))
    end
    else
      (* Yao-style: with n rows surviving uniformly, expected distinct is
         d * (1 - (1 - s)^(n/d)); we approximate with the simpler bound. *)
      Some (Float.max 1.0 (Float.min d (d *. Float.max s 0.0 ** 0.5)))

let pp_env_missing fmt c = Fmt.pf fmt "no statistics for column %s" c
