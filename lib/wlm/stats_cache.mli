(** Cross-query statistics feedback cache.

    The paper remarks (Section 2.6) that statistics collected while one
    query runs can outlive it.  This cache is that idea at workload
    scope: histograms, distinct counts and exact cardinalities observed
    by one query's collectors are published here keyed by *table* (not by
    the query's aliases), and overlaid onto the estimation environment of
    every later query that touches the same tables — so the workload's
    tail optimizes with observed rather than estimated statistics.

    Entries are tagged with the table's update counter and stats epoch at
    publish time and are dropped as soon as either moves: DML on the
    table (the observation no longer describes the data) or ANALYZE (the
    catalog caught up; the overlay is superseded). *)

type t

val create : unit -> t

(** [publish t catalog query report] stores the report's observed column
    statistics and full-scan cardinalities, resolving the query's aliases
    to table names.  Statistics for intermediate (temp) tables are
    skipped. *)
val publish :
  t -> Mqr_catalog.Catalog.t -> Mqr_sql.Query.t ->
  Mqr_core.Dispatcher.report -> unit

(** [overlay t catalog query env] installs every still-valid cached
    statistic relevant to [query]'s relations into [env] (column-stats
    overrides and believed-cardinality overrides), dropping entries whose
    table saw DML or ANALYZE since publication. *)
val overlay :
  t -> Mqr_catalog.Catalog.t -> Mqr_sql.Query.t -> Mqr_opt.Stats_env.t ->
  unit

(** Live (column + cardinality) entries. *)
val size : t -> int

(** Statistics published / overlaid / invalidated so far. *)
val published : t -> int
val applied : t -> int
val invalidated : t -> int
