module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Query = Mqr_sql.Query
module Rng = Mqr_stats.Rng
module Trace = Mqr_obs.Trace
module Metrics = Mqr_obs.Metrics

type spec = {
  label : string;
  sql : string;
  priority : int;
  mode : Dispatcher.mode;
  arrival_ms : float;
}

let spec ?(label = "") ?(priority = 0) ?(mode = Dispatcher.Full)
    ?(arrival_ms = 0.0) sql =
  { label; sql; priority; mode; arrival_ms }

type memory_policy =
  | Fixed_per_query of int
  | Shared_broker

type options = {
  max_concurrency : int;
  max_queue : int;
  memory : memory_policy;
  feedback : bool;
  arrival_jitter_ms : float;
  seed : int;
}

let default_options =
  { max_concurrency = 4;
    max_queue = 64;
    memory = Shared_broker;
    feedback = true;
    arrival_jitter_ms = 0.0;
    seed = 7 }

type query_result = {
  label : string;
  index : int;
  report : Dispatcher.report;
  arrival_ms : float;
  admit_ms : float;
  queue_ms : float;
  finish_ms : float;
}

type report = {
  results : query_result list;
  rejected : (int * string) list;
  makespan_ms : float;
  total_exec_ms : float;
  total_queue_ms : float;
  peak_leased_pages : int;
  outstanding_leases : int;
  stats_published : int;
  stats_applied : int;
}

type state =
  | Waiting
  | Running of Query.t * Dispatcher.run
  | Done
  | Shed

type entry = {
  e_spec : spec;
  e_index : int;
  e_label : string;
  e_arrival : float;
  mutable e_state : state;
  mutable e_admit : float;
  mutable e_finish : float;
  mutable e_report : Dispatcher.report option;
}

let run ?(options = default_options) ?trace engine specs =
  if options.max_concurrency < 1 then
    invalid_arg "Workload.run: max_concurrency < 1";
  let catalog = Engine.catalog engine in
  let rng = Rng.create options.seed in
  let broker =
    match options.memory with
    | Shared_broker ->
      Some
        (Broker.create ~budget_pages:(Engine.budget_pages engine)
           ~max_concurrency:options.max_concurrency)
    | Fixed_per_query _ -> None
  in
  let cache = if options.feedback then Some (Stats_cache.create ()) else None in
  let entries =
    Array.of_list
      (List.mapi
         (fun i (s : spec) ->
            let label =
              if s.label = "" then Printf.sprintf "q%d" i else s.label
            in
            let jitter =
              if options.arrival_jitter_ms > 0.0 then
                Rng.float rng *. options.arrival_jitter_ms
              else 0.0
            in
            { e_spec = s;
              e_index = i;
              e_label = label;
              e_arrival = s.arrival_ms +. jitter;
              e_state = Waiting;
              e_admit = 0.0;
              e_finish = 0.0;
              e_report = None })
         specs)
  in
  let running = ref 0 in
  let queue = Admission.create ~capacity:options.max_queue in
  let rejected = ref [] in
  (* queries submitted but not yet started: the broker reserves an
     admission floor for each so early leases leave them room *)
  let pending = ref (Array.length entries) in
  let note_started () =
    decr pending;
    match broker with Some b -> Broker.set_pending b !pending | None -> ()
  in
  (match broker with Some b -> Broker.set_pending b !pending | None -> ());
  let can_start () =
    !running < options.max_concurrency
    && (match broker with None -> true | Some b -> Broker.can_admit b)
  in
  let admit e ~now =
    let i = e.e_index in
    (* the admission time anchors the query's trace lane on the shared
       workload timeline: span timestamps are per-query Sim_clock times
       offset by it, so concurrent queries interleave correctly *)
    e.e_admit <- Float.max e.e_arrival now;
    let scope =
      Option.map
        (fun tr ->
           Metrics.observe (Trace.metrics tr) "wlm.queue_ms"
             (e.e_admit -. e.e_arrival);
           Trace.scope tr ~offset_ms:e.e_admit ~label:e.e_label ())
        trace
    in
    let budget_pages =
      match options.memory with
      | Fixed_per_query pages -> Some pages
      | Shared_broker -> None
    in
    let broker_fn =
      Option.map
        (fun b ~min_pages ~max_pages ->
           Broker.lease b ~id:i ~min_pages ~max_pages)
        broker
    in
    let env_overlay =
      Option.map (fun c q env -> Stats_cache.overlay c catalog q env) cache
    in
    let cfg =
      Engine.dispatcher_config engine ~mode:e.e_spec.mode ?budget_pages
        ?broker:broker_fn ?env_overlay
        ~temp_prefix:(Printf.sprintf "_w%d" i) ?trace:scope ()
    in
    let query = Engine.bind_sql engine e.e_spec.sql in
    note_started ();
    let r = Dispatcher.start cfg query in
    e.e_state <- Running (query, r);
    incr running
  in
  let on_complete e run query (rep : Dispatcher.report) =
    e.e_report <- Some rep;
    e.e_finish <- e.e_admit +. Dispatcher.run_elapsed_ms run;
    e.e_state <- Done;
    decr running;
    (match broker with Some b -> Broker.release b ~id:e.e_index | None -> ());
    (match cache with
     | Some c -> Stats_cache.publish c catalog query rep
     | None -> ());
    (* queued queries get first claim on the freed pages... *)
    let rec drain () =
      if can_start () then
        match Admission.take queue with
        | Some w ->
          admit w ~now:e.e_finish;
          drain ()
        | None -> ()
    in
    drain ();
    (* ...and whatever is left tops up the queries still in flight *)
    match broker with
    | None -> ()
    | Some _ ->
      Array.iter
        (fun o ->
           match o.e_state with
           | Running (_, r) when o.e_index <> e.e_index ->
             Dispatcher.refresh_memory r
           | _ -> ())
        entries
  in
  (* submit the batch: run immediately when a slot (and, under the broker,
     enough free memory) is available; otherwise wait in priority order;
     shed when the queue is full *)
  Array.iter
    (fun e ->
       if can_start () then admit e ~now:e.e_arrival
       else if Admission.offer queue ~priority:e.e_spec.priority e then ()
       else begin
         e.e_state <- Shed;
         note_started ();  (* shed queries will never claim their floor *)
         (match trace with
          | Some tr -> Metrics.incr (Trace.metrics tr) "wlm.shed"
          | None -> ());
         rejected := (e.e_index, e.e_label) :: !rejected
       end)
    entries;
  (* round-robin: one execution unit per running query per sweep *)
  let rec drive () =
    let progressed = ref false in
    Array.iter
      (fun e ->
         match e.e_state with
         | Running (query, r) ->
           progressed := true;
           (match Dispatcher.step r with
            | Some rep -> on_complete e r query rep
            | None -> ())
         | Waiting | Done | Shed -> ())
      entries;
    if !progressed then drive ()
  in
  drive ();
  let results =
    Array.to_list entries
    |> List.filter_map (fun e ->
      match e.e_report with
      | None -> None
      | Some rep ->
        Some
          { label = e.e_label;
            index = e.e_index;
            report = rep;
            arrival_ms = e.e_arrival;
            admit_ms = e.e_admit;
            queue_ms = e.e_admit -. e.e_arrival;
            finish_ms = e.e_finish })
  in
  let makespan_ms =
    List.fold_left (fun acc r -> Float.max acc r.finish_ms) 0.0 results
  in
  let total_exec_ms =
    List.fold_left (fun acc r -> acc +. (r.finish_ms -. r.admit_ms)) 0.0 results
  in
  let total_queue_ms =
    List.fold_left (fun acc r -> acc +. r.queue_ms) 0.0 results
  in
  { results;
    rejected = List.rev !rejected;
    makespan_ms;
    total_exec_ms;
    total_queue_ms;
    peak_leased_pages =
      (match broker with Some b -> Broker.peak_leased b | None -> 0);
    outstanding_leases =
      (match broker with Some b -> Broker.outstanding b | None -> 0);
    stats_published =
      (match cache with Some c -> Stats_cache.published c | None -> 0);
    stats_applied =
      (match cache with Some c -> Stats_cache.applied c | None -> 0) }

let pp fmt (r : report) =
  Fmt.pf fmt "@[<v>workload: %d completed, %d rejected@,"
    (List.length r.results)
    (List.length r.rejected);
  List.iter
    (fun q ->
       Fmt.pf fmt "  %-16s arrive %8.1f  queued %8.1f  exec %9.1f  finish %9.1f@,"
         q.label q.arrival_ms q.queue_ms
         (q.finish_ms -. q.admit_ms)
         q.finish_ms)
    r.results;
  List.iter
    (fun (i, label) -> Fmt.pf fmt "  %-16s rejected (queue full, index %d)@," label i)
    r.rejected;
  Fmt.pf fmt
    "  makespan %.1f ms  total exec %.1f ms  total queue %.1f ms@,\
    \  peak leased %d pages  stats published %d / applied %d@]"
    r.makespan_ms r.total_exec_ms r.total_queue_ms r.peak_leased_pages
    r.stats_published r.stats_applied
