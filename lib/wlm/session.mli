(** Long-lived client sessions over the stepwise {!Mqr_core.Dispatcher}
    API.

    A session carries a tenant identity and latency-SLO class, and gives
    its statements a private temp-table namespace in the shared catalog
    (so concurrent tenants' intermediate results can never collide).
    Statements go through a submit → poll → (cancel) lifecycle; the
    session itself never executes anything — it hands statements to the
    owning {!Service} scheduler through its {!hooks} and exposes their
    status to the client.  Sessions survive statement failures: a broken
    UDF or a verifier rejection marks one statement [Failed] and the
    session keeps accepting work. *)

(** Latency SLO class: interactive statements carry tight deadlines the
    scheduler orders admission by; batch statements have slack. *)
type slo = Interactive | Batch

val slo_to_string : slo -> string

type status =
  | Queued                             (** waiting for admission *)
  | Running                            (** admitted, executing stepwise *)
  | Done of Mqr_core.Dispatcher.report
  | Failed of string                   (** error text; session survives *)
  | Cancelled
  | Shed                               (** refused: admission queue full *)

val status_to_string : status -> string

(** One submitted statement.  The immutable fields identify it; the
    mutable fields are owned by the scheduler (admission/finish times on
    the shared virtual timeline, wall-clock seconds when the service has
    a wall clock, the live dispatcher run while [Running]). *)
type stmt = {
  stmt_id : int;            (** service-global; doubles as broker lease id *)
  stmt_label : string;
  stmt_sql : string;
  stmt_mode : Mqr_core.Dispatcher.mode;
  stmt_slo : slo;
  stmt_tenant : string;
  stmt_session : int;
  stmt_arrival_ms : float;
  stmt_deadline_ms : float; (** arrival + the session's SLO target *)
  stmt_temp_prefix : string;
  mutable stmt_status : status;
  mutable stmt_query : Mqr_sql.Query.t option;
  mutable stmt_run : Mqr_core.Dispatcher.run option;
  mutable stmt_progress : Mqr_obs.Progress.t option;
      (** per-statement progress/ETA estimator, attached by the service at
          submission and fed by the dispatcher at every decision point *)
  mutable stmt_admit_ms : float;
  mutable stmt_finish_ms : float;
  mutable stmt_wall_submit : float;
  mutable stmt_wall_admit : float;
  mutable stmt_wall_finish : float;
}

(** Statement reached a terminal status. *)
val stmt_finished : stmt -> bool

(** The scheduler half of the contract: the service allocates statement
    ids, receives submitted statements, and performs cancellation (it
    owns the run and the broker lease). *)
type hooks = {
  h_alloc_id : unit -> int;
  h_submit : stmt -> unit;
  h_cancel : stmt -> unit;
}

type t

val create :
  hooks:hooks -> id:int -> tenant:string -> slo:slo -> target_ms:float -> t

val id : t -> int
val tenant : t -> string
val slo : t -> slo

(** All statements ever submitted, oldest first. *)
val statements : t -> stmt list

val closed : t -> bool

(** [submit t sql] registers a statement and hands it to the scheduler;
    returns its id.  [arrival_ms] places it on the service's virtual
    timeline (default 0); the deadline is [arrival_ms] plus the
    session's SLO target.  Raises [Invalid_argument] on a closed
    session. *)
val submit :
  ?label:string -> ?mode:Mqr_core.Dispatcher.mode -> ?arrival_ms:float ->
  t -> string -> int

(** Current status; raises [Invalid_argument] for an unknown id. *)
val poll : t -> int -> status

(** The report, once [poll] would return [Done]. *)
val result : t -> int -> Mqr_core.Dispatcher.report option

(** Cancel a queued or running statement (via the scheduler hook).
    Returns [false] if the statement is unknown or already terminal. *)
val cancel : t -> int -> bool

(** Cancel everything outstanding and refuse further submissions.
    Idempotent. *)
val close : t -> unit
