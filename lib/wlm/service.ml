module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Verifier = Mqr_analysis.Verifier
module Trace = Mqr_obs.Trace
module Metrics = Mqr_obs.Metrics

type policy = Round_robin | Slo_aware

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Slo_aware -> "slo-aware"

type slo_class = { target_ms : float; weight : int }

type options = {
  max_concurrency : int;
  max_queue : int;
  policy : policy;
  interactive : slo_class;
  batch : slo_class;
  feedback : bool;
  wall_clock : (unit -> float) option;
}

let default_options =
  { max_concurrency = 4;
    max_queue = 64;
    policy = Slo_aware;
    interactive = { target_ms = 2000.0; weight = 4 };
    batch = { target_ms = 60000.0; weight = 1 };
    feedback = true;
    wall_clock = None }

type tenant_state = {
  tn_name : string;
  tn_slo : Session.slo;
  tn_weight : int;
  tn_target_ms : float;
  mutable tn_submitted : int;
  mutable tn_completed : int;
  mutable tn_failed : int;
  mutable tn_cancelled : int;
  mutable tn_shed : int;
  mutable tn_replans : int;
  mutable tn_violations : int;
  mutable tn_deadline_miss : int;
      (* statements that reached a terminal state without completing by
         their deadline: late completions plus failed/cancelled/shed *)
  mutable tn_min_headroom_ms : float;
      (* worst (smallest) target - latency over completions; infinity
         until the tenant completes something *)
  mutable tn_queue_ms : float;
  mutable tn_exec_ms : float;
}

type t = {
  engine : Engine.t;
  options : options;
  broker : Broker.t;
  cache : Stats_cache.t option;
  trace : Trace.t option;
  tenants : (string, tenant_state) Hashtbl.t;
  queue : Session.stmt Admission.t;
  mutable running : Session.stmt list;  (* admission order, oldest first *)
  mutable all : Session.stmt list;      (* submission order, newest first *)
  mutable session_list : Session.t list; (* open order, newest first *)
  mutable next_stmt : int;
  mutable next_session : int;
  (* virtual clock: the latest point on the shared simulated timeline any
     statement has reached.  Scheduling reads only this (and deadlines
     derived from it), never the wall clock, so the interleaving — and
     with it every simulated time — is deterministic. *)
  mutable now_ms : float;
  mutable rr : int;                     (* round-robin cursor *)
  mutable wall_t0 : float;
  mutable wall_last : float;
}

let wall t =
  match t.options.wall_clock with Some clock -> clock () | None -> 0.0

let create ?(options = default_options) ?trace engine =
  if options.max_concurrency < 1 then
    invalid_arg "Service.create: max_concurrency < 1";
  let t =
    { engine;
      options;
      broker =
        Broker.create ~budget_pages:(Engine.budget_pages engine)
          ~max_concurrency:options.max_concurrency;
      cache = (if options.feedback then Some (Stats_cache.create ()) else None);
      trace;
      tenants = Hashtbl.create 4;
      queue = Admission.create ~capacity:options.max_queue;
      running = [];
      all = [];
      session_list = [];
      next_stmt = 0;
      next_session = 0;
      now_ms = 0.0;
      rr = 0;
      wall_t0 = 0.0;
      wall_last = 0.0 }
  in
  t.wall_t0 <- wall t;
  t.wall_last <- t.wall_t0;
  t

let engine t = t.engine
let broker t = t.broker

let class_of t (slo : Session.slo) =
  match slo with
  | Session.Interactive -> t.options.interactive
  | Session.Batch -> t.options.batch

let tenant_state t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None -> invalid_arg (Printf.sprintf "Service: unknown tenant %s" name)

let add_tenant ?weight ?target_ms t ~slo name =
  if Hashtbl.mem t.tenants name then
    invalid_arg (Printf.sprintf "Service.add_tenant: duplicate tenant %s" name);
  let cls = class_of t slo in
  let weight = Option.value ~default:cls.weight weight in
  let target_ms = Option.value ~default:cls.target_ms target_ms in
  Hashtbl.replace t.tenants name
    { tn_name = name;
      tn_slo = slo;
      tn_weight = weight;
      tn_target_ms = target_ms;
      tn_submitted = 0;
      tn_completed = 0;
      tn_failed = 0;
      tn_cancelled = 0;
      tn_shed = 0;
      tn_replans = 0;
      tn_violations = 0;
      tn_deadline_miss = 0;
      tn_min_headroom_ms = infinity;
      tn_queue_ms = 0.0;
      tn_exec_ms = 0.0 };
  (* fair-share floors are an SLO-aware mechanism; the round-robin
     baseline keeps the PR 1 global broker behaviour *)
  if t.options.policy = Slo_aware then
    Broker.register_tenant t.broker ~weight name

let tenant_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tenants []
  |> List.sort compare

(* --- per-tenant observability ----------------------------------------- *)

let metric t fmt =
  Printf.ksprintf
    (fun name f ->
       match t.trace with
       | Some tr -> f (Trace.metrics tr) name
       | None -> ())
    fmt

let observe_metric t ~tenant ~what v =
  metric t "svc.%s.%s" tenant what (fun m name -> Metrics.observe m name v)

let incr_metric ?(by = 1) t ~tenant ~what =
  metric t "svc.%s.%s" tenant what (fun m name -> Metrics.incr m ~by name)

(* --- sanitizer: per-tenant transient-page accounting ------------------- *)

(* Whenever the scheduler observes its runs from outside a step — i.e. at
   every decision point and at completion — each tenant's transient pages
   (bloom bitmaps + worker pool slices over all its in-flight runs) must
   sum to zero.  This is the service-level TEN-LIFETIME check the
   sanitizer mode enables. *)
let check_tenant_pages t ~what =
  if Engine.verify_mode t.engine = Verifier.Sanitize then begin
    let held = Hashtbl.create 4 in
    List.iter
      (fun (s : Session.stmt) ->
         match s.Session.stmt_run with
         | Some run ->
           let pages =
             Dispatcher.filter_pages_held run + Dispatcher.worker_pages_held run
           in
           Hashtbl.replace held s.Session.stmt_tenant
             (pages
              + Option.value ~default:0
                  (Hashtbl.find_opt held s.Session.stmt_tenant))
         | None -> ())
      t.running;
    Hashtbl.iter
      (fun tenant pages ->
         if pages <> 0 then Verifier.reject_tenant_pages ~what ~tenant ~pages)
      held
  end

let tenant_pages_in_flight t name =
  List.fold_left
    (fun acc (s : Session.stmt) ->
       match s.Session.stmt_run with
       | Some run when s.Session.stmt_tenant = name ->
         acc + Dispatcher.filter_pages_held run
         + Dispatcher.worker_pages_held run
       | _ -> acc)
    0 t.running

(* --- admission --------------------------------------------------------- *)

let queued_count t = Admission.length t.queue

let update_pending t = Broker.set_pending t.broker (queued_count t)

let tenant_has_work t name =
  List.exists
    (fun (s : Session.stmt) ->
       s.Session.stmt_tenant = name
       && (match s.Session.stmt_status with
           | Session.Running | Session.Queued -> true
           | _ -> false))
    t.all

let refresh_activity t name =
  Broker.set_tenant_active t.broker name (tenant_has_work t name)

let can_admit_stmt t (s : Session.stmt) =
  List.length t.running < t.options.max_concurrency
  && (t.running = []
      (* liveness valve: with nothing in flight the admission-floor and
         fair-share reserves cannot be blocking anyone who is actually
         using pages, so refusing here would deadlock the service (e.g.
         max_concurrency 1 makes the floor the whole budget, which no
         tenant's share ever covers).  The broker still clips the
         admitted statement's lease to its tenant's entitlement. *)
      || match t.options.policy with
         | Round_robin -> Broker.can_admit t.broker
         | Slo_aware -> Broker.can_admit_tenant t.broker s.Session.stmt_tenant)

(* Start a statement: bind, open its trace lane on the shared timeline,
   and hand it to the dispatcher under the tenant-tagged broker hook.
   Any exception (parse error, verifier rejection) marks the statement
   Failed without disturbing the service. *)
let start_stmt t (s : Session.stmt) ~now =
  let tn = tenant_state t s.Session.stmt_tenant in
  s.Session.stmt_admit_ms <- Float.max s.Session.stmt_arrival_ms now;
  s.Session.stmt_wall_admit <- wall t;
  let queue_ms = s.Session.stmt_admit_ms -. s.Session.stmt_arrival_ms in
  tn.tn_queue_ms <- tn.tn_queue_ms +. queue_ms;
  observe_metric t ~tenant:tn.tn_name ~what:"queue_ms" queue_ms;
  let scope =
    Option.map
      (fun tr ->
         Trace.scope tr ~offset_ms:s.Session.stmt_admit_ms
           ~tenant:s.Session.stmt_tenant
           ~label:
             (Printf.sprintf "%s/%s" s.Session.stmt_tenant
                s.Session.stmt_label)
           ())
      t.trace
  in
  let tenant = s.Session.stmt_tenant in
  let id = s.Session.stmt_id in
  let broker_fn ~min_pages ~max_pages =
    Broker.lease ~tenant t.broker ~id ~min_pages ~max_pages
  in
  let env_overlay =
    Option.map
      (fun c q env -> Stats_cache.overlay c (Engine.catalog t.engine) q env)
      t.cache
  in
  Broker.set_tenant_active t.broker tenant true;
  (* per-statement progress estimator, fed by the dispatcher at every
     decision point; pure observation, so it cannot perturb the run *)
  let progress = Mqr_obs.Progress.create () in
  s.Session.stmt_progress <- Some progress;
  match
    let query = Engine.bind_sql t.engine s.Session.stmt_sql in
    let cfg =
      Engine.dispatcher_config t.engine ~mode:s.Session.stmt_mode
        ~broker:broker_fn ?env_overlay
        ~temp_prefix:s.Session.stmt_temp_prefix ?trace:scope ~progress ()
    in
    (query, Dispatcher.start cfg query)
  with
  | query, run ->
    s.Session.stmt_query <- Some query;
    s.Session.stmt_run <- Some run;
    s.Session.stmt_status <- Session.Running;
    t.running <- t.running @ [ s ]
  | exception e ->
    Broker.release t.broker ~id;
    s.Session.stmt_status <- Session.Failed (Printexc.to_string e);
    tn.tn_failed <- tn.tn_failed + 1;
    refresh_activity t tenant;
    (match scope with
     | Some sc -> Trace.unwind sc ~args:[ ("aborted", Trace.Bool true) ]
                    ~ts_ms:0.0 ()
     | None -> ())

(* Drop queue entries cancelled while they waited. *)
let rec purge_queue t =
  match Admission.take_if t.queue Session.stmt_finished with
  | Some _ -> purge_queue t
  | None -> ()

let rec try_admit t ~now =
  purge_queue t;
  update_pending t;
  if List.length t.running < t.options.max_concurrency then
    match Admission.take_if t.queue (can_admit_stmt t) with
    | Some s ->
      update_pending t;
      start_stmt t s ~now;
      try_admit t ~now
    | None -> ()

(* --- completion / failure / cancellation ------------------------------- *)

(* Weighted re-grants: freed pages go to queued statements first, then
   top up the runs still in flight — under the SLO-aware policy in order
   of entitlement (least leased relative to tenant weight first), so the
   broker's fair shares are re-filled before opportunistic growth. *)
let regrant t =
  let order =
    match t.options.policy with
    | Round_robin -> t.running
    | Slo_aware ->
      List.stable_sort
        (fun (a : Session.stmt) (b : Session.stmt) ->
           let key (s : Session.stmt) =
             let tn = tenant_state t s.Session.stmt_tenant in
             float_of_int (Broker.tenant_leased t.broker s.Session.stmt_tenant)
             /. float_of_int (max 1 tn.tn_weight)
           in
           compare (key a) (key b))
        t.running
  in
  List.iter
    (fun (s : Session.stmt) ->
       match s.Session.stmt_run with
       | Some run -> Dispatcher.refresh_memory run
       | None -> ())
    order

let retire t (s : Session.stmt) =
  t.running <-
    List.filter
      (fun (o : Session.stmt) -> o.Session.stmt_id <> s.Session.stmt_id)
      t.running;
  Broker.release t.broker ~id:s.Session.stmt_id;
  refresh_activity t s.Session.stmt_tenant;
  metric t "svc.%s.broker_waits" s.Session.stmt_tenant (fun m name ->
      Metrics.set_gauge m name
        (float_of_int (Broker.tenant_floor_waits t.broker s.Session.stmt_tenant)))

(* A statement that reaches a terminal state without having completed by
   its deadline is a deadline miss, whatever the terminal state was: a
   late completion, a failure, a cancellation or a shed all mean the
   client did not get its answer in time. *)
let note_deadline_miss t tn =
  tn.tn_deadline_miss <- tn.tn_deadline_miss + 1;
  incr_metric t ~tenant:tn.tn_name ~what:"deadline_miss";
  metric t "svc.%s.deadline_misses" tn.tn_name (fun m name ->
      Metrics.set_gauge m name (float_of_int tn.tn_deadline_miss))

let note_headroom t tn headroom =
  if headroom < tn.tn_min_headroom_ms then begin
    tn.tn_min_headroom_ms <- headroom;
    metric t "svc.%s.slo_headroom_ms" tn.tn_name (fun m name ->
        Metrics.set_gauge m name headroom)
  end

let complete_stmt t (s : Session.stmt) run (rep : Dispatcher.report) =
  let tn = tenant_state t s.Session.stmt_tenant in
  let elapsed = Dispatcher.run_elapsed_ms run in
  s.Session.stmt_finish_ms <- s.Session.stmt_admit_ms +. elapsed;
  s.Session.stmt_wall_finish <- wall t;
  t.wall_last <- Float.max t.wall_last s.Session.stmt_wall_finish;
  s.Session.stmt_status <- Session.Done rep;
  t.now_ms <- Float.max t.now_ms s.Session.stmt_finish_ms;
  tn.tn_completed <- tn.tn_completed + 1;
  tn.tn_exec_ms <- tn.tn_exec_ms +. elapsed;
  tn.tn_replans <- tn.tn_replans + rep.Dispatcher.switches;
  if rep.Dispatcher.switches > 0 then
    incr_metric ~by:rep.Dispatcher.switches t ~tenant:tn.tn_name
      ~what:"replans";
  let latency = s.Session.stmt_finish_ms -. s.Session.stmt_arrival_ms in
  if latency > tn.tn_target_ms then begin
    tn.tn_violations <- tn.tn_violations + 1;
    incr_metric t ~tenant:tn.tn_name ~what:"slo_violations";
    note_deadline_miss t tn
  end;
  note_headroom t tn (tn.tn_target_ms -. latency);
  observe_metric t ~tenant:tn.tn_name ~what:"latency_ms" latency;
  retire t s;
  (match s.Session.stmt_query, t.cache with
   | Some query, Some c ->
     Stats_cache.publish c (Engine.catalog t.engine) query rep
   | _ -> ());
  try_admit t ~now:s.Session.stmt_finish_ms;
  regrant t

let fail_stmt t (s : Session.stmt) msg =
  let tn = tenant_state t s.Session.stmt_tenant in
  s.Session.stmt_status <- Session.Failed msg;
  s.Session.stmt_wall_finish <- wall t;
  tn.tn_failed <- tn.tn_failed + 1;
  note_deadline_miss t tn;
  retire t s;
  try_admit t ~now:t.now_ms;
  regrant t

let cancel_stmt t (s : Session.stmt) =
  let tn = tenant_state t s.Session.stmt_tenant in
  (match s.Session.stmt_status with
   | Session.Running ->
     (match s.Session.stmt_run with
      | Some run -> Dispatcher.abort run
      | None -> ());
     s.Session.stmt_status <- Session.Cancelled;
     tn.tn_cancelled <- tn.tn_cancelled + 1;
     note_deadline_miss t tn;
     retire t s;
     try_admit t ~now:t.now_ms;
     regrant t
   | Session.Queued ->
     (* stays in the admission queue; purged before the next admission *)
     s.Session.stmt_status <- Session.Cancelled;
     tn.tn_cancelled <- tn.tn_cancelled + 1;
     note_deadline_miss t tn;
     update_pending t;
     refresh_activity t s.Session.stmt_tenant
   | _ -> ())

(* --- submission -------------------------------------------------------- *)

let submit_stmt t (s : Session.stmt) =
  let tn = tenant_state t s.Session.stmt_tenant in
  tn.tn_submitted <- tn.tn_submitted + 1;
  s.Session.stmt_wall_submit <- wall t;
  t.all <- s :: t.all;
  if can_admit_stmt t s then start_stmt t s ~now:s.Session.stmt_arrival_ms
  else begin
    let deadline =
      match t.options.policy with
      | Round_robin -> infinity  (* plain FIFO: the PR 1 baseline *)
      | Slo_aware -> s.Session.stmt_deadline_ms
    in
    Broker.set_tenant_active t.broker s.Session.stmt_tenant true;
    if Admission.offer ~deadline t.queue ~priority:0 s then update_pending t
    else begin
      s.Session.stmt_status <- Session.Shed;
      tn.tn_shed <- tn.tn_shed + 1;
      incr_metric t ~tenant:tn.tn_name ~what:"shed";
      note_deadline_miss t tn;
      refresh_activity t s.Session.stmt_tenant
    end
  end

let open_session t ~tenant =
  let tn = tenant_state t tenant in
  let id = t.next_session in
  t.next_session <- id + 1;
  let hooks =
    { Session.h_alloc_id =
        (fun () ->
           let id = t.next_stmt in
           t.next_stmt <- id + 1;
           id);
      h_submit = (fun s -> submit_stmt t s);
      h_cancel = (fun s -> cancel_stmt t s) }
  in
  let session =
    Session.create ~hooks ~id ~tenant ~slo:tn.tn_slo
      ~target_ms:tn.tn_target_ms
  in
  t.session_list <- session :: t.session_list;
  session

(* --- the scheduler loop ------------------------------------------------ *)

(* Pick the next running statement to step.  Round-robin sweeps the
   admission-order list; the SLO-aware policy steps the earliest
   deadline (ties by statement id — deterministic either way). *)
let pick t =
  match t.running with
  | [] -> None
  | runs ->
    (match t.options.policy with
     | Round_robin ->
       let n = List.length runs in
       let s = List.nth runs (t.rr mod n) in
       t.rr <- t.rr + 1;
       Some s
     | Slo_aware ->
       Some
         (List.fold_left
            (fun (best : Session.stmt) (s : Session.stmt) ->
               if
                 s.Session.stmt_deadline_ms < best.Session.stmt_deadline_ms
                 || (s.Session.stmt_deadline_ms
                     = best.Session.stmt_deadline_ms
                     && s.Session.stmt_id < best.Session.stmt_id)
               then s
               else best)
            (List.hd runs) (List.tl runs)))

(* Execute one execution unit of one statement.  Returns false once
   nothing is running or admittable. *)
let step t =
  if t.running = [] then try_admit t ~now:t.now_ms;
  match pick t with
  | None -> false
  | Some s ->
    (match s.Session.stmt_run with
     | None -> fail_stmt t s "lost dispatcher run"
     | Some run ->
       (match Dispatcher.step run with
        | Some rep ->
          complete_stmt t s run rep;
          check_tenant_pages t ~what:"statement completion"
        | None ->
          (* statement paused at a decision point: advance the virtual
             clock to the lane time it has reached *)
          t.now_ms <-
            Float.max t.now_ms
              (s.Session.stmt_admit_ms +. Dispatcher.run_elapsed_ms run);
          check_tenant_pages t ~what:"service decision point"
        | exception (Verifier.Rejected _ as e) ->
          (* sanitizer findings are bugs: tear the statement down (the
             dispatcher already did) but let the rejection propagate *)
          fail_stmt t s (Printexc.to_string e);
          raise e
        | exception e -> fail_stmt t s (Printexc.to_string e)));
    true

let rec drain t = if step t then drain t else ()

let idle t = t.running = [] && queued_count t = 0

(* --- introspection (the monitor's raw material) ------------------------ *)

let sessions t = List.rev t.session_list
let all_statements t = List.rev t.all
let running_statements t = t.running
let now_ms t = t.now_ms
let service_trace t = t.trace
let options t = t.options
let tenant_target_ms t name = (tenant_state t name).tn_target_ms

(* --- reporting --------------------------------------------------------- *)

type class_stats = {
  cs_n : int;
  cs_p50_ms : float;
  cs_p99_ms : float;
  cs_wall_p50_ms : float;
  cs_wall_p99_ms : float;
  cs_violations : int;
}

type tenant_summary = {
  tns_tenant : string;
  tns_slo : Session.slo;
  tns_weight : int;
  tns_target_ms : float;
  tns_submitted : int;
  tns_completed : int;
  tns_failed : int;
  tns_cancelled : int;
  tns_shed : int;
  tns_replans : int;
  tns_violations : int;
  tns_deadline_miss : int;
  tns_min_headroom_ms : float;
  tns_queue_ms : float;
  tns_exec_ms : float;
  tns_peak_leased : int;
  tns_broker_waits : int;
}

type report = {
  statements : Session.stmt list;      (* submission order *)
  classes : (Session.slo * class_stats) list;
  tenants : tenant_summary list;
  makespan_ms : float;
  wall_makespan_ms : float;
  peak_leased_pages : int;
  outstanding_leases : int;
  stats_published : int;
  stats_applied : int;
}

(* Nearest-rank percentile over a non-empty list. *)
let percentile q xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let class_stats t slo =
  let done_stmts =
    List.filter
      (fun (s : Session.stmt) ->
         s.Session.stmt_slo = slo
         && (match s.Session.stmt_status with
             | Session.Done _ -> true
             | _ -> false))
      (List.rev t.all)
  in
  let latencies =
    List.map
      (fun (s : Session.stmt) ->
         s.Session.stmt_finish_ms -. s.Session.stmt_arrival_ms)
      done_stmts
  in
  let wall_latencies =
    List.map
      (fun (s : Session.stmt) ->
         (s.Session.stmt_wall_finish -. s.Session.stmt_wall_submit) *. 1000.0)
      done_stmts
  in
  let violations =
    Hashtbl.fold
      (fun _ tn acc -> if tn.tn_slo = slo then acc + tn.tn_violations else acc)
      t.tenants 0
  in
  { cs_n = List.length done_stmts;
    cs_p50_ms = percentile 0.50 latencies;
    cs_p99_ms = percentile 0.99 latencies;
    cs_wall_p50_ms = percentile 0.50 wall_latencies;
    cs_wall_p99_ms = percentile 0.99 wall_latencies;
    cs_violations = violations }

let report t =
  let statements = List.rev t.all in
  let makespan_ms =
    List.fold_left
      (fun acc (s : Session.stmt) ->
         Float.max acc s.Session.stmt_finish_ms)
      0.0 statements
  in
  let tenants =
    List.map
      (fun name ->
         let tn = tenant_state t name in
         { tns_tenant = name;
           tns_slo = tn.tn_slo;
           tns_weight = tn.tn_weight;
           tns_target_ms = tn.tn_target_ms;
           tns_submitted = tn.tn_submitted;
           tns_completed = tn.tn_completed;
           tns_failed = tn.tn_failed;
           tns_cancelled = tn.tn_cancelled;
           tns_shed = tn.tn_shed;
           tns_replans = tn.tn_replans;
           tns_violations = tn.tn_violations;
           tns_deadline_miss = tn.tn_deadline_miss;
           tns_min_headroom_ms = tn.tn_min_headroom_ms;
           tns_queue_ms = tn.tn_queue_ms;
           tns_exec_ms = tn.tn_exec_ms;
           tns_peak_leased = Broker.tenant_peak t.broker name;
           tns_broker_waits = Broker.tenant_floor_waits t.broker name })
      (tenant_names t)
  in
  { statements;
    classes =
      [ (Session.Interactive, class_stats t Session.Interactive);
        (Session.Batch, class_stats t Session.Batch) ];
    tenants;
    makespan_ms;
    wall_makespan_ms = (t.wall_last -. t.wall_t0) *. 1000.0;
    peak_leased_pages = Broker.peak_leased t.broker;
    outstanding_leases = Broker.outstanding t.broker;
    stats_published =
      (match t.cache with Some c -> Stats_cache.published c | None -> 0);
    stats_applied =
      (match t.cache with Some c -> Stats_cache.applied c | None -> 0) }

let pp_report fmt (r : report) =
  Fmt.pf fmt "@[<v>service: %d statements, makespan %.1f ms (sim)@,"
    (List.length r.statements) r.makespan_ms;
  if r.wall_makespan_ms > 0.0 then
    Fmt.pf fmt "  wall makespan %.1f ms@," r.wall_makespan_ms;
  List.iter
    (fun (slo, (cs : class_stats)) ->
       if cs.cs_n > 0 then
         Fmt.pf fmt
           "  %-11s n=%d  p50 %.1f ms  p99 %.1f ms  violations %d@,"
           (Session.slo_to_string slo)
           cs.cs_n cs.cs_p50_ms cs.cs_p99_ms cs.cs_violations)
    r.classes;
  List.iter
    (fun tn ->
       Fmt.pf fmt
         "  tenant %-10s [%s w=%d] %d/%d done  %d failed  %d cancelled  %d \
          shed  queue %.1f ms  exec %.1f ms  replans %d  peak %d pages  \
          misses %d%s@,"
         tn.tns_tenant
         (Session.slo_to_string tn.tns_slo)
         tn.tns_weight tn.tns_completed tn.tns_submitted tn.tns_failed
         tn.tns_cancelled tn.tns_shed tn.tns_queue_ms tn.tns_exec_ms
         tn.tns_replans tn.tns_peak_leased tn.tns_deadline_miss
         (if Float.is_finite tn.tns_min_headroom_ms then
            Printf.sprintf "  headroom %.1f ms" tn.tns_min_headroom_ms
          else ""))
    r.tenants;
  Fmt.pf fmt "  peak leased %d pages  outstanding %d  stats %d/%d@]"
    r.peak_leased_pages r.outstanding_leases r.stats_published r.stats_applied
