module Dispatcher = Mqr_core.Dispatcher
module Query = Mqr_sql.Query

type slo = Interactive | Batch

let slo_to_string = function
  | Interactive -> "interactive"
  | Batch -> "batch"

type status =
  | Queued
  | Running
  | Done of Dispatcher.report
  | Failed of string
  | Cancelled
  | Shed

let status_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"
  | Shed -> "shed"

type stmt = {
  stmt_id : int;
  stmt_label : string;
  stmt_sql : string;
  stmt_mode : Dispatcher.mode;
  stmt_slo : slo;
  stmt_tenant : string;
  stmt_session : int;
  stmt_arrival_ms : float;
  stmt_deadline_ms : float;
  stmt_temp_prefix : string;
  mutable stmt_status : status;
  mutable stmt_query : Query.t option;
  mutable stmt_run : Dispatcher.run option;
  mutable stmt_progress : Mqr_obs.Progress.t option;
  mutable stmt_admit_ms : float;
  mutable stmt_finish_ms : float;
  mutable stmt_wall_submit : float;
  mutable stmt_wall_admit : float;
  mutable stmt_wall_finish : float;
}

let stmt_finished s =
  match s.stmt_status with
  | Done _ | Failed _ | Cancelled | Shed -> true
  | Queued | Running -> false

type hooks = {
  h_alloc_id : unit -> int;
  h_submit : stmt -> unit;
  h_cancel : stmt -> unit;
}

type t = {
  s_id : int;
  s_tenant : string;
  s_slo : slo;
  s_target_ms : float;
  hooks : hooks;
  mutable s_stmts : stmt list;  (* newest first *)
  mutable s_closed : bool;
}

let create ~hooks ~id ~tenant ~slo ~target_ms =
  { s_id = id; s_tenant = tenant; s_slo = slo; s_target_ms = target_ms;
    hooks; s_stmts = []; s_closed = false }

let id t = t.s_id
let tenant t = t.s_tenant
let slo t = t.s_slo
let statements t = List.rev t.s_stmts
let closed t = t.s_closed

(* Temp-table names must stay within identifier characters whatever the
   tenant calls itself. *)
let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
       | _ -> '_')
    name

let submit ?(label = "") ?(mode = Dispatcher.Full) ?(arrival_ms = 0.0) t sql =
  if t.s_closed then invalid_arg "Session.submit: session is closed";
  let stmt_id = t.hooks.h_alloc_id () in
  let label = if label = "" then Printf.sprintf "q%d" stmt_id else label in
  let stmt =
    { stmt_id;
      stmt_label = label;
      stmt_sql = sql;
      stmt_mode = mode;
      stmt_slo = t.s_slo;
      stmt_tenant = t.s_tenant;
      stmt_session = t.s_id;
      stmt_arrival_ms = arrival_ms;
      (* the statement's SLO clock starts at arrival: its deadline is what
         EDF admission orders by *)
      stmt_deadline_ms = arrival_ms +. t.s_target_ms;
      (* per-tenant temp namespace: two tenants' intermediate results can
         never collide in the shared catalog *)
      stmt_temp_prefix =
        Printf.sprintf "_%s_s%d_q%d" (sanitize t.s_tenant) t.s_id stmt_id;
      stmt_status = Queued;
      stmt_query = None;
      stmt_run = None;
      stmt_progress = None;
      stmt_admit_ms = 0.0;
      stmt_finish_ms = 0.0;
      stmt_wall_submit = 0.0;
      stmt_wall_admit = 0.0;
      stmt_wall_finish = 0.0 }
  in
  t.s_stmts <- stmt :: t.s_stmts;
  t.hooks.h_submit stmt;
  stmt_id

let find t stmt_id = List.find_opt (fun s -> s.stmt_id = stmt_id) t.s_stmts

let poll t stmt_id =
  match find t stmt_id with
  | Some s -> s.stmt_status
  | None -> invalid_arg "Session.poll: unknown statement"

let result t stmt_id =
  match poll t stmt_id with
  | Done report -> Some report
  | _ -> None

let cancel t stmt_id =
  match find t stmt_id with
  | None -> false
  | Some s ->
    if stmt_finished s then false
    else begin
      t.hooks.h_cancel s;
      true
    end

let close t =
  if not t.s_closed then begin
    t.s_closed <- true;
    List.iter
      (fun s -> if not (stmt_finished s) then t.hooks.h_cancel s)
      t.s_stmts
  end
