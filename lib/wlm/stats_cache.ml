module Catalog = Mqr_catalog.Catalog
module Column_stats = Mqr_catalog.Column_stats
module Query = Mqr_sql.Query
module Stats_env = Mqr_opt.Stats_env
module Dispatcher = Mqr_core.Dispatcher
module Schema = Mqr_storage.Schema

(* Snapshot of a table's version at publish time: any movement of either
   number invalidates every observation made against the old contents. *)
type version = {
  updates : int;
  epoch : int;
}

type 'a entry = {
  value : 'a;
  v : version;
}

type t = {
  cols : (string * string, Column_stats.t entry) Hashtbl.t;
      (* (table, bare column) -> observed statistics *)
  cards : (string, int entry) Hashtbl.t;  (* table -> exact cardinality *)
  mutable published : int;
  mutable applied : int;
  mutable invalidated : int;
}

let create () =
  { cols = Hashtbl.create 32;
    cards = Hashtbl.create 8;
    published = 0;
    applied = 0;
    invalidated = 0 }

let version_of catalog table =
  Option.map
    (fun (tbl : Catalog.table) ->
       { updates = tbl.Catalog.updates_since_analyze;
         epoch = tbl.Catalog.stats_epoch })
    (Catalog.find catalog table)

(* Qualified column "alias.col" -> (table, bare col) via the query's
   relation list; None for unqualified or unknown aliases and for temp
   tables introduced by plan switches. *)
let resolve (q : Query.t) column =
  match String.index_opt column '.' with
  | None -> None
  | Some i ->
    let alias = String.sub column 0 i in
    let bare = String.sub column (i + 1) (String.length column - i - 1) in
    List.find_map
      (fun (r : Query.relation) ->
         if r.Query.alias = alias then Some (r.Query.table, bare) else None)
      q.Query.relations

let publish t catalog (q : Query.t) (report : Dispatcher.report) =
  List.iter
    (fun (column, stats) ->
       match resolve q column with
       | None -> ()
       | Some (table, bare) ->
         (match version_of catalog table with
          | None -> ()
          | Some v ->
            Hashtbl.replace t.cols (table, bare) { value = stats; v };
            t.published <- t.published + 1))
    report.Dispatcher.observed_stats;
  List.iter
    (fun (alias, rows) ->
       match
         List.find_opt (fun (r : Query.relation) -> r.Query.alias = alias)
           q.Query.relations
       with
       | None -> ()
       | Some r ->
         (match version_of catalog r.Query.table with
          | None -> ()
          | Some v ->
            Hashtbl.replace t.cards r.Query.table { value = rows; v };
            t.published <- t.published + 1))
    report.Dispatcher.observed_cards

(* Validity check with eager eviction: a hit against a moved table drops
   the entry so the cache never serves it again. *)
let fresh t find remove key now =
  match find key with
  | None -> None
  | Some entry ->
    if Some entry.v = now then Some entry.value
    else begin
      remove key;
      t.invalidated <- t.invalidated + 1;
      None
    end

let overlay t catalog (q : Query.t) env =
  List.iter
    (fun (r : Query.relation) ->
       let table = r.Query.table in
       let now = version_of catalog table in
       (match
          fresh t (Hashtbl.find_opt t.cards) (Hashtbl.remove t.cards) table now
        with
        | Some rows ->
          Stats_env.override_rows env ~alias:r.Query.alias
            ~rows:(float_of_int rows);
          t.applied <- t.applied + 1
        | None -> ());
       List.iter
         (fun (col : Schema.column) ->
            let bare = col.Schema.name in
            match
              fresh t
                (Hashtbl.find_opt t.cols)
                (Hashtbl.remove t.cols)
                (table, bare) now
            with
            | Some stats ->
              let qualified =
                if col.Schema.qualifier = "" then bare
                else col.Schema.qualifier ^ "." ^ bare
              in
              Stats_env.override env ~column:qualified stats;
              t.applied <- t.applied + 1
            | None -> ())
         (Schema.columns r.Query.rel_schema))
    q.Query.relations

let size t = Hashtbl.length t.cols + Hashtbl.length t.cards
let published t = t.published
let applied t = t.applied
let invalidated t = t.invalidated
