(** Snapshot system views over a running {!Service} — the monitoring
    plane an operator (or the [serve] line protocol's [monitor] command)
    reads while statements execute.

    Every view is pure observation: rendering reads the scheduler, the
    broker, the per-statement progress estimators and the trace ledger,
    and never advances the virtual clock or perturbs scheduling — a
    monitored run is bit-identical to an unmonitored one.

    Each view comes in two renderings: {!render} for humans and
    {!to_json} as a stable machine format (fixed key order, [%.3f]
    numbers, [null] for absent values) suitable for golden files and the
    [json_check] validator.  All times are on the service's simulated
    timeline, so both renderings are deterministic. *)

type view =
  | Statements
      (** every statement: state, progress %, ETA interval (absolute on
          the service timeline), pages held, deadline risk *)
  | Sessions  (** every session with per-status statement counts *)
  | Tenants
      (** fair-share utilization, floor waits, SLO headroom and
          deadline-miss counters, live deadline-risk counts *)
  | Broker_leases  (** broker totals and the live lease table *)
  | Ledger  (** tail of the decision-point audit ledger *)

(** Lower-case names accepted by the line protocol, in display order:
    ["statements"; "sessions"; "tenants"; "broker"; "ledger"]. *)
val view_names : string list

val view_of_string : string -> view option
val view_to_string : view -> string

(** Human-readable rendering.  [tail] bounds the ledger view (default
    10 newest entries). *)
val render : ?tail:int -> Service.t -> view -> string

(** Stable JSON rendering (one object, trailing newline).  Common header
    fields [view]/[now_ms]/[queued]/[running], then the view's payload. *)
val to_json : ?tail:int -> Service.t -> view -> string

(** Prometheus text exposition of the service's metrics registry (via
    {!Mqr_obs.Metrics.to_prometheus}); [""] when the service was created
    without a trace. *)
val prometheus : Service.t -> string
