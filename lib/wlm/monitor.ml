module Dispatcher = Mqr_core.Dispatcher
module Trace = Mqr_obs.Trace
module Metrics = Mqr_obs.Metrics
module Progress = Mqr_obs.Progress

type view = Statements | Sessions | Tenants | Broker_leases | Ledger

let view_names = [ "statements"; "sessions"; "tenants"; "broker"; "ledger" ]

let view_of_string = function
  | "statements" -> Some Statements
  | "sessions" -> Some Sessions
  | "tenants" -> Some Tenants
  | "broker" -> Some Broker_leases
  | "ledger" -> Some Ledger
  | _ -> None

let view_to_string = function
  | Statements -> "statements"
  | Sessions -> "sessions"
  | Tenants -> "tenants"
  | Broker_leases -> "broker"
  | Ledger -> "ledger"

(* --- per-statement derived state ----------------------------------- *)

(* The estimator's samples are on the statement's private clock (0 = its
   admission); the service timeline adds the admission offset, which is
   how deadlines are expressed. *)
type stmt_progress = {
  sp_percent : float;
  sp_eta_lo_ms : float;  (* absolute, service timeline *)
  sp_eta_hi_ms : float;
  sp_updates : int;
}

let stmt_progress (s : Session.stmt) =
  match s.Session.stmt_progress with
  | None -> None
  | Some p ->
    (match Progress.latest p with
     | None -> None
     | Some sample ->
       Some
         { sp_percent = sample.Progress.percent;
           sp_eta_lo_ms =
             s.Session.stmt_admit_ms +. sample.Progress.eta_lo_ms;
           sp_eta_hi_ms =
             s.Session.stmt_admit_ms +. sample.Progress.eta_hi_ms;
           sp_updates = sample.Progress.seq + 1 })

let stmt_pages svc (s : Session.stmt) =
  let lease = Broker.lease_of (Service.broker svc) ~id:s.Session.stmt_id in
  let transient =
    match s.Session.stmt_run with
    | Some run when not (Dispatcher.aborted run) ->
      Dispatcher.filter_pages_held run + Dispatcher.worker_pages_held run
    | _ -> 0
  in
  lease + transient

(* A statement is at deadline risk as soon as its provable worst-case
   finish time crosses its deadline; a queued statement is at risk once
   the virtual clock itself is past the deadline. *)
let stmt_deadline_risk svc (s : Session.stmt) =
  if Session.stmt_finished s then false
  else
    match s.Session.stmt_status with
    | Session.Queued -> Service.now_ms svc > s.Session.stmt_deadline_ms
    | Session.Running ->
      (match stmt_progress s with
       | Some sp -> sp.sp_eta_hi_ms > s.Session.stmt_deadline_ms
       | None -> false)
    | _ -> false

(* --- stable JSON ---------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (escape s)
let jnum v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null"
let jbool b = if b then "true" else "false"
let jobj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) fields)
  ^ "}"
let jarr items = "[" ^ String.concat ", " items ^ "]"

let status_string (s : Session.stmt) =
  Session.status_to_string s.Session.stmt_status

let stmt_fields svc (s : Session.stmt) =
  let progress = stmt_progress s in
  [ ("id", string_of_int s.Session.stmt_id);
    ("label", jstr s.Session.stmt_label);
    ("tenant", jstr s.Session.stmt_tenant);
    ("session", string_of_int s.Session.stmt_session);
    ("state", jstr (status_string s));
    ("mode", jstr (Dispatcher.mode_to_string s.Session.stmt_mode));
    ("arrival_ms", jnum s.Session.stmt_arrival_ms);
    ("deadline_ms", jnum s.Session.stmt_deadline_ms);
    ("percent",
     match progress with Some sp -> jnum sp.sp_percent | None -> "null");
    ("eta_lo_ms",
     match progress with Some sp -> jnum sp.sp_eta_lo_ms | None -> "null");
    ("eta_hi_ms",
     match progress with Some sp -> jnum sp.sp_eta_hi_ms | None -> "null");
    ("updates",
     match progress with
     | Some sp -> string_of_int sp.sp_updates
     | None -> "0");
    ("pages", string_of_int (stmt_pages svc s));
    ("deadline_risk", jbool (stmt_deadline_risk svc s)) ]

let session_fields (sess : Session.t) =
  let stmts = Session.statements sess in
  let count pred = List.length (List.filter pred stmts) in
  let is st (s : Session.stmt) = s.Session.stmt_status = st in
  [ ("id", string_of_int (Session.id sess));
    ("tenant", jstr (Session.tenant sess));
    ("slo", jstr (Session.slo_to_string (Session.slo sess)));
    ("closed", jbool (Session.closed sess));
    ("statements", string_of_int (List.length stmts));
    ("queued", string_of_int (count (is Session.Queued)));
    ("running", string_of_int (count (is Session.Running)));
    ("done",
     string_of_int
       (count (fun s ->
            match s.Session.stmt_status with
            | Session.Done _ -> true
            | _ -> false)));
    ("failed",
     string_of_int
       (count (fun s ->
            match s.Session.stmt_status with
            | Session.Failed _ -> true
            | _ -> false)));
    ("cancelled", string_of_int (count (is Session.Cancelled)));
    ("shed", string_of_int (count (is Session.Shed))) ]

let tenant_fields svc (tn : Service.tenant_summary) =
  let broker = Service.broker svc in
  let name = tn.Service.tns_tenant in
  let share = Broker.tenant_share broker name in
  let leased = Broker.tenant_leased broker name in
  let live = Service.all_statements svc in
  let at_risk =
    List.length
      (List.filter
         (fun (s : Session.stmt) ->
            s.Session.stmt_tenant = name && stmt_deadline_risk svc s)
         live)
  in
  [ ("tenant", jstr name);
    ("slo", jstr (Session.slo_to_string tn.Service.tns_slo));
    ("weight", string_of_int tn.Service.tns_weight);
    ("target_ms", jnum tn.Service.tns_target_ms);
    ("submitted", string_of_int tn.Service.tns_submitted);
    ("completed", string_of_int tn.Service.tns_completed);
    ("failed", string_of_int tn.Service.tns_failed);
    ("cancelled", string_of_int tn.Service.tns_cancelled);
    ("shed", string_of_int tn.Service.tns_shed);
    ("replans", string_of_int tn.Service.tns_replans);
    ("slo_violations", string_of_int tn.Service.tns_violations);
    ("deadline_misses", string_of_int tn.Service.tns_deadline_miss);
    ("min_headroom_ms", jnum tn.Service.tns_min_headroom_ms);
    ("at_risk", string_of_int at_risk);
    ("share_pages", string_of_int share);
    ("leased_pages", string_of_int leased);
    ("share_utilization",
     jnum
       (if share > 0 then float_of_int leased /. float_of_int share
        else 0.0));
    ("peak_leased_pages", string_of_int tn.Service.tns_peak_leased);
    ("floor_waits", string_of_int tn.Service.tns_broker_waits);
    ("queue_ms", jnum tn.Service.tns_queue_ms);
    ("exec_ms", jnum tn.Service.tns_exec_ms) ]

let broker_fields svc =
  let broker = Service.broker svc in
  let leases =
    List.filter_map
      (fun (s : Session.stmt) ->
         let pages = Broker.lease_of broker ~id:s.Session.stmt_id in
         if pages = 0 then None
         else
           Some
             (jobj
                [ ("id", string_of_int s.Session.stmt_id);
                  ("tenant", jstr s.Session.stmt_tenant);
                  ("label", jstr s.Session.stmt_label);
                  ("pages", string_of_int pages) ]))
      (Service.running_statements svc)
  in
  [ ("budget_pages", string_of_int (Broker.budget_pages broker));
    ("floor_pages", string_of_int (Broker.floor_pages broker));
    ("total_leased", string_of_int (Broker.total_leased broker));
    ("free_pages", string_of_int (Broker.free_pages broker));
    ("outstanding", string_of_int (Broker.outstanding broker));
    ("peak_leased", string_of_int (Broker.peak_leased broker));
    ("grants", string_of_int (Broker.grants broker));
    ("reclaimed_pages", string_of_int (Broker.reclaimed_pages broker));
    ("leases", jarr leases) ]

let kind_fields = function
  | Trace.Considered { decision; t_improved; t_optimizer; t_opt_estimated;
                       forced } ->
    [ ("kind", jstr "considered");
      ("decision", jstr decision);
      ("t_improved", jnum t_improved);
      ("t_optimizer", jnum t_optimizer);
      ("t_opt_estimated", jnum t_opt_estimated);
      ("forced", jbool forced) ]
  | Trace.Switched { t_new_total; t_improved; materialize_ms } ->
    [ ("kind", jstr "switched");
      ("t_new_total", jnum t_new_total);
      ("t_improved", jnum t_improved);
      ("materialize_ms", jnum materialize_ms) ]
  | Trace.Rejected { t_new_total; t_improved } ->
    [ ("kind", jstr "rejected");
      ("t_new_total", jnum t_new_total);
      ("t_improved", jnum t_improved) ]
  | Trace.Realloc { granted_pages; consumers } ->
    [ ("kind", jstr "realloc");
      ("granted_pages", string_of_int granted_pages);
      ("consumers", string_of_int consumers) ]

let decision_fields (d : Trace.decision) =
  [ ("query", jstr d.Trace.d_query);
    ("seq", string_of_int d.Trace.d_seq);
    ("ts_ms", jnum d.Trace.d_ts_ms);
    ("unit_op", jstr d.Trace.d_unit_op);
    ("est_rows", jnum d.Trace.d_est_rows);
    ("actual_rows", string_of_int d.Trace.d_actual_rows);
    ("error", jnum d.Trace.d_error) ]
  @ kind_fields d.Trace.d_kind

let ledger_tail ?(tail = 10) svc =
  match Service.service_trace svc with
  | None -> []
  | Some tr ->
    let all = Trace.ledger tr in
    let n = List.length all in
    if n <= tail then all
    else List.filteri (fun i _ -> i >= n - tail) all

let to_json ?tail svc view =
  let body =
    match view with
    | Statements ->
      [ ("statements",
         jarr
           (List.map
              (fun s -> jobj (stmt_fields svc s))
              (Service.all_statements svc))) ]
    | Sessions ->
      [ ("sessions",
         jarr (List.map (fun s -> jobj (session_fields s)) (Service.sessions svc)))
      ]
    | Tenants ->
      let rep = Service.report svc in
      [ ("tenants",
         jarr
           (List.map
              (fun tn -> jobj (tenant_fields svc tn))
              rep.Service.tenants)) ]
    | Broker_leases -> broker_fields svc
    | Ledger ->
      [ ("ledger",
         jarr
           (List.map (fun d -> jobj (decision_fields d)) (ledger_tail ?tail svc)))
      ]
  in
  jobj
    ([ ("view", jstr (view_to_string view));
       ("now_ms", jnum (Service.now_ms svc));
       ("queued", string_of_int (Service.queued_count svc));
       ("running",
        string_of_int (List.length (Service.running_statements svc))) ]
     @ body)
  ^ "\n"

(* --- human rendering ------------------------------------------------ *)

let pp_stmt svc fmt (s : Session.stmt) =
  let progress =
    match stmt_progress s with
    | Some sp ->
      Printf.sprintf "%5.1f%%  eta [%.1f, %.1f] ms" sp.sp_percent
        sp.sp_eta_lo_ms sp.sp_eta_hi_ms
    | None -> "     -"
  in
  Fmt.pf fmt "#%-3d %-12s %-10s %-9s %s  pages %d%s" s.Session.stmt_id
    (Printf.sprintf "%s/%s" s.Session.stmt_tenant s.Session.stmt_label)
    (Dispatcher.mode_to_string s.Session.stmt_mode)
    (status_string s) progress (stmt_pages svc s)
    (if stmt_deadline_risk svc s then "  AT RISK" else "")

let render ?tail svc view =
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Fmt.pf fmt "@[<v>%s @@ %.1f ms (sim)  queued %d  running %d@,"
    (view_to_string view) (Service.now_ms svc) (Service.queued_count svc)
    (List.length (Service.running_statements svc));
  (match view with
   | Statements ->
     List.iter
       (fun s -> Fmt.pf fmt "%a@," (pp_stmt svc) s)
       (Service.all_statements svc)
   | Sessions ->
     List.iter
       (fun sess ->
          Fmt.pf fmt "session %d  %-10s %-11s %s  %d statement(s)@,"
            (Session.id sess) (Session.tenant sess)
            (Session.slo_to_string (Session.slo sess))
            (if Session.closed sess then "closed" else "open")
            (List.length (Session.statements sess)))
       (Service.sessions svc)
   | Tenants ->
     let rep = Service.report svc in
     List.iter
       (fun (tn : Service.tenant_summary) ->
          let broker = Service.broker svc in
          let name = tn.Service.tns_tenant in
          Fmt.pf fmt
            "tenant %-10s [%s w=%d] %d/%d done  misses %d  leased %d/%d \
             pages  floor-waits %d%s@,"
            name
            (Session.slo_to_string tn.Service.tns_slo)
            tn.Service.tns_weight tn.Service.tns_completed
            tn.Service.tns_submitted tn.Service.tns_deadline_miss
            (Broker.tenant_leased broker name)
            (Broker.tenant_share broker name)
            tn.Service.tns_broker_waits
            (if Float.is_finite tn.Service.tns_min_headroom_ms then
               Printf.sprintf "  headroom %.1f ms"
                 tn.Service.tns_min_headroom_ms
             else ""))
       rep.Service.tenants
   | Broker_leases ->
     let broker = Service.broker svc in
     Fmt.pf fmt
       "budget %d pages  floor %d  leased %d  free %d  outstanding %d  \
        peak %d  grants %d  reclaimed %d@,"
       (Broker.budget_pages broker) (Broker.floor_pages broker)
       (Broker.total_leased broker) (Broker.free_pages broker)
       (Broker.outstanding broker) (Broker.peak_leased broker)
       (Broker.grants broker)
       (Broker.reclaimed_pages broker);
     List.iter
       (fun (s : Session.stmt) ->
          let pages =
            Broker.lease_of broker ~id:s.Session.stmt_id
          in
          if pages > 0 then
            Fmt.pf fmt "lease #%-3d %-12s %d pages@," s.Session.stmt_id
              (Printf.sprintf "%s/%s" s.Session.stmt_tenant
                 s.Session.stmt_label)
              pages)
       (Service.running_statements svc)
   | Ledger ->
     List.iter
       (fun d -> Fmt.pf fmt "%a@," Trace.pp_decision d)
       (ledger_tail ?tail svc));
  Fmt.pf fmt "@]@?";
  Buffer.contents buf

(* --- Prometheus ----------------------------------------------------- *)

let prometheus svc =
  match Service.service_trace svc with
  | None -> ""
  | Some tr -> Metrics.to_prometheus (Trace.metrics tr)
