(** Workload manager: concurrent query execution over the simulated clock.

    Runs a batch of SQL queries "concurrently": an admission controller
    bounds how many execute at once (the rest wait in a priority queue, or
    are rejected when the queue is full), a shared memory broker leases
    slices of the engine's global page budget to running queries and
    re-grants pages freed by finished ones, a round-robin scheduler
    interleaves dispatcher execution units across the admitted queries,
    and a statistics feedback cache publishes each query's observed
    cardinalities and histograms for later queries to optimize with.

    Time is simulated: each query runs on its own cost ledger, and a
    query admitted when another finished starts its ledger at that finish
    time.  The workload makespan is the latest finish across the batch —
    with the broker enabled, queries that would each need the full budget
    serially can overlap, so the makespan drops below the serial sum. *)

module Dispatcher = Mqr_core.Dispatcher

type spec = {
  label : string;
  sql : string;
  priority : int;      (** higher runs first when queued *)
  mode : Dispatcher.mode;
  arrival_ms : float;  (** submission time on the workload clock *)
}

(** [spec sql] with defaults: label ["q<n>"] assigned by {!run},
    priority 0, mode [Full], arrival 0. *)
val spec :
  ?label:string -> ?priority:int -> ?mode:Dispatcher.mode ->
  ?arrival_ms:float -> string -> spec

type memory_policy =
  | Fixed_per_query of int
      (** every query gets its own fixed budget (no sharing) *)
  | Shared_broker
      (** queries lease from the engine's global budget via {!Broker} *)

type options = {
  max_concurrency : int;  (** admission limit (default 4) *)
  max_queue : int;        (** run-queue capacity (default 64) *)
  memory : memory_policy; (** default [Shared_broker] *)
  feedback : bool;        (** cross-query statistics cache (default on) *)
  arrival_jitter_ms : float;
      (** uniform random delay added to each arrival (default 0) *)
  seed : int;             (** Rng seed for the jitter (default 7) *)
}

val default_options : options

type query_result = {
  label : string;
  index : int;            (** submission order *)
  report : Dispatcher.report;
  arrival_ms : float;
  admit_ms : float;
  queue_ms : float;       (** [admit_ms -. arrival_ms] *)
  finish_ms : float;      (** [admit_ms +.] simulated execution time *)
}

type report = {
  results : query_result list;  (** in submission order *)
  rejected : (int * string) list;
      (** (index, label) of queries shed by the full queue *)
  makespan_ms : float;          (** latest finish *)
  total_exec_ms : float;        (** sum of per-query simulated times *)
  total_queue_ms : float;
  peak_leased_pages : int;      (** high-water mark of broker leases *)
  outstanding_leases : int;     (** leases alive after the batch — 0 *)
  stats_published : int;        (** feedback-cache statistics stored *)
  stats_applied : int;          (** feedback-cache overrides installed *)
}

(** [trace] attaches an observability collector: each admitted query
    opens a scope (one Chrome-trace lane, labelled with the spec's label)
    whose [offset_ms] is the query's admission time, so spans from
    concurrently-running queries interleave correctly on the shared
    workload timeline.  Queue waits are recorded in the [wlm.queue_ms]
    histogram and shed queries bump the [wlm.shed] counter. *)
val run :
  ?options:options -> ?trace:Mqr_obs.Trace.t -> Mqr_core.Engine.t ->
  spec list -> report

val pp : Format.formatter -> report -> unit
