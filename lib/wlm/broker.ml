type t = {
  budget : int;
  floor : int;
  max_concurrency : int;
  leases : (int, int) Hashtbl.t;
  mutable pending : int;
  mutable peak : int;
  mutable grants : int;
  mutable reclaimed : int;
}

let create ~budget_pages ~max_concurrency =
  if budget_pages < 1 then invalid_arg "Broker.create: budget_pages < 1";
  if max_concurrency < 1 then invalid_arg "Broker.create: max_concurrency < 1";
  { budget = budget_pages;
    floor = max 1 (budget_pages / max_concurrency);
    max_concurrency;
    leases = Hashtbl.create 8;
    pending = 0;
    peak = 0;
    grants = 0;
    reclaimed = 0 }

let budget_pages t = t.budget
let floor_pages t = t.floor

let total_leased t = Hashtbl.fold (fun _ pages acc -> acc + pages) t.leases 0

let free_pages t = t.budget - total_leased t

let outstanding t = Hashtbl.length t.leases

let lease_of t ~id = Option.value ~default:0 (Hashtbl.find_opt t.leases id)

let set_pending t n = t.pending <- max 0 n

let lease t ~id ~min_pages ~max_pages =
  if min_pages < 0 || max_pages < min_pages then
    invalid_arg "Broker.lease: bad demand";
  let current = lease_of t ~id in
  (* the query's own lease is free to itself: a re-negotiation can only
     take what nobody else holds *)
  let others = outstanding t - (if Hashtbl.mem t.leases id then 1 else 0) in
  (* keep the admission floor in reserve for pending queries that could
     still occupy an open slot — one greedy lease must not serialize the
     rest of the batch behind it *)
  let open_slots = max 0 (t.max_concurrency - others - 1) in
  let reserved = t.floor * min t.pending open_slots in
  let available = max 0 (free_pages t + current - reserved) in
  let granted = min max_pages available in
  let granted = if granted < min_pages then min min_pages available else granted in
  let granted = max 0 granted in
  if granted < current then t.reclaimed <- t.reclaimed + (current - granted);
  Hashtbl.replace t.leases id granted;
  t.grants <- t.grants + 1;
  t.peak <- max t.peak (total_leased t);
  granted

let release t ~id =
  (match Hashtbl.find_opt t.leases id with
   | Some pages -> t.reclaimed <- t.reclaimed + pages
   | None -> ());
  Hashtbl.remove t.leases id

let can_admit t = free_pages t >= t.floor

let peak_leased t = t.peak
let grants t = t.grants
let reclaimed_pages t = t.reclaimed

let pp fmt t =
  Fmt.pf fmt "broker: %d/%d pages leased across %d queries (peak %d, floor %d)"
    (total_leased t) t.budget (outstanding t) t.peak t.floor
