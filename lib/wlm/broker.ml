type tenant = {
  tn_weight : int;
  mutable tn_active : bool;  (* has admitted-but-unfinished work *)
  mutable tn_leased : int;   (* cached sum of this tenant's leases *)
  mutable tn_peak : int;
  mutable tn_waits : int;    (* lease calls clipped by other tenants' floors *)
}

type t = {
  budget : int;
  floor : int;
  max_concurrency : int;
  leases : (int, int) Hashtbl.t;
  owners : (int, string) Hashtbl.t;  (* lease id -> tenant *)
  tenants : (string, tenant) Hashtbl.t;
  mutable pending : int;
  mutable peak : int;
  mutable grants : int;
  mutable reclaimed : int;
}

let create ~budget_pages ~max_concurrency =
  if budget_pages < 1 then invalid_arg "Broker.create: budget_pages < 1";
  if max_concurrency < 1 then invalid_arg "Broker.create: max_concurrency < 1";
  { budget = budget_pages;
    floor = max 1 (budget_pages / max_concurrency);
    max_concurrency;
    leases = Hashtbl.create 8;
    owners = Hashtbl.create 8;
    tenants = Hashtbl.create 4;
    pending = 0;
    peak = 0;
    grants = 0;
    reclaimed = 0 }

let budget_pages t = t.budget
let floor_pages t = t.floor

let total_leased t = Hashtbl.fold (fun _ pages acc -> acc + pages) t.leases 0

let free_pages t = t.budget - total_leased t

let outstanding t = Hashtbl.length t.leases

let lease_of t ~id = Option.value ~default:0 (Hashtbl.find_opt t.leases id)

let set_pending t n = t.pending <- max 0 n

(* --- per-tenant fair shares ------------------------------------------- *)

let register_tenant t ~weight name =
  if weight < 1 then invalid_arg "Broker.register_tenant: weight < 1";
  match Hashtbl.find_opt t.tenants name with
  | Some tn when tn.tn_weight = weight -> ()
  | Some tn ->
    Hashtbl.replace t.tenants name { tn with tn_weight = weight }
  | None ->
    Hashtbl.replace t.tenants name
      { tn_weight = weight; tn_active = false; tn_leased = 0;
        tn_peak = 0; tn_waits = 0 }

let tenant_of t name = Hashtbl.find_opt t.tenants name

let total_weight t =
  Hashtbl.fold (fun _ tn acc -> acc + tn.tn_weight) t.tenants 0

(* A tenant's fair share of the budget, by registered weight.  This is the
   floor reserved for it while it has admitted work: other tenants can use
   the pages only when the owner is idle (work-conserving), but an active
   tenant always finds at least its share un-leasable by anyone else. *)
let tenant_share t name =
  match tenant_of t name with
  | None -> 0
  | Some tn ->
    let tw = total_weight t in
    if tw = 0 then 0 else t.budget * tn.tn_weight / tw

let set_tenant_active t name active =
  match tenant_of t name with
  | Some tn -> tn.tn_active <- active
  | None -> ()

let tenant_leased t name =
  match tenant_of t name with Some tn -> tn.tn_leased | None -> 0

let tenant_peak t name =
  match tenant_of t name with Some tn -> tn.tn_peak | None -> 0

let tenant_floor_waits t name =
  match tenant_of t name with Some tn -> tn.tn_waits | None -> 0

let tenants t =
  Hashtbl.fold (fun name tn acc -> (name, tn.tn_weight) :: acc) t.tenants []
  |> List.sort compare

(* Pages held in reserve for *other* active tenants that are below their
   fair share.  [asker = None] means an anonymous (non-tenant) lease,
   which must respect every active tenant's floor. *)
let reserved_for_others t asker =
  Hashtbl.fold
    (fun name tn acc ->
      if tn.tn_active && Some name <> asker then
        acc + max 0 (tenant_share t name - tn.tn_leased)
      else acc)
    t.tenants 0

let adjust_owner t ~id ~tenant ~granted ~current =
  (* take the old pages off whichever tenant owned them, then credit the
     (possibly different) new owner with the fresh grant *)
  (match Hashtbl.find_opt t.owners id with
   | Some prev ->
     (match tenant_of t prev with
      | Some tn -> tn.tn_leased <- tn.tn_leased - current
      | None -> ())
   | None -> ());
  match tenant with
  | None -> Hashtbl.remove t.owners id
  | Some name ->
    Hashtbl.replace t.owners id name;
    (match tenant_of t name with
     | Some tn ->
       tn.tn_leased <- tn.tn_leased + granted;
       tn.tn_peak <- max tn.tn_peak tn.tn_leased
     | None -> ())

let lease ?tenant t ~id ~min_pages ~max_pages =
  if min_pages < 0 || max_pages < min_pages then
    invalid_arg "Broker.lease: bad demand";
  let current = lease_of t ~id in
  (* the query's own lease is free to itself: a re-negotiation can only
     take what nobody else holds *)
  let others = outstanding t - (if Hashtbl.mem t.leases id then 1 else 0) in
  (* keep the admission floor in reserve for pending queries that could
     still occupy an open slot — one greedy lease must not serialize the
     rest of the batch behind it *)
  let open_slots = max 0 (t.max_concurrency - others - 1) in
  let reserved = t.floor * min t.pending open_slots in
  (* additionally keep every other active tenant's unfilled fair share in
     reserve — a batch tenant's hash joins cannot lease into the pages an
     interactive tenant is entitled to *)
  let reserved_tenants = reserved_for_others t tenant in
  let available = max 0 (free_pages t + current - reserved - reserved_tenants) in
  let granted = min max_pages available in
  let granted = if granted < min_pages then min min_pages available else granted in
  let granted = max 0 granted in
  if granted < max_pages && reserved_tenants > 0 then
    (match tenant with
     | Some name ->
       (match tenant_of t name with
        | Some tn -> tn.tn_waits <- tn.tn_waits + 1
        | None -> ())
     | None -> ());
  if granted < current then t.reclaimed <- t.reclaimed + (current - granted);
  adjust_owner t ~id ~tenant ~granted ~current;
  Hashtbl.replace t.leases id granted;
  t.grants <- t.grants + 1;
  t.peak <- max t.peak (total_leased t);
  granted

let release t ~id =
  (match Hashtbl.find_opt t.leases id with
   | Some pages ->
     t.reclaimed <- t.reclaimed + pages;
     (match Hashtbl.find_opt t.owners id with
      | Some name ->
        (match tenant_of t name with
         | Some tn -> tn.tn_leased <- tn.tn_leased - pages
         | None -> ())
      | None -> ())
   | None -> ());
  Hashtbl.remove t.leases id;
  Hashtbl.remove t.owners id

let can_admit t = free_pages t >= t.floor

(* Admission check from a tenant's point of view: pages reserved for
   *other* tenants do not count as free, but the asker's own reserved
   share does — an active tenant below its share can always admit,
   no matter how much the others have leased. *)
let can_admit_tenant t name =
  let free = free_pages t in
  free - reserved_for_others t (Some name) >= t.floor
  || (match tenant_of t name with
      | Some tn -> tenant_share t name - tn.tn_leased >= t.floor
      | None -> false)

let peak_leased t = t.peak
let grants t = t.grants
let reclaimed_pages t = t.reclaimed

let pp fmt t =
  Fmt.pf fmt "broker: %d/%d pages leased across %d queries (peak %d, floor %d)"
    (total_leased t) t.budget (outstanding t) t.peak t.floor;
  if Hashtbl.length t.tenants > 0 then
    List.iter
      (fun (name, w) ->
        Fmt.pf fmt "@.  tenant %s: weight %d share %d leased %d (peak %d)"
          name w (tenant_share t name) (tenant_leased t name)
          (tenant_peak t name))
      (tenants t)
