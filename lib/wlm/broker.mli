(** Shared memory broker.

    One global budget of buffer pages is divided into *leases*, one per
    running query.  A query (through the dispatcher's broker hook) asks
    for a lease sized to the aggregate demand of its remaining plan; the
    broker grants what fits beside the other leases.  When mid-query
    re-optimization shrinks a plan's demand the next lease call returns
    the difference to the pool, and when a query finishes its whole lease
    is released — freed pages are then re-granted to waiting or
    memory-starved queries by the workload scheduler.  This is the
    paper's dynamic resource re-allocation (Section 2.5) lifted from one
    query's operators to a whole workload's queries.

    Invariants (tested): the sum of outstanding leases never exceeds the
    budget, and no lease outlives its query. *)

type t

(** [create ~budget_pages ~max_concurrency] — the admission floor is
    [budget_pages / max_concurrency] (at least one page): a new query is
    only admitted while that much is unleased, so every admitted query
    can make progress. *)
val create : budget_pages:int -> max_concurrency:int -> t

val budget_pages : t -> int
val floor_pages : t -> int

(** [lease t ~id ~min_pages ~max_pages] re-negotiates query [id]'s lease:
    grants up to [max_pages] of what is free (a query's own current lease
    counts as free to itself), falling back toward [min_pages] under
    pressure.  While pending queries could still fill open slots, one
    admission floor per such query is held in reserve so a single greedy
    lease cannot serialize the batch.  Returns the new lease size; never
    exceeds the pages actually available, so the budget invariant holds. *)
val lease : t -> id:int -> min_pages:int -> max_pages:int -> int

(** [set_pending t n] tells the broker how many submitted queries are not
    yet running — the scheduler updates this as the batch drains so
    reservations relax and the survivors can grow to the full budget. *)
val set_pending : t -> int -> unit

(** Return query [id]'s entire lease to the pool. *)
val release : t -> id:int -> unit

(** Current lease of a query (0 when it holds none). *)
val lease_of : t -> id:int -> int

val total_leased : t -> int
val free_pages : t -> int

(** Number of live leases. *)
val outstanding : t -> int

(** Is there room (>= floor) to admit another query? *)
val can_admit : t -> bool

(** High-water mark of [total_leased] over the broker's lifetime. *)
val peak_leased : t -> int

(** Number of [lease] calls served. *)
val grants : t -> int

(** Pages handed back by lease shrinks and releases. *)
val reclaimed_pages : t -> int

val pp : Format.formatter -> t -> unit
